//===- BenchFleet.h - Shared --jobs fleet phase for benches -----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel arm shared by the table harnesses: run one corpus job kind
/// through the CorpusScheduler serially, then again with --jobs N workers,
/// and require the two runs to agree bit-for-bit per program. Both
/// wall-clocks land in the trajectory JSON so a perf run records the fleet
/// speedup next to the per-program timings.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_BENCH_BENCHFLEET_H
#define LPA_BENCH_BENCHFLEET_H

#include "obs/Json.h"
#include "par/CorpusScheduler.h"
#include "par/ThreadPool.h"

#include <cstdio>
#include <string>
#include <string_view>

namespace lpa {

/// Resolves the worker count for a bench driver's fleet phase: "--jobs N"
/// or "--jobs=N" overrides the hardware thread count. 0 and 1 both mean
/// "serial" (the parallel arm then runs inline, which still exercises the
/// scheduler path and records both wall-clocks).
inline size_t jobsArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view Val;
    if (A == "--jobs" && I + 1 < Argc)
      Val = Argv[I + 1];
    else if (A.substr(0, 7) == "--jobs=")
      Val = A.substr(7);
    else
      continue;
    size_t N = 0;
    for (char C : Val) {
      if (C < '0' || C > '9')
        return ThreadPool::hardwareWorkers();
      N = N * 10 + static_cast<size_t>(C - '0');
    }
    return N;
  }
  return ThreadPool::hardwareWorkers();
}

/// Runs the \p Kind slice of the corpus serially and with \p Jobs workers,
/// compares the runs job by job, prints a summary line, and emits a
/// "<Key>" object into the current JSON object. Returns the number of
/// programs whose parallel result differed from serial (callers fold this
/// into their failure count, so CI smoke runs fail on any divergence).
inline int runFleetPhase(JsonWriter &W, const char *Key, CorpusJobKind Kind,
                         size_t Jobs) {
  std::vector<CorpusJob> Matrix = CorpusScheduler::kindJobs(Kind);

  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  CorpusScheduler Serial(SO);
  std::vector<CorpusJobResult> SerialRes = Serial.run(Matrix);
  double SerialMs = Serial.lastWallSeconds() * 1e3;

  CorpusScheduler::Options PO;
  PO.Jobs = Jobs;
  CorpusScheduler Par(PO);
  std::vector<CorpusJobResult> ParRes = Par.run(Matrix);
  double ParMs = Par.lastWallSeconds() * 1e3;

  int Mismatches = 0;
  for (size_t I = 0; I < Matrix.size(); ++I) {
    const CorpusJobResult &S = SerialRes[I];
    const CorpusJobResult &P = ParRes[I];
    if (S.Ok == P.Ok && S.Error == P.Error && S.Fingerprints == P.Fingerprints)
      continue;
    ++Mismatches;
    std::fprintf(stderr,
                 "fleet mismatch: %s (%s): serial %zu fingerprints, "
                 "parallel %zu\n",
                 S.Program, corpusJobKindName(Kind), S.Fingerprints.size(),
                 P.Fingerprints.size());
  }

  double Speedup = ParMs > 0 ? SerialMs / ParMs : 0;
  std::printf("\nFleet (%s, %zu programs): serial %.2f ms, --jobs %zu "
              "%.2f ms (%.2fx), parallel %s serial, steals=%llu\n",
              corpusJobKindName(Kind), Matrix.size(), SerialMs, Jobs, ParMs,
              Speedup, Mismatches == 0 ? "matches" : "DIVERGES FROM",
              static_cast<unsigned long long>(Par.lastStealCount()));

  W.key(Key);
  W.beginObject();
  W.member("kind", corpusJobKindName(Kind));
  W.member("jobs", static_cast<uint64_t>(Jobs));
  W.member("num_programs", static_cast<uint64_t>(Matrix.size()));
  W.member("serial_wall_ms", SerialMs);
  W.member("parallel_wall_ms", ParMs);
  W.member("speedup", Speedup);
  W.member("parallel_matches_serial", Mismatches == 0);
  W.member("steals", Par.lastStealCount());
  W.endObject();
  return Mismatches;
}

} // namespace lpa

#endif // LPA_BENCH_BENCHFLEET_H
