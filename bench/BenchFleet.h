//===- BenchFleet.h - Shared --jobs fleet phase for benches -----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel arm shared by the table harnesses: run one corpus job kind
/// through the CorpusScheduler serially, then again with --jobs N workers,
/// and require the two runs to agree bit-for-bit per program. Both
/// wall-clocks land in the trajectory JSON so a perf run records the fleet
/// speedup next to the per-program timings.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_BENCH_BENCHFLEET_H
#define LPA_BENCH_BENCHFLEET_H

#include "obs/Json.h"
#include "par/CorpusScheduler.h"
#include "par/ThreadPool.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>

namespace lpa {

/// Resolves the worker count for a bench driver's fleet phase: "--jobs N"
/// or "--jobs=N" overrides the hardware thread count. 0 and 1 both mean
/// "serial" (the parallel arm then runs inline, which still exercises the
/// scheduler path and records both wall-clocks).
inline size_t jobsArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view Val;
    if (A == "--jobs" && I + 1 < Argc)
      Val = Argv[I + 1];
    else if (A.substr(0, 7) == "--jobs=")
      Val = A.substr(7);
    else
      continue;
    size_t N = 0;
    for (char C : Val) {
      if (C < '0' || C > '9')
        return ThreadPool::hardwareWorkers();
      N = N * 10 + static_cast<size_t>(C - '0');
    }
    return N;
  }
  return ThreadPool::hardwareWorkers();
}

/// True when the bench invocation asked for answer provenance recording in
/// the fleet phase ("--provenance").
inline bool provenanceArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::string_view(Argv[I]) == "--provenance")
      return true;
  return false;
}

/// Sampling-profiler rate for the fleet phase: "--sample-hz N" or
/// "--sample-hz=N"; 0 (the default) leaves the sampler off.
inline uint32_t sampleHzArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view Val;
    if (A == "--sample-hz" && I + 1 < Argc)
      Val = Argv[I + 1];
    else if (A.substr(0, 12) == "--sample-hz=")
      Val = A.substr(12);
    else
      continue;
    uint32_t N = 0;
    for (char C : Val) {
      if (C < '0' || C > '9')
        return 0;
      N = N * 10 + static_cast<uint32_t>(C - '0');
    }
    return N;
  }
  return 0;
}

/// Folded-stack output path for the fleet's sample profile: "--folded
/// PATH" or "--folded=PATH"; empty (the default) writes no file. Only
/// meaningful together with --sample-hz.
inline std::string foldedOutArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    if (A == "--folded" && I + 1 < Argc)
      return std::string(Argv[I + 1]);
    if (A.substr(0, 9) == "--folded=")
      return std::string(A.substr(9));
  }
  return std::string();
}

/// Runs the \p Kind slice of the corpus serially and with \p Jobs workers,
/// compares the runs job by job, prints a summary line, and emits a
/// "<Key>" object into the current JSON object. Returns the number of
/// programs whose parallel result differed from serial (callers fold this
/// into their failure count, so CI smoke runs fail on any divergence).
///
/// With \p Provenance both arms record answer justifications — the
/// fingerprints then carry "$provenance ..." lines, so the bit-identity
/// check extends to justification validity under --jobs N — and a third,
/// provenance-OFF serial run measures the recording overhead for the
/// trajectory JSON. A job with dangling premises counts as a mismatch.
///
/// With \p SampleHz > 0 the *parallel* arm runs under the sampling
/// profiler (one lane per worker); the serial arm stays unsampled, so the
/// bit-identity comparison doubles as the "sampling never perturbs
/// results" check. The JSON gains a "sample_profile" block, and when
/// \p FoldedPath is non-empty the full collapsed-stack profile is written
/// there (flamegraph.pl / speedscope input; CI uploads it as an artifact).
inline int runFleetPhase(JsonWriter &W, const char *Key, CorpusJobKind Kind,
                         size_t Jobs, bool Provenance = false,
                         uint32_t SampleHz = 0,
                         const std::string &FoldedPath = std::string()) {
  std::vector<CorpusJob> Matrix = CorpusScheduler::kindJobs(Kind);

  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  SO.RecordProvenance = Provenance;
  CorpusScheduler Serial(SO);
  std::vector<CorpusJobResult> SerialRes = Serial.run(Matrix);
  double SerialMs = Serial.lastWallSeconds() * 1e3;

  CorpusScheduler::Options PO;
  PO.Jobs = Jobs;
  PO.RecordProvenance = Provenance;
  PO.SampleHz = SampleHz;
  CorpusScheduler Par(PO);
  std::vector<CorpusJobResult> ParRes = Par.run(Matrix);
  double ParMs = Par.lastWallSeconds() * 1e3;

  // Overhead baseline: the same serial slice with recording off.
  double BaseMs = 0;
  if (Provenance) {
    CorpusScheduler::Options BO;
    BO.Jobs = 1;
    CorpusScheduler Base(BO);
    Base.run(Matrix);
    BaseMs = Base.lastWallSeconds() * 1e3;
  }

  int Mismatches = 0;
  uint64_t Justified = 0, Premises = 0, Dangling = 0;
  for (size_t I = 0; I < Matrix.size(); ++I) {
    const CorpusJobResult &S = SerialRes[I];
    const CorpusJobResult &P = ParRes[I];
    Justified += S.JustifiedAnswers;
    Premises += S.JustificationPremises;
    Dangling += S.DanglingPremises + P.DanglingPremises;
    if (S.DanglingPremises || P.DanglingPremises) {
      ++Mismatches;
      std::fprintf(stderr,
                   "fleet provenance: %s (%s): %llu dangling premise(s)\n",
                   S.Program, corpusJobKindName(Kind),
                   static_cast<unsigned long long>(S.DanglingPremises +
                                                   P.DanglingPremises));
      continue;
    }
    if (S.Ok == P.Ok && S.Error == P.Error && S.Fingerprints == P.Fingerprints)
      continue;
    ++Mismatches;
    std::fprintf(stderr,
                 "fleet mismatch: %s (%s): serial %zu fingerprints, "
                 "parallel %zu\n",
                 S.Program, corpusJobKindName(Kind), S.Fingerprints.size(),
                 P.Fingerprints.size());
  }

  double Speedup = ParMs > 0 ? SerialMs / ParMs : 0;
  std::printf("\nFleet (%s, %zu programs): serial %.2f ms, --jobs %zu "
              "%.2f ms (%.2fx), parallel %s serial, steals=%llu\n",
              corpusJobKindName(Kind), Matrix.size(), SerialMs, Jobs, ParMs,
              Speedup, Mismatches == 0 ? "matches" : "DIVERGES FROM",
              static_cast<unsigned long long>(Par.lastStealCount()));
  if (Provenance)
    std::printf("Fleet provenance: %llu justified answers, %llu premises, "
                "%llu dangling; recording overhead %.1f%% "
                "(%.2f ms baseline)\n",
                static_cast<unsigned long long>(Justified),
                static_cast<unsigned long long>(Premises),
                static_cast<unsigned long long>(Dangling),
                BaseMs > 0 ? (SerialMs / BaseMs - 1.0) * 100.0 : 0.0,
                BaseMs);
  if (SampleHz > 0) {
    const SampleProfile &SP = Par.sampleProfile();
    std::printf("Fleet profile: %u Hz, %llu samples (%llu idle, %llu "
                "torn), %zu distinct stacks\n",
                SampleHz, static_cast<unsigned long long>(SP.totalSamples()),
                static_cast<unsigned long long>(SP.idleSamples()),
                static_cast<unsigned long long>(SP.tornSamples()),
                SP.sortedStacks().size());
    if (!FoldedPath.empty()) {
      std::filesystem::path Parent =
          std::filesystem::path(FoldedPath).parent_path();
      if (!Parent.empty()) {
        std::error_code EC;
        std::filesystem::create_directories(Parent, EC);
      }
      std::string Folded = Par.foldedStacks();
      if (std::FILE *F = std::fopen(FoldedPath.c_str(), "w")) {
        std::fwrite(Folded.data(), 1, Folded.size(), F);
        std::fclose(F);
        std::printf("Fleet profile folded stacks: %s\n", FoldedPath.c_str());
      } else {
        std::fprintf(stderr, "cannot write folded stacks to %s\n",
                     FoldedPath.c_str());
      }
    }
  }

  W.key(Key);
  W.beginObject();
  W.member("kind", corpusJobKindName(Kind));
  W.member("jobs", static_cast<uint64_t>(Jobs));
  W.member("num_programs", static_cast<uint64_t>(Matrix.size()));
  W.member("serial_wall_ms", SerialMs);
  W.member("parallel_wall_ms", ParMs);
  W.member("speedup", Speedup);
  W.member("parallel_matches_serial", Mismatches == 0);
  W.member("steals", Par.lastStealCount());
  W.member("provenance", Provenance);
  if (Provenance) {
    W.member("serial_wall_ms_no_provenance", BaseMs);
    W.member("provenance_overhead_pct",
             BaseMs > 0 ? (SerialMs / BaseMs - 1.0) * 100.0 : 0.0);
    W.member("provenance_justified", Justified);
    W.member("provenance_premises", Premises);
    W.member("provenance_dangling", Dangling);
  }
  W.member("sample_hz", static_cast<uint64_t>(SampleHz));
  if (SampleHz > 0) {
    // Top 20 stacks keep the trajectory file small; the full folded
    // profile is available via CorpusScheduler::foldedStacks().
    W.key("sample_profile");
    Par.sampleProfile().writeJson(W, /*Symbols=*/nullptr, /*TopN=*/20);
  }
  W.endObject();
  return Mismatches;
}

} // namespace lpa

#endif // LPA_BENCH_BENCHFLEET_H
