//===- BenchFleet.h - Shared --jobs fleet phase for benches -----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel arm shared by the table harnesses: run one corpus job kind
/// through the CorpusScheduler serially, then again with --jobs N workers,
/// and require the two runs to agree bit-for-bit per program. Both
/// wall-clocks land in the trajectory JSON so a perf run records the fleet
/// speedup next to the per-program timings.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_BENCH_BENCHFLEET_H
#define LPA_BENCH_BENCHFLEET_H

#include "obs/Json.h"
#include "par/CorpusScheduler.h"
#include "par/ThreadPool.h"

#include <cstdio>
#include <string>
#include <string_view>

namespace lpa {

/// Resolves the worker count for a bench driver's fleet phase: "--jobs N"
/// or "--jobs=N" overrides the hardware thread count. 0 and 1 both mean
/// "serial" (the parallel arm then runs inline, which still exercises the
/// scheduler path and records both wall-clocks).
inline size_t jobsArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view Val;
    if (A == "--jobs" && I + 1 < Argc)
      Val = Argv[I + 1];
    else if (A.substr(0, 7) == "--jobs=")
      Val = A.substr(7);
    else
      continue;
    size_t N = 0;
    for (char C : Val) {
      if (C < '0' || C > '9')
        return ThreadPool::hardwareWorkers();
      N = N * 10 + static_cast<size_t>(C - '0');
    }
    return N;
  }
  return ThreadPool::hardwareWorkers();
}

/// True when the bench invocation asked for answer provenance recording in
/// the fleet phase ("--provenance").
inline bool provenanceArg(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::string_view(Argv[I]) == "--provenance")
      return true;
  return false;
}

/// Runs the \p Kind slice of the corpus serially and with \p Jobs workers,
/// compares the runs job by job, prints a summary line, and emits a
/// "<Key>" object into the current JSON object. Returns the number of
/// programs whose parallel result differed from serial (callers fold this
/// into their failure count, so CI smoke runs fail on any divergence).
///
/// With \p Provenance both arms record answer justifications — the
/// fingerprints then carry "$provenance ..." lines, so the bit-identity
/// check extends to justification validity under --jobs N — and a third,
/// provenance-OFF serial run measures the recording overhead for the
/// trajectory JSON. A job with dangling premises counts as a mismatch.
inline int runFleetPhase(JsonWriter &W, const char *Key, CorpusJobKind Kind,
                         size_t Jobs, bool Provenance = false) {
  std::vector<CorpusJob> Matrix = CorpusScheduler::kindJobs(Kind);

  CorpusScheduler::Options SO;
  SO.Jobs = 1;
  SO.RecordProvenance = Provenance;
  CorpusScheduler Serial(SO);
  std::vector<CorpusJobResult> SerialRes = Serial.run(Matrix);
  double SerialMs = Serial.lastWallSeconds() * 1e3;

  CorpusScheduler::Options PO;
  PO.Jobs = Jobs;
  PO.RecordProvenance = Provenance;
  CorpusScheduler Par(PO);
  std::vector<CorpusJobResult> ParRes = Par.run(Matrix);
  double ParMs = Par.lastWallSeconds() * 1e3;

  // Overhead baseline: the same serial slice with recording off.
  double BaseMs = 0;
  if (Provenance) {
    CorpusScheduler::Options BO;
    BO.Jobs = 1;
    CorpusScheduler Base(BO);
    Base.run(Matrix);
    BaseMs = Base.lastWallSeconds() * 1e3;
  }

  int Mismatches = 0;
  uint64_t Justified = 0, Premises = 0, Dangling = 0;
  for (size_t I = 0; I < Matrix.size(); ++I) {
    const CorpusJobResult &S = SerialRes[I];
    const CorpusJobResult &P = ParRes[I];
    Justified += S.JustifiedAnswers;
    Premises += S.JustificationPremises;
    Dangling += S.DanglingPremises + P.DanglingPremises;
    if (S.DanglingPremises || P.DanglingPremises) {
      ++Mismatches;
      std::fprintf(stderr,
                   "fleet provenance: %s (%s): %llu dangling premise(s)\n",
                   S.Program, corpusJobKindName(Kind),
                   static_cast<unsigned long long>(S.DanglingPremises +
                                                   P.DanglingPremises));
      continue;
    }
    if (S.Ok == P.Ok && S.Error == P.Error && S.Fingerprints == P.Fingerprints)
      continue;
    ++Mismatches;
    std::fprintf(stderr,
                 "fleet mismatch: %s (%s): serial %zu fingerprints, "
                 "parallel %zu\n",
                 S.Program, corpusJobKindName(Kind), S.Fingerprints.size(),
                 P.Fingerprints.size());
  }

  double Speedup = ParMs > 0 ? SerialMs / ParMs : 0;
  std::printf("\nFleet (%s, %zu programs): serial %.2f ms, --jobs %zu "
              "%.2f ms (%.2fx), parallel %s serial, steals=%llu\n",
              corpusJobKindName(Kind), Matrix.size(), SerialMs, Jobs, ParMs,
              Speedup, Mismatches == 0 ? "matches" : "DIVERGES FROM",
              static_cast<unsigned long long>(Par.lastStealCount()));
  if (Provenance)
    std::printf("Fleet provenance: %llu justified answers, %llu premises, "
                "%llu dangling; recording overhead %.1f%% "
                "(%.2f ms baseline)\n",
                static_cast<unsigned long long>(Justified),
                static_cast<unsigned long long>(Premises),
                static_cast<unsigned long long>(Dangling),
                BaseMs > 0 ? (SerialMs / BaseMs - 1.0) * 100.0 : 0.0,
                BaseMs);

  W.key(Key);
  W.beginObject();
  W.member("kind", corpusJobKindName(Kind));
  W.member("jobs", static_cast<uint64_t>(Jobs));
  W.member("num_programs", static_cast<uint64_t>(Matrix.size()));
  W.member("serial_wall_ms", SerialMs);
  W.member("parallel_wall_ms", ParMs);
  W.member("speedup", Speedup);
  W.member("parallel_matches_serial", Mismatches == 0);
  W.member("steals", Par.lastStealCount());
  W.member("provenance", Provenance);
  if (Provenance) {
    W.member("serial_wall_ms_no_provenance", BaseMs);
    W.member("provenance_overhead_pct",
             BaseMs > 0 ? (SerialMs / BaseMs - 1.0) * 100.0 : 0.0);
    W.member("provenance_justified", Justified);
    W.member("provenance_premises", Premises);
    W.member("provenance_dangling", Dangling);
  }
  W.endObject();
  return Mismatches;
}

} // namespace lpa

#endif // LPA_BENCH_BENCHFLEET_H
