//===- BenchUtil.h - Shared bench-harness helpers ---------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Repeat-and-take-best measurement for the table harnesses. Analyses are
/// fast on modern hardware, so each one runs several times and the run
/// with the smallest total is reported (phases from that same run, so the
/// columns stay mutually consistent).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_BENCH_BENCHUTIL_H
#define LPA_BENCH_BENCHUTIL_H

#include <cstdio>
#include <string>

namespace lpa {

/// Phase timings of one measured analysis run (milliseconds).
struct MeasuredRow {
  double PreprocMs = 0;
  double AnalysisMs = 0;
  double CollectMs = 0;
  double totalMs() const { return PreprocMs + AnalysisMs + CollectMs; }
  size_t TableBytes = 0;
  bool Ok = false;
  std::string Error;
};

/// Runs \p Fn (returning MeasuredRow) \p Reps times; keeps the best total.
template <typename Func>
MeasuredRow bestOf(int Reps, Func &&Fn) {
  MeasuredRow Best;
  for (int I = 0; I < Reps; ++I) {
    MeasuredRow R = Fn();
    if (!R.Ok)
      return R;
    if (!Best.Ok || R.totalMs() < Best.totalMs())
      Best = R;
  }
  return Best;
}

/// Formats "a.bc" with 2 decimals (ms values).
inline std::string ms(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

/// Formats a paper value in seconds, or "-" when unavailable.
inline std::string paperSec(double V) {
  if (V < 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

} // namespace lpa

#endif // LPA_BENCH_BENCHUTIL_H
