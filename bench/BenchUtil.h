//===- BenchUtil.h - Shared bench-harness helpers ---------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Repeat-and-take-best measurement for the table harnesses. Analyses are
/// fast on modern hardware, so each one runs several times and the run
/// with the smallest total is reported (phases from that same run, so the
/// columns stay mutually consistent).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_BENCH_BENCHUTIL_H
#define LPA_BENCH_BENCHUTIL_H

#include "engine/Solver.h"
#include "obs/Json.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>

// Configure-time provenance (top-level CMakeLists.txt). Fallbacks keep the
// header usable outside the CMake build.
#ifndef LPA_GIT_SHA
#define LPA_GIT_SHA "unknown"
#endif
#ifndef LPA_BUILD_TYPE
#define LPA_BUILD_TYPE "unknown"
#endif

namespace lpa {

/// Phase timings of one measured analysis run (milliseconds).
struct MeasuredRow {
  double PreprocMs = 0;
  double AnalysisMs = 0;
  double CollectMs = 0;
  double totalMs() const { return PreprocMs + AnalysisMs + CollectMs; }
  size_t TableBytes = 0;
  bool Ok = false;
  std::string Error;
};

/// Runs \p Fn (returning MeasuredRow) \p Reps times; keeps the best total.
template <typename Func>
MeasuredRow bestOf(int Reps, Func &&Fn) {
  MeasuredRow Best;
  for (int I = 0; I < Reps; ++I) {
    MeasuredRow R = Fn();
    if (!R.Ok)
      return R;
    if (!Best.Ok || R.totalMs() < Best.totalMs())
      Best = R;
  }
  return Best;
}

/// Formats "a.bc" with 2 decimals (ms values).
inline std::string ms(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

/// Formats a paper value in seconds, or "-" when unavailable.
inline std::string paperSec(double V) {
  if (V < 0)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

/// Resolves the output path for a bench driver's JSON trajectory file:
/// "--json PATH" or "--json=PATH" overrides \p Default (which lives under
/// the gitignored bench/out/ so trajectory artifacts never land in the
/// source tree by accident).
inline std::string jsonOutPath(int Argc, char **Argv, const char *Default) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    if (A == "--json" && I + 1 < Argc)
      return Argv[I + 1];
    if (A.substr(0, 7) == "--json=")
      return std::string(A.substr(7));
  }
  return Default;
}

/// Writes \p Json to \p Path and reports where it went (benches always
/// leave a machine-readable record next to the human table). Creates the
/// parent directory if needed (the default out dir starts gitignored and
/// absent).
inline bool writeJsonFile(const std::string &Path, const std::string &Json) {
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Parent, EC);
  }
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("\n[json] wrote %s\n", Path.c_str());
  return true;
}

/// Stamps provenance members into the current JSON object: git revision,
/// build type, and which table representation the run used. Every bench
/// trajectory file carries these so A/B numbers stay attributable.
inline void
writeBenchMeta(JsonWriter &W,
               bool UseTrieTables = Solver::defaultUseTrieTables()) {
  W.member("git_sha", LPA_GIT_SHA);
  W.member("build_type", LPA_BUILD_TYPE);
  W.member("use_trie_tables", UseTrieTables);
}

/// Emits the phase timings of \p Row as members of the current object.
inline void writeMeasuredRow(JsonWriter &W, const MeasuredRow &Row) {
  W.member("preproc_ms", Row.PreprocMs);
  W.member("analysis_ms", Row.AnalysisMs);
  W.member("collect_ms", Row.CollectMs);
  W.member("total_ms", Row.totalMs());
}

} // namespace lpa

#endif // LPA_BENCH_BENCHUTIL_H
