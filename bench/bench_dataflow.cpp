//===- bench_dataflow.cpp - Section 7: dataflow via logic database -*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Section 7 cites Reps' results: a general-purpose logic system (Coral)
// ran demand dataflow queries ~6x slower than a hand-written C algorithm,
// and XSB is roughly an order of magnitude faster than Coral — hence the
// paper's belief that practical dataflow analyzers can be built this way.
// This harness measures our version of that ratio: reaching definitions
// over synthesized structured CFGs, logic engine vs bitvector worklist.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "dataflow/ReachingDefs.h"
#include "support/Stopwatch.h"
#include "support/TableFormat.h"

#include <cstdio>

using namespace lpa;

int main(int argc, char **argv) {
  std::printf("Section 7: reaching definitions — logic database vs "
              "dedicated worklist solver\n\n");

  TextTable Out;
  Out.addRow({"Nodes", "Defs", "Pairs", "Logic(ms)", "Worklist(ms)",
              "Ratio", "Demand(ms)"});

  std::string Json;
  JsonWriter JW(Json);
  JW.beginObject();
  JW.member("benchmark", "dataflow");
  writeBenchMeta(JW);
  JW.key("runs");
  JW.beginArray();

  int Failures = 0;
  for (size_t Nodes : {50u, 100u, 200u, 400u}) {
    Cfg G = randomStructuredCfg(42, Nodes, 5);

    auto L = reachingDefsLogic(G);
    if (!L) {
      std::fprintf(stderr, "logic failed: %s\n", L.getError().str().c_str());
      ++Failures;
      continue;
    }
    ReachResult W = reachingDefsWorklist(G);
    if (L->Reaches != W.Reaches) {
      std::fprintf(stderr, "MISMATCH at %zu nodes\n", Nodes);
      ++Failures;
      continue;
    }

    // One demand query against a fresh engine (tables cold, setup
    // included): "what reaches this early node?" — its backward slice is
    // small, so goal-directed evaluation touches a fraction of the graph.
    // (Querying the *last* node would cost as much as the full solution:
    // everything flows into it.)
    Stopwatch DemandWatch;
    auto At = reachingDefsAtLogic(G, static_cast<uint32_t>(G.size() / 10));
    double DemandMs = DemandWatch.elapsedMillis();
    if (!At)
      ++Failures;

    size_t Defs = 0;
    for (const CfgNode &N : G.Nodes)
      Defs += N.DefVar >= 0;

    double Ratio = W.totalSeconds() > 0
                       ? L->totalSeconds() / W.totalSeconds()
                       : 0;
    Out.addRow({std::to_string(G.size()), std::to_string(Defs),
                std::to_string(L->Reaches.size()),
                ms(L->totalSeconds() * 1e3), ms(W.totalSeconds() * 1e3),
                ms(Ratio), ms(DemandMs)});

    JW.beginObject();
    JW.member("nodes", static_cast<uint64_t>(G.size()));
    JW.member("defs", static_cast<uint64_t>(Defs));
    JW.member("reach_pairs", static_cast<uint64_t>(L->Reaches.size()));
    JW.member("logic_ms", L->totalSeconds() * 1e3);
    JW.member("worklist_ms", W.totalSeconds() * 1e3);
    JW.member("ratio", Ratio);
    JW.member("demand_ms", DemandMs);
    JW.endObject();
  }

  JW.endArray();
  JW.endObject();
  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_dataflow.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * 'Ratio' is the general-purpose/special-purpose gap; the paper's\n"
      "   data points are ~6x for Coral-vs-C with XSB ~10x faster than\n"
      "   Coral. A dedicated bitvector solver is the strongest possible\n"
      "   baseline, so ratios in the tens still support Section 7's\n"
      "   practicality argument for demand queries.\n"
      " * 'Demand' answers a single point query from cold tables —\n"
      "   goal-directed tabling computes only the needed slice.\n");
  return Failures;
}
