//===- bench_engine_micro.cpp - Engine primitive micro-benchmarks -*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// google-benchmark microbenchmarks for the substrate primitives the
// analyses lean on (unification, variant keys, clause resolution, tabled
// evaluation, native iff enumeration), plus the tabling-vs-SLD ablation on
// right-recursive transitive closure.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "engine/Solver.h"
#include "obs/FlightRecorder.h"
#include "reader/Parser.h"
#include "term/TermCopy.h"
#include "term/Unify.h"
#include "term/Variant.h"
#include "wamlite/WamMachine.h"

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

using namespace lpa;

namespace {

/// Builds a list [0, 1, ..., N-1] in \p Store.
TermRef buildList(SymbolTable &Syms, TermStore &Store, int N) {
  TermRef L = Store.mkAtom(Syms.Nil);
  for (int I = N; I-- > 0;)
    L = Store.mkStruct2(Syms.Cons, Store.mkInt(I), L);
  return L;
}

void BM_UnifyLists(benchmark::State &State) {
  SymbolTable Syms;
  TermStore Store;
  int N = static_cast<int>(State.range(0));
  TermRef A = buildList(Syms, Store, N);
  for (auto _ : State) {
    auto M = Store.mark();
    // Unify against a fresh open list of the same length.
    TermRef B = Store.mkAtom(Syms.Nil);
    for (int I = N; I-- > 0;)
      B = Store.mkStruct2(Syms.Cons, Store.mkVar(), B);
    benchmark::DoNotOptimize(unify(Store, A, B));
    Store.undoTo(M);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_UnifyLists)->Arg(16)->Arg(256)->Arg(4096);

void BM_CanonicalKey(benchmark::State &State) {
  SymbolTable Syms;
  TermStore Store;
  TermRef L = buildList(Syms, Store, static_cast<int>(State.range(0)));
  for (auto _ : State) {
    std::string Key = canonicalKey(Store, L);
    benchmark::DoNotOptimize(Key);
  }
}
BENCHMARK(BM_CanonicalKey)->Arg(16)->Arg(256);

void BM_CopyTerm(benchmark::State &State) {
  SymbolTable Syms;
  TermStore Store;
  TermRef L = buildList(Syms, Store, static_cast<int>(State.range(0)));
  for (auto _ : State) {
    TermStore Dst;
    benchmark::DoNotOptimize(copyTerm(Store, L, Dst));
  }
}
BENCHMARK(BM_CopyTerm)->Arg(16)->Arg(256);

void BM_ClauseResolution(benchmark::State &State) {
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult(R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )");
  Solver Engine(DB);
  std::string Goal = "ap([";
  for (int I = 0; I < 64; ++I)
    Goal += (I ? "," : "") + std::to_string(I);
  Goal += "], [x], Z)";
  for (auto _ : State) {
    Engine.resetHeap();
    auto G = Parser::parseTerm(Syms, Engine.store(), Goal);
    benchmark::DoNotOptimize(Engine.solveOnce(*G));
  }
}
BENCHMARK(BM_ClauseResolution);

/// Tabled transitive closure over a chain: the workload the analyses
/// effectively run (fixpoint with answer dedup).
void BM_TabledClosure(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
            ").\n";
  for (auto _ : State) {
    SymbolTable Syms;
    Database DB(Syms);
    (void)DB.consult(Prog);
    Solver Engine(DB);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(n0, X)");
    size_t Count = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_TabledClosure)->Arg(16)->Arg(64)->Arg(128);

/// Ablation: the same closure right-recursively WITHOUT tabling (bounded
/// by SLD; left recursion would not terminate at all). Quadratic blowup
/// in redundant subderivations vs the tabled run.
void BM_UntabledClosure(benchmark::State &State) {
  int N = static_cast<int>(State.range(0));
  std::string Prog = "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
            ").\n";
  for (auto _ : State) {
    SymbolTable Syms;
    Database DB(Syms);
    (void)DB.consult(Prog);
    Solver Engine(DB);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(n0, X)");
    size_t Count = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Count);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_UntabledClosure)->Arg(16)->Arg(64)->Arg(128);

/// Native iff/N enumeration (the Prop truth-table literal).
void BM_IffEnumeration(benchmark::State &State) {
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult("seed(1)."); // Engine needs a database.
  Solver Engine(DB);
  int K = static_cast<int>(State.range(0));
  std::string Goal = "iff(X0";
  for (int I = 1; I <= K; ++I)
    Goal += ", X" + std::to_string(I);
  Goal += ")";
  for (auto _ : State) {
    Engine.resetHeap();
    auto G = Parser::parseTerm(Syms, Engine.store(), Goal);
    size_t Rows = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Rows);
  }
}
BENCHMARK(BM_IffEnumeration)->Arg(2)->Arg(6)->Arg(10);

// Section 4's evaluation-side tradeoff: the same naive-reverse workload
// run by the dynamic-code interpreter versus compiled WAM-lite code.
// (The paper chose interpretation because preprocessing dominates; these
// two benchmarks quantify what that choice costs at evaluation time.)
const char *NrevProg = "nrev([], []).\n"
                       "nrev([X|Xs], R) :- nrev(Xs, T), app(T, [X], R).\n"
                       "app([], Y, Y).\n"
                       "app([X|Xs], Y, [X|Z]) :- app(Xs, Y, Z).\n";

std::string nrevGoal(int N) {
  std::string Goal = "nrev([";
  for (int I = 0; I < N; ++I)
    Goal += (I ? "," : "") + std::to_string(I);
  return Goal + "], R)";
}

void BM_EvalInterpreted(benchmark::State &State) {
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult(NrevProg);
  Solver Engine(DB);
  std::string Goal = nrevGoal(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Engine.resetHeap();
    auto G = Parser::parseTerm(Syms, Engine.store(), Goal);
    benchmark::DoNotOptimize(Engine.solveOnce(*G));
  }
}
BENCHMARK(BM_EvalInterpreted)->Arg(16)->Arg(30);

void BM_EvalCompiled(benchmark::State &State) {
  SymbolTable Syms;
  WamCompiler Compiler(Syms);
  auto P = Compiler.compileText(NrevProg);
  std::string Goal = nrevGoal(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    WamMachine M(Syms, *P);
    auto G = Parser::parseTerm(Syms, M.store(), Goal);
    size_t N = M.solve(*G, []() { return true; });
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(BM_EvalCompiled)->Arg(16)->Arg(30);

/// A/B ablation of the table representation (Options::UseTrieTables):
/// repeated tabled CALLS against a warm table. Arg: 1 = trie tables with
/// substitution factoring, 0 = legacy canonical-string keys. The call
/// carries a large ground structure, so the legacy path pays a string key
/// per call plus a whole-instance copy + unify per answer returned, while
/// the trie path walks the call once and binds only the answer variable.
void BM_TabledCallMicro(benchmark::State &State) {
  bool Prev = Solver::setDefaultUseTrieTables(State.range(0) != 0);
  {
    SymbolTable Syms;
    Database DB(Syms);
    (void)DB.consult(":- table p/2.\n p(_, done).");
    Solver Engine(DB);
    std::string Goal = "p([";
    for (int I = 0; I < 64; ++I)
      Goal += (I ? "," : "") + std::to_string(I);
    Goal += "], R)";
    auto G = Parser::parseTerm(Syms, Engine.store(), Goal);
    Engine.solve(*G, nullptr); // Warm the table: later calls are hits.
    for (auto _ : State) {
      size_t N = Engine.solve(*G, nullptr);
      benchmark::DoNotOptimize(N);
    }
    State.SetItemsProcessed(State.iterations());
  }
  Solver::setDefaultUseTrieTables(Prev);
}
BENCHMARK(BM_TabledCallMicro)->Arg(0)->Arg(1);

/// A/B ablation: answer INSERTION under the canonical tabling workload --
/// transitive closure of a complete digraph. Answers are derived many
/// times over (every intermediate vertex re-derives every path), and the
/// recursive calls path(v, Y) are partially bound, which is where
/// substitution factoring pays: the legacy path builds a canonical key of
/// the WHOLE instance per derivation and stores/returns whole-instance
/// copies, while the factored path walks only the binding of Y.
void BM_AnswerInsertMicro(benchmark::State &State) {
  bool Prev = Solver::setDefaultUseTrieTables(State.range(0) != 0);
  {
    const int N = 12;
    std::string Prog = ":- table path/2.\n"
                       "path(X, Y) :- edge(X, Y).\n"
                       "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J)
        Prog += "edge(" + std::to_string(I) + ", " + std::to_string(J) +
                ").\n";
    SymbolTable Syms;
    Database DB(Syms);
    (void)DB.consult(Prog);
    for (auto _ : State) {
      Solver Engine(DB);
      auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
      size_t Sols = Engine.solve(*G, nullptr);
      benchmark::DoNotOptimize(Sols);
    }
    // recordAnswer calls per run: 2N^2 unique answers + 2N^2 duplicates.
    State.SetItemsProcessed(State.iterations() * 4 * N * N);
  }
  Solver::setDefaultUseTrieTables(Prev);
}
BENCHMARK(BM_AnswerInsertMicro)->Arg(0)->Arg(1);

/// A/B ablation of answer provenance (Options::RecordProvenance) on the
/// same complete-digraph closure as BM_AnswerInsertMicro: every unique
/// answer additionally records its producing clause and consumed premise
/// answers. Arg: 1 = recording on, 0 = off (the null-cost path — one
/// pointer test per hook). The delta is the full recording cost including
/// premise-stack maintenance around every tabled answer return.
void BM_RecordAnswerProvenance(benchmark::State &State) {
  const int N = 12;
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      Prog += "edge(" + std::to_string(I) + ", " + std::to_string(J) +
              ").\n";
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult(Prog);
  Solver::Options EO;
  EO.RecordProvenance = State.range(0) != 0;
  for (auto _ : State) {
    Solver Engine(DB, EO);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
    size_t Sols = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Sols);
  }
  State.SetItemsProcessed(State.iterations() * 4 * N * N);
}
BENCHMARK(BM_RecordAnswerProvenance)->Arg(0)->Arg(1);

/// A/B ablation of per-subgoal cost recording (Options::RecordCosts) on
/// the same complete-digraph closure: with a profile attached, every
/// producer switch reads the steady clock and every derivation step /
/// answer insert / answer consume bumps a per-subgoal record (steps
/// batched: one clock read per 64). Arg: 1 = recording on, 0 = off (the
/// null-cost path — one pointer test per hook). Arg 0 pins the disabled
/// path: it must not regress when cost hooks change.
void BM_CostRecord(benchmark::State &State) {
  const int N = 12;
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      Prog += "edge(" + std::to_string(I) + ", " + std::to_string(J) +
              ").\n";
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult(Prog);
  Solver::Options EO;
  EO.RecordCosts = State.range(0) != 0;
  for (auto _ : State) {
    Solver Engine(DB, EO);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
    size_t Sols = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Sols);
  }
  State.SetItemsProcessed(State.iterations() * 4 * N * N);
}
BENCHMARK(BM_CostRecord)->Arg(0)->Arg(1);

/// A/B ablation of the sampling-profiler cursor (Solver::setSampleCursor)
/// on the same complete-digraph closure: with a cursor attached, every
/// producer run brackets a seqlock frame push/pop and every recorded
/// answer publishes the table gauges. Arg: 1 = cursor attached (publish
/// cost, nobody sampling), 0 = detached (the null-cost path — one pointer
/// test per hook, the always-on default). The delta bounds the worst-case
/// publish overhead independent of any Sampler thread.
void BM_CursorPublish(benchmark::State &State) {
  const int N = 12;
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      Prog += "edge(" + std::to_string(I) + ", " + std::to_string(J) +
              ").\n";
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult(Prog);
  EvalCursor Cursor;
  for (auto _ : State) {
    Solver Engine(DB);
    if (State.range(0) != 0)
      Engine.setSampleCursor(&Cursor);
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
    size_t Sols = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Sols);
  }
  State.SetItemsProcessed(State.iterations() * 4 * N * N);
}
BENCHMARK(BM_CursorPublish)->Arg(0)->Arg(1);

/// A/B ablation of the service QueryContext (Solver::setQueryContext) on
/// the same complete-digraph closure: with a context attached, the
/// outermost solve opens a query scope (id publish to tracer/cursor) and
/// — when the context carries a deadline — every resolution step pays a
/// decimated clock check. Arg: 0 = detached (the batch default; one
/// pointer test at query open), 1 = attached with an unreachable deadline
/// (the daemon's steady state: full deadline-polling cost, never firing).
/// The delta is what query-scoped telemetry costs an analysis that never
/// asked for it — the number the ISSUE requires to stay at noise level.
void BM_QueryContextPublish(benchmark::State &State) {
  const int N = 12;
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J)
      Prog += "edge(" + std::to_string(I) + ", " + std::to_string(J) +
              ").\n";
  SymbolTable Syms;
  Database DB(Syms);
  (void)DB.consult(Prog);
  QueryContext Ctx;
  Ctx.DeadlineNs = ~uint64_t(0); // Armed but unreachable.
  for (auto _ : State) {
    Solver Engine(DB);
    if (State.range(0) != 0) {
      ++Ctx.Id;
      Engine.setQueryContext(&Ctx);
    }
    auto G = Parser::parseTerm(Syms, Engine.store(), "path(X, Y)");
    size_t Sols = Engine.solve(*G, nullptr);
    benchmark::DoNotOptimize(Sols);
  }
  State.SetItemsProcessed(State.iterations() * 4 * N * N);
}
BENCHMARK(BM_QueryContextPublish)->Arg(0)->Arg(1);

/// A/B ablation of the flight recorder's per-event cost. Every engine and
/// session hook is written `if (Recorder) Recorder->record(...)` — Arg 0
/// measures exactly that disabled shape (a guarded null pointer the
/// optimizer cannot hoist), Arg 1 the attached path: one steady-clock
/// read plus a POD store into the bounded ring (no allocation once the
/// ring is built, which is what makes the recorder safe to leave always
/// on). The Arg-0 lane must stay at noise level — that is the ISSUE's
/// null-cost acceptance gate.
void BM_FlightRecorderRecord(benchmark::State &State) {
  FlightRecorder::Options O;
  O.Capacity = 256;
  FlightRecorder Ring(O);
  FlightRecorder *Recorder = State.range(0) != 0 ? &Ring : nullptr;
  benchmark::DoNotOptimize(Recorder);
  uint64_t QueryId = 0;
  for (auto _ : State) {
    ++QueryId;
    if (Recorder)
      Recorder->record(FrEventKind::QueryEnd, QueryId, /*A=*/3, /*B=*/2,
                       /*C=*/1, /*Flags=*/0, "path(a, X)");
    benchmark::DoNotOptimize(QueryId);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FlightRecorderRecord)->Arg(0)->Arg(1);

void BM_TabledFib(benchmark::State &State) {
  const char *Prog = ":- table fib/2.\n"
                     "fib(0, 0). fib(1, 1).\n"
                     "fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n"
                     "             fib(N1, F1), fib(N2, F2), F is F1 + F2.\n";
  for (auto _ : State) {
    SymbolTable Syms;
    Database DB(Syms);
    (void)DB.consult(Prog);
    Solver Engine(DB);
    auto G = Parser::parseTerm(Syms, Engine.store(), "fib(25, F)");
    benchmark::DoNotOptimize(Engine.solveOnce(*G));
  }
}
BENCHMARK(BM_TabledFib);

} // namespace

// Like BENCHMARK_MAIN(), but every run leaves a JSON trajectory file:
// unless the caller passes --benchmark_out themselves, results also go to
// bench/out/bench_engine_micro.json (gitignored; created on demand).
// "--json PATH" (the flag the table harnesses take) is translated to
// --benchmark_out=PATH.
int main(int argc, char **argv) {
  std::vector<char *> Args;
  Args.push_back(argv[0]);
  std::string OutFlag = "--benchmark_out=bench/out/bench_engine_micro.json";
  std::string FmtFlag = "--benchmark_out_format=json";
  bool HasOut = false;
  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    if (A == "--json" && I + 1 < argc) {
      OutFlag = std::string("--benchmark_out=") + argv[I + 1];
      HasOut = false;
      ++I;
      continue;
    }
    if (A.substr(0, 7) == "--json=") {
      OutFlag = std::string("--benchmark_out=") + std::string(A.substr(7));
      HasOut = false;
      continue;
    }
    if (A.substr(0, 16) == "--benchmark_out=")
      HasOut = true;
    Args.push_back(argv[I]);
  }
  if (!HasOut) {
    // google-benchmark fopen()s the out path without creating directories.
    std::filesystem::path Parent =
        std::filesystem::path(OutFlag.substr(16)).parent_path();
    if (!Parent.empty()) {
      std::error_code EC;
      std::filesystem::create_directories(Parent, EC);
    }
    Args.push_back(OutFlag.data());
    Args.push_back(FmtFlag.data());
  }
  // Provenance in the benchmark context block, mirroring
  // BenchUtil::writeBenchMeta for the google-benchmark JSON schema.
  benchmark::AddCustomContext("git_sha", LPA_GIT_SHA);
  benchmark::AddCustomContext("build_type", LPA_BUILD_TYPE);
  benchmark::AddCustomContext(
      "use_trie_tables_default",
      lpa::Solver::defaultUseTrieTables() ? "true" : "false");
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
