//===- bench_incremental.cpp - Invalidate-the-cone vs re-derive-the-world -===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The payoff measurement for dependency-driven incremental table
// invalidation (DESIGN.md §15). Each workload is warmed to completion,
// then mutated (a retract, or a redefinition of one predicate), and the
// cost of answering the same queries again is measured two ways:
//
//  * recompute — a fresh solver re-derives the world from scratch (what a
//    warm session had to do before incremental invalidation, via
//    clearTables);
//  * incremental — the warm solver sweeps the changed predicate's
//    dependency cone (invalidateDependents), keeps everything outside it,
//    and re-derives only the cone on the next solve.
//
// Workloads: the K-independent-chains generator (best case: the mutation
// touches one chain, K-1 chains' tables survive) and the two largest
// corpus programs (read, press2) under the Prop groundness transform with
// every predicate tabled (realistic case: cones overlap).
//
// Correctness is part of the bench: the incremental arm's canonical
// fingerprints (sorted answer sets per open call) must be bit-identical
// to a cold solver on the final program. Any divergence — or a chains run
// where no table survived the sweep — exits nonzero so the CI gate trips.
//
// Usage: bench_incremental [--chains K] [--nodes N] [--json PATH]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "engine/Solver.h"
#include "prop/PropTransform.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"
#include "support/TableFormat.h"
#include "term/TermWriter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

using namespace lpa;

namespace {

/// Sorted rendered answers of \p Goal, solved on \p S — the canonical
/// order-insensitive digest both arms are compared by.
std::string fingerprintGoal(SymbolTable &Syms, Solver &S, TermRef Goal) {
  std::vector<std::string> Answers;
  S.solve(Goal, [&]() {
    Answers.push_back(TermWriter::toString(Syms, S.storeConst(), Goal));
    return false;
  });
  std::sort(Answers.begin(), Answers.end());
  std::string FP = std::to_string(Answers.size()) + ":";
  for (const std::string &A : Answers)
    FP += A + ";";
  return FP;
}

struct ArmResult {
  double ColdMs = 0;        ///< First full derivation, warm start.
  double RecomputeMs = 0;   ///< Fresh solver after the mutation.
  double IncrementalMs = 0; ///< Sweep + re-solve on the warm solver.
  uint64_t TablesInvalidated = 0;
  uint64_t TablesSurvived = 0;
  uint64_t TablesRevived = 0;
  bool Match = false;
  bool SurvivorsSeen = false;
  std::string Error;
  bool Ok = false;
};

/// Runs the three-arm measurement over \p DB: warm \p Solve-all, apply
/// \p Mutate (returning the changed predicates), then the recompute and
/// incremental arms, fingerprint-checked against each other (the
/// recompute arm IS the cold solver on the final program).
template <typename MutateFn>
ArmResult measure(SymbolTable &Syms, Database &DB,
                  const std::vector<std::string> &GoalTexts,
                  MutateFn &&Mutate) {
  ArmResult R;

  auto SolveAll = [&](Solver &S, std::vector<std::string> *FPs) -> bool {
    for (const std::string &G : GoalTexts) {
      auto Goal = Parser::parseTerm(Syms, S.store(), G);
      if (!Goal) {
        R.Error = Goal.getError().str();
        return false;
      }
      if (FPs)
        FPs->push_back(fingerprintGoal(Syms, S, *Goal));
      else
        S.solve(*Goal, nullptr);
    }
    return true;
  };

  Solver Warm(DB);
  Stopwatch Watch;
  if (!SolveAll(Warm, nullptr))
    return R;
  R.ColdMs = Watch.elapsedSeconds() * 1e3;

  // The mutation: everything it stamps after this revision is changed.
  uint64_t Rev = DB.globalRevision();
  if (!Mutate(R.Error))
    return R;
  std::vector<PredKey> Changed = DB.predsChangedSince(Rev);

  // Incremental arm: sweep the cone, then answer everything again.
  Watch.restart();
  Solver::InvalidationResult Sweep = Warm.invalidateDependents(Changed);
  std::vector<std::string> IncFPs;
  if (!SolveAll(Warm, &IncFPs))
    return R;
  R.IncrementalMs = Watch.elapsedSeconds() * 1e3;
  R.TablesInvalidated = Sweep.TablesInvalidated;
  R.TablesSurvived = Sweep.TablesSurvived;
  R.TablesRevived = Warm.stats().TablesRevived;
  R.SurvivorsSeen = Sweep.TablesSurvived > 0;

  // Recompute arm: what the session did before — drop the world, start
  // cold on the final program. Also the correctness oracle.
  Watch.restart();
  Solver Cold(DB);
  std::vector<std::string> ColdFPs;
  if (!SolveAll(Cold, &ColdFPs))
    return R;
  R.RecomputeMs = Watch.elapsedSeconds() * 1e3;

  R.Match = IncFPs == ColdFPs;
  R.Ok = true;
  return R;
}

/// K disjoint left-recursive path chains (the bench_parallel_eval
/// generator, reused: the mutation retracts one edge of chain 0, so
/// chains 1..K-1 are the survivors the sweep must keep).
std::string makeChains(size_t K, size_t N) {
  std::string P;
  for (size_t C = 0; C < K; ++C) {
    std::string Pred = "path" + std::to_string(C);
    std::string Edge = "edge" + std::to_string(C);
    P += ":- table " + Pred + "/2.\n";
    P += Pred + "(X, Y) :- " + Pred + "(X, Z), " + Edge + "(Z, Y).\n";
    P += Pred + "(X, Y) :- " + Edge + "(X, Y).\n";
    for (size_t I = 0; I + 1 < N; ++I)
      P += Edge + "(c" + std::to_string(C) + "n" + std::to_string(I) + ", c" +
           std::to_string(C) + "n" + std::to_string(I + 1) + ").\n";
  }
  return P;
}

ArmResult runChains(size_t K, size_t N) {
  ArmResult R;
  SymbolTable Syms;
  Database DB(Syms);
  auto Loaded = DB.consult(makeChains(K, N));
  if (!Loaded) {
    R.Error = Loaded.getError().str();
    return R;
  }
  std::vector<std::string> Goals;
  for (size_t C = 0; C < K; ++C)
    Goals.push_back("path" + std::to_string(C) + "(X, Y)");

  std::string Retracted = "edge0(c0n" + std::to_string(N - 2) + ", c0n" +
                          std::to_string(N - 1) + ").";
  return measure(Syms, DB, Goals, [&](std::string &Err) {
    auto RR = DB.retract(Retracted);
    if (!RR) {
      Err = RR.getError().str();
      return false;
    }
    if (*RR != 1) {
      Err = "retract matched " + std::to_string(*RR) + " clauses";
      return false;
    }
    return true;
  });
}

/// Head predicate of an abstract clause term (directives never reach the
/// transformed program).
PredKey headPredOf(const TermStore &S, const SymbolTable &Syms,
                   TermRef Clause) {
  TermRef D = S.deref(Clause);
  if (S.tag(D) == TermTag::Struct && S.symbol(D) == Syms.Neck &&
      S.arity(D) == 2)
    D = S.deref(S.arg(D, 0));
  return {S.symbol(D), S.arity(D)};
}

/// A corpus program under the Prop groundness transform, all predicates
/// tabled; the mutation redefines one abstract predicate (retractAll +
/// re-assert the same clauses), which bumps its revision and forces its
/// cone — and only its cone — to re-derive.
ArmResult runCorpus(const CorpusProgram &P) {
  ArmResult R;
  SymbolTable Syms;
  TermStore AbsStore;
  PropTransformer Transformer(Syms);
  auto Program = Transformer.transformText(P.Source, AbsStore);
  if (!Program) {
    R.Error = Program.getError().str();
    return R;
  }
  Database DB(Syms);
  auto Loaded = DB.loadProgram(AbsStore, Program->Clauses);
  if (!Loaded) {
    R.Error = Loaded.getError().str();
    return R;
  }
  DB.tableAllPredicates();

  // Open call of every abstract predicate, text form (re-parsed per arm).
  std::vector<std::string> Goals;
  for (PredKey PK : Program->Predicates) {
    std::string Name = Syms.name(Transformer.abstractSymbol(PK.Sym));
    if (PK.Arity == 0) {
      Goals.push_back(Name);
      continue;
    }
    std::string G = Name + "(";
    for (uint32_t I = 0; I < PK.Arity; ++I)
      G += (I ? ", V" : "V") + std::to_string(I);
    Goals.push_back(G + ")");
  }

  // The redefined predicate: the middle of definition order, so it has
  // both dependents (later preds calling it) and independents.
  PredKey Victim{Transformer.abstractSymbol(
                     Program->Predicates[Program->Predicates.size() / 2].Sym),
                 Program->Predicates[Program->Predicates.size() / 2].Arity};
  std::vector<TermRef> VictimClauses;
  for (TermRef C : Program->Clauses)
    if (headPredOf(AbsStore, Syms, C) == Victim)
      VictimClauses.push_back(C);

  return measure(Syms, DB, Goals, [&](std::string &Err) {
    DB.retractAll(Victim);
    for (TermRef C : VictimClauses) {
      auto LR = DB.loadClause(AbsStore, C);
      if (!LR) {
        Err = LR.getError().str();
        return false;
      }
    }
    return true;
  });
}

size_t sizeArg(int Argc, char **Argv, const char *Flag, size_t Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::string_view(Argv[I]) == Flag)
      return std::strtoul(Argv[I + 1], nullptr, 10);
  return Default;
}

} // namespace

int main(int argc, char **argv) {
  size_t K = sizeArg(argc, argv, "--chains", 8);
  size_t N = sizeArg(argc, argv, "--nodes", 160);

  std::printf("Incremental invalidation vs full recomputation after one "
              "mutation\n\n");

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "incremental");
  writeBenchMeta(W);
  W.member("chains", static_cast<uint64_t>(K));
  W.member("chain_nodes", static_cast<uint64_t>(N));
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  TextTable Out;
  Out.addRow({"Program", "Cold(ms)", "Recompute(ms)", "Incremental(ms)",
              "Speedup", "Dropped", "Survived", "Fingerprints"});

  struct Workload {
    std::string Name;
    ArmResult R;
    bool RequireSurvivors;
  };
  std::vector<Workload> Work;
  Work.push_back({"chains_" + std::to_string(K) + "x" + std::to_string(N),
                  runChains(K, N), /*RequireSurvivors=*/true});
  for (const char *Name : {"read", "press2"}) {
    const CorpusProgram *P = findBenchmark(Name);
    if (!P) {
      std::fprintf(stderr, "missing corpus program %s\n", Name);
      ++Failures;
      continue;
    }
    // Corpus cones can legitimately cover everything; survivors are
    // asserted only on the chains generator, where independence is by
    // construction.
    Work.push_back({Name, runCorpus(*P), /*RequireSurvivors=*/false});
  }

  for (const Workload &WL : Work) {
    const ArmResult &R = WL.R;
    if (!R.Ok) {
      std::fprintf(stderr, "%s: %s\n", WL.Name.c_str(), R.Error.c_str());
      ++Failures;
      continue;
    }
    if (!R.Match)
      ++Failures;
    if (WL.RequireSurvivors && !R.SurvivorsSeen) {
      std::fprintf(stderr,
                   "%s: no table survived the sweep (cone imprecision)\n",
                   WL.Name.c_str());
      ++Failures;
    }
    double Speedup =
        R.IncrementalMs > 0 ? R.RecomputeMs / R.IncrementalMs : 0;
    Out.addRow({WL.Name, ms(R.ColdMs), ms(R.RecomputeMs),
                ms(R.IncrementalMs), ms(Speedup) + "x",
                std::to_string(R.TablesInvalidated),
                std::to_string(R.TablesSurvived),
                R.Match ? "identical" : "DIVERGED"});
    W.beginObject();
    W.member("name", WL.Name);
    W.member("cold_ms", R.ColdMs);
    W.member("recompute_ms", R.RecomputeMs);
    W.member("incremental_ms", R.IncrementalMs);
    W.member("speedup", Speedup);
    W.member("tables_invalidated", R.TablesInvalidated);
    W.member("tables_survived", R.TablesSurvived);
    W.member("tables_revived", R.TablesRevived);
    W.member("fingerprints_match", R.Match);
    W.endObject();
  }

  W.endArray();
  W.endObject();

  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_incremental.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * 'Recompute' is a fresh solver on the mutated program — the\n"
      "   pre-incremental warm-session cost (clearTables + re-derive).\n"
      " * 'Incremental' sweeps the changed predicate's dependency cone\n"
      "   on the warm solver and re-derives only that; 'Survived' tables\n"
      "   answer warm. Fingerprints compare the incremental arm against\n"
      "   the fresh solver bit for bit; divergence fails the run.\n");
  return Failures;
}
