//===- bench_parallel_eval.cpp - Intra-query parallel eval scaling --------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Scaling curves for Options::EvalWorkers (shared trie tables +
// SCC-parallel SLG evaluation). Two workloads:
//
//  * A worst-case generator: K independent left-recursive transitive-
//    closure chains over N-node graphs. The chains share no predicates,
//    so the parallel prime phase gets K variable-disjoint seeds with
//    zero cross-worker table traffic — the upper bound of what worker
//    scaling can deliver.
//  * The largest corpus programs (read, peep, press2) under Prop
//    groundness, where the per-predicate open calls are the seeds and
//    cones overlap heavily — the realistic lower end.
//
// Every arm is checked for canonical-fingerprint bit-identity against the
// serial arm (answer SETS are deterministic under SLG regardless of
// scheduling; see DESIGN.md §14). Any divergence is a hard failure: the
// process exits nonzero so the CI bench gate trips.
//
// Usage: bench_parallel_eval [--chains K] [--nodes N] [--json PATH]
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "engine/Solver.h"
#include "obs/FlightRecorder.h"
#include "par/CorpusScheduler.h"
#include "prop/Groundness.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"
#include "support/TableFormat.h"
#include "term/TermWriter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace lpa;

namespace {

constexpr size_t WorkerArms[] = {0, 2, 4, 8};

/// K disjoint left-recursive path/2 programs over an N-node chain each:
/// path_k has N*(N+1)/2 answers and a private SCC, so the seeds are fully
/// independent — the best case the scheduler is allowed to exploit.
std::string makeChains(size_t K, size_t N) {
  std::string P;
  for (size_t C = 0; C < K; ++C) {
    std::string Pred = "path" + std::to_string(C);
    std::string Edge = "edge" + std::to_string(C);
    P += ":- table " + Pred + "/2.\n";
    P += Pred + "(X, Y) :- " + Pred + "(X, Z), " + Edge + "(Z, Y).\n";
    P += Pred + "(X, Y) :- " + Edge + "(X, Y).\n";
    for (size_t I = 0; I + 1 < N; ++I)
      P += Edge + "(c" + std::to_string(C) + "n" + std::to_string(I) + ", c" +
           std::to_string(C) + "n" + std::to_string(I + 1) + ").\n";
  }
  return P;
}

/// Evaluates every chain's open call to completion with \p Workers eval
/// workers and returns {wall ms, canonical fingerprints (one sorted
/// answer-set digest per chain)}.
struct ChainRun {
  double WallMs = 0;
  std::vector<std::string> Fingerprints;
  uint64_t SharedPublishes = 0;
  uint64_t PoolExecuted = 0;
  bool Ok = false;
  std::string Error;
};

ChainRun runChains(const std::string &Program, size_t K, size_t Workers,
                   FlightRecorder *Recorder) {
  ChainRun R;
  SymbolTable Symbols;
  Database DB(Symbols);
  auto Loaded = DB.consult(Program);
  if (!Loaded) {
    R.Error = Loaded.getError().str();
    return R;
  }

  Solver::Options O;
  O.EvalWorkers = Workers;
  Solver Engine(DB, O);
  // The identity check must hold with the recorder attached — the daemon
  // never runs without it, so neither do the arms being certified.
  Engine.setFlightRecorder(Recorder);

  std::vector<TermRef> Calls;
  for (size_t C = 0; C < K; ++C) {
    auto Call = Parser::parseTerm(Symbols, Engine.store(),
                                  "path" + std::to_string(C) + "(X, Y)");
    if (!Call) {
      R.Error = Call.getError().str();
      return R;
    }
    Calls.push_back(*Call);
  }

  Stopwatch Watch;
  if (Workers > 1)
    Engine.primeTables(Calls);
  for (TermRef Call : Calls)
    Engine.solve(Call, nullptr);
  R.WallMs = Watch.elapsedSeconds() * 1e3;

  // Canonical fingerprint: the sorted answer set of each chain's open
  // call. Order-insensitive by construction, so serial and parallel arms
  // must agree bit for bit.
  for (TermRef Call : Calls) {
    const Subgoal *SG = Engine.findSubgoal(Call);
    if (!SG) {
      R.Error = "no table for a chain open call";
      return R;
    }
    std::vector<std::string> Answers;
    TermStore Scratch;
    for (size_t AI = 0, AE = Engine.answerCount(*SG); AI < AE; ++AI) {
      Scratch.clear();
      TermRef Ans = Engine.answerInstance(*SG, AI, Scratch);
      Answers.push_back(TermWriter::toString(Symbols, Scratch, Ans));
    }
    std::sort(Answers.begin(), Answers.end());
    std::string FP = std::to_string(Answers.size()) + ":";
    for (const std::string &A : Answers)
      FP += A + ";";
    R.Fingerprints.push_back(std::move(FP));
  }
  R.SharedPublishes = Engine.sharedTableStats().Publishes;
  R.PoolExecuted = Engine.evalPoolStats().Executed;
  R.Ok = true;
  return R;
}

struct GroundnessRun {
  double AnalysisMs = 0;
  std::vector<std::string> Fingerprints;
  bool Ok = false;
  std::string Error;
};

GroundnessRun runGroundness(const CorpusProgram &P, size_t Workers,
                            bool Provenance = false) {
  GroundnessRun R;
  SymbolTable Symbols;
  GroundnessAnalyzer::Options GO;
  GO.Engine.EvalWorkers = Workers;
  GO.Engine.RecordProvenance = Provenance;
  GroundnessAnalyzer Analyzer(Symbols, GO);
  auto Res = Analyzer.analyze(P.Source);
  if (!Res) {
    R.Error = Res.getError().str();
    return R;
  }
  R.AnalysisMs = Res->AnalysisSeconds * 1e3;
  R.Fingerprints = fingerprintGroundness(*Res);
  if (Provenance)
    R.Fingerprints.push_back(
        "$provenance justified=" + std::to_string(Res->JustifiedAnswers) +
        " premises=" + std::to_string(Res->JustificationPremises) +
        " dangling=" + std::to_string(Res->DanglingPremises));
  R.Ok = true;
  return R;
}

size_t sizeArg(int Argc, char **Argv, const char *Flag, size_t Default) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::string_view(Argv[I]) == Flag)
      return std::strtoul(Argv[I + 1], nullptr, 10);
  return Default;
}

} // namespace

int main(int argc, char **argv) {
  size_t K = sizeArg(argc, argv, "--chains", 8);
  size_t N = sizeArg(argc, argv, "--nodes", 220);

  std::printf("Intra-query parallel evaluation scaling "
              "(EvalWorkers 0/2/4/8; 0 = serial baseline)\n\n");

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "parallel_eval");
  writeBenchMeta(W);
  W.member("chains", static_cast<uint64_t>(K));
  W.member("chain_nodes", static_cast<uint64_t>(N));
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  TextTable Out;
  Out.addRow({"Program", "Workers", "Wall(ms)", "Speedup", "Fingerprints",
              "Published", "PoolTasks"});

  // One recorder across every arm (the daemon's always-on posture). On a
  // fingerprint divergence the ring — which now holds any deadline or
  // incomplete-table anomalies the diverging arm hit — goes to stderr.
  FlightRecorder Recorder;

  //--- Worst-case generator: K independent transitive-closure chains. ----
  {
    std::string Program = makeChains(K, N);
    std::string Name =
        "chains_" + std::to_string(K) + "x" + std::to_string(N);
    W.beginObject();
    W.member("name", Name);
    W.key("arms");
    W.beginArray();
    ChainRun Serial;
    for (size_t Workers : WorkerArms) {
      ChainRun Best;
      for (int Rep = 0; Rep < 3; ++Rep) {
        ChainRun R = runChains(Program, K, Workers, &Recorder);
        if (!R.Ok) {
          Best = R;
          break;
        }
        if (!Best.Ok || R.WallMs < Best.WallMs)
          Best = std::move(R);
      }
      if (!Best.Ok) {
        std::fprintf(stderr, "%s workers=%zu: %s\n", Name.c_str(), Workers,
                     Best.Error.c_str());
        ++Failures;
        continue;
      }
      if (Workers == 0)
        Serial = Best;
      bool Match = Best.Fingerprints == Serial.Fingerprints;
      if (!Match) {
        ++Failures;
        Recorder.noteFingerprintDivergence(
            0, Name + " workers=" + std::to_string(Workers));
        std::fprintf(stderr, "fingerprint divergence — recorder journal:\n");
        Recorder.writeRawTo(2);
      }
      double Speedup = Best.WallMs > 0 ? Serial.WallMs / Best.WallMs : 0;
      Out.addRow({Name, std::to_string(Workers), ms(Best.WallMs),
                  Workers ? ms(Speedup) + "x" : "1.00x",
                  Match ? "identical" : "DIVERGED",
                  std::to_string(Best.SharedPublishes),
                  std::to_string(Best.PoolExecuted)});
      W.beginObject();
      W.member("workers", static_cast<uint64_t>(Workers));
      W.member("wall_ms", Best.WallMs);
      W.member("speedup", Speedup);
      W.member("fingerprints_match", Match);
      W.member("shared_publishes", Best.SharedPublishes);
      W.member("pool_tasks", Best.PoolExecuted);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }

  //--- Largest corpus programs under Prop groundness. ---------------------
  for (const char *Name : {"read", "peep", "press2"}) {
    const CorpusProgram *P = findBenchmark(Name);
    if (!P) {
      std::fprintf(stderr, "missing corpus program %s\n", Name);
      ++Failures;
      continue;
    }
    W.beginObject();
    W.member("name", Name);
    W.key("arms");
    W.beginArray();
    GroundnessRun Serial;
    for (size_t Workers : WorkerArms) {
      GroundnessRun Best;
      for (int Rep = 0; Rep < 3; ++Rep) {
        GroundnessRun R = runGroundness(*P, Workers);
        if (!R.Ok) {
          Best = R;
          break;
        }
        if (!Best.Ok || R.AnalysisMs < Best.AnalysisMs)
          Best = std::move(R);
      }
      if (!Best.Ok) {
        std::fprintf(stderr, "%s workers=%zu: %s\n", Name, Workers,
                     Best.Error.c_str());
        ++Failures;
        continue;
      }
      if (Workers == 0)
        Serial = Best;
      bool Match = Best.Fingerprints == Serial.Fingerprints;
      if (!Match)
        ++Failures;
      double Speedup =
          Best.AnalysisMs > 0 ? Serial.AnalysisMs / Best.AnalysisMs : 0;
      Out.addRow({Name, std::to_string(Workers), ms(Best.AnalysisMs),
                  Workers ? ms(Speedup) + "x" : "1.00x",
                  Match ? "identical" : "DIVERGED", "-", "-"});
      W.beginObject();
      W.member("workers", static_cast<uint64_t>(Workers));
      W.member("wall_ms", Best.AnalysisMs);
      W.member("speedup", Speedup);
      W.member("fingerprints_match", Match);
      W.endObject();
    }

    // Provenance-validity line: with RecordProvenance on the engine
    // refuses to go parallel (justification arenas are single-writer), so
    // both arms evaluate serially — the check is that asking for workers
    // alongside provenance still yields the same justified/premise counts.
    GroundnessRun ProvSerial = runGroundness(*P, 0, /*Provenance=*/true);
    GroundnessRun ProvWorkers = runGroundness(*P, 4, /*Provenance=*/true);
    bool ProvMatch = ProvSerial.Ok && ProvWorkers.Ok &&
                     ProvSerial.Fingerprints == ProvWorkers.Fingerprints;
    if (!ProvMatch)
      ++Failures;
    W.endArray();
    W.member("provenance_match", ProvMatch);
    W.endObject();
  }

  W.endArray();
  W.endObject();

  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_parallel_eval.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * The chains row is the designed best case: independent SCCs,\n"
      "   zero shared-table contention. Corpus rows share cones across\n"
      "   seeds, so their curves flatten sooner (warm imports replace\n"
      "   re-evaluation, but the largest cone bounds the critical path).\n"
      " * 'Fingerprints' compares canonical per-predicate answer sets\n"
      "   against the serial arm; any divergence fails the run.\n");
  return Failures;
}
