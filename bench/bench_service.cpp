//===- bench_service.cpp - Analysis-service throughput/latency bench ----------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The daemon's value proposition measured in-process: one AnalysisSession
// answers a cold query (tables empty — the full fixpoint) and then a
// stream of identical warm queries (tables completed by a prior query —
// the XSB "don't recompute" payoff the paper's analysis-server framing
// relies on). Reported per workload size:
//
//   cold_wall_ms       first query (builds the path/2 closure)
//   warm_wall_ms       mean of the warm stream
//   warm_speedup       cold / warm
//   p50_us/p95_us/p99_us  service latency quantiles over the whole stream
//   warm_hit_rate      warm hits / (warm hits + cold misses)
//
// JSON out (default bench/out/bench_service.json, override with --json
// PATH) feeds BENCH_TRAJECTORY.json via tools/bench_compare like every
// other bench driver; the `_ms` keys ride the wall-time regression gate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "obs/Json.h"
#include "srv/Session.h"
#include "support/TableFormat.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace lpa;

namespace {

struct ServiceRow {
  int Nodes = 0;
  double ColdMs = 0;
  double WarmMs = 0; ///< Mean over the warm stream.
  double P50Us = 0, P95Us = 0, P99Us = 0;
  double WarmHitRate = 0;
  uint64_t QueriesServed = 0;
};

/// Chain-graph transitive closure, the canonical tabled workload.
std::string chainProgram(int N) {
  std::string Prog = ":- table path/2.\n"
                     "path(X, Y) :- edge(X, Y).\n"
                     "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  for (int I = 0; I < N; ++I)
    Prog += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
            ").\n";
  return Prog;
}

ServiceRow measure(int Nodes, int WarmQueries) {
  ServiceRow Row;
  Row.Nodes = Nodes;

  AnalysisSession Session;
  auto Loaded = Session.consult(chainProgram(Nodes));
  if (!Loaded) {
    std::fprintf(stderr, "consult failed: %s\n",
                 Loaded.getError().str().c_str());
    return Row;
  }

  auto Cold = Session.runQuery("path(n0, X)", /*MaxSolutions=*/0);
  if (!Cold)
    return Row;
  Row.ColdMs = Cold->WallMs;

  double WarmTotal = 0;
  for (int I = 0; I < WarmQueries; ++I) {
    auto Warm = Session.runQuery("path(n0, X)", /*MaxSolutions=*/0);
    if (!Warm)
      return Row;
    WarmTotal += Warm->WallMs;
  }
  Row.WarmMs = WarmQueries ? WarmTotal / WarmQueries : 0;

  // Exact nearest-rank quantiles: the whole stream (1 + WarmQueries)
  // fits inside the default 128-entry window.
  const ServiceStats &S = Session.serviceStats();
  Row.P50Us = static_cast<double>(S.windowQuantileUs(0.50));
  Row.P95Us = static_cast<double>(S.windowQuantileUs(0.95));
  Row.P99Us = static_cast<double>(S.windowQuantileUs(0.99));
  Row.WarmHitRate = S.warmHitRate();
  Row.QueriesServed = S.queriesServed();
  return Row;
}

} // namespace

int main(int argc, char **argv) {
  const int WarmQueries = 64;
  const int Sizes[] = {64, 256, 1024};

  std::vector<ServiceRow> Rows;
  for (int N : Sizes)
    Rows.push_back(measure(N, WarmQueries));

  std::printf("Analysis service: cold fixpoint vs warm-table query stream "
              "(%d warm queries per size)\n\n",
              WarmQueries);
  TextTable T;
  T.addRow({"Nodes", "Cold ms", "Warm ms", "Speedup", "p50 us", "p95 us",
            "p99 us", "Warm rate"});
  for (const ServiceRow &R : Rows) {
    double Speedup = R.WarmMs > 0 ? R.ColdMs / R.WarmMs : 0;
    T.addRow({std::to_string(R.Nodes), ms(R.ColdMs), ms(R.WarmMs),
              ms(Speedup), ms(R.P50Us), ms(R.P95Us), ms(R.P99Us),
              ms(R.WarmHitRate)});
  }
  std::printf("%s", T.render().c_str());

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("bench", "service");
  writeBenchMeta(W);
  W.member("warm_queries", uint64_t(WarmQueries));
  W.key("rows");
  W.beginArray();
  for (const ServiceRow &R : Rows) {
    W.beginObject();
    W.member("nodes", uint64_t(R.Nodes));
    W.member("cold_wall_ms", R.ColdMs);
    W.member("warm_wall_ms", R.WarmMs);
    W.member("warm_speedup", R.WarmMs > 0 ? R.ColdMs / R.WarmMs : 0);
    W.member("p50_us", R.P50Us);
    W.member("p95_us", R.P95Us);
    W.member("p99_us", R.P99Us);
    W.member("warm_hit_rate", R.WarmHitRate);
    W.member("queries_served", R.QueriesServed);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_service.json"),
                Json);
  return 0;
}
