//===- bench_table1_groundness.cpp - Regenerate Table 1 ---------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Table 1: "Performance of Prop-based groundness analysis in XSB" — per
// benchmark: preprocessing / analysis / collection time, total, increase
// over plain compile ("compile" = read + load the concrete program, our
// dynamic-code stand-in for XSB compilation; see DESIGN.md), and table
// space. Paper reference values are printed alongside (absolute times are
// 1996 SPARC numbers; the shape — preprocessing-dominant phases, small
// tables, heavier rows for press/read — is the reproduction target).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchFleet.h"
#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "obs/Metrics.h"
#include "prop/Groundness.h"
#include "support/TableFormat.h"

#include <cstdio>

using namespace lpa;

int main(int argc, char **argv) {
  std::printf("Table 1: Prop-based groundness analysis "
              "(ours in ms; paper columns in seconds, SPARC 10/30)\n\n");

  TextTable Out;
  Out.addRow({"Program", "Lines", "Preproc", "Analysis", "Collect", "Total",
              "Incr(%)", "Table(B)", "AggTab(B)", "|", "paperTot(s)",
              "paperIncr(%)", "paperTab(B)"});

  // Machine-readable trajectory: one record per program with the timings
  // above plus the full per-predicate metrics (subgoal/answer counts,
  // table bytes) from an instrumented re-run.
  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "table1_groundness");
  writeBenchMeta(W);
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  for (const CorpusProgram &P : prologBenchmarks()) {
    MeasuredRow Best = bestOf(5, [&]() {
      MeasuredRow Row;
      SymbolTable Symbols;
      GroundnessAnalyzer Analyzer(Symbols);
      auto R = Analyzer.analyze(P.Source);
      if (!R) {
        Row.Error = R.getError().str();
        return Row;
      }
      Row.PreprocMs = R->PreprocSeconds * 1e3;
      Row.AnalysisMs = R->AnalysisSeconds * 1e3;
      Row.CollectMs = R->CollectSeconds * 1e3;
      Row.TableBytes = R->TableSpaceBytes;
      Row.Ok = true;
      return Row;
    });
    if (!Best.Ok) {
      std::fprintf(stderr, "%s: %s\n", P.Name, Best.Error.c_str());
      ++Failures;
      continue;
    }

    // Compile-time baseline: read + load the concrete program.
    double CompileMs = 0;
    {
      SymbolTable Symbols;
      GroundnessAnalyzer Analyzer(Symbols);
      double BestCompile = -1;
      for (int I = 0; I < 5; ++I) {
        auto C = Analyzer.measureCompileSeconds(P.Source);
        if (C && (BestCompile < 0 || *C < BestCompile))
          BestCompile = *C;
      }
      CompileMs = BestCompile * 1e3;
    }
    double IncreasePct =
        CompileMs > 0 ? 100.0 * Best.totalMs() / CompileMs : -1;

    // Section 6.2 ablation: table space under answer aggregation
    // (one joined mode tuple per subgoal instead of a truth table).
    size_t AggBytes = 0;
    {
      SymbolTable Symbols;
      GroundnessAnalyzer::Options AggOpts;
      AggOpts.AggregateModes = true;
      GroundnessAnalyzer Analyzer(Symbols, AggOpts);
      auto R = Analyzer.analyze(P.Source);
      if (R)
        AggBytes = R->TableSpaceBytes;
    }

    Out.addRow({P.Name, std::to_string(P.sourceLines()), ms(Best.PreprocMs),
                ms(Best.AnalysisMs), ms(Best.CollectMs), ms(Best.totalMs()),
                ms(IncreasePct), std::to_string(Best.TableBytes),
                std::to_string(AggBytes), "|", paperSec(P.Table1.Total),
                paperSec(P.Table1.CompileIncreasePct),
                std::to_string(P.Table1.TableBytes)});

    // Instrumented re-run (outside the timed loop) for the JSON record:
    // phase spans land in "phases", engine counters in "counters", and
    // per-predicate subgoal/answer/table-byte detail in "predicates".
    MetricsRegistry Reg;
    {
      SymbolTable Symbols;
      GroundnessAnalyzer::Options ObsOpts;
      ObsOpts.Metrics = &Reg;
      GroundnessAnalyzer Analyzer(Symbols, ObsOpts);
      (void)Analyzer.analyze(P.Source);
    }
    W.beginObject();
    W.member("name", P.Name);
    W.member("lines", static_cast<uint64_t>(P.sourceLines()));
    writeMeasuredRow(W, Best);
    W.member("compile_ms", CompileMs);
    W.member("increase_pct", IncreasePct);
    W.member("table_bytes", static_cast<uint64_t>(Best.TableBytes));
    W.member("agg_table_bytes", static_cast<uint64_t>(AggBytes));
    W.key("metrics");
    Reg.writeJson(W);
    W.endObject();
  }

  W.endArray();

  // Parallel arm (--jobs N, default hardware threads): the same 12 programs
  // through the CorpusScheduler, serial then parallel, with per-predicate
  // bit-identity required between the two runs.
  Failures +=
      runFleetPhase(W, "fleet", CorpusJobKind::Groundness, jobsArg(argc, argv),
                    provenanceArg(argc, argv), sampleHzArg(argc, argv),
                    foldedOutArg(argc, argv));

  W.endObject();
  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_table1_groundness.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * 'Incr' compares total analysis time to reading+loading the\n"
      "   concrete program with no analysis. The paper's denominator is\n"
      "   full XSB compilation — far slower than our C++ parse+load — so\n"
      "   its ratios are sub-100%% while ours are in the thousands. See\n"
      "   bench_table1_wamlite for a compilation-like denominator.\n"
      " * Phase shape differs from the paper: their preprocessing\n"
      "   (transformation + dynamic loading, written in Prolog) dominated;\n"
      "   our C++ preprocessing is microseconds and evaluation carries\n"
      "   the cost instead. The per-program ordering is what reproduces:\n"
      "   press1/press2 heaviest, then read/kalah, with qsort/queens\n"
      "   lightest — the same ranking as the paper's Total column.\n"
      " * Table space tracks the same ranking (press/read largest,\n"
      "   qsort/queens smallest).\n");
  return Failures;
}
