//===- bench_table1_wamlite.cpp - Compile-vs-analyze ablation ---*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Section 4 of the paper weighs full WAM compilation against dynamic
// loading ("assert") as the way to prepare programs for analysis, and
// Table 1's "compile time increase" column measures analysis cost against
// full compilation. This harness reproduces both: per benchmark it times
//   (a) assert-style loading (parse + clause database),
//   (b) WAM-lite compilation (parse + register allocation + code gen),
//   (c) the full groundness analysis (preproc + eval + collect),
// and prints the analysis-to-compile ratio next to the paper's column.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchFleet.h"
#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "prop/Groundness.h"
#include "support/Stopwatch.h"
#include "support/TableFormat.h"
#include "wamlite/WamCompiler.h"

#include <cstdio>

using namespace lpa;

int main(int argc, char **argv) {
  std::printf("Table 1 companion: analysis time relative to compilation "
              "(Section 4's compile-vs-assert tradeoff)\n\n");

  TextTable Out;
  Out.addRow({"Program", "Assert(ms)", "WamC(ms)", "Instrs", "Code(B)",
              "Analysis(ms)", "Incr(%)", "|", "paperIncr(%)"});

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "table1_wamlite");
  writeBenchMeta(W);
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  for (const CorpusProgram &P : prologBenchmarks()) {
    // (a) Assert-style loading.
    double AssertMs = -1;
    for (int I = 0; I < 5; ++I) {
      SymbolTable Syms;
      Database DB(Syms);
      Stopwatch W;
      auto R = DB.consult(P.Source);
      double Ms = W.elapsedMillis();
      if (!R) {
        ++Failures;
        break;
      }
      if (AssertMs < 0 || Ms < AssertMs)
        AssertMs = Ms;
    }

    // (b) Full WAM-lite compilation.
    double CompileMs = -1;
    size_t Instrs = 0, Bytes = 0;
    for (int I = 0; I < 5; ++I) {
      SymbolTable Syms;
      WamCompiler C(Syms);
      Stopwatch W;
      auto R = C.compileText(P.Source);
      double Ms = W.elapsedMillis();
      if (!R) {
        std::fprintf(stderr, "%s: %s\n", P.Name, R.getError().str().c_str());
        ++Failures;
        break;
      }
      Instrs = R->totalInstructions();
      Bytes = R->codeBytes();
      if (CompileMs < 0 || Ms < CompileMs)
        CompileMs = Ms;
    }

    // (c) The analysis itself.
    MeasuredRow Analysis = bestOf(5, [&]() {
      MeasuredRow Row;
      SymbolTable Syms;
      GroundnessAnalyzer A(Syms);
      auto R = A.analyze(P.Source);
      if (!R) {
        Row.Error = R.getError().str();
        return Row;
      }
      Row.PreprocMs = R->PreprocSeconds * 1e3;
      Row.AnalysisMs = R->AnalysisSeconds * 1e3;
      Row.CollectMs = R->CollectSeconds * 1e3;
      Row.Ok = true;
      return Row;
    });
    if (!Analysis.Ok || CompileMs < 0 || AssertMs < 0)
      continue;

    double Incr = 100.0 * Analysis.totalMs() / CompileMs;
    Out.addRow({P.Name, ms(AssertMs), ms(CompileMs),
                std::to_string(Instrs), std::to_string(Bytes),
                ms(Analysis.totalMs()), ms(Incr), "|",
                paperSec(P.Table1.CompileIncreasePct)});

    W.beginObject();
    W.member("name", P.Name);
    W.member("assert_ms", AssertMs);
    W.member("wam_compile_ms", CompileMs);
    W.member("wam_instructions", static_cast<uint64_t>(Instrs));
    W.member("wam_code_bytes", static_cast<uint64_t>(Bytes));
    writeMeasuredRow(W, Analysis);
    W.member("increase_pct", Incr);
    W.endObject();
  }

  W.endArray();

  // Parallel arm: the 12 programs through WAM-lite compilation on the
  // fleet, parallel output required bit-identical to serial.
  Failures +=
      runFleetPhase(W, "fleet", CorpusJobKind::WamLite, jobsArg(argc, argv),
                    provenanceArg(argc, argv), sampleHzArg(argc, argv),
                    foldedOutArg(argc, argv));

  W.endObject();
  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_table1_wamlite.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * 'Incr' = analysis total / WAM-lite compile time. The paper's\n"
      "   22-64%% used real XSB compilation; our compiler is leaner, so\n"
      "   expect larger ratios — the reproduction target is the trend\n"
      "   (analysis within a small multiple of compilation) and the\n"
      "   assert-vs-compile gap.\n"
      " * Assert loading beats full compilation on every row, which is\n"
      "   Section 4's argument for the dynamic-code configuration.\n");
  return Failures;
}
