//===- bench_table2_vs_baseline.cpp - Regenerate Table 2 --------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Table 2: "Comparison of XSB and GAIA" — total analysis time of the
// general-purpose tabled engine versus a special-purpose analyzer on the
// same benchmarks, with identical results. Our GAIA stand-in is the
// bitmask bottom-up evaluator in src/baseline. The harness also reports
// the semi-naive vs naive ablation for the baseline (the paper's
// delta-set discussion in Section 4).
//
//===----------------------------------------------------------------------===//

#include "baseline/GaiaLike.h"
#include "bench/BenchFleet.h"
#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "prop/Groundness.h"
#include "support/TableFormat.h"

#include <cstdio>

using namespace lpa;

int main(int argc, char **argv) {
  std::printf("Table 2: tabled engine (XSB role) vs special-purpose "
              "baseline (GAIA role), total analysis time\n"
              "(ours in ms; paper columns in seconds; Engine runs twice: "
              "trie tables vs legacy string-keyed tables)\n\n");

  TextTable Out;
  Out.addRow({"Program", "Eng(trie)", "Eng(str)", "Baseline", "Base(naive)",
              "Identical", "|", "paperXSB(s)", "paperGAIA(s)"});

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "table2_vs_baseline");
  writeBenchMeta(W);
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  for (const CorpusProgram &P : prologBenchmarks()) {
    // The engine runs under BOTH table representations (the A/B ablation);
    // results must be identical bit for bit.
    GroundnessResult EngineResult, EngineResultStr;
    auto RunEngine = [&](bool UseTrieTables) {
      bool Prev = Solver::setDefaultUseTrieTables(UseTrieTables);
      MeasuredRow Best = bestOf(5, [&]() {
        MeasuredRow Row;
        SymbolTable Symbols;
        GroundnessAnalyzer Analyzer(Symbols);
        auto R = Analyzer.analyze(P.Source);
        if (!R) {
          Row.Error = R.getError().str();
          return Row;
        }
        GroundnessResult &Target =
            UseTrieTables ? EngineResult : EngineResultStr;
        Target = std::move(*R);
        Row.PreprocMs = Target.PreprocSeconds * 1e3;
        Row.AnalysisMs = Target.AnalysisSeconds * 1e3;
        Row.CollectMs = Target.CollectSeconds * 1e3;
        Row.Ok = true;
        return Row;
      });
      Solver::setDefaultUseTrieTables(Prev);
      return Best;
    };
    MeasuredRow Engine = RunEngine(/*UseTrieTables=*/true);
    MeasuredRow EngineStr = RunEngine(/*UseTrieTables=*/false);

    BaselineResult BaselineRes;
    auto RunBaseline = [&](bool Seminaive) {
      return bestOf(5, [&]() {
        MeasuredRow Row;
        SymbolTable Symbols;
        GaiaLikeAnalyzer::Options Opts;
        Opts.Seminaive = Seminaive;
        GaiaLikeAnalyzer Analyzer(Symbols, Opts);
        auto R = Analyzer.analyze(P.Source);
        if (!R) {
          Row.Error = R.getError().str();
          return Row;
        }
        if (Seminaive)
          BaselineRes = std::move(*R);
        Row.PreprocMs = R->PreprocSeconds * 1e3;
        Row.AnalysisMs = R->AnalysisSeconds * 1e3;
        Row.CollectMs = R->CollectSeconds * 1e3;
        Row.Ok = true;
        return Row;
      });
    };
    MeasuredRow Baseline = RunBaseline(/*Seminaive=*/true);
    MeasuredRow BaselineNaive = RunBaseline(/*Seminaive=*/false);

    if (!Engine.Ok || !EngineStr.Ok || !Baseline.Ok || !BaselineNaive.Ok) {
      std::fprintf(stderr, "%s failed: %s%s%s\n", P.Name,
                   Engine.Error.c_str(), EngineStr.Error.c_str(),
                   Baseline.Error.c_str());
      ++Failures;
      continue;
    }

    // The paper: "The results obtained on the two systems are identical."
    bool Identical = EngineResult.Predicates.size() ==
                     BaselineRes.Predicates.size();
    for (size_t I = 0; Identical && I < EngineResult.Predicates.size(); ++I)
      Identical = EngineResult.Predicates[I].SuccessSet ==
                  BaselineRes.Predicates[I].SuccessSet;
    // And the two table representations must agree with each other:
    // identical success sets AND identical call patterns.
    bool TrieIdentical = EngineResult.Predicates.size() ==
                         EngineResultStr.Predicates.size();
    for (size_t I = 0; TrieIdentical && I < EngineResult.Predicates.size();
         ++I)
      TrieIdentical =
          EngineResult.Predicates[I].SuccessSet ==
              EngineResultStr.Predicates[I].SuccessSet &&
          EngineResult.Predicates[I].CallPatterns ==
              EngineResultStr.Predicates[I].CallPatterns;
    Identical = Identical && TrieIdentical;
    if (!Identical)
      ++Failures;

    Out.addRow({P.Name, ms(Engine.totalMs()), ms(EngineStr.totalMs()),
                ms(Baseline.totalMs()), ms(BaselineNaive.totalMs()),
                Identical ? "yes" : "NO!", "|", paperSec(P.Table1.Total),
                paperSec(P.GaiaSeconds)});

    W.beginObject();
    W.member("name", P.Name);
    W.member("engine_total_ms", Engine.totalMs());
    W.member("engine_string_total_ms", EngineStr.totalMs());
    W.member("baseline_total_ms", Baseline.totalMs());
    W.member("baseline_naive_total_ms", BaselineNaive.totalMs());
    W.member("identical_results", Identical);
    W.member("identical_trie_vs_string", TrieIdentical);
    W.endObject();
  }

  W.endArray();

  // Parallel arm under BOTH table representations. The default flips on
  // the main thread between runs, and each fleet's pool is joined before
  // the flip, so workers observe a stable value (happens-before via join).
  size_t Jobs = jobsArg(argc, argv);
  bool Prov = provenanceArg(argc, argv);
  uint32_t Hz = sampleHzArg(argc, argv);
  // Only the trie fleet writes folded stacks — a shared --folded path
  // would be clobbered by the string-table phase.
  Failures += runFleetPhase(W, "fleet_trie", CorpusJobKind::Groundness, Jobs,
                            Prov, Hz, foldedOutArg(argc, argv));
  {
    bool Prev = Solver::setDefaultUseTrieTables(false);
    Failures += runFleetPhase(W, "fleet_string", CorpusJobKind::Groundness,
                              Jobs, Prov, Hz);
    Solver::setDefaultUseTrieTables(Prev);
  }

  W.endObject();
  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_table2_vs_baseline.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * 'Identical' checks success-set equality predicate by predicate\n"
      "   (the paper's central Table 2 claim).\n"
      " * In the paper the general-purpose engine beats GAIA on most rows\n"
      "   (e.g. press1: 1.82s vs 5.96s); our baseline is a from-scratch\n"
      "   stand-in, so compare trends per row, not absolute ratios.\n"
      " * 'Base(naive)' re-derives everything each round (no delta sets);\n"
      "   the gap to 'Baseline' shows the semi-naive win the paper credits\n"
      "   its incremental engine for.\n");
  return Failures;
}
