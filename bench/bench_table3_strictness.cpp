//===- bench_table3_strictness.cpp - Regenerate Table 3 ---------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Table 3: "Performance of Strictness Analysis in XSB" — per functional
// benchmark: preprocessing / analysis / collection time, total, and table
// space. The paper's headline observations: preprocessing dominates
// everywhere except pcprove (whose deeply nested applications make the
// evaluation phase the largest), and table space stays within tens of
// kilobytes.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchFleet.h"
#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "obs/Metrics.h"
#include "strictness/Strictness.h"
#include "support/TableFormat.h"

#include <cstdio>

using namespace lpa;

int main(int argc, char **argv) {
  std::printf("Table 3: demand-propagation strictness analysis "
              "(ours in ms; paper columns in seconds, SPARC LX)\n\n");

  TextTable Out;
  Out.addRow({"Program", "Lines", "Preproc", "Analysis", "Collect", "Total",
              "Table(B)", "|", "paperTot(s)", "paperTab(B)"});

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "table3_strictness");
  writeBenchMeta(W);
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  double TotalLines = 0, TotalSeconds = 0;
  for (const CorpusProgram &P : flBenchmarks()) {
    MeasuredRow Best = bestOf(5, [&]() {
      MeasuredRow Row;
      StrictnessAnalyzer Analyzer;
      auto R = Analyzer.analyze(P.Source);
      if (!R) {
        Row.Error = R.getError().str();
        return Row;
      }
      Row.PreprocMs = R->PreprocSeconds * 1e3;
      Row.AnalysisMs = R->AnalysisSeconds * 1e3;
      Row.CollectMs = R->CollectSeconds * 1e3;
      Row.TableBytes = R->TableSpaceBytes;
      Row.Ok = true;
      return Row;
    });
    if (!Best.Ok) {
      std::fprintf(stderr, "%s: %s\n", P.Name, Best.Error.c_str());
      ++Failures;
      continue;
    }
    TotalLines += P.sourceLines();
    TotalSeconds += Best.totalMs() / 1e3;

    Out.addRow({P.Name, std::to_string(P.sourceLines()), ms(Best.PreprocMs),
                ms(Best.AnalysisMs), ms(Best.CollectMs), ms(Best.totalMs()),
                std::to_string(Best.TableBytes), "|",
                paperSec(P.Table1.Total),
                std::to_string(P.Table1.TableBytes)});

    // Instrumented re-run for the per-predicate table detail (sp_f
    // subgoal/answer counts, table bytes).
    MetricsRegistry Reg;
    {
      StrictnessAnalyzer Analyzer;
      Analyzer.setObservability(nullptr, &Reg);
      (void)Analyzer.analyze(P.Source);
    }
    W.beginObject();
    W.member("name", P.Name);
    W.member("lines", static_cast<uint64_t>(P.sourceLines()));
    writeMeasuredRow(W, Best);
    W.member("table_bytes", static_cast<uint64_t>(Best.TableBytes));
    W.key("metrics");
    Reg.writeJson(W);
    W.endObject();
  }

  W.endArray();

  // Parallel arm: the 10 FL benchmarks through strictness on the fleet.
  Failures += runFleetPhase(W, "fleet", CorpusJobKind::Strictness,
                            jobsArg(argc, argv), provenanceArg(argc, argv),
                            sampleHzArg(argc, argv),
                            foldedOutArg(argc, argv));

  W.endObject();
  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_table3_strictness.json"),
                Json);
  if (TotalSeconds > 0)
    std::printf("Throughput: %.0f source lines/second (the paper reports "
                "200-350 on a 1996 SPARC LX).\n",
                TotalLines / TotalSeconds);
  std::printf(
      "Shape checks vs the paper:\n"
      " * in the paper preprocessing dominates every row except pcprove\n"
      "   (whose deeply nested applications make evaluation dominate);\n"
      "   our C++ preprocessing is so fast that evaluation dominates\n"
      "   everywhere, but pcprove remains among the heaviest rows for the\n"
      "   same structural reason;\n"
      " * table space largest for pcprove/event-scale programs, smallest\n"
      "   for mergesort/quicksort-scale ones (same ranking as Table 3).\n");
  return Failures;
}
