//===- bench_table4_depthk.cpp - Regenerate Table 4 -------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Table 4: "Performance of groundness analysis with term depth
// abstraction" (Section 5's non-enumerative analysis). The paper reports
// nine of the twelve benchmarks — gabriel, press1 and press2 are absent
// from its table; we run the same nine and additionally report the three
// missing ones under the widening thresholds that make them tractable.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchFleet.h"
#include "bench/BenchUtil.h"
#include "corpus/Corpus.h"
#include "depthk/DepthK.h"
#include "obs/Metrics.h"
#include "support/TableFormat.h"

#include <cstdio>
#include <set>
#include <string>

using namespace lpa;

int main(int argc, char **argv) {
  std::printf("Table 4: groundness with term-depth abstraction, k=2 "
              "(ours in ms; paper columns in seconds, SPARC 20)\n\n");

  // The nine rows of the paper's Table 4.
  const std::set<std::string> PaperRows{"cs",   "disj",  "kalah",
                                        "peep", "pg",    "plan",
                                        "qsort", "queens", "read"};

  TextTable Out;
  Out.addRow({"Program", "Preproc", "Analysis", "Collect", "Total",
              "Table(B)", "Calls", "Widen", "|", "paperTot(s)",
              "paperTab(B)"});

  std::string Json;
  JsonWriter W(Json);
  W.beginObject();
  W.member("benchmark", "table4_depthk");
  writeBenchMeta(W);
  W.key("programs");
  W.beginArray();

  int Failures = 0;
  for (const CorpusProgram &P : prologBenchmarks()) {
    uint64_t Calls = 0, Widenings = 0;
    MeasuredRow Best = bestOf(3, [&]() {
      MeasuredRow Row;
      SymbolTable Symbols;
      DepthKAnalyzer Analyzer(Symbols);
      auto R = Analyzer.analyze(P.Source);
      if (!R) {
        Row.Error = R.getError().str();
        return Row;
      }
      Row.PreprocMs = R->PreprocSeconds * 1e3;
      Row.AnalysisMs = R->AnalysisSeconds * 1e3;
      Row.CollectMs = R->CollectSeconds * 1e3;
      Row.TableBytes = R->TableSpaceBytes;
      Calls = R->NumCallPatterns;
      Widenings = R->Widenings;
      Row.Ok = true;
      return Row;
    });
    if (!Best.Ok) {
      std::fprintf(stderr, "%s: %s\n", P.Name, Best.Error.c_str());
      ++Failures;
      continue;
    }

    bool InPaper = PaperRows.count(P.Name) > 0;
    std::string Name = P.Name;
    if (!InPaper)
      Name += "*";
    Out.addRow({Name, ms(Best.PreprocMs), ms(Best.AnalysisMs),
                ms(Best.CollectMs), ms(Best.totalMs()),
                std::to_string(Best.TableBytes), std::to_string(Calls),
                std::to_string(Widenings), "|",
                paperSec(P.Table4.Total),
                P.Table4.TableBytes < 0 ? "-"
                                        : std::to_string(P.Table4.TableBytes)});

    // Instrumented re-run for per-predicate call-pattern/answer detail.
    MetricsRegistry Reg;
    {
      SymbolTable Symbols;
      DepthKAnalyzer::Options ObsOpts;
      ObsOpts.Metrics = &Reg;
      DepthKAnalyzer Analyzer(Symbols, ObsOpts);
      (void)Analyzer.analyze(P.Source);
    }
    W.beginObject();
    W.member("name", P.Name);
    W.member("in_paper_table", InPaper);
    writeMeasuredRow(W, Best);
    W.member("table_bytes", static_cast<uint64_t>(Best.TableBytes));
    W.member("call_patterns", Calls);
    W.member("widenings", Widenings);
    W.key("metrics");
    Reg.writeJson(W);
    W.endObject();
  }

  W.endArray();

  // Parallel arm: the 12 programs through depth-k on the fleet.
  Failures +=
      runFleetPhase(W, "fleet", CorpusJobKind::DepthK, jobsArg(argc, argv),
                    provenanceArg(argc, argv), sampleHzArg(argc, argv),
                    foldedOutArg(argc, argv));

  W.endObject();
  std::printf("%s\n", Out.render().c_str());
  writeJsonFile(jsonOutPath(argc, argv, "bench/out/bench_table4_depthk.json"),
                Json);
  std::printf(
      "Notes:\n"
      " * Rows marked '*' (gabriel, press1, press2) are absent from the\n"
      "   paper's Table 4; they are tractable here only because of the\n"
      "   answer/call widening (Section 6's proposed on-the-fly\n"
      "   approximation, which we implement).\n"
      " * Shape checks vs the paper: depth-k tables are larger than the\n"
      "   Prop tables for the same programs (compare Table 1), read is\n"
      "   the heaviest row, qsort/queens the lightest.\n");
  return Failures;
}
