file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_groundness.dir/bench_table1_groundness.cpp.o"
  "CMakeFiles/bench_table1_groundness.dir/bench_table1_groundness.cpp.o.d"
  "bench_table1_groundness"
  "bench_table1_groundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_groundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
