# Empty compiler generated dependencies file for bench_table1_groundness.
# This may be replaced when dependencies are built.
