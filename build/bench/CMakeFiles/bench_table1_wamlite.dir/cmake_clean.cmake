file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_wamlite.dir/bench_table1_wamlite.cpp.o"
  "CMakeFiles/bench_table1_wamlite.dir/bench_table1_wamlite.cpp.o.d"
  "bench_table1_wamlite"
  "bench_table1_wamlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_wamlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
