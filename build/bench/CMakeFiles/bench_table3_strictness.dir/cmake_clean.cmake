file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_strictness.dir/bench_table3_strictness.cpp.o"
  "CMakeFiles/bench_table3_strictness.dir/bench_table3_strictness.cpp.o.d"
  "bench_table3_strictness"
  "bench_table3_strictness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_strictness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
