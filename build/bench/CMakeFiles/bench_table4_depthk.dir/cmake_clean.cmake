file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_depthk.dir/bench_table4_depthk.cpp.o"
  "CMakeFiles/bench_table4_depthk.dir/bench_table4_depthk.cpp.o.d"
  "bench_table4_depthk"
  "bench_table4_depthk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_depthk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
