file(REMOVE_RECURSE
  "CMakeFiles/demand_dataflow.dir/demand_dataflow.cpp.o"
  "CMakeFiles/demand_dataflow.dir/demand_dataflow.cpp.o.d"
  "demand_dataflow"
  "demand_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
