# Empty dependencies file for demand_dataflow.
# This may be replaced when dependencies are built.
