file(REMOVE_RECURSE
  "CMakeFiles/groundness_modes.dir/groundness_modes.cpp.o"
  "CMakeFiles/groundness_modes.dir/groundness_modes.cpp.o.d"
  "groundness_modes"
  "groundness_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groundness_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
