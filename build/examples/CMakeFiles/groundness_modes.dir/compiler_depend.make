# Empty compiler generated dependencies file for groundness_modes.
# This may be replaced when dependencies are built.
