file(REMOVE_RECURSE
  "CMakeFiles/strictness_report.dir/strictness_report.cpp.o"
  "CMakeFiles/strictness_report.dir/strictness_report.cpp.o.d"
  "strictness_report"
  "strictness_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strictness_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
