# Empty compiler generated dependencies file for strictness_report.
# This may be replaced when dependencies are built.
