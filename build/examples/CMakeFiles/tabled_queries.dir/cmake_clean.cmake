file(REMOVE_RECURSE
  "CMakeFiles/tabled_queries.dir/tabled_queries.cpp.o"
  "CMakeFiles/tabled_queries.dir/tabled_queries.cpp.o.d"
  "tabled_queries"
  "tabled_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabled_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
