# Empty dependencies file for tabled_queries.
# This may be replaced when dependencies are built.
