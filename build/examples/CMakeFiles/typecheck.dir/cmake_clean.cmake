file(REMOVE_RECURSE
  "CMakeFiles/typecheck.dir/typecheck.cpp.o"
  "CMakeFiles/typecheck.dir/typecheck.cpp.o.d"
  "typecheck"
  "typecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
