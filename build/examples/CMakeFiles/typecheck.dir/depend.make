# Empty dependencies file for typecheck.
# This may be replaced when dependencies are built.
