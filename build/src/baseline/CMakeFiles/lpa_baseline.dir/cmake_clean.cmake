file(REMOVE_RECURSE
  "CMakeFiles/lpa_baseline.dir/GaiaLike.cpp.o"
  "CMakeFiles/lpa_baseline.dir/GaiaLike.cpp.o.d"
  "liblpa_baseline.a"
  "liblpa_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
