# Empty dependencies file for lpa_baseline.
# This may be replaced when dependencies are built.
