
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/FLCorpus1.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/FLCorpus1.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/FLCorpus1.cpp.o.d"
  "/root/repo/src/corpus/FLCorpus2.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/FLCorpus2.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/FLCorpus2.cpp.o.d"
  "/root/repo/src/corpus/PrologCorpusMedium.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusMedium.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusMedium.cpp.o.d"
  "/root/repo/src/corpus/PrologCorpusPeep.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusPeep.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusPeep.cpp.o.d"
  "/root/repo/src/corpus/PrologCorpusPress.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusPress.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusPress.cpp.o.d"
  "/root/repo/src/corpus/PrologCorpusRead.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusRead.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusRead.cpp.o.d"
  "/root/repo/src/corpus/PrologCorpusSmall.cpp" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusSmall.cpp.o" "gcc" "src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusSmall.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
