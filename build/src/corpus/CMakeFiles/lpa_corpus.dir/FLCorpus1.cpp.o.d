src/corpus/CMakeFiles/lpa_corpus.dir/FLCorpus1.cpp.o: \
 /root/repo/src/corpus/FLCorpus1.cpp /usr/include/stdc-predef.h
