src/corpus/CMakeFiles/lpa_corpus.dir/FLCorpus2.cpp.o: \
 /root/repo/src/corpus/FLCorpus2.cpp /usr/include/stdc-predef.h
