src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusMedium.cpp.o: \
 /root/repo/src/corpus/PrologCorpusMedium.cpp /usr/include/stdc-predef.h
