src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusPeep.cpp.o: \
 /root/repo/src/corpus/PrologCorpusPeep.cpp /usr/include/stdc-predef.h
