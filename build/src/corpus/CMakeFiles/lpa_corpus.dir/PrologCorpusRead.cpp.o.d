src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusRead.cpp.o: \
 /root/repo/src/corpus/PrologCorpusRead.cpp /usr/include/stdc-predef.h
