src/corpus/CMakeFiles/lpa_corpus.dir/PrologCorpusSmall.cpp.o: \
 /root/repo/src/corpus/PrologCorpusSmall.cpp /usr/include/stdc-predef.h
