file(REMOVE_RECURSE
  "CMakeFiles/lpa_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/lpa_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/FLCorpus1.cpp.o"
  "CMakeFiles/lpa_corpus.dir/FLCorpus1.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/FLCorpus2.cpp.o"
  "CMakeFiles/lpa_corpus.dir/FLCorpus2.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusMedium.cpp.o"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusMedium.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusPeep.cpp.o"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusPeep.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusPress.cpp.o"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusPress.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusRead.cpp.o"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusRead.cpp.o.d"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusSmall.cpp.o"
  "CMakeFiles/lpa_corpus.dir/PrologCorpusSmall.cpp.o.d"
  "liblpa_corpus.a"
  "liblpa_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
