file(REMOVE_RECURSE
  "liblpa_corpus.a"
)
