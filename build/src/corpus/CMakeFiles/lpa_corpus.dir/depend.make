# Empty dependencies file for lpa_corpus.
# This may be replaced when dependencies are built.
