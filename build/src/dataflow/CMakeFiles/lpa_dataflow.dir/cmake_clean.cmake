file(REMOVE_RECURSE
  "CMakeFiles/lpa_dataflow.dir/Cfg.cpp.o"
  "CMakeFiles/lpa_dataflow.dir/Cfg.cpp.o.d"
  "CMakeFiles/lpa_dataflow.dir/ReachingDefs.cpp.o"
  "CMakeFiles/lpa_dataflow.dir/ReachingDefs.cpp.o.d"
  "liblpa_dataflow.a"
  "liblpa_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
