file(REMOVE_RECURSE
  "liblpa_dataflow.a"
)
