# Empty dependencies file for lpa_dataflow.
# This may be replaced when dependencies are built.
