
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/depthk/AbstractDomain.cpp" "src/depthk/CMakeFiles/lpa_depthk.dir/AbstractDomain.cpp.o" "gcc" "src/depthk/CMakeFiles/lpa_depthk.dir/AbstractDomain.cpp.o.d"
  "/root/repo/src/depthk/DepthK.cpp" "src/depthk/CMakeFiles/lpa_depthk.dir/DepthK.cpp.o" "gcc" "src/depthk/CMakeFiles/lpa_depthk.dir/DepthK.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/lpa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/lpa_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/lpa_term.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
