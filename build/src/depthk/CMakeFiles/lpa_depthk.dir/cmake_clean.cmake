file(REMOVE_RECURSE
  "CMakeFiles/lpa_depthk.dir/AbstractDomain.cpp.o"
  "CMakeFiles/lpa_depthk.dir/AbstractDomain.cpp.o.d"
  "CMakeFiles/lpa_depthk.dir/DepthK.cpp.o"
  "CMakeFiles/lpa_depthk.dir/DepthK.cpp.o.d"
  "liblpa_depthk.a"
  "liblpa_depthk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_depthk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
