file(REMOVE_RECURSE
  "liblpa_depthk.a"
)
