# Empty compiler generated dependencies file for lpa_depthk.
# This may be replaced when dependencies are built.
