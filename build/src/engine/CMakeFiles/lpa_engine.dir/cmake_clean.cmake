file(REMOVE_RECURSE
  "CMakeFiles/lpa_engine.dir/Builtins.cpp.o"
  "CMakeFiles/lpa_engine.dir/Builtins.cpp.o.d"
  "CMakeFiles/lpa_engine.dir/Database.cpp.o"
  "CMakeFiles/lpa_engine.dir/Database.cpp.o.d"
  "CMakeFiles/lpa_engine.dir/Solver.cpp.o"
  "CMakeFiles/lpa_engine.dir/Solver.cpp.o.d"
  "liblpa_engine.a"
  "liblpa_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
