file(REMOVE_RECURSE
  "CMakeFiles/lpa_fl.dir/FLParser.cpp.o"
  "CMakeFiles/lpa_fl.dir/FLParser.cpp.o.d"
  "liblpa_fl.a"
  "liblpa_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
