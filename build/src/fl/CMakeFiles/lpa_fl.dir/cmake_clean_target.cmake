file(REMOVE_RECURSE
  "liblpa_fl.a"
)
