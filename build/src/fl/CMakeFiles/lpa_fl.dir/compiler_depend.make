# Empty compiler generated dependencies file for lpa_fl.
# This may be replaced when dependencies are built.
