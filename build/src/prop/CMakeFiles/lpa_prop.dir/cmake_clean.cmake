file(REMOVE_RECURSE
  "CMakeFiles/lpa_prop.dir/Groundness.cpp.o"
  "CMakeFiles/lpa_prop.dir/Groundness.cpp.o.d"
  "CMakeFiles/lpa_prop.dir/PropResult.cpp.o"
  "CMakeFiles/lpa_prop.dir/PropResult.cpp.o.d"
  "CMakeFiles/lpa_prop.dir/PropTransform.cpp.o"
  "CMakeFiles/lpa_prop.dir/PropTransform.cpp.o.d"
  "liblpa_prop.a"
  "liblpa_prop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_prop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
