file(REMOVE_RECURSE
  "liblpa_prop.a"
)
