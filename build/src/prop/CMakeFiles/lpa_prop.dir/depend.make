# Empty dependencies file for lpa_prop.
# This may be replaced when dependencies are built.
