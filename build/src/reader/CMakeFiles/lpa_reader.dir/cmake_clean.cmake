file(REMOVE_RECURSE
  "CMakeFiles/lpa_reader.dir/Lexer.cpp.o"
  "CMakeFiles/lpa_reader.dir/Lexer.cpp.o.d"
  "CMakeFiles/lpa_reader.dir/OpTable.cpp.o"
  "CMakeFiles/lpa_reader.dir/OpTable.cpp.o.d"
  "CMakeFiles/lpa_reader.dir/Parser.cpp.o"
  "CMakeFiles/lpa_reader.dir/Parser.cpp.o.d"
  "liblpa_reader.a"
  "liblpa_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
