file(REMOVE_RECURSE
  "liblpa_reader.a"
)
