# Empty dependencies file for lpa_reader.
# This may be replaced when dependencies are built.
