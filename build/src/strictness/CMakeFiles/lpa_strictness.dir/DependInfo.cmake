
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strictness/StrictTransform.cpp" "src/strictness/CMakeFiles/lpa_strictness.dir/StrictTransform.cpp.o" "gcc" "src/strictness/CMakeFiles/lpa_strictness.dir/StrictTransform.cpp.o.d"
  "/root/repo/src/strictness/Strictness.cpp" "src/strictness/CMakeFiles/lpa_strictness.dir/Strictness.cpp.o" "gcc" "src/strictness/CMakeFiles/lpa_strictness.dir/Strictness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/lpa_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lpa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/lpa_term.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/lpa_reader.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
