file(REMOVE_RECURSE
  "CMakeFiles/lpa_strictness.dir/StrictTransform.cpp.o"
  "CMakeFiles/lpa_strictness.dir/StrictTransform.cpp.o.d"
  "CMakeFiles/lpa_strictness.dir/Strictness.cpp.o"
  "CMakeFiles/lpa_strictness.dir/Strictness.cpp.o.d"
  "liblpa_strictness.a"
  "liblpa_strictness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_strictness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
