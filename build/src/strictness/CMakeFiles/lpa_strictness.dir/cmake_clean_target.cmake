file(REMOVE_RECURSE
  "liblpa_strictness.a"
)
