# Empty dependencies file for lpa_strictness.
# This may be replaced when dependencies are built.
