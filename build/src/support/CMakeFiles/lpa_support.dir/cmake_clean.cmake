file(REMOVE_RECURSE
  "CMakeFiles/lpa_support.dir/TableFormat.cpp.o"
  "CMakeFiles/lpa_support.dir/TableFormat.cpp.o.d"
  "liblpa_support.a"
  "liblpa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
