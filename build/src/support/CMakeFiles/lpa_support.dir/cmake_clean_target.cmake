file(REMOVE_RECURSE
  "liblpa_support.a"
)
