# Empty dependencies file for lpa_support.
# This may be replaced when dependencies are built.
