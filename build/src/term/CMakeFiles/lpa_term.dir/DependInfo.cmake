
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/Symbol.cpp" "src/term/CMakeFiles/lpa_term.dir/Symbol.cpp.o" "gcc" "src/term/CMakeFiles/lpa_term.dir/Symbol.cpp.o.d"
  "/root/repo/src/term/TermCopy.cpp" "src/term/CMakeFiles/lpa_term.dir/TermCopy.cpp.o" "gcc" "src/term/CMakeFiles/lpa_term.dir/TermCopy.cpp.o.d"
  "/root/repo/src/term/TermStore.cpp" "src/term/CMakeFiles/lpa_term.dir/TermStore.cpp.o" "gcc" "src/term/CMakeFiles/lpa_term.dir/TermStore.cpp.o.d"
  "/root/repo/src/term/TermWriter.cpp" "src/term/CMakeFiles/lpa_term.dir/TermWriter.cpp.o" "gcc" "src/term/CMakeFiles/lpa_term.dir/TermWriter.cpp.o.d"
  "/root/repo/src/term/Unify.cpp" "src/term/CMakeFiles/lpa_term.dir/Unify.cpp.o" "gcc" "src/term/CMakeFiles/lpa_term.dir/Unify.cpp.o.d"
  "/root/repo/src/term/Variant.cpp" "src/term/CMakeFiles/lpa_term.dir/Variant.cpp.o" "gcc" "src/term/CMakeFiles/lpa_term.dir/Variant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
