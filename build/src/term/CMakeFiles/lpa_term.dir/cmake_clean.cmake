file(REMOVE_RECURSE
  "CMakeFiles/lpa_term.dir/Symbol.cpp.o"
  "CMakeFiles/lpa_term.dir/Symbol.cpp.o.d"
  "CMakeFiles/lpa_term.dir/TermCopy.cpp.o"
  "CMakeFiles/lpa_term.dir/TermCopy.cpp.o.d"
  "CMakeFiles/lpa_term.dir/TermStore.cpp.o"
  "CMakeFiles/lpa_term.dir/TermStore.cpp.o.d"
  "CMakeFiles/lpa_term.dir/TermWriter.cpp.o"
  "CMakeFiles/lpa_term.dir/TermWriter.cpp.o.d"
  "CMakeFiles/lpa_term.dir/Unify.cpp.o"
  "CMakeFiles/lpa_term.dir/Unify.cpp.o.d"
  "CMakeFiles/lpa_term.dir/Variant.cpp.o"
  "CMakeFiles/lpa_term.dir/Variant.cpp.o.d"
  "liblpa_term.a"
  "liblpa_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
