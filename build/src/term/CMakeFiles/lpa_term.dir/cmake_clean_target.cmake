file(REMOVE_RECURSE
  "liblpa_term.a"
)
