# Empty compiler generated dependencies file for lpa_term.
# This may be replaced when dependencies are built.
