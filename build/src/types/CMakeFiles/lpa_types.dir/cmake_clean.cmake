file(REMOVE_RECURSE
  "CMakeFiles/lpa_types.dir/TypeInference.cpp.o"
  "CMakeFiles/lpa_types.dir/TypeInference.cpp.o.d"
  "liblpa_types.a"
  "liblpa_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
