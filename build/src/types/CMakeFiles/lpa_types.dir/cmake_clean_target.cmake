file(REMOVE_RECURSE
  "liblpa_types.a"
)
