# Empty compiler generated dependencies file for lpa_types.
# This may be replaced when dependencies are built.
