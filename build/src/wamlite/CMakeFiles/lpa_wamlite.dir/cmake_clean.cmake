file(REMOVE_RECURSE
  "CMakeFiles/lpa_wamlite.dir/WamCompiler.cpp.o"
  "CMakeFiles/lpa_wamlite.dir/WamCompiler.cpp.o.d"
  "CMakeFiles/lpa_wamlite.dir/WamMachine.cpp.o"
  "CMakeFiles/lpa_wamlite.dir/WamMachine.cpp.o.d"
  "liblpa_wamlite.a"
  "liblpa_wamlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpa_wamlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
