file(REMOVE_RECURSE
  "liblpa_wamlite.a"
)
