# Empty compiler generated dependencies file for lpa_wamlite.
# This may be replaced when dependencies are built.
