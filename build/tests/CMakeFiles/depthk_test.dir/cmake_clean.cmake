file(REMOVE_RECURSE
  "CMakeFiles/depthk_test.dir/depthk_test.cpp.o"
  "CMakeFiles/depthk_test.dir/depthk_test.cpp.o.d"
  "depthk_test"
  "depthk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depthk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
