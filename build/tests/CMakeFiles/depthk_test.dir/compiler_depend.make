# Empty compiler generated dependencies file for depthk_test.
# This may be replaced when dependencies are built.
