
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl_parser_test.cpp" "tests/CMakeFiles/fl_parser_test.dir/fl_parser_test.cpp.o" "gcc" "tests/CMakeFiles/fl_parser_test.dir/fl_parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/lpa_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/wamlite/CMakeFiles/lpa_wamlite.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/lpa_types.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/lpa_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lpa_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/depthk/CMakeFiles/lpa_depthk.dir/DependInfo.cmake"
  "/root/repo/build/src/strictness/CMakeFiles/lpa_strictness.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/lpa_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/prop/CMakeFiles/lpa_prop.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lpa_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/lpa_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/lpa_term.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lpa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
