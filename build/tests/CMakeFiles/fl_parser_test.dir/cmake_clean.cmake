file(REMOVE_RECURSE
  "CMakeFiles/fl_parser_test.dir/fl_parser_test.cpp.o"
  "CMakeFiles/fl_parser_test.dir/fl_parser_test.cpp.o.d"
  "fl_parser_test"
  "fl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
