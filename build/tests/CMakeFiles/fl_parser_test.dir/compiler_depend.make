# Empty compiler generated dependencies file for fl_parser_test.
# This may be replaced when dependencies are built.
