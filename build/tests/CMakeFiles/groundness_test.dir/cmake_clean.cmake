file(REMOVE_RECURSE
  "CMakeFiles/groundness_test.dir/groundness_test.cpp.o"
  "CMakeFiles/groundness_test.dir/groundness_test.cpp.o.d"
  "groundness_test"
  "groundness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
