# Empty dependencies file for groundness_test.
# This may be replaced when dependencies are built.
