file(REMOVE_RECURSE
  "CMakeFiles/prop_transform_test.dir/prop_transform_test.cpp.o"
  "CMakeFiles/prop_transform_test.dir/prop_transform_test.cpp.o.d"
  "prop_transform_test"
  "prop_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
