# Empty dependencies file for prop_transform_test.
# This may be replaced when dependencies are built.
