file(REMOVE_RECURSE
  "CMakeFiles/reader_test.dir/reader_test.cpp.o"
  "CMakeFiles/reader_test.dir/reader_test.cpp.o.d"
  "reader_test"
  "reader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
