file(REMOVE_RECURSE
  "CMakeFiles/strict_transform_test.dir/strict_transform_test.cpp.o"
  "CMakeFiles/strict_transform_test.dir/strict_transform_test.cpp.o.d"
  "strict_transform_test"
  "strict_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strict_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
