file(REMOVE_RECURSE
  "CMakeFiles/strictness_test.dir/strictness_test.cpp.o"
  "CMakeFiles/strictness_test.dir/strictness_test.cpp.o.d"
  "strictness_test"
  "strictness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strictness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
