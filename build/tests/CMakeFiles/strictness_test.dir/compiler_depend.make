# Empty compiler generated dependencies file for strictness_test.
# This may be replaced when dependencies are built.
