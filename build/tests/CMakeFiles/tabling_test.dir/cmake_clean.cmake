file(REMOVE_RECURSE
  "CMakeFiles/tabling_test.dir/tabling_test.cpp.o"
  "CMakeFiles/tabling_test.dir/tabling_test.cpp.o.d"
  "tabling_test"
  "tabling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
