# Empty compiler generated dependencies file for tabling_test.
# This may be replaced when dependencies are built.
