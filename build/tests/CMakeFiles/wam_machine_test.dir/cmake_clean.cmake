file(REMOVE_RECURSE
  "CMakeFiles/wam_machine_test.dir/wam_machine_test.cpp.o"
  "CMakeFiles/wam_machine_test.dir/wam_machine_test.cpp.o.d"
  "wam_machine_test"
  "wam_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wam_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
