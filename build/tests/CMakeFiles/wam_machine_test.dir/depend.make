# Empty dependencies file for wam_machine_test.
# This may be replaced when dependencies are built.
