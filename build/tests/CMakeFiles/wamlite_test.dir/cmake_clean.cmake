file(REMOVE_RECURSE
  "CMakeFiles/wamlite_test.dir/wamlite_test.cpp.o"
  "CMakeFiles/wamlite_test.dir/wamlite_test.cpp.o.d"
  "wamlite_test"
  "wamlite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wamlite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
