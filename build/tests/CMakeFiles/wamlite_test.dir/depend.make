# Empty dependencies file for wamlite_test.
# This may be replaced when dependencies are built.
