//===- demand_dataflow.cpp - Section 7: dataflow as a database --*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Section 7's direction: encode an imperative program's CFG as a logic
// database and answer dataflow queries on demand. This example builds a
// small structured program, prints its reaching-definitions relation from
// both solvers (identical), and contrasts exhaustive vs demand query cost.
//
//===----------------------------------------------------------------------===//

#include "dataflow/ReachingDefs.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace lpa;

int main() {
  // A small structured program (seeded generator): ~30 statements over 3
  // variables with an if and a loop mixed in.
  Cfg G = randomStructuredCfg(7, 30, 3);
  std::printf("CFG: %zu nodes over %d variables\n", G.size(), G.NumVars);

  auto L = reachingDefsLogic(G);
  if (!L) {
    std::fprintf(stderr, "logic analysis failed: %s\n",
                 L.getError().str().c_str());
    return 1;
  }
  ReachResult W = reachingDefsWorklist(G);

  std::printf("reaching-definitions pairs: logic=%zu worklist=%zu (%s)\n",
              L->Reaches.size(), W.Reaches.size(),
              L->Reaches == W.Reaches ? "identical" : "MISMATCH");

  // Show the definitions reaching a mid-program node.
  uint32_t Node = static_cast<uint32_t>(G.size() / 2);
  auto At = reachingDefsAtLogic(G, Node);
  if (!At) {
    std::fprintf(stderr, "demand query failed\n");
    return 1;
  }
  std::printf("definitions reaching node %u:", Node);
  for (uint32_t D : *At)
    std::printf(" n%u(v%d)", D, G.Nodes[D].DefVar);
  std::printf("\n");

  // Demand vs exhaustive on a bigger graph.
  Cfg Big = randomStructuredCfg(3, 300, 5);
  Stopwatch Watch;
  auto Full = reachingDefsLogic(Big);
  double FullMs = Watch.elapsedMillis();
  Watch.restart();
  auto Point = reachingDefsAtLogic(Big, static_cast<uint32_t>(30));
  double PointMs = Watch.elapsedMillis();
  if (Full && Point)
    std::printf("300-node graph: exhaustive %.2f ms, demand point query "
                "%.2f ms (goal-directed tabling explores only the "
                "backward slice)\n",
                FullMs, PointMs);
  return 0;
}
