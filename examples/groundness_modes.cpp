//===- groundness_modes.cpp - Analyze a corpus benchmark --------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Runs Prop groundness on one of the embedded Table 1 benchmarks (or all
// of them) and prints per-predicate modes, the analysis a compiler would
// consume to pick clause-indexing and argument-passing strategies.
//
// Usage: groundness_modes [benchmark-name]
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "prop/Groundness.h"

#include <cstdio>
#include <cstring>

using namespace lpa;

static int analyzeOne(const CorpusProgram &Program, bool Verbose) {
  SymbolTable Symbols;
  GroundnessAnalyzer Analyzer(Symbols);
  auto R = Analyzer.analyze(Program.Source);
  if (!R) {
    std::fprintf(stderr, "%s: %s\n", Program.Name,
                 R.getError().str().c_str());
    return 1;
  }

  std::printf("== %s (%d lines) ==\n", Program.Name, Program.sourceLines());
  std::printf("   total %.2f ms (preproc %.2f, analysis %.2f, collect "
              "%.2f), tables %zu bytes, %llu subgoals, %llu answers\n",
              R->totalSeconds() * 1e3, R->PreprocSeconds * 1e3,
              R->AnalysisSeconds * 1e3, R->CollectSeconds * 1e3,
              R->TableSpaceBytes,
              static_cast<unsigned long long>(R->Stats.SubgoalsCreated),
              static_cast<unsigned long long>(R->Stats.AnswersRecorded));
  for (const PredGroundness &P : R->Predicates) {
    std::printf("   %-40s%s\n", P.modeString().c_str(),
                P.CanSucceed ? "" : "   (never succeeds)");
    if (Verbose)
      std::printf("     success set: %s\n",
                  formatTruthTable(P.SuccessSet).c_str());
  }
  std::printf("\n");
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    const CorpusProgram *P = findBenchmark(Argv[1]);
    if (!P) {
      std::fprintf(stderr,
                   "unknown benchmark '%s'; available:", Argv[1]);
      for (const CorpusProgram &B : prologBenchmarks())
        std::fprintf(stderr, " %s", B.Name);
      std::fprintf(stderr, "\n");
      return 1;
    }
    return analyzeOne(*P, /*Verbose=*/true);
  }
  int Failures = 0;
  for (const CorpusProgram &P : prologBenchmarks())
    Failures += analyzeOne(P, /*Verbose=*/false);
  return Failures;
}
