//===- quickstart.cpp - Five-minute tour of the library ---------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Quickstart: analyze the paper's running example (append) with both
// analyses the case study builds — Prop groundness for logic programs and
// demand-propagation strictness for functional programs — in a handful of
// lines each.
//
//===----------------------------------------------------------------------===//

#include "prop/Groundness.h"
#include "strictness/Strictness.h"

#include <cstdio>

using namespace lpa;

int main() {
  //=== Groundness analysis of a logic program (Sections 3.1, 4.1) =========
  const char *Append = R"(
    ap([], Ys, Ys).
    ap([X|Xs], Ys, [X|Zs]) :- ap(Xs, Ys, Zs).
  )";

  SymbolTable Symbols;
  GroundnessAnalyzer Groundness(Symbols);
  auto GR = Groundness.analyze(Append);
  if (!GR) {
    std::fprintf(stderr, "groundness analysis failed: %s\n",
                 GR.getError().str().c_str());
    return 1;
  }

  std::printf("Groundness of ap/3 (Figure 2 of the paper):\n");
  for (const PredGroundness &P : GR->Predicates) {
    std::printf("  %s\n", P.modeString().c_str());
    std::printf("    success set  = %s\n",
                formatTruthTable(P.SuccessSet).c_str());
    std::printf("    call patterns= %s\n",
                formatTruthTable(P.CallPatterns).c_str());
  }
  std::printf("  phases: preprocess %.3f ms, analysis %.3f ms, "
              "collection %.3f ms; tables %zu bytes\n\n",
              GR->PreprocSeconds * 1e3, GR->AnalysisSeconds * 1e3,
              GR->CollectSeconds * 1e3, GR->TableSpaceBytes);

  //=== Strictness analysis of a functional program (Sections 3.2, 4.2) ====
  const char *AppendFL = R"(
    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
  )";

  StrictnessAnalyzer Strictness;
  auto SR = Strictness.analyze(AppendFL);
  if (!SR) {
    std::fprintf(stderr, "strictness analysis failed: %s\n",
                 SR.getError().str().c_str());
    return 1;
  }

  std::printf("Strictness of ap/2 (Figure 4 of the paper):\n");
  for (const FuncStrictness &F : SR->Functions)
    std::printf("  %s\n", F.summary().c_str());
  std::printf("  (e = demanded to normal form, d = head normal form, "
              "n = not demanded)\n");
  return 0;
}
