//===- repl.cpp - Interactive tabled-Prolog toplevel ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// A small interactive toplevel over the tabled engine. Clauses typed at
// the prompt are asserted (the paper's dynamic-code configuration);
// "?- Goal." queries them. Try:
//
//   :- table path/2.
//   path(X, Y) :- path(X, Z), edge(Z, Y).
//   path(X, Y) :- edge(X, Y).
//   edge(a, b). edge(b, c). edge(c, a).
//   ?- path(a, X).
//
// Left recursion over a cyclic graph — it terminates here.
// Commands: "stats." prints engine counters, "halt." exits.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace lpa;

int main() {
  SymbolTable Symbols;
  Database DB(Symbols);
  Solver Engine(DB);

  std::printf("lpa toplevel — tabled logic engine "
              "(clauses to assert, '?- G.' to query, 'halt.' to quit)\n");

  std::string Buffer;
  std::string Line;
  while (true) {
    std::printf("%s", Buffer.empty() ? "| ?> " : "|    ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    Buffer += Line + "\n";
    // A clause/query ends with '.' at end of line.
    std::string Trimmed = Line;
    while (!Trimmed.empty() && std::isspace(
               static_cast<unsigned char>(Trimmed.back())))
      Trimmed.pop_back();
    if (Trimmed.empty() || Trimmed.back() != '.')
      continue;

    std::string Input = Buffer;
    Buffer.clear();

    // Strip leading whitespace for command detection.
    size_t Start = Input.find_first_not_of(" \t\r\n");
    if (Start == std::string::npos)
      continue;

    if (Input.compare(Start, 5, "halt.") == 0)
      break;
    if (Input.compare(Start, 6, "stats.") == 0) {
      const EvalStats &S = Engine.stats();
      std::printf("  subgoals=%llu answers=%llu resolutions=%llu "
                  "table-bytes=%zu\n",
                  static_cast<unsigned long long>(S.SubgoalsCreated),
                  static_cast<unsigned long long>(S.AnswersRecorded),
                  static_cast<unsigned long long>(S.ClauseResolutions),
                  Engine.tableSpaceBytes());
      continue;
    }

    if (Input.compare(Start, 2, "?-") == 0) {
      // Query: show up to 10 solutions.
      std::string GoalText = Input.substr(Start + 2);
      auto Goal = Parser::parseTerm(Symbols, Engine.store(), GoalText);
      if (!Goal) {
        std::printf("  syntax error: %s\n", Goal.getError().str().c_str());
        continue;
      }
      size_t Shown = 0;
      size_t Total = Engine.solve(*Goal, [&]() {
        if (Shown < 10)
          std::printf("  %s\n",
                      TermWriter::toString(Symbols, Engine.storeConst(),
                                           *Goal)
                          .c_str());
        ++Shown;
        return false;
      });
      if (Total == 0)
        std::printf("  no.\n");
      else if (Total > 10)
        std::printf("  ... %zu solutions total.\n", Total);
      else
        std::printf("  yes (%zu solution%s).\n", Total,
                    Total == 1 ? "" : "s");
      continue;
    }

    // Otherwise: assert clauses.
    auto R = DB.consult(Input);
    if (!R)
      std::printf("  error: %s\n", R.getError().str().c_str());
  }
  std::printf("bye.\n");
  return 0;
}
