//===- repl.cpp - Interactive tabled-Prolog toplevel ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// A small interactive toplevel over the tabled engine. Clauses typed at
// the prompt are asserted (the paper's dynamic-code configuration);
// "?- Goal." queries them. Try:
//
//   :- table path/2.
//   path(X, Y) :- path(X, Z), edge(Z, Y).
//   path(X, Y) :- edge(X, Y).
//   edge(a, b). edge(b, c). edge(c, a).
//   ?- path(a, X).
//
// Left recursion over a cyclic graph — it terminates here.
//
// The toplevel is one front end over the shared AnalysisSession command
// layer (src/srv/Session.h); the lpa_serve daemon is the other. Queries
// run under per-query ids with warm/cold table accounting, so a repeated
// query shows up as warm traffic in ":stats" and ":queries".
//
// Commands (':'-prefixed lines run immediately, no trailing dot needed):
//   :stats            per-predicate metrics table + engine counters,
//                     table-space watermarks, and the session's
//                     warm/cold table hit-rate line
//   :queries          latency + recent-query report (per-query id,
//                     wall time, warm/cold hits — the daemon's "stats"
//                     verb renders the same snapshot as JSON)
//   :slowlog          slow-query exemplars, most recent first (the
//                     daemon's "slowlog" verb is the JSON twin)
//   :trace on|off     print one line per SLG event as goals run
//   :profile <goal>   run a goal and report the engine work it caused
//   :explain <goal>   run a goal with a cost profile attached and print
//                     the per-subgoal self/cumulative time breakdown
//                     (the daemon's "explain" verb is the JSON twin)
//   :why <goal>       solve the goal and print proof trees for its answers
//   :forest [dot|json] [path]   dump the SLG subgoal dependency forest
//   :flame [path]     folded stacks from the always-on sampling profiler
// Legacy: "stats." prints the raw counters, "halt." exits.
//
//===----------------------------------------------------------------------===//

#include "obs/Sampler.h"
#include "obs/Trace.h"
#include "reader/Parser.h"
#include "srv/Session.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace lpa;

int main() {
  // Provenance stays on in the toplevel: ":why" needs justifications for
  // whatever the user already queried, and interactive table sizes make
  // the recording overhead irrelevant. The 1 kHz sampler demonstrates the
  // "leave it attached" cost model: the engine publishes its cursor via a
  // seqlock and the reader thread never blocks evaluation.
  AnalysisSession::Options SO;
  SO.RecordProvenance = true;
  SO.SampleHz = 1000;
  SO.SampleLane = "repl";
  AnalysisSession Session(SO);

  SymbolTable &Symbols = Session.symbols();
  Solver &Engine = Session.solver();
  Sampler &Prof = *Session.sampler();

  // ":trace on" attaches the printing sink to the session's tracer
  // (sink-less emit is one null test, so leaving it attached is free).
  PrintSink Printer(Symbols, stdout);

  std::printf("lpa toplevel — tabled logic engine "
              "(clauses to assert, '?- G.' to query, ':stats', ':queries', "
              "':slowlog', ':trace on|off', ':profile G', ':explain G', "
              "':why G', ':forest [dot|json] [path]', ':flame [path]', "
              "'halt.' to quit)\n");

  std::string Buffer;
  std::string Line;
  while (true) {
    std::printf("%s", Buffer.empty() ? "| ?> " : "|    ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;

    // ':'-prefixed observability commands act on the whole line at once
    // (no trailing dot, no multi-line continuation).
    if (Buffer.empty()) {
      size_t S = Line.find_first_not_of(" \t");
      // ':' starts a command, but ":-" is a Prolog directive — let those
      // fall through to the clause reader.
      if (S != std::string::npos && Line[S] == ':' &&
          (S + 1 >= Line.size() || Line[S + 1] != '-')) {
        std::string Cmd = Line.substr(S);
        while (!Cmd.empty() &&
               (std::isspace(static_cast<unsigned char>(Cmd.back())) ||
                Cmd.back() == '.'))
          Cmd.pop_back();

        if (Cmd == ":stats") {
          Engine.snapshotTableMetrics(Session.metrics());
          if (Session.metrics().empty())
            std::printf("  (no tabled evaluation yet)\n");
          else
            std::printf("%s", Session.metrics().renderReport().c_str());
          std::printf("%s", Session.warmColdLine().c_str());
          // Invalidation machinery: how much dependency state a consult
          // sweep would consult, and how many shared entries retired.
          std::printf("Dep-index: %llu edges / %llu producers (%llu bytes); "
                      "shared retired: %llu\n",
                      static_cast<unsigned long long>(
                          Engine.dependencyIndex().edgeCount()),
                      static_cast<unsigned long long>(
                          Engine.dependencyIndex().producerCount()),
                      static_cast<unsigned long long>(
                          Engine.dependencyIndex().memoryBytes()),
                      static_cast<unsigned long long>(
                          Engine.sharedTableStats().Retired));
          // Intra-query parallel eval, when it ran: pool activity plus
          // shared-table traffic (the scaling story of EvalWorkers).
          if (Engine.stats().ParallelPrimeRuns) {
            ThreadPool::PoolStats PS = Engine.evalPoolStats();
            const SharedTableSpace::Stats &SS = Engine.sharedTableStats();
            std::printf("Parallel: %llu prime run%s, pool %llu/%llu "
                        "tasks run/submitted (%llu stolen, %llu idle "
                        "sleeps)\n",
                        static_cast<unsigned long long>(
                            Engine.stats().ParallelPrimeRuns),
                        Engine.stats().ParallelPrimeRuns == 1 ? "" : "s",
                        static_cast<unsigned long long>(PS.Executed),
                        static_cast<unsigned long long>(PS.Submitted),
                        static_cast<unsigned long long>(PS.Steals),
                        static_cast<unsigned long long>(PS.IdleSleeps));
            std::printf("Shared tables: %llu published, %llu warm hits, "
                        "%llu dup evals; locks %llu taken, %llu contended "
                        "(%.2f ms waited)\n",
                        static_cast<unsigned long long>(SS.Publishes),
                        static_cast<unsigned long long>(SS.WarmHits),
                        static_cast<unsigned long long>(SS.InFlightMisses),
                        static_cast<unsigned long long>(SS.LockAcquisitions),
                        static_cast<unsigned long long>(SS.LockContended),
                        SS.LockWaitNs / 1e6);
          }
          continue;
        }
        if (Cmd == ":queries") {
          if (Session.queriesServed() == 0)
            std::printf("  (no queries yet)\n");
          else
            std::printf("%s", Session.queriesReport().c_str());
          continue;
        }
        if (Cmd == ":slowlog") {
          std::printf("%s", Session.slowlogReport().c_str());
          continue;
        }
        if (Cmd == ":trace on") {
          Session.tracer().setSink(&Printer);
          std::printf("  tracing on.\n");
          continue;
        }
        if (Cmd == ":trace off") {
          Session.tracer().setSink(nullptr);
          std::printf("  tracing off.\n");
          continue;
        }
        if (Cmd.compare(0, 9, ":profile ") == 0) {
          std::string GoalText = Cmd.substr(9);
          auto Goal = Parser::parseTerm(Symbols, Engine.store(), GoalText);
          if (!Goal) {
            std::printf("  syntax error: %s\n",
                        Goal.getError().str().c_str());
            continue;
          }
          EvalStats Before = Engine.stats();
          size_t BytesBefore = Engine.tableSpaceBytes();
          Stopwatch Watch;
          size_t Total = Engine.solve(*Goal, nullptr);
          double Ms = Watch.elapsedSeconds() * 1e3;
          const EvalStats &After = Engine.stats();
          auto D = [](uint64_t A, uint64_t B) {
            return static_cast<unsigned long long>(A - B);
          };
          std::printf("  %zu solution%s in %.3f ms\n", Total,
                      Total == 1 ? "" : "s", Ms);
          std::printf("  tabled-calls=%llu new-subgoals=%llu "
                      "answers=%llu dups=%llu\n",
                      D(After.TabledCalls, Before.TabledCalls),
                      D(After.SubgoalsCreated, Before.SubgoalsCreated),
                      D(After.AnswersRecorded, Before.AnswersRecorded),
                      D(After.AnswersDuplicate, Before.AnswersDuplicate));
          std::printf("  resolutions=%llu index-filtered=%llu "
                      "builtins=%llu table-bytes=+%zu\n",
                      D(After.ClauseResolutions, Before.ClauseResolutions),
                      D(After.ClauseIndexFiltered,
                        Before.ClauseIndexFiltered),
                      D(After.BuiltinEvals, Before.BuiltinEvals),
                      Engine.tableSpaceBytes() - BytesBefore);
          continue;
        }
        if (Cmd.compare(0, 9, ":explain ") == 0) {
          // Evaluates with a per-query cost profile attached (only this
          // query pays the clock reads) and prints the profiler view.
          std::printf("%s", Session.explainReport(Cmd.substr(9)).c_str());
          continue;
        }
        if (Cmd.compare(0, 5, ":why ") == 0) {
          std::string GoalText = Cmd.substr(5);
          auto Goal = Parser::parseTerm(Symbols, Engine.store(), GoalText);
          if (!Goal) {
            std::printf("  syntax error: %s\n",
                        Goal.getError().str().c_str());
            continue;
          }
          Engine.solve(*Goal, nullptr);
          const Subgoal *SG = Engine.findSubgoal(*Goal);
          if (!SG) {
            std::printf("  no table for that goal — justifications exist "
                        "only for tabled predicates (:- table p/n.).\n");
            continue;
          }
          size_t Total = Engine.answerCount(*SG);
          if (Total == 0) {
            std::printf("  no answers — nothing to justify.\n");
            continue;
          }
          size_t Show = Total < 4 ? Total : 4;
          std::printf("  %zu answer%s; proof tree%s for the first %zu:\n",
                      Total, Total == 1 ? "" : "s", Show == 1 ? "" : "s",
                      Show);
          for (size_t I = 0; I < Show; ++I) {
            auto Proof = Engine.justifyAnswer(*SG, I);
            if (!Proof) {
              std::printf("  answer %zu: no justification recorded.\n",
                          I + 1);
              continue;
            }
            std::printf("%s", Engine.renderProof(*Proof).c_str());
          }
          continue;
        }
        if (Cmd == ":flame" || Cmd.compare(0, 7, ":flame ") == 0) {
          // ":flame [path]" — collapsed stacks from the always-on 1 kHz
          // sampler, in flamegraph.pl / speedscope input format. The
          // sampler pauses while we read (profile() is only stable when
          // the thread is stopped) and resumes after.
          std::string Path;
          if (Cmd.size() > 7) {
            size_t A = Cmd.find_first_not_of(" \t", 7);
            if (A != std::string::npos)
              Path = Cmd.substr(A);
          }
          Prof.stop();
          const SampleProfile &P = Prof.profile();
          if (P.empty()) {
            std::printf("  no samples yet — the profiler only sees the "
                        "engine while goals run.\n");
          } else {
            std::string Folded = P.formatFolded(&Symbols);
            if (Path.empty()) {
              std::printf("%s", Folded.c_str());
              std::printf("  (%llu samples, %llu idle, %llu torn at %u "
                          "Hz)\n",
                          static_cast<unsigned long long>(P.totalSamples()),
                          static_cast<unsigned long long>(P.idleSamples()),
                          static_cast<unsigned long long>(P.tornSamples()),
                          Prof.hz());
            } else if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
              std::fwrite(Folded.data(), 1, Folded.size(), F);
              std::fclose(F);
              std::printf("  wrote %llu samples' folded stacks to %s.\n",
                          static_cast<unsigned long long>(P.totalSamples()),
                          Path.c_str());
            } else {
              std::printf("  cannot open %s for writing.\n", Path.c_str());
            }
          }
          Prof.start();
          continue;
        }
        if (Cmd == ":forest" || Cmd.compare(0, 8, ":forest ") == 0) {
          // ":forest [dot|json] [path]" — format defaults to dot; with a
          // path the graph goes to the file, otherwise to the terminal.
          std::string Fmt = "dot", Path;
          if (Cmd.size() > 8) {
            std::string Rest = Cmd.substr(8);
            size_t A = Rest.find_first_not_of(" \t");
            if (A != std::string::npos) {
              size_t B = Rest.find_first_of(" \t", A);
              std::string First = Rest.substr(A, B - A);
              if (First == "dot" || First == "json") {
                Fmt = First;
                if (B != std::string::npos) {
                  size_t C = Rest.find_first_not_of(" \t", B);
                  if (C != std::string::npos)
                    Path = Rest.substr(C);
                }
              } else {
                Path = Rest.substr(A);
              }
            }
          }
          ForestGraph G = Engine.exportForest();
          if (G.Nodes.empty()) {
            std::printf("  no tabled subgoals yet — run a query first.\n");
            continue;
          }
          std::string Out = Fmt == "json" ? forestToJson(G)
                                          : forestToDot(G);
          if (Path.empty()) {
            std::printf("%s", Out.c_str());
          } else if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
            std::fwrite(Out.data(), 1, Out.size(), F);
            std::fclose(F);
            std::printf("  wrote %zu nodes, %zu edges to %s (%s).\n",
                        G.Nodes.size(), G.Edges.size(), Path.c_str(),
                        Fmt.c_str());
          } else {
            std::printf("  cannot open %s for writing.\n", Path.c_str());
          }
          continue;
        }
        std::printf("  unknown command: %s "
                    "(:stats, :queries, :slowlog, :trace on|off, "
                    ":profile <goal>, :explain <goal>, "
                    ":why <goal>, :forest [dot|json] [path], "
                    ":flame [path])\n",
                    Cmd.c_str());
        continue;
      }
    }

    Buffer += Line + "\n";
    // A clause/query ends with '.' at end of line.
    std::string Trimmed = Line;
    while (!Trimmed.empty() && std::isspace(
               static_cast<unsigned char>(Trimmed.back())))
      Trimmed.pop_back();
    if (Trimmed.empty() || Trimmed.back() != '.')
      continue;

    std::string Input = Buffer;
    Buffer.clear();

    // Strip leading whitespace for command detection.
    size_t Start = Input.find_first_not_of(" \t\r\n");
    if (Start == std::string::npos)
      continue;

    if (Input.compare(Start, 5, "halt.") == 0)
      break;
    if (Input.compare(Start, 6, "stats.") == 0) {
      const EvalStats &S = Engine.stats();
      std::printf("  subgoals=%llu answers=%llu resolutions=%llu "
                  "table-bytes=%zu\n",
                  static_cast<unsigned long long>(S.SubgoalsCreated),
                  static_cast<unsigned long long>(S.AnswersRecorded),
                  static_cast<unsigned long long>(S.ClauseResolutions),
                  Engine.tableSpaceBytes());
      continue;
    }

    if (Input.compare(Start, 2, "?-") == 0) {
      // Query through the session: runs under a fresh query id with
      // warm/cold accounting, shows up to 10 solutions.
      auto R = Session.runQuery(Input.substr(Start + 2), /*MaxSolutions=*/10);
      if (!R) {
        std::printf("  syntax error: %s\n", R.getError().str().c_str());
        continue;
      }
      for (const std::string &Sol : R->Solutions)
        std::printf("  %s\n", Sol.c_str());
      if (R->Total == 0)
        std::printf("  no.\n");
      else if (R->Total > R->Solutions.size())
        std::printf("  ... %zu solutions total.\n", R->Total);
      else
        std::printf("  yes (%zu solution%s).\n", R->Total,
                    R->Total == 1 ? "" : "s");
      continue;
    }

    // Otherwise: assert clauses.
    auto R = Session.consult(Input);
    if (!R)
      std::printf("  error: %s\n", R.getError().str().c_str());
  }
  std::printf("bye.\n");
  return 0;
}
