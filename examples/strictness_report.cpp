//===- strictness_report.cpp - Strictness of FL benchmarks ------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Runs the demand-propagation strictness analysis on one (or all) of the
// embedded Table 3 functional benchmarks and prints, per function, the
// argument demands guaranteed under e- and d-demand on the result — the
// information a compiler uses to evaluate arguments eagerly.
//
// Usage: strictness_report [benchmark-name]
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "strictness/Strictness.h"

#include <cstdio>

using namespace lpa;

static int analyzeOne(const CorpusProgram &Program) {
  StrictnessAnalyzer Analyzer;
  auto R = Analyzer.analyze(Program.Source);
  if (!R) {
    std::fprintf(stderr, "%s: %s\n", Program.Name,
                 R.getError().str().c_str());
    return 1;
  }

  std::printf("== %s (%d lines) ==\n", Program.Name, Program.sourceLines());
  std::printf("   total %.2f ms (preproc %.2f, analysis %.2f, collect "
              "%.2f), tables %zu bytes\n",
              R->totalSeconds() * 1e3, R->PreprocSeconds * 1e3,
              R->AnalysisSeconds * 1e3, R->CollectSeconds * 1e3,
              R->TableSpaceBytes);
  for (const FuncStrictness &F : R->Functions) {
    std::printf("   %-50s", F.summary().c_str());
    // Which arguments may safely be evaluated eagerly?
    std::printf(" eager:");
    bool Any = false;
    for (uint32_t I = 0; I < F.Arity; ++I)
      if (F.strictIn(I)) {
        std::printf(" %u", I + 1);
        Any = true;
      }
    if (!Any)
      std::printf(" none");
    std::printf("\n");
  }
  std::printf("\n");
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    const CorpusProgram *P = findBenchmark(Argv[1]);
    if (!P) {
      std::fprintf(stderr, "unknown benchmark '%s'; available:", Argv[1]);
      for (const CorpusProgram &B : flBenchmarks())
        std::fprintf(stderr, " %s", B.Name);
      std::fprintf(stderr, "\n");
      return 1;
    }
    return analyzeOne(*P);
  }
  int Failures = 0;
  for (const CorpusProgram &P : flBenchmarks())
    Failures += analyzeOne(P);
  return Failures;
}
