//===- tabled_queries.cpp - Using the tabled engine directly ----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The substrate on its own: an XSB-style tabled logic engine. This example
// shows the two properties the paper's analyses rely on —
//   (1) completeness: left-recursive transitive closure terminates;
//   (2) call capture: the subgoal table records every call pattern.
// It also runs tabled Fibonacci to show memoization turning an exponential
// computation linear.
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"
#include "term/TermWriter.h"

#include <cstdio>
#include <string>

using namespace lpa;

int main() {
  SymbolTable Symbols;
  Database DB(Symbols);

  // A cyclic graph plus left-recursive reachability: a program that loops
  // forever under plain Prolog evaluation but completes under tabling.
  std::string Graph = ":- table path/2.\n"
                      "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
                      "path(X, Y) :- edge(X, Y).\n";
  for (int I = 0; I < 60; ++I)
    Graph += "edge(n" + std::to_string(I) + ", n" + std::to_string(I + 1) +
             ").\n";
  Graph += "edge(n60, n0).\n"; // Close the cycle.
  Graph += ":- table fib/2.\n"
           "fib(0, 0).\n"
           "fib(1, 1).\n"
           "fib(N, F) :- N > 1, N1 is N - 1, N2 is N - 2,\n"
           "             fib(N1, F1), fib(N2, F2), F is F1 + F2.\n";

  auto Loaded = DB.consult(Graph);
  if (!Loaded) {
    std::fprintf(stderr, "consult failed: %s\n",
                 Loaded.getError().str().c_str());
    return 1;
  }

  Solver Engine(DB);

  // (1) Left recursion over a cyclic graph.
  Stopwatch Watch;
  auto Goal = Parser::parseTerm(Symbols, Engine.store(), "path(n0, X)");
  size_t Count = Engine.solve(*Goal, nullptr);
  std::printf("path(n0, X) over a 61-node cycle: %zu reachable nodes "
              "in %.2f ms (left recursion, cyclic graph -- terminates "
              "because path/2 is tabled)\n",
              Count, Watch.elapsedMillis());

  // (2) The call table captured every subgoal variant.
  std::printf("subgoal table: %zu entries, %llu answers, %zu bytes\n",
              Engine.subgoals().size(),
              static_cast<unsigned long long>(Engine.stats().AnswersRecorded),
              Engine.tableSpaceBytes());

  // Show a few call patterns with their answer counts.
  int Shown = 0;
  for (const Subgoal *SG : Engine.subgoals()) {
    if (++Shown > 3)
      break;
    std::printf("  call %-14s -> %zu answers (complete=%s)\n",
                TermWriter::toString(Symbols, Engine.tableStore(),
                                     SG->CallTerm)
                    .c_str(),
                Engine.answerCount(*SG), SG->Complete ? "yes" : "no");
  }

  // (3) Tabled Fibonacci: one subgoal per distinct call.
  Engine.resetStats();
  Watch.restart();
  auto Fib = Parser::parseTerm(Symbols, Engine.store(), "fib(30, F)");
  std::string Result;
  Engine.solve(*Fib, [&]() {
    Result = TermWriter::toString(Symbols, Engine.storeConst(), *Fib);
    return true;
  });
  std::printf("%s computed in %.2f ms with %llu tabled subgoals "
              "(memoized: linear, not exponential)\n",
              Result.c_str(), Watch.elapsedMillis(),
              static_cast<unsigned long long>(
                  Engine.stats().SubgoalsCreated));
  return 0;
}
