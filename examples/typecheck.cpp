//===- typecheck.cpp - Section 6.1: types from unification ------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Section 6.1 observes that Hindley-Milner type analysis is "equations
// over the domain of equality constraints" whose only engine requirement
// is unification with occur check. This example infers principal types
// for a small FL program — including a deliberately ill-typed function to
// show the occur check catching an infinite type.
//
//===----------------------------------------------------------------------===//

#include "types/TypeInference.h"

#include <cstdio>

using namespace lpa;

int main() {
  const char *Program = R"(
    :- adt(tree(A), [tip, node(tree(A), A, tree(A))]).

    if(true, t, e) = t.
    if(false, t, e) = e.

    id(x) = x.

    ap(nil, ys) = ys.
    ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).

    len(nil) = 0.
    len(cons(x, xs)) = 1 + len(xs).

    insert(x, tip) = node(tip, x, tip).
    insert(x, node(l, v, r)) =
        if(x < v, node(insert(x, l), v, r), node(l, v, insert(x, r))).

    flatten(tip) = nil.
    flatten(node(l, v, r)) = ap(flatten(l), cons(v, flatten(r))).

    % Ill-typed: x would need the infinite type A = list(A).
    selfcons(x) = cons(x, x).
  )";

  auto R = TypeInference::inferText(Program);
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.getError().str().c_str());
    return 1;
  }

  std::printf("Inferred principal types:\n");
  for (const FuncType &F : R->Functions) {
    if (F.Ok)
      std::printf("  %-10s : %s\n", F.Name.c_str(), F.Rendered.c_str());
    else
      std::printf("  %-10s : TYPE ERROR — %s\n", F.Name.c_str(),
                  F.Error.c_str());
  }
  std::printf("\n(The analysis is plain unification with occur check over "
              "type terms,\n exactly the Section 6.1 recipe; no tabling "
              "needed.)\n");
  return 0;
}
