//===- GaiaLike.cpp - Special-purpose Prop groundness baseline ----------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "baseline/GaiaLike.h"

#include "support/Stopwatch.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace lpa;

const PredGroundness *BaselineResult::find(const std::string &Name,
                                           uint32_t Arity) const {
  for (const PredGroundness &P : Predicates)
    if (P.Name == Name && P.Arity == Arity)
      return &P;
  return nullptr;
}

namespace {

/// A partial boolean assignment over clause variables (bit I describes
/// clause variable I).
struct Assign {
  uint64_t Mask = 0;   ///< Assigned positions.
  uint64_t Values = 0; ///< Their values (0 outside Mask).

  bool operator==(const Assign &O) const {
    return Mask == O.Mask && Values == O.Values;
  }
  bool operator<(const Assign &O) const {
    return Mask != O.Mask ? Mask < O.Mask : Values < O.Values;
  }
};

/// iff(Lhs, Rhs...) over clause variable indexes.
struct IffConstraint {
  uint8_t Lhs;
  std::vector<uint8_t> Rhs;
};

/// gp_q(Args...) body call.
struct BodyCall {
  uint32_t Pred; ///< Dense predicate index.
  std::vector<uint8_t> Args;
};

/// One clause step, in source order (the paper: goal order matters for
/// join sizes).
struct Step {
  enum Kind : uint8_t { Iff, Call } K;
  uint32_t Index; ///< Into Iffs or Calls.
};

/// Compiled clause.
struct ClauseIR {
  uint32_t Pred = 0;
  std::vector<uint8_t> HeadArgs;
  uint32_t NumVars = 0;
  std::vector<IffConstraint> Iffs;
  std::vector<BodyCall> Calls;
  std::vector<Step> Steps;
  bool Fails = false;
};

/// A relation: set of rows (bitmask over argument positions) plus the
/// semi-naive delta.
struct Relation {
  std::unordered_set<uint32_t> Rows;
  std::vector<uint32_t> Delta;
};

/// Compiles Figure-1 abstract clauses to ClauseIR.
class Compiler {
public:
  Compiler(SymbolTable &Symbols, const TermStore &Store)
      : Symbols(Symbols), Store(Store) {}

  ErrorOr<std::vector<ClauseIR>> run(const PropProgram &Program);

  /// Dense predicate index for an abstract symbol/arity.
  uint32_t predIndex(SymbolId Sym, uint32_t Arity) {
    uint64_t Key = (uint64_t(Sym) << 32) | Arity;
    auto [It, Inserted] = PredMap.emplace(Key, PredMap.size());
    (void)Inserted;
    return It->second;
  }
  size_t numPreds() const { return PredMap.size(); }

private:
  ErrorOr<ClauseIR> compileClause(TermRef Clause);
  ErrorOr<uint8_t> varId(TermRef T, ClauseIR &C,
                         std::unordered_map<TermRef, uint8_t> &Map);

  SymbolTable &Symbols;
  const TermStore &Store;
  std::unordered_map<uint64_t, uint32_t> PredMap;
};

ErrorOr<uint8_t> Compiler::varId(TermRef T, ClauseIR &C,
                                 std::unordered_map<TermRef, uint8_t> &Map) {
  T = Store.deref(T);
  if (Store.tag(T) != TermTag::Ref)
    return Diagnostic("baseline compiler expects only variables in "
                      "abstract clause arguments");
  auto It = Map.find(T);
  if (It != Map.end())
    return It->second;
  if (C.NumVars >= 64)
    return Diagnostic("clause has more than 64 boolean variables");
  uint8_t Id = static_cast<uint8_t>(C.NumVars++);
  Map.emplace(T, Id);
  return Id;
}

ErrorOr<ClauseIR> Compiler::compileClause(TermRef Clause) {
  ClauseIR C;
  std::unordered_map<TermRef, uint8_t> Map;

  TermRef D = Store.deref(Clause);
  TermRef Head = D;
  std::vector<TermRef> Goals;
  if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Symbols.Neck &&
      Store.arity(D) == 2) {
    Head = Store.deref(Store.arg(D, 0));
    flattenConjunction(Store, Symbols, Store.arg(D, 1), Goals);
  }

  C.Pred = predIndex(Store.symbol(Head), Store.arity(Head));
  for (uint32_t I = 0, E = Store.arity(Head); I < E; ++I) {
    auto Id = varId(Store.arg(Head, I), C, Map);
    if (!Id)
      return Id.getError();
    C.HeadArgs.push_back(*Id);
  }

  for (TermRef G : Goals) {
    TermRef GD = Store.deref(G);
    TermTag Tag = Store.tag(GD);
    if (Tag == TermTag::Atom && Store.symbol(GD) == Symbols.Fail) {
      C.Fails = true;
      continue;
    }
    if (Tag != TermTag::Struct && Tag != TermTag::Atom)
      return Diagnostic("unexpected abstract goal");
    SymbolId Sym = Store.symbol(GD);
    uint32_t Arity = Store.arity(GD);
    if (Sym == Symbols.Iff) {
      IffConstraint Iff;
      auto L = varId(Store.arg(GD, 0), C, Map);
      if (!L)
        return L.getError();
      Iff.Lhs = *L;
      for (uint32_t I = 1; I < Arity; ++I) {
        auto R = varId(Store.arg(GD, I), C, Map);
        if (!R)
          return R.getError();
        Iff.Rhs.push_back(*R);
      }
      C.Steps.push_back({Step::Iff, static_cast<uint32_t>(C.Iffs.size())});
      C.Iffs.push_back(std::move(Iff));
      continue;
    }
    // Body call.
    BodyCall Call;
    Call.Pred = predIndex(Sym, Arity);
    for (uint32_t I = 0; I < Arity; ++I) {
      auto A = varId(Store.arg(GD, I), C, Map);
      if (!A)
        return A.getError();
      Call.Args.push_back(*A);
    }
    C.Steps.push_back({Step::Call, static_cast<uint32_t>(C.Calls.size())});
    C.Calls.push_back(std::move(Call));
  }
  return C;
}

ErrorOr<std::vector<ClauseIR>> Compiler::run(const PropProgram &Program) {
  // Touch every predicate so relations exist even for undefined callees.
  std::vector<ClauseIR> Out;
  for (TermRef Clause : Program.Clauses) {
    auto C = compileClause(Clause);
    if (!C)
      return C.getError();
    Out.push_back(std::move(*C));
  }
  return Out;
}

/// Extends each assignment in \p In with the satisfying rows of \p Iff,
/// appending to \p Out. Mirrors the engine's native iff enumeration.
void applyIff(const IffConstraint &Iff, const std::vector<Assign> &In,
              std::vector<Assign> &Out) {
  for (const Assign &A : In) {
    auto TrySet = [](Assign B, uint8_t Var, bool Value,
                     bool &Ok) -> Assign {
      uint64_t Bit = uint64_t(1) << Var;
      if (B.Mask & Bit) {
        Ok = ((B.Values >> Var) & 1) == static_cast<uint64_t>(Value);
        return B;
      }
      Ok = true;
      B.Mask |= Bit;
      if (Value)
        B.Values |= Bit;
      return B;
    };

    // Row 1: everything true.
    {
      bool Ok = true;
      Assign B = TrySet(A, Iff.Lhs, true, Ok);
      for (size_t I = 0; Ok && I < Iff.Rhs.size(); ++I)
        B = TrySet(B, Iff.Rhs[I], true, Ok);
      if (Ok)
        Out.push_back(B);
    }
    if (Iff.Rhs.empty())
      continue; // iff(X): X must be true.

    // Rows with Lhs false and at least one false conjunct.
    bool Ok = true;
    Assign Base = TrySet(A, Iff.Lhs, false, Ok);
    if (!Ok)
      continue;
    // DFS over conjuncts.
    struct Frame {
      Assign B;
      size_t I;
      bool AnyFalse;
    };
    std::vector<Frame> Stack{{Base, 0, false}};
    while (!Stack.empty()) {
      Frame F = Stack.back();
      Stack.pop_back();
      if (F.I == Iff.Rhs.size()) {
        if (F.AnyFalse)
          Out.push_back(F.B);
        continue;
      }
      for (bool V : {true, false}) {
        bool Ok2 = true;
        Assign B2 = TrySet(F.B, Iff.Rhs[F.I], V, Ok2);
        if (Ok2)
          Stack.push_back({B2, F.I + 1, F.AnyFalse || !V});
      }
    }
  }
}

/// Joins each assignment with the rows of \p Rel for call \p Call.
void applyJoin(const BodyCall &Call, const std::vector<uint32_t> &Rows,
               const std::vector<Assign> &In, std::vector<Assign> &Out) {
  for (const Assign &A : In) {
    for (uint32_t Row : Rows) {
      Assign B = A;
      bool Ok = true;
      for (size_t I = 0; Ok && I < Call.Args.size(); ++I) {
        uint8_t Var = Call.Args[I];
        bool Value = (Row >> I) & 1;
        uint64_t Bit = uint64_t(1) << Var;
        if (B.Mask & Bit) {
          Ok = ((B.Values >> Var) & 1) == static_cast<uint64_t>(Value);
        } else {
          B.Mask |= Bit;
          if (Value)
            B.Values |= Bit;
        }
      }
      if (Ok)
        Out.push_back(B);
    }
  }
}

void dedup(std::vector<Assign> &V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

/// Evaluates one clause, using \p DeltaCall (if >= 0) as the call position
/// joined against the delta rather than the full relation. New head rows
/// are added to \p NewRows.
void evalClause(const ClauseIR &C, const std::vector<Relation> &Rels,
                int DeltaCall, std::vector<uint32_t> &NewRows) {
  if (C.Fails)
    return;
  std::vector<Assign> Cur{Assign{}};
  std::vector<Assign> Next;
  int CallIdx = -1;
  for (const Step &S : C.Steps) {
    Next.clear();
    if (S.K == Step::Iff) {
      applyIff(C.Iffs[S.Index], Cur, Next);
    } else {
      ++CallIdx;
      const BodyCall &Call = C.Calls[S.Index];
      const Relation &Rel = Rels[Call.Pred];
      if (CallIdx == DeltaCall) {
        applyJoin(Call, Rel.Delta, Cur, Next);
      } else {
        std::vector<uint32_t> Rows(Rel.Rows.begin(), Rel.Rows.end());
        applyJoin(Call, Rows, Cur, Next);
      }
    }
    dedup(Next);
    Cur.swap(Next);
    if (Cur.empty())
      return;
  }

  // Project onto head arguments, expanding unassigned ones both ways.
  for (const Assign &A : Cur) {
    std::vector<uint8_t> Free;
    for (uint8_t Var : C.HeadArgs)
      if (!(A.Mask & (uint64_t(1) << Var)))
        Free.push_back(Var);
    // Deduplicate free vars (a head var may repeat).
    std::sort(Free.begin(), Free.end());
    Free.erase(std::unique(Free.begin(), Free.end()), Free.end());
    for (uint64_t M = 0; M < (uint64_t(1) << Free.size()); ++M) {
      Assign B = A;
      for (size_t I = 0; I < Free.size(); ++I) {
        B.Mask |= uint64_t(1) << Free[I];
        if ((M >> I) & 1)
          B.Values |= uint64_t(1) << Free[I];
      }
      uint32_t Row = 0;
      for (size_t I = 0; I < C.HeadArgs.size(); ++I)
        if ((B.Values >> C.HeadArgs[I]) & 1)
          Row |= uint32_t(1) << I;
      NewRows.push_back(Row);
    }
  }
}

} // namespace

ErrorOr<BaselineResult> GaiaLikeAnalyzer::analyze(std::string_view Source) {
  BaselineResult Result;
  Stopwatch Phase;

  //--- Preprocessing: parse + Figure-1 transform + compile to IR. ---------
  TermStore AbsStore;
  PropTransformer Transformer(Symbols);
  auto Program = Transformer.transformText(Source, AbsStore);
  if (!Program)
    return Program.getError();
  Compiler Comp(Symbols, AbsStore);
  auto Clauses = Comp.run(*Program);
  if (!Clauses)
    return Clauses.getError();

  // Resolve the dense index of each concrete predicate's abstraction.
  std::vector<uint32_t> OpenPreds;
  for (PredKey P : Program->Predicates)
    OpenPreds.push_back(
        Comp.predIndex(Transformer.abstractSymbol(P.Sym), P.Arity));
  Result.PreprocSeconds = Phase.elapsedSeconds();

  //--- Analysis: semi-naive bottom-up fixpoint. ----------------------------
  Phase.restart();
  std::vector<Relation> Rels(Comp.numPreds());
  std::vector<std::vector<uint32_t>> Pending(Comp.numPreds());

  auto Commit = [&]() {
    bool Any = false;
    for (size_t P = 0; P < Rels.size(); ++P) {
      Rels[P].Delta.clear();
      for (uint32_t Row : Pending[P])
        if (Rels[P].Rows.insert(Row).second) {
          Rels[P].Delta.push_back(Row);
          Any = true;
        }
      Pending[P].clear();
    }
    return Any;
  };

  // Round 0: clauses with no calls seed the relations.
  for (const ClauseIR &C : *Clauses)
    if (C.Calls.empty())
      evalClause(C, Rels, -1, Pending[C.Pred]);
  Commit();
  ++Result.Iterations;

  while (true) {
    for (const ClauseIR &C : *Clauses) {
      if (C.Calls.empty())
        continue;
      if (Opts.Seminaive) {
        // One pass per call position restricted to the delta.
        for (int J = 0, E = static_cast<int>(C.Calls.size()); J < E; ++J)
          evalClause(C, Rels, J, Pending[C.Pred]);
      } else {
        evalClause(C, Rels, -1, Pending[C.Pred]);
      }
    }
    ++Result.Iterations;
    if (!Commit())
      break;
  }
  Result.AnalysisSeconds = Phase.elapsedSeconds();

  //--- Collection. ----------------------------------------------------------
  Phase.restart();
  for (size_t I = 0; I < Program->Predicates.size(); ++I) {
    PredKey P = Program->Predicates[I];
    PredGroundness PG;
    PG.Name = Symbols.name(P.Sym);
    PG.Arity = P.Arity;
    const Relation &Rel = Rels[OpenPreds[I]];
    for (uint32_t Row : Rel.Rows) {
      BoolTuple Tuple;
      for (uint32_t A = 0; A < P.Arity; ++A)
        Tuple.push_back((Row >> A) & 1);
      PG.SuccessSet.insert(std::move(Tuple));
    }
    Result.RowsDerived += Rel.Rows.size();
    PG.computeMeets();
    Result.Predicates.push_back(std::move(PG));
  }
  Result.CollectSeconds = Phase.elapsedSeconds();
  return Result;
}
