//===- GaiaLike.h - Special-purpose Prop groundness baseline ----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Table 2 comparator: a dedicated Prop-domain groundness analyzer in
/// the spirit of GAIA — no logic engine, no terms, no unification. The
/// Figure-1 abstract program is compiled to a constraint IR (clause
/// variables as dense bit positions, iff constraints, body joins), and the
/// minimal model is computed by set-at-a-time semi-naive bottom-up
/// iteration over bitmask relations.
///
/// The results must be identical to the tabled-engine analyzer's success
/// sets (the paper: "The results obtained on the two systems are
/// identical, since they implement the same analysis").
///
//===----------------------------------------------------------------------===//

#ifndef LPA_BASELINE_GAIALIKE_H
#define LPA_BASELINE_GAIALIKE_H

#include "prop/PropResult.h"
#include "prop/PropTransform.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace lpa {

/// Result of the baseline analysis (output groundness only; the baseline
/// is bottom-up, so call patterns would need a Magic-Sets pass, which the
/// paper's Section 3.1 contrasts against tabling's free call capture).
struct BaselineResult {
  std::vector<PredGroundness> Predicates;

  double PreprocSeconds = 0;
  double AnalysisSeconds = 0;
  double CollectSeconds = 0;
  double totalSeconds() const {
    return PreprocSeconds + AnalysisSeconds + CollectSeconds;
  }

  uint64_t Iterations = 0;   ///< Bottom-up rounds until fixpoint.
  uint64_t RowsDerived = 0;  ///< Total relation rows (success-set size).

  const PredGroundness *find(const std::string &Name, uint32_t Arity) const;
};

/// The special-purpose analyzer.
class GaiaLikeAnalyzer {
public:
  struct Options {
    /// Semi-naive evaluation (join at least one delta row per derivation)
    /// versus naive full re-evaluation each round; the ablation for the
    /// paper's delta-set discussion in Section 4.
    bool Seminaive = true;
  };

  explicit GaiaLikeAnalyzer(SymbolTable &Symbols)
      : GaiaLikeAnalyzer(Symbols, Options()) {}
  GaiaLikeAnalyzer(SymbolTable &Symbols, Options Opts)
      : Symbols(Symbols), Opts(Opts) {}

  /// Analyzes Prolog source text.
  ErrorOr<BaselineResult> analyze(std::string_view Source);

private:
  SymbolTable &Symbols;
  Options Opts;
};

} // namespace lpa

#endif // LPA_BASELINE_GAIALIKE_H
