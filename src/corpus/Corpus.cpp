//===- Corpus.cpp - Embedded benchmark programs -------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Assembles the corpus tables together with the paper's published
// measurements (Tables 1-4), which the bench harnesses print beside our
// measured numbers.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

namespace lpa {
namespace corpus {
extern const char *QSortSrc;
extern const char *QueensSrc;
extern const char *PGSrc;
extern const char *PlanSrc;
extern const char *GabrielSrc;
extern const char *DisjSrc;
extern const char *CSSrc;
extern const char *KalahSrc;
extern const char *PeepSrc;
extern const char *ReadSrc;
const char *press1Source();
const char *press2Source();

extern const char *EuSrc;
extern const char *EventSrc;
extern const char *FftSrc;
extern const char *ListcomprSrc;
extern const char *MergesortSrc;
extern const char *NqSrc;
extern const char *OdproveSrc;
extern const char *PcproveSrc;
extern const char *QuicksortFLSrc;
extern const char *StrassenSrc;
} // namespace corpus
} // namespace lpa

using namespace lpa;

int CorpusProgram::sourceLines() const {
  int Lines = 0;
  for (const char *P = Source; *P; ++P)
    if (*P == '\n')
      ++Lines;
  return Lines;
}

namespace {

PaperRow row(double Pre, double Ana, double Col, double Tot, double Inc,
             long Bytes) {
  return PaperRow{Pre, Ana, Col, Tot, Inc, Bytes};
}

PaperRow noRow() { return PaperRow{}; }

} // namespace

const std::vector<CorpusProgram> &lpa::prologBenchmarks() {
  // Table 1 rows: Preproc / Analysis / Collection / Total / increase% /
  // table bytes. Table 2 GAIA totals. Table 4 rows (depth-k) where the
  // paper reports them (it drops Gabriel, Plan, Press1, Press2).
  static const std::vector<CorpusProgram> Benchmarks = {
      {"cs", corpus::CSSrc, 182,
       row(0.31, 0.11, 0.15, 0.57, 22.1, 8056), 1.34,
       row(0.16, 0.03, 0.07, 0.26, 16, 12988)},
      {"disj", corpus::DisjSrc, 172,
       row(0.27, 0.03, 0.10, 0.40, 26.9, 5768), 1.01,
       row(0.14, 0.03, 0.06, 0.23, 23, 9552)},
      {"gabriel", corpus::GabrielSrc, 122,
       row(0.20, 0.05, 0.11, 0.36, 43.6, 6912), 0.47, noRow()},
      {"kalah", corpus::KalahSrc, 278,
       row(0.48, 0.06, 0.23, 0.77, 37.4, 10580), 0.93,
       row(0.24, 0.05, 0.11, 0.40, 29, 17068)},
      {"peep", corpus::PeepSrc, 369,
       row(0.84, 0.16, 0.09, 1.09, 23.4, 5800), 1.16,
       row(0.44, 0.08, 0.05, 0.57, 18, 12784)},
      {"pg", corpus::PGSrc, 53,
       row(0.10, 0.01, 0.02, 0.13, 31.0, 2332), 0.16,
       row(0.05, 0.01, 0.02, 0.08, 29, 4136)},
      {"plan", corpus::PlanSrc, 84,
       row(0.14, 0.01, 0.03, 0.18, 30.8, 2888), 0.12,
       row(0.08, 0.01, 0.02, 0.11, 29, 5324)},
      {"press1", corpus::press1Source(), 349,
       row(0.62, 0.38, 0.82, 1.82, 59.5, 29400), 5.96, noRow()},
      {"press2", corpus::press2Source(), 351,
       row(0.60, 0.41, 0.83, 1.84, 60.7, 29400), 6.03, noRow()},
      {"qsort", corpus::QSortSrc, 21,
       row(0.04, 0.00, 0.01, 0.05, 33.3, 916), 0.05,
       row(0.02, 0.01, 0.02, 0.05, 56, 1684)},
      {"queens", corpus::QueensSrc, 33,
       row(0.04, 0.00, 0.01, 0.05, 27.8, 976), 0.04,
       row(0.03, 0.00, 0.01, 0.04, 33, 1740)},
      {"read", corpus::ReadSrc, 443,
       row(0.72, 0.60, 0.70, 2.02, 64.4, 26528), 1.66,
       row(0.36, 0.25, 0.43, 1.04, 50, 52508)},
  };
  return Benchmarks;
}

const std::vector<CorpusProgram> &lpa::flBenchmarks() {
  // Table 3 rows. The paper's "eu" row is partially garbled in our source
  // text; the preprocessing entry (0.12) is reconstructed so the phases
  // sum to the printed total.
  static const std::vector<CorpusProgram> Benchmarks = {
      {"eu", corpus::EuSrc, 67,
       row(0.12, 0.03, 0.01, 0.16, -1, 2852), -1, noRow()},
      {"event", corpus::EventSrc, 384,
       row(0.67, 0.63, 0.08, 1.38, -1, 22056), -1, noRow()},
      {"fft", corpus::FftSrc, 343,
       row(0.63, 0.19, 0.06, 0.88, -1, 15780), -1, noRow()},
      {"listcompr", corpus::ListcomprSrc, 241,
       row(0.75, 0.07, 0.02, 0.84, -1, 4688), -1, noRow()},
      {"mergesort", corpus::MergesortSrc, 65,
       row(0.11, 0.02, 0.01, 0.14, -1, 2332), -1, noRow()},
      {"nq", corpus::NqSrc, 90,
       row(0.20, 0.12, 0.02, 0.34, -1, 8912), -1, noRow()},
      {"odprove", corpus::OdproveSrc, 160,
       row(0.39, 0.17, 0.02, 0.58, -1, 3776), -1, noRow()},
      {"pcprove", corpus::PcproveSrc, 595,
       row(1.01, 1.60, 0.10, 2.71, -1, 25972), -1, noRow()},
      {"quicksort", corpus::QuicksortFLSrc, 70,
       row(0.10, 0.03, 0.01, 0.14, -1, 2660), -1, noRow()},
      {"strassen", corpus::StrassenSrc, 93,
       row(0.09, 0.08, 0.01, 0.18, -1, 2760), -1, noRow()},
  };
  return Benchmarks;
}

const CorpusProgram *lpa::findBenchmark(const std::string &Name) {
  for (const CorpusProgram &P : prologBenchmarks())
    if (Name == P.Name)
      return &P;
  for (const CorpusProgram &P : flBenchmarks())
    if (Name == P.Name)
      return &P;
  return nullptr;
}
