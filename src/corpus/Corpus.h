//===- Corpus.h - Embedded benchmark programs -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus. The paper evaluates on the GAIA/Aquarius logic-
/// program suite (Tables 1, 2 and 4) and on EQUALS functional benchmarks
/// (Table 3). The original files are not available offline, so these are
/// from-scratch programs with the same names, approximate sizes and
/// character (see DESIGN.md "Substitutions"); each entry also carries the
/// paper's published measurements so the bench harnesses can print
/// paper-vs-measured rows.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_CORPUS_CORPUS_H
#define LPA_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace lpa {

/// The paper's published row for one benchmark (times in seconds; -1 when
/// the paper does not report the value).
struct PaperRow {
  double Preproc = -1;
  double Analysis = -1;
  double Collect = -1;
  double Total = -1;
  double CompileIncreasePct = -1;
  long TableBytes = -1;
};

/// One embedded benchmark program.
struct CorpusProgram {
  const char *Name;
  const char *Source;
  int PaperLines;      ///< The paper's "Program size (lines)" column.
  PaperRow Table1;     ///< Prop groundness (Table 1) / strictness (Table 3).
  double GaiaSeconds;  ///< Table 2's GAIA total (logic benchmarks; -1 if absent).
  PaperRow Table4;     ///< Depth-k groundness (Table 4; -1 row if absent).

  /// Lines of our embedded source (computed, not the paper's count).
  int sourceLines() const;
};

/// The 12 logic-program benchmarks of Tables 1/2/4, in the paper's order:
/// CS, Disj, Gabriel, Kalah, Peep, PG, Plan, Press1, Press2, QSort,
/// Queens, Read.
const std::vector<CorpusProgram> &prologBenchmarks();

/// The 10 functional benchmarks of Table 3: eu, event, fft, listcompr,
/// mergesort, nq, odprove, pcprove, quicksort, strassen.
const std::vector<CorpusProgram> &flBenchmarks();

/// Finds a benchmark by name in either corpus; nullptr when absent.
const CorpusProgram *findBenchmark(const std::string &Name);

} // namespace lpa

#endif // LPA_CORPUS_CORPUS_H
