//===- FLCorpus1.cpp - eu, event, fft, listcompr, mergesort ------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// Functional benchmarks in the EQUALS-like equational syntax consumed by
// src/fl. All arithmetic is over integers (fixed-point where the original
// used floats); conditionals are the user-defined if/3 matched on
// true/false.
//
//===----------------------------------------------------------------------===//

namespace lpa {
namespace corpus {

/// eu: Euler-method integration of a simple ODE (paper size: 67 lines).
const char *EuSrc = R"FL(
% eu -- Euler integration of y' = y over fixed-point integers.

if(true, t, e) = t.
if(false, t, e) = e.

scale = 1000.

% One Euler step: y + h*y / scale.
step(y, h) = y + ((h * y) // scale).

% Iterate n steps.
euler(y, h, 0) = y.
euler(y, h, n) = euler(step(y, h), h, n - 1).

% Integrate from 1.0 with step h over n steps.
integrate(h, n) = euler(scale, h, n).

% Richardson-style refinement: halve the step, double the count.
refine(h, n, 0) = integrate(h, n).
refine(h, n, k) = combine(refine(h, n, k - 1), integrate(h // 2, n * 2)).

combine(a, b) = (2 * b) - a.

% Error estimate against a reference value.
err(approx, ref) = abs(approx - ref).

converged(h, n, tol) = if(err(integrate(h, n), integrate(h // 2, n * 2)) < tol,
                          true, false).

% Adaptive driver: shrink the step until converged (bounded by fuel).
adapt(h, n, tol, 0) = integrate(h, n).
adapt(h, n, tol, fuel) = if(converged(h, n, tol),
                            integrate(h, n),
                            adapt(h // 2, n * 2, tol, fuel - 1)).

main = adapt(100, 10, 5, 6).
)FL";

/// event: discrete-event simulator over a sorted event queue (paper: 384).
const char *EventSrc = R"FL(
% event -- discrete-event simulation with a sorted pending-event queue.

:- data ev/3, sim/3, stats/4.

if(true, t, e) = t.
if(false, t, e) = e.

% Event: ev(time, kind, payload). Kinds: 1 = arrival, 2 = service,
% 3 = departure.

time(ev(t, k, p)) = t.
kind(ev(t, k, p)) = k.
payload(ev(t, k, p)) = p.

% Queue operations: insert keeps the list sorted by time.
insert(e, nil) = cons(e, nil).
insert(e, cons(f, q)) = if(time(e) =< time(f),
                           cons(e, cons(f, q)),
                           cons(f, insert(e, q))).

insert_all(nil, q) = q.
insert_all(cons(e, es), q) = insert_all(es, insert(e, q)).

% State: sim(clock, busy, queue_length).
clock(sim(c, b, q)) = c.
busy(sim(c, b, q)) = b.
qlen(sim(c, b, q)) = q.

% Handling one event yields a new state and a list of new events.
handle(e, s) = dispatch(kind(e), e, s).

dispatch(1, e, s) = arrive(e, s).
dispatch(2, e, s) = serve(e, s).
dispatch(3, e, s) = depart(e, s).

arrive(e, sim(c, b, q)) =
    pair(sim(time(e), b, q + 1),
         if(b == 0,
            cons(ev(time(e) + 1, 2, payload(e)), nil),
            nil)).

serve(e, sim(c, b, q)) =
    pair(sim(time(e), 1, q),
         cons(ev(time(e) + service_time(payload(e)), 3, payload(e)), nil)).

depart(e, sim(c, b, q)) =
    pair(sim(time(e), next_busy(q), q - 1),
         if(q > 1,
            cons(ev(time(e) + 1, 2, payload(e) + 1), nil),
            nil)).

next_busy(q) = if(q > 1, 1, 0).

service_time(p) = 1 + (p mod 3).

fst(pair(a, b)) = a.
snd(pair(a, b)) = b.

% Main loop: pop the earliest event, handle it, merge new events.
run(nil, s, fuel) = s.
run(cons(e, q), s, 0) = s.
run(cons(e, q), s, fuel) =
    run(insert_all(snd(handle(e, s)), q),
        fst(handle(e, s)),
        fuel - 1).

% Initial workload: n arrivals at increasing times.
workload(0) = nil.
workload(n) = cons(ev(n * 2, 1, n), workload(n - 1)).

% Statistics over the final state.
utilization(s) = if(busy(s) == 1, 100, 0).
backlog(s) = qlen(s).

summary(s) = stats(clock(s), utilization(s), backlog(s), 0).

main = summary(run(workload(8), sim(0, 0, 0), 64)).
)FL";

/// fft: radix-2 FFT over fixed-point complex pairs (paper size: 343).
const char *FftSrc = R"FL(
% fft -- radix-2 decimation-in-time FFT, complex numbers as cx(re, im)
% in fixed-point with scale 1024.

:- data cx/2.

if(true, t, e) = t.
if(false, t, e) = e.

scale = 1024.

re(cx(r, i)) = r.
im(cx(r, i)) = i.

cadd(a, b) = cx(re(a) + re(b), im(a) + im(b)).
csub(a, b) = cx(re(a) - re(b), im(a) - im(b)).
cmul(a, b) = cx(((re(a) * re(b)) - (im(a) * im(b))) // scale,
                ((re(a) * im(b)) + (im(a) * re(b))) // scale).

% Twiddle factors from a small cosine table (quarter wave, scaled).
costab(0) = 1024.
costab(1) = 724.
costab(2) = 0.
costab(3) = 0 - 724.
costab(4) = 0 - 1024.
costab(k) = costab(k mod 4).

sintab(k) = costab(k + 2) * (0 - 1).

twiddle(k, n) = cx(costab((4 * k) // n), sintab((4 * k) // n)).

% Split a list into even- and odd-indexed elements.
evens(nil) = nil.
evens(cons(x, nil)) = cons(x, nil).
evens(cons(x, cons(y, r))) = cons(x, evens(r)).

odds(nil) = nil.
odds(cons(x, nil)) = nil.
odds(cons(x, cons(y, r))) = cons(y, odds(r)).

len(nil) = 0.
len(cons(x, r)) = 1 + len(r).

% Zip the butterflies back together.
combine(nil, nil, k, n) = nil.
combine(cons(e, es), cons(o, os), k, n) =
    cons(cadd(e, cmul(twiddle(k, n), o)),
         combine(es, os, k + 1, n)).

combine2(nil, nil, k, n) = nil.
combine2(cons(e, es), cons(o, os), k, n) =
    cons(csub(e, cmul(twiddle(k, n), o)),
         combine2(es, os, k + 1, n)).

append(nil, ys) = ys.
append(cons(x, xs), ys) = cons(x, append(xs, ys)).

fft(cons(x, nil)) = cons(x, nil).
fft(xs) = step(fft(evens(xs)), fft(odds(xs)), len(xs)).

step(es, os, n) = append(combine(es, os, 0, n), combine2(es, os, 0, n)).

% Inverse transform via conjugation.
conj(cx(r, i)) = cx(r, 0 - i).

mapconj(nil) = nil.
mapconj(cons(x, r)) = cons(conj(x), mapconj(r)).

ifft(xs) = mapconj(fft(mapconj(xs))).

% Signal generators and energy measure.
impulse(0) = nil.
impulse(n) = cons(cx(if(n == 8, scale, 0), 0), impulse(n - 1)).

energy(nil) = 0.
energy(cons(x, r)) = ((re(x) * re(x) + im(x) * im(x)) // scale) + energy(r).

main = energy(fft(impulse(8))).
)FL";

/// listcompr: desugared list-comprehension pipelines (paper size: 241).
const char *ListcomprSrc = R"FL(
% listcompr -- map/filter/zip pipelines as produced by desugaring
% list comprehensions.

if(true, t, e) = t.
if(false, t, e) = e.

append(nil, ys) = ys.
append(cons(x, xs), ys) = cons(x, append(xs, ys)).

upto(lo, hi) = if(lo > hi, nil, cons(lo, upto(lo + 1, hi))).

sum(nil) = 0.
sum(cons(x, xs)) = x + sum(xs).

len(nil) = 0.
len(cons(x, xs)) = 1 + len(xs).

% [ x*x | x <- [1..n] ]
squares(n) = squares_go(upto(1, n)).
squares_go(nil) = nil.
squares_go(cons(x, xs)) = cons(x * x, squares_go(xs)).

% [ x | x <- xs, x mod 2 == 0 ]
filter_even(nil) = nil.
filter_even(cons(x, xs)) = if(x mod 2 == 0,
                              cons(x, filter_even(xs)),
                              filter_even(xs)).

% [ pair(x, y) | x <- xs, y <- ys ]
pairs(nil, ys) = nil.
pairs(cons(x, xs), ys) = append(pair_with(x, ys), pairs(xs, ys)).

pair_with(x, nil) = nil.
pair_with(x, cons(y, ys)) = cons(pair(x, y), pair_with(x, ys)).

% [ x + y | pair(x, y) <- zip(xs, ys) ]
zipsum(nil, ys) = nil.
zipsum(xs, nil) = nil.
zipsum(cons(x, xs), cons(y, ys)) = cons(x + y, zipsum(xs, ys)).

% Pythagorean triples up to n (triple generator with guards).
triples(n) = tri_a(upto(1, n), n).
tri_a(nil, n) = nil.
tri_a(cons(a, as), n) = append(tri_b(a, upto(a, n), n), tri_a(as, n)).
tri_b(a, nil, n) = nil.
tri_b(a, cons(b, bs), n) = append(tri_c(a, b, upto(b, n)), tri_b(a, bs, n)).
tri_c(a, b, nil) = nil.
tri_c(a, b, cons(c, cs)) = if(a * a + b * b == c * c,
                              cons(triple(a, b, c), tri_c(a, b, cs)),
                              tri_c(a, b, cs)).

% Concatenated map over nested lists.
concatmap_sq(nil) = nil.
concatmap_sq(cons(xs, xss)) = append(squares_go(xs), concatmap_sq(xss)).

chunks(0, xs) = nil.
chunks(n, xs) = cons(xs, chunks(n - 1, xs)).

main = sum(filter_even(squares(12)))
       + len(pairs(upto(1, 5), upto(1, 4)))
       + sum(zipsum(upto(1, 9), upto(1, 9)))
       + len(triples(13))
       + sum(concatmap_sq(chunks(3, upto(1, 4)))).
)FL";

/// mergesort (paper size: 65 lines).
const char *MergesortSrc = R"FL(
% mergesort -- top-down merge sort on integer lists.

if(true, t, e) = t.
if(false, t, e) = e.

merge(nil, ys) = ys.
merge(xs, nil) = xs.
merge(cons(x, xs), cons(y, ys)) =
    if(x =< y,
       cons(x, merge(xs, cons(y, ys))),
       cons(y, merge(cons(x, xs), ys))).

split(nil) = pair(nil, nil).
split(cons(x, nil)) = pair(cons(x, nil), nil).
split(cons(x, cons(y, r))) = glue(x, y, split(r)).

glue(x, y, pair(a, b)) = pair(cons(x, a), cons(y, b)).

fst(pair(a, b)) = a.
snd(pair(a, b)) = b.

msort(nil) = nil.
msort(cons(x, nil)) = cons(x, nil).
msort(xs) = merge(msort(fst(split(xs))), msort(snd(split(xs)))).

sorted(nil) = true.
sorted(cons(x, nil)) = true.
sorted(cons(x, cons(y, r))) = if(x =< y, sorted(cons(y, r)), false).

gen(0) = nil.
gen(n) = cons((n * 17) mod 31, gen(n - 1)).

main = sorted(msort(gen(20))).
)FL";

} // namespace corpus
} // namespace lpa
