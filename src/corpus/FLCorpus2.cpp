//===- FLCorpus2.cpp - nq, odprove, pcprove, quicksort, strassen -------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

namespace lpa {
namespace corpus {

/// nq: n-queens in the lazy functional style (paper size: 90 lines).
const char *NqSrc = R"FL(
% nq -- n-queens via lazy candidate filtering.

if(true, t, e) = t.
if(false, t, e) = e.

and(true, b) = b.
and(false, b) = false.

not(true) = false.
not(false) = true.

append(nil, ys) = ys.
append(cons(x, xs), ys) = cons(x, append(xs, ys)).

len(nil) = 0.
len(cons(x, xs)) = 1 + len(xs).

upto(lo, hi) = if(lo > hi, nil, cons(lo, upto(lo + 1, hi))).

% A placement is a list of columns, most recent row first.
safe(q, d, nil) = true.
safe(q, d, cons(p, ps)) =
    and(not(q == p),
        and(not(q == p + d),
            and(not(q == p - d),
                safe(q, d + 1, ps)))).

% Extend every partial placement by every safe column.
extend(n, ps) = ext_cols(upto(1, n), ps).

ext_cols(nil, ps) = nil.
ext_cols(cons(q, qs), ps) =
    if(safe(q, 1, ps),
       cons(cons(q, ps), ext_cols(qs, ps)),
       ext_cols(qs, ps)).

extend_all(n, nil) = nil.
extend_all(n, cons(ps, pss)) = append(extend(n, ps), extend_all(n, pss)).

% Breadth-first generation of all solutions.
place(n, 0) = cons(nil, nil).
place(n, k) = extend_all(n, place(n, k - 1)).

solutions(n) = len(place(n, n)).

first(cons(x, xs)) = x.

main = solutions(6) + len(first(place(6, 6))).
)FL";

/// odprove: ordered propositional prover (paper size: 160 lines).
const char *OdproveSrc = R"FL(
% odprove -- Wang-style sequent prover for propositional formulas.
% Formulas: v(n) | neg(f) | conj(f, g) | disj(f, g) | imp(f, g).

:- data v/1, neg/1, conj/2, disj/2, imp/2, seq/2.

if(true, t, e) = t.
if(false, t, e) = e.

and(true, b) = b.
and(false, b) = false.

or(true, b) = true.
or(false, b) = b.

member(x, nil) = false.
member(x, cons(y, ys)) = if(x == y, true, member(x, ys)).

% prove(seq(gamma, delta)): all of gamma entails some of delta.
% Sequent rules applied left-first; atoms accumulate in order.
prove(s) = pr(s, 8).

pr(seq(gamma, delta), 0) = false.
pr(seq(gamma, delta), fuel) = step_l(gamma, nil, delta, fuel).

% Scan the antecedent for a compound formula.
step_l(nil, atoms, delta, fuel) = step_r(delta, nil, atoms, fuel).
step_l(cons(v(n), gs), atoms, delta, fuel) =
    step_l(gs, cons(v(n), atoms), delta, fuel).
step_l(cons(neg(f), gs), atoms, delta, fuel) =
    pr(seq(append(gs, atoms), cons(f, delta)), fuel - 1).
step_l(cons(conj(f, g), gs), atoms, delta, fuel) =
    pr(seq(cons(f, cons(g, append(gs, atoms))), delta), fuel - 1).
step_l(cons(disj(f, g), gs), atoms, delta, fuel) =
    and(pr(seq(cons(f, append(gs, atoms)), delta), fuel - 1),
        pr(seq(cons(g, append(gs, atoms)), delta), fuel - 1)).
step_l(cons(imp(f, g), gs), atoms, delta, fuel) =
    and(pr(seq(cons(g, append(gs, atoms)), delta), fuel - 1),
        pr(seq(append(gs, atoms), cons(f, delta)), fuel - 1)).

% Scan the succedent likewise.
step_r(nil, atoms_r, atoms_l, fuel) = closes(atoms_l, atoms_r).
step_r(cons(v(n), ds), atoms_r, atoms_l, fuel) =
    step_r(ds, cons(v(n), atoms_r), atoms_l, fuel).
step_r(cons(neg(f), ds), atoms_r, atoms_l, fuel) =
    pr(seq(cons(f, atoms_l), append(ds, atoms_r)), fuel - 1).
step_r(cons(conj(f, g), ds), atoms_r, atoms_l, fuel) =
    and(pr(seq(atoms_l, cons(f, append(ds, atoms_r))), fuel - 1),
        pr(seq(atoms_l, cons(g, append(ds, atoms_r))), fuel - 1)).
step_r(cons(disj(f, g), ds), atoms_r, atoms_l, fuel) =
    pr(seq(atoms_l, cons(f, cons(g, append(ds, atoms_r)))), fuel - 1).
step_r(cons(imp(f, g), ds), atoms_r, atoms_l, fuel) =
    pr(seq(cons(f, atoms_l), cons(g, append(ds, atoms_r))), fuel - 1).

% An axiom sequent shares an atom between the two sides.
closes(nil, atoms_r) = false.
closes(cons(a, as), atoms_r) = or(member(a, atoms_r), closes(as, atoms_r)).

append(nil, ys) = ys.
append(cons(x, xs), ys) = cons(x, append(xs, ys)).

% Test formulas.
taut1 = imp(conj(v(1), v(2)), v(1)).
taut2 = imp(v(1), disj(v(1), v(2))).
taut3 = imp(imp(v(1), v(2)), imp(neg(v(2)), neg(v(1)))).
nontaut = imp(disj(v(1), v(2)), v(1)).

check(f) = prove(seq(nil, cons(f, nil))).

count(nil) = 0.
count(cons(b, bs)) = if(b, 1 + count(bs), count(bs)).

main = count(cons(check(taut1),
             cons(check(taut2),
             cons(check(taut3),
             cons(check(nontaut), nil))))).
)FL";

/// pcprove: predicate-calculus prover with unification-free ground
/// instantiation (paper size: 595 lines; the largest FL benchmark).
const char *PcproveSrc = R"FL(
% pcprove -- prover for a quantifier-free predicate calculus fragment:
% ground the universally quantified clauses over a finite domain, then run
% a DPLL-style satisfiability check on the negated goal.

:- data p/2, neg/1, conj/2, disj/2, imp/2, forall/2, lit/2, cl/1.

if(true, t, e) = t.
if(false, t, e) = e.

and(true, b) = b.
and(false, b) = false.

or(true, b) = true.
or(false, b) = b.

not(true) = false.
not(false) = true.

append(nil, ys) = ys.
append(cons(x, xs), ys) = cons(x, append(xs, ys)).

member(x, nil) = false.
member(x, cons(y, ys)) = if(x == y, true, member(x, ys)).

len(nil) = 0.
len(cons(x, xs)) = 1 + len(xs).

% --- formula -> negation normal form --------------------------------------

nnf(p(s, t)) = p(s, t).
nnf(neg(p(s, t))) = neg(p(s, t)).
nnf(neg(neg(f))) = nnf(f).
nnf(neg(conj(f, g))) = disj(nnf(neg(f)), nnf(neg(g))).
nnf(neg(disj(f, g))) = conj(nnf(neg(f)), nnf(neg(g))).
nnf(neg(imp(f, g))) = conj(nnf(f), nnf(neg(g))).
nnf(neg(forall(x, f))) = forall(x, nnf(neg(f))).
nnf(conj(f, g)) = conj(nnf(f), nnf(g)).
nnf(disj(f, g)) = disj(nnf(f), nnf(g)).
nnf(imp(f, g)) = disj(nnf(neg(f)), nnf(g)).
nnf(forall(x, f)) = forall(x, nnf(f)).

% --- ground a quantified formula over the domain --------------------------

domain = cons(1, cons(2, cons(3, nil))).

ground(forall(x, f), d) = ground_all(x, f, domain, d).
ground(conj(f, g), d) = conj(ground(f, d), ground(g, d)).
ground(disj(f, g), d) = disj(ground(f, d), ground(g, d)).
ground(p(s, t), d) = p(subst(s, d), subst(t, d)).
ground(neg(f), d) = neg(ground(f, d)).

ground_all(x, f, nil, d) = p(0, 0).
ground_all(x, f, cons(v, nil), d) = ground(f, cons(pair(x, v), d)).
ground_all(x, f, cons(v, vs), d) =
    conj(ground(f, cons(pair(x, v), d)), ground_all(x, f, vs, d)).

subst(s, nil) = s.
subst(s, cons(pair(x, v), d)) = if(s == x, v, subst(s, d)).

% --- formula -> clause set (CNF) -------------------------------------------

cnf(conj(f, g)) = append(cnf(f), cnf(g)).
cnf(disj(f, g)) = cross(cnf(f), cnf(g)).
cnf(p(s, t)) = cons(cl(cons(lit(p(s, t), true), nil)), nil).
cnf(neg(p(s, t))) = cons(cl(cons(lit(p(s, t), false), nil)), nil).

cross(nil, cs) = nil.
cross(cons(cl(ls), as), cs) = append(cross_one(ls, cs), cross(as, cs)).

cross_one(ls, nil) = nil.
cross_one(ls, cons(cl(ms), cs)) =
    cons(cl(append(ls, ms)), cross_one(ls, cs)).

% --- DPLL over ground clauses ----------------------------------------------

atoms_of(nil) = nil.
atoms_of(cons(cl(ls), cs)) = merge_atoms(lits_atoms(ls), atoms_of(cs)).

lits_atoms(nil) = nil.
lits_atoms(cons(lit(a, s), ls)) = cons(a, lits_atoms(ls)).

merge_atoms(nil, bs) = bs.
merge_atoms(cons(a, as), bs) =
    if(member(a, bs), merge_atoms(as, bs), cons(a, merge_atoms(as, bs))).

% Assign the first atom both ways and simplify.
sat(nil) = true.
sat(cs) = sat_split(cs, atoms_of(cs)).

sat_split(cs, nil) = not(has_empty(cs)).
sat_split(cs, cons(a, as)) =
    if(has_empty(cs),
       false,
       or(sat(assign(cs, a, true)), sat(assign(cs, a, false)))).

has_empty(nil) = false.
has_empty(cons(cl(nil), cs)) = true.
has_empty(cons(cl(cons(l, ls)), cs)) = has_empty(cs).

% assign: drop satisfied clauses, shrink falsified literals.
assign(nil, a, v) = nil.
assign(cons(cl(ls), cs), a, v) =
    assign_clause(shrink(ls, a, v), ls, a, v, cs).

assign_clause(sat_clause, ls, a, v, cs) = assign(cs, a, v).
assign_clause(kept(ms), ls, a, v, cs) = cons(cl(ms), assign(cs, a, v)).

:- data sat_clause/0, kept/1.

shrink(nil, a, v) = kept(nil).
shrink(cons(lit(b, s), ls), a, v) =
    if(b == a,
       if(s == v, sat_clause, shrink(ls, a, v)),
       keep_lit(lit(b, s), shrink(ls, a, v))).

keep_lit(l, sat_clause) = sat_clause.
keep_lit(l, kept(ms)) = kept(cons(l, ms)).

% --- proving ----------------------------------------------------------------

% f is valid iff neg(f) grounds to an unsatisfiable clause set.
valid(f) = not(sat(cnf(ground(nnf(neg(f)), nil)))).

% Test formulas over a 3-element domain.
refl = forall(7, p(7, 7)).
sym = forall(7, forall(8, imp(p(7, 8), p(8, 7)))).
goal1 = imp(refl, forall(9, disj(p(9, 9), p(9, 1)))).
goal2 = imp(conj(refl, sym), forall(9, p(9, 9))).
goal3 = forall(7, imp(p(7, 7), disj(p(7, 7), p(7, 1)))).

count(nil) = 0.
count(cons(b, bs)) = if(b, 1 + count(bs), count(bs)).

main = count(cons(valid(goal1),
             cons(valid(goal2),
             cons(valid(goal3), nil)))).
)FL";

/// quicksort (paper size: 70 lines).
const char *QuicksortFLSrc = R"FL(
% quicksort -- functional quicksort with explicit partition.

if(true, t, e) = t.
if(false, t, e) = e.

append(nil, ys) = ys.
append(cons(x, xs), ys) = cons(x, append(xs, ys)).

filter_le(p, nil) = nil.
filter_le(p, cons(x, xs)) = if(x =< p,
                               cons(x, filter_le(p, xs)),
                               filter_le(p, xs)).

filter_gt(p, nil) = nil.
filter_gt(p, cons(x, xs)) = if(x > p,
                               cons(x, filter_gt(p, xs)),
                               filter_gt(p, xs)).

qsort(nil) = nil.
qsort(cons(p, xs)) =
    append(qsort(filter_le(p, xs)),
           cons(p, qsort(filter_gt(p, xs)))).

sorted(nil) = true.
sorted(cons(x, nil)) = true.
sorted(cons(x, cons(y, r))) = if(x =< y, sorted(cons(y, r)), false).

len(nil) = 0.
len(cons(x, xs)) = 1 + len(xs).

gen(0) = nil.
gen(n) = cons((n * 13) mod 29, gen(n - 1)).

check(xs) = if(sorted(qsort(xs)), len(xs), 0 - 1).

main = check(gen(24)).
)FL";

/// strassen: 2x2 block Strassen matrix multiplication (paper size: 93).
const char *StrassenSrc = R"FL(
% strassen -- Strassen multiplication on quad-tree matrices.
% A matrix is either sc(x) (scalar leaf) or qd(a, b, c, d) (quadrants).

:- data sc/1, qd/4.

if(true, t, e) = t.
if(false, t, e) = e.

madd(sc(x), sc(y)) = sc(x + y).
madd(qd(a1, b1, c1, d1), qd(a2, b2, c2, d2)) =
    qd(madd(a1, a2), madd(b1, b2), madd(c1, c2), madd(d1, d2)).

msub(sc(x), sc(y)) = sc(x - y).
msub(qd(a1, b1, c1, d1), qd(a2, b2, c2, d2)) =
    qd(msub(a1, a2), msub(b1, b2), msub(c1, c2), msub(d1, d2)).

% Quadrant accessors let the seven Strassen products be shared through
% small helper functions (as the lazy source language would via bindings).
qa(qd(a, b, c, d)) = a.
qb(qd(a, b, c, d)) = b.
qc(qd(a, b, c, d)) = c.
qdd(qd(a, b, c, d)) = d.

m1(x, y) = mmul(madd(qa(x), qdd(x)), madd(qa(y), qdd(y))).
m2(x, y) = mmul(madd(qc(x), qdd(x)), qa(y)).
m3(x, y) = mmul(qa(x), msub(qb(y), qdd(y))).
m4(x, y) = mmul(qdd(x), msub(qc(y), qa(y))).
m5(x, y) = mmul(madd(qa(x), qb(x)), qdd(y)).
m6(x, y) = mmul(msub(qc(x), qa(x)), madd(qa(y), qb(y))).
m7(x, y) = mmul(msub(qb(x), qdd(x)), madd(qc(y), qdd(y))).

mmul(sc(x), sc(y)) = sc(x * y).
mmul(qd(a1, b1, c1, d1), qd(a2, b2, c2, d2)) =
    quads(qd(a1, b1, c1, d1), qd(a2, b2, c2, d2)).

quads(x, y) =
    qd(madd(msub(madd(m1(x, y), m4(x, y)), m5(x, y)), m7(x, y)),
       madd(m3(x, y), m5(x, y)),
       madd(m2(x, y), m4(x, y)),
       madd(msub(madd(m1(x, y), m3(x, y)), m2(x, y)), m6(x, y))).

% Build a 2^k square matrix filled from a seed.
build(0, s) = sc(s).
build(k, s) = qd(build(k - 1, s),
                 build(k - 1, s + 1),
                 build(k - 1, s + 2),
                 build(k - 1, s + 3)).

trace(sc(x)) = x.
trace(qd(a, b, c, d)) = trace(a) + trace(d).

norm(sc(x)) = abs(x).
norm(qd(a, b, c, d)) = norm(a) + norm(b) + norm(c) + norm(d).

main = trace(mmul(build(3, 1), build(3, 2)))
       + norm(msub(build(2, 5), build(2, 3))).
)FL";

} // namespace corpus
} // namespace lpa
