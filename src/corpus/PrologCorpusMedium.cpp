//===- PrologCorpusMedium.cpp - CS and Kalah benchmarks ----------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

namespace lpa {
namespace corpus {

/// CS: cutting-stock style optimization program (paper size: 182 lines).
const char *CSSrc = R"PL(
% cs -- cutting stock: cover demands by cutting patterns from stock rolls.

cutstock(Demands, Width, Plan, Cost) :-
    patterns(Demands, Width, Pats),
    cover(Demands, Pats, Plan),
    plan_cost(Plan, Cost).

% Enumerate maximal cutting patterns for the given roll width.
patterns(Demands, Width, Pats) :-
    item_sizes(Demands, Sizes),
    gen_patterns(Sizes, Width, Pats).

item_sizes([], []).
item_sizes([demand(Item, _)|Ds], [size(Item, W)|Ss]) :-
    item_width(Item, W),
    item_sizes(Ds, Ss).

gen_patterns(Sizes, Width, [pat(Cuts, Waste)|Ps]) :-
    gen_pattern(Sizes, Width, Cuts, Used),
    Waste is Width - Used,
    gen_rest(Sizes, Width, Cuts, Ps).
gen_patterns(_, _, []).

gen_rest(Sizes, Width, Prev, Ps) :-
    gen_patterns(Sizes, Width, Ps0),
    drop_pattern(Prev, Ps0, Ps).

drop_pattern(_, [], []).
drop_pattern(Cuts, [pat(Cuts, _)|Ps], Qs) :- !, drop_pattern(Cuts, Ps, Qs).
drop_pattern(Cuts, [P|Ps], [P|Qs]) :- drop_pattern(Cuts, Ps, Qs).

gen_pattern([], _, [], 0).
gen_pattern([size(Item, W)|Ss], Width, [cut(Item, N)|Cs], Used) :-
    MaxN is Width // W,
    count_up(0, MaxN, N),
    Rest is Width - N * W,
    Rest >= 0,
    gen_pattern(Ss, Rest, Cs, Used0),
    Used is Used0 + N * W.

count_up(L, _, L).
count_up(L, H, N) :- L < H, L1 is L + 1, count_up(L1, H, N).

% Cover all demands with multiples of patterns.
cover(Demands, Pats, Plan) :-
    cover_loop(Demands, Pats, [], Plan).

cover_loop(Demands, _, Plan, Plan) :-
    all_satisfied(Demands, Plan), !.
cover_loop(Demands, Pats, Acc, Plan) :-
    pick_pattern(Pats, P),
    cover_loop(Demands, Pats, [P|Acc], Plan).

pick_pattern([P|_], P).
pick_pattern([_|Ps], P) :- pick_pattern(Ps, P).

all_satisfied([], _).
all_satisfied([demand(Item, Need)|Ds], Plan) :-
    produced(Item, Plan, Got),
    Got >= Need,
    all_satisfied(Ds, Plan).

produced(_, [], 0).
produced(Item, [pat(Cuts, _)|Ps], Got) :-
    cuts_of(Item, Cuts, N),
    produced(Item, Ps, Got0),
    Got is Got0 + N.

cuts_of(_, [], 0).
cuts_of(Item, [cut(Item, N)|_], N) :- !.
cuts_of(Item, [_|Cs], N) :- cuts_of(Item, Cs, N).

plan_cost([], 0).
plan_cost([pat(_, Waste)|Ps], Cost) :-
    plan_cost(Ps, Cost0),
    Cost is Cost0 + Waste + 10.

% Improvement loop: try to find a cheaper plan.
improve(Demands, Width, Plan0, Cost0, Plan, Cost) :-
    cutstock(Demands, Width, Plan1, Cost1),
    Cost1 < Cost0, !,
    improve(Demands, Width, Plan1, Cost1, Plan, Cost).
improve(_, _, Plan, Cost, Plan, Cost).

% Bounds for pruning.
lower_bound(Demands, Width, LB) :-
    total_area(Demands, Area),
    LB is (Area + Width - 1) // Width.

total_area([], 0).
total_area([demand(Item, Need)|Ds], Area) :-
    item_width(Item, W),
    total_area(Ds, Area0),
    Area is Area0 + Need * W.

length_of([], 0).
length_of([_|L], N) :- length_of(L, M), N is M + 1.

rolls_used(Plan, N) :- length_of(Plan, N).

within_bound(Demands, Width, Plan) :-
    lower_bound(Demands, Width, LB),
    rolls_used(Plan, N),
    Slack is N - LB,
    Slack =< 2.

item_width(narrow, 3).
item_width(medium, 5).
item_width(wide, 7).
item_width(jumbo, 9).

demands([demand(narrow, 4), demand(medium, 3),
         demand(wide, 2), demand(jumbo, 1)]).

go(Plan, Cost) :-
    demands(Ds),
    cutstock(Ds, 20, Plan0, Cost0),
    improve(Ds, 20, Plan0, Cost0, Plan, Cost),
    within_bound(Ds, 20, Plan).
)PL";

/// Kalah: the Kalah game player from the Aquarius suite (paper: 278).
const char *KalahSrc = R"PL(
% kalah -- alpha-beta game player for kalah (disjunction-free rendering).

play(Result) :-
    initialize(Board),
    game(Board, computer, Result).

game(Board, Player, Result) :-
    finished(Board), !,
    outcome(Board, Result).
game(Board, computer, Result) :-
    lookahead(Depth),
    alpha_beta(Depth, Board, -1000, 1000, Move, _),
    move_rules(Move, Board, computer, Board1),
    game(Board1, opponent, Result).
game(Board, opponent, Result) :-
    reply_move(Board, Move),
    move_rules(Move, Board, opponent, Board1),
    game(Board1, computer, Result).

lookahead(3).

finished(board(Hs1, K1, Hs2, K2)) :-
    all_empty(Hs1),
    total(Hs2, K2, T2),
    total(Hs1, K1, T1),
    Sum is T1 + T2,
    Sum >= 0.
finished(board(_, K1, _, _)) :- K1 > 36.
finished(board(_, _, _, K2)) :- K2 > 36.

all_empty([]).
all_empty([0|Hs]) :- all_empty(Hs).

outcome(board(_, K1, _, K2), win) :- K1 > K2.
outcome(board(_, K1, _, K2), lose) :- K1 < K2.
outcome(board(_, K1, _, K2), draw) :- K1 =:= K2.

total([], K, K).
total([H|Hs], K, T) :- total(Hs, K, T0), T is T0 + H.

% Alpha-beta search over legal moves.
alpha_beta(0, Board, _, _, none, Value) :- !,
    evaluate(Board, Value).
alpha_beta(Depth, Board, Alpha, Beta, Move, Value) :-
    legal_moves(Board, Moves),
    best_move(Moves, Board, Depth, Alpha, Beta, none, Move, Value).

best_move([], Board, _, Alpha, _, Best, Best, Alpha) :-
    nonvar(Board).
best_move([M|Ms], Board, Depth, Alpha, Beta, Best0, Best, Value) :-
    move_rules(M, Board, computer, Board1),
    swap_board(Board1, Board2),
    D1 is Depth - 1,
    NegBeta is 0 - Beta,
    NegAlpha is 0 - Alpha,
    alpha_beta(D1, Board2, NegBeta, NegAlpha, _, V0),
    V is 0 - V0,
    update_best(V, M, Alpha, Beta, Ms, Board, Depth, Best0, Best, Value).

update_best(V, M, Alpha, Beta, _, _, _, _, M, V) :-
    V >= Beta, !.
update_best(V, M, Alpha, Beta, Ms, Board, Depth, _, Best, Value) :-
    V > Alpha, !,
    best_move(Ms, Board, Depth, V, Beta, M, Best, Value).
update_best(_, _, Alpha, Beta, Ms, Board, Depth, Best0, Best, Value) :-
    best_move(Ms, Board, Depth, Alpha, Beta, Best0, Best, Value).

swap_board(board(Hs1, K1, Hs2, K2), board(Hs2, K2, Hs1, K1)).

evaluate(board(Hs1, K1, Hs2, K2), Value) :-
    total(Hs1, K1, T1),
    total(Hs2, K2, T2),
    Value is T1 - T2 + 2 * (K1 - K2).

legal_moves(board(Hs, _, _, _), Moves) :-
    nonempty_houses(Hs, 1, Moves).

nonempty_houses([], _, []).
nonempty_houses([H|Hs], I, [I|Ms]) :-
    H > 0, !,
    I1 is I + 1,
    nonempty_houses(Hs, I1, Ms).
nonempty_houses([_|Hs], I, Ms) :-
    I1 is I + 1,
    nonempty_houses(Hs, I1, Ms).

% Applying a move: sow stones counterclockwise, with capture rules.
move_rules(none, Board, _, Board) :- !.
move_rules(M, board(Hs, K, Hs2, K2), computer, Board1) :-
    pick_stones(M, Hs, Stones, Hs0),
    sow(Stones, M, Hs0, K, Hs2, Hs1, K1, Hs3),
    capture(M, Stones, Hs1, K1, Hs3, HsC, KC, Hs3C),
    Board1 = board(HsC, KC, Hs3C, K2).
move_rules(M, board(Hs, K, Hs2, K2), opponent, board(Hs, K, HsB, KB)) :-
    pick_stones(M, Hs2, Stones, Hs0),
    distribute(Stones, Hs0, HsB0),
    KB is K2 + 1,
    HsB = HsB0.

pick_stones(1, [S|Hs], S, [0|Hs]).
pick_stones(N, [H|Hs], S, [H|Hs1]) :-
    N > 1,
    N1 is N - 1,
    pick_stones(N1, Hs, S, Hs1).

sow(0, _, Hs, K, Hs2, Hs, K, Hs2) :- !.
sow(Stones, Pos, Hs, K, Hs2, Hs1, K1, Hs3) :-
    Stones > 0,
    Pos1 is Pos + 1,
    drop_one(Pos1, Hs, HsA, Overflow),
    continue_sow(Overflow, Stones, Pos1, HsA, K, Hs2, Hs1, K1, Hs3).

continue_sow(0, Stones, Pos, Hs, K, Hs2, Hs1, K1, Hs3) :-
    S1 is Stones - 1,
    sow(S1, Pos, Hs, K, Hs2, Hs1, K1, Hs3).
continue_sow(1, Stones, _, Hs, K, Hs2, Hs1, K1, Hs3) :-
    K0 is K + 1,
    S1 is Stones - 1,
    distribute(S1, Hs2, Hs2A),
    Hs1 = Hs, K1 = K0, Hs3 = Hs2A.

drop_one(Pos, Hs, Hs1, 0) :-
    add_at(Pos, Hs, Hs1), !.
drop_one(_, Hs, Hs, 1).

add_at(1, [H|Hs], [H1|Hs]) :- H1 is H + 1.
add_at(N, [H|Hs], [H|Hs1]) :- N > 1, N1 is N - 1, add_at(N1, Hs, Hs1).

distribute(0, Hs, Hs) :- !.
distribute(N, [H|Hs], [H1|Hs1]) :-
    N > 0,
    H1 is H + 1,
    N1 is N - 1,
    distribute(N1, Hs, Hs1).
distribute(N, [], []) :- N > 0.

capture(Pos, Stones, Hs, K, Hs2, HsC, KC, Hs2C) :-
    Landing is Pos + Stones,
    Landing =< 6,
    house_value(Landing, Hs, 1), !,
    opposite(Landing, Opp),
    house_value(Opp, Hs2, Captured),
    zero_house(Opp, Hs2, Hs2C),
    zero_house(Landing, Hs, HsC),
    KC is K + Captured + 1.
capture(_, _, Hs, K, Hs2, Hs, K, Hs2).

house_value(1, [H|_], H).
house_value(N, [_|Hs], V) :- N > 1, N1 is N - 1, house_value(N1, Hs, V).

zero_house(1, [_|Hs], [0|Hs]).
zero_house(N, [H|Hs], [H|Hs1]) :- N > 1, N1 is N - 1, zero_house(N1, Hs, Hs1).

opposite(N, M) :- M is 7 - N.

% A deterministic opponent: picks the first legal house.
reply_move(board(_, _, Hs2, _), M) :-
    nonempty_houses(Hs2, 1, [M|_]), !.
reply_move(_, 1).

initialize(board([6, 6, 6, 6, 6, 6], 0, [6, 6, 6, 6, 6, 6], 0)).

go(R) :- play(R).
)PL";

} // namespace corpus
} // namespace lpa
