//===- PrologCorpusPeep.cpp - Peep benchmark ----------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

namespace lpa {
namespace corpus {

/// Peep: peephole optimizer over three-address-style instruction lists
/// (paper size: 369 lines).
const char *PeepSrc = R"PL(
% peep -- peephole optimization of an abstract machine instruction stream.
% Patterns are applied repeatedly until a fixed point is reached.

peephole(Code, Opt) :-
    pass(Code, Code1, Changed),
    continue(Changed, Code1, Opt).

continue(no, Code, Code).
continue(yes, Code, Opt) :- peephole(Code, Opt).

pass([], [], no).
pass(Code, Opt, yes) :-
    rule(Code, Code1), !,
    pass(Code1, Opt, _).
pass([I|Code], [I|Opt], Changed) :-
    pass(Code, Opt, Changed).

% --- rewrite rules --------------------------------------------------------

% Redundant moves.
rule([move(R, R)|Rest], Rest).
rule([move(R1, R2), move(R2, R1)|Rest], [move(R1, R2)|Rest]).
rule([move(R1, R2), move(R1, R2)|Rest], [move(R1, R2)|Rest]).

% Store followed by load of the same cell.
rule([store(R, M), load(M, R)|Rest], [store(R, M)|Rest]).
rule([load(M, R), store(R, M)|Rest], [load(M, R)|Rest]).

% Double negation and arithmetic identities.
rule([neg(R), neg(R)|Rest], Rest).
rule([addi(R, 0)|Rest], Rest).
rule([subi(R, 0)|Rest], Rest).
rule([muli(R, 1)|Rest], Rest).
rule([divi(R, 1)|Rest], Rest).
rule([muli(R, 0)|Rest], [loadi(0, R)|Rest]).

% Combine immediate arithmetic.
rule([addi(R, A), addi(R, B)|Rest], [addi(R, C)|Rest]) :- C is A + B.
rule([subi(R, A), subi(R, B)|Rest], [subi(R, C)|Rest]) :- C is A + B.
rule([addi(R, A), subi(R, B)|Rest], [addi(R, C)|Rest]) :-
    A >= B, C is A - B.
rule([muli(R, A), muli(R, B)|Rest], [muli(R, C)|Rest]) :- C is A * B.
rule([loadi(A, R), addi(R, B)|Rest], [loadi(C, R)|Rest]) :- C is A + B.
rule([loadi(A, R), muli(R, B)|Rest], [loadi(C, R)|Rest]) :- C is A * B.

% Jump threading.
rule([jump(L), label(L)|Rest], [label(L)|Rest]).
rule([jumpz(R, L), label(L)|Rest], [label(L)|Rest]).
rule([jump(L1), jump(_)|Rest], [jump(L1)|Rest]).

% Dead code between a jump and the next label.
rule([jump(L), I|Rest], [jump(L)|Rest]) :- \+ is_label(I).

% Strength reduction.
rule([muli(R, 2)|Rest], [shl(R, 1)|Rest]).
rule([muli(R, 4)|Rest], [shl(R, 2)|Rest]).
rule([muli(R, 8)|Rest], [shl(R, 3)|Rest]).
rule([divi(R, 2)|Rest], [shr(R, 1)|Rest]).
rule([divi(R, 4)|Rest], [shr(R, 2)|Rest]).

% Push/pop pairs.
rule([push(R), pop(R)|Rest], Rest).
rule([pop(R), push(R)|Rest], Rest).
rule([push(R1), pop(R2)|Rest], [move(R1, R2)|Rest]).

% Compare-with-zero after load immediate.
rule([loadi(0, R), cmp(R, R2)|Rest], [test(R2)|Rest]).
rule([cmp(R, R), jumpnz(_, _)|Rest], Rest).

is_label(label(_)).

% --- liveness-based dead store elimination --------------------------------

optimize(Code, Opt) :-
    peephole(Code, Code1),
    dead_stores(Code1, Code2),
    peephole(Code2, Opt).

dead_stores(Code, Opt) :-
    live_out(Code, Live),
    remove_dead(Code, Live, Opt).

live_out(Code, Live) :- collect_uses(Code, [], Live).

collect_uses([], Acc, Acc).
collect_uses([I|Code], Acc, Live) :-
    uses(I, Us),
    union_regs(Us, Acc, Acc1),
    collect_uses(Code, Acc1, Live).

uses(move(R, _), [R]).
uses(load(_, _), []).
uses(store(R, _), [R]).
uses(addi(R, _), [R]).
uses(subi(R, _), [R]).
uses(muli(R, _), [R]).
uses(divi(R, _), [R]).
uses(neg(R), [R]).
uses(add(R1, R2, _), [R1, R2]).
uses(sub(R1, R2, _), [R1, R2]).
uses(mul(R1, R2, _), [R1, R2]).
uses(cmp(R1, R2), [R1, R2]).
uses(test(R), [R]).
uses(push(R), [R]).
uses(pop(_), []).
uses(jump(_), []).
uses(jumpz(R, _), [R]).
uses(jumpnz(R, _), [R]).
uses(label(_), []).
uses(loadi(_, _), []).
uses(shl(R, _), [R]).
uses(shr(R, _), [R]).

defs(move(_, R), [R]).
defs(load(_, R), [R]).
defs(loadi(_, R), [R]).
defs(add(_, _, R), [R]).
defs(sub(_, _, R), [R]).
defs(mul(_, _, R), [R]).
defs(pop(R), [R]).
defs(_, []).

union_regs([], Acc, Acc).
union_regs([R|Rs], Acc, Out) :-
    member_reg(R, Acc), !,
    union_regs(Rs, Acc, Out).
union_regs([R|Rs], Acc, Out) :-
    union_regs(Rs, [R|Acc], Out).

member_reg(R, [R|_]).
member_reg(R, [_|T]) :- member_reg(R, T).

remove_dead([], _, []).
remove_dead([I|Code], Live, Opt) :-
    defs(I, [R]),
    \+ member_reg(R, Live),
    pure_instr(I), !,
    remove_dead(Code, Live, Opt).
remove_dead([I|Code], Live, [I|Opt]) :-
    remove_dead(Code, Live, Opt).

pure_instr(move(_, _)).
pure_instr(loadi(_, _)).
pure_instr(load(_, _)).

% --- sample instruction streams -------------------------------------------

sample(1, [move(r1, r1), addi(r2, 0), loadi(3, r1), addi(r1, 4),
           muli(r1, 2), push(r1), pop(r1), jump(l1), move(r9, r8),
           label(l1), store(r1, m1), load(m1, r1)]).
sample(2, [loadi(0, r3), cmp(r3, r4), muli(r5, 8), divi(r6, 2),
           store(r5, m2), load(m2, r5), neg(r7), neg(r7)]).
sample(3, [push(r1), pop(r2), addi(r2, 5), subi(r2, 5),
           jump(l2), addi(r9, 1), label(l2), muli(r2, 4)]).

run_samples([], []).
run_samples([I|Is], [out(I, Opt)|Os]) :-
    sample(I, Code),
    optimize(Code, Opt),
    run_samples(Is, Os).

code_length([], 0).
code_length([_|Code], N) :- code_length(Code, M), N is M + 1.

improvement(Code, Opt, Saved) :-
    code_length(Code, N0),
    code_length(Opt, N1),
    Saved is N0 - N1.

go(Os) :- run_samples([1, 2, 3], Os).
)PL";

} // namespace corpus
} // namespace lpa
