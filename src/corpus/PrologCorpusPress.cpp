//===- PrologCorpusPress.cpp - Press1 and Press2 benchmarks ------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// PRESS (PRolog Equation Solving System) style symbolic equation solving.
// Press1 and Press2 are two variants of the same solver (the paper's rows
// differ only marginally); Press2 adds a logarithm/substitution stage.
//
//===----------------------------------------------------------------------===//

#include <string>

namespace lpa {
namespace corpus {

/// Shared core of the PRESS-style solver.
static const char *PressCommon = R"PL(
% press -- symbolic equation solver over x.

solve_equation(Eq, X, Solution) :-
    single_occurrence(X, Eq), !,
    isolate(X, Eq, Solution).
solve_equation(Eq, X, Solution) :-
    is_polynomial(Eq, X), !,
    poly_normal_form(Eq, X, Poly),
    solve_polynomial(Poly, X, Solution).
solve_equation(Eq, X, Solution) :-
    homogenize(Eq, X, NewEq, Sub),
    solve_equation(NewEq, Sub, SubSol),
    solve_sub(Sub, SubSol, X, Solution).

% --- occurrence counting -------------------------------------------------
single_occurrence(X, Eq) :- occurrences(X, Eq, 1).

occurrences(X, X, 1) :- !.
occurrences(X, T, 0) :- atomic_term(T), !, X \== T.
occurrences(X, T + U, N) :- !, occ2(X, T, U, N).
occurrences(X, T - U, N) :- !, occ2(X, T, U, N).
occurrences(X, T * U, N) :- !, occ2(X, T, U, N).
occurrences(X, T / U, N) :- !, occ2(X, T, U, N).
occurrences(X, T ^ U, N) :- !, occ2(X, T, U, N).
occurrences(X, eq(T, U), N) :- !, occ2(X, T, U, N).
occurrences(X, f(T), N) :- !, occurrences(X, T, N).
occurrences(_, _, 0).

occ2(X, T, U, N) :-
    occurrences(X, T, N1),
    occurrences(X, U, N2),
    N is N1 + N2.

atomic_term(T) :- atom(T).
atomic_term(T) :- integer(T).

% --- isolation -----------------------------------------------------------
isolate(X, eq(Lhs, Rhs), Solution) :-
    position(X, Lhs, Pos), !,
    maneuver(Pos, eq(Lhs, Rhs), Iso),
    Solution = Iso.
isolate(X, eq(Lhs, Rhs), Solution) :-
    isolate(X, eq(Rhs, Lhs), Solution).

position(X, X, []) :- !.
position(X, T + _, [1|P]) :- occurrences(X, T, N), N > 0, !, position(X, T, P).
position(X, _ + U, [2|P]) :- !, position(X, U, P).
position(X, T - _, [1|P]) :- occurrences(X, T, N), N > 0, !, position(X, T, P).
position(X, _ - U, [2|P]) :- !, position(X, U, P).
position(X, T * _, [1|P]) :- occurrences(X, T, N), N > 0, !, position(X, T, P).
position(X, _ * U, [2|P]) :- !, position(X, U, P).
position(X, T / _, [1|P]) :- occurrences(X, T, N), N > 0, !, position(X, T, P).
position(X, _ / U, [2|P]) :- !, position(X, U, P).
position(X, T ^ _, [1|P]) :- occurrences(X, T, N), N > 0, !, position(X, T, P).
position(X, _ ^ U, [2|P]) :- !, position(X, U, P).
position(X, f(T), [1|P]) :- position(X, T, P).

maneuver([], Eq, Eq).
maneuver([Side|Pos], Eq, Iso) :-
    invert(Side, Eq, Eq1),
    maneuver(Pos, Eq1, Iso).

invert(1, eq(T + U, R), eq(T, R - U)).
invert(2, eq(T + U, R), eq(U, R - T)).
invert(1, eq(T - U, R), eq(T, R + U)).
invert(2, eq(T - U, R), eq(U, T - R)).
invert(1, eq(T * U, R), eq(T, R / U)).
invert(2, eq(T * U, R), eq(U, R / T)).
invert(1, eq(T / U, R), eq(T, R * U)).
invert(2, eq(T / U, R), eq(U, T / R)).
invert(1, eq(T ^ N, R), eq(T, root(N, R))).
invert(2, eq(B ^ T, R), eq(T, logb(B, R))).
invert(1, eq(f(T), R), eq(T, finv(R))).

% --- polynomial recognition and normal form ------------------------------
is_polynomial(eq(L, R), X) :- poly_term(L, X), poly_term(R, X).

poly_term(X, X) :- !.
poly_term(T, _) :- atomic_term(T), !.
poly_term(T + U, X) :- !, poly_term(T, X), poly_term(U, X).
poly_term(T - U, X) :- !, poly_term(T, X), poly_term(U, X).
poly_term(T * U, X) :- !, poly_term(T, X), poly_term(U, X).
poly_term(T ^ N, X) :- !, integer(N), poly_term(T, X).
poly_term(_, _) :- fail.

poly_normal_form(eq(L, R), X, Poly) :-
    poly_rep(L, X, PL),
    poly_rep(R, X, PR),
    poly_sub(PL, PR, Poly).

poly_rep(X, X, [mono(1, 1)]) :- !.
poly_rep(T, _, [mono(T, 0)]) :- atomic_term(T), !.
poly_rep(T + U, X, P) :- !,
    poly_rep(T, X, PT), poly_rep(U, X, PU), poly_add(PT, PU, P).
poly_rep(T - U, X, P) :- !,
    poly_rep(T, X, PT), poly_rep(U, X, PU), poly_sub(PT, PU, P).
poly_rep(T * U, X, P) :- !,
    poly_rep(T, X, PT), poly_rep(U, X, PU), poly_mul(PT, PU, P).
poly_rep(T ^ N, X, P) :- !,
    poly_rep(T, X, PT), poly_pow(PT, N, P).

poly_add([], P, P).
poly_add([M|Ms], P, [M1|R]) :-
    grab_degree(M, P, M1, P1),
    poly_add(Ms, P1, R).

grab_degree(mono(C, D), P, mono(C1, D), P1) :-
    take_degree(D, P, C0, P1), !,
    C1 = C + C0.
grab_degree(M, P, M, P).

take_degree(D, [mono(C, D)|P], C, P) :- !.
take_degree(D, [M|P], C, [M|P1]) :- take_degree(D, P, C, P1).

poly_sub(P, [], P).
poly_sub(P, [mono(C, D)|Ms], R) :-
    poly_add(P, [mono(0 - C, D)], P1),
    poly_sub(P1, Ms, R).

poly_mul([], _, []).
poly_mul([M|Ms], P, R) :-
    mono_mul(M, P, R1),
    poly_mul(Ms, P, R2),
    poly_add(R1, R2, R).

mono_mul(_, [], []).
mono_mul(mono(C, D), [mono(C1, D1)|P], [mono(C * C1, D2)|R]) :-
    D2 is D + D1,
    mono_mul(mono(C, D), P, R).

poly_pow(_, 0, [mono(1, 0)]) :- !.
poly_pow(P, N, R) :-
    N > 0,
    N1 is N - 1,
    poly_pow(P, N1, R1),
    poly_mul(P, R1, R).

solve_polynomial(Poly, X, Solution) :-
    degree_of(Poly, Deg),
    solve_by_degree(Deg, Poly, X, Solution).

degree_of([], 0).
degree_of([mono(_, D)|Ms], Deg) :-
    degree_of(Ms, D1),
    max_deg(D, D1, Deg).

max_deg(A, B, A) :- A >= B, !.
max_deg(_, B, B).

solve_by_degree(1, Poly, X, eq(X, 0 - (B / A))) :-
    coeff(Poly, 1, A),
    coeff(Poly, 0, B).
solve_by_degree(2, Poly, X, eq(X, quadratic(A, B, C))) :-
    coeff(Poly, 2, A),
    coeff(Poly, 1, B),
    coeff(Poly, 0, C).

coeff([], _, 0).
coeff([mono(C, D)|_], D, C) :- !.
coeff([_|Ms], D, C) :- coeff(Ms, D, C).

% --- homogenization ------------------------------------------------------
homogenize(eq(L, R), X, eq(L1, R1), Sub) :-
    offenders(eq(L, R), X, Offs),
    choose_sub(Offs, X, Sub),
    rewrite(L, Sub, u, L1),
    rewrite(R, Sub, u, R1).

offenders(T, X, Offs) :- collect_offenders(T, X, [], Offs).

collect_offenders(X, X, Acc, Acc) :- !.
collect_offenders(T, _, Acc, Acc) :- atomic_term(T), !.
collect_offenders(T + U, X, Acc, Out) :- !, coll2(T, U, X, Acc, Out).
collect_offenders(T - U, X, Acc, Out) :- !, coll2(T, U, X, Acc, Out).
collect_offenders(T * U, X, Acc, Out) :- !, coll2(T, U, X, Acc, Out).
collect_offenders(T / U, X, Acc, Out) :- !, coll2(T, U, X, Acc, Out).
collect_offenders(B ^ T, X, Acc, [B ^ T|Acc]) :-
    occurrences(X, T, N), N > 0, !.
collect_offenders(T ^ _, X, Acc, Out) :- !, collect_offenders(T, X, Acc, Out).
collect_offenders(eq(T, U), X, Acc, Out) :- !, coll2(T, U, X, Acc, Out).
collect_offenders(f(T), X, Acc, [f(T)|Acc]) :-
    occurrences(X, T, N), N > 0, !.
collect_offenders(_, _, Acc, Acc).

coll2(T, U, X, Acc, Out) :-
    collect_offenders(T, X, Acc, Acc1),
    collect_offenders(U, X, Acc1, Out).

choose_sub([Off|_], _, Off).
choose_sub([_|Offs], X, Sub) :- choose_sub(Offs, X, Sub).

rewrite(T, T, V, V) :- !.
rewrite(T, _, _, T) :- atomic_term(T), !.
rewrite(T + U, Sub, V, T1 + U1) :- !, rw2(T, U, Sub, V, T1, U1).
rewrite(T - U, Sub, V, T1 - U1) :- !, rw2(T, U, Sub, V, T1, U1).
rewrite(T * U, Sub, V, T1 * U1) :- !, rw2(T, U, Sub, V, T1, U1).
rewrite(T / U, Sub, V, T1 / U1) :- !, rw2(T, U, Sub, V, T1, U1).
rewrite(T ^ U, Sub, V, T1 ^ U1) :- !, rw2(T, U, Sub, V, T1, U1).
rewrite(f(T), Sub, V, f(T1)) :- !, rewrite(T, Sub, V, T1).
rewrite(T, _, _, T).

rw2(T, U, Sub, V, T1, U1) :-
    rewrite(T, Sub, V, T1),
    rewrite(U, Sub, V, U1).

solve_sub(Sub, eq(_, Val), X, Solution) :-
    solve_equation(eq(Sub, Val), X, Solution).
)PL";

static const char *Press1Extra = R"PL(
% press1 -- driver with a fixed test-equation set.

test_eq(1, eq(x + 3, 7)).
test_eq(2, eq(2 * x + 1, 9)).
test_eq(3, eq(x * x + 2 * x + 1, 0)).
test_eq(4, eq(2 ^ (x + 1), 8)).
test_eq(5, eq(f(x) + 2, 5)).

solve_all([], []).
solve_all([I|Is], [sol(I, S)|Ss]) :-
    test_eq(I, Eq),
    solve_equation(Eq, x, S),
    solve_all(Is, Ss).

go(Ss) :- solve_all([1, 2, 3, 4, 5], Ss).
)PL";

static const char *Press2Extra = R"PL(
% press2 -- variant driver with logarithm rewriting before solving.

log_rewrite(eq(L, R), eq(L1, R1)) :-
    log_side(L, L1),
    log_side(R, R1).

log_side(B ^ T, T * logb(B, B)) :- !.
log_side(T + U, T1 + U1) :- !, log_side(T, T1), log_side(U, U1).
log_side(T * U, T1 * U1) :- !, log_side(T, T1), log_side(U, U1).
log_side(T, T).

simplify_log(logb(B, B), 1) :- !.
simplify_log(T, T).

presolve(Eq, Eq1) :-
    log_rewrite(Eq, Eq0),
    simp_eq(Eq0, Eq1).

simp_eq(eq(L, R), eq(L1, R1)) :-
    simp_term(L, L1),
    simp_term(R, R1).

simp_term(T + U, V) :- !,
    simp_term(T, T1), simp_term(U, U1), simp_plus(T1, U1, V).
simp_term(T * U, V) :- !,
    simp_term(T, T1), simp_term(U, U1), simp_times(T1, U1, V).
simp_term(T, T1) :- simplify_log(T, T1).

simp_plus(0, U, U) :- !.
simp_plus(T, 0, T) :- !.
simp_plus(T, U, T + U).

simp_times(0, _, 0) :- !.
simp_times(_, 0, 0) :- !.
simp_times(1, U, U) :- !.
simp_times(T, 1, T) :- !.
simp_times(T, U, T * U).

test_eq(1, eq(2 ^ x, 16)).
test_eq(2, eq(3 ^ (x + 1), 27)).
test_eq(3, eq(x + 3, 7)).
test_eq(4, eq(x * x - 4, 0)).
test_eq(5, eq(f(x + 1), 9)).

solve_all([], []).
solve_all([I|Is], [sol(I, S)|Ss]) :-
    test_eq(I, Eq),
    presolve(Eq, Eq1),
    solve_equation(Eq1, x, S),
    solve_all(Is, Ss).

go(Ss) :- solve_all([1, 2, 3, 4, 5], Ss).
)PL";

// Assembled sources (static locals keep initialization lazy and ordered).
const char *press1Source() {
  static const std::string Src = std::string(PressCommon) + Press1Extra;
  return Src.c_str();
}
const char *press2Source() {
  static const std::string Src = std::string(PressCommon) + Press2Extra;
  return Src.c_str();
}

} // namespace corpus
} // namespace lpa
