//===- PrologCorpusRead.cpp - Read benchmark ----------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

namespace lpa {
namespace corpus {

/// Read: a tokenizer and operator-precedence term reader over character
/// code lists (paper size: 443 lines).
const char *ReadSrc = R"PL(
% read -- tokenize a character-code list and parse a term.

read_term(Chars, Term) :-
    tokenize(Chars, Tokens),
    parse(Tokens, Term, []).

% --- tokenizer -------------------------------------------------------------

tokenize([], []).
tokenize([C|Cs], Tokens) :-
    white(C), !,
    tokenize(Cs, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    digit(C), !,
    D0 is C - 48,
    scan_number(Cs, D0, Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    lower(C), !,
    scan_name(Cs, [C], Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    upper(C), !,
    scan_var(Cs, [C], Token, Rest),
    tokenize(Rest, Tokens).
tokenize([C|Cs], [punct(P)|Tokens]) :-
    punct_char(C, P), !,
    tokenize(Cs, Tokens).
tokenize([C|Cs], [Token|Tokens]) :-
    symbol_char(C), !,
    scan_symbol(Cs, [C], Token, Rest),
    tokenize(Rest, Tokens).
tokenize([_|Cs], Tokens) :-
    tokenize(Cs, Tokens).

scan_number([C|Cs], Acc, Token, Rest) :-
    digit(C), !,
    Acc1 is Acc * 10 + C - 48,
    scan_number(Cs, Acc1, Token, Rest).
scan_number(Cs, Acc, int(Acc), Cs).

scan_name([C|Cs], Acc, Token, Rest) :-
    alnum(C), !,
    append_codes(Acc, [C], Acc1),
    scan_name(Cs, Acc1, Token, Rest).
scan_name(Cs, Acc, name(Acc), Cs).

scan_var([C|Cs], Acc, Token, Rest) :-
    alnum(C), !,
    append_codes(Acc, [C], Acc1),
    scan_var(Cs, Acc1, Token, Rest).
scan_var(Cs, Acc, var(Acc), Cs).

scan_symbol([C|Cs], Acc, Token, Rest) :-
    symbol_char(C), !,
    append_codes(Acc, [C], Acc1),
    scan_symbol(Cs, Acc1, Token, Rest).
scan_symbol(Cs, Acc, sym(Acc), Cs).

append_codes([], L, L).
append_codes([X|Xs], L, [X|Zs]) :- append_codes(Xs, L, Zs).

% character classes over codes
white(32).
white(9).
white(10).
white(13).

digit(C) :- C >= 48, C =< 57.
lower(C) :- C >= 97, C =< 122.
upper(C) :- C >= 65, C =< 90.
upper(95).
alnum(C) :- digit(C).
alnum(C) :- lower(C).
alnum(C) :- upper(C).

punct_char(40, lparen).
punct_char(41, rparen).
punct_char(91, lbracket).
punct_char(93, rbracket).
punct_char(44, comma).
punct_char(124, bar).

symbol_char(43).
symbol_char(45).
symbol_char(42).
symbol_char(47).
symbol_char(60).
symbol_char(61).
symbol_char(62).
symbol_char(58).
symbol_char(46).
symbol_char(94).

% --- operator table ---------------------------------------------------------

prefix_op([45], 200, 200).
prefix_op([43], 200, 200).

infix_op([43], 500, 499, 500).         % + yfx
infix_op([45], 500, 499, 500).         % - yfx
infix_op([42], 400, 399, 400).         % * yfx
infix_op([47], 400, 399, 400).         % / yfx
infix_op([94], 200, 199, 200).         % ^ xfy
infix_op([61], 700, 699, 699).         % = xfx
infix_op([60], 700, 699, 699).         % < xfx
infix_op([62], 700, 699, 699).         % > xfx

% --- parser ------------------------------------------------------------------

parse(Tokens, Term, Rest) :- expr(1200, Tokens, Term, Rest).

expr(Max, Tokens, Term, Rest) :-
    primary(Tokens, Left, LeftPrec, Rest0),
    LeftPrec =< Max,
    expr_rest(Max, Left, Rest0, Term, Rest).

expr_rest(Max, Left, [sym(Op)|Ts], Term, Rest) :-
    infix_op(Op, P, LMax, RMax),
    P =< Max,
    prec_of(Left, LP),
    LP =< LMax, !,
    expr(RMax, Ts, Right, Rest1),
    mk_binary(Op, Left, Right, Node),
    expr_rest(Max, Node, Rest1, Term, Rest).
expr_rest(_, Left, Ts, Left, Ts).

prec_of(op2(_, _, _, P), P) :- !.
prec_of(op1(_, _, P), P) :- !.
prec_of(_, 0).

mk_binary(Op, L, R, op2(Op, L, R, P)) :- infix_op(Op, P, _, _).

primary([int(N)|Ts], num(N), 0, Ts).
primary([var(V)|Ts], variable(V), 0, Ts).
primary([name(F), punct(lparen)|Ts], Term, 0, Rest) :- !,
    arg_list(Ts, Args, Rest),
    Term = compound(F, Args).
primary([name(A)|Ts], atom(A), 0, Ts).
primary([punct(lparen)|Ts], Term, 0, Rest) :- !,
    expr(1200, Ts, Term, [punct(rparen)|Rest]).
primary([punct(lbracket), punct(rbracket)|Ts], nil, 0, Ts) :- !.
primary([punct(lbracket)|Ts], List, 0, Rest) :- !,
    list_items(Ts, List, Rest).
primary([sym(Op)|Ts], op1(Op, Arg, P), P, Rest) :-
    prefix_op(Op, P, ArgMax),
    expr(ArgMax, Ts, Arg, Rest).

arg_list(Ts, [A|As], Rest) :-
    expr(999, Ts, A, Rest0),
    arg_tail(Rest0, As, Rest).

arg_tail([punct(comma)|Ts], [A|As], Rest) :- !,
    expr(999, Ts, A, Rest0),
    arg_tail(Rest0, As, Rest).
arg_tail([punct(rparen)|Ts], [], Ts).

list_items(Ts, cons(A, As), Rest) :-
    expr(999, Ts, A, Rest0),
    list_tail(Rest0, As, Rest).

list_tail([punct(comma)|Ts], cons(A, As), Rest) :- !,
    expr(999, Ts, A, Rest0),
    list_tail(Rest0, As, Rest).
list_tail([punct(bar)|Ts], Tail, Rest) :- !,
    expr(999, Ts, Tail, [punct(rbracket)|Rest]).
list_tail([punct(rbracket)|Ts], nil, Ts).

% --- post-processing ---------------------------------------------------------

term_vars(variable(V), [V]) :- !.
term_vars(compound(_, Args), Vs) :- !, args_vars(Args, Vs).
term_vars(op2(_, L, R, _), Vs) :- !,
    term_vars(L, V1),
    term_vars(R, V2),
    append_codes(V1, V2, Vs).
term_vars(op1(_, A, _), Vs) :- !, term_vars(A, Vs).
term_vars(cons(H, T), Vs) :- !,
    term_vars(H, V1),
    term_vars(T, V2),
    append_codes(V1, V2, Vs).
term_vars(_, []).

args_vars([], []).
args_vars([A|As], Vs) :-
    term_vars(A, V1),
    args_vars(As, V2),
    append_codes(V1, V2, Vs).

term_depth(num(_), 1).
term_depth(atom(_), 1).
term_depth(variable(_), 1).
term_depth(nil, 1).
term_depth(compound(_, Args), D) :- args_depth(Args, D0), D is D0 + 1.
term_depth(op2(_, L, R, _), D) :-
    term_depth(L, DL),
    term_depth(R, DR),
    max_d(DL, DR, D0),
    D is D0 + 1.
term_depth(op1(_, A, _), D) :- term_depth(A, D0), D is D0 + 1.
term_depth(cons(H, T), D) :-
    term_depth(H, DH),
    term_depth(T, DT),
    max_d(DH, DT, D0),
    D is D0 + 1.

args_depth([], 0).
args_depth([A|As], D) :-
    term_depth(A, DA),
    args_depth(As, DRest),
    max_d(DA, DRest, D).

max_d(A, B, A) :- A >= B, !.
max_d(_, B, B).

% Validate: every variable list entry is a var token's code list.
well_formed(Term) :-
    term_vars(Term, Vs),
    all_nonempty(Vs).

all_nonempty([]).
all_nonempty([[_|_]|Vs]) :- all_nonempty(Vs).
all_nonempty([C|Vs]) :- integer(C), all_nonempty(Vs).

% --- test inputs ------------------------------------------------------------

input(1, "foo(X, bar(Y), [1,2|Z]) = X + Y * 3").
input(2, "quux(A) < g(h(A), [a,b,c])").
input(3, "-X + (Y ^ 2) > f(1, 2, 3)").

read_all([], []).
read_all([I|Is], [t(I, T, D)|Ts]) :-
    input(I, Chars),
    read_term(Chars, T),
    well_formed(T),
    term_depth(T, D),
    read_all(Is, Ts).

go(Ts) :- read_all([1, 2, 3], Ts).
)PL";

} // namespace corpus
} // namespace lpa
