//===- PrologCorpusSmall.cpp - QSort, Queens, PG, Plan, Gabriel, Disj --------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
// The six smaller logic-program benchmarks. Pure Horn clauses (plus cut,
// negation and arithmetic) in the style of the GAIA/Aquarius suite; see
// DESIGN.md for the substitution rationale.
//
//===----------------------------------------------------------------------===//

namespace lpa {
namespace corpus {

/// QSort: the classic quicksort benchmark (paper size: 21 lines).
const char *QSortSrc = R"PL(
% qsort -- quicksort with explicit partition, difference-free version.

qsort(L, S) :- qsort_acc(L, S, []).

qsort_acc([], R, R).
qsort_acc([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort_acc(L2, R1, R0),
    qsort_acc(L1, R, [X|R1]).

partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :-
    X =< Y, !,
    partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :-
    partition(L, Y, L1, L2).

sorted([]).
sorted([_]).
sorted([X, Y|R]) :- X =< Y, sorted([Y|R]).

go(S) :- data(L), qsort(L, S).
data([27, 74, 17, 33, 94, 18, 46, 83, 65, 2, 32, 53, 28, 85, 99, 47, 28]).
)PL";

/// Queens: N-queens with arithmetic safety checks (paper size: 33 lines).
const char *QueensSrc = R"PL(
% queens -- place N queens via permutation generation and safety check.

queens(N, Qs) :-
    range(1, N, Ns),
    permute(Ns, Qs),
    safe(Qs).

range(L, H, []) :- L > H.
range(L, H, [L|Ns]) :- L =< H, L1 is L + 1, range(L1, H, Ns).

permute([], []).
permute(Xs, [X|Ys]) :-
    select(X, Xs, Rest),
    permute(Rest, Ys).

select(X, [X|Xs], Xs).
select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).

safe([]).
safe([Q|Qs]) :- no_attack(Q, Qs, 1), safe(Qs).

no_attack(_, [], _).
no_attack(Q, [Q1|Qs], D) :-
    Q =\= Q1 + D,
    Q =\= Q1 - D,
    D1 is D + 1,
    no_attack(Q, Qs, D1).

go(Qs) :- queens(8, Qs).
)PL";

/// PG: a small projective-geometry style search program (paper size: 53).
const char *PGSrc = R"PL(
% pg -- incidence structure search: find lines through point sets.

pg(N, Lines) :-
    points(N, Ps),
    lines(Ps, Ls),
    check_all(Ls, Ps),
    count(Ls, Lines).

points(0, []).
points(N, [p(N)|Ps]) :- N > 0, N1 is N - 1, points(N1, Ps).

lines([], []).
lines([P|Ps], [line(P, Qs)|Ls]) :-
    span(P, Ps, Qs),
    lines(Ps, Ls).

span(_, [], []).
span(P, [Q|Qs], [Q|Rs]) :-
    incident(P, Q), !,
    span(P, Qs, Rs).
span(P, [_|Qs], Rs) :-
    span(P, Qs, Rs).

incident(p(N), p(M)) :- K is (N + M) mod 3, K =:= 0.
incident(p(N), p(M)) :- K is (N * M) mod 7, K =:= 1.

check_all([], _).
check_all([line(P, Qs)|Ls], Ps) :-
    member(P, Ps),
    subset(Qs, Ps),
    check_all(Ls, Ps).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

subset([], _).
subset([X|Xs], Ys) :- member(X, Ys), subset(Xs, Ys).

count([], 0).
count([_|L], N) :- count(L, M), N is M + 1.

go(N) :- pg(7, N).
)PL";

/// Plan: a blocks-world planner (paper size: 84 lines).
const char *PlanSrc = R"PL(
% plan -- linear blocks-world planner with goal regression.

plan(State, Goals, Plan) :- solve(Goals, State, [], Plan).

solve([], _, Plan, Plan).
solve([G|Gs], State, Acc, Plan) :-
    holds(G, State), !,
    solve(Gs, State, Acc, Plan).
solve([G|Gs], State, Acc, Plan) :-
    achieves(Action, G),
    preconds(Action, Pre),
    solve(Pre, State, Acc, Acc1),
    apply_action(Action, State, State1),
    solve(Gs, State1, [Action|Acc1], Plan).

holds(F, State) :- member(F, State).

achieves(stack(X, Y), on(X, Y)).
achieves(unstack(X, Y), clear(Y)) :- block(X), on_somewhere(X, Y).
achieves(pickup(X), holding(X)).
achieves(putdown(X), ontable(X)).

on_somewhere(X, Y) :- block(X), block(Y).

preconds(stack(X, Y), [holding(X), clear(Y)]).
preconds(unstack(X, Y), [on(X, Y), clear(X), handempty]).
preconds(pickup(X), [clear(X), ontable(X), handempty]).
preconds(putdown(X), [holding(X)]).

apply_action(Action, State, State1) :-
    dels(Action, DelList),
    adds(Action, AddList),
    remove_all(DelList, State, S1),
    add_all(AddList, S1, State1).

dels(stack(X, Y), [holding(X), clear(Y)]).
dels(unstack(X, Y), [on(X, Y), clear(X), handempty]).
dels(pickup(X), [clear(X), ontable(X), handempty]).
dels(putdown(X), [holding(X)]).

adds(stack(X, Y), [on(X, Y), clear(X), handempty]).
adds(unstack(X, Y), [holding(X), clear(Y)]).
adds(pickup(X), [holding(X)]).
adds(putdown(X), [clear(X), ontable(X), handempty]).

remove_all([], S, S).
remove_all([F|Fs], S, S2) :- delete_one(F, S, S1), remove_all(Fs, S1, S2).

delete_one(_, [], []).
delete_one(F, [F|S], S) :- !.
delete_one(F, [G|S], [G|S1]) :- delete_one(F, S, S1).

add_all([], S, S).
add_all([F|Fs], S, [F|S1]) :- add_all(Fs, S, S1).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

block(a).
block(b).
block(c).
block(d).

initial([ontable(a), on(b, a), clear(b), ontable(c), clear(c),
         ontable(d), clear(d), handempty]).
goal([on(a, b), on(b, c)]).

go(Plan) :- initial(S), goal(G), plan(S, G, Plan).
)PL";

/// Gabriel: the browse benchmark from the Gabriel suite (paper: 122).
const char *GabrielSrc = R"PL(
% gabriel -- the 'browse' pattern matcher over property-list databases.

browse(Units, Answer) :-
    init(Units, Db),
    investigate(Db, Patterns, 0, Answer),
    patterns(Patterns).

init(0, []).
init(N, [unit(N, Props)|Db]) :-
    N > 0,
    properties(N, Props),
    N1 is N - 1,
    init(N1, Db).

properties(N, [pattern(K, Tree)|Ps]) :-
    K is N mod 4,
    seed_tree(K, Tree),
    K1 is N mod 3,
    fill(K1, Ps).

fill(0, []).
fill(N, [dummy(N)|Ps]) :- N > 0, N1 is N - 1, fill(N1, Ps).

seed_tree(0, leaf(a)).
seed_tree(1, node(leaf(a), leaf(b))).
seed_tree(2, node(node(leaf(a), star), leaf(c))).
seed_tree(3, node(star, node(leaf(b), star))).

patterns([node(leaf(a), star),
          node(star, leaf(c)),
          node(node(star, leaf(b)), star),
          leaf(star)]).

investigate([], _, Acc, Acc).
investigate([unit(_, Props)|Db], Patterns, Acc, Answer) :-
    property_match(Props, Patterns, Acc, Acc1),
    investigate(Db, Patterns, Acc1, Answer).

property_match([], _, Acc, Acc).
property_match([pattern(_, Tree)|Ps], Patterns, Acc, Out) :-
    match_any(Patterns, Tree, Acc, Acc1),
    property_match(Ps, Patterns, Acc1, Out).
property_match([dummy(_)|Ps], Patterns, Acc, Out) :-
    property_match(Ps, Patterns, Acc, Out).

match_any([], _, Acc, Acc).
match_any([P|Ps], Tree, Acc, Out) :-
    match(P, Tree), !,
    Acc1 is Acc + 1,
    match_any(Ps, Tree, Acc1, Out).
match_any([_|Ps], Tree, Acc, Out) :-
    match_any(Ps, Tree, Acc, Out).

match(star, _).
match(leaf(star), leaf(_)).
match(leaf(X), leaf(X)) :- atom(X).
match(node(P1, P2), node(T1, T2)) :-
    match(P1, T1),
    match(P2, T2).

equal_tree(leaf(X), leaf(X)).
equal_tree(node(A1, B1), node(A2, B2)) :-
    equal_tree(A1, A2),
    equal_tree(B1, B2).

tree_size(leaf(_), 1).
tree_size(node(A, B), N) :-
    tree_size(A, NA),
    tree_size(B, NB),
    N is NA + NB + 1.

go(Answer) :- browse(12, Answer).
)PL";

/// Disj: disjunctive-scheduling constraint program (paper size: 172).
const char *DisjSrc = R"PL(
% disj -- schedule tasks on a single machine with precedence and
% disjunctive (no-overlap) constraints, searching over orderings.

schedule(Tasks, Horizon, Sched) :-
    starts(Tasks, Horizon, Sched),
    precedences(Prec),
    check_prec(Prec, Sched),
    no_overlap(Sched).

starts([], _, []).
starts([task(Id, Dur)|Ts], Horizon, [start(Id, S, Dur)|Ss]) :-
    Max is Horizon - Dur,
    choose_start(0, Max, S),
    starts(Ts, Horizon, Ss).

choose_start(L, H, L) :- L =< H.
choose_start(L, H, S) :- L < H, L1 is L + 1, choose_start(L1, H, S).

check_prec([], _).
check_prec([before(A, B)|Ps], Sched) :-
    find_start(A, Sched, SA, DA),
    find_start(B, Sched, SB, _),
    EndA is SA + DA,
    EndA =< SB,
    check_prec(Ps, Sched).

find_start(Id, [start(Id, S, D)|_], S, D) :- !.
find_start(Id, [_|Ss], S, D) :- find_start(Id, Ss, S, D).

no_overlap([]).
no_overlap([T|Ts]) :- disjoint_all(T, Ts), no_overlap(Ts).

disjoint_all(_, []).
disjoint_all(T, [U|Us]) :- disjoint(T, U), disjoint_all(T, Us).

% The disjunction 'A ends before B starts OR B ends before A starts'
% is modelled by two clauses.
disjoint(start(_, SA, DA), start(_, SB, _)) :-
    EndA is SA + DA, EndA =< SB.
disjoint(start(_, SA, _), start(_, SB, DB)) :-
    EndB is SB + DB, EndB =< SA.

makespan([], 0).
makespan([start(_, S, D)|Ss], M) :-
    makespan(Ss, M1),
    End is S + D,
    max_of(End, M1, M).

max_of(A, B, A) :- A >= B, !.
max_of(_, B, B).

optimal(Tasks, Horizon, Best) :-
    schedule(Tasks, Horizon, Sched),
    makespan(Sched, Best),
    \+ better_exists(Tasks, Horizon, Best).

better_exists(Tasks, Horizon, Bound) :-
    schedule(Tasks, Horizon, Sched),
    makespan(Sched, M),
    M < Bound.

tasks([task(t1, 3), task(t2, 2), task(t3, 4), task(t4, 1), task(t5, 2)]).

precedences([before(t1, t3), before(t2, t4), before(t3, t5)]).

resource_ok([], _).
resource_ok([start(Id, S, D)|Ss], Cap) :-
    demand(Id, R),
    R =< Cap,
    End is S + D,
    End >= 0,
    resource_ok(Ss, Cap).

demand(t1, 2).
demand(t2, 1).
demand(t3, 3).
demand(t4, 1).
demand(t5, 2).

feasible(Sched) :- resource_ok(Sched, 3).

window(start(_, S, D), Lo, Hi) :-
    S >= Lo,
    End is S + D,
    End =< Hi.

within_windows([], _, _).
within_windows([T|Ts], Lo, Hi) :-
    window(T, Lo, Hi),
    within_windows(Ts, Lo, Hi).

go(Best) :-
    tasks(Ts),
    optimal(Ts, 12, Best).
)PL";

} // namespace corpus
} // namespace lpa
