//===- Cfg.cpp - Imperative control-flow graphs --------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "dataflow/Cfg.h"

using namespace lpa;

std::string Cfg::toFacts() const {
  std::string Out;
  for (size_t N = 0; N < Nodes.size(); ++N) {
    const CfgNode &Node = Nodes[N];
    if (Node.DefVar >= 0)
      Out += "defs(" + std::to_string(N) + ", v" +
             std::to_string(Node.DefVar) + ").\n";
    for (int U : Node.UseVars)
      Out += "use(" + std::to_string(N) + ", v" + std::to_string(U) +
             ").\n";
    for (uint32_t S : Node.Succs)
      Out += "edge(" + std::to_string(N) + ", " + std::to_string(S) +
             ").\n";
  }
  return Out;
}

Cfg lpa::linearCfg(std::initializer_list<int> DefVarPerNode) {
  Cfg G;
  uint32_t Prev = UINT32_MAX;
  for (int Def : DefVarPerNode) {
    uint32_t N = G.addNode(Def);
    if (Def >= 0)
      G.NumVars = std::max(G.NumVars, Def + 1);
    if (Prev != UINT32_MAX)
      G.addEdge(Prev, N);
    Prev = N;
  }
  return G;
}

namespace {

/// Recursive structured generator; returns (entry, exit) of the region.
struct Generator {
  Cfg &G;
  std::mt19937 Rng;
  size_t Budget;
  int NumVars;

  uint32_t stmtNode() {
    // Most statements define a variable; some also use a couple.
    int Def = static_cast<int>(Rng() % NumVars);
    uint32_t N = G.addNode(Def);
    for (int U = 0; U < 2; ++U)
      if (Rng() % 2)
        G.Nodes[N].UseVars.push_back(static_cast<int>(Rng() % NumVars));
    return N;
  }

  /// Generates a region; returns {entry, exit}.
  std::pair<uint32_t, uint32_t> region(int Depth) {
    uint32_t Entry = stmtNode();
    uint32_t Cur = Entry;
    if (Budget > 0)
      --Budget;
    int Len = 1 + static_cast<int>(Rng() % 4);
    for (int I = 0; I < Len && Budget > 0; ++I) {
      int Kind = Depth > 0 ? static_cast<int>(Rng() % 4) : 0;
      switch (Kind) {
      case 1: { // if-diamond
        uint32_t Cond = stmtNode();
        auto [TE, TX] = region(Depth - 1);
        auto [EE, EX] = region(Depth - 1);
        uint32_t Join = stmtNode();
        G.addEdge(Cur, Cond);
        G.addEdge(Cond, TE);
        G.addEdge(Cond, EE);
        G.addEdge(TX, Join);
        G.addEdge(EX, Join);
        Cur = Join;
        break;
      }
      case 2: { // while loop
        uint32_t Head = stmtNode();
        auto [BE, BX] = region(Depth - 1);
        uint32_t Exit = stmtNode();
        G.addEdge(Cur, Head);
        G.addEdge(Head, BE);
        G.addEdge(BX, Head);
        G.addEdge(Head, Exit);
        Cur = Exit;
        break;
      }
      default: { // plain statement
        uint32_t N = stmtNode();
        G.addEdge(Cur, N);
        Cur = N;
        break;
      }
      }
      if (Budget > 0)
        --Budget;
    }
    return {Entry, Cur};
  }
};

} // namespace

Cfg lpa::randomStructuredCfg(unsigned Seed, size_t TargetNodes,
                             int NumVars) {
  Cfg G;
  G.NumVars = NumVars;
  Generator Gen{G, std::mt19937(Seed), TargetNodes, NumVars};
  // Node 0 (the first statement of the first region) is the entry; chain
  // regions until the node budget is spent.
  auto [FirstEntry, Exit] = Gen.region(3);
  (void)FirstEntry;
  uint32_t Cur = Exit;
  while (G.size() < TargetNodes) {
    Gen.Budget = TargetNodes - G.size();
    auto [E, X] = Gen.region(3);
    G.addEdge(Cur, E);
    Cur = X;
  }
  return G;
}
