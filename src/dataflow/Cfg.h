//===- Cfg.h - Imperative control-flow graphs -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graphs for the Section 7 experiment (dataflow analysis of
/// imperative programs as queries over a logic database, after Reps).
/// Nodes carry at most one definition and a set of uses; edges are the
/// flow relation. A structured random generator synthesizes program-like
/// CFGs (sequences, diamonds, loops) since the paper's imperative corpus
/// is not available.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_DATAFLOW_CFG_H
#define LPA_DATAFLOW_CFG_H

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace lpa {

/// One CFG node: a statement.
struct CfgNode {
  int DefVar = -1;           ///< Variable defined here (-1: none).
  std::vector<int> UseVars;  ///< Variables used here.
  std::vector<uint32_t> Succs;
};

/// A whole graph. Node 0 is the entry.
struct Cfg {
  std::vector<CfgNode> Nodes;
  int NumVars = 0;

  uint32_t addNode(int DefVar = -1) {
    Nodes.push_back(CfgNode{DefVar, {}, {}});
    return static_cast<uint32_t>(Nodes.size() - 1);
  }
  void addEdge(uint32_t From, uint32_t To) {
    Nodes[From].Succs.push_back(To);
  }
  size_t size() const { return Nodes.size(); }

  /// Renders the graph as Prolog facts: edge/2, defs/2 (node defines
  /// var), use/2 — the logic-database encoding of Section 7.
  std::string toFacts() const;
};

/// Builds a random structured CFG with roughly \p TargetNodes nodes over
/// \p NumVars variables: nested sequences, if-diamonds and while-loops.
Cfg randomStructuredCfg(unsigned Seed, size_t TargetNodes, int NumVars);

/// Handcrafted graphs for tests.
Cfg linearCfg(std::initializer_list<int> DefVarPerNode);

} // namespace lpa

#endif // LPA_DATAFLOW_CFG_H
