//===- ReachingDefs.cpp - Dataflow as a logic database -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "dataflow/ReachingDefs.h"

#include "engine/Solver.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"

#include <vector>

using namespace lpa;

namespace {

const char *ReachRules = R"PL(
:- table reach/2.
reach(D, N) :- defs(D, _), edge(D, N).
reach(D, N) :- reach(D, M), \+ redef(M, D), edge(M, N).
redef(M, D) :- defs(M, V), defs(D, V), M \== D.
)PL";

/// The demand (point-query) formulation works *backward* from the queried
/// node, so goal-directed tabled evaluation explores only the part of the
/// graph that can influence it — the essence of Reps' demand analysis
/// (magic-sets turns the forward rules into exactly this shape; with
/// tabling we just write it directly).
const char *DemandRules = R"PL(
:- table reach_at/2.
:- table out_def/2.
reach_at(N, D) :- edge(M, N), out_def(M, D).
out_def(M, M) :- defs(M, _).
out_def(M, D) :- reach_at(M, D), \+ redef(M, D).
redef(M, D) :- defs(M, V), defs(D, V), M \== D.
)PL";

/// Loads the rules + the graph's facts into a database.
ErrorOr<bool> loadGraph(Database &DB, const Cfg &G) {
  auto R = DB.consult(ReachRules);
  if (!R)
    return R;
  return DB.consult(G.toFacts());
}

/// Decodes one reach(D, N) answer term.
std::pair<uint32_t, uint32_t> decodeReach(const TermStore &TS, TermRef Ans) {
  TermRef A = TS.deref(Ans);
  uint32_t D = static_cast<uint32_t>(TS.intValue(TS.deref(TS.arg(A, 0))));
  uint32_t N = static_cast<uint32_t>(TS.intValue(TS.deref(TS.arg(A, 1))));
  return {D, N};
}

} // namespace

ErrorOr<ReachResult> lpa::reachingDefsLogic(const Cfg &G) {
  ReachResult Result;
  Stopwatch Phase;

  SymbolTable Syms;
  Database DB(Syms);
  auto Loaded = loadGraph(DB, G);
  if (!Loaded)
    return Loaded.getError();
  Result.SetupSeconds = Phase.elapsedSeconds();

  Phase.restart();
  Solver Engine(DB);
  auto Goal = Parser::parseTerm(Syms, Engine.store(), "reach(D, N)");
  if (!Goal)
    return Goal.getError();
  Engine.solve(*Goal, nullptr);
  const Subgoal *SG = Engine.findSubgoal(*Goal);
  if (SG) {
    // Materialize each answer instance (factored tables store only the
    // bindings of the call's variables; see Solver::answerInstance).
    TermStore Scratch;
    for (size_t I = 0, E = Engine.answerCount(*SG); I < E; ++I) {
      Scratch.clear();
      Result.Reaches.insert(
          decodeReach(Scratch, Engine.answerInstance(*SG, I, Scratch)));
    }
  }
  Result.SolveSeconds = Phase.elapsedSeconds();
  return Result;
}

ErrorOr<std::set<uint32_t>> lpa::reachingDefsAtLogic(const Cfg &G,
                                                     uint32_t Node) {
  SymbolTable Syms;
  Database DB(Syms);
  auto Rules = DB.consult(DemandRules);
  if (!Rules)
    return Rules.getError();
  auto Facts = DB.consult(G.toFacts());
  if (!Facts)
    return Facts.getError();
  Solver Engine(DB);
  auto Goal = Parser::parseTerm(
      Syms, Engine.store(), "reach_at(" + std::to_string(Node) + ", D)");
  if (!Goal)
    return Goal.getError();
  std::set<uint32_t> Out;
  Engine.solve(*Goal, [&]() {
    TermRef D = Engine.store().deref(Engine.store().arg(*Goal, 1));
    Out.insert(static_cast<uint32_t>(Engine.store().intValue(D)));
    return false;
  });
  return Out;
}

ReachResult lpa::reachingDefsWorklist(const Cfg &G) {
  ReachResult Result;
  Stopwatch Phase;

  // Definitions are nodes with DefVar >= 0; index them densely.
  std::vector<int> DefIndex(G.size(), -1);
  std::vector<uint32_t> DefNode;
  for (uint32_t N = 0; N < G.size(); ++N)
    if (G.Nodes[N].DefVar >= 0) {
      DefIndex[N] = static_cast<int>(DefNode.size());
      DefNode.push_back(N);
    }
  size_t NumDefs = DefNode.size();
  size_t Words = (NumDefs + 63) / 64;

  // KILL masks per variable: all defs of that variable.
  std::vector<std::vector<uint64_t>> VarDefs(
      static_cast<size_t>(G.NumVars), std::vector<uint64_t>(Words, 0));
  for (size_t D = 0; D < NumDefs; ++D) {
    int V = G.Nodes[DefNode[D]].DefVar;
    VarDefs[static_cast<size_t>(V)][D / 64] |= uint64_t(1) << (D % 64);
  }

  // Predecessor lists.
  std::vector<std::vector<uint32_t>> Preds(G.size());
  for (uint32_t N = 0; N < G.size(); ++N)
    for (uint32_t S : G.Nodes[N].Succs)
      Preds[S].push_back(N);
  Result.SetupSeconds = Phase.elapsedSeconds();

  Phase.restart();
  // IN/OUT bitvectors; classic forward may-analysis worklist.
  std::vector<std::vector<uint64_t>> In(G.size(),
                                        std::vector<uint64_t>(Words, 0));
  std::vector<std::vector<uint64_t>> Out = In;
  std::vector<uint32_t> Work;
  std::vector<uint8_t> InWork(G.size(), 1);
  for (uint32_t N = 0; N < G.size(); ++N)
    Work.push_back(N);

  while (!Work.empty()) {
    uint32_t N = Work.back();
    Work.pop_back();
    InWork[N] = 0;

    // IN = union of predecessor OUTs.
    std::vector<uint64_t> NewIn(Words, 0);
    for (uint32_t P : Preds[N])
      for (size_t W = 0; W < Words; ++W)
        NewIn[W] |= Out[P][W];
    In[N] = NewIn;

    // OUT = GEN ∪ (IN − KILL).
    std::vector<uint64_t> NewOut = NewIn;
    int V = G.Nodes[N].DefVar;
    if (V >= 0) {
      const std::vector<uint64_t> &Kill = VarDefs[static_cast<size_t>(V)];
      for (size_t W = 0; W < Words; ++W)
        NewOut[W] &= ~Kill[W];
      int D = DefIndex[N];
      NewOut[static_cast<size_t>(D) / 64] |= uint64_t(1)
                                             << (static_cast<size_t>(D) % 64);
    }
    if (NewOut != Out[N]) {
      Out[N] = std::move(NewOut);
      for (uint32_t S : G.Nodes[N].Succs)
        if (!InWork[S]) {
          InWork[S] = 1;
          Work.push_back(S);
        }
    }
  }

  for (uint32_t N = 0; N < G.size(); ++N)
    for (size_t D = 0; D < NumDefs; ++D)
      if (In[N][D / 64] & (uint64_t(1) << (D % 64)))
        Result.Reaches.insert({DefNode[D], N});
  Result.SolveSeconds = Phase.elapsedSeconds();
  return Result;
}
