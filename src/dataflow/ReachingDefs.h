//===- ReachingDefs.h - Dataflow as a logic database ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7's experiment: interprocedural-style dataflow (here: reaching
/// definitions) computed two ways —
///
///  1. as a logic database: the CFG becomes edge/defs/use facts, reaching
///     definitions become the tabled relation
///
///        :- table reach/2.
///        reach(D, N) :- defs(D, _), edge(D, N).
///        reach(D, N) :- reach(D, M), \+ redef(M, D), edge(M, N).
///        redef(M, D) :- defs(M, V), defs(D, V), M \== D.
///
///     whose demand-driven evaluation answers point queries ("which
///     definitions reach node 42?") without computing the whole program's
///     solution — the property Reps' demand analysis is about;
///
///  2. as a classic bitvector worklist solver (the "special purpose
///     demand algorithm implemented in C" role from the paper's
///     discussion).
///
/// The results must coincide; the bench reports their time ratio, the
/// quantity the paper cites (Coral ~6x slower than C; XSB ~an order of
/// magnitude faster than Coral).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_DATAFLOW_REACHINGDEFS_H
#define LPA_DATAFLOW_REACHINGDEFS_H

#include "dataflow/Cfg.h"
#include "support/Error.h"

#include <cstdint>
#include <set>
#include <utility>

namespace lpa {

/// (definition node, reached node): definition reaches the node's entry.
using ReachSet = std::set<std::pair<uint32_t, uint32_t>>;

/// Result with phase timings.
struct ReachResult {
  ReachSet Reaches;
  double SetupSeconds = 0; ///< Facts/structures construction.
  double SolveSeconds = 0; ///< Fixpoint evaluation.
  double totalSeconds() const { return SetupSeconds + SolveSeconds; }
};

/// Solves reaching definitions with the tabled logic engine (exhaustive:
/// one open query).
ErrorOr<ReachResult> reachingDefsLogic(const Cfg &G);

/// Demand query through the logic engine: definitions reaching \p Node
/// only. The call tables make repeated queries incremental.
ErrorOr<std::set<uint32_t>> reachingDefsAtLogic(const Cfg &G, uint32_t Node);

/// Solves reaching definitions with the dedicated bitvector worklist
/// algorithm.
ReachResult reachingDefsWorklist(const Cfg &G);

} // namespace lpa

#endif // LPA_DATAFLOW_REACHINGDEFS_H
