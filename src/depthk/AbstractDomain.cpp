//===- AbstractDomain.cpp - Depth-k term abstraction --------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "depthk/AbstractDomain.h"

#include "term/Unify.h"

#include <functional>
#include <unordered_map>

#include <vector>

using namespace lpa;

void AbstractDomain::groundify(TermStore &Store, TermRef T) const {
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Store.deref(Work.back());
    Work.pop_back();
    switch (Store.tag(Cur)) {
    case TermTag::Ref:
      Store.bind(Cur, Store.mkAtom(Gamma));
      break;
    case TermTag::Struct:
      for (uint32_t I = 0, E = Store.arity(Cur); I < E; ++I)
        Work.push_back(Store.arg(Cur, I));
      break;
    case TermTag::Atom:
    case TermTag::Int:
      break;
    }
  }
}

bool AbstractDomain::isGroundAbstract(const TermStore &Store,
                                      TermRef T) const {
  // Gamma is an atom, so plain groundness already treats it as ground.
  return isGround(Store, T);
}

bool AbstractDomain::unifyAbstract(TermStore &Store, TermRef A,
                                   TermRef B) const {
  std::vector<std::pair<TermRef, TermRef>> Work{{A, B}};
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    X = Store.deref(X);
    Y = Store.deref(Y);
    if (X == Y)
      continue;

    TermTag TX = Store.tag(X), TY = Store.tag(Y);

    // Variables bind with occur check (Section 5: abstract unification
    // performs the occur check).
    if (TX == TermTag::Ref) {
      if (TY == TermTag::Struct && occursIn(Store, X, Y))
        return false;
      Store.bind(X, Y);
      continue;
    }
    if (TY == TermTag::Ref) {
      if (TX == TermTag::Struct && occursIn(Store, Y, X))
        return false;
      Store.bind(Y, X);
      continue;
    }

    // Gamma absorbs any term that can be made ground: the meet constrains
    // the other side's variables to ground terms.
    bool GX = TX == TermTag::Atom && Store.symbol(X) == Gamma;
    bool GY = TY == TermTag::Atom && Store.symbol(Y) == Gamma;
    if (GX || GY) {
      groundify(Store, GX ? Y : X);
      continue;
    }

    if (TX != TY)
      return false;
    switch (TX) {
    case TermTag::Atom:
      if (Store.symbol(X) != Store.symbol(Y))
        return false;
      break;
    case TermTag::Int:
      if (Store.intValue(X) != Store.intValue(Y))
        return false;
      break;
    case TermTag::Struct:
      if (Store.symbol(X) != Store.symbol(Y) ||
          Store.arity(X) != Store.arity(Y))
        return false;
      for (uint32_t I = 0, E = Store.arity(X); I < E; ++I)
        Work.push_back({Store.arg(X, I), Store.arg(Y, I)});
      break;
    case TermTag::Ref:
      break; // Handled above.
    }
  }
  return true;
}

TermRef AbstractDomain::depthCutRec(
    const TermStore &Src, TermRef T, TermStore &Dst,
    std::unordered_map<TermRef, TermRef> &Renaming, unsigned Level) const {
  T = Src.deref(T);
  switch (Src.tag(T)) {
  case TermTag::Ref: {
    auto It = Renaming.find(T);
    if (It == Renaming.end())
      It = Renaming.emplace(T, Dst.mkVar()).first;
    return It->second;
  }
  case TermTag::Atom:
    return Dst.mkAtom(Src.symbol(T));
  case TermTag::Int:
    return Dst.mkInt(Src.intValue(T));
  case TermTag::Struct:
    break;
  }

  if (Level >= Depth) {
    // Cut point: ground subtrees collapse to gamma, others widen to a
    // fresh variable (each occurrence its own variable: "any term").
    if (isGround(Src, T))
      return Dst.mkAtom(Gamma);
    return Dst.mkVar();
  }
  std::vector<TermRef> Args;
  for (uint32_t I = 0, E = Src.arity(T); I < E; ++I)
    Args.push_back(depthCutRec(Src, Src.arg(T, I), Dst, Renaming, Level + 1));
  return Dst.mkStruct(Src.symbol(T), Args);
}

TermRef AbstractDomain::depthCut(
    const TermStore &Src, TermRef T, TermStore &Dst,
    std::unordered_map<TermRef, TermRef> &Renaming) const {
  return depthCutRec(Src, T, Dst, Renaming, 0);
}

namespace {

/// Key for the lgg pair memo.
struct PairKey {
  TermRef A, B;
  bool operator==(const PairKey &O) const { return A == O.A && B == O.B; }
};
struct PairKeyHash {
  size_t operator()(const PairKey &K) const {
    return std::hash<uint64_t>()((uint64_t(K.A) << 32) | K.B);
  }
};

} // namespace

TermRef AbstractDomain::lgg(const TermStore &Src, TermRef A, TermRef B,
                            TermStore &Dst) const {
  std::unordered_map<PairKey, TermRef, PairKeyHash> Memo;

  // Recursive lambda over dereferenced pairs.
  std::function<TermRef(TermRef, TermRef)> Rec = [&](TermRef X,
                                                     TermRef Y) -> TermRef {
    X = Src.deref(X);
    Y = Src.deref(Y);
    PairKey Key{X, Y};
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;

    TermRef Out = InvalidTerm;
    TermTag TX = Src.tag(X), TY = Src.tag(Y);
    if (TX == TY) {
      switch (TX) {
      case TermTag::Atom:
        if (Src.symbol(X) == Src.symbol(Y))
          Out = Dst.mkAtom(Src.symbol(X));
        break;
      case TermTag::Int:
        if (Src.intValue(X) == Src.intValue(Y))
          Out = Dst.mkInt(Src.intValue(X));
        break;
      case TermTag::Struct:
        if (Src.symbol(X) == Src.symbol(Y) &&
            Src.arity(X) == Src.arity(Y)) {
          std::vector<TermRef> Args;
          for (uint32_t I = 0, E = Src.arity(X); I < E; ++I)
            Args.push_back(Rec(Src.arg(X, I), Src.arg(Y, I)));
          Out = Dst.mkStruct(Src.symbol(X), Args);
        }
        break;
      case TermTag::Ref:
        break;
      }
    }
    if (Out == InvalidTerm) {
      // Disagreement: gamma when both sides are ground, else a variable
      // (the same variable for the same pair of subterms).
      if (isGround(Src, X) && isGround(Src, Y))
        Out = Dst.mkAtom(Gamma);
      else
        Out = Dst.mkVar();
    }
    Memo.emplace(Key, Out);
    return Out;
  };
  return Rec(A, B);
}

bool AbstractDomain::subsumes(const TermStore &Store, TermRef Pat,
                              TermRef Inst) const {
  std::unordered_map<TermRef, TermRef> Binding;
  std::vector<std::pair<TermRef, TermRef>> Work{{Pat, Inst}};
  while (!Work.empty()) {
    auto [P, T] = Work.back();
    Work.pop_back();
    P = Store.deref(P);
    T = Store.deref(T);

    if (Store.tag(P) == TermTag::Ref) {
      // A pattern variable matches anything, consistently.
      auto [It, Inserted] = Binding.emplace(P, T);
      if (!Inserted && !termsEqual(Store, It->second, T))
        return false;
      continue;
    }
    if (Store.tag(P) == TermTag::Atom && Store.symbol(P) == Gamma) {
      // gamma covers any ground abstract term.
      if (!isGround(Store, T))
        return false;
      continue;
    }
    if (Store.tag(P) != Store.tag(T))
      return false;
    switch (Store.tag(P)) {
    case TermTag::Atom:
      if (Store.symbol(P) != Store.symbol(T))
        return false;
      break;
    case TermTag::Int:
      if (Store.intValue(P) != Store.intValue(T))
        return false;
      break;
    case TermTag::Struct:
      if (Store.symbol(P) != Store.symbol(T) ||
          Store.arity(P) != Store.arity(T))
        return false;
      for (uint32_t I = 0, E = Store.arity(P); I < E; ++I)
        Work.push_back({Store.arg(P, I), Store.arg(T, I)});
      break;
    case TermTag::Ref:
      break;
    }
  }
  return true;
}
