//===- AbstractDomain.h - Depth-k term abstraction --------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-enumerative abstract domain of Section 5: terms of depth k or
/// less over the program's function symbols, a special 0-ary symbol gamma
/// denoting the set of all ground terms, and variables. Abstract
/// unification (with occur check, implemented "at a higher level" than the
/// engine's unification) treats gamma as unifying with any ground term.
///
/// Abstract terms are ordinary TermStore terms using a reserved atom for
/// gamma, so the trail/mark/copy/variant machinery is reused wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_DEPTHK_ABSTRACTDOMAIN_H
#define LPA_DEPTHK_ABSTRACTDOMAIN_H

#include "term/Symbol.h"
#include "term/TermStore.h"

namespace lpa {

/// Name of the gamma atom (set of all ground terms). The '$' prefix keeps
/// it out of the way of source programs.
inline constexpr const char *GammaName = "$gamma";

/// Operations of the depth-k domain over one symbol table.
class AbstractDomain {
public:
  AbstractDomain(SymbolTable &Symbols, unsigned Depth)
      : Symbols(Symbols), Gamma(Symbols.intern(GammaName)), Depth(Depth) {}

  /// The gamma symbol.
  SymbolId gammaSymbol() const { return Gamma; }

  /// True if \p T dereferences to the gamma atom.
  bool isGamma(const TermStore &Store, TermRef T) const {
    T = Store.deref(T);
    return Store.tag(T) == TermTag::Atom && Store.symbol(T) == Gamma;
  }

  /// Abstract unification: standard descent with occur check, plus gamma
  /// absorbing any ground term (binding the other side's variables to
  /// gamma). On failure, bindings must be undone by the caller via a Mark.
  bool unifyAbstract(TermStore &Store, TermRef A, TermRef B) const;

  /// Binds every unbound variable inside \p T to gamma ("this term is
  /// ground now"); used for the abstraction of is/2 and comparisons.
  void groundify(TermStore &Store, TermRef T) const;

  /// True if the abstract term \p T denotes only ground terms (contains no
  /// unbound variables; gamma itself is ground).
  bool isGroundAbstract(const TermStore &Store, TermRef T) const;

  /// Copies \p T from \p Src into \p Dst applying the depth-k cut: at depth
  /// >= k, ground subterms become gamma and non-ground subterms become
  /// fresh variables. Unbound variables are renamed via \p Renaming.
  TermRef depthCut(const TermStore &Src, TermRef T, TermStore &Dst,
                   std::unordered_map<TermRef, TermRef> &Renaming) const;

  /// Least general generalization (anti-unification) of two abstract
  /// terms, built in \p Dst. Mismatched positions become gamma when both
  /// sides are ground there, otherwise fresh variables (consistently per
  /// pair of subterms). Used as the widening operator when an entry's
  /// answer set grows past the configured bound (the paper's Section 6
  /// discussion of widening under tabled evaluation).
  TermRef lgg(const TermStore &Src, TermRef A, TermRef B,
              TermStore &Dst) const;

  /// \returns true if pattern \p Pat subsumes \p Inst: every concrete term
  /// denoted by Inst is denoted by Pat. Pattern variables match anything
  /// (consistently); gamma matches any ground abstract term.
  bool subsumes(const TermStore &Store, TermRef Pat, TermRef Inst) const;

  unsigned depth() const { return Depth; }

private:
  TermRef depthCutRec(const TermStore &Src, TermRef T, TermStore &Dst,
                      std::unordered_map<TermRef, TermRef> &Renaming,
                      unsigned Level) const;

  SymbolTable &Symbols;
  SymbolId Gamma;
  unsigned Depth;
};

} // namespace lpa

#endif // LPA_DEPTHK_ABSTRACTDOMAIN_H
