//===- DepthK.cpp - Depth-k groundness analyzer -------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "depthk/DepthK.h"

#include "obs/Provenance.h"
#include "obs/Span.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"
#include "term/TermCopy.h"
#include "term/TermWriter.h"
#include "term/Variant.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_set>

using namespace lpa;

const DepthKPred *DepthKResult::find(const std::string &Name,
                                     uint32_t Arity) const {
  for (const DepthKPred &P : Predicates)
    if (P.Name == Name && P.Arity == Arity)
      return &P;
  return nullptr;
}

namespace {

/// The tabled abstract interpreter. Call/answer patterns live in a table
/// store; clause execution happens in a scratch heap with mark/undo.
///
/// Evaluation is worklist-driven and semi-naive at entry granularity: an
/// entry's producer re-runs only when an entry it consumed from gained
/// answers. Two widenings keep the tables small on large programs (the
/// paper's Section 6 widening discussion): an entry whose answer set
/// outgrows MaxAnswersPerCall collapses to the answers' least general
/// generalization, and a predicate with too many call patterns routes new
/// calls to its open (most general) pattern.
class AbsInterp {
public:
  AbsInterp(SymbolTable &Symbols, const Database &DB,
            const DepthKAnalyzer::Options &Opts)
      : Symbols(Symbols), DB(DB), Domain(Symbols, Opts.Depth), Opts(Opts) {
    if (Opts.RecordProvenance)
      Prov = std::make_unique<ProvenanceArena>();
  }

  struct Entry {
    PredKey Pred;
    TermRef CallTuple; ///< Abstract call term in the table store.
    std::string Key;
    uint32_t Ordinal = 0; ///< Index into entries(); provenance subgoal id.
    std::vector<TermRef> Answers;
    std::unordered_set<std::string> AnswerKeys;
    /// Insertion-ordered: wake() walks this, and enqueue order decides the
    /// order answers land in dependents' tables. Iterating a pointer-hashed
    /// set here made that order (and hence the rendered result) vary run to
    /// run with heap layout.
    std::vector<Entry *> Dependents;
    std::unordered_set<Entry *> DependentSet;
    bool InWorklist = false;
    bool Widened = false;
  };

  /// Creates (or finds) the entry for the open call of \p Pred and drains
  /// the worklist.
  void analyzePredicate(PredKey Pred);

  const std::vector<Entry *> &entries() const { return Order; }
  const TermStore &tableStore() const { return Tables; }
  const Entry *openEntry(PredKey Pred) const {
    auto It = OpenEntries.find(keyOf(Pred));
    return It == OpenEntries.end() ? nullptr : It->second;
  }

  size_t tableSpaceBytes() const;
  uint64_t numAnswers() const;

  /// Fills the registry's table-snapshot fields from the current entry
  /// tables (idempotent; mirrors Solver::snapshotTableMetrics).
  void snapshotMetrics(MetricsRegistry &M) const;
  uint64_t ProducerRuns = 0;
  uint64_t Widenings = 0;
  /// Monotone count of new-answer commits (widening folds shrink the live
  /// answer sets, so numAnswers() is not monotone; the cursor gauge is).
  uint64_t AnswersRecorded = 0;
  /// Set when MaxProducerRuns stopped the worklist with work remaining.
  bool Incomplete = false;

  const ProvenanceArena *provenance() const { return Prov.get(); }

  /// Validates every recorded premise against the entry tables. Widening
  /// tolerance: a premise into a folded answer set is valid — the fold
  /// deliberately replaced those answers, and the folded pattern carries
  /// the ProvFoldedClause marker instead of their derivations.
  ProvenanceArena::CheckStats checkProvenance() const {
    if (!Prov)
      return {};
    return Prov->check([&](ProvPremise P) {
      if (P.SubgoalIdx >= Order.size())
        return false;
      const Entry *E = Order[P.SubgoalIdx];
      return P.AnswerIdx < E->Answers.size() || E->Widened;
    });
  }

private:
  static uint64_t keyOf(PredKey P) {
    return (uint64_t(P.Sym) << 32) | P.Arity;
  }

  /// Finds or creates the entry for the abstract call \p Call (a term in
  /// Heap, already depth-cut). Applies the call-pattern widening.
  Entry &ensureEntry(PredKey Pred, TermRef Call);

  /// Creates the open (all-variables) entry of \p Pred.
  Entry &ensureOpenEntry(PredKey Pred);

  void enqueue(Entry &E) {
    if (E.InWorklist)
      return;
    E.InWorklist = true;
    Worklist.push_back(&E);
  }
  void drainWorklist();

  /// Re-runs clause resolution for one entry; records new answers.
  void runEntry(Entry &E);

  /// Records one instantiated answer pattern (term in Heap) for \p E,
  /// justified by clause \p ClauseIdx consuming \p Premises (null when
  /// provenance is off).
  void recordAnswer(Entry &E, TermRef AnsPattern, uint32_t ClauseIdx,
                    const std::vector<ProvPremise> *Premises);

  /// Notifies dependents that \p E gained answers.
  void wake(Entry &E) {
    for (Entry *D : E.Dependents)
      enqueue(*D);
  }

  /// Solves the single goal \p G in the current heap bindings; calls
  /// \p OnSolution for each (abstract) solution, bindings in place.
  void solveGoal(Entry &Producer, TermRef G,
                 const std::function<void()> &OnSolution);

  /// Handles one builtin goal; \p Known is false for user predicates.
  bool applyBuiltin(TermRef Goal, bool &Known);

  SymbolTable &Symbols;
  const Database &DB;
  AbstractDomain Domain;
  DepthKAnalyzer::Options Opts;

  TermStore Heap;
  TermStore Tables;
  std::unordered_map<std::string, std::unique_ptr<Entry>> Table;
  std::vector<Entry *> Order;
  std::unordered_map<uint64_t, Entry *> OpenEntries;
  std::unordered_map<uint64_t, uint32_t> CallsPerPred;
  std::deque<Entry *> Worklist;

  /// Provenance (allocated only under Options::RecordProvenance). solveGoal
  /// sets LastPremise to the (entry, answer) it just resolved against — or
  /// clears it for builtins — so runEntry's per-state premise threading can
  /// extend the consuming state's premise list.
  std::unique_ptr<ProvenanceArena> Prov;
  std::optional<ProvPremise> LastPremise;
};

AbsInterp::Entry &AbsInterp::ensureOpenEntry(PredKey Pred) {
  auto It = OpenEntries.find(keyOf(Pred));
  if (It != OpenEntries.end())
    return *It->second;
  auto M = Heap.mark();
  TermRef Call;
  if (Pred.Arity == 0) {
    Call = Heap.mkAtom(Pred.Sym);
  } else {
    std::vector<TermRef> Args;
    for (uint32_t I = 0; I < Pred.Arity; ++I)
      Args.push_back(Heap.mkVar());
    Call = Heap.mkStruct(Pred.Sym, Args);
  }
  Entry &E = ensureEntry(Pred, Call);
  OpenEntries.emplace(keyOf(Pred), &E);
  Heap.undoTo(M);
  return E;
}

AbsInterp::Entry &AbsInterp::ensureEntry(PredKey Pred, TermRef Call) {
  std::string Key = canonicalKey(Heap, Call);
  auto It = Table.find(Key);
  if (It != Table.end())
    return *It->second;

  // Call-pattern widening: too many patterns for one predicate fall back
  // to the open call (unless this *is* an open call being created, which
  // must go through so ensureOpenEntry cannot recurse forever).
  uint32_t &Count = CallsPerPred[keyOf(Pred)];
  bool IsOpen = true;
  if (Pred.Arity == 0) {
    IsOpen = Heap.tag(Heap.deref(Call)) == TermTag::Atom;
  } else {
    std::unordered_set<TermRef> SeenVars;
    for (uint32_t I = 0; I < Pred.Arity && IsOpen; ++I) {
      TermRef A = Heap.deref(Heap.arg(Heap.deref(Call), I));
      IsOpen = Heap.tag(A) == TermTag::Ref && SeenVars.insert(A).second;
    }
  }
  if (!IsOpen && Count >= Opts.MaxCallsPerPred)
    return ensureOpenEntry(Pred);
  ++Count;

  auto Owned = std::make_unique<Entry>();
  Entry &E = *Owned;
  E.Pred = Pred;
  E.Key = Key;
  E.CallTuple = copyTerm(Heap, Call, Tables);
  E.Ordinal = static_cast<uint32_t>(Order.size());
  Table.emplace(E.Key, std::move(Owned));
  Order.push_back(&E);
  if (Opts.Trace)
    Opts.Trace->emit(TraceEventKind::SubgoalNew, Pred.Sym, Pred.Arity,
                     Order.size());
  if (Opts.Metrics)
    ++Opts.Metrics->pred(Symbols, Pred.Sym, Pred.Arity).NewSubgoals;
  enqueue(E);
  return E;
}

bool AbsInterp::applyBuiltin(TermRef Goal, bool &Known) {
  Known = true;
  TermRef G = Heap.deref(Goal);
  TermTag Tag = Heap.tag(G);
  if (Tag != TermTag::Atom && Tag != TermTag::Struct) {
    Known = false;
    return false;
  }
  const std::string &Name = Symbols.name(Heap.symbol(G));
  uint32_t Arity = Heap.arity(G);

  if (Arity == 0) {
    if (Name == "true" || Name == "!" || Name == "nl")
      return true;
    if (Name == "fail" || Name == "false")
      return false;
    Known = false;
    return false;
  }
  if (Arity == 2 && Name == "=")
    return Domain.unifyAbstract(Heap, Heap.arg(G, 0), Heap.arg(G, 1));
  if ((Arity == 2 &&
       (Name == "is" || Name == "<" || Name == ">" || Name == "=<" ||
        Name == ">=" || Name == "=:=" || Name == "=\\=")) ||
      (Arity == 3 && Name == "between")) {
    // Arithmetic succeeds only over ground numbers.
    Domain.groundify(Heap, G);
    return true;
  }
  if (Arity == 1 && (Name == "atom" || Name == "integer" ||
                     Name == "atomic" || Name == "number" ||
                     Name == "ground")) {
    Domain.groundify(Heap, G);
    return true;
  }
  if ((Arity == 1 && (Name == "var" || Name == "nonvar" ||
                      Name == "compound" || Name == "\\+" || Name == "not" ||
                      Name == "write" || Name == "print")) ||
      (Arity == 2 && (Name == "==" || Name == "\\==" || Name == "\\=" ||
                      Name == "@<" || Name == "@>" || Name == "@=<" ||
                      Name == "@>=")) ||
      (Arity == 3 && Name == "arg") || (Arity == 2 && Name == "=.."))
    return true;
  if (Arity == 3 && Name == "functor") {
    Domain.groundify(Heap, Heap.arg(G, 1));
    Domain.groundify(Heap, Heap.arg(G, 2));
    return true;
  }
  Known = false;
  return false;
}

void AbsInterp::solveGoal(Entry &Producer, TermRef G,
                          const std::function<void()> &OnSolution) {
  G = Heap.deref(G);

  bool Known = false;
  {
    auto M = Heap.mark();
    bool Ok = applyBuiltin(G, Known);
    if (Known) {
      if (Ok) {
        if (Prov)
          LastPremise.reset(); // Builtins contribute no table premise.
        OnSolution();
      }
      Heap.undoTo(M);
      return;
    }
    Heap.undoTo(M);
  }

  // User predicate: form the abstract call pattern (depth cut), register
  // the dependency, and resolve against the entry's current answers.
  TermTag Tag = Heap.tag(G);
  if (Tag != TermTag::Atom && Tag != TermTag::Struct)
    return; // Ill-formed goal: fail.
  PredKey Pred{Heap.symbol(G), Heap.arity(G)};
  if (!DB.lookup(Pred))
    return; // Undefined predicate: fail.

  TermRef CutCall;
  {
    std::unordered_map<TermRef, TermRef> CutRenaming;
    if (Pred.Arity == 0) {
      CutCall = Heap.mkAtom(Pred.Sym);
    } else {
      std::vector<TermRef> Args;
      for (uint32_t I = 0; I < Pred.Arity; ++I)
        Args.push_back(Domain.depthCut(Heap, Heap.arg(G, I), Heap,
                                       CutRenaming));
      CutCall = Heap.mkStruct(Pred.Sym, Args);
    }
  }
  Entry &E = ensureEntry(Pred, CutCall);
  if (E.DependentSet.insert(&Producer).second)
    E.Dependents.push_back(&Producer);

  for (size_t I = 0; I < E.Answers.size(); ++I) {
    auto M = Heap.mark();
    TermRef Ans = copyTerm(Tables, E.Answers[I], Heap);
    if (Domain.unifyAbstract(Heap, G, Ans)) {
      if (Prov)
        LastPremise = ProvPremise{E.Ordinal, static_cast<uint32_t>(I)};
      OnSolution();
    }
    Heap.undoTo(M);
  }
}

void AbsInterp::recordAnswer(Entry &E, TermRef AnsPattern, uint32_t ClauseIdx,
                             const std::vector<ProvPremise> *Premises) {
  auto NoteDup = [&]() {
    if (Opts.Trace)
      Opts.Trace->emit(TraceEventKind::AnswerDup, E.Pred.Sym, E.Pred.Arity);
    if (Opts.Metrics)
      ++Opts.Metrics->pred(Symbols, E.Pred.Sym, E.Pred.Arity).DupAnswers;
  };
  if (E.Widened) {
    // Check subsumption against the widened pattern(s); only genuinely
    // new behaviour re-widens.
    for (TermRef Existing : E.Answers) {
      auto M = Heap.mark();
      TermRef Pat = copyTerm(Tables, Existing, Heap);
      bool Covered = Domain.subsumes(Heap, Pat, AnsPattern);
      Heap.undoTo(M);
      if (Covered) {
        NoteDup();
        return;
      }
    }
  }
  std::string AKey = canonicalKey(Heap, AnsPattern);
  if (E.AnswerKeys.count(AKey)) {
    NoteDup();
    return;
  }
  if (Opts.Trace)
    Opts.Trace->emit(TraceEventKind::AnswerNew, E.Pred.Sym, E.Pred.Arity,
                     E.Answers.size() + 1);
  if (Opts.Metrics)
    ++Opts.Metrics->pred(Symbols, E.Pred.Sym, E.Pred.Arity).NewAnswers;
  TermRef Stored = copyTerm(Heap, AnsPattern, Tables);
  E.AnswerKeys.insert(std::move(AKey));
  E.Answers.push_back(Stored);
  ++AnswersRecorded;
  if (Opts.Cursor)
    Opts.Cursor->setGauges(Tables.memoryBytes(), AnswersRecorded,
                           Order.size());
  if (Prov)
    Prov->record(E.Ordinal, E.Answers.size() - 1, ClauseIdx,
                 Premises ? std::span<const ProvPremise>(*Premises)
                          : std::span<const ProvPremise>());

  // Answer widening: collapse an oversized answer set to its lgg.
  if (E.Answers.size() > Opts.MaxAnswersPerCall) {
    ++Widenings;
    TermRef Folded = E.Answers[0];
    for (size_t I = 1; I < E.Answers.size(); ++I)
      Folded = Domain.lgg(Tables, Folded, E.Answers[I], Tables);
    E.Answers.clear();
    E.AnswerKeys.clear();
    E.Answers.push_back(Folded);
    E.AnswerKeys.insert(canonicalKey(Tables, Folded));
    E.Widened = true;
    if (Prov) {
      // The folded pattern subsumes the dropped answers but is derived by
      // no single clause; record the fold marker instead of misattributing
      // one of the dead derivations.
      Prov->dropSubgoal(E.Ordinal);
      Prov->record(E.Ordinal, 0, ProvFoldedClause, {});
    }
  }
  wake(E);
}

void AbsInterp::runEntry(Entry &E) {
  const Predicate *P = DB.lookup(E.Pred);
  if (!P)
    return;
  ++ProducerRuns;
  // The worklist makes entry runs non-nested, so the published stack is a
  // single frame; the sampler still sees which predicate is being re-run.
  if (Opts.Cursor)
    Opts.Cursor->pushFrame(E.Pred.Sym, E.Pred.Arity);
  SymbolId StateSym = Symbols.intern("$state");

  for (size_t ClauseIdx = 0; ClauseIdx < P->Clauses.size(); ++ClauseIdx) {
    const Clause &C = P->Clauses[ClauseIdx];
    if (Opts.Trace)
      Opts.Trace->emit(TraceEventKind::ClauseResolve, E.Pred.Sym,
                       E.Pred.Arity);
    if (Opts.Metrics)
      ++Opts.Metrics->pred(Symbols, E.Pred.Sym, E.Pred.Arity).Resolutions;
    auto M = Heap.mark();
    TermRef Call = copyTerm(Tables, E.CallTuple, Heap);
    VarRenaming Renaming;
    TermRef Head = copyTerm(DB.store(), C.Head, Heap, Renaming);
    if (!Domain.unifyAbstract(Heap, Call, Head)) {
      Heap.undoTo(M);
      continue;
    }

    // Set-at-a-time evaluation (the paper's footnote on join sizes): a
    // state is a snapshot of $state(Call, G1..Gn); after each goal the
    // reached states are deduplicated by variant key, which caps the
    // cross-product of answer choices at the number of distinct abstract
    // states.
    std::vector<TermRef> StateArgs{Call};
    for (TermRef Gl : C.Body)
      StateArgs.push_back(copyTerm(DB.store(), Gl, Heap, Renaming));
    TermRef StateTerm = Heap.mkStruct(StateSym, StateArgs);

    TermStore StatesA, StatesB;
    TermStore *Cur = &StatesA, *Next = &StatesB;
    std::vector<TermRef> CurStates{copyTerm(Heap, StateTerm, *Cur)};
    // Premise lists travel with their state (index-parallel to CurStates):
    // each tabled resolution appends the consumed (entry, answer) pair, so
    // a surviving state knows exactly which table answers justified it.
    std::vector<std::vector<ProvPremise>> CurProv;
    if (Prov)
      CurProv.emplace_back();
    Heap.undoTo(M);

    size_t NumGoals = C.Body.size();
    for (size_t GoalIdx = 0; GoalIdx < NumGoals && !CurStates.empty();
         ++GoalIdx) {
      std::vector<TermRef> NextStates;
      std::vector<std::vector<ProvPremise>> NextProv;
      std::unordered_set<std::string> Seen;
      for (size_t SI = 0; SI < CurStates.size(); ++SI) {
        auto M2 = Heap.mark();
        TermRef Live = copyTerm(*Cur, CurStates[SI], Heap);
        TermRef Goal = Heap.arg(Live, static_cast<uint32_t>(GoalIdx + 1));
        solveGoal(E, Goal, [&]() {
          // canonicalKey dereferences, so the key reflects the goal's
          // bindings without an intermediate snapshot.
          std::string Key = canonicalKey(Heap, Live);
          if (Seen.insert(Key).second) {
            NextStates.push_back(copyTerm(Heap, Live, *Next));
            if (Prov) {
              NextProv.push_back(CurProv[SI]);
              if (LastPremise)
                NextProv.back().push_back(*LastPremise);
            }
          }
        });
        Heap.undoTo(M2);
      }
      // Retire the consumed generation and make its store the next
      // scratch target.
      Cur->clear();
      CurStates = std::move(NextStates);
      CurProv = std::move(NextProv);
      std::swap(Cur, Next);
    }

    // Surviving states yield answer patterns.
    for (size_t SI = 0; SI < CurStates.size(); ++SI) {
      auto M2 = Heap.mark();
      TermRef Live = copyTerm(*Cur, CurStates[SI], Heap);
      TermRef FinalCall = Heap.deref(Heap.arg(Live, 0));
      std::unordered_map<TermRef, TermRef> CutRenaming;
      TermRef AnsPattern;
      if (E.Pred.Arity == 0) {
        AnsPattern = Heap.mkAtom(E.Pred.Sym);
      } else {
        std::vector<TermRef> Args;
        for (uint32_t I = 0; I < E.Pred.Arity; ++I)
          Args.push_back(Domain.depthCut(Heap, Heap.arg(FinalCall, I), Heap,
                                         CutRenaming));
        AnsPattern = Heap.mkStruct(E.Pred.Sym, Args);
      }
      recordAnswer(E, AnsPattern, static_cast<uint32_t>(ClauseIdx),
                   Prov ? &CurProv[SI] : nullptr);
      Heap.undoTo(M2);
    }
  }
  if (Opts.Cursor)
    Opts.Cursor->popFrame();
}

void AbsInterp::drainWorklist() {
  while (!Worklist.empty()) {
    // Truncation, not widening: entries still queued have pending
    // (re-)runs, so their answer sets are below the fixpoint.
    if (Opts.MaxProducerRuns && ProducerRuns >= Opts.MaxProducerRuns) {
      Incomplete = true;
      return;
    }
    Entry *E = Worklist.front();
    Worklist.pop_front();
    E->InWorklist = false;
    runEntry(*E);
  }
}

void AbsInterp::analyzePredicate(PredKey Pred) {
  ensureOpenEntry(Pred);
  drainWorklist();
}

size_t AbsInterp::tableSpaceBytes() const {
  size_t Bytes = Tables.memoryBytes();
  for (const Entry *E : Order) {
    Bytes += sizeof(Entry);
    Bytes += E->Key.capacity();
    Bytes += E->Answers.capacity() * sizeof(TermRef);
    for (const auto &K : E->AnswerKeys)
      Bytes += K.capacity() + sizeof(void *) * 2;
    Bytes += E->Dependents.size() * sizeof(void *) * 2;
  }
  Bytes += Table.size() * (sizeof(void *) * 4);
  return Bytes;
}

uint64_t AbsInterp::numAnswers() const {
  uint64_t N = 0;
  for (const Entry *E : Order)
    N += E->Answers.size();
  return N;
}

void AbsInterp::snapshotMetrics(MetricsRegistry &M) const {
  M.resetTableSnapshot();
  for (const Entry *E : Order) {
    PredMetrics &PM = M.pred(Symbols, E->Pred.Sym, E->Pred.Arity);
    ++PM.TableSubgoals;
    PM.TableAnswers += E->Answers.size();
    PM.AnswersPerSubgoal.record(E->Answers.size());
    size_t Bytes = sizeof(Entry) + E->Key.capacity();
    Bytes += E->Answers.capacity() * sizeof(TermRef);
    for (const auto &K : E->AnswerKeys)
      Bytes += K.capacity() + sizeof(void *) * 2;
    Bytes += E->Dependents.size() * sizeof(void *) * 2;
    Bytes += Tables.termBytes(E->CallTuple);
    for (TermRef Ans : E->Answers)
      Bytes += Tables.termBytes(Ans);
    PM.TableBytes += Bytes;
  }
}

} // namespace

ErrorOr<DepthKResult> DepthKAnalyzer::analyze(std::string_view Source) {
  DepthKResult Result;
  Stopwatch Phase;

  //--- Preprocessing: read + load the concrete program. -------------------
  ScopedSpan PreprocSpan(Opts.Trace, Opts.Metrics, "transform");
  Database DB(Symbols);
  auto Loaded = DB.consult(Source);
  if (!Loaded)
    return Loaded.getError();
  Result.PreprocSeconds = Phase.elapsedSeconds();
  PreprocSpan.finish();

  //--- Analysis: abstract interpretation to fixpoint. ---------------------
  Phase.restart();
  ScopedSpan EvalSpan(Opts.Trace, Opts.Metrics, "evaluate");
  AbsInterp Interp(Symbols, DB, Opts);
  for (PredKey Pred : DB.predicates())
    Interp.analyzePredicate(Pred);
  Result.AnalysisSeconds = Phase.elapsedSeconds();
  EvalSpan.finish();

  // Soundness gate: a truncated fixpoint under-reports answer patterns,
  // which over-claims groundness. Mirrors the Solver-based analyzers'
  // IncompleteTables handling.
  if (Interp.Incomplete) {
    if (!Opts.AllowIncomplete)
      return Diagnostic(
          "depth-k analysis incomplete: MaxProducerRuns stopped the "
          "fixpoint after " +
          std::to_string(Interp.ProducerRuns) +
          " producer runs; raise the budget or set AllowIncomplete");
    Result.Incomplete = true;
  }

  //--- Collection. ---------------------------------------------------------
  Phase.restart();
  ScopedSpan CollectSpan(Opts.Trace, Opts.Metrics, "collect");
  Result.TableSpaceBytes = Interp.tableSpaceBytes();
  Result.NumCallPatterns = Interp.entries().size();
  Result.NumAnswers = Interp.numAnswers();
  Result.FixpointRounds = Interp.ProducerRuns;
  Result.Widenings = Interp.Widenings;
  if (Opts.RecordProvenance) {
    ProvenanceArena::CheckStats PS = Interp.checkProvenance();
    Result.JustifiedAnswers = PS.Justified;
    Result.JustificationPremises = PS.Premises;
    Result.DanglingPremises = PS.Dangling;
  }
  if (Opts.Metrics) {
    Interp.snapshotMetrics(*Opts.Metrics);
    Opts.Metrics->setCounter("call_patterns", Result.NumCallPatterns);
    Opts.Metrics->setCounter("answers_recorded", Result.NumAnswers);
    Opts.Metrics->setCounter("fixpoint_rounds", Result.FixpointRounds);
    Opts.Metrics->setCounter("widenings", Result.Widenings);
    Opts.Metrics->setCounter("table_space_bytes", Result.TableSpaceBytes);
    // Depth-k tables only grow (no completion-time release), so the final
    // footprint is the lifetime peak.
    Opts.Metrics->noteWatermark("peak_table_space_bytes",
                                Result.TableSpaceBytes);
  }

  const TermStore &TS = Interp.tableStore();
  for (PredKey Pred : DB.predicates()) {
    DepthKPred Out;
    Out.Name = Symbols.name(Pred.Sym);
    Out.Arity = Pred.Arity;
    Out.GroundOnSuccess.assign(Pred.Arity, 1);

    const AbsInterp::Entry *E = Interp.openEntry(Pred);
    if (E) {
      AbstractDomain Dom(Symbols, Opts.Depth);
      for (TermRef Ans : E->Answers) {
        Out.AnswerPatterns.push_back(
            TermWriter::toString(Symbols, TS, Ans));
        TermRef A = TS.deref(Ans);
        for (uint32_t I = 0; I < Pred.Arity; ++I)
          if (!Dom.isGroundAbstract(TS, TS.arg(A, I)))
            Out.GroundOnSuccess[I] = 0;
      }
      Out.CanSucceed = !E->Answers.empty();
    }
    if (!Out.CanSucceed)
      Out.GroundOnSuccess.assign(Pred.Arity, 0);

    // All call patterns of this predicate.
    for (const AbsInterp::Entry *CE : Interp.entries())
      if (CE->Pred == Pred)
        Out.CallPatterns.push_back(
            TermWriter::toString(Symbols, TS, CE->CallTuple));

    Result.Predicates.push_back(std::move(Out));
  }
  Result.CollectSeconds = Phase.elapsedSeconds();
  return Result;
}

ErrorOr<std::string> DepthKAnalyzer::explain(std::string_view Source,
                                             std::string_view Pred,
                                             uint32_t Arity, uint32_t Arg) {
  if (Arity > 0 && Arg >= Arity)
    return Diagnostic("explain: argument " + std::to_string(Arg + 1) +
                      " out of range for " + std::string(Pred) + "/" +
                      std::to_string(Arity));

  // Re-run the fixpoint with provenance forced on; the worklist order is
  // deterministic, so entries and answers line up with a plain analyze().
  Database DB(Symbols);
  auto Loaded = DB.consult(Source);
  if (!Loaded)
    return Loaded.getError();

  Options EO = Opts;
  EO.RecordProvenance = true;
  AbsInterp Interp(Symbols, DB, EO);
  PredKey Target{};
  bool Found = false;
  for (PredKey P : DB.predicates()) {
    Interp.analyzePredicate(P);
    if (!Found && Symbols.name(P.Sym) == Pred && P.Arity == Arity) {
      Target = P;
      Found = true;
    }
  }
  if (!Found)
    return Diagnostic("explain: unknown predicate '" + std::string(Pred) +
                      "/" + std::to_string(Arity) + "'");
  if (Interp.Incomplete && !Opts.AllowIncomplete)
    return Diagnostic("explain: MaxProducerRuns truncated the fixpoint; "
                      "raise the budget or set AllowIncomplete");

  const AbsInterp::Entry *E = Interp.openEntry(Target);
  const std::string Name =
      std::string(Pred) + "/" + std::to_string(Arity);
  if (!E || E->Answers.empty())
    return Diagnostic("explain: " + Name + " has no answer pattern — it "
                      "cannot succeed, so groundness holds vacuously");

  // Witness: the first open-call answer pattern whose Arg is abstractly
  // ground (arity 0 takes answer 0; "ground" is then trivial success).
  const TermStore &TS = Interp.tableStore();
  AbstractDomain Dom(Symbols, Opts.Depth);
  size_t Witness = E->Answers.size();
  for (size_t I = 0; I < E->Answers.size(); ++I) {
    TermRef A = TS.deref(E->Answers[I]);
    if (Arity == 0 || Dom.isGroundAbstract(TS, TS.arg(A, Arg))) {
      Witness = I;
      break;
    }
  }
  if (Witness == E->Answers.size())
    return Diagnostic("explain: no answer pattern of " + Name +
                      " grounds argument " + std::to_string(Arg + 1));

  ProofNode Tree = buildProofTree(*Interp.provenance(), E->Ordinal,
                                  static_cast<uint32_t>(Witness));

  const auto &Entries = Interp.entries();
  auto Label = [&](const ProofNode &N) {
    if (N.SubgoalIdx >= Entries.size())
      return std::string("<unknown entry>");
    const AbsInterp::Entry &G = *Entries[N.SubgoalIdx];
    if (N.AnswerIdx >= G.Answers.size())
      return TermWriter::toString(Symbols, TS, G.CallTuple) +
             " (folded answer)";
    return TermWriter::toString(Symbols, TS, G.Answers[N.AnswerIdx]);
  };
  auto ClauseLabel = [&](const ProofNode &N) {
    if (N.SubgoalIdx >= Entries.size())
      return std::string();
    const AbsInterp::Entry &G = *Entries[N.SubgoalIdx];
    return "clause " + std::to_string(N.ClauseIdx + 1) + " of " +
           Symbols.name(G.Pred.Sym) + "/" + std::to_string(G.Pred.Arity);
  };

  std::string Out = "why " + Name;
  if (Arity > 0)
    Out += " is ground in argument " + std::to_string(Arg + 1) +
           " (depth-" + std::to_string(Opts.Depth) + " abstraction)";
  Out += " on success (witness: answer pattern " +
         std::to_string(Witness + 1) + " of " +
         std::to_string(E->Answers.size()) + "):\n";
  Out += renderProofTree(Tree, Label, ClauseLabel);
  return Out;
}
