//===- DepthK.h - Depth-k groundness analyzer -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5's non-enumerative groundness analysis: a tabled abstract
/// interpretation over the depth-k term domain. Call patterns and answer
/// patterns are abstract argument tuples (cut at depth k); clause bodies
/// are executed left-to-right with abstract unification, and the whole
/// table is driven to a global fixpoint. Table 4 reports this analysis on
/// the Table 1 benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_DEPTHK_DEPTHK_H
#define LPA_DEPTHK_DEPTHK_H

#include "depthk/AbstractDomain.h"
#include "engine/Database.h"
#include "obs/Metrics.h"
#include "obs/Sampler.h"
#include "obs/Trace.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lpa {

/// Per-predicate result of the depth-k analysis.
struct DepthKPred {
  std::string Name;
  uint32_t Arity = 0;
  /// Rendered abstract answer patterns of the open call, e.g.
  /// "qsort($gamma,$gamma)".
  std::vector<std::string> AnswerPatterns;
  /// Rendered distinct call patterns.
  std::vector<std::string> CallPatterns;
  /// Argument is ground (only gamma/constants) in every answer pattern.
  std::vector<uint8_t> GroundOnSuccess;
  bool CanSucceed = false;
};

/// Full result with the usual phase metrics.
struct DepthKResult {
  std::vector<DepthKPred> Predicates;

  double PreprocSeconds = 0;
  double AnalysisSeconds = 0;
  double CollectSeconds = 0;
  double totalSeconds() const {
    return PreprocSeconds + AnalysisSeconds + CollectSeconds;
  }

  size_t TableSpaceBytes = 0;
  uint64_t NumCallPatterns = 0;
  uint64_t NumAnswers = 0;
  uint64_t FixpointRounds = 0; ///< Producer (re-)runs of the worklist.
  uint64_t Widenings = 0;      ///< Answer-set widenings applied.

  /// True when Options::MaxProducerRuns stopped the fixpoint short and the
  /// caller opted into AllowIncomplete: the tables are a possibly-strict
  /// subset of the abstract fixpoint, not the fixpoint itself.
  bool Incomplete = false;

  /// \name Justification statistics (Options::RecordProvenance); all zero
  /// when recording was off. Premise validation is widening-tolerant — a
  /// premise pointing into a folded answer set counts as valid when the
  /// entry carries the ProvFoldedClause marker — so DanglingPremises must
  /// still be 0.
  /// @{
  uint64_t JustifiedAnswers = 0;
  uint64_t JustificationPremises = 0;
  uint64_t DanglingPremises = 0;
  /// @}

  const DepthKPred *find(const std::string &Name, uint32_t Arity) const;
};

/// Runs the depth-k groundness analysis.
class DepthKAnalyzer {
public:
  struct Options {
    unsigned Depth = 2; ///< k: maximum abstract term depth.
    /// Widening thresholds (Section 6: on-the-fly approximation). An
    /// entry whose answers outgrow the first bound collapses to their
    /// least general generalization; a predicate with more call patterns
    /// than the second routes further calls to its open pattern.
    size_t MaxAnswersPerCall = 16;
    size_t MaxCallsPerPred = 32;

    /// Resource budget on producer (re-)runs; 0 = unlimited. Unlike the
    /// widenings above (which over-approximate and stay sound), hitting
    /// this bound truncates the fixpoint: analyze() then fails unless
    /// AllowIncomplete accepts the partial tables (Result.Incomplete set).
    /// The depth-k analogue of Solver::Options::MaxDepth.
    uint64_t MaxProducerRuns = 0;
    bool AllowIncomplete = false;

    /// Record a justification (clause index + consumed table answers) for
    /// every abstract answer pattern. Widening folds answer sets, so the
    /// folded pattern's justification is the ProvFoldedClause sentinel:
    /// derivations below a widening point are deliberately dropped rather
    /// than misattributed. Null-cost when off.
    bool RecordProvenance = false;

    /// Observability (both optional, caller-owned): the tracer sees
    /// subgoal/answer events from the abstract interpreter plus the
    /// transform/evaluate/collect phase spans; the registry receives
    /// per-predicate entry/answer counts, table bytes, and the
    /// producer-run / widening counters.
    Tracer *Trace = nullptr;
    MetricsRegistry *Metrics = nullptr;

    /// Sampling-profiler cursor (optional, caller-owned). The abstract
    /// interpreter has its own worklist rather than a Solver, so it
    /// publishes its entry (re-)runs as cursor frames itself; a background
    /// Sampler then profiles depth-k jobs the same way as SLG jobs.
    EvalCursor *Cursor = nullptr;
  };

  explicit DepthKAnalyzer(SymbolTable &Symbols)
      : DepthKAnalyzer(Symbols, Options()) {}
  DepthKAnalyzer(SymbolTable &Symbols, Options Opts)
      : Symbols(Symbols), Opts(Opts) {}

  /// Analyzes Prolog source text.
  ErrorOr<DepthKResult> analyze(std::string_view Source);

  /// Explains why argument \p Arg (0-based) of \p Pred/\p Arity is ground
  /// on success in the depth-k abstraction: re-runs the fixpoint with
  /// provenance recording, picks an answer pattern of the open call whose
  /// Arg is abstractly ground, and renders its justification as a proof
  /// tree over the concrete program's clauses. Widened entries render a
  /// "[folded: ...]" marker where derivations were dropped. Fails when the
  /// predicate is unknown or no answer pattern grounds the argument.
  ErrorOr<std::string> explain(std::string_view Source, std::string_view Pred,
                               uint32_t Arity, uint32_t Arg);

private:
  SymbolTable &Symbols;
  Options Opts;
};

} // namespace lpa

#endif // LPA_DEPTHK_DEPTHK_H
