//===- Builtins.cpp - Builtin predicate classification ----------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Builtins.h"

using namespace lpa;

BuiltinTable::BuiltinTable(SymbolTable &Symbols) {
  auto Add = [&](const char *Name, uint32_t Arity, BuiltinKind Kind) {
    Map.emplace(key(Symbols.intern(Name), Arity), Kind);
  };
  Add("true", 0, BuiltinKind::True);
  Add("fail", 0, BuiltinKind::Fail);
  Add("false", 0, BuiltinKind::Fail);
  Add("!", 0, BuiltinKind::Cut);
  Add("=", 2, BuiltinKind::Unify);
  Add("\\=", 2, BuiltinKind::NotUnify);
  Add("==", 2, BuiltinKind::Equal);
  Add("\\==", 2, BuiltinKind::NotEqual);
  Add("var", 1, BuiltinKind::Var);
  Add("nonvar", 1, BuiltinKind::NonVar);
  Add("atom", 1, BuiltinKind::Atom);
  Add("integer", 1, BuiltinKind::Integer);
  Add("atomic", 1, BuiltinKind::Atomic);
  Add("compound", 1, BuiltinKind::Compound);
  Add("is", 2, BuiltinKind::Is);
  Add("<", 2, BuiltinKind::Lt);
  Add("=<", 2, BuiltinKind::Le);
  Add(">", 2, BuiltinKind::Gt);
  Add(">=", 2, BuiltinKind::Ge);
  Add("=:=", 2, BuiltinKind::ArithEq);
  Add("=\\=", 2, BuiltinKind::ArithNe);
  Add("\\+", 1, BuiltinKind::Not);
  Add("not", 1, BuiltinKind::Not);
  Add(";", 2, BuiltinKind::Disj);
  Add("->", 2, BuiltinKind::IfThen);
  Add("call", 1, BuiltinKind::Call);
  Add("between", 3, BuiltinKind::Between);
  Add("functor", 3, BuiltinKind::Functor);
  Add("arg", 3, BuiltinKind::Arg);
  Add("=..", 2, BuiltinKind::Univ);
  IffSym = Symbols.intern("iff");
}

BuiltinKind BuiltinTable::classify(SymbolId Sym, uint32_t Arity) const {
  if (Sym == IffSym && Arity >= 1)
    return BuiltinKind::Iff;
  auto It = Map.find(key(Sym, Arity));
  return It == Map.end() ? BuiltinKind::None : It->second;
}
