//===- Builtins.h - Builtin predicate classification ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builtin predicates recognized by the solver. Control constructs (cut,
/// negation, disjunction, if-then-else, call/1) are handled inline by the
/// solver; the rest are simple deterministic or finitely nondeterministic
/// tests. iff/N is the paper's Prop truth-table literal, implemented
/// natively (Section 3.1 / Section 4 "Efficiency Issues").
///
//===----------------------------------------------------------------------===//

#ifndef LPA_ENGINE_BUILTINS_H
#define LPA_ENGINE_BUILTINS_H

#include "term/Symbol.h"

#include <cstdint>
#include <unordered_map>

namespace lpa {

/// Identifies a builtin.
enum class BuiltinKind : uint8_t {
  None,
  True,      ///< true/0
  Fail,      ///< fail/0, false/0
  Cut,       ///< !/0
  Unify,     ///< =/2
  NotUnify,  ///< \=/2
  Equal,     ///< ==/2
  NotEqual,  ///< \==/2
  Var,       ///< var/1
  NonVar,    ///< nonvar/1
  Atom,      ///< atom/1
  Integer,   ///< integer/1
  Atomic,    ///< atomic/1
  Compound,  ///< compound/1
  Is,        ///< is/2
  Lt,        ///< </2 (arithmetic)
  Le,        ///< =</2
  Gt,        ///< >/2
  Ge,        ///< >=/2
  ArithEq,   ///< =:=/2
  ArithNe,   ///< =\=/2
  Not,       ///< \+/1 and not/1
  Disj,      ///< ;/2 (also carries if-then-else)
  IfThen,    ///< ->/2 (bare if-then)
  Call,      ///< call/1
  Iff,       ///< iff/N, N >= 1 (Prop truth table)
  Between,   ///< between/3 (workload generators in benches)
  Functor,   ///< functor/3
  Arg,       ///< arg/3
  Univ,      ///< =../2
};

/// Maps (symbol, arity) to BuiltinKind for one SymbolTable.
class BuiltinTable {
public:
  explicit BuiltinTable(SymbolTable &Symbols);

  /// Classifies a goal with functor \p Sym and arity \p Arity.
  BuiltinKind classify(SymbolId Sym, uint32_t Arity) const;

private:
  std::unordered_map<uint64_t, BuiltinKind> Map;
  SymbolId IffSym;

  static uint64_t key(SymbolId Sym, uint32_t Arity) {
    return (uint64_t(Sym) << 32) | Arity;
  }
};

} // namespace lpa

#endif // LPA_ENGINE_BUILTINS_H
