//===- Database.cpp - Dynamic clause database -------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Database.h"

#include "reader/Parser.h"
#include "term/TermCopy.h"
#include "term/TermWriter.h"
#include "term/Variant.h"

#include <cassert>

using namespace lpa;

namespace {

/// Canonical key of a whole clause, with head/body variable sharing intact:
/// the head and flattened body goals are wrapped in a scratch '$clause'
/// struct so canonicalKey numbers variables across all of them in one pass
/// (equal keys <=> the clauses are variants). The wrapper cells are undone
/// before returning, so this works on the live clause store too.
std::string clauseVariantKey(TermStore &Store, SymbolId WrapSym, TermRef Head,
                             std::span<const TermRef> Body) {
  auto M = Store.mark();
  std::vector<TermRef> Args;
  Args.reserve(Body.size() + 1);
  Args.push_back(Head);
  Args.insert(Args.end(), Body.begin(), Body.end());
  TermRef Wrapped = Store.mkStruct(WrapSym, Args);
  std::string Key = canonicalKey(Store, Wrapped);
  Store.undoTo(M);
  return Key;
}

} // namespace

void lpa::flattenConjunction(const TermStore &Store,
                             const SymbolTable &Symbols, TermRef Body,
                             std::vector<TermRef> &Goals) {
  TermRef Cur = Store.deref(Body);
  while (Store.tag(Cur) == TermTag::Struct &&
         Store.symbol(Cur) == Symbols.Comma && Store.arity(Cur) == 2) {
    flattenConjunction(Store, Symbols, Store.arg(Cur, 0), Goals);
    Cur = Store.deref(Store.arg(Cur, 1));
  }
  // 'true' goals contribute nothing.
  if (Store.tag(Cur) == TermTag::Atom && Store.symbol(Cur) == Symbols.True)
    return;
  Goals.push_back(Cur);
}

uint64_t Database::firstArgKey(const TermStore &Store, TermRef Arg) {
  TermRef D = Store.deref(Arg);
  switch (Store.tag(D)) {
  case TermTag::Ref:
    return 0;
  case TermTag::Atom:
    return (uint64_t(1) << 62) | Store.symbol(D);
  case TermTag::Int:
    return (uint64_t(2) << 62) |
           (static_cast<uint64_t>(Store.intValue(D)) & ((uint64_t(1) << 62) - 1));
  case TermTag::Struct:
    return (uint64_t(3) << 62) | (uint64_t(Store.arity(D)) << 32) |
           Store.symbol(D);
  }
  return 0;
}

ErrorOr<bool> Database::handleTableSpec(const TermStore &Src, TermRef Spec) {
  TermRef D = Src.deref(Spec);
  // A list of specs.
  while (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Cons &&
         Src.arity(D) == 2) {
    auto Res = handleTableSpec(Src, Src.arg(D, 0));
    if (!Res)
      return Res;
    D = Src.deref(Src.arg(D, 1));
  }
  if (Src.tag(D) == TermTag::Atom && Src.symbol(D) == Symbols.Nil)
    return true;
  // p/N.
  SymbolId Slash = Symbols.intern("/");
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Slash &&
      Src.arity(D) == 2) {
    TermRef NameT = Src.deref(Src.arg(D, 0));
    TermRef ArityT = Src.deref(Src.arg(D, 1));
    if (Src.tag(NameT) == TermTag::Atom && Src.tag(ArityT) == TermTag::Int) {
      setTabled(Src.symbol(NameT),
                static_cast<uint32_t>(Src.intValue(ArityT)));
      return true;
    }
  }
  return Diagnostic("malformed table declaration");
}

ErrorOr<bool> Database::checkTableSpec(const TermStore &Src,
                                       TermRef Spec) const {
  TermRef D = Src.deref(Spec);
  while (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Cons &&
         Src.arity(D) == 2) {
    auto Res = checkTableSpec(Src, Src.arg(D, 0));
    if (!Res)
      return Res;
    D = Src.deref(Src.arg(D, 1));
  }
  if (Src.tag(D) == TermTag::Atom && Src.symbol(D) == Symbols.Nil)
    return true;
  SymbolId Slash = Symbols.lookup("/");
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Slash &&
      Src.arity(D) == 2) {
    TermRef NameT = Src.deref(Src.arg(D, 0));
    TermRef ArityT = Src.deref(Src.arg(D, 1));
    if (Src.tag(NameT) == TermTag::Atom && Src.tag(ArityT) == TermTag::Int)
      return true;
  }
  return Diagnostic("malformed table declaration");
}

ErrorOr<bool> Database::validateClause(const TermStore &Src,
                                       TermRef ClauseTerm) const {
  TermRef D = Src.deref(ClauseTerm);
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Neck &&
      Src.arity(D) == 1) {
    TermRef Dir = Src.deref(Src.arg(D, 0));
    SymbolId Table = Symbols.lookup("table");
    if (Src.tag(Dir) == TermTag::Struct && Src.symbol(Dir) == Table)
      return checkTableSpec(Src, Src.arg(Dir, 0));
    return true; // Unknown directives are ignored at load time too.
  }
  TermRef Head = D;
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Neck &&
      Src.arity(D) == 2)
    Head = Src.deref(Src.arg(D, 0));
  TermTag HT = Src.tag(Head);
  if (HT != TermTag::Atom && HT != TermTag::Struct)
    return Diagnostic("clause head must be an atom or compound term");
  return true;
}

ErrorOr<bool> Database::handleDirective(const TermStore &Src, TermRef Body) {
  TermRef D = Src.deref(Body);
  SymbolId Table = Symbols.intern("table");
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Table)
    return handleTableSpec(Src, Src.arg(D, 0));
  // Other directives are ignored.
  return true;
}

ErrorOr<bool> Database::loadClause(const TermStore &Src, TermRef ClauseTerm) {
  TermRef D = Src.deref(ClauseTerm);

  // Directive ":- Body."
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Neck &&
      Src.arity(D) == 1)
    return handleDirective(Src, Src.arg(D, 0));

  // Copy the whole clause into our store first so head and body share
  // variables.
  TermRef Local = copyTerm(Src, D, ClauseStore);

  TermRef Head = Local;
  TermRef Body = InvalidTerm;
  if (ClauseStore.tag(Local) == TermTag::Struct &&
      ClauseStore.symbol(Local) == Symbols.Neck &&
      ClauseStore.arity(Local) == 2) {
    Head = ClauseStore.deref(ClauseStore.arg(Local, 0));
    Body = ClauseStore.deref(ClauseStore.arg(Local, 1));
  }

  TermTag HT = ClauseStore.tag(Head);
  if (HT != TermTag::Atom && HT != TermTag::Struct)
    return Diagnostic("clause head must be an atom or compound term");

  PredKey Key{ClauseStore.symbol(Head), ClauseStore.arity(Head)};
  auto [It, Inserted] = Preds.try_emplace(Key);
  Predicate &P = It->second;
  if (Inserted) {
    P.Key = Key;
    PredOrder.push_back(Key);
    auto TD = TabledDecls.find(Key);
    if (TD != TabledDecls.end())
      P.Tabled = true;
  }

  Clause C;
  C.Head = Head;
  if (Body != InvalidTerm)
    flattenConjunction(ClauseStore, Symbols, Body, C.Body);
  C.FirstArgKey =
      Key.Arity == 0 ? 0 : firstArgKey(ClauseStore, ClauseStore.arg(Head, 0));
  P.Clauses.push_back(std::move(C));
  noteMutation(Key);
  return true;
}

ErrorOr<bool> Database::loadProgram(const TermStore &Src,
                                    const std::vector<TermRef> &Clauses) {
  for (TermRef C : Clauses) {
    auto Res = loadClause(Src, C);
    if (!Res)
      return Res;
  }
  return true;
}

ErrorOr<bool> Database::consult(std::string_view Text) {
  // Phase 1: parse the whole text. A syntax error anywhere aborts before
  // anything is stored.
  TermStore Scratch;
  Parser P(Symbols, Scratch, Text);
  std::vector<TermRef> Clauses;
  while (true) {
    auto Clause = P.nextClause();
    if (!Clause)
      return Clause.getError();
    if (*Clause == InvalidTerm)
      break;
    Clauses.push_back(*Clause);
  }
  // Phase 2: validate every clause shape without mutating the database.
  for (TermRef C : Clauses) {
    auto Res = validateClause(Scratch, C);
    if (!Res)
      return Res;
  }
  // Phase 3: loading cannot fail now — every loadClause failure mode was
  // checked in phase 2.
  for (TermRef C : Clauses) {
    auto Res = loadClause(Scratch, C);
    assert(Res && "validated clause failed to load");
    (void)Res;
  }
  return true;
}

ErrorOr<size_t> Database::retract(std::string_view Text) {
  TermStore Scratch;
  Parser P(Symbols, Scratch, Text);
  auto First = P.nextClause();
  if (!First)
    return First.getError();
  if (*First == InvalidTerm)
    return Diagnostic("retract: expected a clause");
  auto Extra = P.nextClause();
  if (!Extra)
    return Extra.getError();
  if (*Extra != InvalidTerm)
    return Diagnostic("retract: expected exactly one clause");

  TermRef D = Scratch.deref(*First);
  if (Scratch.tag(D) == TermTag::Struct && Scratch.symbol(D) == Symbols.Neck &&
      Scratch.arity(D) == 1)
    return Diagnostic("retract: cannot retract a directive");

  TermRef Head = D;
  TermRef Body = InvalidTerm;
  if (Scratch.tag(D) == TermTag::Struct && Scratch.symbol(D) == Symbols.Neck &&
      Scratch.arity(D) == 2) {
    Head = Scratch.deref(Scratch.arg(D, 0));
    Body = Scratch.deref(Scratch.arg(D, 1));
  }
  TermTag HT = Scratch.tag(Head);
  if (HT != TermTag::Atom && HT != TermTag::Struct)
    return Diagnostic("clause head must be an atom or compound term");

  PredKey Key{Scratch.symbol(Head), Scratch.arity(Head)};
  auto It = Preds.find(Key);
  if (It == Preds.end())
    return size_t(0);

  // Match against stored clauses by whole-clause variant key. The pattern's
  // body is flattened exactly the way loadClause flattened stored bodies,
  // so e.g. "p :- q, true, r." retracts a clause loaded from the same text.
  std::vector<TermRef> Goals;
  if (Body != InvalidTerm)
    flattenConjunction(Scratch, Symbols, Body, Goals);
  SymbolId WrapSym = Symbols.intern("$clause");
  std::string Pattern = clauseVariantKey(Scratch, WrapSym, Head, Goals);

  Predicate &Pr = It->second;
  for (size_t I = 0; I < Pr.Clauses.size(); ++I) {
    const Clause &C = Pr.Clauses[I];
    if (clauseVariantKey(ClauseStore, WrapSym, C.Head, C.Body) == Pattern) {
      Pr.Clauses.erase(Pr.Clauses.begin() + I);
      noteMutation(Key);
      return size_t(1);
    }
  }
  return size_t(0);
}

size_t Database::retractAll(PredKey Key) {
  auto It = Preds.find(Key);
  if (It == Preds.end())
    return 0;
  size_t N = It->second.Clauses.size();
  It->second.Clauses.clear();
  if (N)
    noteMutation(Key);
  return N;
}

std::vector<PredKey> Database::predsChangedSince(uint64_t Rev) const {
  std::vector<PredKey> Changed;
  for (const auto &[Key, R] : PredRevisions)
    if (R > Rev)
      Changed.push_back(Key);
  return Changed;
}

void Database::setTabled(SymbolId Sym, uint32_t Arity) {
  PredKey Key{Sym, Arity};
  TabledDecls[Key] = true;
  auto It = Preds.find(Key);
  if (It != Preds.end())
    It->second.Tabled = true;
}

void Database::tableAllPredicates() {
  for (auto &KV : Preds) {
    KV.second.Tabled = true;
    TabledDecls[KV.first] = true;
  }
}

const Predicate *Database::lookup(PredKey Key) const {
  LkLookups.fetch_add(1, std::memory_order_relaxed);
  auto It = Preds.find(Key);
  if (It == Preds.end()) {
    LkMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &It->second;
}

bool Database::isTabled(PredKey Key) const {
  auto It = TabledDecls.find(Key);
  return It != TabledDecls.end() && It->second;
}

size_t Database::numClauses() const {
  size_t N = 0;
  for (const auto &KV : Preds)
    N += KV.second.Clauses.size();
  return N;
}
