//===- Database.cpp - Dynamic clause database -------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Database.h"

#include "reader/Parser.h"
#include "term/TermCopy.h"
#include "term/TermWriter.h"

using namespace lpa;

void lpa::flattenConjunction(const TermStore &Store,
                             const SymbolTable &Symbols, TermRef Body,
                             std::vector<TermRef> &Goals) {
  TermRef Cur = Store.deref(Body);
  while (Store.tag(Cur) == TermTag::Struct &&
         Store.symbol(Cur) == Symbols.Comma && Store.arity(Cur) == 2) {
    flattenConjunction(Store, Symbols, Store.arg(Cur, 0), Goals);
    Cur = Store.deref(Store.arg(Cur, 1));
  }
  // 'true' goals contribute nothing.
  if (Store.tag(Cur) == TermTag::Atom && Store.symbol(Cur) == Symbols.True)
    return;
  Goals.push_back(Cur);
}

uint64_t Database::firstArgKey(const TermStore &Store, TermRef Arg) {
  TermRef D = Store.deref(Arg);
  switch (Store.tag(D)) {
  case TermTag::Ref:
    return 0;
  case TermTag::Atom:
    return (uint64_t(1) << 62) | Store.symbol(D);
  case TermTag::Int:
    return (uint64_t(2) << 62) |
           (static_cast<uint64_t>(Store.intValue(D)) & ((uint64_t(1) << 62) - 1));
  case TermTag::Struct:
    return (uint64_t(3) << 62) | (uint64_t(Store.arity(D)) << 32) |
           Store.symbol(D);
  }
  return 0;
}

ErrorOr<bool> Database::handleTableSpec(const TermStore &Src, TermRef Spec) {
  TermRef D = Src.deref(Spec);
  // A list of specs.
  while (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Cons &&
         Src.arity(D) == 2) {
    auto Res = handleTableSpec(Src, Src.arg(D, 0));
    if (!Res)
      return Res;
    D = Src.deref(Src.arg(D, 1));
  }
  if (Src.tag(D) == TermTag::Atom && Src.symbol(D) == Symbols.Nil)
    return true;
  // p/N.
  SymbolId Slash = Symbols.intern("/");
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Slash &&
      Src.arity(D) == 2) {
    TermRef NameT = Src.deref(Src.arg(D, 0));
    TermRef ArityT = Src.deref(Src.arg(D, 1));
    if (Src.tag(NameT) == TermTag::Atom && Src.tag(ArityT) == TermTag::Int) {
      setTabled(Src.symbol(NameT),
                static_cast<uint32_t>(Src.intValue(ArityT)));
      return true;
    }
  }
  return Diagnostic("malformed table declaration");
}

ErrorOr<bool> Database::handleDirective(const TermStore &Src, TermRef Body) {
  TermRef D = Src.deref(Body);
  SymbolId Table = Symbols.intern("table");
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Table)
    return handleTableSpec(Src, Src.arg(D, 0));
  // Other directives are ignored.
  return true;
}

ErrorOr<bool> Database::loadClause(const TermStore &Src, TermRef ClauseTerm) {
  TermRef D = Src.deref(ClauseTerm);

  // Directive ":- Body."
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Neck &&
      Src.arity(D) == 1)
    return handleDirective(Src, Src.arg(D, 0));

  // Copy the whole clause into our store first so head and body share
  // variables.
  TermRef Local = copyTerm(Src, D, ClauseStore);

  TermRef Head = Local;
  TermRef Body = InvalidTerm;
  if (ClauseStore.tag(Local) == TermTag::Struct &&
      ClauseStore.symbol(Local) == Symbols.Neck &&
      ClauseStore.arity(Local) == 2) {
    Head = ClauseStore.deref(ClauseStore.arg(Local, 0));
    Body = ClauseStore.deref(ClauseStore.arg(Local, 1));
  }

  TermTag HT = ClauseStore.tag(Head);
  if (HT != TermTag::Atom && HT != TermTag::Struct)
    return Diagnostic("clause head must be an atom or compound term");

  PredKey Key{ClauseStore.symbol(Head), ClauseStore.arity(Head)};
  auto [It, Inserted] = Preds.try_emplace(Key);
  Predicate &P = It->second;
  if (Inserted) {
    P.Key = Key;
    PredOrder.push_back(Key);
    auto TD = TabledDecls.find(Key);
    if (TD != TabledDecls.end())
      P.Tabled = true;
  }

  Clause C;
  C.Head = Head;
  if (Body != InvalidTerm)
    flattenConjunction(ClauseStore, Symbols, Body, C.Body);
  C.FirstArgKey =
      Key.Arity == 0 ? 0 : firstArgKey(ClauseStore, ClauseStore.arg(Head, 0));
  P.Clauses.push_back(std::move(C));
  return true;
}

ErrorOr<bool> Database::loadProgram(const TermStore &Src,
                                    const std::vector<TermRef> &Clauses) {
  for (TermRef C : Clauses) {
    auto Res = loadClause(Src, C);
    if (!Res)
      return Res;
  }
  return true;
}

ErrorOr<bool> Database::consult(std::string_view Text) {
  TermStore Scratch;
  Parser P(Symbols, Scratch, Text);
  while (true) {
    auto Clause = P.nextClause();
    if (!Clause)
      return Clause.getError();
    if (*Clause == InvalidTerm)
      return true;
    auto Res = loadClause(Scratch, *Clause);
    if (!Res)
      return Res;
  }
}

void Database::setTabled(SymbolId Sym, uint32_t Arity) {
  PredKey Key{Sym, Arity};
  TabledDecls[Key] = true;
  auto It = Preds.find(Key);
  if (It != Preds.end())
    It->second.Tabled = true;
}

void Database::tableAllPredicates() {
  for (auto &KV : Preds) {
    KV.second.Tabled = true;
    TabledDecls[KV.first] = true;
  }
}

const Predicate *Database::lookup(PredKey Key) const {
  LkLookups.fetch_add(1, std::memory_order_relaxed);
  auto It = Preds.find(Key);
  if (It == Preds.end()) {
    LkMisses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &It->second;
}

bool Database::isTabled(PredKey Key) const {
  auto It = TabledDecls.find(Key);
  return It != TabledDecls.end() && It->second;
}

size_t Database::numClauses() const {
  size_t N = 0;
  for (const auto &KV : Preds)
    N += KV.second.Clauses.size();
  return N;
}
