//===- Database.h - Dynamic clause database ---------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic clause database. The paper's analyzers load transformed
/// programs as *dynamic code* (XSB's assert) rather than compiling them,
/// because preprocessing time dominates total analysis time; our database
/// is exactly that: clause terms held in a store, resolved by renaming.
/// Predicates may be marked tabled, either programmatically or with a
/// ":- table p/N." directive in the source.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_ENGINE_DATABASE_H
#define LPA_ENGINE_DATABASE_H

#include "support/Error.h"
#include "term/Symbol.h"
#include "term/TermStore.h"

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lpa {

/// Identifies a predicate by functor symbol and arity.
struct PredKey {
  SymbolId Sym;
  uint32_t Arity;

  bool operator==(const PredKey &O) const {
    return Sym == O.Sym && Arity == O.Arity;
  }
};

struct PredKeyHash {
  size_t operator()(const PredKey &K) const {
    return std::hash<uint64_t>()((uint64_t(K.Sym) << 32) | K.Arity);
  }
};

/// One stored clause. Head and Body live in the database's own store.
/// FirstArgKey enables cheap clause filtering on the first argument's
/// principal functor (0 when the first argument is a variable or the
/// predicate is atomic).
struct Clause {
  TermRef Head;
  std::vector<TermRef> Body; ///< Flattened conjunction of goals.
  uint64_t FirstArgKey;      ///< 0 = matches anything.
};

/// All clauses of one predicate.
struct Predicate {
  PredKey Key;
  std::vector<Clause> Clauses;
  bool Tabled = false;
};

/// A set of predicates with their clauses, plus tabling declarations.
class Database {
public:
  explicit Database(SymbolTable &Symbols) : Symbols(Symbols) {}

  /// Loads one clause term (fact, Head :- Body rule, or directive) that
  /// lives in \p Src. Directives handled: ":- table p/N." (single spec or
  /// list). Unknown directives are ignored, matching a lenient toplevel.
  ErrorOr<bool> loadClause(const TermStore &Src, TermRef ClauseTerm);

  /// Loads every clause of \p Clauses (in order).
  ErrorOr<bool> loadProgram(const TermStore &Src,
                            const std::vector<TermRef> &Clauses);

  /// Parses and loads Prolog source text. All-or-nothing: the whole text is
  /// parsed and validated before the first clause is stored, so a syntax or
  /// shape error mid-program leaves the database exactly as it was (a warm
  /// session must never end up with a half-loaded clause prefix).
  ErrorOr<bool> consult(std::string_view Text);

  /// Parses \p Text as exactly one clause (fact or rule; directives are
  /// rejected) and removes the first stored clause that is a variant of it
  /// (identical up to variable renaming, with head/body variable sharing
  /// respected). \returns the number of clauses removed (0 or 1).
  ErrorOr<size_t> retract(std::string_view Text);

  /// Removes every clause of \p Key. \returns the number removed. The
  /// predicate stays defined (with zero clauses), so calls to it fail
  /// rather than count as undefined-predicate misses.
  size_t retractAll(PredKey Key);

  /// Monotone revision clock. Every clause assert/retract bumps the global
  /// counter and stamps the affected predicate with it; completed tables
  /// record the revision they were derived under, and the incremental
  /// invalidation sweep asks which predicates changed since.
  uint64_t globalRevision() const { return RevCounter; }

  /// \returns every predicate whose clauses changed strictly after
  /// revision \p Rev (in no particular order).
  std::vector<PredKey> predsChangedSince(uint64_t Rev) const;

  /// Marks \p Sym / \p Arity as tabled.
  void setTabled(SymbolId Sym, uint32_t Arity);

  /// Marks every currently-defined predicate as tabled. The abstract
  /// programs of the paper's analyses table all predicates.
  void tableAllPredicates();

  /// \returns the predicate entry, or nullptr if it has no clauses.
  const Predicate *lookup(PredKey Key) const;

  /// Clause-index traffic: every lookup() is a hit on the predicate index;
  /// a miss is a call to an undefined predicate (which fails without
  /// touching any clause). Cheap enough to count unconditionally; the
  /// observability layer exports them as db_lookups / db_lookup_misses.
  /// Relaxed atomics: one database serves every intra-query eval worker
  /// concurrently, and pure counters are the only mutation lookup() does.
  struct LookupStats {
    uint64_t Lookups = 0; ///< Total predicate-index probes.
    uint64_t Misses = 0;  ///< Probes that found no predicate.
  };
  LookupStats lookupStats() const {
    return {LkLookups.load(std::memory_order_relaxed),
            LkMisses.load(std::memory_order_relaxed)};
  }
  void resetLookupStats() {
    LkLookups.store(0, std::memory_order_relaxed);
    LkMisses.store(0, std::memory_order_relaxed);
  }

  /// \returns true if the predicate is declared tabled.
  bool isTabled(PredKey Key) const;

  /// Iterates over all predicates in definition order.
  const std::vector<PredKey> &predicates() const { return PredOrder; }

  /// The store holding clause terms.
  const TermStore &store() const { return ClauseStore; }

  SymbolTable &symbols() { return Symbols; }
  const SymbolTable &symbols() const { return Symbols; }

  /// Number of clauses across all predicates.
  size_t numClauses() const;

  /// Computes the first-argument filter key of a call with first argument
  /// \p Arg (0 if unbound).
  static uint64_t firstArgKey(const TermStore &Store, TermRef Arg);

private:
  ErrorOr<bool> handleDirective(const TermStore &Src, TermRef Body);
  ErrorOr<bool> handleTableSpec(const TermStore &Src, TermRef Spec);
  /// Non-mutating counterparts of loadClause's failure checks, used by the
  /// two-phase consult: everything that can make loadClause fail must be
  /// caught here, before any clause is stored.
  ErrorOr<bool> validateClause(const TermStore &Src, TermRef ClauseTerm) const;
  ErrorOr<bool> checkTableSpec(const TermStore &Src, TermRef Spec) const;
  /// Stamps \p Key with a fresh global revision.
  void noteMutation(PredKey Key) { PredRevisions[Key] = ++RevCounter; }

  SymbolTable &Symbols;
  TermStore ClauseStore;
  std::unordered_map<PredKey, Predicate, PredKeyHash> Preds;
  std::vector<PredKey> PredOrder;
  /// Tabling declarations may precede clauses, so they are kept separately.
  std::unordered_map<PredKey, bool, PredKeyHash> TabledDecls;
  /// Revision clock (see globalRevision()). Tabling declarations do not
  /// bump it: they change evaluation strategy, not the program's meaning.
  uint64_t RevCounter = 0;
  std::unordered_map<PredKey, uint64_t, PredKeyHash> PredRevisions;
  /// Mutable: lookup() is const but still counted (atomically — workers
  /// share the database).
  mutable std::atomic<uint64_t> LkLookups{0};
  mutable std::atomic<uint64_t> LkMisses{0};
};

/// Flattens a (possibly nested) ','/2 conjunction into a goal list.
void flattenConjunction(const TermStore &Store, const SymbolTable &Symbols,
                        TermRef Body, std::vector<TermRef> &Goals);

} // namespace lpa

#endif // LPA_ENGINE_DATABASE_H
