//===- Solver.cpp - Tabled SLD resolution engine ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "engine/Solver.h"

#include "reader/Parser.h"
#include "term/TermCopy.h"
#include "term/TermWriter.h"
#include "term/Unify.h"
#include "term/Variant.h"

#include <algorithm>
#include <chrono>

using namespace lpa;

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

std::optional<int64_t> lpa::evalArith(const TermStore &Store,
                                      const SymbolTable &Symbols, TermRef T) {
  T = Store.deref(T);
  switch (Store.tag(T)) {
  case TermTag::Int:
    return Store.intValue(T);
  case TermTag::Ref:
  case TermTag::Atom:
    return std::nullopt;
  case TermTag::Struct:
    break;
  }

  const std::string &Name = Symbols.name(Store.symbol(T));
  uint32_t Arity = Store.arity(T);
  auto Eval = [&](uint32_t I) {
    return evalArith(Store, Symbols, Store.arg(T, I));
  };

  if (Arity == 1) {
    auto A = Eval(0);
    if (!A)
      return std::nullopt;
    if (Name == "-")
      return -*A;
    if (Name == "+")
      return *A;
    if (Name == "abs")
      return *A < 0 ? -*A : *A;
    return std::nullopt;
  }
  if (Arity != 2)
    return std::nullopt;
  auto A = Eval(0), B = Eval(1);
  if (!A || !B)
    return std::nullopt;
  if (Name == "+")
    return *A + *B;
  if (Name == "-")
    return *A - *B;
  if (Name == "*")
    return *A * *B;
  if (Name == "//" || Name == "/") {
    if (*B == 0)
      return std::nullopt;
    return *A / *B;
  }
  if (Name == "mod") {
    if (*B == 0)
      return std::nullopt;
    int64_t M = *A % *B;
    // Prolog's mod follows the divisor's sign.
    if (M != 0 && ((M < 0) != (*B < 0)))
      M += *B;
    return M;
  }
  if (Name == "rem") {
    if (*B == 0)
      return std::nullopt;
    return *A % *B;
  }
  if (Name == "min")
    return std::min(*A, *B);
  if (Name == "max")
    return std::max(*A, *B);
  if (Name == ">>")
    return *A >> *B;
  if (Name == "<<")
    return *A << *B;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Construction and small helpers
//===----------------------------------------------------------------------===//

namespace {
/// Process-wide default for Options::UseTrieTables; see Solver header.
bool DefaultUseTrieTables = true;
/// Process-wide default for Options::EvalWorkers (0 = serial).
size_t DefaultEvalWorkers = 0;
} // namespace

bool Solver::setDefaultUseTrieTables(bool V) {
  bool Prev = DefaultUseTrieTables;
  DefaultUseTrieTables = V;
  return Prev;
}

bool Solver::defaultUseTrieTables() { return DefaultUseTrieTables; }

size_t Solver::setDefaultEvalWorkers(size_t N) {
  size_t Prev = DefaultEvalWorkers;
  DefaultEvalWorkers = N;
  return Prev;
}

size_t Solver::defaultEvalWorkers() { return DefaultEvalWorkers; }

Solver::Solver(Database &DB) : Solver(DB, Options()) {}

Solver::Solver(Database &DB, Options Opts)
    : DB(DB), Symbols(DB.symbols()), Opts(Opts), Builtins(DB.symbols()) {
  if (this->Opts.RecordProvenance)
    Prov = std::make_unique<ProvenanceArena>();
  if (this->Opts.RecordCosts) {
    OwnedCosts = std::make_unique<CostProfile>();
    Costs = OwnedCosts.get();
  }
  // Intern every symbol evaluation tests up front: the symbol table is
  // shared across parallel eval workers and interning mutates it, so no
  // eval path may intern.
  StateSym = Symbols.intern("$state");
  ArrowSym = Symbols.intern("->");
  if (this->Opts.EvalWorkers > 1) {
    WorkerCursors.reserve(this->Opts.EvalWorkers);
    for (size_t I = 0; I < this->Opts.EvalWorkers; ++I)
      WorkerCursors.push_back(std::make_unique<EvalCursor>());
  }
}

const Solver::GoalNode *Solver::makeGoal(TermRef Goal, const GoalNode *Tail) {
  GoalArena.push_back(std::make_unique<GoalNode>(GoalNode{Goal, Tail}));
  return GoalArena.back().get();
}

const Solver::GoalNode *Solver::makeGoals(const std::vector<TermRef> &Goals,
                                          const GoalNode *Tail) {
  const GoalNode *List = Tail;
  for (size_t I = Goals.size(); I-- > 0;)
    List = makeGoal(Goals[I], List);
  return List;
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

uint64_t Solver::steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t Solver::solve(TermRef Goal, const SolutionFn &OnSolution) {
  // An outermost entry (no producer or completion in flight — reentrant
  // solves from builtins/analyzers share their enclosing query) opens a
  // new query scope: pick its id, re-arm the deadline, and stamp the id
  // into the observability channels.
  if (ProducerStack.empty() && CompletionStack.empty()) {
    CurQueryId = (Query && Query->Id) ? Query->Id : ++QuerySeq;
    DeadlineExpired = false;
    DeadlineTick = 0;
    if (Trace)
      Trace->setQuery(CurQueryId);
    if (Cursor)
      Cursor->setQueryId(CurQueryId);
    if (Costs)
      Costs->beginQuery(CurQueryId);
    // Intra-query parallelism: an outermost conjunction of independent
    // tabled goals is primed in parallel first; the ordinary serial search
    // below then runs entirely against warm tables. primeTables re-checks
    // the full gate (worker count, trie tables, no provenance, >= 2
    // variable-disjoint seeds) and degrades to a no-op when it fails.
    if (Opts.EvalWorkers > 1 && Opts.UseTrieTables &&
        !Opts.RecordProvenance && !Priming) {
      std::vector<TermRef> Seeds;
      collectSpawnSeeds(Goal, Seeds);
      if (Seeds.size() >= 2)
        primeTables(Seeds);
    }
  }
  size_t Count = 0;
  auto Wrapped = [&]() -> bool {
    ++Count;
    return OnSolution ? OnSolution() : false;
  };
  const GoalNode *G = makeGoal(Goal, nullptr);
  solveGoals(G, 0, ++CutCounter, Wrapped);
  // Goal nodes are only reachable during the query; recycle them when no
  // producer is active (i.e. this was an outermost query).
  if (ProducerStack.empty() && CompletionStack.empty()) {
    if (Costs) Costs->endQuery();
    GoalArena.clear();
  }
  return Count;
}

std::vector<TermRef> Solver::solveAll(TermRef Goal, TermStore &Out,
                                      size_t Limit) {
  assert(&Out != &Heap && "snapshots cannot live in the scratch heap");
  std::vector<TermRef> Results;
  solve(Goal, [&]() {
    Results.push_back(copyTerm(Heap, Goal, Out));
    return Results.size() >= Limit;
  });
  return Results;
}

bool Solver::solveOnce(TermRef Goal) {
  return solve(Goal, []() { return true; }) > 0;
}

ErrorOr<size_t> Solver::solveText(std::string_view GoalText,
                                  const SolutionFn &OnSolution) {
  auto Goal = Parser::parseTerm(Symbols, Heap, GoalText);
  if (!Goal)
    return Goal.getError();
  return solve(*Goal, OnSolution);
}

const Subgoal *Solver::findSubgoal(TermRef Call) const {
  if (Opts.UseTrieTables) {
    uint32_t Idx = SubgoalTrie.find(Heap, Call);
    return Idx == TermTrie::NoValue ? nullptr : SubgoalOwned[Idx].get();
  }
  auto It = SubgoalByKey.find(canonicalKey(Heap, Call));
  return It == SubgoalByKey.end() ? nullptr : It->second;
}

TermRef Solver::answerInstance(const Subgoal &SG, size_t I,
                               TermStore &Out) const {
  if (!SG.Factored)
    return copyTerm(Tables, SG.Answers[I], Out);
  // Copy the binding tuple first (one shared renaming keeps sharing
  // between slots), then instantiate the call skeleton through it.
  size_t K = SG.CallVars.size();
  VarRenaming Renaming;
  const TermRef *B = SG.AnswerBindings.data() + I * K;
  std::vector<TermRef> Copies(K);
  for (size_t J = 0; J < K; ++J)
    Copies[J] = copyTerm(Tables, B[J], Out, Renaming);
  for (size_t J = 0; J < K; ++J)
    Renaming.emplace(SG.CallVars[J], Copies[J]);
  return copyTerm(Tables, SG.CallTerm, Out, Renaming);
}

size_t ClauseFrontier::memoryBytes() const {
  size_t Bytes = Store.memoryBytes() + sizeof(ClauseFrontier);
  for (const auto &L : Levels)
    Bytes += L.capacity() * sizeof(TermRef);
  for (const auto &KS : Keys)
    for (const auto &K : KS)
      Bytes += K.capacity() + sizeof(void *) * 2;
  for (const auto &T : LevelTries)
    if (T)
      Bytes += sizeof(TermTrie) + T->memoryBytes();
  for (const auto &L : Origins) {
    Bytes += L.capacity() * sizeof(StateOrigin);
    for (const StateOrigin &O : L)
      Bytes += O.Premises.capacity() * sizeof(ProvPremise);
  }
  return Bytes;
}

size_t Solver::tableSpaceBytes() const {
  // The paper's "Table space" column: memory held by call and answer
  // tables. We count the table store's cells, variant keys, answer vectors
  // and an estimate of hash-node overhead.
  size_t Bytes = Tables.memoryBytes();
  for (const Subgoal *SG : SubgoalOrder) {
    Bytes += sizeof(Subgoal);
    Bytes += SG->Key.capacity();
    Bytes += SG->CallVars.capacity() * sizeof(TermRef);
    Bytes += SG->Answers.capacity() * sizeof(TermRef);
    Bytes += SG->AnswerBindings.capacity() * sizeof(TermRef);
    Bytes += SG->AnswerSeq.capacity() * sizeof(uint64_t);
    for (const auto &K : SG->AnswerKeys)
      Bytes += K.capacity() + sizeof(void *) * 2;
    if (SG->AnswerTrie)
      Bytes += sizeof(TermTrie) + SG->AnswerTrie->memoryBytes();
    if (SG->SharedAnswerTrie)
      Bytes +=
          sizeof(ConcurrentTermTrie) + SG->SharedAnswerTrie->memoryBytes();
    for (const auto &CF : SG->Frontiers)
      if (CF)
        Bytes += CF->memoryBytes();
  }
  Bytes += SubgoalTrie.memoryBytes();
  Bytes += SubgoalByKey.size() * (sizeof(void *) * 4);
  // Provenance survives completion (the frontiers it was distilled from do
  // not), so its arena is table space, not evaluation scratch.
  if (Prov)
    Bytes += Prov->memoryBytes();
  Bytes += DepEdges.capacity() * sizeof(ForestEdge);
  Bytes += DepEdgeSet.size() * sizeof(uint64_t) * 2;
  // The live dependency index persists across queries like the tables it
  // guards, so its footprint is table space too.
  Bytes += DepIndex.memoryBytes();
  // Every full walk refreshes the peak for free; the completion path also
  // calls this right before releasing an outermost SCC's frontiers, so the
  // pre-free maximum is captured (see ensureSubgoal).
  if (Bytes > Water.PeakTableSpaceBytes)
    Water.PeakTableSpaceBytes = Bytes;
  return Bytes;
}

const TableWatermarks &Solver::watermarks() const {
  size_t StoreBytes = Tables.memoryBytes();
  if (StoreBytes > Water.PeakTermStoreBytes)
    Water.PeakTermStoreBytes = StoreBytes;
  (void)tableSpaceBytes(); // Refreshes PeakTableSpaceBytes.
  return Water;
}

size_t Solver::subgoalMemoryBytes(const Subgoal &SG) const {
  // Apportioned table space: the subgoal record, its variant keys or
  // answer trie, its term cells in the shared table store (call +
  // answers, measured via the TermStore arena), and any live
  // supplementary frontiers.
  size_t Bytes = sizeof(Subgoal) + SG.Key.capacity();
  Bytes += SG.CallVars.capacity() * sizeof(TermRef);
  Bytes += SG.Answers.capacity() * sizeof(TermRef);
  Bytes += SG.AnswerBindings.capacity() * sizeof(TermRef);
  Bytes += SG.AnswerSeq.capacity() * sizeof(uint64_t);
  for (const auto &K : SG.AnswerKeys)
    Bytes += K.capacity() + sizeof(void *) * 2;
  if (SG.AnswerTrie)
    Bytes += sizeof(TermTrie) + SG.AnswerTrie->memoryBytes();
  if (SG.SharedAnswerTrie)
    Bytes += sizeof(ConcurrentTermTrie) + SG.SharedAnswerTrie->memoryBytes();
  Bytes += Tables.termBytes(SG.CallTerm);
  for (TermRef Ans : SG.Answers)
    Bytes += Tables.termBytes(Ans);
  for (TermRef B : SG.AnswerBindings)
    Bytes += Tables.termBytes(B);
  for (const auto &CF : SG.Frontiers)
    if (CF)
      Bytes += CF->memoryBytes();
  return Bytes;
}

void Solver::snapshotTableMetrics(MetricsRegistry &M) const {
  M.resetTableSnapshot();
  for (const Subgoal *SG : SubgoalOrder) {
    PredMetrics &PM = M.pred(Symbols, SG->Pred.Sym, SG->Pred.Arity);
    ++PM.TableSubgoals;
    PM.TableAnswers += answerCount(*SG);
    PM.AnswersPerSubgoal.record(answerCount(*SG));
    PM.TableBytes += subgoalMemoryBytes(*SG);
  }

  M.setCounter("clause_resolutions", Stats.ClauseResolutions);
  M.setCounter("clause_index_filtered", Stats.ClauseIndexFiltered);
  M.setCounter("tabled_calls", Stats.TabledCalls);
  M.setCounter("subgoals_created", Stats.SubgoalsCreated);
  M.setCounter("answers_recorded", Stats.AnswersRecorded);
  M.setCounter("answers_duplicate", Stats.AnswersDuplicate);
  M.setCounter("fixpoint_rounds", Stats.FixpointRounds);
  M.setCounter("depth_limit_hits", Stats.DepthLimitHits);
  M.setCounter("builtin_evals", Stats.BuiltinEvals);
  M.setCounter("table_space_bytes", tableSpaceBytes());
  M.setCounter("db_lookups", DB.lookupStats().Lookups);
  M.setCounter("db_lookup_misses", DB.lookupStats().Misses);
  M.setCounter("trie_hits", Stats.TrieHits);
  M.setCounter("trie_misses", Stats.TrieMisses);
  M.setCounter("trie_nodes_created", Stats.TrieNodesCreated);
  M.setCounter("frontier_bytes_freed", Stats.FrontierBytesFreed);
  M.setCounter("incomplete_tables", Stats.IncompleteTables);
  M.setCounter("warm_table_hits", Stats.WarmTableHits);
  M.setCounter("cold_table_misses", Stats.ColdTableMisses);
  M.setCounter("deadline_hits", Stats.DeadlineHits);
  M.setCounter("tables_invalidated", Stats.TablesInvalidated);
  M.setCounter("tables_survived", Stats.TablesSurvived);
  M.setCounter("tables_revived", Stats.TablesRevived);
  M.setCounter("invalidation_bytes_freed", Stats.InvalidationBytesFreed);
  M.setCounter("dep_index_edges", DepIndex.edgeCount());
  M.setCounter("dep_index_bytes", DepIndex.memoryBytes());
  M.setCounter("subgoal_trie_nodes", SubgoalTrie.nodeCount());
  M.setCounter("subgoal_trie_bytes", SubgoalTrie.memoryBytes());
  // Intra-query parallelism: lead-side import counters, the aggregate of
  // every worker solver's counters, the shared-space striped-lock figures
  // and the eval pool's scheduling counters.
  M.setCounter("eval_workers", Opts.EvalWorkers);
  M.setCounter("parallel_prime_runs", Stats.ParallelPrimeRuns);
  M.setCounter("shared_tables_imported", Stats.SharedTablesImported);
  M.setCounter("shared_answers_imported", Stats.SharedAnswersImported);
  M.setCounter("worker_subgoals_created", WorkerStats.SubgoalsCreated);
  M.setCounter("worker_answers_recorded", WorkerStats.AnswersRecorded);
  M.setCounter("worker_clause_resolutions", WorkerStats.ClauseResolutions);
  M.setCounter("worker_shared_claims", WorkerStats.SharedClaims);
  M.setCounter("worker_shared_publishes", WorkerStats.SharedPublishes);
  M.setCounter("worker_shared_warm_imports", WorkerStats.SharedWarmImports);
  M.setCounter("worker_shared_dup_evals", WorkerStats.SharedDupEvals);
  M.setCounter("shared_space_lookups", SharedStats.Lookups);
  M.setCounter("shared_space_warm_hits", SharedStats.WarmHits);
  M.setCounter("shared_space_inflight_misses", SharedStats.InFlightMisses);
  M.setCounter("shared_space_claims", SharedStats.Claims);
  M.setCounter("shared_space_publishes", SharedStats.Publishes);
  M.setCounter("shared_space_retired", SharedStats.Retired);
  M.setCounter("shared_space_shards", SharedStats.Shards);
  M.setCounter("shared_lock_acquisitions", SharedStats.LockAcquisitions);
  M.setCounter("shared_lock_contended", SharedStats.LockContended);
  M.setCounter("shared_lock_wait_ns", SharedStats.LockWaitNs);
  if (EvalPool) {
    ThreadPool::PoolStats PS = EvalPool->stats();
    M.setCounter("eval_pool_submitted", PS.Submitted);
    M.setCounter("eval_pool_executed", PS.Executed);
    M.setCounter("eval_pool_steals", PS.Steals);
    M.setCounter("eval_pool_idle_sleeps", PS.IdleSleeps);
  }
  const TableWatermarks &W = watermarks();
  M.noteWatermark("peak_term_store_bytes", W.PeakTermStoreBytes);
  M.noteWatermark("peak_subgoal_answer_bytes", W.PeakSubgoalAnswerBytes);
  M.noteWatermark("peak_scc_frontier_bytes", W.PeakSccFrontierBytes);
  M.noteWatermark("peak_table_space_bytes", W.PeakTableSpaceBytes);
  if (Prov) {
    M.setCounter("provenance_justifications", Prov->justificationCount());
    M.setCounter("provenance_bytes", Prov->memoryBytes());
    M.setCounter("forest_dep_edges", DepEdges.size());
  }
}

void Solver::clearTables() {
  assert(ProducerStack.empty() && CompletionStack.empty() &&
         "cannot clear tables during evaluation");
  SubgoalOwned.clear();
  SubgoalByKey.clear();
  SubgoalTrie.clear();
  SubgoalOrder.clear();
  Tables.clear();
  DfnCounter = 0;
  if (Prov)
    Prov->clear();
  DepEdges.clear();
  DepEdgeSet.clear();
  DepIndex.clear();
  StaticPredCache.clear();
  SccCounter = 0;
  CompletionCounter = 0;
}

Solver::InvalidationResult
Solver::invalidateDependents(std::span<const PredKey> Changed) {
  assert(ProducerStack.empty() && CompletionStack.empty() &&
         "cannot invalidate tables during evaluation");
  InvalidationResult R;
  if (Changed.empty())
    return R;

  std::vector<uint64_t> Packed;
  Packed.reserve(Changed.size());
  for (const PredKey &K : Changed)
    Packed.push_back(DependencyIndex::packPred(K.Sym, K.Arity));
  std::unordered_set<uint64_t> Affected = DepIndex.dependentsOf(Packed);
  R.PredsAffected = Affected.size();

  for (Subgoal *SG : SubgoalOrder) {
    uint64_t PK = DependencyIndex::packPred(SG->Pred.Sym, SG->Pred.Arity);
    if (!Affected.count(PK)) {
      if (SG->Complete && !SG->Invalidated)
        ++R.TablesSurvived;
      continue;
    }
    if (SG->Invalidated)
      continue; // Tombstoned by an earlier sweep; nothing left to free.

    // Tombstone: release the answer vectors along with everything the SCC
    // frontier-release discipline frees at completion. Term cells stay in
    // the table arena until clearTables() — the arena has no per-term
    // free — which tableSpaceBytes() keeps counting honestly.
    size_t Freed = SG->Answers.capacity() * sizeof(TermRef) +
                   SG->AnswerBindings.capacity() * sizeof(TermRef) +
                   SG->AnswerSeq.capacity() * sizeof(uint64_t);
    for (const auto &K : SG->AnswerKeys)
      Freed += K.capacity() + sizeof(void *) * 2;
    if (SG->AnswerTrie)
      Freed += sizeof(TermTrie) + SG->AnswerTrie->memoryBytes();
    if (SG->SharedAnswerTrie)
      Freed +=
          sizeof(ConcurrentTermTrie) + SG->SharedAnswerTrie->memoryBytes();
    for (const auto &CF : SG->Frontiers)
      if (CF)
        Freed += CF->memoryBytes();
    SG->Answers.clear();
    SG->Answers.shrink_to_fit();
    SG->AnswerBindings.clear();
    SG->AnswerBindings.shrink_to_fit();
    SG->AnswerSeq.clear();
    SG->AnswerSeq.shrink_to_fit();
    SG->AnswerKeys.clear();
    SG->AnswerTrie.reset();
    SG->SharedAnswerTrie.reset();
    SG->Frontiers.clear();
    SG->Frontiers.shrink_to_fit();
    SG->Consumers.clear();
    SG->Complete = false;
    SG->Incomplete = false;
    SG->Invalidated = true;
    SG->SccId = 0;
    SG->CompletionSeq = 0;
    SG->CompletedInQuery = 0;
    SG->DerivedAtRevision = 0;
    SG->Dfn = SG->MinLink = 0;
    SG->OnStack = false;
    SG->Dirty = false;
    ++R.TablesInvalidated;
    R.BytesFreed += Freed;
  }

  // The affected predicates' consumer edges are dropped — re-derivation
  // re-records exactly the dependencies the new program induces (keeping
  // them would pin dropped dependencies forever).
  DepIndex.dropConsumers(Affected);
  // isStaticPred caches reachability over the old program; any mutation
  // can flip it (an asserted clause may reach a tabled predicate).
  StaticPredCache.clear();
  if (R.TablesInvalidated) {
    // Provenance and forest edges are per-derivation-era: premise indices
    // into tombstoned answer tables dangle, so the arena restarts with the
    // re-derivation. Surviving tables lose explainability but never
    // correctness (checkProvenance stays clean either way).
    if (Prov)
      Prov->clear();
    DepEdges.clear();
    DepEdgeSet.clear();
  }
  // Retire matching published tables when a shared space is attached so
  // no late reader imports a stale table (lead solvers own their space
  // per-phase and detach before invalidation can run; this is the worker/
  // external-space path).
  if (Shared)
    for (uint64_t PK : Affected)
      Shared->invalidatePred(static_cast<SymbolId>(PK >> 32),
                             static_cast<uint32_t>(PK));

  Stats.TablesInvalidated += R.TablesInvalidated;
  Stats.TablesSurvived += R.TablesSurvived;
  Stats.InvalidationBytesFreed += R.BytesFreed;
  return R;
}

//===----------------------------------------------------------------------===//
// Intra-query parallel evaluation (Options::EvalWorkers)
//===----------------------------------------------------------------------===//

namespace {

/// Folds one worker solver's counters into the lead's aggregate.
void accumulateStats(EvalStats &Into, const EvalStats &S) {
  Into.ClauseResolutions += S.ClauseResolutions;
  Into.TabledCalls += S.TabledCalls;
  Into.SubgoalsCreated += S.SubgoalsCreated;
  Into.AnswersRecorded += S.AnswersRecorded;
  Into.AnswersDuplicate += S.AnswersDuplicate;
  Into.FixpointRounds += S.FixpointRounds;
  Into.DepthLimitHits += S.DepthLimitHits;
  Into.BuiltinEvals += S.BuiltinEvals;
  Into.ClauseIndexFiltered += S.ClauseIndexFiltered;
  Into.TrieHits += S.TrieHits;
  Into.TrieMisses += S.TrieMisses;
  Into.TrieNodesCreated += S.TrieNodesCreated;
  Into.FrontierBytesFreed += S.FrontierBytesFreed;
  Into.IncompleteTables += S.IncompleteTables;
  Into.WarmTableHits += S.WarmTableHits;
  Into.ColdTableMisses += S.ColdTableMisses;
  Into.DeadlineHits += S.DeadlineHits;
  Into.ParallelPrimeRuns += S.ParallelPrimeRuns;
  Into.SharedClaims += S.SharedClaims;
  Into.SharedPublishes += S.SharedPublishes;
  Into.SharedWarmImports += S.SharedWarmImports;
  Into.SharedDupEvals += S.SharedDupEvals;
  Into.SharedTablesImported += S.SharedTablesImported;
  Into.SharedAnswersImported += S.SharedAnswersImported;
  Into.TablesInvalidated += S.TablesInvalidated;
  Into.TablesSurvived += S.TablesSurvived;
  Into.TablesRevived += S.TablesRevived;
  Into.InvalidationBytesFreed += S.InvalidationBytesFreed;
}

void accumulateShared(SharedTableSpace::Stats &Into,
                      const SharedTableSpace::Stats &S) {
  Into.Lookups += S.Lookups;
  Into.WarmHits += S.WarmHits;
  Into.InFlightMisses += S.InFlightMisses;
  Into.Claims += S.Claims;
  Into.Publishes += S.Publishes;
  Into.Retired += S.Retired;
  Into.LockAcquisitions += S.LockAcquisitions;
  Into.LockContended += S.LockContended;
  Into.LockWaitNs += S.LockWaitNs;
  Into.Shards = S.Shards;
}

} // namespace

void Solver::collectSpawnSeeds(TermRef Goal, std::vector<TermRef> &Seeds) {
  TermRef D = Heap.deref(Goal);
  if (Heap.tag(D) == TermTag::Struct && Heap.symbol(D) == Symbols.Comma &&
      Heap.arity(D) == 2) {
    collectSpawnSeeds(Heap.arg(D, 0), Seeds);
    collectSpawnSeeds(Heap.arg(D, 1), Seeds);
    return;
  }
  TermTag T = Heap.tag(D);
  if (T != TermTag::Atom && T != TermTag::Struct)
    return;
  PredKey Key{Heap.symbol(D), Heap.arity(D)};
  if (Builtins.classify(Key.Sym, Key.Arity) != BuiltinKind::None)
    return;
  const Predicate *P = DB.lookup(Key);
  if (P && P->Tabled)
    Seeds.push_back(D);
}

size_t Solver::primeTables(std::span<const TermRef> Goals) {
  // Eligibility: tabled calls this solver has not already completed, with
  // pairwise-disjoint variables. A variable shared between two seeds would
  // make their independent most-general evaluations useless to the serial
  // re-run (it calls a more-bound variant), so such seeds are dropped.
  std::vector<TermRef> Seeds;
  std::vector<TermRef> SeenVars;
  for (TermRef G : Goals) {
    TermRef D = Heap.deref(G);
    TermTag T = Heap.tag(D);
    if (T != TermTag::Atom && T != TermTag::Struct)
      continue;
    PredKey Key{Heap.symbol(D), Heap.arity(D)};
    if (Builtins.classify(Key.Sym, Key.Arity) != BuiltinKind::None)
      continue;
    const Predicate *P = DB.lookup(Key);
    if (!P || !P->Tabled)
      continue;
    if (const Subgoal *Existing = findSubgoal(D);
        Existing && Existing->Complete)
      continue; // Already warm.
    std::vector<TermRef> Vars;
    collectFreeVars(Heap, D, Vars);
    bool Overlaps = false;
    for (TermRef V : Vars)
      if (std::find(SeenVars.begin(), SeenVars.end(), V) != SeenVars.end()) {
        Overlaps = true;
        break;
      }
    if (Overlaps)
      continue;
    SeenVars.insert(SeenVars.end(), Vars.begin(), Vars.end());
    Seeds.push_back(D);
  }
  if (Seeds.empty())
    return 0;

  bool Parallel = Opts.EvalWorkers > 1 && Opts.UseTrieTables &&
                  !Opts.RecordProvenance && !Priming && Seeds.size() >= 2;
  if (!Parallel) {
    // Serial fallback: drive each seed to completion in order — the same
    // tables the parallel phase computes, minus the concurrency.
    for (TermRef G : Seeds)
      solve(G, nullptr);
    return Seeds.size();
  }
  ++Stats.ParallelPrimeRuns;
  Priming = true;
  runParallelPrime(Seeds);
  Priming = false;
  return Seeds.size();
}

void Solver::runParallelPrime(const std::vector<TermRef> &Seeds) {
  size_t NumWorkers = Opts.EvalWorkers;
  // The space lives on the lead's stack for exactly one phase; worker
  // solvers coordinate through it and die before it does.
  SharedTableSpace Space;
  std::vector<std::unique_ptr<Solver>> Workers;
  Workers.reserve(NumWorkers);
  for (size_t I = 0; I < NumWorkers; ++I) {
    Options WO = Opts;
    WO.EvalWorkers = 0;        // Workers never spawn sub-pools.
    WO.RecordProvenance = false;
    auto WS = std::make_unique<Solver>(DB, WO);
    WS->Shared = &Space;
    WS->SharedWorkerId = static_cast<uint32_t>(I);
    WS->AnswerJoins = AnswerJoins;
    WS->Query = Query; // Deadlines bound workers exactly like the lead.
    if (I < WorkerCursors.size())
      WS->Cursor = WorkerCursors[I].get();
    Workers.push_back(std::move(WS));
  }

  if (!EvalPool)
    EvalPool = std::make_unique<ThreadPool>(NumWorkers);
  for (TermRef G : Seeds) {
    EvalPool->submit([this, &Workers, G] {
      // Worker solvers are picked by executing pool thread, so one solver
      // is never driven from two threads (stolen tasks run on the
      // thief's solver).
      size_t Id = ThreadPool::currentWorkerId();
      if (Id >= Workers.size())
        Id = 0; // Inline-serial pools run tasks on the caller.
      Solver &WS = *Workers[Id];
      // The lead heap is quiescent for the whole phase (the lead blocks
      // in wait() below), so reading the seed term out of it is safe.
      TermRef Local = copyTerm(Heap, G, WS.Heap);
      WS.solve(Local, nullptr);
    });
  }
  EvalPool->wait();

  // Workers are quiescent. Fold their counters and the space's, then
  // import every published table in a deterministic order (predicate,
  // rendered call) so lead-side subgoal creation order never depends on
  // worker scheduling.
  for (const auto &WS : Workers) {
    accumulateStats(WorkerStats, WS->Stats);
    // Workers ran the producers, so they — not the lead, which imports the
    // finished tables — observed the dependency edges. Fold them into the
    // lead's live index or imported tables would be un-invalidatable.
    DepIndex.merge(WS->DepIndex);
  }
  accumulateShared(SharedStats, Space.stats());
  // Per-shard accumulation: the space dies with this phase, so the
  // striped view (which shard ran hot) must be folded here to survive.
  {
    std::vector<SharedTableSpace::ShardStats> Phase = Space.perShardStats();
    if (SharedShardStats.size() < Phase.size())
      SharedShardStats.resize(Phase.size());
    for (size_t I = 0; I < Phase.size(); ++I) {
      SharedTableSpace::ShardStats &Acc = SharedShardStats[I];
      const SharedTableSpace::ShardStats &P = Phase[I];
      Acc.Lookups += P.Lookups;
      Acc.WarmHits += P.WarmHits;
      Acc.InFlightMisses += P.InFlightMisses;
      Acc.Claims += P.Claims;
      Acc.Retired += P.Retired;
      Acc.LockAcquisitions += P.LockAcquisitions;
      Acc.LockContended += P.LockContended;
      Acc.LockWaitNs += P.LockWaitNs;
      Acc.Entries += P.Entries;
    }
  }

  std::vector<
      std::pair<std::string, const SharedTableSpace::PublishedTable *>>
      Ordered;
  for (const SharedTableSpace::PublishedTable *PT : Space.publishedTables()) {
    std::string K = Symbols.name(PT->Sym) + "/" + std::to_string(PT->Arity) +
                    " " + TermWriter::toString(Symbols, PT->Terms, PT->Call);
    Ordered.emplace_back(std::move(K), PT);
  }
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  for (const auto &[K, PT] : Ordered)
    importPublishedTable(*PT);
}

std::unique_ptr<SharedTableSpace::PublishedTable>
Solver::buildPublishedTable(const Subgoal &SG) const {
  auto PT = std::make_unique<SharedTableSpace::PublishedTable>();
  PT->Sym = SG.Pred.Sym;
  PT->Arity = SG.Pred.Arity;
  PT->Factored = SG.Factored;
  PT->Incomplete = SG.Incomplete;
  PT->NumCallVars = static_cast<uint32_t>(SG.CallVars.size());
  PT->NumAnswers = static_cast<uint32_t>(SG.AnswerSeq.size());
  PT->Call = copyTerm(Tables, SG.CallTerm, PT->Terms);
  if (SG.Factored) {
    size_t K = SG.CallVars.size();
    PT->Answers.reserve(size_t(PT->NumAnswers) * K);
    for (uint32_t I = 0; I < PT->NumAnswers; ++I) {
      // One renaming per answer: variables shared between binding slots
      // stay shared in the published copy, and no further.
      VarRenaming Renaming;
      const TermRef *B = SG.AnswerBindings.data() + size_t(I) * K;
      for (size_t J = 0; J < K; ++J)
        PT->Answers.push_back(copyTerm(Tables, B[J], PT->Terms, Renaming));
    }
  } else {
    PT->Answers.reserve(PT->NumAnswers);
    for (TermRef A : SG.Answers)
      PT->Answers.push_back(copyTerm(Tables, A, PT->Terms));
  }
  return PT;
}

void Solver::fillSubgoalFromPublished(
    Subgoal &SG, const SharedTableSpace::PublishedTable &PT) {
  assert(SG.Factored == PT.Factored &&
         "publisher and importer disagree on table representation");
  size_t K = PT.NumCallVars;
  if (PT.Factored) {
    assert(SG.CallVars.size() == K && "variant call shapes must agree");
    SG.AnswerBindings.reserve(size_t(PT.NumAnswers) * K);
    for (uint32_t I = 0; I < PT.NumAnswers; ++I) {
      VarRenaming Renaming;
      for (size_t J = 0; J < K; ++J)
        SG.AnswerBindings.push_back(
            copyTerm(PT.Terms, PT.Answers[size_t(I) * K + J], Tables,
                     Renaming));
      SG.AnswerSeq.push_back(++AnswerSeqCounter);
    }
  } else {
    SG.Answers.reserve(PT.NumAnswers);
    for (uint32_t I = 0; I < PT.NumAnswers; ++I) {
      SG.Answers.push_back(copyTerm(PT.Terms, PT.Answers[I], Tables));
      SG.AnswerSeq.push_back(++AnswerSeqCounter);
    }
  }
  if (PT.NumAnswers)
    PredMaxAnswerSeq[(uint64_t(SG.Pred.Sym) << 32) | SG.Pred.Arity] =
        AnswerSeqCounter;
  Stats.SharedAnswersImported += PT.NumAnswers;
  if (size_t StoreBytes = Tables.memoryBytes();
      StoreBytes > Water.PeakTermStoreBytes)
    Water.PeakTermStoreBytes = StoreBytes;
  SG.Complete = true;
  SG.Incomplete = PT.Incomplete;
  if (PT.Incomplete) {
    ++Stats.IncompleteTables; // Taint crosses the worker boundary.
    if (Recorder)
      Recorder->noteIncompleteTable(CurQueryId, SG.Ordinal,
                                    Symbols.name(SG.Pred.Sym));
  }
  SG.SccId = ++SccCounter;
  SG.CompletionSeq = ++CompletionCounter;
  SG.CompletedInQuery = CurQueryId;
  SG.DerivedAtRevision = DB.globalRevision();
}

void Solver::importPublishedTable(
    const SharedTableSpace::PublishedTable &PT) {
  auto M = Heap.mark();
  TermRef Call = copyTerm(PT.Terms, PT.Call, Heap);
  TermTrie::InsertResult R = SubgoalTrie.insert(
      Heap, Call, static_cast<uint32_t>(SubgoalOwned.size()));
  Stats.TrieNodesCreated += R.NodesCreated;
  if (!R.Inserted) {
    ++Stats.TrieHits;
    Subgoal &Existing = *SubgoalOwned[R.Value];
    if (Existing.Invalidated) {
      // A tombstoned lead variant takes the worker's table (derived
      // against the mutated program) instead of re-running the producer.
      Existing.Invalidated = false;
      ++Stats.TablesRevived;
      ++Stats.SharedTablesImported;
      fillSubgoalFromPublished(Existing, PT);
    }
    // Otherwise the lead already holds this variant warm; its table wins.
    Heap.undoTo(M);
    return;
  }
  ++Stats.TrieMisses;
  ++Stats.SubgoalsCreated;
  ++Stats.SharedTablesImported;
  if (Metrics)
    ++Metrics->pred(Symbols, PT.Sym, PT.Arity).NewSubgoals;
  auto Owned = std::make_unique<Subgoal>();
  Subgoal &SG = *Owned;
  SG.Pred = {PT.Sym, PT.Arity};
  SG.Ordinal = static_cast<uint32_t>(SubgoalOwned.size());
  SG.CallTerm = copyTerm(Heap, Call, Tables);
  collectFreeVars(Tables, SG.CallTerm, SG.CallVars);
  SG.Factored = PT.Factored;
  SG.Dfn = SG.MinLink = ++DfnCounter;
  SG.Dirty = false;
  fillSubgoalFromPublished(SG, PT);
  SubgoalOwned.push_back(std::move(Owned));
  SubgoalOrder.push_back(&SG);
  Heap.undoTo(M);
}

//===----------------------------------------------------------------------===//
// Core resolution
//===----------------------------------------------------------------------===//

Solver::Signal Solver::solveGoals(const GoalNode *Goals, size_t Depth,
                                  uint64_t CutLevel,
                                  const SolutionFn &OnSolution) {
  if (!Goals)
    return OnSolution() ? Signal::stop() : Signal::exhausted();
  if (Depth > Opts.MaxDepth) {
    ++Stats.DepthLimitHits;
    // Soundness: the pruned branch may have carried derivations the
    // current producer's table never sees. Poison that producer so SCC
    // completion cannot certify its answer set as the minimal model.
    if (!ProducerStack.empty())
      ProducerStack.back()->Incomplete = true;
    if (Trace)
      Trace->emit(TraceEventKind::DepthLimit, 0, 0, Depth);
    return Signal::exhausted();
  }
  if (Query && Query->DeadlineNs) {
    if (!DeadlineExpired && (++DeadlineTick & 1023u) == 0 &&
        steadyNowNs() >= Query->DeadlineNs) {
      DeadlineExpired = true;
      ++Stats.DeadlineHits;
      if (Trace)
        Trace->emit(TraceEventKind::DeadlineExpired, 0, 0, Depth);
      if (Recorder)
        Recorder->noteDeadlineHit(CurQueryId, Depth);
    }
    if (DeadlineExpired) {
      // Same soundness discipline as the depth limit: every branch the
      // expiry prunes may starve the producer's table, so its completion
      // must carry the Incomplete taint.
      if (!ProducerStack.empty())
        ProducerStack.back()->Incomplete = true;
      return Signal::exhausted();
    }
  }
  TermRef G = Heap.deref(Goals->Goal);
  return solveCall(G, Goals->Next, Depth, CutLevel, OnSolution);
}

Solver::Signal Solver::solveCall(TermRef Goal, const GoalNode *Rest,
                                 size_t Depth, uint64_t CutLevel,
                                 const SolutionFn &OnSolution) {
  TermTag T = Heap.tag(Goal);
  if (T == TermTag::Ref || T == TermTag::Int)
    return Signal::exhausted(); // Ill-typed goal: fail.

  SymbolId Sym = Heap.symbol(Goal);
  uint32_t Arity = Heap.arity(Goal);

  // Inline conjunctions into the resolvent.
  if (Sym == Symbols.Comma && Arity == 2)
    return solveGoals(
        makeGoal(Heap.arg(Goal, 0), makeGoal(Heap.arg(Goal, 1), Rest)), Depth,
        CutLevel, OnSolution);

  BuiltinKind BK = Builtins.classify(Sym, Arity);
  if (BK != BuiltinKind::None) {
    ++Stats.BuiltinEvals;
    if (Trace)
      Trace->emit(TraceEventKind::BuiltinEval, Sym, Arity);
    return solveBuiltin(BK, Goal, Rest, Depth, CutLevel, OnSolution);
  }

  const Predicate *P = DB.lookup({Sym, Arity});
  if (!P) {
    // Undefined predicate: fail — but first record the dependency. The
    // enclosing producer's table saw this call fail; asserting the
    // predicate later must invalidate that table.
    recordPredDependency({Sym, Arity});
    return Signal::exhausted();
  }
  if (P->Tabled)
    return solveTabled(*P, Goal, Rest, Depth, CutLevel, OnSolution);
  // Nontabled: the callee's clauses fold straight into the producer's
  // derivation, so the producer depends on them (tabled callees record
  // this at the addDepEdge chokepoint instead).
  recordPredDependency({Sym, Arity});
  return solveNontabled(*P, Goal, Rest, Depth, OnSolution);
}

Solver::Signal Solver::solveNontabled(const Predicate &P, TermRef Goal,
                                      const GoalNode *Rest, size_t Depth,
                                      const SolutionFn &OnSolution) {
  uint64_t MyLevel = ++CutCounter;
  uint64_t CallKey =
      P.Key.Arity == 0 ? 0 : Database::firstArgKey(Heap, Heap.arg(Goal, 0));

  for (const Clause &C : P.Clauses) {
    // First-argument filtering: skip clauses that cannot match.
    if (CallKey != 0 && C.FirstArgKey != 0 && C.FirstArgKey != CallKey) {
      ++Stats.ClauseIndexFiltered;
      continue;
    }
    ++Stats.ClauseResolutions;
    if (Metrics)
      ++Metrics->pred(Symbols, P.Key.Sym, P.Key.Arity).Resolutions;
    if (Trace)
      Trace->emit(TraceEventKind::ClauseResolve, P.Key.Sym, P.Key.Arity);

    auto M = Heap.mark();
    VarRenaming Renaming;
    TermRef Head = copyTerm(DB.store(), C.Head, Heap, Renaming);
    Signal S = Signal::exhausted();
    if (unify(Heap, Goal, Head, Opts.OccursCheck)) {
      const GoalNode *BodyGoals = Rest;
      for (size_t I = C.Body.size(); I-- > 0;)
        BodyGoals =
            makeGoal(copyTerm(DB.store(), C.Body[I], Heap, Renaming),
                     BodyGoals);
      S = solveGoals(BodyGoals, Depth + 1, MyLevel, OnSolution);
    }
    Heap.undoTo(M);

    if (S.K == Signal::Stop)
      return S;
    if (S.K == Signal::CutTo) {
      if (S.Level == MyLevel)
        return Signal::exhausted(); // Our alternatives were cut away.
      assert(S.Level < MyLevel && "cut to an inner level escaped its loop");
      return S; // An outer cut keeps propagating.
    }
  }
  return Signal::exhausted();
}

//===----------------------------------------------------------------------===//
// Tabling
//===----------------------------------------------------------------------===//

void Solver::setAnswerJoin(PredKey Pred, AnswerJoinFn Join) {
  AnswerJoins[(uint64_t(Pred.Sym) << 32) | Pred.Arity] = std::move(Join);
}

bool Solver::recordAnswer(Subgoal &SG, TermRef Instance) {
  auto NoteDuplicate = [&]() {
    ++Stats.AnswersDuplicate;
    if (Metrics)
      ++Metrics->pred(Symbols, SG.Pred.Sym, SG.Pred.Arity).DupAnswers;
    if (Trace)
      Trace->emit(TraceEventKind::AnswerDup, SG.Pred.Sym, SG.Pred.Arity);
  };
  auto NoteRecorded = [&]() {
    ++Stats.AnswersRecorded;
    if (Costs)
      Costs->noteAnswerInserted(SG.Ordinal);
    // Term-store watermark: memoryBytes() is O(1) (two capacity reads), so
    // every recorded answer refreshes the exact peak.
    size_t StoreBytes = Tables.memoryBytes();
    if (StoreBytes > Water.PeakTermStoreBytes)
      Water.PeakTermStoreBytes = StoreBytes;
    if (Cursor)
      Cursor->setGauges(StoreBytes, Stats.AnswersRecorded,
                        Stats.SubgoalsCreated);
    if (Metrics)
      ++Metrics->pred(Symbols, SG.Pred.Sym, SG.Pred.Arity).NewAnswers;
    if (Trace)
      Trace->emit(TraceEventKind::AnswerNew, SG.Pred.Sym, SG.Pred.Arity,
                  SG.AnswerSeq.size());
  };

  // Aggregated predicates keep a single joined answer per subgoal.
  auto JIt = AnswerJoins.find((uint64_t(SG.Pred.Sym) << 32) | SG.Pred.Arity);
  if (JIt != AnswerJoins.end()) {
    TermRef Stored = copyTerm(Heap, Instance, Tables);
    if (SG.Answers.empty()) {
      SG.Answers.push_back(Stored);
      SG.AnswerSeq.push_back(++AnswerSeqCounter);
    } else {
      TermRef Joined = JIt->second(Tables, SG.Answers[0], Stored);
      if (isVariant(Tables, Joined, SG.Answers[0])) {
        NoteDuplicate();
        return false; // The join absorbed the new derivation.
      }
      SG.Answers[0] = Joined;
      SG.AnswerSeq[0] = ++AnswerSeqCounter;
    }
    PredMaxAnswerSeq[(uint64_t(SG.Pred.Sym) << 32) | SG.Pred.Arity] =
        AnswerSeqCounter;
    NoteRecorded();
    // The joined answer overwrites slot 0 in place, so its justification
    // reflects only the latest derivation folded in — and may reference
    // answer 0 of this very subgoal (the join consumed it). The proof
    // walker's on-path guard renders that as an explicit cycle back-edge.
    if (Prov)
      recordJustification(SG, 0);
    for (Subgoal *C : SG.Consumers)
      C->Dirty = true;
    return true;
  }

  if (SG.Factored) {
    // Substitution factoring: the answer is the tuple of bindings of the
    // call's free variables; the whole instance is never materialized.
    // One trie walk over the tuple both checks for a duplicate variant
    // and claims the slot (check/insert fusion).
    extractCallBindings(SG, Instance, BindScratch);
    bool Inserted;
    if (SG.SharedAnswerTrie) {
      // Parallel worker: the optimistic check-then-lock insert path.
      ConcurrentTermTrie::InsertResult R = SG.SharedAnswerTrie->insert(
          Heap, std::span<const TermRef>(BindScratch),
          static_cast<uint32_t>(SG.AnswerSeq.size()));
      Stats.TrieNodesCreated += R.NodesCreated;
      Inserted = R.Inserted;
    } else {
      TermTrie::InsertResult R = SG.AnswerTrie->insert(
          Heap, std::span<const TermRef>(BindScratch),
          static_cast<uint32_t>(SG.AnswerSeq.size()));
      Stats.TrieNodesCreated += R.NodesCreated;
      Inserted = R.Inserted;
    }
    if (!Inserted) {
      ++Stats.TrieHits;
      NoteDuplicate();
      return false;
    }
    ++Stats.TrieMisses;
    // One shared renaming across the tuple: variables shared between
    // binding slots stay shared in the table store.
    VarRenaming Renaming;
    for (TermRef B : BindScratch)
      SG.AnswerBindings.push_back(copyTerm(Heap, B, Tables, Renaming));
    SG.AnswerSeq.push_back(++AnswerSeqCounter);
  } else {
    // Legacy string-keyed path. The probe key lives in a member scratch
    // buffer reused across a producer run's candidates, so duplicate
    // answers (the common case at fixpoint) cost no allocation.
    KeyScratch.clear();
    appendCanonicalKey(Heap, Instance, KeyScratch);
    if (SG.AnswerKeys.count(KeyScratch)) {
      NoteDuplicate();
      return false;
    }
    TermRef Stored = copyTerm(Heap, Instance, Tables);
    SG.AnswerKeys.insert(KeyScratch);
    SG.Answers.push_back(Stored);
    SG.AnswerSeq.push_back(++AnswerSeqCounter);
  }
  PredMaxAnswerSeq[(uint64_t(SG.Pred.Sym) << 32) | SG.Pred.Arity] =
      AnswerSeqCounter;
  NoteRecorded();
  // Every premise answer on the stack was recorded with a strictly smaller
  // global sequence number than this answer gets, so justifications stay
  // well-founded (the proof DAG is acyclic for non-aggregated tables).
  if (Prov)
    recordJustification(SG, SG.AnswerSeq.size() - 1);
  // Semi-naive scheduling: everyone who consumed from this table has
  // potentially more derivations now.
  for (Subgoal *C : SG.Consumers)
    C->Dirty = true;
  return true;
}

void Solver::recordJustification(Subgoal &SG, size_t AnswerIdx) {
  if (PendingPremises)
    Prov->record(SG.Ordinal, static_cast<uint32_t>(AnswerIdx), CurClauseIdx,
                 std::span<const ProvPremise>(*PendingPremises));
  else
    Prov->record(SG.Ordinal, static_cast<uint32_t>(AnswerIdx), CurClauseIdx,
                 std::span<const ProvPremise>(
                     PremiseStack.data() + PremiseBase,
                     PremiseStack.size() - PremiseBase));
}

void Solver::addDepEdge(uint32_t Consumer, uint32_t Producer) {
  // Shared recording point: the same producer/consumer edge feeds both the
  // exported forest and the live dependency index. The index's pred-level
  // projection is maintained unconditionally — invalidation must work
  // without provenance — while the ordinal-level forest edge list stays
  // provenance-gated (its premise indices are meaningless without the
  // arena).
  const PredKey &CP = SubgoalOrder[Consumer]->Pred;
  const PredKey &PP = SubgoalOrder[Producer]->Pred;
  DepIndex.addEdge(DependencyIndex::packPred(CP.Sym, CP.Arity),
                   DependencyIndex::packPred(PP.Sym, PP.Arity));
  if (!Prov)
    return;
  uint64_t Packed = (uint64_t(Consumer) << 32) | Producer;
  if (DepEdgeSet.insert(Packed).second)
    DepEdges.push_back({Consumer, Producer});
}

void Solver::recordPredDependency(PredKey Callee) {
  if (ProducerStack.empty())
    return;
  const PredKey &P = ProducerStack.back()->Pred;
  DepIndex.addEdge(DependencyIndex::packPred(P.Sym, P.Arity),
                   DependencyIndex::packPred(Callee.Sym, Callee.Arity));
}

bool Solver::clauseIsPure(const Clause &C) const {
  const TermStore &CS = DB.store();
  for (TermRef G : C.Body) {
    TermRef D = CS.deref(G);
    TermTag T = CS.tag(D);
    if (T != TermTag::Atom && T != TermTag::Struct)
      return false; // Variable or number goal: metacall territory.
    switch (Builtins.classify(CS.symbol(D), CS.arity(D))) {
    case BuiltinKind::Cut:
    case BuiltinKind::Not:
    case BuiltinKind::Disj:
    case BuiltinKind::IfThen:
    case BuiltinKind::Call:
      return false;
    default:
      break;
    }
  }
  return true;
}

bool Solver::isStaticPred(PredKey Key) {
  uint64_t K = (uint64_t(Key.Sym) << 32) | Key.Arity;
  auto It = StaticPredCache.find(K);
  if (It != StaticPredCache.end())
    return It->second;
  // Greatest fixpoint: assume static while visiting, so nontabled cycles
  // without tabled members come out static.
  StaticPredCache[K] = true;
  bool Static = true;
  if (DB.isTabled(Key)) {
    Static = false;
  } else if (const Predicate *P = DB.lookup(Key)) {
    if (P->Tabled)
      Static = false;
    for (const Clause &C : P->Clauses) {
      for (TermRef G : C.Body) {
        const TermStore &CS = DB.store();
        TermRef D = CS.deref(G);
        TermTag T = CS.tag(D);
        if (T != TermTag::Atom && T != TermTag::Struct) {
          Static = false; // Metacall: anything can happen.
          break;
        }
        PredKey GK{CS.symbol(D), CS.arity(D)};
        BuiltinKind BK = Builtins.classify(GK.Sym, GK.Arity);
        if (BK == BuiltinKind::Call) {
          Static = false;
          break;
        }
        if (BK != BuiltinKind::None)
          continue; // Other builtins are timeless.
        if (!isStaticPred(GK)) {
          Static = false;
          break;
        }
      }
      if (!Static)
        break;
    }
  }
  StaticPredCache[K] = Static;
  return Static;
}

void Solver::solveSemiGoal(TermRef G, uint64_t MinSeq,
                           const std::function<void()> &OnSolution) {
  G = Heap.deref(G);
  TermTag T = Heap.tag(G);
  if (T != TermTag::Atom && T != TermTag::Struct)
    return; // Pure clauses contain no metacalls.

  PredKey Key{Heap.symbol(G), Heap.arity(G)};
  BuiltinKind BK = Builtins.classify(Key.Sym, Key.Arity);
  if (BK != BuiltinKind::None) {
    // Builtins are deterministic in their inputs: an old state times an
    // unchanged builtin was fully explored in an earlier pass.
    if (MinSeq > 0)
      return;
    GoalNode Node{G, nullptr};
    solveGoals(&Node, /*Depth=*/1, ++CutCounter, [&]() {
      OnSolution();
      return false;
    });
    return;
  }

  const Predicate *P = DB.lookup(Key);
  if (!P) {
    recordPredDependency(Key); // Undefined callee: see solveCall.
    return;
  }

  if (!P->Tabled) {
    recordPredDependency(Key);
    if (MinSeq > 0 && isStaticPred(Key))
      return; // Static facts cannot yield anything new.
    GoalNode Node{G, nullptr};
    solveGoals(&Node, /*Depth=*/1, ++CutCounter, [&]() {
      OnSolution();
      return false;
    });
    return;
  }

  // Tabled: consume (a slice of) the answer table.
  ++Stats.TabledCalls;
  if (Metrics)
    ++Metrics->pred(Symbols, Key.Sym, Key.Arity).Calls;
  if (Trace)
    Trace->emit(TraceEventKind::TabledCall, Key.Sym, Key.Arity);
  std::vector<TermRef> GoalVars;
  size_t NSubgoals = SubgoalOwned.size();
  Subgoal &SG =
      ensureSubgoal(G, Key, Opts.UseTrieTables ? &GoalVars : nullptr);
  // Same warm/cold accounting as solveTabled (the supplementary path is
  // just the other consumer of tabled answers).
  if (SG.Ordinal >= NSubgoals) {
    ++Stats.ColdTableMisses;
    if (Metrics)
      ++Metrics->pred(Symbols, Key.Sym, Key.Arity).ColdMisses;
  } else if (SG.Complete && SG.CompletedInQuery != CurQueryId) {
    ++Stats.WarmTableHits;
    if (Metrics)
      ++Metrics->pred(Symbols, Key.Sym, Key.Arity).WarmHits;
    if (Costs)
      Costs->noteWarmHit(SG.Ordinal);
  }
  if (!SG.Complete && !ProducerStack.empty()) {
    Subgoal *Parent = ProducerStack.back();
    Parent->MinLink = std::min(Parent->MinLink, SG.MinLink);
    SG.Consumers.insert(Parent);
  }
  // Consuming a truncated table taints the consumer: its answers derive
  // from a possibly-partial premise set.
  if (SG.Incomplete && !ProducerStack.empty())
    ProducerStack.back()->Incomplete = true;
  if (!ProducerStack.empty())
    addDepEdge(ProducerStack.back()->Ordinal, SG.Ordinal);
  // AnswerSeq is strictly increasing: jump straight to the new slice.
  size_t Start =
      std::upper_bound(SG.AnswerSeq.begin(), SG.AnswerSeq.end(), MinSeq) -
      SG.AnswerSeq.begin();
  if (SG.Factored) {
    // Substitution factoring: bind the goal's variables to the stored
    // binding tuple directly -- no instance copy, no unification.
    for (size_t I = Start; I < SG.AnswerSeq.size(); ++I) {
      auto M = Heap.mark();
      bindFactoredAnswer(SG, I, GoalVars);
      if (Costs)
        Costs->noteAnswerConsumed(SG.Ordinal);
      if (Prov)
        PremiseStack.push_back({SG.Ordinal, static_cast<uint32_t>(I)});
      OnSolution();
      if (Prov)
        PremiseStack.pop_back();
      Heap.undoTo(M);
    }
    return;
  }
  for (size_t I = Start; I < SG.Answers.size(); ++I) {
    auto M = Heap.mark();
    TermRef Ans = copyTerm(Tables, SG.Answers[I], Heap);
    if (unify(Heap, G, Ans, /*OccursCheck=*/false)) {
      if (Costs)
        Costs->noteAnswerConsumed(SG.Ordinal);
      if (Prov)
        PremiseStack.push_back({SG.Ordinal, static_cast<uint32_t>(I)});
      OnSolution();
      if (Prov)
        PremiseStack.pop_back();
    }
    Heap.undoTo(M);
  }
}

void Solver::runClauseSupplementary(Subgoal &SG, const Clause &C,
                                    size_t ClauseIdx, size_t NumClauses) {
  ++Stats.ClauseResolutions;
  if (Costs)
    Costs->noteStep();
  if (Metrics)
    ++Metrics->pred(Symbols, SG.Pred.Sym, SG.Pred.Arity).Resolutions;
  if (Trace)
    Trace->emit(TraceEventKind::ClauseResolve, SG.Pred.Sym, SG.Pred.Arity);
  size_t NumGoals = C.Body.size();

  if (SG.Frontiers.size() < NumClauses)
    SG.Frontiers.resize(NumClauses);
  if (!SG.Frontiers[ClauseIdx]) {
    SG.Frontiers[ClauseIdx] = std::make_unique<ClauseFrontier>();
    SG.Frontiers[ClauseIdx]->Levels.resize(NumGoals + 1);
    SG.Frontiers[ClauseIdx]->Keys.resize(NumGoals + 1);
    SG.Frontiers[ClauseIdx]->LevelTries.resize(NumGoals + 1);
    if (Prov)
      SG.Frontiers[ClauseIdx]->Origins.resize(NumGoals + 1);
  }
  ClauseFrontier &CF = *SG.Frontiers[ClauseIdx];
  if (CF.HeadFailed)
    return;

  // Snapshot the old/new boundary *before* initialization so the level-0
  // seed counts as new on the first run (facts must record answers).
  std::vector<size_t> OldCount(NumGoals + 1);
  for (size_t J = 0; J <= NumGoals; ++J)
    OldCount[J] = CF.Levels[J].size();

  if (!CF.Initialized) {
    CF.Initialized = true;

    // Liveness of clause variables: LiveIdx[J] = vars of goals >= J.
    for (TermRef G : C.Body)
      collectFreeVars(DB.store(), G, CF.TemplateVars);
    CF.LiveIdx.assign(NumGoals + 1, {});
    std::vector<std::vector<TermRef>> GoalVars(NumGoals);
    for (size_t J = 0; J < NumGoals; ++J)
      collectFreeVars(DB.store(), C.Body[J], GoalVars[J]);
    for (uint32_t VI = 0; VI < CF.TemplateVars.size(); ++VI) {
      // Live at J iff it occurs in some goal >= J.
      size_t LastUse = 0;
      bool Used = false;
      for (size_t J = 0; J < NumGoals; ++J)
        if (std::find(GoalVars[J].begin(), GoalVars[J].end(),
                      CF.TemplateVars[VI]) != GoalVars[J].end()) {
          LastUse = J;
          Used = true;
        }
      if (!Used)
        continue;
      for (size_t J = 0; J <= LastUse; ++J)
        CF.LiveIdx[J].push_back(VI);
    }

    auto M = Heap.mark();
    TermRef Call = copyTerm(Tables, SG.CallTerm, Heap);
    VarRenaming Renaming;
    TermRef Head = copyTerm(DB.store(), C.Head, Heap, Renaming);
    if (!unify(Heap, Call, Head, Opts.OccursCheck)) {
      CF.HeadFailed = true;
      Heap.undoTo(M);
      return;
    }
    // Level-0 state: $state(Call, live vars). Head variables shared with
    // body goals map through Renaming; body-only variables start fresh.
    std::vector<TermRef> StateArgs{Call};
    for (uint32_t VI : CF.LiveIdx[0]) {
      TermRef TV = CF.TemplateVars[VI];
      auto It = Renaming.find(TV);
      if (It == Renaming.end())
        It = Renaming.emplace(TV, Heap.mkVar()).first;
      StateArgs.push_back(It->second);
    }
    TermRef State = Heap.mkStruct(StateSym, StateArgs);
    if (Opts.UseTrieTables) {
      if (!CF.LevelTries[0])
        CF.LevelTries[0] = std::make_unique<TermTrie>();
      TermTrie::InsertResult R = CF.LevelTries[0]->insert(Heap, State, 0);
      Stats.TrieNodesCreated += R.NodesCreated;
      ++Stats.TrieMisses; // The seed is always the level's first state.
    } else {
      KeyScratch.clear();
      appendCanonicalKey(Heap, State, KeyScratch);
      CF.Keys[0].insert(KeyScratch);
    }
    CF.Levels[0].push_back(copyTerm(Heap, State, CF.Store));
    if (Prov)
      CF.Origins[0].push_back({}); // Seed: no predecessor, no premises.
    Heap.undoTo(M);
  }

  // States present before this run are "old": they only need the answers
  // that arrived since the previous run. States appended during this run
  // are "new": they see everything.
  uint64_t PrevWatermark = CF.Watermark;
  CF.Watermark = AnswerSeqCounter;

  for (size_t J = 0; J < NumGoals; ++J) {
    // The J-th goal's predicate is determined by the clause alone, so old
    // states can be skipped wholesale when that predicate has not gained
    // an answer since the previous run.
    enum class OldPolicy { Skip, CheckPred, Process } Policy =
        OldPolicy::Process;
    {
      const TermStore &CS = DB.store();
      TermRef GT = CS.deref(C.Body[J]);
      if (CS.tag(GT) == TermTag::Atom || CS.tag(GT) == TermTag::Struct) {
        PredKey GK{CS.symbol(GT), CS.arity(GT)};
        if (Builtins.classify(GK.Sym, GK.Arity) != BuiltinKind::None) {
          Policy = OldPolicy::Skip; // Builtins never yield anything new.
        } else if (DB.isTabled(GK)) {
          auto It = PredMaxAnswerSeq.find((uint64_t(GK.Sym) << 32) |
                                          GK.Arity);
          uint64_t MaxSeq = It == PredMaxAnswerSeq.end() ? 0 : It->second;
          Policy = MaxSeq > PrevWatermark ? OldPolicy::CheckPred
                                          : OldPolicy::Skip;
        } else if (isStaticPred(GK)) {
          Policy = OldPolicy::Skip;
        }
      }
    }
    // Levels[J] does not grow while processing level J (solutions land in
    // J+1), so the plain loop bound is safe.
    const std::vector<uint32_t> &LiveHere = CF.LiveIdx[J];
    const std::vector<uint32_t> &LiveNext = CF.LiveIdx[J + 1];
    for (size_t Idx = 0; Idx < CF.Levels[J].size(); ++Idx) {
      bool IsOld = Idx < OldCount[J];
      uint64_t MinSeq = IsOld ? PrevWatermark : 0;
      if (IsOld && Policy == OldPolicy::Skip)
        continue;
      auto M = Heap.mark();
      TermRef Live = copyTerm(CF.Store, CF.Levels[J][Idx], Heap);
      // Rebuild goal J from its template under this state's bindings.
      VarRenaming GoalRenaming;
      for (uint32_t K = 0; K < LiveHere.size(); ++K)
        GoalRenaming.emplace(CF.TemplateVars[LiveHere[K]],
                             Heap.arg(Live, K + 1));
      TermRef Goal = copyTerm(DB.store(), C.Body[J], Heap, GoalRenaming);
      // Premises this step consumes sit above StepBase while the frontier
      // callback runs (solveSemiGoal pushes around each answer return).
      size_t StepBase = PremiseStack.size();
      solveSemiGoal(Goal, MinSeq, [&]() {
        // Project onto the variables still live after this goal.
        auto M2 = Heap.mark();
        std::vector<TermRef> Rest{Heap.arg(Live, 0)};
        for (uint32_t VI : LiveNext) {
          // LiveNext is a subset of LiveHere; find its slot.
          size_t Slot =
              std::lower_bound(LiveHere.begin(), LiveHere.end(), VI) -
              LiveHere.begin();
          Rest.push_back(Heap.arg(Live, static_cast<uint32_t>(Slot + 1)));
        }
        TermRef Next = Heap.mkStruct(StateSym, Rest);
        bool IsNew;
        if (Opts.UseTrieTables) {
          // Fused check/insert: one walk of the state term.
          if (!CF.LevelTries[J + 1])
            CF.LevelTries[J + 1] = std::make_unique<TermTrie>();
          TermTrie::InsertResult R = CF.LevelTries[J + 1]->insert(
              Heap, Next, static_cast<uint32_t>(CF.Levels[J + 1].size()));
          Stats.TrieNodesCreated += R.NodesCreated;
          IsNew = R.Inserted;
          IsNew ? ++Stats.TrieMisses : ++Stats.TrieHits;
        } else {
          // Probe key built in the reused member scratch buffer; the set
          // copies it only when the state is actually new.
          KeyScratch.clear();
          appendCanonicalKey(Heap, Next, KeyScratch);
          IsNew = CF.Keys[J + 1].insert(KeyScratch).second;
        }
        if (IsNew) {
          CF.Levels[J + 1].push_back(copyTerm(Heap, Next, CF.Store));
          if (Prov)
            CF.Origins[J + 1].push_back(
                {static_cast<uint32_t>(Idx),
                 std::vector<ProvPremise>(PremiseStack.begin() + StepBase,
                                          PremiseStack.end())});
        }
        Heap.undoTo(M2);
      });
      Heap.undoTo(M);
    }
  }

  // New final states become answers (old ones were recorded previously).
  for (size_t Idx = OldCount[NumGoals]; Idx < CF.Levels[NumGoals].size();
       ++Idx) {
    auto M = Heap.mark();
    TermRef Live = copyTerm(CF.Store, CF.Levels[NumGoals][Idx], Heap);
    if (Prov) {
      // The final state's premise list is distributed along its Origin
      // chain; materialize it (in body-goal order) and hand it to
      // recordAnswer via PendingPremises. This loop performs no nested
      // evaluation, so the scratch/pointer pair cannot be clobbered
      // reentrantly (same discipline as KeyScratch).
      SuppPremiseScratch.clear();
      collectFrontierPremises(CF, NumGoals, Idx, SuppPremiseScratch);
      CurClauseIdx = static_cast<uint32_t>(ClauseIdx);
      PendingPremises = &SuppPremiseScratch;
    }
    recordAnswer(SG, Heap.deref(Heap.arg(Live, 0)));
    PendingPremises = nullptr;
    Heap.undoTo(M);
  }
}

void Solver::collectFrontierPremises(const ClauseFrontier &CF, size_t Level,
                                     size_t StateIdx,
                                     std::vector<ProvPremise> &Out) const {
  // Walk predecessors back to the level-0 seed, then emit each step's
  // premises front to back so the list reads in body-goal order.
  std::vector<std::pair<size_t, size_t>> Chain; // (level, state index)
  size_t Idx = StateIdx;
  for (size_t J = Level; J > 0; --J) {
    Chain.push_back({J, Idx});
    Idx = CF.Origins[J][Idx].Prev;
  }
  for (size_t I = Chain.size(); I-- > 0;) {
    const ClauseFrontier::StateOrigin &O =
        CF.Origins[Chain[I].first][Chain[I].second];
    Out.insert(Out.end(), O.Premises.begin(), O.Premises.end());
  }
}

bool Solver::runProducer(Subgoal &SG) {
  const Predicate *P = DB.lookup(SG.Pred);
  if (!P)
    return false;

  size_t Before = SG.AnswerSeq.size();
  // Provenance clause context. A nested producer run (a new subgoal created
  // mid-derivation) lands inside an outer clause body; save/restore keeps
  // the outer clause's answers attributing to the right clause with the
  // right premise-stack floor after the nested run returns.
  size_t SavedPremiseBase = PremiseBase;
  uint32_t SavedClauseIdx = CurClauseIdx;
  auto M = Heap.mark();
  TermRef Call = copyTerm(Tables, SG.CallTerm, Heap);
  uint64_t MyLevel = ++CutCounter;
  uint64_t CallKey =
      P->Key.Arity == 0 ? 0 : Database::firstArgKey(Heap, Heap.arg(Call, 0));

  for (size_t ClauseIdx = 0; ClauseIdx < P->Clauses.size(); ++ClauseIdx) {
    const Clause &C = P->Clauses[ClauseIdx];
    if (CallKey != 0 && C.FirstArgKey != 0 && C.FirstArgKey != CallKey) {
      ++Stats.ClauseIndexFiltered;
      continue;
    }

    if (Prov)
      CurClauseIdx = static_cast<uint32_t>(ClauseIdx);

    if (Opts.SupplementaryTabling && clauseIsPure(C)) {
      runClauseSupplementary(SG, C, ClauseIdx, P->Clauses.size());
      continue;
    }

    // Impure clause (cut/negation/...): tuple-at-a-time SLD, with one cut
    // barrier shared across the producer's clause alternatives.
    ++Stats.ClauseResolutions;
    if (Costs)
      Costs->noteStep();
    if (Metrics)
      ++Metrics->pred(Symbols, SG.Pred.Sym, SG.Pred.Arity).Resolutions;
    if (Trace)
      Trace->emit(TraceEventKind::ClauseResolve, SG.Pred.Sym, SG.Pred.Arity);
    auto M2 = Heap.mark();
    VarRenaming Renaming;
    TermRef Head = copyTerm(DB.store(), C.Head, Heap, Renaming);
    Signal S = Signal::exhausted();
    if (unify(Heap, Call, Head, Opts.OccursCheck)) {
      const GoalNode *BodyGoals = nullptr;
      for (size_t I = C.Body.size(); I-- > 0;)
        BodyGoals = makeGoal(copyTerm(DB.store(), C.Body[I], Heap, Renaming),
                             BodyGoals);
      // Everything pushed above this floor while the body runs is a
      // premise of any answer the body derives.
      if (Prov)
        PremiseBase = PremiseStack.size();
      S = solveGoals(BodyGoals, /*Depth=*/1, MyLevel, [&]() {
        recordAnswer(SG, Call);
        return false;
      });
    }
    Heap.undoTo(M2);
    if (S.K == Signal::CutTo && S.Level == MyLevel)
      break; // A cut pruned the remaining clause alternatives.
  }
  Heap.undoTo(M);
  PremiseBase = SavedPremiseBase;
  CurClauseIdx = SavedClauseIdx;
  return SG.AnswerSeq.size() > Before;
}

void Solver::extractCallBindings(const Subgoal &SG, TermRef Instance,
                                 std::vector<TermRef> &Out) const {
  size_t NumVars = SG.CallVars.size();
  Out.assign(NumVars, InvalidTerm);
  if (NumVars == 0)
    return;
  // Lockstep DFS: where CallTerm has an unbound variable, Instance carries
  // that variable's binding in this answer. Early exit once every call
  // variable has been seen (repeated occurrences bind identically).
  size_t Found = 0;
  std::vector<std::pair<TermRef, TermRef>> Work{{SG.CallTerm, Instance}};
  while (!Work.empty() && Found < NumVars) {
    auto [C, I] = Work.back();
    Work.pop_back();
    C = Tables.deref(C);
    switch (Tables.tag(C)) {
    case TermTag::Ref: {
      size_t Idx = std::find(SG.CallVars.begin(), SG.CallVars.end(), C) -
                   SG.CallVars.begin();
      assert(Idx < NumVars && "call variable missing from CallVars");
      if (Out[Idx] == InvalidTerm) {
        Out[Idx] = I;
        ++Found;
      }
      break;
    }
    case TermTag::Struct: {
      TermRef ID = Heap.deref(I);
      assert(Heap.tag(ID) == TermTag::Struct &&
             Heap.arity(ID) == Tables.arity(C) &&
             "answer instance does not match the call skeleton");
      for (uint32_t A = Tables.arity(C); A-- > 0;)
        Work.push_back({Tables.arg(C, A), Heap.arg(ID, A)});
      break;
    }
    case TermTag::Atom:
    case TermTag::Int:
      break;
    }
  }
}

void Solver::bindFactoredAnswer(const Subgoal &SG, size_t I,
                                const std::vector<TermRef> &GoalVars) {
  size_t NumVars = SG.CallVars.size();
  assert(GoalVars.size() == NumVars &&
         "consumer goal is a variant of the tabled call");
  const TermRef *B = SG.AnswerBindings.data() + I * NumVars;
  // One shared renaming keeps variables shared across binding slots
  // shared in the consumer too. The goal's variables are unbound here
  // (the caller holds a mark), so plain trailed binds suffice.
  VarRenaming Renaming;
  for (size_t J = 0; J < NumVars; ++J)
    Heap.bind(GoalVars[J], copyTerm(Tables, B[J], Heap, Renaming));
}

size_t Solver::releaseCompletedState(Subgoal &SG) {
  // Frontiers, consumer links and answer dedup structures only serve
  // evaluation; a completed table never gains an answer, so release them
  // and account the shrink (tableSpaceBytes drops by the same amount).
  size_t FrontierBytes = 0;
  for (const auto &CF : SG.Frontiers)
    if (CF)
      FrontierBytes += CF->memoryBytes();
  size_t Freed = FrontierBytes;
  size_t DedupBytes = 0;
  for (const auto &K : SG.AnswerKeys)
    DedupBytes += K.capacity() + sizeof(void *) * 2;
  if (SG.AnswerTrie)
    DedupBytes += sizeof(TermTrie) + SG.AnswerTrie->memoryBytes();
  if (SG.SharedAnswerTrie)
    DedupBytes +=
        sizeof(ConcurrentTermTrie) + SG.SharedAnswerTrie->memoryBytes();
  Freed += DedupBytes;
  Freed += SG.Consumers.size() * sizeof(void *) * 2;
  // An answer table only grows until completion, so its footprint here is
  // its lifetime peak: the dedup structure just measured plus the answer
  // vectors that survive completion.
  size_t AnswerBytes = DedupBytes +
                       SG.Answers.capacity() * sizeof(TermRef) +
                       SG.AnswerBindings.capacity() * sizeof(TermRef) +
                       SG.AnswerSeq.capacity() * sizeof(uint64_t);
  if (AnswerBytes > Water.PeakSubgoalAnswerBytes)
    Water.PeakSubgoalAnswerBytes = AnswerBytes;
  SG.Frontiers.clear();
  SG.Frontiers.shrink_to_fit();
  SG.AnswerKeys.clear();
  SG.AnswerTrie.reset();
  SG.SharedAnswerTrie.reset();
  SG.Consumers.clear();
  Stats.FrontierBytesFreed += Freed;
  return FrontierBytes;
}

Subgoal &Solver::ensureSubgoal(TermRef Goal, PredKey Key,
                               std::vector<TermRef> *GoalVars) {
  std::string CallKey;
  if (Opts.UseTrieTables) {
    // One walk of the call term performs lookup AND insert; the walk also
    // yields the call's free variables (for factored answer return) as a
    // byproduct, so a table hit costs no allocation at all.
    TermTrie::InsertResult R = SubgoalTrie.insert(
        Heap, Goal, static_cast<uint32_t>(SubgoalOwned.size()), GoalVars);
    Stats.TrieNodesCreated += R.NodesCreated;
    if (!R.Inserted) {
      ++Stats.TrieHits;
      Subgoal &Hit = *SubgoalOwned[R.Value];
      if (Hit.Invalidated) {
        // The trie has no delete, so a tombstoned variant is revived in
        // place: same Subgoal record, same ordinal, fresh producer run
        // against the mutated program.
        reviveSubgoal(Hit);
        driveSubgoal(Hit);
      }
      return Hit;
    }
    ++Stats.TrieMisses;
  } else {
    CallKey = canonicalKey(Heap, Goal);
    auto It = SubgoalByKey.find(CallKey);
    if (It != SubgoalByKey.end()) {
      Subgoal &Hit = *It->second;
      if (Hit.Invalidated) {
        reviveSubgoal(Hit);
        driveSubgoal(Hit);
      }
      return Hit;
    }
  }

  ++Stats.SubgoalsCreated;
  if (Metrics)
    ++Metrics->pred(Symbols, Key.Sym, Key.Arity).NewSubgoals;
  if (Trace)
    Trace->emit(TraceEventKind::SubgoalNew, Key.Sym, Key.Arity,
                SubgoalOrder.size() + 1);
  auto Owned = std::make_unique<Subgoal>();
  Subgoal &SG = *Owned;
  SG.Pred = Key;
  // Creation-order index: the trie leaf above already carries the same
  // value, and provenance premises/forest nodes are keyed by it.
  SG.Ordinal = static_cast<uint32_t>(SubgoalOwned.size());
  SG.Key = std::move(CallKey); // Empty on the trie path: no key string.
  SG.CallTerm = copyTerm(Heap, Goal, Tables);
  if (size_t StoreBytes = Tables.memoryBytes();
      StoreBytes > Water.PeakTermStoreBytes)
    Water.PeakTermStoreBytes = StoreBytes;
  // copyTerm renames variables in first-occurrence order, so CallVars
  // corresponds index-wise to the trie walk's variable numbering (and to
  // any variant consumer's own free-variable order).
  collectFreeVars(Tables, SG.CallTerm, SG.CallVars);
  SG.Factored =
      Opts.UseTrieTables &&
      !AnswerJoins.count((uint64_t(Key.Sym) << 32) | Key.Arity);
  if (SG.Factored) {
    // Parallel eval workers dedup answers through the optimistic
    // check-then-lock trie; serial solvers keep the plain one.
    if (Shared)
      SG.SharedAnswerTrie = std::make_unique<ConcurrentTermTrie>();
    else
      SG.AnswerTrie = std::make_unique<TermTrie>();
  }

  // Shared-table coordination (parallel eval workers only): consult the
  // space before committing to a producer run. A published table
  // short-circuits the whole cone; a fresh claim obliges this worker to
  // publish at completion; an in-flight claim is evaluated privately —
  // waiting on another worker's completion could deadlock on SCCs that
  // span workers, so nobody ever waits.
  if (Shared) {
    SharedTableSpace::Outcome O =
        Shared->claim(Heap, Goal, Key.Sym, Key.Arity, SharedWorkerId);
    if (O.E && O.H == SharedTableSpace::Hit::Published) {
      ++Stats.SharedWarmImports;
      SG.Dfn = SG.MinLink = ++DfnCounter;
      SG.Dirty = false;
      SG.AnswerTrie.reset();
      SG.SharedAnswerTrie.reset();
      fillSubgoalFromPublished(SG, *Shared->published(*O.E));
      SubgoalOwned.push_back(std::move(Owned));
      SubgoalOrder.push_back(&SG);
      return SG;
    }
    if (O.E && O.H == SharedTableSpace::Hit::Claimed) {
      SG.SharedClaim = O.E;
      ++Stats.SharedClaims;
    } else {
      ++Stats.SharedDupEvals;
    }
  }
  SubgoalOwned.push_back(std::move(Owned));
  if (!Opts.UseTrieTables)
    SubgoalByKey.emplace(SG.Key, &SG);
  SubgoalOrder.push_back(&SG);
  driveSubgoal(SG);
  return SG;
}

void Solver::reviveSubgoal(Subgoal &SG) {
  SG.Invalidated = false;
  if (SG.Factored) {
    // The tombstone released the answer dedup structure; re-derivation
    // needs a fresh one of whichever kind this solver uses.
    if (Shared)
      SG.SharedAnswerTrie = std::make_unique<ConcurrentTermTrie>();
    else
      SG.AnswerTrie = std::make_unique<TermTrie>();
  }
  // A revival is a cold re-derivation. The caller-side ordinal check in
  // solveTabled/solveSemiGoal cannot see it (the ordinal is old), so the
  // cold miss is counted here; the two paths are disjoint by construction.
  ++Stats.TablesRevived;
  ++Stats.ColdTableMisses;
  if (Metrics)
    ++Metrics->pred(Symbols, SG.Pred.Sym, SG.Pred.Arity).ColdMisses;
  if (Trace)
    Trace->emit(TraceEventKind::SubgoalNew, SG.Pred.Sym, SG.Pred.Arity,
                SG.Ordinal + 1);
}

void Solver::driveSubgoal(Subgoal &SG) {
  SG.Dfn = SG.MinLink = ++DfnCounter;
  SG.OnStack = true;
  SG.StackPos = CompletionStack.size();
  CompletionStack.push_back(&SG);

  // Initial producer run. Dependencies on incomplete subgoals found during
  // the run lower SG.MinLink (see solveTabled).
  SG.Dirty = false;
  ProducerStack.push_back(&SG);
  if (Cursor)
    Cursor->pushFrame(SG.Pred.Sym, SG.Pred.Arity);
  if (Costs)
    Costs->pushFrame(SG.Ordinal);
  runProducer(SG);
  if (Costs)
    Costs->popFrame();
  if (Cursor)
    Cursor->popFrame();
  ProducerStack.pop_back();

  if (SG.MinLink == SG.Dfn) {
    // SG leads its SCC. Re-run members (the stack from SG upward, which
    // may grow as evaluation exposes new call patterns), but only those
    // marked dirty by a dependency gaining answers, until the component
    // is quiescent; then complete it wholesale.
    bool Any = true;
    while (Any) {
      Any = false;
      ++Stats.FixpointRounds;
      for (size_t I = SG.StackPos; I < CompletionStack.size(); ++I) {
        Subgoal *Member = CompletionStack[I];
        if (!Member->Dirty)
          continue;
        Member->Dirty = false;
        Any = true;
        ProducerStack.push_back(Member);
        if (Cursor)
          Cursor->pushFrame(Member->Pred.Sym, Member->Pred.Arity);
        if (Costs) {
          Costs->pushFrame(Member->Ordinal);
          Costs->noteResumption(Member->Ordinal);
        }
        runProducer(*Member);
        if (Costs)
          Costs->popFrame();
        if (Cursor)
          Cursor->popFrame();
        ProducerStack.pop_back();
      }
    }
    // Incompleteness is an SCC-wide property: members feed each other
    // answers, so one truncated member can starve them all. Propagate the
    // poison across the component before certifying it complete.
    bool SCCIncomplete = false;
    for (size_t I = SG.StackPos; I < CompletionStack.size(); ++I)
      SCCIncomplete |= CompletionStack[I]->Incomplete;
    // Forest bookkeeping: members completing together form one SCC; the
    // global completion sequence orders tables by when they closed.
    ++SccCounter;
    if (Cursor)
      Cursor->setPhase(EvalPhase::Complete);
    // The outermost completion is where live table space is maximal (every
    // frontier of the batch is still allocated); walk the tables once
    // before releasing so PeakTableSpaceBytes sees the pre-free footprint.
    if (SG.StackPos == 0)
      (void)tableSpaceBytes();
    size_t SccFrontierBytes = 0;
    for (size_t I = SG.StackPos; I < CompletionStack.size(); ++I) {
      Subgoal *Member = CompletionStack[I];
      Member->SccId = SccCounter;
      Member->CompletionSeq = ++CompletionCounter;
      Member->CompletedInQuery = CurQueryId;
      Member->DerivedAtRevision = DB.globalRevision();
      if (SCCIncomplete) {
        Member->Incomplete = true;
        ++Stats.IncompleteTables;
        if (Recorder)
          Recorder->noteIncompleteTable(CurQueryId, Member->Ordinal,
                                        Symbols.name(Member->Pred.Sym));
      }
      Member->Complete = true;
      Member->OnStack = false;
      // Publish freshly claimed tables to the shared space now that the
      // taint is settled SCC-wide (and before the dedup structures are
      // released below).
      if (Shared && Member->SharedClaim) {
        Shared->publish(*Member->SharedClaim, buildPublishedTable(*Member));
        Member->SharedClaim = nullptr;
        ++Stats.SharedPublishes;
      }
      // Producers never re-run once complete; release the supplementary
      // tables and answer dedup structures.
      if (Costs)
        Costs->noteTableBytes(Member->Ordinal, subgoalMemoryBytes(*Member));
      SccFrontierBytes += releaseCompletedState(*Member);
      if (Metrics)
        ++Metrics->pred(Symbols, Member->Pred.Sym, Member->Pred.Arity)
              .Completions;
      if (Trace)
        Trace->emit(TraceEventKind::SubgoalComplete, Member->Pred.Sym,
                    Member->Pred.Arity, answerCount(*Member));
    }
    if (SccFrontierBytes > Water.PeakSccFrontierBytes)
      Water.PeakSccFrontierBytes = SccFrontierBytes;
    CompletionStack.resize(SG.StackPos);
    if (Cursor)
      Cursor->setPhase(ProducerStack.empty() ? EvalPhase::Idle
                                             : EvalPhase::Resolve);
  }
}

Solver::Signal Solver::solveTabled(const Predicate &P, TermRef Goal,
                                   const GoalNode *Rest, size_t Depth,
                                   uint64_t CutLevel,
                                   const SolutionFn &OnSolution) {
  ++Stats.TabledCalls;
  if (Metrics)
    ++Metrics->pred(Symbols, P.Key.Sym, P.Key.Arity).Calls;
  if (Trace)
    Trace->emit(TraceEventKind::TabledCall, P.Key.Sym, P.Key.Arity);
  std::vector<TermRef> GoalVars;
  size_t NSubgoals = SubgoalOwned.size();
  Subgoal &SG =
      ensureSubgoal(Goal, P.Key, Opts.UseTrieTables ? &GoalVars : nullptr);
  // Warm/cold accounting: a variant that had to be created is a cold
  // miss; one completed by an *earlier* query is a warm hit (the reuse a
  // long-lived service banks on). Re-hits within the producing query are
  // neither — that is ordinary fixpoint traffic.
  if (SG.Ordinal >= NSubgoals) {
    ++Stats.ColdTableMisses;
    if (Metrics)
      ++Metrics->pred(Symbols, P.Key.Sym, P.Key.Arity).ColdMisses;
  } else if (SG.Complete && SG.CompletedInQuery != CurQueryId) {
    ++Stats.WarmTableHits;
    if (Metrics)
      ++Metrics->pred(Symbols, P.Key.Sym, P.Key.Arity).WarmHits;
    if (Costs)
      Costs->noteWarmHit(SG.Ordinal);
  }

  // Record the SCC dependency of the producer that issued this call, and
  // subscribe it to future answers for semi-naive re-running.
  if (!SG.Complete && !ProducerStack.empty()) {
    Subgoal *Parent = ProducerStack.back();
    Parent->MinLink = std::min(Parent->MinLink, SG.MinLink);
    SG.Consumers.insert(Parent);
  }
  // Consuming a truncated table taints the consumer: its answers derive
  // from a possibly-partial premise set.
  if (SG.Incomplete && !ProducerStack.empty())
    ProducerStack.back()->Incomplete = true;
  if (!ProducerStack.empty())
    addDepEdge(ProducerStack.back()->Ordinal, SG.Ordinal);

  // Answer-return phase: this consumer now replays the table into its
  // continuation. The next producer frame push flips back to Resolve.
  if (Cursor)
    Cursor->setPhase(EvalPhase::Answer);
  // Consume answers. The index re-reads size() so answers added while this
  // consumer is active (fixpoint rounds of an enclosing SCC) are picked up;
  // answers added after we return are replayed by producer re-runs.
  if (SG.Factored) {
    // Substitution factoring: the goal is a variant of the tabled call,
    // so its free variables (in first-occurrence order) correspond 1:1 to
    // CallVars; binding them to the stored tuple replaces the legacy
    // copy-whole-instance-then-unify answer return.
    for (size_t I = 0; I < SG.AnswerSeq.size(); ++I) {
      auto M = Heap.mark();
      bindFactoredAnswer(SG, I, GoalVars);
      if (Costs)
        Costs->noteAnswerConsumed(SG.Ordinal);
      // The consumed answer rides the premise stack while the continuation
      // runs: any answer recorded downstream lists it as a premise.
      if (Prov)
        PremiseStack.push_back({SG.Ordinal, static_cast<uint32_t>(I)});
      Signal S = solveGoals(Rest, Depth + 1, CutLevel, OnSolution);
      if (Prov)
        PremiseStack.pop_back();
      Heap.undoTo(M);
      if (S.K != Signal::Exhausted)
        return S;
    }
    return Signal::exhausted();
  }
  for (size_t I = 0; I < SG.Answers.size(); ++I) {
    auto M = Heap.mark();
    TermRef Ans = copyTerm(Tables, SG.Answers[I], Heap);
    Signal S = Signal::exhausted();
    if (unify(Heap, Goal, Ans, /*OccursCheck=*/false)) {
      if (Costs)
        Costs->noteAnswerConsumed(SG.Ordinal);
      if (Prov)
        PremiseStack.push_back({SG.Ordinal, static_cast<uint32_t>(I)});
      S = solveGoals(Rest, Depth + 1, CutLevel, OnSolution);
      if (Prov)
        PremiseStack.pop_back();
    }
    Heap.undoTo(M);
    if (S.K != Signal::Exhausted)
      return S;
  }
  return Signal::exhausted();
}

//===----------------------------------------------------------------------===//
// Answer provenance & forest export
//===----------------------------------------------------------------------===//

std::optional<ProofNode>
Solver::justifyAnswer(const Subgoal &SG, size_t AnswerIdx,
                      const ProofBuildOptions &O) const {
  if (!Prov)
    return std::nullopt;
  return buildProofTree(*Prov, SG.Ordinal, static_cast<uint32_t>(AnswerIdx),
                        O);
}

std::string Solver::formatAnswer(const Subgoal &SG, size_t I) const {
  TermStore Scratch;
  TermRef Inst = answerInstance(SG, I, Scratch);
  return TermWriter::toString(Symbols, Scratch, Inst);
}

std::string Solver::formatCall(const Subgoal &SG) const {
  return TermWriter::toString(Symbols, Tables, SG.CallTerm);
}

std::string Solver::renderProof(const ProofNode &Root) const {
  return renderProofTree(Root, [this](const ProofNode &N) {
    if (N.SubgoalIdx >= SubgoalOrder.size())
      return std::string("<unknown subgoal ") + std::to_string(N.SubgoalIdx) +
             ">";
    const Subgoal &SG = *SubgoalOrder[N.SubgoalIdx];
    if (N.AnswerIdx >= SG.AnswerSeq.size())
      return formatCall(SG) + " <missing answer " +
             std::to_string(N.AnswerIdx) + ">";
    return formatAnswer(SG, N.AnswerIdx);
  });
}

ForestGraph Solver::exportForest() const {
  ForestGraph G;
  G.Nodes.reserve(SubgoalOrder.size());
  for (const Subgoal *SG : SubgoalOrder) {
    ForestNode N;
    N.Pred = Symbols.name(SG->Pred.Sym) + "/" + std::to_string(SG->Pred.Arity);
    N.Label = formatCall(*SG);
    N.Answers = SG->AnswerSeq.size();
    N.Complete = SG->Complete;
    N.Incomplete = SG->Incomplete;
    N.SccId = SG->SccId;
    N.CompletionOrder = SG->CompletionSeq;
    G.Nodes.push_back(std::move(N));
  }
  G.Edges = DepEdges;
  // Flame-view annotation: when a cost profile is attached, nodes the
  // current/last query touched carry their self-vs-cumulative split.
  if (Costs) {
    CostSummary CS = exportCostSummary();
    for (const CostNode &C : CS.Nodes) {
      if (C.Ordinal >= G.Nodes.size())
        continue;
      ForestNode &F = G.Nodes[C.Ordinal];
      F.HasCost = true;
      F.CostWarm = C.Warm;
      F.CostSelfNs = C.SelfNs;
      F.CostCumNs = C.CumNs;
      F.CostSteps = C.Steps;
      F.CostAnswersConsumed = C.AnswersConsumed;
      F.CostResumptions = C.Resumptions;
    }
  }
  return G;
}

CostSummary Solver::exportCostSummary() const {
  CostSummary S;
  if (!Costs)
    return S;
  S.QueryId = Costs->queryId();
  S.QueryWallNs = Costs->queryWallNs();
  S.AttributedNs = Costs->attributedNs();
  S.RootNs = Costs->rootNs();
  S.RootSteps = Costs->rootSteps();
  // Touched is first-touch ordered, so a parent's node index is always
  // assigned before any child needs to look it up.
  std::unordered_map<uint32_t, uint32_t> NodeOf;
  NodeOf.reserve(Costs->touched().size());
  for (uint32_t Ord : Costs->touched()) {
    const CostProfile::Record *R = Costs->record(Ord);
    if (!R || Ord >= SubgoalOrder.size())
      continue;
    const Subgoal &SG = *SubgoalOrder[Ord];
    CostNode N;
    N.Ordinal = Ord;
    N.Pred = Symbols.name(SG.Pred.Sym) + "/" + std::to_string(SG.Pred.Arity);
    N.Label = formatCall(SG);
    N.SccId = SG.SccId;
    N.Warm = R->Warm;
    N.SelfNs = R->SelfNs;
    N.Steps = R->Steps;
    N.AnswersInserted = R->AnswersInserted;
    N.AnswersConsumed = R->AnswersConsumed;
    N.Resumptions = R->Resumptions;
    N.TableBytes = R->TableBytes;
    if (R->Parent != CostProfile::NoParent) {
      auto It = NodeOf.find(R->Parent);
      if (It != NodeOf.end())
        N.Parent = It->second;
    }
    NodeOf.emplace(Ord, static_cast<uint32_t>(S.Nodes.size()));
    S.Nodes.push_back(std::move(N));
  }
  computeCumulativeNs(S.Nodes);

  auto Roll = [](std::vector<CostRollup> &Out,
                 std::unordered_map<std::string, size_t> &Slot,
                 const std::string &Key, const CostNode &N) {
    auto [It, Fresh] = Slot.try_emplace(Key, Out.size());
    if (Fresh) {
      Out.emplace_back();
      Out.back().Key = Key;
    }
    CostRollup &R = Out[It->second];
    R.Subgoals += 1;
    R.WarmHits += N.Warm ? 1 : 0;
    R.SelfNs += N.SelfNs;
    R.Steps += N.Steps;
    R.AnswersInserted += N.AnswersInserted;
    R.AnswersConsumed += N.AnswersConsumed;
    R.Resumptions += N.Resumptions;
    R.TableBytes += N.TableBytes;
  };
  std::unordered_map<std::string, size_t> PredSlot, SccSlot;
  for (const CostNode &N : S.Nodes) {
    Roll(S.PerPred, PredSlot, N.Pred, N);
    Roll(S.PerScc, SccSlot,
         N.SccId ? "scc " + std::to_string(N.SccId) : std::string("open"), N);
  }
  auto BySelf = [](const CostRollup &A, const CostRollup &B) {
    return A.SelfNs != B.SelfNs ? A.SelfNs > B.SelfNs : A.Key < B.Key;
  };
  std::sort(S.PerPred.begin(), S.PerPred.end(), BySelf);
  std::sort(S.PerScc.begin(), S.PerScc.end(), BySelf);
  return S;
}

ProvenanceArena::CheckStats Solver::checkProvenance() const {
  if (!Prov)
    return {};
  return Prov->check([this](ProvPremise P) {
    return P.SubgoalIdx < SubgoalOrder.size() &&
           P.AnswerIdx < SubgoalOrder[P.SubgoalIdx]->AnswerSeq.size();
  });
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

Solver::Signal Solver::solveBuiltin(BuiltinKind Kind, TermRef Goal,
                                    const GoalNode *Rest, size_t Depth,
                                    uint64_t CutLevel,
                                    const SolutionFn &OnSolution) {
  auto Proceed = [&]() {
    return solveGoals(Rest, Depth + 1, CutLevel, OnSolution);
  };
  // Runs Cont with Mark-scoped bindings; undoes them; propagates signals.
  auto Scoped = [&](auto &&Try) -> Signal {
    auto M = Heap.mark();
    Signal S = Try() ? Proceed() : Signal::exhausted();
    Heap.undoTo(M);
    return S;
  };
  auto Arg = [&](uint32_t I) { return Heap.arg(Goal, I); };

  switch (Kind) {
  case BuiltinKind::None:
    assert(false && "solveBuiltin called with None");
    return Signal::exhausted();

  case BuiltinKind::True:
    return Proceed();
  case BuiltinKind::Fail:
    return Signal::exhausted();

  case BuiltinKind::Cut: {
    Signal S = Proceed();
    if (S.K == Signal::Stop)
      return S;
    if (S.K == Signal::CutTo && S.Level < CutLevel)
      return S; // An outer cut dominates.
    return Signal::cutTo(CutLevel);
  }

  case BuiltinKind::Unify:
    return Scoped(
        [&] { return unify(Heap, Arg(0), Arg(1), Opts.OccursCheck); });

  case BuiltinKind::NotUnify: {
    auto M = Heap.mark();
    bool Ok = unify(Heap, Arg(0), Arg(1), Opts.OccursCheck);
    Heap.undoTo(M);
    return Ok ? Signal::exhausted() : Proceed();
  }

  case BuiltinKind::Equal:
    return termsEqual(Heap, Arg(0), Arg(1)) ? Proceed() : Signal::exhausted();
  case BuiltinKind::NotEqual:
    return termsEqual(Heap, Arg(0), Arg(1)) ? Signal::exhausted() : Proceed();

  case BuiltinKind::Var:
    return Heap.isUnboundVar(Arg(0)) ? Proceed() : Signal::exhausted();
  case BuiltinKind::NonVar:
    return Heap.isUnboundVar(Arg(0)) ? Signal::exhausted() : Proceed();
  case BuiltinKind::Atom:
    return Heap.tag(Heap.deref(Arg(0))) == TermTag::Atom
               ? Proceed()
               : Signal::exhausted();
  case BuiltinKind::Integer:
    return Heap.tag(Heap.deref(Arg(0))) == TermTag::Int
               ? Proceed()
               : Signal::exhausted();
  case BuiltinKind::Atomic: {
    TermTag T = Heap.tag(Heap.deref(Arg(0)));
    return (T == TermTag::Atom || T == TermTag::Int) ? Proceed()
                                                     : Signal::exhausted();
  }
  case BuiltinKind::Compound:
    return Heap.tag(Heap.deref(Arg(0))) == TermTag::Struct
               ? Proceed()
               : Signal::exhausted();

  case BuiltinKind::Is: {
    auto V = evalArith(Heap, Symbols, Arg(1));
    if (!V)
      return Signal::exhausted();
    return Scoped([&] { return unify(Heap, Arg(0), Heap.mkInt(*V)); });
  }

  case BuiltinKind::Lt:
  case BuiltinKind::Le:
  case BuiltinKind::Gt:
  case BuiltinKind::Ge:
  case BuiltinKind::ArithEq:
  case BuiltinKind::ArithNe: {
    auto A = evalArith(Heap, Symbols, Arg(0));
    auto B = evalArith(Heap, Symbols, Arg(1));
    if (!A || !B)
      return Signal::exhausted();
    bool Holds = false;
    switch (Kind) {
    case BuiltinKind::Lt: Holds = *A < *B; break;
    case BuiltinKind::Le: Holds = *A <= *B; break;
    case BuiltinKind::Gt: Holds = *A > *B; break;
    case BuiltinKind::Ge: Holds = *A >= *B; break;
    case BuiltinKind::ArithEq: Holds = *A == *B; break;
    case BuiltinKind::ArithNe: Holds = *A != *B; break;
    default: break;
    }
    return Holds ? Proceed() : Signal::exhausted();
  }

  case BuiltinKind::Not: {
    // Negation as failure; the subgoal runs in its own cut scope and its
    // bindings never escape.
    auto M = Heap.mark();
    bool Found = false;
    solveGoals(makeGoal(Arg(0), nullptr), Depth + 1, ++CutCounter,
               [&]() {
                 Found = true;
                 return true;
               });
    Heap.undoTo(M);
    return Found ? Signal::exhausted() : Proceed();
  }

  case BuiltinKind::IfThen:
  case BuiltinKind::Disj: {
    TermRef L = Heap.deref(Arg(0));
    TermRef R = InvalidTerm;
    if (Kind == BuiltinKind::Disj)
      R = Arg(1);

    // If-then-else: (Cond -> Then ; Else), or bare (Cond -> Then).
    bool IsIte = Kind == BuiltinKind::IfThen ||
                 (Heap.tag(L) == TermTag::Struct &&
                  Heap.symbol(L) == ArrowSym && Heap.arity(L) == 2);
    if (IsIte) {
      TermRef Cond, Then;
      if (Kind == BuiltinKind::IfThen) {
        Cond = Arg(0);
        Then = Arg(1);
      } else {
        Cond = Heap.arg(L, 0);
        Then = Heap.arg(L, 1);
      }
      auto M = Heap.mark();
      bool CondHeld = false;
      Signal Inner = Signal::exhausted();
      // Then runs inside the callback so it sees the condition's bindings;
      // returning true commits to the first solution of the condition.
      solveGoals(makeGoal(Cond, nullptr), Depth + 1, ++CutCounter, [&]() {
        CondHeld = true;
        Inner = solveGoals(makeGoal(Then, Rest), Depth + 1, CutLevel,
                           OnSolution);
        return true;
      });
      Heap.undoTo(M);
      if (CondHeld)
        return Inner;
      if (R == InvalidTerm)
        return Signal::exhausted();
      return solveGoals(makeGoal(R, Rest), Depth + 1, CutLevel, OnSolution);
    }

    // Plain disjunction.
    Signal S =
        solveGoals(makeGoal(Arg(0), Rest), Depth + 1, CutLevel, OnSolution);
    if (S.K != Signal::Exhausted)
      return S;
    return solveGoals(makeGoal(Arg(1), Rest), Depth + 1, CutLevel,
                      OnSolution);
  }

  case BuiltinKind::Call: {
    // Cut inside call/1 is local to it.
    uint64_t Level = ++CutCounter;
    Signal S = solveGoals(makeGoal(Arg(0), Rest), Depth + 1, Level,
                          OnSolution);
    if (S.K == Signal::CutTo && S.Level == Level)
      return Signal::exhausted();
    return S;
  }

  case BuiltinKind::Iff:
    return solveIff(Goal, Rest, Depth, CutLevel, OnSolution);

  case BuiltinKind::Between: {
    auto Lo = evalArith(Heap, Symbols, Arg(0));
    auto Hi = evalArith(Heap, Symbols, Arg(1));
    if (!Lo || !Hi)
      return Signal::exhausted();
    for (int64_t V = *Lo; V <= *Hi; ++V) {
      Signal S = Scoped([&] { return unify(Heap, Arg(2), Heap.mkInt(V)); });
      if (S.K != Signal::Exhausted)
        return S;
    }
    return Signal::exhausted();
  }

  case BuiltinKind::Functor: {
    TermRef T = Heap.deref(Arg(0));
    switch (Heap.tag(T)) {
    case TermTag::Atom:
      return Scoped([&] {
        return unify(Heap, Arg(1), Heap.mkAtom(Heap.symbol(T))) &&
               unify(Heap, Arg(2), Heap.mkInt(0));
      });
    case TermTag::Int:
      return Scoped([&] {
        return unify(Heap, Arg(1), Heap.mkInt(Heap.intValue(T))) &&
               unify(Heap, Arg(2), Heap.mkInt(0));
      });
    case TermTag::Struct:
      return Scoped([&] {
        return unify(Heap, Arg(1), Heap.mkAtom(Heap.symbol(T))) &&
               unify(Heap, Arg(2), Heap.mkInt(Heap.arity(T)));
      });
    case TermTag::Ref: {
      // Construction mode: functor(T, Name, Arity) with Name/Arity bound.
      TermRef NameT = Heap.deref(Arg(1));
      TermRef ArityT = Heap.deref(Arg(2));
      if (Heap.tag(ArityT) != TermTag::Int)
        return Signal::exhausted();
      int64_t N = Heap.intValue(ArityT);
      if (N == 0)
        return Scoped([&] { return unify(Heap, Arg(0), NameT); });
      if (Heap.tag(NameT) != TermTag::Atom || N < 0)
        return Signal::exhausted();
      return Scoped([&] {
        std::vector<TermRef> Args;
        for (int64_t I = 0; I < N; ++I)
          Args.push_back(Heap.mkVar());
        return unify(Heap, Arg(0), Heap.mkStruct(Heap.symbol(NameT), Args));
      });
    }
    }
    return Signal::exhausted();
  }

  case BuiltinKind::Arg: {
    TermRef NT = Heap.deref(Arg(0));
    TermRef T = Heap.deref(Arg(1));
    if (Heap.tag(NT) != TermTag::Int || Heap.tag(T) != TermTag::Struct)
      return Signal::exhausted();
    int64_t N = Heap.intValue(NT);
    if (N < 1 || N > static_cast<int64_t>(Heap.arity(T)))
      return Signal::exhausted();
    return Scoped([&] {
      return unify(Heap, Arg(2), Heap.arg(T, static_cast<uint32_t>(N - 1)));
    });
  }

  case BuiltinKind::Univ: {
    TermRef T = Heap.deref(Arg(0));
    if (Heap.tag(T) != TermTag::Ref) {
      // Decomposition: T =.. [Name|Args].
      std::vector<TermRef> Elems;
      if (Heap.tag(T) == TermTag::Struct) {
        Elems.push_back(Heap.mkAtom(Heap.symbol(T)));
        for (uint32_t I = 0, E = Heap.arity(T); I < E; ++I)
          Elems.push_back(Heap.arg(T, I));
      } else {
        Elems.push_back(T);
      }
      return Scoped([&] {
        return unify(Heap, Arg(1), Heap.mkList(Symbols, Elems));
      });
    }
    // Construction: walk the (proper) list.
    std::vector<TermRef> Elems;
    TermRef L = Heap.deref(Arg(1));
    while (Heap.tag(L) == TermTag::Struct &&
           Heap.symbol(L) == Symbols.Cons && Heap.arity(L) == 2) {
      Elems.push_back(Heap.arg(L, 0));
      L = Heap.deref(Heap.arg(L, 1));
    }
    if (!(Heap.tag(L) == TermTag::Atom && Heap.symbol(L) == Symbols.Nil) ||
        Elems.empty())
      return Signal::exhausted();
    TermRef Functor = Heap.deref(Elems[0]);
    if (Elems.size() == 1)
      return Scoped([&] { return unify(Heap, Arg(0), Functor); });
    if (Heap.tag(Functor) != TermTag::Atom)
      return Signal::exhausted();
    return Scoped([&] {
      std::span<const TermRef> Args(Elems.data() + 1, Elems.size() - 1);
      return unify(Heap, Arg(0), Heap.mkStruct(Heap.symbol(Functor), Args));
    });
  }
  }
  return Signal::exhausted();
}

Solver::Signal Solver::solveIff(TermRef Goal, const GoalNode *Rest,
                                size_t Depth, uint64_t CutLevel,
                                const SolutionFn &OnSolution) {
  // iff(X, Y1, ..., Yk) is the truth table of X <-> (Y1 /\ ... /\ Yk)
  // (Section 3.1). Rather than materializing 2^k facts we enumerate
  // satisfying rows natively with early pruning: the X=true row forces
  // every conjunct true; the X=false rows need at least one false
  // conjunct. This is still the enumerative Prop representation -- the
  // answer tables below stay truth tables -- only the literal is native.
  uint32_t Arity = Heap.arity(Goal);
  auto Proceed = [&]() {
    return solveGoals(Rest, Depth + 1, CutLevel, OnSolution);
  };

  TermRef TrueAtom = Heap.mkAtom(Symbols.BoolTrue);
  TermRef FalseAtom = Heap.mkAtom(Symbols.BoolFalse);

  // Row 1: everything true.
  {
    auto M = Heap.mark();
    bool Ok = true;
    for (uint32_t I = 0; I < Arity && Ok; ++I)
      Ok = unify(Heap, Heap.arg(Goal, I), TrueAtom);
    Signal S = Ok ? Proceed() : Signal::exhausted();
    Heap.undoTo(M);
    if (S.K != Signal::Exhausted)
      return S;
  }

  if (Arity == 1)
    return Signal::exhausted(); // iff(X): empty conjunction is true.

  // Rows with X=false: enumerate conjunct assignments with >= 1 false.
  auto M = Heap.mark();
  Signal Out = Signal::exhausted();
  if (unify(Heap, Heap.arg(Goal, 0), FalseAtom)) {
    // Recursive enumeration over conjuncts 1..Arity-1.
    std::function<Signal(uint32_t, bool)> Enum =
        [&](uint32_t I, bool AnyFalse) -> Signal {
      if (I == Arity)
        return AnyFalse ? Proceed() : Signal::exhausted();
      for (bool Val : {true, false}) {
        auto M2 = Heap.mark();
        Signal S = Signal::exhausted();
        if (unify(Heap, Heap.arg(Goal, I), Val ? TrueAtom : FalseAtom))
          S = Enum(I + 1, AnyFalse || !Val);
        Heap.undoTo(M2);
        if (S.K != Signal::Exhausted)
          return S;
      }
      return Signal::exhausted();
    };
    Out = Enum(1, false);
  }
  Heap.undoTo(M);
  return Out;
}
