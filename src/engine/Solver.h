//===- Solver.h - Tabled SLD resolution engine ------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation engine: SLD resolution with XSB-style variant tabling.
///
/// Nontabled predicates resolve against program clauses by ordinary
/// backtracking. A call to a *tabled* predicate first looks for a variant
/// of itself in the subgoal table: on a hit it resolves against the
/// recorded answers; on a miss the subgoal is entered, its answers are
/// produced by clause resolution (deduplicated by variant checks), and
/// mutually recursive subgoals are driven to fixpoint per strongly
/// connected component before being marked complete.
///
/// This gives the two properties the paper leans on:
///   * completeness — the minimal model of a finite-domain program is
///     computed in full, and evaluation terminates;
///   * call capture — every subgoal encountered under the left-to-right
///     selection rule is recorded, so input patterns (e.g. input
///     groundness) come for free from the call table.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_ENGINE_SOLVER_H
#define LPA_ENGINE_SOLVER_H

#include "engine/Builtins.h"
#include "engine/Database.h"
#include "obs/CostProfile.h"
#include "obs/FlightRecorder.h"
#include "obs/Forest.h"
#include "obs/Metrics.h"
#include "obs/Provenance.h"
#include "obs/Sampler.h"
#include "obs/Trace.h"
#include "par/ThreadPool.h"
#include "table/ConcurrentTrie.h"
#include "table/DependencyIndex.h"
#include "table/SharedTables.h"
#include "table/TermTrie.h"
#include "term/TermStore.h"

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lpa {

/// Identity and budget of one top-level query against a long-lived solver.
/// The service layer (src/srv) allocates one per protocol request and
/// attaches it with Solver::setQueryContext; the engine then stamps the id
/// on every trace event and sampler snapshot, counts warm/cold table reuse
/// against it, and fails branches fast once the deadline passes. With no
/// context attached (the default — batch analyzers, tests) the solver
/// numbers outermost queries itself, so warm-hit accounting still works;
/// the extra cost is one pointer test per outermost solve().
struct QueryContext {
  /// Caller-assigned query id; 0 lets the solver use its own sequence.
  /// Ids must be nonzero and increasing if the caller assigns them —
  /// warm-hit detection compares ids for inequality only, but trace
  /// consumers assume they order requests.
  uint64_t Id = 0;
  /// Absolute deadline on the solver's steady clock, in nanoseconds since
  /// epoch (Solver::steadyNowNs); 0 = no deadline. Expiry does not unwind
  /// the C++ stack: the search fails fast branch by branch, poisoning any
  /// producer mid-derivation (Subgoal::Incomplete) exactly like the depth
  /// limit, so truncated tables are never certified complete.
  uint64_t DeadlineNs = 0;
};

/// Counters describing one evaluation (the paper reports table space and
/// uses call/answer tables as the analysis result).
struct EvalStats {
  uint64_t ClauseResolutions = 0; ///< Program-clause resolution attempts.
  uint64_t TabledCalls = 0;       ///< Tabled call sites executed.
  uint64_t SubgoalsCreated = 0;   ///< Distinct tabled subgoals (variants).
  uint64_t AnswersRecorded = 0;   ///< Unique answers entered in tables.
  uint64_t AnswersDuplicate = 0;  ///< Answers rejected by variant check.
  uint64_t FixpointRounds = 0;    ///< SCC iteration rounds.
  uint64_t DepthLimitHits = 0;    ///< Searches pruned by the depth limit.
  uint64_t BuiltinEvals = 0;      ///< Builtin goals evaluated.
  /// Clause resolutions avoided by the first-argument index (candidate
  /// clauses skipped because their FirstArgKey cannot match the call).
  uint64_t ClauseIndexFiltered = 0;
  /// \name Trie-table counters (Options::UseTrieTables).
  /// @{
  uint64_t TrieHits = 0;   ///< Trie walks that found an existing key.
  uint64_t TrieMisses = 0; ///< Trie walks that inserted a new key.
  uint64_t TrieNodesCreated = 0; ///< Trie nodes allocated, cumulative.
  /// @}
  /// Bytes of supplementary-table state released when SCCs completed
  /// (frontier stores, dedup structures). tableSpaceBytes() excludes this
  /// memory once freed; see the completion-shrink regression test.
  uint64_t FrontierBytesFreed = 0;
  /// Tables completed while the depth limit had pruned part of their
  /// derivation tree (Subgoal::Incomplete). A nonzero count means the
  /// answer tables may be a strict subset of the minimal model; analyzers
  /// must not report them as exact results.
  uint64_t IncompleteTables = 0;
  /// \name Cross-query table reuse (see QueryContext).
  /// @{
  /// Tabled calls answered entirely from a table completed by an earlier
  /// query. The service's warm-hit rate is WarmTableHits over
  /// (WarmTableHits + ColdTableMisses).
  uint64_t WarmTableHits = 0;
  /// Tabled calls whose subgoal variant had to be created.
  uint64_t ColdTableMisses = 0;
  /// @}
  /// Query deadlines that expired mid-evaluation (each expiry counts
  /// once, however many branches it then prunes).
  uint64_t DeadlineHits = 0;
  /// \name Intra-query parallelism (Options::EvalWorkers).
  /// @{
  /// Parallel priming phases run by this solver (lead side).
  uint64_t ParallelPrimeRuns = 0;
  /// Subgoal variants this worker claimed in the shared space (it ran the
  /// producer and published the completed table).
  uint64_t SharedClaims = 0;
  /// Completed tables this worker published to the shared space.
  uint64_t SharedPublishes = 0;
  /// Variants answered entirely from another worker's published table
  /// (no producer run at all — the cross-worker warm hit).
  uint64_t SharedWarmImports = 0;
  /// Variants evaluated privately because another worker held the claim
  /// but had not yet published (duplicate work instead of blocking — the
  /// no-cross-worker-wait rule that makes deadlock impossible).
  uint64_t SharedDupEvals = 0;
  /// Published tables the lead imported after the parallel phase.
  uint64_t SharedTablesImported = 0;
  /// Answers copied into the lead's tables by those imports.
  uint64_t SharedAnswersImported = 0;
  /// @}
  /// \name Incremental invalidation (invalidateDependents).
  /// @{
  /// Completed tables tombstoned because a predicate in their dependency
  /// cone was asserted into or retracted from.
  uint64_t TablesInvalidated = 0;
  /// Completed tables that survived an invalidation sweep warm (outside
  /// every changed cone). Counted per sweep, so one long-lived table can
  /// contribute once per consult/retract.
  uint64_t TablesSurvived = 0;
  /// Invalidated subgoal variants re-driven to completion on their next
  /// call (the in-place revival path of ensureSubgoal). Every revival is
  /// also a ColdTableMiss — the table had to be re-derived.
  uint64_t TablesRevived = 0;
  /// Answer/index storage released by invalidation sweeps (the same
  /// accounting discipline as FrontierBytesFreed; term cells stay in the
  /// table arena until clearTables()).
  uint64_t InvalidationBytesFreed = 0;
  /// @}
};

/// Table-space high-watermarks: the paper's "Table space" column as a
/// *peak*, not just an end-of-run figure (completion frees frontiers, so
/// the footprint at the end understates what evaluation needed). Tracked
/// unconditionally — every update is a compare against an O(1) byte count
/// at a point the bytes are already in hand.
struct TableWatermarks {
  /// Peak of the table TermStore arena (call/answer term cells), refreshed
  /// on every recorded answer and subgoal creation. Exact.
  uint64_t PeakTermStoreBytes = 0;
  /// Largest per-subgoal answer-table footprint (dedup trie or key set
  /// plus answer vectors), measured at that subgoal's completion — answer
  /// tables only grow until completion, so this is the lifetime peak.
  uint64_t PeakSubgoalAnswerBytes = 0;
  /// Largest supplementary-frontier footprint one SCC held when it
  /// completed (the bytes releaseCompletedState then freed).
  uint64_t PeakSccFrontierBytes = 0;
  /// Peak of tableSpaceBytes(), refreshed whenever that walk runs anyway:
  /// at every outermost-SCC completion (taken *before* the release, so the
  /// pre-free maximum is seen) and on explicit tableSpaceBytes() calls.
  uint64_t PeakTableSpaceBytes = 0;
};

/// One tabled subgoal: the canonicalized call, its answers, and SCC
/// bookkeeping used for completion.
/// Persistent intermediate state of evaluating one pure clause for one
/// subgoal: the deduplicated set of partial derivations ("supplementary
/// tables", the optimization the paper points to for deep clause bodies).
/// Levels[j] holds the states with the first j body goals solved; a
/// producer re-run pushes only *new* answers through these frontiers.
struct ClauseFrontier {
  TermStore Store;
  /// Levels[j]: states with the first j body goals solved. A state is
  /// $state(Call, V...) carrying the call instance plus the bindings of
  /// exactly the clause variables still *live* (occurring in a goal >= j);
  /// goals themselves are rebuilt from the clause templates, so states
  /// stay small and dead bindings do not defeat deduplication.
  std::vector<std::vector<TermRef>> Levels;
  /// Per-level dedup, string keys (legacy path, UseTrieTables off).
  std::vector<std::unordered_set<std::string>> Keys;
  /// Per-level dedup, term tries (UseTrieTables on). Allocated lazily per
  /// level on first insert.
  std::vector<std::unique_ptr<TermTrie>> LevelTries;
  /// Distinct variables of the clause body, in the database store.
  std::vector<TermRef> TemplateVars;
  /// LiveIdx[j]: indices into TemplateVars of the variables live at j.
  std::vector<std::vector<uint32_t>> LiveIdx;
  uint64_t Watermark = 0; ///< Global answer seq at the previous run's start.
  bool Initialized = false;
  bool HeadFailed = false;

  /// How one frontier state was reached (populated only when the solver
  /// records provenance). Origins[j][i] pairs state i of Levels[j] with its
  /// Levels[j-1] predecessor index and the premise answers goal j-1
  /// consumed on that step; walking the chain back to the level-0 seed
  /// recovers the full premise list of a derived answer. Justifications are
  /// materialized into the ProvenanceArena the moment an answer is
  /// recorded, so this per-frontier state is transient and freed with the
  /// frontier by releaseCompletedState.
  struct StateOrigin {
    uint32_t Prev = 0;
    std::vector<ProvPremise> Premises;
  };
  std::vector<std::vector<StateOrigin>> Origins;

  size_t memoryBytes() const;
};

struct Subgoal {
  PredKey Pred;
  TermRef CallTerm; ///< Copy of the call in the table store.
  std::string Key;  ///< Canonical (variant) key of the call (legacy path).
  /// Distinct unbound variables of CallTerm in first-occurrence order (the
  /// variables substitution-factored answers bind).
  std::vector<TermRef> CallVars;
  /// Full call instances in the table store (legacy path and aggregated
  /// predicates; empty when Factored).
  std::vector<TermRef> Answers;
  /// Substitution-factored answers (Factored): bindings of CallVars only,
  /// CallVars.size() consecutive entries per answer, in the table store.
  /// The whole instance is never materialized unless an inspector asks
  /// (Solver::answerInstance).
  std::vector<TermRef> AnswerBindings;
  std::vector<uint64_t> AnswerSeq; ///< Global sequence number per answer.
  /// Answer dedup: canonical string keys (legacy) or a term trie over the
  /// binding tuples (trie path). Both are released on completion -- no
  /// answer is ever inserted into a completed table.
  std::unordered_set<std::string> AnswerKeys;
  std::unique_ptr<TermTrie> AnswerTrie;
  /// True when answers are stored substitution-factored (trie tables on
  /// and no answer join registered for the predicate).
  bool Factored = false;
  bool Complete = false;
  /// Poisoned: the depth limit pruned a branch while this subgoal (or a
  /// member of its SCC, or a table it consumed) was being produced, so the
  /// answer set may be truncated. Sticky across completion; counted in
  /// EvalStats::IncompleteTables when the table completes.
  bool Incomplete = false;

  /// Creation-order index into Solver::subgoals() — the subgoal half of a
  /// ProvPremise and the node id in the exported forest.
  uint32_t Ordinal = 0;
  /// 1-based id of the completion SCC this subgoal completed in (subgoals
  /// completed together share one id); 0 until completed.
  uint32_t SccId = 0;
  /// 1-based position in the global completion order; 0 until completed.
  uint32_t CompletionSeq = 0;
  /// Id of the outermost query that completed this table (0 before
  /// completion). A later query calling the variant is a *warm* hit —
  /// the cross-query reuse EvalStats::WarmTableHits counts.
  uint64_t CompletedInQuery = 0;
  /// Database revision (Database::globalRevision) this table's answers
  /// were derived under, stamped at completion. Diagnostic complement of
  /// the dependency index: a table is stale exactly when a predicate in
  /// its cone changed after this revision.
  uint64_t DerivedAtRevision = 0;
  /// Tombstone: a dependency-cone sweep (Solver::invalidateDependents)
  /// found this completed table potentially stale and released its
  /// answers. The variant stays in the subgoal index (tries have no
  /// delete); the next call revives it in place and re-runs the producer.
  bool Invalidated = false;

  // Completion (approximate Tarjan SCC) machinery.
  uint64_t Dfn = 0;
  uint64_t MinLink = 0;
  bool OnStack = false;
  size_t StackPos = 0;

  // Semi-naive scheduling: producers that consumed our answers while we
  // were incomplete; they re-run only when we gain an answer.
  std::unordered_set<Subgoal *> Consumers;
  bool Dirty = true;

  /// Supplementary tables, one per pure clause (freed on completion).
  std::vector<std::unique_ptr<ClauseFrontier>> Frontiers;

  /// \name Shared-table coordination (intra-query parallel mode).
  /// @{

  /// Non-null while this worker holds the claim on the variant in the
  /// shared table space; publication at SCC completion clears it.
  SharedTableSpace::Entry *SharedClaim = nullptr;
  /// Answer dedup on the optimistic check-then-lock trie instead of the
  /// plain TermTrie when the solver is a parallel eval worker (replaces
  /// AnswerTrie for factored tables; freed on completion like it).
  std::unique_ptr<ConcurrentTermTrie> SharedAnswerTrie;

  /// @}
};

/// Evaluation engine over one Database.
///
/// The solver owns a scratch heap for resolution (exposed via store()) and
/// a table store holding subgoals and answers, which persist across solve()
/// calls until clearTables().
class Solver {
public:
  /// Tunables.
  struct Options {
    /// Maximum resolution depth for nontabled recursion; exceeding it
    /// fails that branch and sets EvalStats::DepthLimitHits (a safety
    /// valve, not part of the paper's semantics).
    size_t MaxDepth = 100000;
    /// Perform the occur check in unification (Section 6 discussion).
    bool OccursCheck = false;
    /// Evaluate pure clause bodies of tabled predicates set-at-a-time
    /// with persistent intermediate frontiers, pushing only new answers
    /// through on re-runs ("supplementary tabling", Section 4.2's
    /// suggested optimization). Off = plain tuple-at-a-time re-runs (the
    /// ablation the benches report).
    bool SupplementaryTabling = true;
    /// Back the subgoal table, per-subgoal answer tables and frontier
    /// dedup sets with term tries plus substitution factoring (XSB's
    /// table representation) instead of canonical string keys. One walk
    /// of the call performs lookup and insert; answers store only the
    /// bindings of the call's free variables. Off = the legacy
    /// string-keyed tables (the A/B ablation the benches report). Both
    /// paths compute identical answers.
    bool UseTrieTables = defaultUseTrieTables();
    /// Record, for every unique answer, which clause produced it and which
    /// premise answers — (subgoal, answer-index) pairs — its derivation
    /// consumed, in a per-solver ProvenanceArena (src/obs). Also records
    /// the subgoal dependency edges backing exportForest(). Off by
    /// default: like the tracer, every hook then reduces to a null-pointer
    /// test and the arena is never allocated.
    bool RecordProvenance = false;
    /// Accumulate per-subgoal evaluation costs (wall ns, derivation steps,
    /// answer traffic, resumptions, table bytes, warm/cold origin) into an
    /// owned CostProfile — the `explain` verb's data source. Costs are
    /// pure observation: evaluation order and answer sets are untouched,
    /// so serial-vs-parallel fingerprints stay bit-identical with
    /// recording on. Off by default: every hook then reduces to one
    /// null-pointer test (pinned by the BM_CostRecord A/B micro) and no
    /// profile is allocated. A caller-owned profile can also be attached
    /// per query via setCostProfile.
    bool RecordCosts = false;
    /// Intra-query parallelism: 0 or 1 evaluates serially; N > 1 lets an
    /// outermost solve() (or an explicit primeTables() call) dispatch
    /// independent tabled seed goals to N pool workers that share one
    /// SharedTableSpace, then import every published table before the
    /// ordinary serial search runs against the now-warm tables. Requires
    /// UseTrieTables; provenance recording forces the serial path (proof
    /// premise indices are per-solver and cannot cross worker boundaries).
    /// Answer SETS are identical to serial evaluation — SLG computes the
    /// unique minimal model per subgoal regardless of scheduling — so
    /// set-based fingerprints are bit-identical; raw enumeration order of
    /// subgoals/answers may differ.
    size_t EvalWorkers = defaultEvalWorkers();
  };

  /// Process-wide default for Options::UseTrieTables (initially true).
  /// A/B harnesses flip it around a run so analyzers that build their own
  /// Solver internally pick the flag up without plumbing.
  /// \returns the previous default.
  static bool setDefaultUseTrieTables(bool V);
  static bool defaultUseTrieTables();

  /// Process-wide default for Options::EvalWorkers (initially 0 = serial),
  /// same A/B pattern as setDefaultUseTrieTables: scaling harnesses flip it
  /// around a run so analyzers that build their own Solver pick the worker
  /// count up without plumbing. \returns the previous default.
  static size_t setDefaultEvalWorkers(size_t N);
  static size_t defaultEvalWorkers();

  explicit Solver(Database &DB);
  Solver(Database &DB, Options Opts);

  /// The scratch store in which callers build query goals.
  TermStore &store() { return Heap; }
  const TermStore &storeConst() const { return Heap; }

  /// Called on each solution; return true to stop the search.
  using SolutionFn = std::function<bool()>;

  /// Proves \p Goal (a term in store()). \p OnSolution fires with the
  /// goal's variables bound; bindings are undone as the search backtracks,
  /// so callers must copy out what they need.
  /// \returns the number of solutions delivered.
  size_t solve(TermRef Goal, const SolutionFn &OnSolution);

  /// Proves \p Goal, collecting up to \p Limit solution snapshots (resolved
  /// copies of the goal) into \p Out. Snapshots must not be collected into
  /// store() itself: the solver truncates its scratch heap on backtracking.
  std::vector<TermRef> solveAll(TermRef Goal, TermStore &Out,
                                size_t Limit = SIZE_MAX);

  /// True if \p Goal has at least one solution.
  bool solveOnce(TermRef Goal);

  /// Parses \p GoalText and proves it. Convenience for tests/examples.
  ErrorOr<size_t> solveText(std::string_view GoalText,
                            const SolutionFn &OnSolution);

  /// \name Intra-query parallel evaluation (Options::EvalWorkers).
  /// @{

  /// Drives every tabled seed goal of \p Goals (terms in store()) to
  /// completion, in parallel when the parallel gate is open (EvalWorkers
  /// > 1, trie tables on, provenance off, and at least two eligible seeds
  /// with pairwise-disjoint variables); otherwise each seed is solved
  /// serially in order. The parallel phase evaluates seeds in per-worker
  /// solvers against one SharedTableSpace — a worker that claims a variant
  /// runs its producer and publishes the completed table; a worker that
  /// sees the published table imports it without any producer run; a
  /// worker racing an in-flight claim duplicates the evaluation privately
  /// rather than waiting (no cross-worker blocking, hence no deadlock).
  /// Afterwards the lead imports every published table in a deterministic
  /// order, so subsequent (serial) solve() calls hit warm tables.
  /// Depth/deadline poisoning crosses worker boundaries: a table published
  /// Incomplete imports as Incomplete and taints its consumers exactly as
  /// in serial evaluation. \returns the number of seeds evaluated.
  size_t primeTables(std::span<const TermRef> Goals);

  /// Aggregated EvalStats of all parallel workers across primeTables runs
  /// (lead-side Stats never includes worker-side work).
  const EvalStats &parallelWorkerStats() const { return WorkerStats; }

  /// Accumulated shared-table-space counters across primeTables runs.
  const SharedTableSpace::Stats &sharedTableStats() const {
    return SharedStats;
  }

  /// Per-shard shared-space counters, accumulated element-wise across
  /// primeTables runs (the space itself lives on the lead's stack for one
  /// phase, so cross-phase figures must be folded here). Empty before the
  /// first parallel phase. Feeds the `inspect` op's contention view — the
  /// ROADMAP's shard-tuning item needs the per-shard skew, not just the
  /// aggregate sharedTableStats().
  const std::vector<SharedTableSpace::ShardStats> &sharedShardStats() const {
    return SharedShardStats;
  }

  /// Counters of the intra-query eval pool (zeros before the first
  /// parallel phase).
  ThreadPool::PoolStats evalPoolStats() const {
    return EvalPool ? EvalPool->stats() : ThreadPool::PoolStats{};
  }

  /// Per-worker sampling cursors (one per eval worker, allocated in the
  /// constructor when EvalWorkers > 1 so sampler lanes can bind to stable
  /// addresses before any parallel phase runs). Empty in serial mode.
  const std::vector<std::unique_ptr<EvalCursor>> &workerCursors() const {
    return WorkerCursors;
  }

  /// @}

  /// \name Table inspection (the analysis result interface).
  /// @{

  /// The store holding subgoal call terms and answers.
  const TermStore &tableStore() const { return Tables; }

  /// Iterates all subgoals in creation order.
  const std::vector<Subgoal *> &subgoals() const { return SubgoalOrder; }

  /// \returns the completed subgoal variant of \p Call (a term in
  /// store()), or nullptr if that variant was never called.
  const Subgoal *findSubgoal(TermRef Call) const;

  /// Number of answers in \p SG's table (either representation).
  size_t answerCount(const Subgoal &SG) const { return SG.AnswerSeq.size(); }

  /// Materializes answer \p I of \p SG as a full instance of the call,
  /// built in \p Out. For substitution-factored tables this instantiates
  /// the stored call skeleton with the answer's bindings (sharing between
  /// binding slots preserved); for legacy tables it copies the stored
  /// instance. This is the inspection path -- evaluation itself never
  /// rebuilds instances.
  TermRef answerInstance(const Subgoal &SG, size_t I, TermStore &Out) const;

  /// Bytes attributable to the tables: call/answer terms, variant keys,
  /// index structures. This is the paper's "Table space" column.
  size_t tableSpaceBytes() const;

  /// Bytes attributable to ONE subgoal's table: the subgoal record, its
  /// variant key or answer trie, its term cells in the table store (call +
  /// answers), and any live supplementary frontiers. snapshotTableMetrics
  /// apportions per-predicate TableBytes with this, and the service
  /// layer's `inspect` op ranks tables by it.
  size_t subgoalMemoryBytes(const Subgoal &SG) const;

  /// Drops all tables (subgoals and answers).
  void clearTables();

  /// @}

  /// \name Incremental invalidation (XSB-style incremental tabling).
  /// @{

  /// Outcome of one invalidation sweep.
  struct InvalidationResult {
    uint64_t TablesInvalidated = 0; ///< Completed tables tombstoned.
    uint64_t TablesSurvived = 0;    ///< Completed tables left warm.
    uint64_t BytesFreed = 0;        ///< Storage released by the sweep.
    uint64_t PredsAffected = 0;     ///< Predicates in the union of cones.
  };

  /// Reverse-reachability sweep over the live dependency index: every
  /// table whose predicate transitively consumed any predicate in
  /// \p Changed is tombstoned (answers and index storage released,
  /// Subgoal::Invalidated set, revived in place on the next call);
  /// independent completed tables stay warm and are counted as survivors.
  /// Must be called *between* queries — never while a solve() or parallel
  /// phase is in flight. Also retires matching published tables if a
  /// SharedTableSpace is attached for the current phase, clears the
  /// static-predicate cache (a static pred may have gained a tabled
  /// dependency), and drops the affected predicates' recorded dependency
  /// edges so re-derivation re-records them against the new program.
  InvalidationResult invalidateDependents(std::span<const PredKey> Changed);

  /// The live predicate-level dependency index (see DependencyIndex).
  const DependencyIndex &dependencyIndex() const { return DepIndex; }

  /// @}

  /// \name Answer aggregation (Section 6.2).
  ///
  /// A predicate with a registered join keeps ONE answer per subgoal: the
  /// lattice join of everything derived so far, recomputed on each new
  /// derivation and replaced when it grows. Joins must be monotone
  /// over-approximations (e.g. anti-unification), which keeps fixpoint
  /// computation terminating and sound. This is the paper's "answer
  /// collection via generic aggregation" realized as mode-directed
  /// tabling: analyses that only need per-argument summaries trade the
  /// full truth tables for constant-size answer entries.
  /// @{

  /// Joins two answers (both terms in \p Store); returns the join, built
  /// in \p Store.
  using AnswerJoinFn =
      std::function<TermRef(TermStore &Store, TermRef A, TermRef B)>;

  /// Registers \p Join for \p Pred. Must be called before the predicate
  /// is first evaluated.
  void setAnswerJoin(PredKey Pred, AnswerJoinFn Join);

  /// @}

  /// Resets the scratch heap. Invalidates terms previously built in
  /// store(); tables are unaffected.
  void resetHeap() { Heap.clear(); }

  const EvalStats &stats() const { return Stats; }

  /// Zeroes the evaluation counters. Tables are deliberately NOT touched:
  /// after resetStats() the counters describe only *new* work, so
  /// re-evaluating a goal whose subgoals are already complete reports zero
  /// SubgoalsCreated/AnswersRecorded (the answers replay from the tables)
  /// while TabledCalls still counts the table hits. For a from-scratch
  /// measurement call clearTables() as well. Attached observability
  /// (tracer/metrics) is unaffected. The invalidation counters
  /// (TablesInvalidated/TablesSurvived/TablesRevived) reset with the rest
  /// — they are per-window like every EvalStats field; tables already
  /// tombstoned stay tombstoned (resetStats never revives or drops state),
  /// and the service layer keeps its own cumulative invalidation totals in
  /// ServiceStats.
  void resetStats() { Stats = EvalStats(); }

  /// \name Observability (src/obs): tracing and per-predicate metrics.
  /// @{

  /// Attaches an event tracer and/or a metrics registry; either may be
  /// null. The caller keeps ownership and both must outlive the solver or
  /// be detached (pass nullptr) first. With both detached — the default —
  /// every instrumentation hook reduces to a null pointer test.
  void setObservability(Tracer *T, MetricsRegistry *M) {
    Trace = T;
    Metrics = M;
  }
  Tracer *tracer() const { return Trace; }
  MetricsRegistry *metrics() const { return Metrics; }

  /// Attaches (or, with nullptr, detaches) the sampling-profiler cursor:
  /// the solver then publishes its producer stack, evaluation phase and
  /// table gauges through \p C for a background Sampler to read. Same
  /// ownership and cost contract as the tracer — the detached path is one
  /// null test per hook (pinned by BM_CursorPublish), and a publish is a
  /// few relaxed atomic stores. The cursor must outlive its attachment.
  void setSampleCursor(EvalCursor *C) { Cursor = C; }
  EvalCursor *sampleCursor() const { return Cursor; }

  /// Attaches (or, with nullptr, detaches) the query context consulted at
  /// each outermost solve(): its Id scopes trace events, sampler stacks
  /// and warm-hit accounting; its DeadlineNs bounds the search (see
  /// QueryContext). Same ownership contract as the other hooks — the
  /// caller keeps the context alive across the queries it covers, and may
  /// mutate it *between* (never during) solve() calls. Detached-path cost
  /// is pinned by the BM_QueryContextPublish A/B micro.
  void setQueryContext(const QueryContext *Q) { Query = Q; }
  const QueryContext *queryContext() const { return Query; }

  /// Attaches (or, with nullptr, detaches) the flight recorder the solver
  /// journals anomalies into: deadline expiry, incomplete-table
  /// completions, and cross-worker taint imports. Request-granular — the
  /// recorder sees at most a handful of events per query, never per-SLG
  /// traffic. Same ownership and cost contract as the other hooks: the
  /// detached path is one null test per site, pinned by the
  /// BM_FlightRecorderRecord A/B micro.
  void setFlightRecorder(FlightRecorder *R) { Recorder = R; }
  FlightRecorder *flightRecorder() const { return Recorder; }

  /// Attaches (or, with nullptr, detaches) a caller-owned cost profile:
  /// the solver then charges per-subgoal costs through it exactly as
  /// Options::RecordCosts would through the owned one (attaching replaces
  /// the owned profile for as long as the attachment lasts; detaching
  /// restores it). The service layer uses this to record costs for an
  /// `explain` query only, against a solver built without RecordCosts.
  /// Same ownership and cost contract as the other hooks; must only be
  /// swapped *between* solve() calls.
  void setCostProfile(CostProfile *CP) {
    Costs = CP ? CP : OwnedCosts.get();
  }
  /// The active profile (owned or attached), or nullptr when recording is
  /// off.
  CostProfile *costProfile() const { return Costs; }

  /// Id of the query the solver is serving (or last served): the attached
  /// context's Id, else the internal outermost-solve sequence number.
  uint64_t currentQueryId() const { return CurQueryId; }

  /// Nanoseconds on the clock QueryContext::DeadlineNs is measured
  /// against (steady, process-wide).
  static uint64_t steadyNowNs();

  /// Table-space high-watermarks (see TableWatermarks). PeakTermStoreBytes
  /// and PeakTableSpaceBytes are refreshed before returning.
  const TableWatermarks &watermarks() const;

  /// Writes the current table state into \p M: per-predicate subgoal and
  /// answer counts, table-space bytes apportioned from the table store via
  /// TermStore arena measurements, answer-count histograms, and the global
  /// counters (EvalStats plus total table bytes). Snapshot fields are
  /// assigned, not accumulated, so repeated snapshots are idempotent.
  void snapshotTableMetrics(MetricsRegistry &M) const;

  /// @}

  /// \name Answer provenance & forest export (Options::RecordProvenance).
  /// @{

  /// The justification arena, or nullptr when recording is off.
  const ProvenanceArena *provenance() const { return Prov.get(); }

  /// Reconstructs the proof tree of answer \p AnswerIdx of \p SG from the
  /// recorded justifications (cycle-safe, bounded per \p O with explicit
  /// elision markers). \returns nullopt when recording is off.
  std::optional<ProofNode> justifyAnswer(const Subgoal &SG, size_t AnswerIdx,
                                         const ProofBuildOptions &O = {}) const;

  /// Renders \p Root with answer instances materialized through TermWriter
  /// and 1-based clause annotations.
  std::string renderProof(const ProofNode &Root) const;

  /// Answer \p I of \p SG rendered as text (materialized via
  /// answerInstance into a scratch store).
  std::string formatAnswer(const Subgoal &SG, size_t I) const;

  /// \p SG's call term rendered as text.
  std::string formatCall(const Subgoal &SG) const;

  /// Snapshot of the SLG forest: one node per subgoal in creation order,
  /// consumer -> producer dependency edges (recorded only while provenance
  /// is on), SCC membership, completion order and Incomplete taint.
  ForestGraph exportForest() const;

  /// One query's cost attribution (the active profile's current/last
  /// query), with predicate names, call labels and SCC ids resolved and
  /// cumulative times computed over the first-touch tree; per-predicate
  /// and per-SCC rollups sorted by self time. Empty when no profile is
  /// active. See obs/CostProfile.h for the attribution discipline.
  CostSummary exportCostSummary() const;

  /// Validates every recorded justification against the live answer
  /// tables: each premise must name an existing subgoal and an answer
  /// index inside its table. Zeros when recording is off.
  ProvenanceArena::CheckStats checkProvenance() const;

  /// @}

private:
  /// Linked-list resolvent; nodes live in GoalArena for the duration of a
  /// query.
  struct GoalNode {
    TermRef Goal;
    const GoalNode *Next;
  };

  /// Result of exploring a branch: how backtracking should proceed.
  struct Signal {
    enum Kind : uint8_t {
      Exhausted, ///< All alternatives tried; keep backtracking normally.
      Stop,      ///< A callback asked to end the whole search.
      CutTo,     ///< A cut fired; unwind clause choices up to Level.
    } K = Exhausted;
    uint64_t Level = 0;

    static Signal exhausted() { return {Exhausted, 0}; }
    static Signal stop() { return {Stop, 0}; }
    static Signal cutTo(uint64_t L) { return {CutTo, L}; }
  };

  Signal solveGoals(const GoalNode *Goals, size_t Depth, uint64_t CutLevel,
                    const SolutionFn &OnSolution);
  Signal solveCall(TermRef Goal, const GoalNode *Rest, size_t Depth,
                   uint64_t CutLevel, const SolutionFn &OnSolution);
  Signal solveNontabled(const Predicate &P, TermRef Goal,
                        const GoalNode *Rest, size_t Depth,
                        const SolutionFn &OnSolution);
  Signal solveTabled(const Predicate &P, TermRef Goal, const GoalNode *Rest,
                     size_t Depth, uint64_t CutLevel,
                     const SolutionFn &OnSolution);
  Signal solveBuiltin(BuiltinKind Kind, TermRef Goal, const GoalNode *Rest,
                      size_t Depth, uint64_t CutLevel,
                      const SolutionFn &OnSolution);
  Signal solveIff(TermRef Goal, const GoalNode *Rest, size_t Depth,
                  uint64_t CutLevel, const SolutionFn &OnSolution);

  /// Runs the clause-resolution producer for \p SG once; new answers go to
  /// the table. \returns true if any new answer was recorded. With
  /// supplementary tabling on, pure clause bodies (no cut/negation/
  /// disjunction/metacall) evaluate through persistent state frontiers so
  /// re-runs cost only the propagation of new answers; impure bodies fall
  /// back to tuple-at-a-time SLD.
  bool runProducer(Subgoal &SG);

  /// Semi-naive evaluation of pure clause \p C (index \p ClauseIdx in its
  /// predicate) for \p SG, through the subgoal's ClauseFrontier.
  void runClauseSupplementary(Subgoal &SG, const Clause &C, size_t ClauseIdx,
                              size_t NumClauses);

  /// Solves the single pure goal \p G under the current heap bindings.
  /// \p MinSeq > 0 marks a re-propagation pass: only tabled answers with
  /// sequence number above it are consumed, and goals whose solutions
  /// cannot have changed (builtins, static nontabled predicates) yield
  /// nothing.
  void solveSemiGoal(TermRef G, uint64_t MinSeq,
                     const std::function<void()> &OnSolution);

  /// \returns true if every body goal of \p C is free of control
  /// constructs (evaluable set-at-a-time).
  bool clauseIsPure(const Clause &C) const;

  /// \returns true if the solutions of nontabled \p Key can never change
  /// (no tabled predicate reachable from it).
  bool isStaticPred(PredKey Key);

  /// Creates/loads the subgoal for \p Goal and drives it as far toward
  /// completion as its SCC allows. On the trie path \p GoalVars (when
  /// non-null) receives \p Goal's distinct unbound variables in
  /// first-occurrence order -- the variables factored answers bind -- as
  /// a free byproduct of the table walk.
  Subgoal &ensureSubgoal(TermRef Goal, PredKey Key,
                         std::vector<TermRef> *GoalVars = nullptr);

  /// Pushes \p SG onto the completion machinery, runs its producer, and —
  /// when it turns out to be an SCC root — drives the SCC to fixpoint and
  /// completes every member. Shared by the fresh-subgoal path and the
  /// invalidated-table revival path of ensureSubgoal.
  void driveSubgoal(Subgoal &SG);

  /// In-place revival of an invalidated subgoal variant: clears the
  /// tombstone, reallocates the answer dedup structure the representation
  /// needs, and counts the re-derivation (cold miss + TablesRevived).
  /// driveSubgoal must follow.
  void reviveSubgoal(Subgoal &SG);

  /// Feeds the live dependency index with "the innermost tabled producer
  /// depends on \p Callee". No-op outside a producer run. Covers tabled,
  /// nontabled and *undefined* callees — asserting a predicate that calls
  /// failed against must still invalidate the tables that saw it fail.
  void recordPredDependency(PredKey Callee);

  /// Records \p Instance (resolved call in Heap) as an answer of \p SG.
  bool recordAnswer(Subgoal &SG, TermRef Instance);

  /// Substitution factoring: walks CallTerm (tables) and \p Instance
  /// (heap) in lockstep and collects, for each of SG.CallVars in order,
  /// the heap subterm it is bound to in this instance.
  void extractCallBindings(const Subgoal &SG, TermRef Instance,
                           std::vector<TermRef> &Out) const;

  /// Instantiates the consumer's \p GoalVars (its free variables in
  /// first-occurrence order; the goal is a variant of SG.CallTerm) with
  /// answer \p I's factored bindings, copied into the heap. Bindings land
  /// on the trail; the caller unwinds with undoTo. Replaces the legacy
  /// copy-whole-instance-then-unify answer return.
  void bindFactoredAnswer(const Subgoal &SG, size_t I,
                          const std::vector<TermRef> &GoalVars);

  /// Releases evaluation-only state of a completed subgoal: supplementary
  /// frontiers, consumer links and answer dedup structures. Counts the
  /// freed bytes into EvalStats::FrontierBytesFreed. Provenance already
  /// recorded for the subgoal's answers is deliberately KEPT — the arena
  /// materializes justifications at record time precisely so that
  /// completion can free the transient frontier Origins without losing
  /// explainability (arena bytes stay counted in tableSpaceBytes()).
  /// \returns the frontier bytes freed, so the completion loop can fold a
  /// whole SCC's release into TableWatermarks::PeakSccFrontierBytes.
  size_t releaseCompletedState(Subgoal &SG);

  /// \name Provenance recording internals (all no-ops when !Prov).
  /// @{

  /// Stores the justification of answer \p AnswerIdx of \p SG from the
  /// current clause context: premises come from PendingPremises when set
  /// (supplementary path), else from PremiseStack above PremiseBase
  /// (tuple-at-a-time path).
  void recordJustification(Subgoal &SG, size_t AnswerIdx);

  /// Records a consumer -> producer forest edge, deduplicated.
  void addDepEdge(uint32_t Consumer, uint32_t Producer);

  /// Walks the Origin chain of frontier state \p StateIdx at \p Level back
  /// to the seed and appends the consumed premises in body-goal order.
  void collectFrontierPremises(const ClauseFrontier &CF, size_t Level,
                               size_t StateIdx,
                               std::vector<ProvPremise> &Out) const;

  /// @}

  /// \name Intra-query parallel evaluation internals.
  /// @{

  /// Collects the tabled conjuncts of \p Goal (a ','/2 tree in Heap) as
  /// candidate parallel seeds, in left-to-right order.
  void collectSpawnSeeds(TermRef Goal, std::vector<TermRef> &Seeds);

  /// Runs the parallel phase proper over \p Seeds (all gating already
  /// checked): worker solvers, shared space, import pass.
  void runParallelPrime(const std::vector<TermRef> &Seeds);

  /// Snapshots completed subgoal \p SG as a self-contained PublishedTable
  /// (own TermStore; per-answer copies preserve intra-answer sharing).
  std::unique_ptr<SharedTableSpace::PublishedTable>
  buildPublishedTable(const Subgoal &SG) const;

  /// Copies \p PT's answers into \p SG (a freshly created local subgoal of
  /// the same variant) and marks it complete, propagating the Incomplete
  /// taint. Used by workers hitting another worker's published table and
  /// by the lead's post-phase import.
  void fillSubgoalFromPublished(Subgoal &SG,
                                const SharedTableSpace::PublishedTable &PT);

  /// Lead-side import of one published table: creates the subgoal variant
  /// if the lead does not already have it complete.
  void importPublishedTable(const SharedTableSpace::PublishedTable &PT);

  /// @}

  const GoalNode *makeGoals(const std::vector<TermRef> &Goals,
                            const GoalNode *Tail);
  const GoalNode *makeGoal(TermRef Goal, const GoalNode *Tail);

  Database &DB;
  SymbolTable &Symbols;
  Options Opts;
  BuiltinTable Builtins;

  TermStore Heap;   ///< Scratch resolution heap.
  TermStore Tables; ///< Call/answer terms.

  /// Subgoal storage, in creation order (both table representations).
  std::vector<std::unique_ptr<Subgoal>> SubgoalOwned;
  /// Subgoal index, legacy path: canonical string key -> subgoal.
  std::unordered_map<std::string, Subgoal *> SubgoalByKey;
  /// Subgoal index, trie path: one walk of the call checks and inserts;
  /// leaf values are indices into SubgoalOwned.
  TermTrie SubgoalTrie;
  std::vector<Subgoal *> SubgoalOrder;
  /// Scratch buffers for the legacy canonical-key path and for factored
  /// answer extraction; reused across one producer run's candidates (never
  /// live across a reentrant call).
  std::string KeyScratch;
  std::vector<TermRef> BindScratch;
  std::vector<Subgoal *> CompletionStack;
  std::vector<Subgoal *> ProducerStack;
  uint64_t DfnCounter = 0;
  uint64_t CutCounter = 0;
  uint64_t AnswerSeqCounter = 0;
  std::unordered_map<uint64_t, bool> StaticPredCache;
  /// Highest answer sequence per predicate (for frontier skip checks).
  std::unordered_map<uint64_t, uint64_t> PredMaxAnswerSeq;
  /// Per-predicate answer joins (Section 6.2 aggregation).
  std::unordered_map<uint64_t, AnswerJoinFn> AnswerJoins;

  std::vector<std::unique_ptr<GoalNode>> GoalArena;
  EvalStats Stats;

  /// Observability hooks (null when detached; see setObservability).
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  /// Sampling-profiler cursor (null when detached; see setSampleCursor).
  EvalCursor *Cursor = nullptr;
  /// Query context (null when detached; see setQueryContext).
  const QueryContext *Query = nullptr;
  /// Flight recorder (null when detached; see setFlightRecorder).
  FlightRecorder *Recorder = nullptr;
  /// Cost profile owned by the solver (allocated in the constructor iff
  /// Options::RecordCosts, mirroring the provenance arena).
  std::unique_ptr<CostProfile> OwnedCosts;
  /// The active cost profile: OwnedCosts.get(), a caller attachment, or
  /// null (the default — one pointer test per hook; see setCostProfile).
  CostProfile *Costs = nullptr;
  /// Internal outermost-query sequence, used when no context supplies an
  /// id. Never reset: warm-hit detection needs ids unique across the
  /// solver's whole life, including across resetStats()/clearTables().
  uint64_t QuerySeq = 0;
  /// Id of the query currently (or last) served; see currentQueryId().
  uint64_t CurQueryId = 0;
  /// Deadline short-circuit: set once per query when the deadline first
  /// passes, so subsequent solveGoals entries fail on one flag test
  /// instead of re-reading the clock.
  bool DeadlineExpired = false;
  /// Clock-check decimation counter (the clock is read every 1024th
  /// solveGoals entry while a deadline is armed).
  uint32_t DeadlineTick = 0;
  /// Table-space peaks. Mutable: tableSpaceBytes() is const but refreshes
  /// PeakTableSpaceBytes whenever it walks the tables anyway.
  mutable TableWatermarks Water;

  /// \name Provenance state (Options::RecordProvenance; null/empty when
  /// off — the disabled path is one pointer test per hook).
  /// @{

  /// Justification arena, allocated in the constructor iff recording.
  std::unique_ptr<ProvenanceArena> Prov;
  /// Premise answers consumed on the current derivation path, in
  /// consumption order. Tabled answer returns push on entry to the
  /// continuation and pop when it backtracks, so at recordAnswer time the
  /// stack above PremiseBase is exactly the premises of the new answer.
  std::vector<ProvPremise> PremiseStack;
  /// Stack floor of the innermost producer's current clause body (nested
  /// producer runs save/restore around themselves).
  size_t PremiseBase = 0;
  /// Clause index the innermost producer is currently resolving.
  uint32_t CurClauseIdx = 0;
  /// When non-null, recordAnswer takes its premises from here instead of
  /// PremiseStack (the supplementary path reconstructs them from frontier
  /// Origin chains). Only ever set around the non-reentrant final answer
  /// loop of runClauseSupplementary.
  const std::vector<ProvPremise> *PendingPremises = nullptr;
  /// Scratch for collectFrontierPremises (same single-use discipline as
  /// KeyScratch/BindScratch).
  std::vector<ProvPremise> SuppPremiseScratch;
  /// Deduplicated consumer -> producer subgoal dependency edges (the
  /// forest edges), with a packed-u64 membership set.
  std::vector<ForestEdge> DepEdges;
  std::unordered_set<uint64_t> DepEdgeSet;
  /// Completion bookkeeping for forest export (maintained even without
  /// provenance — two counters per completed SCC member).
  uint32_t SccCounter = 0;
  uint32_t CompletionCounter = 0;

  /// @}

  /// Live predicate-level dependency graph feeding invalidateDependents.
  /// Fed from the same call sites that record forest edges (addDepEdge)
  /// plus the nontabled/undefined-callee hooks — maintained
  /// unconditionally, unlike DepEdges which need RecordProvenance.
  DependencyIndex DepIndex;

  /// \name Intra-query parallelism state.
  /// @{

  /// Frequently-tested symbols, interned once at construction so no eval
  /// path interns (SymbolTable::intern mutates; workers share the table).
  SymbolId StateSym;
  SymbolId ArrowSym;
  /// Shared table space this solver coordinates through, non-null only in
  /// worker solvers during a parallel phase (the lead owns the space on
  /// its stack for the phase's duration).
  SharedTableSpace *Shared = nullptr;
  /// This worker's id in the shared space (claim ownership attribution).
  uint32_t SharedWorkerId = 0;
  /// Reentrancy guard: primeTables never re-enters its own parallel phase
  /// (and worker solvers never spawn sub-pools — their EvalWorkers is 0).
  bool Priming = false;
  /// The intra-query pool, created lazily at the first parallel phase and
  /// reused across phases; sized to Opts.EvalWorkers.
  std::unique_ptr<ThreadPool> EvalPool;
  /// Sampling cursors handed to worker solvers, one per eval worker;
  /// allocated eagerly in the constructor (EvalWorkers > 1) so sampler
  /// lanes bind to stable addresses.
  std::vector<std::unique_ptr<EvalCursor>> WorkerCursors;
  /// Aggregate of worker-solver EvalStats across parallel phases.
  EvalStats WorkerStats;
  /// Accumulated SharedTableSpace counters across parallel phases.
  SharedTableSpace::Stats SharedStats{};
  /// Per-shard accumulation of the same (see sharedShardStats()).
  std::vector<SharedTableSpace::ShardStats> SharedShardStats;

  /// @}
};

/// Evaluates an arithmetic expression over integers (is/2 and comparisons).
/// \returns std::nullopt on type errors or unbound variables.
std::optional<int64_t> evalArith(const TermStore &Store,
                                 const SymbolTable &Symbols, TermRef T);

} // namespace lpa

#endif // LPA_ENGINE_SOLVER_H
