//===- FLAst.h - Lazy functional language AST -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the small lazy first-order functional language the strictness
/// analysis of Section 3.2 consumes (an EQUALS-like equational language):
/// programs are sets of equations f(p1..pn) = expr with constructor
/// patterns on the left and applications, constructors, primitives and
/// literals on the right.
///
/// Concrete syntax example (see src/corpus for complete programs):
/// \code
///   ap(nil, ys) = ys.
///   ap(cons(x, xs), ys) = cons(x, ap(xs, ys)).
///   len(nil) = 0.
///   len(cons(x, xs)) = 1 + len(xs).
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef LPA_FL_FLAST_H
#define LPA_FL_FLAST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lpa {

/// A left-hand-side pattern.
struct FLPattern {
  enum class Kind : uint8_t {
    Var,    ///< Pattern variable.
    Ctor,   ///< Constructor application (possibly 0-ary).
    IntLit, ///< Integer literal.
  };

  Kind K;
  std::string Name; ///< Variable or constructor name.
  int64_t IntValue = 0;
  std::vector<FLPattern> Args; ///< Constructor arguments.

  static FLPattern var(std::string Name) {
    return {Kind::Var, std::move(Name), 0, {}};
  }
  static FLPattern ctor(std::string Name, std::vector<FLPattern> Args = {}) {
    return {Kind::Ctor, std::move(Name), 0, std::move(Args)};
  }
  static FLPattern lit(int64_t V) { return {Kind::IntLit, "", V, {}}; }
};

/// A right-hand-side expression.
struct FLExpr {
  enum class Kind : uint8_t {
    Var,    ///< Reference to a pattern variable.
    Call,   ///< Application of a user-defined function.
    Ctor,   ///< Constructor application (possibly 0-ary).
    Prim,   ///< Primitive (strict) operator: + - * // mod < =< ...
    IntLit, ///< Integer literal.
  };

  Kind K;
  std::string Name;
  int64_t IntValue = 0;
  std::vector<FLExpr> Args;
};

/// One defining equation of a function.
struct FLEquation {
  std::string Func;
  std::vector<FLPattern> Params;
  FLExpr Rhs;
};

/// An algebraic-data-type declaration: ":- adt(tree, [leaf, node(tree,
/// tree)])." — constructor field specs are type names, nested type
/// applications, or (Prolog-style, uppercase) type variables that must
/// appear in the declared head.
struct FLAdtDecl {
  std::string Name;
  std::vector<std::string> Params; ///< Type-variable names of the head.
  struct Ctor {
    std::string Name;
    /// Field types rendered as terms over Params and other ADT names,
    /// e.g. "list(A)" or "tree"; kept as source text and re-parsed by the
    /// type checker into its own store.
    std::vector<std::string> Fields;
  };
  std::vector<Ctor> Ctors;
};

/// A whole program.
struct FLProgram {
  std::vector<FLEquation> Equations;

  /// ADT declarations (for the Section 6.1 type analysis).
  std::vector<FLAdtDecl> Adts;

  /// Function names with arities, in definition order.
  std::vector<std::pair<std::string, uint32_t>> Functions;

  /// Constructor names with arities used anywhere in the program.
  std::vector<std::pair<std::string, uint32_t>> Constructors;

  /// Primitive operators used (name, arity).
  std::vector<std::pair<std::string, uint32_t>> Primitives;

  /// \returns the arity of function \p Name, or -1 if undefined.
  int functionArity(const std::string &Name) const {
    for (const auto &[F, A] : Functions)
      if (F == Name)
        return static_cast<int>(A);
    return -1;
  }
};

} // namespace lpa

#endif // LPA_FL_FLAST_H
