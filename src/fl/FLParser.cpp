//===- FLParser.cpp - Functional language frontend ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "fl/FLParser.h"

#include "reader/Parser.h"
#include "term/TermWriter.h"
#include "term/Symbol.h"
#include "term/TermStore.h"

#include <algorithm>
#include <map>

using namespace lpa;

bool FLParser::isBuiltinNullaryCtor(const std::string &Name) {
  static const std::set<std::string> Builtin{
      "nil", "true", "false", "nothing", "empty", "leaf", "unit", "zero"};
  return Builtin.count(Name) > 0;
}

bool FLParser::isPrimitive(const std::string &Name, uint32_t Arity) {
  static const std::set<std::string> Binary{
      "+", "-", "*", "//", "/", "mod", "rem", "<", "=<",
      ">", ">=", "==", "\\==", "min", "max"};
  static const std::set<std::string> Unary{"-", "abs"};
  if (Arity == 2)
    return Binary.count(Name) > 0;
  if (Arity == 1)
    return Unary.count(Name) > 0;
  return false;
}

namespace {

/// Builder holding the name environment while converting parsed terms.
class FLBuilder {
public:
  FLBuilder(SymbolTable &Syms, const TermStore &Store)
      : Syms(Syms), Store(Store) {}

  ErrorOr<FLProgram> run(const std::vector<TermRef> &Clauses);

private:
  ErrorOr<bool> scanClause(TermRef Clause);
  ErrorOr<bool> handleAdtDecl(TermRef Decl);
  ErrorOr<bool> buildEquation(TermRef Lhs, TermRef Rhs);
  ErrorOr<FLPattern> buildPattern(TermRef T, std::set<std::string> &Vars);
  ErrorOr<FLExpr> buildExpr(TermRef T, const std::set<std::string> &Vars);
  ErrorOr<bool> handleDataDecl(TermRef Spec);

  void registerCtor(const std::string &Name, uint32_t Arity) {
    Ctors.insert({Name, Arity});
  }
  bool isCtor(const std::string &Name, uint32_t Arity) const {
    if (Ctors.count({Name, Arity}))
      return true;
    return Arity == 0 && FLParser::isBuiltinNullaryCtor(Name);
  }
  bool isFunction(const std::string &Name, uint32_t Arity) const {
    auto It = Funcs.find(Name);
    return It != Funcs.end() && It->second == Arity;
  }

  SymbolTable &Syms;
  const TermStore &Store;
  std::map<std::string, uint32_t> Funcs; ///< name -> arity
  std::vector<std::string> FuncOrder;
  std::set<std::pair<std::string, uint32_t>> Ctors;
  std::set<std::pair<std::string, uint32_t>> PrimsUsed;
  FLProgram Program;
};

ErrorOr<bool> FLBuilder::handleDataDecl(TermRef Spec) {
  TermRef D = Store.deref(Spec);
  // Comma-separated list of name/arity specs.
  if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Syms.Comma &&
      Store.arity(D) == 2) {
    auto L = handleDataDecl(Store.arg(D, 0));
    if (!L)
      return L;
    return handleDataDecl(Store.arg(D, 1));
  }
  SymbolId Slash = Syms.intern("/");
  if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Slash &&
      Store.arity(D) == 2) {
    TermRef NameT = Store.deref(Store.arg(D, 0));
    TermRef ArityT = Store.deref(Store.arg(D, 1));
    if (Store.tag(NameT) == TermTag::Atom && Store.tag(ArityT) == TermTag::Int) {
      registerCtor(Syms.name(Store.symbol(NameT)),
                   static_cast<uint32_t>(Store.intValue(ArityT)));
      return true;
    }
  }
  return Diagnostic("malformed data declaration; expected name/arity");
}

ErrorOr<bool> FLBuilder::handleAdtDecl(TermRef Decl) {
  TermRef D = Store.deref(Decl);
  if (!(Store.tag(D) == TermTag::Struct && Store.arity(D) == 2))
    return Diagnostic("adt declaration must be adt(Head, [Ctors...])");

  FLAdtDecl Adt;
  TermWriter W(Syms, Store); // One writer keeps type-var names coherent.

  TermRef Head = Store.deref(Store.arg(D, 0));
  if (Store.tag(Head) == TermTag::Atom) {
    Adt.Name = Syms.name(Store.symbol(Head));
  } else if (Store.tag(Head) == TermTag::Struct) {
    Adt.Name = Syms.name(Store.symbol(Head));
    for (uint32_t I = 0, E = Store.arity(Head); I < E; ++I) {
      TermRef P = Store.deref(Store.arg(Head, I));
      if (Store.tag(P) != TermTag::Ref)
        return Diagnostic("adt head parameters must be type variables");
      Adt.Params.push_back(W.str(P));
    }
  } else {
    return Diagnostic("adt head must be a name or name(Vars...)");
  }

  TermRef L = Store.deref(Store.arg(D, 1));
  while (Store.tag(L) == TermTag::Struct && Store.symbol(L) == Syms.Cons &&
         Store.arity(L) == 2) {
    TermRef C = Store.deref(Store.arg(L, 0));
    TermTag CT = Store.tag(C);
    if (CT != TermTag::Atom && CT != TermTag::Struct)
      return Diagnostic("adt constructor spec must be c or c(Types...)");
    FLAdtDecl::Ctor Ctor;
    Ctor.Name = Syms.name(Store.symbol(C));
    for (uint32_t I = 0, E = Store.arity(C); I < E; ++I)
      Ctor.Fields.push_back(W.str(Store.arg(C, I)));
    registerCtor(Ctor.Name, Store.arity(C));
    Adt.Ctors.push_back(std::move(Ctor));
    L = Store.deref(Store.arg(L, 1));
  }
  Program.Adts.push_back(std::move(Adt));
  return true;
}

ErrorOr<bool> FLBuilder::scanClause(TermRef Clause) {
  TermRef D = Store.deref(Clause);
  // Directive?
  if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Syms.Neck &&
      Store.arity(D) == 1) {
    TermRef Body = Store.deref(Store.arg(D, 0));
    SymbolId Data = Syms.intern("data");
    SymbolId Adt = Syms.intern("adt");
    if (Store.tag(Body) == TermTag::Struct && Store.symbol(Body) == Data)
      return handleDataDecl(Store.arg(Body, 0));
    if (Store.tag(Body) == TermTag::Struct && Store.symbol(Body) == Adt)
      return handleAdtDecl(Body);
    return true; // Other directives ignored.
  }

  SymbolId Eq = Syms.intern("=");
  if (!(Store.tag(D) == TermTag::Struct && Store.symbol(D) == Eq &&
        Store.arity(D) == 2))
    return Diagnostic("every FL clause must be an equation lhs = rhs");

  TermRef Lhs = Store.deref(Store.arg(D, 0));
  TermTag LT = Store.tag(Lhs);
  if (LT != TermTag::Atom && LT != TermTag::Struct)
    return Diagnostic("equation left-hand side must be f(patterns...)");

  std::string Name = Syms.name(Store.symbol(Lhs));
  uint32_t Arity = Store.arity(Lhs);
  auto [It, Inserted] = Funcs.emplace(Name, Arity);
  if (Inserted)
    FuncOrder.push_back(Name);
  else if (It->second != Arity)
    return Diagnostic("function '" + Name + "' defined at two arities");

  // Register every compound subterm of the patterns as a constructor.
  std::vector<TermRef> Work;
  for (uint32_t I = 0; I < Arity; ++I)
    Work.push_back(Store.arg(Lhs, I));
  while (!Work.empty()) {
    TermRef T = Store.deref(Work.back());
    Work.pop_back();
    if (Store.tag(T) != TermTag::Struct)
      continue;
    registerCtor(Syms.name(Store.symbol(T)), Store.arity(T));
    for (uint32_t I = 0, E = Store.arity(T); I < E; ++I)
      Work.push_back(Store.arg(T, I));
  }
  return true;
}

ErrorOr<FLPattern> FLBuilder::buildPattern(TermRef T,
                                           std::set<std::string> &Vars) {
  T = Store.deref(T);
  switch (Store.tag(T)) {
  case TermTag::Ref:
    return Diagnostic("FL variables are lowercase; found a Prolog-style "
                      "uppercase variable in a pattern");
  case TermTag::Int:
    return FLPattern::lit(Store.intValue(T));
  case TermTag::Atom: {
    std::string Name = Syms.name(Store.symbol(T));
    if (isCtor(Name, 0)) {
      registerCtor(Name, 0); // Builtin 0-ary ctors reach the program list.
      return FLPattern::ctor(Name);
    }
    if (Funcs.count(Name))
      return Diagnostic("function '" + Name + "' used in a pattern");
    if (!Vars.insert(Name).second)
      return Diagnostic("non-linear pattern: variable '" + Name +
                        "' repeats");
    return FLPattern::var(Name);
  }
  case TermTag::Struct: {
    std::string Name = Syms.name(Store.symbol(T));
    uint32_t Arity = Store.arity(T);
    if (isFunction(Name, Arity))
      return Diagnostic("function '" + Name + "' used in a pattern");
    std::vector<FLPattern> Args;
    for (uint32_t I = 0; I < Arity; ++I) {
      auto Sub = buildPattern(Store.arg(T, I), Vars);
      if (!Sub)
        return Sub.getError();
      Args.push_back(std::move(*Sub));
    }
    return FLPattern::ctor(Name, std::move(Args));
  }
  }
  return Diagnostic("unsupported pattern");
}

ErrorOr<FLExpr> FLBuilder::buildExpr(TermRef T,
                                     const std::set<std::string> &Vars) {
  T = Store.deref(T);
  switch (Store.tag(T)) {
  case TermTag::Ref:
    return Diagnostic("FL variables are lowercase; found a Prolog-style "
                      "uppercase variable in an expression");
  case TermTag::Int:
    return FLExpr{FLExpr::Kind::IntLit, "", Store.intValue(T), {}};
  case TermTag::Atom: {
    std::string Name = Syms.name(Store.symbol(T));
    if (Vars.count(Name))
      return FLExpr{FLExpr::Kind::Var, Name, 0, {}};
    if (isFunction(Name, 0))
      return FLExpr{FLExpr::Kind::Call, Name, 0, {}};
    if (isCtor(Name, 0)) {
      Ctors.insert({Name, 0});
      return FLExpr{FLExpr::Kind::Ctor, Name, 0, {}};
    }
    return Diagnostic("unknown name '" + Name +
                      "' in expression (not a pattern variable, function, "
                      "or declared constructor)");
  }
  case TermTag::Struct: {
    std::string Name = Syms.name(Store.symbol(T));
    uint32_t Arity = Store.arity(T);
    std::vector<FLExpr> Args;
    for (uint32_t I = 0; I < Arity; ++I) {
      auto Sub = buildExpr(Store.arg(T, I), Vars);
      if (!Sub)
        return Sub.getError();
      Args.push_back(std::move(*Sub));
    }
    if (isFunction(Name, Arity))
      return FLExpr{FLExpr::Kind::Call, Name, 0, std::move(Args)};
    if (FLParser::isPrimitive(Name, Arity)) {
      PrimsUsed.insert({Name, Arity});
      return FLExpr{FLExpr::Kind::Prim, Name, 0, std::move(Args)};
    }
    if (isCtor(Name, Arity))
      return FLExpr{FLExpr::Kind::Ctor, Name, 0, std::move(Args)};
    if (Funcs.count(Name))
      return Diagnostic("function '" + Name + "' applied at wrong arity");
    // New constructor used only on a right-hand side: register it.
    Ctors.insert({Name, Arity});
    return FLExpr{FLExpr::Kind::Ctor, Name, 0, std::move(Args)};
  }
  }
  return Diagnostic("unsupported expression");
}

ErrorOr<bool> FLBuilder::buildEquation(TermRef Lhs, TermRef Rhs) {
  FLEquation Eq;
  Eq.Func = Syms.name(Store.symbol(Lhs));
  std::set<std::string> Vars;
  for (uint32_t I = 0, E = Store.arity(Lhs); I < E; ++I) {
    auto P = buildPattern(Store.arg(Lhs, I), Vars);
    if (!P)
      return P.getError();
    Eq.Params.push_back(std::move(*P));
  }
  auto R = buildExpr(Rhs, Vars);
  if (!R)
    return R.getError();
  Eq.Rhs = std::move(*R);
  Program.Equations.push_back(std::move(Eq));
  return true;
}

ErrorOr<FLProgram> FLBuilder::run(const std::vector<TermRef> &Clauses) {
  // Pass 1: function names and pattern constructors.
  for (TermRef C : Clauses) {
    auto R = scanClause(C);
    if (!R)
      return R.getError();
  }
  // Pass 2: equations.
  SymbolId Eq = Syms.intern("=");
  for (TermRef C : Clauses) {
    TermRef D = Store.deref(C);
    if (Store.tag(D) == TermTag::Struct && Store.symbol(D) == Syms.Neck)
      continue; // Directive, handled in pass 1.
    auto R = buildEquation(Store.deref(Store.arg(D, 0)),
                           Store.deref(Store.arg(D, 1)));
    if (!R)
      return R.getError();
    (void)Eq;
  }

  for (const std::string &F : FuncOrder)
    Program.Functions.emplace_back(F, Funcs[F]);
  for (const auto &C : Ctors)
    Program.Constructors.push_back(C);
  for (const auto &P : PrimsUsed)
    Program.Primitives.push_back(P);
  return std::move(Program);
}

} // namespace

ErrorOr<FLProgram> FLParser::parse(std::string_view Source) {
  SymbolTable Syms;
  TermStore Store;
  auto Clauses = Parser::parseProgram(Syms, Store, Source);
  if (!Clauses)
    return Clauses.getError();
  FLBuilder Builder(Syms, Store);
  return Builder.run(*Clauses);
}
