//===- FLParser.h - Functional language frontend ----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses EQUALS-like equational programs. The concrete syntax reuses the
/// Prolog reader (equations are '='/2 terms); this module resolves names:
///
///  * a name defined by some equation head is a *function*;
///  * a compound term in a pattern is a *constructor* (auto-registered);
///  * 0-ary constructors come from a builtin table (nil, true, false, ...)
///    or a ":- data name/arity, ..." declaration;
///  * any other lowercase name in a pattern is a *pattern variable*;
///  * in an expression, pattern variables shadow everything, then defined
///    functions, then constructors; unknown applied names are errors;
///  * arithmetic/comparison operators are strict *primitives*.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_FL_FLPARSER_H
#define LPA_FL_FLPARSER_H

#include "fl/FLAst.h"
#include "support/Error.h"

#include <set>
#include <string>
#include <string_view>

namespace lpa {

/// Parses FL source text into an FLProgram.
class FLParser {
public:
  /// Parses \p Source; returns the program or a diagnostic.
  static ErrorOr<FLProgram> parse(std::string_view Source);

  /// \returns true if \p Name is a builtin 0-ary constructor.
  static bool isBuiltinNullaryCtor(const std::string &Name);

  /// \returns true if \p Name/\p Arity is a strict primitive operator.
  static bool isPrimitive(const std::string &Name, uint32_t Arity);
};

} // namespace lpa

#endif // LPA_FL_FLPARSER_H
