//===- CostProfile.cpp - Per-query subgoal cost attribution ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/CostProfile.h"

#include "obs/Json.h"

#include <algorithm>
#include <chrono>

using namespace lpa;

uint64_t CostProfile::nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void CostProfile::beginQuery(uint64_t Id) {
  ++Epoch; // Lazily invalidates every prior record.
  QueryId = Id;
  Touched.clear();
  Frames.clear();
  QueryStartNs = LastStampNs = nowNs();
  QueryWallNs = 0;
  RootNs = 0;
  RootSteps = 0;
  StepTick = 0;
  SeqCounter = 0;
  InQuery = true;
}

void CostProfile::endQuery() {
  if (!InQuery)
    return;
  stamp();
  // A nonempty frame stack here means the engine unwound without popping
  // (it does not); drain defensively so the next query starts clean.
  Frames.clear();
  QueryWallNs = LastStampNs - QueryStartNs;
  InQuery = false;
}

void CostProfile::stamp() {
  uint64_t Now = nowNs();
  uint64_t Slice = Now - LastStampNs;
  if (Frames.empty())
    RootNs += Slice;
  else
    live(Frames.back()).SelfNs += Slice;
  LastStampNs = Now;
}

CostProfile::Record &CostProfile::live(uint32_t Ordinal) {
  if (Ordinal >= Records.size())
    Records.resize(Ordinal + 1);
  Record &R = Records[Ordinal];
  if (R.Epoch != Epoch) {
    R = Record();
    R.Epoch = Epoch;
    R.FirstSeq = ++SeqCounter;
    if (!Frames.empty() && Frames.back() != Ordinal)
      R.Parent = Frames.back();
    Touched.push_back(Ordinal);
  }
  return R;
}

void CostProfile::pushFrame(uint32_t Ordinal) {
  stamp(); // Charge the slice so far to whoever was on top.
  (void)live(Ordinal);
  Frames.push_back(Ordinal);
}

void CostProfile::popFrame() {
  stamp();
  if (!Frames.empty())
    Frames.pop_back();
}

uint64_t CostProfile::attributedNs() const {
  uint64_t Sum = 0;
  for (uint32_t O : Touched)
    if (const Record *R = record(O))
      Sum += R->SelfNs;
  return Sum;
}

//===----------------------------------------------------------------------===//
// Summary helpers
//===----------------------------------------------------------------------===//

void lpa::computeCumulativeNs(std::vector<CostNode> &Nodes) {
  for (CostNode &N : Nodes)
    N.CumNs = N.SelfNs;
  // First-touch order puts every parent before its children, so one
  // reverse pass folds each subtree into its parent exactly once.
  for (size_t I = Nodes.size(); I-- > 0;) {
    uint32_t P = Nodes[I].Parent;
    if (P != CostProfile::NoParent && P < Nodes.size())
      Nodes[P].CumNs += Nodes[I].CumNs;
  }
}

namespace {

void writeRollups(const std::vector<CostRollup> &Rs, JsonWriter &W) {
  W.beginArray();
  for (const CostRollup &R : Rs) {
    W.beginObject();
    W.member("key", std::string_view(R.Key));
    W.member("subgoals", static_cast<uint64_t>(R.Subgoals));
    W.member("warm_hits", static_cast<uint64_t>(R.WarmHits));
    W.member("self_ns", R.SelfNs);
    W.member("steps", R.Steps);
    W.member("answers_inserted", R.AnswersInserted);
    W.member("answers_consumed", R.AnswersConsumed);
    W.member("resumptions", R.Resumptions);
    W.member("table_bytes", R.TableBytes);
    W.endObject();
  }
  W.endArray();
}

} // namespace

void lpa::writeCostSummaryJson(const CostSummary &S, JsonWriter &W,
                               size_t TopK) {
  W.beginObject();
  W.member("query_id", S.QueryId);
  W.member("query_wall_ns", S.QueryWallNs);
  W.member("attributed_ns", S.AttributedNs);
  W.member("root_ns", S.RootNs);
  W.member("root_steps", S.RootSteps);
  W.member("subgoals", static_cast<uint64_t>(S.Nodes.size()));

  // Nodes by self time descending, bounded to the top K.
  std::vector<const CostNode *> Sorted;
  Sorted.reserve(S.Nodes.size());
  for (const CostNode &N : S.Nodes)
    Sorted.push_back(&N);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const CostNode *A, const CostNode *B) {
                     return A->SelfNs > B->SelfNs;
                   });
  size_t N = TopK && TopK < Sorted.size() ? TopK : Sorted.size();
  W.key("nodes");
  W.beginArray();
  for (size_t I = 0; I < N; ++I) {
    const CostNode *C = Sorted[I];
    W.beginObject();
    W.member("ordinal", static_cast<uint64_t>(C->Ordinal));
    W.member("pred", std::string_view(C->Pred));
    W.member("call", std::string_view(C->Label));
    W.member("scc", static_cast<uint64_t>(C->SccId));
    W.member("warm", C->Warm);
    W.member("self_ns", C->SelfNs);
    W.member("cum_ns", C->CumNs);
    W.member("steps", C->Steps);
    W.member("answers_inserted", C->AnswersInserted);
    W.member("answers_consumed", C->AnswersConsumed);
    W.member("resumptions", C->Resumptions);
    W.member("table_bytes", C->TableBytes);
    W.endObject();
  }
  W.endArray();

  W.key("per_pred");
  writeRollups(S.PerPred, W);
  W.key("per_scc");
  writeRollups(S.PerScc, W);
  W.endObject();
}
