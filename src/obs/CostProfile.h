//===- CostProfile.h - Per-query subgoal cost attribution -------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-query cost attribution for tabled evaluation: the engine charges
/// wall time, derivation steps, answer traffic, consumer resumptions and
/// table bytes to the subgoal whose producer is running, so one query's
/// profile answers "which subgoals and SCCs cost what" — the question
/// slowlog/`inspect` (table sizes, query totals) cannot.
///
/// Attribution discipline (DESIGN.md §17): the engine mirrors its producer
/// stack into the profile via pushFrame/popFrame. Wall time accrues to the
/// frame on top via *batched* steady-clock reads — the clock is read at
/// every frame switch (so self-time boundaries are exact) and every
/// StepBatch-th derivation step in between (so a long producer run's
/// accrual is visible to mid-query snapshots without paying a clock read
/// per resolution). Time with an empty frame stack — goal-list machinery,
/// outermost answer enumeration — accrues to the query root (RootNs).
/// Conservation is exact by construction: at endQuery,
///   sum(SelfNs) + RootNs == QueryWallNs.
///
/// Like Provenance.h and Forest.h this layer is engine-agnostic: subgoals
/// are identified by their creation ordinal; the engine resolves names and
/// SCC membership only at export time (Solver::exportCostSummary).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_COSTPROFILE_H
#define LPA_OBS_COSTPROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace lpa {

class JsonWriter;

/// Exact per-subgoal costs for one query, accumulated by the Solver when
/// Options::RecordCosts is on (or a profile is attached via
/// setCostProfile). Detached, every engine hook is one null-pointer test —
/// the A/B the BM_CostRecord microbench pins.
class CostProfile {
public:
  static constexpr uint32_t NoParent = ~0u;
  /// Interior clock reads are decimated to every StepBatch-th derivation
  /// step; frame switches always read the clock, so the final per-subgoal
  /// figures are exact and only *mid-run* snapshots can lag by up to one
  /// batch of steps (the §17 error bound).
  static constexpr uint32_t StepBatch = 64;

  /// Costs charged to one subgoal within the current query.
  struct Record {
    uint64_t SelfNs = 0;   ///< Wall ns inside this subgoal's producer runs,
                           ///< excluding nested producers (exclusive time).
    uint64_t Steps = 0;    ///< Clause resolutions charged to this producer.
    uint64_t AnswersInserted = 0; ///< Unique answers recorded into its table.
    uint64_t AnswersConsumed = 0; ///< Answers returned from its table.
    uint64_t Resumptions = 0;     ///< Fixpoint re-runs of its producer.
    uint64_t TableBytes = 0;      ///< Table footprint at completion.
    bool Warm = false; ///< First touch this query hit an already-complete
                       ///< table (no producer ran: cold cost is zero).
    /// First subgoal on the frame stack when this one was first touched
    /// this query (NoParent = touched at the root). First-touch parents
    /// form a tree, so cumulative time is well-defined even on cyclic
    /// SCC dependency graphs.
    uint32_t Parent = NoParent;
    /// 1-based first-touch sequence within the query; parents always have
    /// a smaller sequence than their children (tree invariant the
    /// cumulative rollup exploits). 0 = not touched this query.
    uint32_t FirstSeq = 0;

  private:
    friend class CostProfile;
    uint64_t Epoch = 0; ///< Query stamp; the record is live iff it matches.
  };

  /// \name Engine hooks. All cheap; none allocate past the high-water mark
  /// of previously seen ordinals.
  /// @{

  /// Opens a query scope: stamps the clock, bumps the epoch (lazily
  /// invalidating every prior record) and resets the frame stack.
  void beginQuery(uint64_t QueryId);

  /// Closes the scope: final clock read, fixes QueryWallNs.
  void endQuery();

  /// Producer run of subgoal \p Ordinal begins (clock sync point).
  void pushFrame(uint32_t Ordinal);

  /// Innermost producer run ends (clock sync point).
  void popFrame();

  /// One clause resolution under the current top frame; every StepBatch-th
  /// call also flushes the pending wall slice.
  void noteStep() {
    (Frames.empty() ? RootSteps : live(Frames.back()).Steps) += 1;
    if ((++StepTick & (StepBatch - 1)) == 0)
      stamp();
  }

  void noteAnswerInserted(uint32_t Ordinal) {
    live(Ordinal).AnswersInserted += 1;
  }
  void noteAnswerConsumed(uint32_t Ordinal) {
    live(Ordinal).AnswersConsumed += 1;
  }
  void noteResumption(uint32_t Ordinal) { live(Ordinal).Resumptions += 1; }
  void noteTableBytes(uint32_t Ordinal, uint64_t Bytes) {
    live(Ordinal).TableBytes = Bytes;
  }
  void noteWarmHit(uint32_t Ordinal) { live(Ordinal).Warm = true; }

  /// @}

  /// \name Inspection (stable between queries; mid-query reads see the
  /// accrual up to the last clock sync).
  /// @{

  uint64_t queryId() const { return QueryId; }
  bool inQuery() const { return InQuery; }
  /// Wall ns of the last completed query (0 while one is in flight).
  uint64_t queryWallNs() const { return QueryWallNs; }
  /// Wall ns charged to the query root (outside every producer frame).
  uint64_t rootNs() const { return RootNs; }
  /// Derivation steps outside every producer frame.
  uint64_t rootSteps() const { return RootSteps; }

  /// Ordinals touched by the current/last query, in first-touch order.
  const std::vector<uint32_t> &touched() const { return Touched; }

  /// The live record for \p Ordinal, or nullptr if the current/last query
  /// never touched it.
  const Record *record(uint32_t Ordinal) const {
    if (Ordinal >= Records.size() || Records[Ordinal].Epoch != Epoch)
      return nullptr;
    return &Records[Ordinal];
  }

  /// Sum of SelfNs over all touched records.
  uint64_t attributedNs() const;

  /// @}

private:
  static uint64_t nowNs();

  /// Flushes the wall slice since the last clock read onto the current top
  /// frame (or the root), and restarts the slice.
  void stamp();

  /// The record for \p Ordinal in the current epoch, resetting a stale one
  /// and assigning first-touch parent/sequence on first use.
  Record &live(uint32_t Ordinal);

  std::vector<Record> Records; ///< Indexed by subgoal ordinal.
  std::vector<uint32_t> Touched;
  std::vector<uint32_t> Frames; ///< Ordinals, mirroring the producer stack.
  uint64_t Epoch = 0;
  uint64_t QueryId = 0;
  uint64_t QueryStartNs = 0;
  uint64_t QueryWallNs = 0;
  uint64_t LastStampNs = 0;
  uint64_t RootNs = 0;
  uint64_t RootSteps = 0;
  uint32_t StepTick = 0;
  uint32_t SeqCounter = 0;
  bool InQuery = false;
};

/// One subgoal in an exported cost summary (engine-resolved names).
struct CostNode {
  uint32_t Ordinal = 0;
  std::string Pred;  ///< "name/arity".
  std::string Label; ///< Rendered call term.
  uint32_t SccId = 0;
  uint32_t Parent = CostProfile::NoParent; ///< Index into CostSummary::Nodes.
  bool Warm = false;
  uint64_t SelfNs = 0;
  uint64_t CumNs = 0; ///< Self + every first-touch descendant's self.
  uint64_t Steps = 0;
  uint64_t AnswersInserted = 0;
  uint64_t AnswersConsumed = 0;
  uint64_t Resumptions = 0;
  uint64_t TableBytes = 0;
};

/// Self-cost aggregation over a grouping key (predicate or SCC).
struct CostRollup {
  std::string Key;
  uint32_t Subgoals = 0;
  uint32_t WarmHits = 0;
  uint64_t SelfNs = 0;
  uint64_t Steps = 0;
  uint64_t AnswersInserted = 0;
  uint64_t AnswersConsumed = 0;
  uint64_t Resumptions = 0;
  uint64_t TableBytes = 0;
};

/// One query's full cost attribution, as exported by
/// Solver::exportCostSummary. Nodes are in first-touch order; rollups are
/// sorted by SelfNs descending.
struct CostSummary {
  uint64_t QueryId = 0;
  uint64_t QueryWallNs = 0;
  uint64_t AttributedNs = 0; ///< sum(Nodes[].SelfNs); plus RootNs == wall.
  uint64_t RootNs = 0;
  uint64_t RootSteps = 0;
  std::vector<CostNode> Nodes;
  std::vector<CostRollup> PerPred;
  std::vector<CostRollup> PerScc; ///< Keys "scc N"; open subgoals "open".
};

/// Fills CumNs for every node from the first-touch parent tree (children
/// always follow parents in first-touch order, so one reverse pass).
void computeCumulativeNs(std::vector<CostNode> &Nodes);

/// Streams \p S as one JSON object (schema-free: the caller wraps it under
/// its own schema tag). \p TopK bounds the nodes array (0 = all); nodes
/// are emitted by SelfNs descending.
void writeCostSummaryJson(const CostSummary &S, JsonWriter &W,
                          size_t TopK = 0);

} // namespace lpa

#endif // LPA_OBS_COSTPROFILE_H
