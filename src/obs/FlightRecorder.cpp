//===- FlightRecorder.cpp - Always-on query-lifecycle journal -----------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include "obs/Json.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

using namespace lpa;

const char *lpa::frEventKindName(FrEventKind K) {
  switch (K) {
  case FrEventKind::QueryStart:
    return "query-start";
  case FrEventKind::QueryEnd:
    return "query-end";
  case FrEventKind::ConsultSweep:
    return "consult-sweep";
  case FrEventKind::RetractSweep:
    return "retract-sweep";
  case FrEventKind::ContentionSpike:
    return "contention-spike";
  case FrEventKind::DeadlineHit:
    return "deadline-hit";
  case FrEventKind::IncompleteTable:
    return "incomplete-table";
  case FrEventKind::FingerprintDivergence:
    return "fingerprint-divergence";
  }
  return "?";
}

FlightRecorder::FlightRecorder(Options O)
    : Opts(std::move(O)), Epoch(std::chrono::steady_clock::now()) {
  if (Opts.Capacity)
    Events.reserve(Opts.Capacity);
}

void FlightRecorder::record(FrEventKind K, uint64_t QueryId, uint64_t A,
                            uint64_t B, uint64_t C, uint32_t Flags,
                            std::string_view Detail) {
  FrEvent E;
  E.Kind = K;
  E.Flags = Flags;
  E.TimeNs = nowNs();
  E.QueryId = QueryId;
  E.A = A;
  E.B = B;
  E.C = C;
  size_t N = std::min(Detail.size(), sizeof(E.Detail) - 1);
  std::memcpy(E.Detail, Detail.data(), N);
  E.Detail[N] = '\0';
  if (K == FrEventKind::DeadlineHit || K == FrEventKind::IncompleteTable)
    Alarms.fetch_add(1, std::memory_order_relaxed);
  ++Total;
  if (!Opts.Capacity || Events.size() < Opts.Capacity) {
    Events.push_back(E);
    return;
  }
  // Keep-last ring: overwrite the oldest slot and count the eviction —
  // the same discipline RecordingSink's bounded mode uses.
  Events[Head] = E;
  Head = (Head + 1) % Events.size();
  ++Dropped;
}

const std::vector<FrEvent> &FlightRecorder::events() const {
  if (Head) {
    std::rotate(Events.begin(), Events.begin() + Head, Events.end());
    Head = 0;
  }
  return Events;
}

size_t FlightRecorder::count(FrEventKind K) const {
  size_t N = 0;
  for (const FrEvent &E : Events)
    if (E.Kind == K)
      ++N;
  return N;
}

std::vector<FrEvent> FlightRecorder::eventsForQuery(uint64_t QueryId) const {
  std::vector<FrEvent> Out;
  for (const FrEvent &E : events())
    if (E.QueryId == QueryId)
      Out.push_back(E);
  return Out;
}

void FlightRecorder::clear() {
  Events.clear();
  Head = 0;
  Dropped = 0;
  Total = 0;
}

//===----------------------------------------------------------------------===//
// Async-signal-safe raw dump
//===----------------------------------------------------------------------===//

namespace {

/// Fixed-size line assembler over write(2): everything the signal path
/// needs and nothing more (no allocation, no stdio, no locale).
struct RawWriter {
  int Fd;
  char Buf[256];
  size_t Len = 0;

  explicit RawWriter(int Fd) : Fd(Fd) {}

  void flush() {
    size_t Off = 0;
    while (Off < Len) {
      ssize_t W = ::write(Fd, Buf + Off, Len - Off);
      if (W <= 0)
        break;
      Off += static_cast<size_t>(W);
    }
    Len = 0;
  }

  void ch(char C) {
    if (Len == sizeof(Buf))
      flush();
    Buf[Len++] = C;
  }

  void str(const char *S) {
    for (; S && *S; ++S)
      ch(*S);
  }

  void u64(uint64_t V) {
    char Tmp[20];
    size_t N = 0;
    do {
      Tmp[N++] = static_cast<char>('0' + V % 10);
      V /= 10;
    } while (V);
    while (N)
      ch(Tmp[--N]);
  }
};

} // namespace

void FlightRecorder::writeRawTo(int Fd) const {
  RawWriter W(Fd);
  W.str("# lpa flight recorder: total=");
  W.u64(Total);
  W.str(" dropped=");
  W.u64(Dropped);
  W.str(" kept=");
  W.u64(Events.size());
  W.ch('\n');
  // Walk the ring in storage order starting at Head — no rotation, no
  // mutation: this may run from a signal handler.
  size_t N = Events.size();
  for (size_t I = 0; I < N; ++I) {
    const FrEvent &E = Events[(Head + I) % N];
    W.u64(E.TimeNs);
    W.str(" q");
    W.u64(E.QueryId);
    W.ch(' ');
    W.str(frEventKindName(E.Kind));
    W.str(" flags=");
    W.u64(E.Flags);
    W.str(" a=");
    W.u64(E.A);
    W.str(" b=");
    W.u64(E.B);
    W.str(" c=");
    W.u64(E.C);
    if (E.Detail[0]) {
      W.ch(' ');
      W.str(E.Detail);
    }
    W.ch('\n');
  }
  W.flush();
}

//===----------------------------------------------------------------------===//
// In-band post-mortem dump
//===----------------------------------------------------------------------===//

std::string FlightRecorder::dump(
    std::string_view Reason,
    std::initializer_list<std::pair<const char *, uint64_t>> Gauges,
    std::string_view FoldedStacks) {
  if (Opts.DumpDir.empty() || Dumps >= Opts.MaxDumps)
    return {};

  // Millisecond wall timestamp + per-recorder sequence keeps names unique
  // even when anomalies land within the same millisecond.
  uint64_t WallMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string Slug;
  for (char C : Reason)
    Slug += (std::isalnum(static_cast<unsigned char>(C)) ? C : '-');
  std::string Path = Opts.DumpDir + "/lpa-postmortem-" +
                     std::to_string(WallMs) + "-" + std::to_string(Dumps) +
                     "-" + Slug + ".txt";

  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return {};
  std::fprintf(F, "lpa post-mortem dump\nreason: %.*s\nwall_ms: %llu\n",
               static_cast<int>(Reason.size()), Reason.data(),
               static_cast<unsigned long long>(WallMs));
  for (const auto &[Name, Value] : Gauges)
    std::fprintf(F, "%s: %llu\n", Name,
                 static_cast<unsigned long long>(Value));
  std::fprintf(F, "\n== flight recorder ==\n");
  std::fflush(F);
  writeRawTo(fileno(F));
  if (!FoldedStacks.empty())
    std::fprintf(F, "\n== sampler folded stacks ==\n%.*s",
                 static_cast<int>(FoldedStacks.size()), FoldedStacks.data());
  std::fclose(F);
  ++Dumps;
  return Path;
}

//===----------------------------------------------------------------------===//
// Fatal-signal dump
//===----------------------------------------------------------------------===//

namespace {

/// The armed recorder and its pre-formatted dump path. The path is built
/// at install time (installSignalDump is not a signal context) so the
/// handler itself only opens, writes and re-raises.
std::atomic<const FlightRecorder *> SigRecorder{nullptr};
char SigDumpPath[512];

void fatalSignalHandler(int Sig) {
  const FlightRecorder *R = SigRecorder.load(std::memory_order_acquire);
  if (R) {
    int Fd = ::open(SigDumpPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      RawWriter W(Fd);
      W.str("# lpa fatal signal ");
      W.u64(static_cast<uint64_t>(Sig));
      W.ch('\n');
      W.flush();
      R->writeRawTo(Fd);
      ::close(Fd);
    }
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dumps, wait status intact).
  ::signal(Sig, SIG_DFL);
  ::raise(Sig);
}

} // namespace

void FlightRecorder::installSignalDump(FlightRecorder *R) {
  if (!R || R->Opts.DumpDir.empty()) {
    SigRecorder.store(nullptr, std::memory_order_release);
    return;
  }
  std::string Path = R->Opts.DumpDir + "/lpa-postmortem-signal.txt";
  if (Path.size() >= sizeof(SigDumpPath))
    return;
  std::memcpy(SigDumpPath, Path.c_str(), Path.size() + 1);
  SigRecorder.store(R, std::memory_order_release);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = fatalSignalHandler;
  sigemptyset(&SA.sa_mask);
  for (int Sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT})
    ::sigaction(Sig, &SA, nullptr);
}

//===----------------------------------------------------------------------===//
// JSON export
//===----------------------------------------------------------------------===//

void FlightRecorder::writeJson(JsonWriter &W, size_t MaxEvents) const {
  const std::vector<FrEvent> &Evs = events();
  size_t From = MaxEvents && Evs.size() > MaxEvents ? Evs.size() - MaxEvents
                                                    : 0;
  W.beginObject();
  W.member("capacity", static_cast<uint64_t>(Opts.Capacity));
  W.member("total", Total);
  W.member("dropped", Dropped);
  W.member("dumps", Dumps);
  W.key("events");
  W.beginArray();
  for (size_t I = From; I < Evs.size(); ++I) {
    const FrEvent &E = Evs[I];
    W.beginObject();
    W.member("kind", frEventKindName(E.Kind));
    W.member("time_ns", E.TimeNs);
    W.member("query", E.QueryId);
    if (E.Flags)
      W.member("flags", static_cast<uint64_t>(E.Flags));
    if (E.A)
      W.member("a", E.A);
    if (E.B)
      W.member("b", E.B);
    if (E.C)
      W.member("c", E.C);
    if (E.Detail[0])
      W.member("detail", std::string_view(E.Detail));
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

FlightRecorder::~FlightRecorder() {
  // Disarm the signal path if this recorder is the armed one — the
  // handler must never chase a dangling pointer.
  const FlightRecorder *Armed = SigRecorder.load(std::memory_order_acquire);
  if (Armed == this)
    SigRecorder.store(nullptr, std::memory_order_release);
}
