//===- FlightRecorder.h - Always-on query-lifecycle journal -----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's black box: a bounded, always-on ring journal of coarse
/// query-lifecycle events — query start/end with outcome flags, consult/
/// retract sweep summaries, shared-space contention spikes, deadline and
/// incomplete-table anomalies — that costs nothing on the happy path and
/// is already full of context when something goes wrong.
///
/// Unlike the tracer (per-SLG-transition, opt-in, high volume), the
/// recorder sees a handful of events per *request*, so it can stay
/// attached for a month-long daemon uptime at a constant footprint. The
/// engine holds a nullable pointer (Solver::setFlightRecorder), so the
/// detached path is the usual one null test per hook — the same contract
/// as the tracer/cursor/query-context hooks, pinned by the
/// BM_FlightRecorderRecord A/B micro.
///
/// The ring mirrors RecordingSink's bounded mode exactly: keep-last
/// semantics, every eviction counted, so
///   droppedCount() + events().size() == totalRecorded().
///
/// Anomaly dumps: dump() writes the ring plus caller-supplied gauges and
/// folded sampler stacks to a timestamped post-mortem file (bounded by
/// Options::MaxDumps per process life). For fatal signals there is a
/// separate async-signal-safe path: installSignalDump() arms a handler
/// that formats the ring with nothing but static buffers and write(2),
/// then re-raises with the default disposition. Events are PODs with an
/// inline Detail array precisely so that path never chases a pointer into
/// possibly-corrupt heap memory.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_FLIGHTRECORDER_H
#define LPA_OBS_FLIGHTRECORDER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lpa {

class JsonWriter;

/// The recorder's event taxonomy — request-granular, deliberately coarse.
enum class FrEventKind : uint8_t {
  QueryStart,      ///< An outermost query began (Detail = goal text).
  QueryEnd,        ///< It finished; Flags carry the outcome bits.
  ConsultSweep,    ///< A consult ran (A = clauses, B = invalidated, C = survived).
  RetractSweep,    ///< A retract ran (same payload as ConsultSweep).
  ContentionSpike, ///< Shard-lock contention within one query (A = contended
                   ///< acquisitions, B = wait ns).
  DeadlineHit,     ///< A query deadline expired mid-search (A = depth).
  IncompleteTable, ///< A table completed tainted (A = subgoal ordinal,
                   ///< Detail = predicate).
  FingerprintDivergence, ///< Serial/parallel answer fingerprints disagreed.
};

/// Short stable mnemonic ("query-start", ...) — used by both the JSON
/// export and the signal-safe raw dump (static storage).
const char *frEventKindName(FrEventKind K);

/// Outcome bits stamped on QueryEnd events.
enum : uint32_t {
  FrOutcomeDeadline = 1u << 0,   ///< The deadline expired mid-search.
  FrOutcomeIncomplete = 1u << 1, ///< A table completed tainted.
};

/// One journal entry. POD with inline text: the signal-dump path walks
/// these with write(2) only, so nothing here may point at heap memory.
struct FrEvent {
  FrEventKind Kind = FrEventKind::QueryStart;
  uint32_t Flags = 0;  ///< Kind-specific bits (QueryEnd: FrOutcome*).
  uint64_t TimeNs = 0; ///< Monotonic time since the recorder's epoch.
  uint64_t QueryId = 0;
  uint64_t A = 0, B = 0, C = 0; ///< Kind-specific payloads (see FrEventKind).
  /// Truncated free text (goal, predicate, reason). Always NUL-terminated.
  char Detail[48] = {};
};

/// The bounded journal. Not thread-safe: it records from the session
/// thread only (the daemon is a single-threaded event loop), which is
/// also what makes the ring readable from a signal handler interrupting
/// that same thread.
class FlightRecorder {
public:
  struct Options {
    /// Ring capacity; 0 = unbounded (tests/tools only — the daemon always
    /// bounds it).
    size_t Capacity = 256;
    /// Directory post-mortem files go to; "" disables dump() entirely
    /// (the ring itself still records).
    std::string DumpDir;
    /// Dumps written per recorder life; further anomalies only count.
    size_t MaxDumps = 16;
  };

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options O);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// Appends one event (keep-last eviction when full). \p Detail is
  /// copied into the event's inline array, truncated to fit.
  void record(FrEventKind K, uint64_t QueryId, uint64_t A = 0, uint64_t B = 0,
              uint64_t C = 0, uint32_t Flags = 0,
              std::string_view Detail = {});

  /// \name Engine-side hooks (the solver null-guards the pointer).
  /// @{
  void noteDeadlineHit(uint64_t QueryId, uint64_t Depth) {
    record(FrEventKind::DeadlineHit, QueryId, Depth);
  }
  void noteIncompleteTable(uint64_t QueryId, uint64_t Ordinal,
                           std::string_view Pred) {
    record(FrEventKind::IncompleteTable, QueryId, Ordinal, 0, 0, 0, Pred);
  }
  void noteFingerprintDivergence(uint64_t QueryId, std::string_view What) {
    record(FrEventKind::FingerprintDivergence, QueryId, 0, 0, 0, 0, What);
  }
  /// @}

  /// Kept events in arrival order (oldest first). Linearizes the ring in
  /// place when it has wrapped, exactly like RecordingSink::events().
  const std::vector<FrEvent> &events() const;

  /// \name Anomaly alarms — deadline-at-risk and incomplete-taint events.
  /// The counter is atomic so the Sampler thread can watch it lock-free
  /// and boost its sweep rate for the remainder of an at-risk query
  /// (adaptive sampling; see Sampler::setAlarmSource).
  /// @{
  uint64_t alarmCount() const {
    return Alarms.load(std::memory_order_relaxed);
  }
  const std::atomic<uint64_t> *alarmCounter() const { return &Alarms; }
  /// @}

  /// Events evicted by the ring; 0 while it has never filled.
  uint64_t droppedCount() const { return Dropped; }
  /// Every event ever recorded: droppedCount() + events().size().
  uint64_t totalRecorded() const { return Total; }
  /// Kept events of kind \p K.
  size_t count(FrEventKind K) const;
  /// Kept events belonging to query \p QueryId, oldest first.
  std::vector<FrEvent> eventsForQuery(uint64_t QueryId) const;

  void clear();

  const Options &options() const { return Opts; }

  /// Nanoseconds since construction (monotonic clock).
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// \name Post-mortem dumps.
  /// @{

  /// Writes the whole journal to \p Fd as text, one event per line, using
  /// only write(2) and stack buffers — async-signal-safe, no allocation,
  /// no stdio, no linearization (the ring is walked in place).
  void writeRawTo(int Fd) const;

  /// Writes a full post-mortem — header with \p Reason, the journal, the
  /// caller's \p Gauges (table watermarks and friends), and \p
  /// FoldedStacks (the sampler's folded profile, may be empty) — to a
  /// timestamped file under Options::DumpDir. NOT signal-safe; this is
  /// the in-band anomaly path (deadline, taint, divergence).
  /// \returns the path written, or "" when disabled, rate-capped, or the
  /// write failed.
  std::string
  dump(std::string_view Reason,
       std::initializer_list<std::pair<const char *, uint64_t>> Gauges,
       std::string_view FoldedStacks);

  /// Dump files written so far (dump() successes plus a signal dump).
  uint64_t dumpsWritten() const { return Dumps; }

  /// Arms process-wide fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/
  /// SIGABRT) that write \p R's ring to
  /// "<DumpDir>/lpa-postmortem-signal.txt" via the raw path above and
  /// re-raise with the default disposition. Pass nullptr to disarm (the
  /// handlers stay installed but become pass-through). Only one recorder
  /// can be armed at a time; the last call wins. No-op when \p R has no
  /// DumpDir.
  static void installSignalDump(FlightRecorder *R);

  /// @}

  /// Emits the journal as a JSON object ({capacity, total, dropped,
  /// dumps, events:[...]}) into \p W — the `inspect` op's recorder block.
  void writeJson(JsonWriter &W, size_t MaxEvents = 0) const;

private:
  Options Opts;
  /// Ring storage, RecordingSink discipline: until the first wrap arrival
  /// order equals storage order; after it, Head marks the oldest kept
  /// event and events() rotates on demand.
  mutable std::vector<FrEvent> Events;
  mutable size_t Head = 0;
  uint64_t Dropped = 0;
  uint64_t Total = 0;
  uint64_t Dumps = 0;
  std::atomic<uint64_t> Alarms{0};
  std::chrono::steady_clock::time_point Epoch;
};

} // namespace lpa

#endif // LPA_OBS_FLIGHTRECORDER_H
