//===- Forest.cpp - SLG forest structure export ---------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Forest.h"

#include "obs/Json.h"

#include <algorithm>

namespace lpa {

namespace {

/// DOT double-quoted string escaping: backslash and quote; newlines become
/// literal \n escapes so labels stay single-line.
std::string dotEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::vector<ForestEdge> sortedUniqueEdges(const ForestGraph &G) {
  std::vector<ForestEdge> Edges = G.Edges;
  std::sort(Edges.begin(), Edges.end(),
            [](const ForestEdge &A, const ForestEdge &B) {
              return A.Consumer != B.Consumer ? A.Consumer < B.Consumer
                                              : A.Producer < B.Producer;
            });
  Edges.erase(std::unique(Edges.begin(), Edges.end(),
                          [](const ForestEdge &A, const ForestEdge &B) {
                            return A.Consumer == B.Consumer &&
                                   A.Producer == B.Producer;
                          }),
              Edges.end());
  return Edges;
}

} // namespace

std::string forestToDot(const ForestGraph &G) {
  std::string Out = "digraph slg_forest {\n";
  Out += "  rankdir=LR;\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    const ForestNode &N = G.Nodes[I];
    Out += "  n" + std::to_string(I) + " [label=\"" + dotEscape(N.Label) +
           "\\n" + std::to_string(N.Answers) +
           (N.Answers == 1 ? " answer" : " answers");
    if (N.SccId)
      Out += ", scc " + std::to_string(N.SccId) + ", done #" +
             std::to_string(N.CompletionOrder);
    if (N.Incomplete)
      Out += "\\nINCOMPLETE";
    else if (!N.Complete)
      Out += "\\nopen";
    Out += "\"";
    if (N.Incomplete)
      Out += ", color=red";
    else if (!N.Complete)
      Out += ", style=dashed";
    Out += "];\n";
  }
  for (const ForestEdge &E : sortedUniqueEdges(G))
    Out += "  n" + std::to_string(E.Consumer) + " -> n" +
           std::to_string(E.Producer) + ";\n";
  Out += "}\n";
  return Out;
}

void writeForestJson(const ForestGraph &G, JsonWriter &W) {
  W.beginObject();
  W.key("nodes");
  W.beginArray();
  for (const ForestNode &N : G.Nodes) {
    W.beginObject();
    W.member("pred", N.Pred);
    W.member("call", N.Label);
    W.member("answers", N.Answers);
    W.member("complete", N.Complete);
    W.member("incomplete", N.Incomplete);
    W.member("scc", static_cast<uint64_t>(N.SccId));
    W.member("completion_order", static_cast<uint64_t>(N.CompletionOrder));
    W.endObject();
  }
  W.endArray();
  W.key("edges");
  W.beginArray();
  for (const ForestEdge &E : sortedUniqueEdges(G)) {
    W.beginObject();
    W.member("consumer", static_cast<uint64_t>(E.Consumer));
    W.member("producer", static_cast<uint64_t>(E.Producer));
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

std::string forestToJson(const ForestGraph &G) {
  std::string Out;
  JsonWriter W(Out);
  writeForestJson(G, W);
  return Out;
}

} // namespace lpa
