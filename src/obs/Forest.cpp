//===- Forest.cpp - SLG forest structure export ---------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Forest.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>

namespace lpa {

namespace {

/// DOT double-quoted string escaping: backslash and quote; newlines become
/// literal \n escapes so labels stay single-line.
std::string dotEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Nanoseconds rendered as a compact human quantity for DOT labels.
std::string fmtNs(uint64_t Ns) {
  char Buf[32];
  if (Ns >= 1000000000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fs", double(Ns) / 1e9);
  else if (Ns >= 1000000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", double(Ns) / 1e6);
  else if (Ns >= 1000ull)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", double(Ns) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%lluns",
                  static_cast<unsigned long long>(Ns));
  return Buf;
}

std::vector<ForestEdge> sortedUniqueEdges(const ForestGraph &G) {
  std::vector<ForestEdge> Edges = G.Edges;
  std::sort(Edges.begin(), Edges.end(),
            [](const ForestEdge &A, const ForestEdge &B) {
              return A.Consumer != B.Consumer ? A.Consumer < B.Consumer
                                              : A.Producer < B.Producer;
            });
  Edges.erase(std::unique(Edges.begin(), Edges.end(),
                          [](const ForestEdge &A, const ForestEdge &B) {
                            return A.Consumer == B.Consumer &&
                                   A.Producer == B.Producer;
                          }),
              Edges.end());
  return Edges;
}

} // namespace

std::vector<SccSummary> computeSccSummaries(const ForestGraph &G) {
  std::vector<SccSummary> Out;
  // SccIds are small dense-ish integers handed out by the completion
  // counter; map id -> summary index without assuming density.
  std::vector<std::pair<uint32_t, size_t>> ById;
  for (uint32_t I = 0; I < G.Nodes.size(); ++I) {
    const ForestNode &N = G.Nodes[I];
    if (!N.SccId)
      continue;
    size_t Slot = SIZE_MAX;
    for (const auto &[Id, S] : ById)
      if (Id == N.SccId) {
        Slot = S;
        break;
      }
    if (Slot == SIZE_MAX) {
      Slot = Out.size();
      ById.emplace_back(N.SccId, Slot);
      Out.push_back(SccSummary{N.SccId, N.CompletionOrder, 0, false, {}});
    }
    SccSummary &S = Out[Slot];
    S.Answers += N.Answers;
    S.Incomplete |= N.Incomplete;
    if (N.CompletionOrder &&
        (!S.CompletionOrder || N.CompletionOrder < S.CompletionOrder))
      S.CompletionOrder = N.CompletionOrder;
    S.Members.push_back(I);
  }
  std::sort(Out.begin(), Out.end(),
            [](const SccSummary &A, const SccSummary &B) {
              return A.CompletionOrder != B.CompletionOrder
                         ? A.CompletionOrder < B.CompletionOrder
                         : A.SccId < B.SccId;
            });
  return Out;
}

std::string forestToDot(const ForestGraph &G) {
  std::string Out = "digraph slg_forest {\n";
  Out += "  rankdir=LR;\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (size_t I = 0; I < G.Nodes.size(); ++I) {
    const ForestNode &N = G.Nodes[I];
    Out += "  n" + std::to_string(I) + " [label=\"" + dotEscape(N.Label) +
           "\\n" + std::to_string(N.Answers) +
           (N.Answers == 1 ? " answer" : " answers");
    if (N.SccId)
      Out += ", scc " + std::to_string(N.SccId) + ", done #" +
             std::to_string(N.CompletionOrder);
    if (N.HasCost) {
      // Profiler flame view: exclusive vs inclusive time for the query
      // that exported this forest.
      Out += "\\nself " + fmtNs(N.CostSelfNs) + " / cum " +
             fmtNs(N.CostCumNs);
      if (N.CostWarm)
        Out += " (warm)";
    }
    if (N.Incomplete)
      Out += "\\nINCOMPLETE";
    else if (!N.Complete)
      Out += "\\nopen";
    Out += "\"";
    if (N.Incomplete)
      Out += ", color=red";
    else if (!N.Complete)
      Out += ", style=dashed";
    Out += "];\n";
  }
  for (const ForestEdge &E : sortedUniqueEdges(G))
    Out += "  n" + std::to_string(E.Consumer) + " -> n" +
           std::to_string(E.Producer) + ";\n";
  // SCC roll-up in completion order, from the same computation the
  // scheduler uses (comment lines: annotations, not layout).
  for (const SccSummary &S : computeSccSummaries(G)) {
    Out += "  // scc " + std::to_string(S.SccId) + ": done #" +
           std::to_string(S.CompletionOrder) + ", " +
           std::to_string(S.Members.size()) +
           (S.Members.size() == 1 ? " member, " : " members, ") +
           std::to_string(S.Answers) + " answers";
    if (S.Incomplete)
      Out += ", INCOMPLETE";
    Out += "\n";
  }
  Out += "}\n";
  return Out;
}

void writeForestJson(const ForestGraph &G, JsonWriter &W) {
  W.beginObject();
  W.key("nodes");
  W.beginArray();
  for (const ForestNode &N : G.Nodes) {
    W.beginObject();
    W.member("pred", N.Pred);
    W.member("call", N.Label);
    W.member("answers", N.Answers);
    W.member("complete", N.Complete);
    W.member("incomplete", N.Incomplete);
    W.member("scc", static_cast<uint64_t>(N.SccId));
    W.member("completion_order", static_cast<uint64_t>(N.CompletionOrder));
    if (N.HasCost) {
      W.key("cost");
      W.beginObject();
      W.member("self_ns", N.CostSelfNs);
      W.member("cum_ns", N.CostCumNs);
      W.member("steps", N.CostSteps);
      W.member("answers_consumed", N.CostAnswersConsumed);
      W.member("resumptions", N.CostResumptions);
      W.member("warm", N.CostWarm);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.key("edges");
  W.beginArray();
  for (const ForestEdge &E : sortedUniqueEdges(G)) {
    W.beginObject();
    W.member("consumer", static_cast<uint64_t>(E.Consumer));
    W.member("producer", static_cast<uint64_t>(E.Producer));
    W.endObject();
  }
  W.endArray();
  W.key("sccs");
  W.beginArray();
  for (const SccSummary &S : computeSccSummaries(G)) {
    W.beginObject();
    W.member("scc", static_cast<uint64_t>(S.SccId));
    W.member("completion_order", static_cast<uint64_t>(S.CompletionOrder));
    W.member("answers", S.Answers);
    W.member("incomplete", S.Incomplete);
    W.key("members");
    W.beginArray();
    for (uint32_t M : S.Members)
      W.value(static_cast<uint64_t>(M));
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

std::string forestToJson(const ForestGraph &G) {
  std::string Out;
  JsonWriter W(Out);
  writeForestJson(G, W);
  return Out;
}

} // namespace lpa
