//===- Forest.h - SLG forest structure export -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A renderable snapshot of the SLG forest: one node per tabled subgoal
/// (creation order), plus the consumer -> producer dependency edges the
/// engine observed while evaluating. The snapshot carries the structural
/// facts the paper's tabling story turns on — SCC membership from the
/// approximate-Tarjan completion, completion order, and the `Incomplete`
/// taint from depth truncation — and serializes as GraphViz DOT or as JSON
/// through JsonWriter.
///
/// Like Provenance.h this layer is engine-agnostic: the engine fills plain
/// structs; nothing here touches terms or tables.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_FOREST_H
#define LPA_OBS_FOREST_H

#include <cstdint>
#include <string>
#include <vector>

namespace lpa {

class JsonWriter;

/// One tabled subgoal. The node's index in ForestGraph::Nodes is the
/// engine's creation-order subgoal index (the same index space premise
/// records use).
struct ForestNode {
  std::string Pred;  ///< "name/arity" of the tabled predicate.
  std::string Label; ///< Rendered call term, e.g. "path(a, _A)".
  uint64_t Answers = 0;
  bool Complete = false;
  bool Incomplete = false;     ///< Depth-truncation taint (unsound table).
  uint32_t SccId = 0;          ///< 1-based completion SCC; 0 = never completed.
  uint32_t CompletionOrder = 0; ///< 1-based completion sequence; 0 = never.

  /// \name Cost annotations (Options::RecordCosts; see obs/CostProfile.h).
  /// Filled only when the exporting solver had a cost profile attached AND
  /// its current/last query touched this subgoal — the self-vs-cumulative
  /// split renders the forest like a profiler flame view.
  /// @{
  bool HasCost = false;
  bool CostWarm = false;   ///< Answered from an already-complete table.
  uint64_t CostSelfNs = 0; ///< Exclusive producer time, last query.
  uint64_t CostCumNs = 0;  ///< Self + first-touch descendants.
  uint64_t CostSteps = 0;
  uint64_t CostAnswersConsumed = 0;
  uint64_t CostResumptions = 0;
  /// @}
};

/// Consumer -> Producer: evaluating subgoal \p Consumer consumed answers of
/// (or at least called into) subgoal \p Producer.
struct ForestEdge {
  uint32_t Consumer = 0;
  uint32_t Producer = 0;
};

struct ForestGraph {
  std::vector<ForestNode> Nodes;
  std::vector<ForestEdge> Edges;
};

/// One completed SCC of the forest, summarized: when it completed relative
/// to the others and whether any member carries the incomplete taint (one
/// poisoned member poisons the whole SCC — the engine's completion
/// discipline, restated over the export). This is the single SCC
/// computation both consumers share: the DOT/JSON exporters annotate from
/// it, and the parallel scheduler reads it off the live forest to decide
/// which seeds still need evaluation.
struct SccSummary {
  uint32_t SccId = 0;
  uint32_t CompletionOrder = 0; ///< Min member completion seq (1-based).
  uint64_t Answers = 0;         ///< Total answers across members.
  bool Incomplete = false;      ///< Any member tainted.
  std::vector<uint32_t> Members; ///< Node indices, creation order.
};

/// Groups completed nodes (SccId != 0) by SCC, ordered by completion.
/// Never-completed nodes belong to no summary.
std::vector<SccSummary> computeSccSummaries(const ForestGraph &G);

/// Renders \p G as a GraphViz digraph. Output is deterministic (edges are
/// sorted and deduplicated), labels are DOT-escaped, incomplete tables are
/// highlighted, and nodes carry their SCC/completion annotations.
std::string forestToDot(const ForestGraph &G);

/// Streams \p G as one JSON object ({"nodes": [...], "edges": [...]}) into
/// an already-positioned writer (inside an object after key(), or as an
/// array element).
void writeForestJson(const ForestGraph &G, JsonWriter &W);

/// Convenience: \p G as a standalone JSON document.
std::string forestToJson(const ForestGraph &G);

} // namespace lpa

#endif // LPA_OBS_FOREST_H
