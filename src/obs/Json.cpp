//===- Json.cpp - Minimal JSON emission --------------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cmath>
#include <cstdio>

using namespace lpa;

void JsonWriter::escape(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void JsonWriter::separate() {
  if (PendingKey) {
    PendingKey = false;
    return; // The key already emitted this element's comma.
  }
  if (HasElement.back())
    Out += ',';
  HasElement.back() = true;
}

void JsonWriter::beginObject() {
  separate();
  Out += '{';
  HasElement.push_back(false);
}

void JsonWriter::endObject() {
  HasElement.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  separate();
  Out += '[';
  HasElement.push_back(false);
}

void JsonWriter::endArray() {
  HasElement.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view K) {
  if (HasElement.back())
    Out += ',';
  HasElement.back() = true;
  Out += '"';
  escape(Out, K);
  Out += "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view V) {
  separate();
  Out += '"';
  escape(Out, V);
  Out += '"';
}

void JsonWriter::value(double V) {
  separate();
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no Inf/NaN.
    return;
  }
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

void JsonWriter::value(uint64_t V) {
  separate();
  Out += std::to_string(V);
}

void JsonWriter::value(int64_t V) {
  separate();
  Out += std::to_string(V);
}

void JsonWriter::value(bool V) {
  separate();
  Out += V ? "true" : "false";
}
