//===- Json.h - Minimal JSON emission ---------------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny streaming JSON writer used by the observability exporters (metrics
/// dumps, Chrome trace files, per-benchmark trajectory records). Emission
/// only — the library itself never parses JSON — so the writer is a
/// comma-tracking state machine over an output string, with no document
/// model. (Reading JSON back — bench trajectories, service protocol
/// requests — is support/JsonValue.h's recursive-descent document reader.)
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_JSON_H
#define LPA_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lpa {

/// Streaming JSON writer. Usage:
///
///   std::string Out;
///   JsonWriter W(Out);
///   W.beginObject();
///   W.key("name"); W.value("qsort");
///   W.key("rows"); W.beginArray(); ... W.endArray();
///   W.endObject();
///
/// The writer inserts commas and escapes strings; callers are responsible
/// for pairing begin/end and for emitting a key before each object member.
class JsonWriter {
public:
  explicit JsonWriter(std::string &Out) : Out(Out) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits the member key (inside an object) for the next value.
  void key(std::string_view K);

  void value(std::string_view V);
  void value(const char *V) { value(std::string_view(V)); }
  void value(double V);
  void value(uint64_t V);
  void value(int64_t V);
  void value(bool V);
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(unsigned V) { value(static_cast<uint64_t>(V)); }

  /// key() + value() in one call.
  template <typename T> void member(std::string_view K, T V) {
    key(K);
    value(V);
  }

  /// Appends the string escaped for inclusion in a JSON string literal.
  static void escape(std::string &Out, std::string_view S);

private:
  /// Inserts a separating comma when the current scope already holds an
  /// element, and marks the scope non-empty.
  void separate();

  std::string &Out;
  /// One entry per open scope: true once the scope has an element.
  std::vector<bool> HasElement{false};
  /// True immediately after key(): the next value is a member value and
  /// must not be comma-separated again.
  bool PendingKey = false;
};

} // namespace lpa

#endif // LPA_OBS_JSON_H
