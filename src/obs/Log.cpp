//===- Log.cpp - Structured leveled logging -----------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"

#include "obs/Json.h"

#include <chrono>
#include <string>

using namespace lpa;

const char *lpa::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug: return "debug";
  case LogLevel::Info: return "info";
  case LogLevel::Warn: return "warn";
  case LogLevel::Error: return "error";
  }
  return "unknown";
}

bool lpa::parseLogLevel(std::string_view Name, LogLevel &Out) {
  if (Name == "debug") Out = LogLevel::Debug;
  else if (Name == "info") Out = LogLevel::Info;
  else if (Name == "warn") Out = LogLevel::Warn;
  else if (Name == "error") Out = LogLevel::Error;
  else return false;
  return true;
}

void Logger::log(LogLevel L, std::string_view Msg,
                 std::initializer_list<LogField> Fields) {
  if (!enabled(L))
    return;
  uint64_t TsMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());

  std::string Line;
  JsonWriter W(Line);
  W.beginObject();
  W.member("ts_ms", TsMs);
  W.member("level", logLevelName(L));
  W.member("msg", Msg);
  for (const LogField &F : Fields) {
    W.key(F.Key);
    switch (F.K) {
    case LogField::Kind::Str: W.value(F.S); break;
    case LogField::Kind::U64: W.value(F.U); break;
    case LogField::Kind::I64: W.value(F.I); break;
    case LogField::Kind::F64: W.value(F.D); break;
    case LogField::Kind::Bool: W.value(F.B); break;
    }
  }
  W.endObject();
  Line += '\n';

  // One write per record keeps lines whole even with concurrent loggers
  // on the same stream; the mutex orders records from this Logger.
  std::lock_guard<std::mutex> G(Mu);
  std::fwrite(Line.data(), 1, Line.size(), Out);
  std::fflush(Out);
}
