//===- Log.h - Structured leveled logging -----------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured, leveled logging for the long-lived analysis service. One
/// call emits one JSON line ({"ts_ms":..,"level":"info","msg":..,...})
/// to a stdio stream, so daemon logs are machine-parseable with the same
/// JsonValue reader the rest of the tooling uses and greppable by humans.
///
/// Cost model, consistent with the tracer and sampler: a Logger with no
/// sink, or a record below the minimum level, costs one branch — callers
/// guard with enabled() when field construction itself is nontrivial.
/// Fields are typed key/values (string, integer, double, bool) passed as
/// an initializer list; nothing is formatted unless the record is kept.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_LOG_H
#define LPA_OBS_LOG_H

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string_view>

namespace lpa {

enum class LogLevel : uint8_t { Debug = 0, Info, Warn, Error };

/// Short stable mnemonic ("debug", "info", "warn", "error").
const char *logLevelName(LogLevel L);

/// Parses a mnemonic back to a level (case-sensitive); false on unknown.
bool parseLogLevel(std::string_view Name, LogLevel &Out);

/// One typed key/value attached to a log record. Keys and string values
/// are NOT copied — they must outlive the log call (string literals and
/// locals at the call site do).
struct LogField {
  enum class Kind : uint8_t { Str, U64, I64, F64, Bool };

  std::string_view Key;
  Kind K = Kind::Str;
  std::string_view S;
  uint64_t U = 0;
  int64_t I = 0;
  double D = 0;
  bool B = false;

  LogField(std::string_view Key, std::string_view V)
      : Key(Key), K(Kind::Str), S(V) {}
  LogField(std::string_view Key, const char *V)
      : Key(Key), K(Kind::Str), S(V) {}
  LogField(std::string_view Key, uint64_t V) : Key(Key), K(Kind::U64), U(V) {}
  LogField(std::string_view Key, int64_t V) : Key(Key), K(Kind::I64), I(V) {}
  LogField(std::string_view Key, int V)
      : Key(Key), K(Kind::I64), I(V) {}
  LogField(std::string_view Key, double V) : Key(Key), K(Kind::F64), D(V) {}
  LogField(std::string_view Key, bool V) : Key(Key), K(Kind::Bool), B(V) {}
};

/// JSON-lines logger over a stdio stream. The stream is borrowed, never
/// closed; pass nullptr (the default) for a disabled logger. Emission is
/// serialized by an internal mutex: the daemon's request loop and any
/// background thread may share one Logger.
class Logger {
public:
  Logger() = default;
  Logger(std::FILE *Out, LogLevel Min) : Out(Out), Min(Min) {}

  void setSink(std::FILE *F) { Out = F; }
  void setMinLevel(LogLevel L) { Min = L; }
  LogLevel minLevel() const { return Min; }

  bool enabled(LogLevel L) const { return Out && L >= Min; }

  /// Emits one record: a JSON object holding "ts_ms" (wall clock,
  /// milliseconds since the Unix epoch), "level", "msg", and the fields
  /// in order. A no-op when below the minimum level or sinkless.
  void log(LogLevel L, std::string_view Msg,
           std::initializer_list<LogField> Fields = {});

  void debug(std::string_view Msg, std::initializer_list<LogField> F = {}) {
    log(LogLevel::Debug, Msg, F);
  }
  void info(std::string_view Msg, std::initializer_list<LogField> F = {}) {
    log(LogLevel::Info, Msg, F);
  }
  void warn(std::string_view Msg, std::initializer_list<LogField> F = {}) {
    log(LogLevel::Warn, Msg, F);
  }
  void error(std::string_view Msg, std::initializer_list<LogField> F = {}) {
    log(LogLevel::Error, Msg, F);
  }

private:
  std::FILE *Out = nullptr;
  LogLevel Min = LogLevel::Info;
  std::mutex Mu;
};

} // namespace lpa

#endif // LPA_OBS_LOG_H
