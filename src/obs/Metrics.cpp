//===- Metrics.cpp - Per-predicate metrics registry ---------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"
#include "support/TableFormat.h"

#include <bit>

using namespace lpa;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void Histogram::record(uint64_t Value) {
  size_t B = Value == 0 ? 0 : static_cast<size_t>(std::bit_width(Value));
  if (B >= NumBuckets)
    B = NumBuckets - 1;
  ++Buckets[B];
  ++Count;
  Sum += Value;
  if (Value < Min)
    Min = Value;
  if (Value > Max)
    Max = Value;
}

uint64_t Histogram::quantile(double Q) const {
  // Pinned semantics (see ObsTest.HistogramQuantile*): an empty histogram
  // reports 0 for every Q; Q <= 0 is exactly the recorded minimum and
  // Q >= 1 exactly the recorded maximum; anything in between returns the
  // upper bound of the bucket holding the Q-th sample — bucket B covers
  // [2^(B-1), 2^B), so the bound is 2^B - 1 — clamped into [min, max]
  // (bucket bounds can overshoot the true extremes).
  if (!Count)
    return 0;
  if (Q <= 0)
    return min();
  if (Q >= 1)
    return Max;
  uint64_t Rank = static_cast<uint64_t>(Q * double(Count - 1)) + 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Rank) {
      uint64_t Upper =
          B == 0 ? 0 : (B >= 64 ? ~uint64_t(0) : (uint64_t(1) << B) - 1);
      if (Upper < min())
        Upper = min();
      return Upper < Max ? Upper : Max;
    }
  }
  return Max;
}

void Histogram::reset() { *this = Histogram(); }

void Histogram::mergeFrom(const Histogram &Other) {
  if (!Other.Count)
    return;
  for (size_t B = 0; B < NumBuckets; ++B)
    Buckets[B] += Other.Buckets[B];
  Count += Other.Count;
  Sum += Other.Sum;
  if (Other.Min < Min)
    Min = Other.Min;
  if (Other.Max > Max)
    Max = Other.Max;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

PredMetrics &MetricsRegistry::pred(const SymbolTable &Symbols, SymbolId Sym,
                                   uint32_t Arity) {
  uint64_t Key = (uint64_t(Sym) << 32) | Arity;
  auto [It, Inserted] = Preds.try_emplace(Key);
  if (Inserted) {
    It->second.Name = Symbols.name(Sym);
    It->second.Arity = Arity;
    Order.push_back(Key);
  }
  return It->second;
}

std::vector<const PredMetrics *> MetricsRegistry::predicates() const {
  std::vector<const PredMetrics *> Out;
  Out.reserve(Order.size());
  for (uint64_t Key : Order)
    Out.push_back(&Preds.at(Key));
  return Out;
}

void MetricsRegistry::addPhase(std::string_view Name, double Seconds) {
  for (auto &[N, S] : Phases)
    if (N == Name) {
      S += Seconds;
      return;
    }
  Phases.emplace_back(std::string(Name), Seconds);
}

void MetricsRegistry::setCounter(std::string_view Name, uint64_t Value) {
  for (auto &[N, V] : Counters)
    if (N == Name) {
      V = Value;
      return;
    }
  Counters.emplace_back(std::string(Name), Value);
}

void MetricsRegistry::noteWatermark(std::string_view Name, uint64_t Value) {
  for (auto &[N, V] : Watermarks)
    if (N == Name) {
      if (Value > V)
        V = Value;
      return;
    }
  Watermarks.emplace_back(std::string(Name), Value);
}

void MetricsRegistry::resetTableSnapshot() {
  for (auto &[Key, PM] : Preds) {
    (void)Key;
    PM.TableSubgoals = 0;
    PM.TableAnswers = 0;
    PM.TableBytes = 0;
    PM.AnswersPerSubgoal.reset();
  }
}

void MetricsRegistry::mergeFrom(const MetricsRegistry &Other) {
  // SymbolIds are private to the run that produced each registry, so the
  // only stable identity is the captured Name+Arity.
  std::unordered_map<std::string, uint64_t> ByName;
  ByName.reserve(Preds.size());
  for (uint64_t Key : Order)
    ByName.emplace(Preds.at(Key).qualifiedName(), Key);

  for (uint64_t OtherKey : Other.Order) {
    const PredMetrics &From = Other.Preds.at(OtherKey);
    uint64_t Key;
    auto It = ByName.find(From.qualifiedName());
    if (It != ByName.end()) {
      Key = It->second;
    } else {
      while (Preds.count(NextSyntheticKey))
        --NextSyntheticKey;
      Key = NextSyntheticKey--;
      PredMetrics &PM = Preds[Key];
      PM.Name = From.Name;
      PM.Arity = From.Arity;
      Order.push_back(Key);
      ByName.emplace(PM.qualifiedName(), Key);
    }
    PredMetrics &To = Preds.at(Key);
    To.Calls += From.Calls;
    To.NewSubgoals += From.NewSubgoals;
    To.NewAnswers += From.NewAnswers;
    To.DupAnswers += From.DupAnswers;
    To.Resolutions += From.Resolutions;
    To.Completions += From.Completions;
    To.WarmHits += From.WarmHits;
    To.ColdMisses += From.ColdMisses;
    To.TableSubgoals += From.TableSubgoals;
    To.TableAnswers += From.TableAnswers;
    To.TableBytes += From.TableBytes;
    To.AnswersPerSubgoal.mergeFrom(From.AnswersPerSubgoal);
  }

  for (const auto &[Name, Seconds] : Other.Phases)
    addPhase(Name, Seconds);
  // Named globals accumulate on merge (they are per-run totals; the merged
  // registry reports fleet-wide totals), unlike setCounter's overwrite.
  for (const auto &[Name, Value] : Other.Counters) {
    bool Found = false;
    for (auto &[N, V] : Counters)
      if (N == Name) {
        V += Value;
        Found = true;
        break;
      }
    if (!Found)
      Counters.emplace_back(Name, Value);
  }
  // Watermarks take the max: the merged registry reports the highest peak
  // any shard reached, not the (meaningless) sum of per-shard peaks.
  for (const auto &[Name, Value] : Other.Watermarks)
    noteWatermark(Name, Value);
}

void MetricsRegistry::clear() {
  Preds.clear();
  Order.clear();
  Phases.clear();
  Counters.clear();
  Watermarks.clear();
  NextSyntheticKey = ~uint64_t(0);
}

void MetricsRegistry::writeJson(JsonWriter &W) const {
  W.beginObject();

  W.key("phases");
  W.beginObject();
  for (const auto &[Name, Seconds] : Phases)
    W.member(Name, Seconds);
  W.endObject();

  W.key("counters");
  W.beginObject();
  for (const auto &[Name, Value] : Counters)
    W.member(Name, Value);
  W.endObject();

  W.key("watermarks");
  W.beginObject();
  for (const auto &[Name, Value] : Watermarks)
    W.member(Name, Value);
  W.endObject();

  W.key("predicates");
  W.beginArray();
  for (const PredMetrics *PM : predicates()) {
    W.beginObject();
    W.member("name", std::string_view(PM->Name));
    W.member("arity", PM->Arity);
    W.member("calls", PM->Calls);
    W.member("new_subgoals", PM->NewSubgoals);
    W.member("new_answers", PM->NewAnswers);
    W.member("dup_answers", PM->DupAnswers);
    W.member("resolutions", PM->Resolutions);
    W.member("completions", PM->Completions);
    W.member("warm_hits", PM->WarmHits);
    W.member("cold_misses", PM->ColdMisses);
    W.member("table_subgoals", PM->TableSubgoals);
    W.member("table_answers", PM->TableAnswers);
    W.member("table_bytes", PM->TableBytes);
    const Histogram &H = PM->AnswersPerSubgoal;
    if (H.count()) {
      W.key("answers_per_subgoal");
      W.beginObject();
      W.member("count", H.count());
      W.member("min", H.min());
      W.member("max", H.max());
      W.member("mean", H.mean());
      W.member("p50", H.quantile(0.5));
      W.member("p90", H.quantile(0.9));
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();

  W.endObject();
}

std::string MetricsRegistry::renderReport() const {
  std::string Out;
  auto U = [](uint64_t V) {
    return TextTable::fmt(static_cast<unsigned long long>(V));
  };

  TextTable T;
  T.addRow({"Predicate", "Calls", "Subgoals", "Answers", "Dups", "Resol",
            "Tab.SG", "Tab.Ans", "Tab(B)", "Ans p50/max"});
  for (const PredMetrics *PM : predicates()) {
    const Histogram &H = PM->AnswersPerSubgoal;
    std::string Spread =
        H.count() ? std::to_string(H.quantile(0.5)) + "/" +
                        std::to_string(H.max())
                  : "-";
    T.addRow({PM->qualifiedName(), U(PM->Calls), U(PM->NewSubgoals),
              U(PM->NewAnswers), U(PM->DupAnswers), U(PM->Resolutions),
              U(PM->TableSubgoals), U(PM->TableAnswers), U(PM->TableBytes),
              Spread});
  }
  Out += T.render();

  if (!Phases.empty()) {
    Out += "\nPhases:\n";
    for (const auto &[Name, Seconds] : Phases)
      Out += "  " + Name + ": " + TextTable::fmt(Seconds * 1e3, 3) + " ms\n";
  }
  if (!Counters.empty()) {
    Out += "Counters:\n";
    for (const auto &[Name, Value] : Counters)
      Out += "  " + Name + ": " + U(Value) + "\n";
  }
  if (!Watermarks.empty()) {
    Out += "Watermarks (peak):\n";
    for (const auto &[Name, Value] : Watermarks)
      Out += "  " + Name + ": " + U(Value) + "\n";
  }
  return Out;
}
