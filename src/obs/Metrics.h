//===- Metrics.h - Per-predicate metrics registry ---------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry behind the paper's Tables 1-4: per-predicate
/// counters (calls, subgoals, answers, duplicates, resolutions),
/// answer-count histograms, table-space accounting in bytes, phase timings,
/// and named global counters. The engine updates live counters during
/// evaluation (only when a registry is attached) and snapshots table-derived
/// figures on demand; exporters turn the registry into a TableFormat report
/// or a JSON metrics dump for bench trajectory files.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_METRICS_H
#define LPA_OBS_METRICS_H

#include "term/Symbol.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lpa {

class JsonWriter;

/// Fixed-bucket log2 histogram for small nonnegative counts and latencies.
/// Bucket I holds values in [2^(I-1), 2^I); bucket 0 holds zero. Cheap to
/// record into (a clz and an increment) and small enough to live per
/// predicate.
class Histogram {
public:
  static constexpr size_t NumBuckets = 32;

  void record(uint64_t Value);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }
  double mean() const { return Count ? double(Sum) / double(Count) : 0.0; }

  /// Approximate quantile: upper bound of the bucket holding the Q-th
  /// sample, clamped into [min(), max()]. Edge cases are pinned: an empty
  /// histogram reports 0 for every Q, Q <= 0 reports exactly min(), and
  /// Q >= 1 exactly max().
  uint64_t quantile(double Q) const;

  const uint64_t *buckets() const { return Buckets; }
  void reset();

  /// Folds \p Other into this histogram (bucket-wise sum; Min/Max widen).
  /// Exact for everything the registry reports except quantiles, which stay
  /// bucket-resolution approximations.
  void mergeFrom(const Histogram &Other);

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~uint64_t(0);
  uint64_t Max = 0;
};

/// Per-predicate counters. "Live" fields are incremented by the engine as
/// evaluation proceeds; "table snapshot" fields are (re)assigned by
/// Solver::snapshotTableMetrics from the current call/answer tables, so
/// they are idempotent across repeated snapshots.
struct PredMetrics {
  std::string Name;
  uint32_t Arity = 0;

  /// \name Live counters.
  /// @{
  uint64_t Calls = 0;       ///< Tabled calls issued to this predicate.
  uint64_t NewSubgoals = 0; ///< Subgoal variants created.
  uint64_t NewAnswers = 0;  ///< Unique answers recorded.
  uint64_t DupAnswers = 0;  ///< Answers rejected as duplicates.
  uint64_t Resolutions = 0; ///< Clause resolution attempts.
  uint64_t Completions = 0; ///< Subgoals marked complete.
  /// Tabled calls answered from a table completed by a *prior* query —
  /// the reuse a long-lived engine exists for (ROADMAP item 1). A call in
  /// the same query that created the table counts as neither warm nor
  /// cold: it is ordinary fixpoint traffic.
  uint64_t WarmHits = 0;
  uint64_t ColdMisses = 0; ///< Tabled calls that had to create the subgoal.
  /// @}

  /// \name Table snapshot (assigned, not accumulated).
  /// @{
  uint64_t TableSubgoals = 0; ///< Subgoal variants currently tabled.
  uint64_t TableAnswers = 0;  ///< Answers currently tabled.
  uint64_t TableBytes = 0;    ///< Bytes attributable to this predicate.
  Histogram AnswersPerSubgoal;
  /// @}

  std::string qualifiedName() const {
    return Name + "/" + std::to_string(Arity);
  }
};

/// Registry of per-predicate metrics plus phase timings and named global
/// counters. Predicate names are captured at first touch so the registry
/// outlives the SymbolTable that produced it (analyses build private
/// symbol tables that die with the run).
class MetricsRegistry {
public:
  /// Returns (creating on first use) the metrics slot for \p Sym / \p
  /// Arity. \p Symbols resolves the name on creation only.
  PredMetrics &pred(const SymbolTable &Symbols, SymbolId Sym, uint32_t Arity);

  /// Predicates in first-touch order.
  std::vector<const PredMetrics *> predicates() const;

  /// Accumulates \p Seconds into the named phase (creating it on first
  /// use). Phases keep registration order.
  void addPhase(std::string_view Name, double Seconds);
  const std::vector<std::pair<std::string, double>> &phases() const {
    return Phases;
  }

  /// Sets (overwrites) a named global counter, e.g. "fixpoint_rounds".
  void setCounter(std::string_view Name, uint64_t Value);
  const std::vector<std::pair<std::string, uint64_t>> &counters() const {
    return Counters;
  }

  /// Raises the named high-watermark to \p Value if it is higher (a
  /// watermark never goes down — repeated notes across runs keep the
  /// peak). Watermarks are a separate channel from counters because their
  /// merge semantics differ: mergeFrom SUMS counters (fleet-wide totals)
  /// but takes the MAX of watermarks (the peak any one shard reached).
  void noteWatermark(std::string_view Name, uint64_t Value);
  const std::vector<std::pair<std::string, uint64_t>> &watermarks() const {
    return Watermarks;
  }

  /// Zeroes the table-snapshot fields of every predicate; called by the
  /// engine before re-walking the tables so stale predicates do not keep
  /// old figures.
  void resetTableSnapshot();

  /// Folds \p Other into this registry. Sharded parallel runs give each
  /// worker a private registry (each fed by a private SymbolTable), so
  /// predicates are matched by Name+Arity — SymbolIds are NOT comparable
  /// across registries and the internal keys of \p Other are ignored.
  /// Predicates unknown here are appended in \p Other's order under fresh
  /// synthetic keys. All counters (live, snapshot, named globals) and
  /// phase timings accumulate; histograms merge bucket-wise.
  void mergeFrom(const MetricsRegistry &Other);

  /// Drops everything.
  void clear();

  bool empty() const { return Preds.empty() && Phases.empty(); }

  /// Writes the registry as one JSON object:
  ///   {"phases": {...}, "counters": {...}, "watermarks": {...},
  ///    "predicates": [...]}
  void writeJson(JsonWriter &W) const;

  /// Renders the per-predicate table and the phase/counter footer as
  /// human-readable text (support/TableFormat).
  std::string renderReport() const;

private:
  std::unordered_map<uint64_t, PredMetrics> Preds;
  std::vector<uint64_t> Order; ///< First-touch order of Preds keys.
  std::vector<std::pair<std::string, double>> Phases;
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, uint64_t>> Watermarks;
  /// Next synthetic key handed to a merged-in predicate whose SymbolId is
  /// foreign (see mergeFrom). Counts down from the top of the key space,
  /// far above any (SymbolId << 32 | Arity) a real symbol table produces.
  uint64_t NextSyntheticKey = ~uint64_t(0);
};

} // namespace lpa

#endif // LPA_OBS_METRICS_H
