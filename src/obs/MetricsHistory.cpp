//===- MetricsHistory.cpp - Time-series telemetry ring --------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsHistory.h"

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace lpa;

//===----------------------------------------------------------------------===//
// MetricsHistory
//===----------------------------------------------------------------------===//

MetricsHistory::MetricsHistory() : MetricsHistory(Options{}) {}

MetricsHistory::MetricsHistory(Options O) : Opts(O) {
  if (!Opts.Capacity)
    Opts.Capacity = 1;
  Ring.reserve(Opts.Capacity);
}

uint32_t MetricsHistory::addSeries(std::string_view Name, bool Counter) {
  if (!Ring.empty())
    clear(); // Keep rows aligned with the series list.
  Defs.push_back({std::string(Name), Counter});
  return static_cast<uint32_t>(Defs.size() - 1);
}

bool MetricsHistory::due(uint64_t NowNs) const {
  if (!Total)
    return true;
  return NowNs - LastSampleNs >= Opts.IntervalMs * 1000000ull;
}

void MetricsHistory::sample(uint64_t NowNs, std::span<const uint64_t> Values) {
  Snapshot S;
  S.TimeNs = NowNs;
  S.Values.assign(Values.begin(), Values.end());
  S.Values.resize(Defs.size()); // Short rows pad with zeros.
  LastSampleNs = NowNs;
  ++Total;
  if (Ring.size() < Opts.Capacity) {
    Ring.push_back(std::move(S));
    return;
  }
  // Keep-last ring: overwrite the oldest slot and count the eviction (the
  // FlightRecorder discipline).
  Ring[Head] = std::move(S);
  Head = (Head + 1) % Ring.size();
  ++Evicted;
}

const MetricsHistory::Snapshot &MetricsHistory::at(size_t I) const {
  return Ring[(Head + I) % Ring.size()];
}

std::vector<uint64_t> MetricsHistory::seriesValues(uint32_t Idx) const {
  std::vector<uint64_t> Out;
  Out.reserve(Ring.size());
  for (size_t I = 0; I < Ring.size(); ++I) {
    const Snapshot &S = at(I);
    Out.push_back(Idx < S.Values.size() ? S.Values[Idx] : 0);
  }
  return Out;
}

std::vector<uint64_t> MetricsHistory::seriesTrend(uint32_t Idx) const {
  std::vector<uint64_t> Vals = seriesValues(Idx);
  if (Idx >= Defs.size() || !Defs[Idx].Counter)
    return Vals;
  std::vector<uint64_t> Deltas;
  if (Vals.size() < 2)
    return Deltas;
  Deltas.reserve(Vals.size() - 1);
  for (size_t I = 1; I < Vals.size(); ++I)
    // Clamp at zero across counter resets (reset_stats mid-history).
    Deltas.push_back(Vals[I] >= Vals[I - 1] ? Vals[I] - Vals[I - 1] : 0);
  return Deltas;
}

void MetricsHistory::clear() {
  Ring.clear();
  Head = 0;
  LastSampleNs = 0;
  Evicted = 0;
  Total = 0;
}

void MetricsHistory::writeJson(JsonWriter &W, size_t MaxSamples) const {
  W.beginObject();
  W.member("interval_ms", Opts.IntervalMs);
  W.member("capacity", static_cast<uint64_t>(Opts.Capacity));
  W.member("evicted", Evicted);
  W.member("total", Total);
  W.key("series");
  W.beginArray();
  for (const Series &S : Defs)
    W.value(std::string_view(S.Name));
  W.endArray();
  W.key("kinds");
  W.beginArray();
  for (const Series &S : Defs)
    W.value(S.Counter ? "counter" : "gauge");
  W.endArray();
  W.key("samples");
  W.beginArray();
  size_t From = MaxSamples && Ring.size() > MaxSamples
                    ? Ring.size() - MaxSamples
                    : 0;
  for (size_t I = From; I < Ring.size(); ++I) {
    const Snapshot &S = at(I);
    W.beginObject();
    W.member("t_ns", S.TimeNs);
    W.key("v");
    W.beginArray();
    for (uint64_t V : S.Values)
      W.value(V);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

//===----------------------------------------------------------------------===//
// PrometheusWriter
//===----------------------------------------------------------------------===//

void PrometheusWriter::escapeHelp(std::string &Out, std::string_view S) {
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
}

void PrometheusWriter::escapeLabelValue(std::string &Out,
                                        std::string_view S) {
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
}

void PrometheusWriter::header(std::string_view Name, std::string_view Help,
                              std::string_view Type) {
  for (const std::string &S : Seen)
    if (S == Name)
      return;
  Seen.emplace_back(Name);
  Out += "# HELP ";
  Out += Name;
  Out += ' ';
  escapeHelp(Out, Help);
  Out += "\n# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

namespace {

void appendDouble(std::string &Out, double V) {
  char Buf[64];
  // %.17g round-trips; %g keeps integers clean. Values here are counts,
  // bytes and ratios — %.6g is plenty and keeps the text readable.
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

} // namespace

void PrometheusWriter::counter(std::string_view Name, std::string_view Help,
                               uint64_t V) {
  header(Name, Help, "counter");
  Out += Name;
  Out += ' ';
  Out += std::to_string(V);
  Out += '\n';
}

void PrometheusWriter::gauge(std::string_view Name, std::string_view Help,
                             double V) {
  header(Name, Help, "gauge");
  Out += Name;
  Out += ' ';
  appendDouble(Out, V);
  Out += '\n';
}

void PrometheusWriter::counterLabeled(std::string_view Name,
                                      std::string_view Help,
                                      std::string_view Label,
                                      std::string_view LabelValue,
                                      uint64_t V) {
  header(Name, Help, "counter");
  Out += Name;
  Out += '{';
  Out += Label;
  Out += "=\"";
  escapeLabelValue(Out, LabelValue);
  Out += "\"} ";
  Out += std::to_string(V);
  Out += '\n';
}

void PrometheusWriter::gaugeLabeled(std::string_view Name,
                                    std::string_view Help,
                                    std::string_view Label,
                                    std::string_view LabelValue, double V) {
  header(Name, Help, "gauge");
  Out += Name;
  Out += '{';
  Out += Label;
  Out += "=\"";
  escapeLabelValue(Out, LabelValue);
  Out += "\"} ";
  appendDouble(Out, V);
  Out += '\n';
}

void PrometheusWriter::histogramLog2(std::string_view Name,
                                     std::string_view Help,
                                     const Histogram &H) {
  header(Name, Help, "histogram");
  const uint64_t *B = H.buckets();
  size_t Last = 0;
  for (size_t I = 0; I < Histogram::NumBuckets; ++I)
    if (B[I])
      Last = I;
  uint64_t Cum = 0;
  for (size_t I = 0; I <= Last; ++I) {
    Cum += B[I];
    // Bucket I holds integer values in [2^(I-1), 2^I) (bucket 0: zero),
    // so everything up to bucket I is <= 2^I - 1.
    uint64_t Le = I ? (uint64_t(1) << I) - 1 : 0;
    Out += Name;
    Out += "_bucket{le=\"";
    Out += std::to_string(Le);
    Out += "\"} ";
    Out += std::to_string(Cum);
    Out += '\n';
  }
  Out += Name;
  Out += "_bucket{le=\"+Inf\"} ";
  Out += std::to_string(H.count());
  Out += '\n';
  Out += Name;
  Out += "_sum ";
  Out += std::to_string(H.sum());
  Out += '\n';
  Out += Name;
  Out += "_count ";
  Out += std::to_string(H.count());
  Out += '\n';
}

//===----------------------------------------------------------------------===//
// Sparklines
//===----------------------------------------------------------------------===//

std::string lpa::renderSparkline(std::span<const uint64_t> Values) {
  static const char *Blocks[] = {"▁", "▂", "▃", "▄",
                                 "▅", "▆", "▇", "█"};
  std::string Out;
  if (Values.empty())
    return Out;
  uint64_t Max = *std::max_element(Values.begin(), Values.end());
  for (uint64_t V : Values) {
    size_t Level = Max ? static_cast<size_t>((V * 7 + Max / 2) / Max) : 0;
    Out += Blocks[Level > 7 ? 7 : Level];
  }
  return Out;
}
