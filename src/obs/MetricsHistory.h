//===- MetricsHistory.h - Time-series telemetry ring ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two pieces of the daemon's continuous-telemetry story:
///
/// - MetricsHistory: a bounded keep-last ring of periodic counter/gauge
///   snapshots. The daemon samples it opportunistically (time-checked per
///   protocol request — no extra thread), so trends survive between
///   scrapes and `lpa_top --watch` can render sparkline columns from the
///   ring instead of remembering state client-side. Eviction follows the
///   FlightRecorder discipline: overwrite the oldest slot, count it.
///
/// - PrometheusWriter: renders current values in the Prometheus text
///   exposition format (# HELP / # TYPE, counter/gauge/histogram with
///   log2 `le` buckets, label-value escaping). The `metrics` protocol op
///   ships the rendered text as an escaped string field of its JSON
///   response so the one-JSON-object-per-line protocol invariant holds;
///   scrapers unwrap one field.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_METRICSHISTORY_H
#define LPA_OBS_METRICSHISTORY_H

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lpa {

class JsonWriter;
class Histogram;

/// Bounded ring of periodic metric snapshots. Series are registered once
/// (name + counter/gauge kind); every sample then carries one value per
/// series, aligned by index.
class MetricsHistory {
public:
  struct Options {
    size_t Capacity = 120;     ///< Snapshots kept (keep-last).
    uint64_t IntervalMs = 1000; ///< Minimum spacing between samples.
  };

  struct Series {
    std::string Name;
    bool Counter = true; ///< false = gauge (sparklines show raw values,
                         ///< not per-interval deltas).
  };

  struct Snapshot {
    uint64_t TimeNs = 0; ///< Steady-clock stamp (same epoch as the caller).
    std::vector<uint64_t> Values;
  };

  MetricsHistory(); ///< Default Options (out-of-line: GCC rejects a `{}`
                    ///< default argument naming the still-open class).
  explicit MetricsHistory(Options O);

  /// Registers a series; returns its value index. Must happen before the
  /// first sample (the ring is cleared otherwise to keep rows aligned).
  uint32_t addSeries(std::string_view Name, bool Counter = true);
  const std::vector<Series> &series() const { return Defs; }

  /// True when IntervalMs has elapsed since the last sample (or none was
  /// ever taken). \p NowNs is the caller's steady clock.
  bool due(uint64_t NowNs) const;

  /// Appends one snapshot (values aligned with series()); evicts the
  /// oldest when full. Also resets the due() timer.
  void sample(uint64_t NowNs, std::span<const uint64_t> Values);

  size_t size() const { return Ring.size(); }
  size_t capacity() const { return Opts.Capacity; }
  uint64_t intervalMs() const { return Opts.IntervalMs; }
  uint64_t evicted() const { return Evicted; }
  uint64_t totalSamples() const { return Total; }

  /// Snapshot \p I in time order (0 = oldest surviving).
  const Snapshot &at(size_t I) const;

  /// Values of series \p Idx, oldest to newest. For counter series the
  /// second form returns per-interval deltas (size() - 1 entries; clamped
  /// at 0 across resets); for gauges it returns the raw values unchanged.
  std::vector<uint64_t> seriesValues(uint32_t Idx) const;
  std::vector<uint64_t> seriesTrend(uint32_t Idx) const;

  void clear();

  /// {"interval_ms":..,"capacity":..,"evicted":..,"series":[names...],
  ///  "kinds":["counter"|"gauge"...],"samples":[{"t_ns":..,"v":[..]}..]}
  /// \p MaxSamples bounds the emitted tail (0 = all).
  void writeJson(JsonWriter &W, size_t MaxSamples = 0) const;

private:
  Options Opts;
  std::vector<Series> Defs;
  std::vector<Snapshot> Ring;
  size_t Head = 0; ///< Oldest slot once the ring wrapped.
  uint64_t LastSampleNs = 0;
  uint64_t Evicted = 0;
  uint64_t Total = 0;
};

/// Streaming Prometheus text-exposition writer. Each metric family gets
/// its # HELP / # TYPE header exactly once (tracked by name), so labeled
/// series can be appended one sample at a time.
class PrometheusWriter {
public:
  explicit PrometheusWriter(std::string &Out) : Out(Out) {}

  void counter(std::string_view Name, std::string_view Help, uint64_t V);
  void gauge(std::string_view Name, std::string_view Help, double V);

  /// One sample of a labeled family, e.g.
  ///   lpa_pred_calls_total{pred="path/2"} 42
  /// Help/type are emitted on the family's first sample only.
  void counterLabeled(std::string_view Name, std::string_view Help,
                      std::string_view Label, std::string_view LabelValue,
                      uint64_t V);
  void gaugeLabeled(std::string_view Name, std::string_view Help,
                    std::string_view Label, std::string_view LabelValue,
                    double V);

  /// Renders an lpa log2 Histogram (obs/Metrics.h) as a Prometheus
  /// histogram: bucket I of the source holds integer values in
  /// [2^(I-1), 2^I), so the cumulative `le` bound for bucket I is
  /// 2^I - 1 (exact for integer observations). Trailing empty buckets
  /// are elided; `+Inf`, `_sum` and `_count` always emitted.
  void histogramLog2(std::string_view Name, std::string_view Help,
                     const Histogram &H);

  /// Escapes \ and newline (HELP text).
  static void escapeHelp(std::string &Out, std::string_view S);
  /// Escapes \, " and newline (label values).
  static void escapeLabelValue(std::string &Out, std::string_view S);

private:
  /// Emits # HELP/# TYPE for \p Name once per writer.
  void header(std::string_view Name, std::string_view Help,
              std::string_view Type);

  std::string &Out;
  std::vector<std::string> Seen; ///< Families with emitted headers.
};

/// Unicode block sparkline ("▁▂▃▅▇█") of \p Values scaled to their max;
/// empty input renders empty. The lpa_top trend column.
std::string renderSparkline(std::span<const uint64_t> Values);

} // namespace lpa

#endif // LPA_OBS_METRICSHISTORY_H
