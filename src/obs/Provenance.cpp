//===- Provenance.cpp - Answer justification recording --------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Provenance.h"

#include <unordered_set>

namespace lpa {

void ProvenanceArena::record(uint32_t SubgoalIdx, uint32_t AnswerIdx,
                             uint32_t ClauseIdx,
                             std::span<const ProvPremise> Premises) {
  std::vector<Rec> &Recs = BySubgoal[SubgoalIdx];
  if (AnswerIdx >= Recs.size())
    Recs.resize(AnswerIdx + 1);
  Rec &R = Recs[AnswerIdx];
  if (R.ClauseIdx == ProvNoClause)
    ++NumSet;
  R.ClauseIdx = ClauseIdx;
  R.PremiseBegin = static_cast<uint32_t>(PremisePool.size());
  R.PremiseCount = static_cast<uint32_t>(Premises.size());
  PremisePool.insert(PremisePool.end(), Premises.begin(), Premises.end());
}

std::optional<Justification>
ProvenanceArena::find(uint32_t SubgoalIdx, uint32_t AnswerIdx) const {
  auto It = BySubgoal.find(SubgoalIdx);
  if (It == BySubgoal.end() || AnswerIdx >= It->second.size())
    return std::nullopt;
  const Rec &R = It->second[AnswerIdx];
  if (R.ClauseIdx == ProvNoClause)
    return std::nullopt;
  return Justification{R.ClauseIdx,
                       std::span<const ProvPremise>(
                           PremisePool.data() + R.PremiseBegin, R.PremiseCount)};
}

void ProvenanceArena::dropSubgoal(uint32_t SubgoalIdx) {
  auto It = BySubgoal.find(SubgoalIdx);
  if (It == BySubgoal.end())
    return;
  for (const Rec &R : It->second)
    if (R.ClauseIdx != ProvNoClause)
      --NumSet;
  BySubgoal.erase(It);
}

size_t ProvenanceArena::memoryBytes() const {
  size_t Bytes = PremisePool.capacity() * sizeof(ProvPremise);
  // Bucket + per-entry overhead estimate for the map itself.
  Bytes += BySubgoal.size() * (sizeof(void *) * 2 + sizeof(uint32_t));
  for (const auto &[SG, Recs] : BySubgoal) {
    (void)SG;
    Bytes += Recs.capacity() * sizeof(Rec);
  }
  return Bytes;
}

void ProvenanceArena::clear() {
  BySubgoal.clear();
  PremisePool.clear();
  NumSet = 0;
}

ProvenanceArena::CheckStats
ProvenanceArena::check(const std::function<bool(ProvPremise)> &PremiseOk) const {
  CheckStats Stats;
  for (const auto &[SG, Recs] : BySubgoal) {
    (void)SG;
    for (const Rec &R : Recs) {
      if (R.ClauseIdx == ProvNoClause)
        continue;
      ++Stats.Justified;
      for (uint32_t I = 0; I < R.PremiseCount; ++I) {
        ++Stats.Premises;
        if (!PremiseOk(PremisePool[R.PremiseBegin + I]))
          ++Stats.Dangling;
      }
    }
  }
  return Stats;
}

namespace {

uint64_t packNodeKey(uint32_t SubgoalIdx, uint32_t AnswerIdx) {
  return (uint64_t(SubgoalIdx) << 32) | AnswerIdx;
}

void buildProofNode(const ProvenanceArena &Arena, uint32_t SubgoalIdx,
                    uint32_t AnswerIdx, size_t Depth,
                    const ProofBuildOptions &Opts,
                    std::unordered_set<uint64_t> &OnPath, size_t &NodeBudget,
                    ProofNode &Node) {
  Node.SubgoalIdx = SubgoalIdx;
  Node.AnswerIdx = AnswerIdx;
  if (OnPath.count(packNodeKey(SubgoalIdx, AnswerIdx))) {
    Node.Cycle = true;
    return;
  }
  std::optional<Justification> J = Arena.find(SubgoalIdx, AnswerIdx);
  if (!J)
    return; // ClauseIdx stays ProvNoClause: no recorded justification.
  Node.ClauseIdx = J->ClauseIdx;
  if (J->Premises.empty())
    return;
  if (Depth >= Opts.MaxDepth || NodeBudget < J->Premises.size()) {
    Node.DepthElided = true;
    return;
  }
  size_t Width = J->Premises.size();
  if (Width > Opts.MaxPremises) {
    Node.ElidedPremises = static_cast<uint32_t>(Width - Opts.MaxPremises);
    Width = Opts.MaxPremises;
  }
  OnPath.insert(packNodeKey(SubgoalIdx, AnswerIdx));
  Node.Premises.resize(Width);
  for (size_t I = 0; I < Width; ++I) {
    --NodeBudget;
    const ProvPremise &P = J->Premises[I];
    buildProofNode(Arena, P.SubgoalIdx, P.AnswerIdx, Depth + 1, Opts, OnPath,
                   NodeBudget, Node.Premises[I]);
  }
  OnPath.erase(packNodeKey(SubgoalIdx, AnswerIdx));
}

void renderProofNode(const ProofNode &Node, const ProofLabelFn &Label,
                     const ProofLabelFn &ClauseLabel, size_t Indent,
                     std::string &Out) {
  Out.append(Indent * 2, ' ');
  Out += Label(Node);
  if (Node.ClauseIdx == ProvFoldedClause) {
    Out += "  [folded: aggregation/widening dropped premise derivations]";
  } else if (Node.ClauseIdx != ProvNoClause) {
    Out += "  [";
    Out += ClauseLabel ? ClauseLabel(Node)
                       : ("clause " + std::to_string(Node.ClauseIdx + 1));
    Out += "]";
  } else if (!Node.Cycle) {
    Out += "  [no recorded justification]";
  }
  if (Node.Cycle)
    Out += "  [cycle back-edge]";
  if (Node.DepthElided)
    Out += "  [subtree elided: depth/node limit]";
  Out += "\n";
  for (const ProofNode &Child : Node.Premises)
    renderProofNode(Child, Label, ClauseLabel, Indent + 1, Out);
  if (Node.ElidedPremises) {
    Out.append((Indent + 1) * 2, ' ');
    Out += "... [" + std::to_string(Node.ElidedPremises) +
           " more premises elided]\n";
  }
}

} // namespace

ProofNode buildProofTree(const ProvenanceArena &Arena, uint32_t SubgoalIdx,
                         uint32_t AnswerIdx, const ProofBuildOptions &Opts) {
  ProofNode Root;
  std::unordered_set<uint64_t> OnPath;
  size_t NodeBudget = Opts.MaxNodes;
  buildProofNode(Arena, SubgoalIdx, AnswerIdx, 0, Opts, OnPath, NodeBudget,
                 Root);
  return Root;
}

std::string renderProofTree(const ProofNode &Root, const ProofLabelFn &Label,
                            const ProofLabelFn &ClauseLabel) {
  std::string Out;
  renderProofNode(Root, Label, ClauseLabel, 0, Out);
  return Out;
}

} // namespace lpa
