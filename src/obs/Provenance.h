//===- Provenance.h - Answer justification recording ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Answer provenance: for every unique tabled answer, which clause produced
/// it and which premise answers its derivation consumed. XSB grew exactly
/// this facility (the justifier) over its memo tables; here it closes the
/// explainability gap of the observability layer — the engine can say not
/// just *what* it derived but *why*.
///
/// The arena is engine-agnostic: subgoals and answers are plain indices
/// into the engine's creation-order tables, and clause indices are whatever
/// the producer counts. The engine attaches meaning (and labels) when it
/// walks a justification into a proof tree. Like the tracer, the disabled
/// path costs one null-pointer test per hook: an engine that does not
/// record provenance never touches this code.
///
/// Well-foundedness: a premise answer is always recorded (strictly) before
/// the answer it justifies, so the justification graph is acyclic for
/// plain tabling. Aggregated answers (answer joins) and widened answer
/// sets overwrite in place and may self-reference; the proof-tree walker
/// carries an on-path guard and marks such back-edges instead of looping.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_PROVENANCE_H
#define LPA_OBS_PROVENANCE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace lpa {

/// One premise of a justification: answer \p AnswerIdx of the subgoal with
/// creation-order index \p SubgoalIdx.
struct ProvPremise {
  uint32_t SubgoalIdx = 0;
  uint32_t AnswerIdx = 0;

  friend bool operator==(const ProvPremise &A, const ProvPremise &B) {
    return A.SubgoalIdx == B.SubgoalIdx && A.AnswerIdx == B.AnswerIdx;
  }
};

/// Sentinel clause index: no justification was recorded for the answer.
constexpr uint32_t ProvNoClause = 0xFFFFFFFFu;
/// Sentinel clause index: the answer was rebuilt by an aggregation join or
/// an answer-set widening, which folds previously recorded answers into one
/// and drops their individual derivations.
constexpr uint32_t ProvFoldedClause = 0xFFFFFFFEu;

/// Read-only view of one recorded justification. The premise span points
/// into the arena and stays valid until the arena is cleared.
struct Justification {
  uint32_t ClauseIdx = ProvNoClause;
  std::span<const ProvPremise> Premises;
};

/// Justification storage keyed by (subgoal index, answer index). Premise
/// lists are packed into one pool vector; per-answer records carry
/// (offset, count) into it. Re-recording an answer (aggregation joins
/// replace answer 0 in place) overwrites the record and leaks the old
/// premise range in the pool — the slack is counted by memoryBytes() and
/// is bounded by the number of join steps.
class ProvenanceArena {
public:
  /// Records (or overwrites) the justification of answer \p AnswerIdx of
  /// subgoal \p SubgoalIdx.
  void record(uint32_t SubgoalIdx, uint32_t AnswerIdx, uint32_t ClauseIdx,
              std::span<const ProvPremise> Premises);

  /// \returns the justification of the answer, or nullopt when none was
  /// recorded.
  std::optional<Justification> find(uint32_t SubgoalIdx,
                                    uint32_t AnswerIdx) const;

  /// Drops every record of \p SubgoalIdx (answer-set widening invalidates
  /// the indices its premises point at). Pool ranges leak until clear().
  void dropSubgoal(uint32_t SubgoalIdx);

  /// Number of answers currently holding a justification.
  size_t justificationCount() const { return NumSet; }

  size_t memoryBytes() const;
  void clear();

  /// Result of a whole-arena validity sweep.
  struct CheckStats {
    uint64_t Justified = 0; ///< Answers with a recorded justification.
    uint64_t Premises = 0;  ///< Total premises across them.
    uint64_t Dangling = 0;  ///< Premises \p PremiseOk rejected (0 = valid).
  };

  /// Sweeps every recorded justification, asking \p PremiseOk whether each
  /// premise still resolves to a live tabled answer. The engine supplies
  /// the bound check; a nonzero Dangling count means the arena disagrees
  /// with the answer tables.
  CheckStats check(const std::function<bool(ProvPremise)> &PremiseOk) const;

private:
  struct Rec {
    uint32_t ClauseIdx = ProvNoClause;
    uint32_t PremiseBegin = 0;
    uint32_t PremiseCount = 0;
  };

  /// Subgoal index -> per-answer records (vector slot = answer index;
  /// unset slots keep ClauseIdx == ProvNoClause).
  std::unordered_map<uint32_t, std::vector<Rec>> BySubgoal;
  std::vector<ProvPremise> PremisePool;
  size_t NumSet = 0;
};

/// One node of a reconstructed proof tree.
struct ProofNode {
  uint32_t SubgoalIdx = 0;
  uint32_t AnswerIdx = 0;
  /// Producing clause, or ProvNoClause / ProvFoldedClause.
  uint32_t ClauseIdx = ProvNoClause;
  /// Back-edge: this (subgoal, answer) is already on the path from the
  /// root (possible under aggregation joins); children are not expanded.
  bool Cycle = false;
  /// The depth or node budget cut this subtree off; children elided.
  bool DepthElided = false;
  /// Premises beyond the width bound, not expanded into children.
  uint32_t ElidedPremises = 0;
  std::vector<ProofNode> Premises;
};

/// Bounds for proof-tree reconstruction. Elision is explicit: cut points
/// are marked on the node (and rendered), never silently dropped.
struct ProofBuildOptions {
  size_t MaxDepth = 12;    ///< Levels below the root before eliding.
  size_t MaxPremises = 12; ///< Children rendered per node.
  size_t MaxNodes = 2048;  ///< Total node budget for the whole tree.
};

/// Reconstructs the proof tree of answer \p AnswerIdx of \p SubgoalIdx
/// from the recorded justifications. Cycle-safe (on-path guard) and
/// bounded per \p Opts.
ProofNode buildProofTree(const ProvenanceArena &Arena, uint32_t SubgoalIdx,
                         uint32_t AnswerIdx,
                         const ProofBuildOptions &Opts = {});

/// Produces the text for one proof node: typically the rendered answer
/// instance (engine supplies TermWriter output).
using ProofLabelFn = std::function<std::string(const ProofNode &)>;

/// Renders \p Root as an indented tree, one node per line:
///
///   gp_app(true,true,true)  [clause 2]
///     gp_app(true,true,true)  [clause 1]
///     ... (3 more premises elided)
///
/// \p Label supplies each node's answer text; \p ClauseLabel (optional)
/// overrides the bracketed clause annotation — analyzers use it to map
/// abstract clause indices back to source clauses. Sentinel clause indices
/// and elision/cycle cut points render as explicit bracketed markers, so
/// the output is bracket-balanced whenever the labels are.
std::string renderProofTree(const ProofNode &Root, const ProofLabelFn &Label,
                            const ProofLabelFn &ClauseLabel = nullptr);

} // namespace lpa

#endif // LPA_OBS_PROVENANCE_H
