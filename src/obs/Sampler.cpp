//===- Sampler.cpp - Wall-clock sampling profiler -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Sampler.h"

#include "obs/Json.h"

#include <algorithm>
#include <chrono>

using namespace lpa;

const char *lpa::evalPhaseName(EvalPhase P) {
  switch (P) {
  case EvalPhase::Idle: return "idle";
  case EvalPhase::Resolve: return "resolve";
  case EvalPhase::Answer: return "answer";
  case EvalPhase::Complete: return "complete";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// EvalCursor
//===----------------------------------------------------------------------===//

bool EvalCursor::read(Snapshot &Out, int MaxRetries) const {
  for (int R = 0; R < MaxRetries; ++R) {
    uint32_t S1 = Seq.load(std::memory_order_acquire);
    if (S1 & 1)
      continue; // Mid-write; retry.
    Out.Phase = static_cast<EvalPhase>(PhaseSlot.load(std::memory_order_relaxed));
    uint32_t D = DepthSlot.load(std::memory_order_relaxed);
    Out.Depth = D;
    size_t N = D < MaxFrames ? D : MaxFrames;
    for (size_t I = 0; I < N; ++I)
      Out.Frames[I] = Frames[I].load(std::memory_order_relaxed);
    Out.TableBytes = GTableBytes.load(std::memory_order_relaxed);
    Out.Answers = GAnswers.load(std::memory_order_relaxed);
    Out.Subgoals = GSubgoals.load(std::memory_order_relaxed);
    Out.QueryId = QuerySlot.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (Seq.load(std::memory_order_relaxed) == S1)
      return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// SampleProfile
//===----------------------------------------------------------------------===//

std::string lpa::sampleFrameName(uint64_t Packed, const SymbolTable *Symbols) {
  SymbolId Sym = static_cast<SymbolId>(Packed >> 32);
  uint32_t Arity = static_cast<uint32_t>(Packed & 0xffffffffu);
  std::string Out;
  if (Symbols && Sym < Symbols->size())
    Out = Symbols->name(Sym);
  else
    Out = "#" + std::to_string(Sym);
  Out += '/';
  Out += std::to_string(Arity);
  return Out;
}

uint32_t SampleProfile::addLane(std::string_view Label) {
  for (size_t I = 0; I < Lanes.size(); ++I)
    if (Lanes[I].Label == Label)
      return static_cast<uint32_t>(I);
  Lanes.push_back({std::string(Label), 0, 0, 0, 0, 0});
  return static_cast<uint32_t>(Lanes.size() - 1);
}

std::string SampleProfile::stackKey(uint32_t LaneIdx,
                                    const EvalCursor::Snapshot &S) const {
  // Lane + query + phase + the raw frame words; frames of distinct
  // predicates never collide because the packed word is the identity.
  std::string Key;
  size_t N = S.frameCount();
  Key.reserve(24 + N * sizeof(uint64_t));
  Key.append(reinterpret_cast<const char *>(&LaneIdx), sizeof(LaneIdx));
  Key.append(reinterpret_cast<const char *>(&S.QueryId), sizeof(S.QueryId));
  Key.push_back(static_cast<char>(S.Depth > 0 ? S.Phase : EvalPhase::Idle));
  for (size_t I = 0; I < N; ++I)
    Key.append(reinterpret_cast<const char *>(&S.Frames[I]),
               sizeof(uint64_t));
  return Key;
}

void SampleProfile::recordSample(uint32_t LaneIdx,
                                 const EvalCursor::Snapshot &S) {
  ++TotalSamples;
  Lane &L = Lanes.at(LaneIdx);
  ++L.Samples;
  L.MaxTableBytes = std::max(L.MaxTableBytes, S.TableBytes);
  L.MaxAnswers = std::max(L.MaxAnswers, S.Answers);
  L.MaxSubgoals = std::max(L.MaxSubgoals, S.Subgoals);
  if (S.Depth == 0)
    ++IdleSamples;

  std::string Key = stackKey(LaneIdx, S);
  auto [It, Inserted] = StackIndex.try_emplace(Key, Stacks.size());
  if (Inserted) {
    Stack St;
    St.Lane = LaneIdx;
    St.Frames.assign(S.Frames, S.Frames + S.frameCount());
    St.Phase = S.Depth > 0 ? S.Phase : EvalPhase::Idle;
    St.QueryId = S.QueryId;
    Stacks.push_back(std::move(St));
  }
  Stack &St = Stacks[It->second];
  ++St.Count;
  St.MaxDepth = std::max(St.MaxDepth, S.Depth);
}

void SampleProfile::recordTorn(uint32_t LaneIdx) {
  ++TornSamples;
  ++Lanes.at(LaneIdx).Torn;
}

std::vector<const SampleProfile::Stack *> SampleProfile::sortedStacks() const {
  std::vector<const Stack *> Out;
  Out.reserve(Stacks.size());
  for (const Stack &S : Stacks)
    Out.push_back(&S);
  std::sort(Out.begin(), Out.end(), [](const Stack *A, const Stack *B) {
    if (A->Count != B->Count)
      return A->Count > B->Count;
    if (A->Lane != B->Lane)
      return A->Lane < B->Lane;
    if (A->Frames != B->Frames)
      return A->Frames < B->Frames;
    return A->Phase < B->Phase;
  });
  return Out;
}

void SampleProfile::mergeFrom(const SampleProfile &Other) {
  // Lane indices are profile-private; labels are the stable identity
  // (mirroring MetricsRegistry::mergeFrom's Name+Arity matching).
  std::vector<uint32_t> LaneMap(Other.Lanes.size());
  for (size_t I = 0; I < Other.Lanes.size(); ++I) {
    const Lane &From = Other.Lanes[I];
    uint32_t To = addLane(From.Label);
    LaneMap[I] = To;
    Lane &L = Lanes[To];
    L.Samples += From.Samples;
    L.Torn += From.Torn;
    L.MaxTableBytes = std::max(L.MaxTableBytes, From.MaxTableBytes);
    L.MaxAnswers = std::max(L.MaxAnswers, From.MaxAnswers);
    L.MaxSubgoals = std::max(L.MaxSubgoals, From.MaxSubgoals);
  }
  for (const Stack &From : Other.Stacks) {
    EvalCursor::Snapshot S;
    S.Phase = From.Phase;
    S.Depth = From.MaxDepth;
    S.QueryId = From.QueryId;
    size_t N = std::min(From.Frames.size(), EvalCursor::MaxFrames);
    std::copy_n(From.Frames.begin(), N, S.Frames);
    std::string Key = stackKey(LaneMap[From.Lane], S);
    auto [It, Inserted] = StackIndex.try_emplace(Key, Stacks.size());
    if (Inserted) {
      Stack St = From;
      St.Lane = LaneMap[From.Lane];
      Stacks.push_back(std::move(St));
    } else {
      Stack &St = Stacks[It->second];
      St.Count += From.Count;
      St.MaxDepth = std::max(St.MaxDepth, From.MaxDepth);
    }
  }
  TotalSamples += Other.TotalSamples;
  IdleSamples += Other.IdleSamples;
  TornSamples += Other.TornSamples;
}

void SampleProfile::clear() { *this = SampleProfile(); }

std::string SampleProfile::formatFolded(const SymbolTable *Symbols) const {
  std::string Out;
  for (const Stack *S : sortedStacks()) {
    Out += Lanes[S->Lane].Label;
    if (S->QueryId) { // Query-scoped samples carry their own fold segment.
      Out += ";q";
      Out += std::to_string(S->QueryId);
    }
    for (uint64_t F : S->Frames) {
      Out += ';';
      Out += sampleFrameName(F, Symbols);
    }
    if (S->MaxDepth > S->Frames.size())
      Out += ";..."; // Frame window truncated a deeper stack.
    Out += ";[";
    Out += evalPhaseName(S->Phase);
    Out += "] ";
    Out += std::to_string(S->Count);
    Out += '\n';
  }
  return Out;
}

void SampleProfile::writeJson(JsonWriter &W, const SymbolTable *Symbols,
                              size_t TopN) const {
  W.beginObject();
  W.member("total_samples", TotalSamples);
  W.member("idle_samples", IdleSamples);
  W.member("torn_samples", TornSamples);

  W.key("lanes");
  W.beginArray();
  for (const Lane &L : Lanes) {
    W.beginObject();
    W.member("label", std::string_view(L.Label));
    W.member("samples", L.Samples);
    W.member("torn", L.Torn);
    W.member("max_table_bytes", L.MaxTableBytes);
    W.member("max_answers", L.MaxAnswers);
    W.member("max_subgoals", L.MaxSubgoals);
    W.endObject();
  }
  W.endArray();

  W.key("stacks");
  W.beginArray();
  std::vector<const Stack *> Sorted = sortedStacks();
  size_t N = TopN && TopN < Sorted.size() ? TopN : Sorted.size();
  for (size_t I = 0; I < N; ++I) {
    const Stack *S = Sorted[I];
    W.beginObject();
    W.member("lane", std::string_view(Lanes[S->Lane].Label));
    W.key("frames");
    W.beginArray();
    for (uint64_t F : S->Frames)
      W.value(std::string_view(sampleFrameName(F, Symbols)));
    W.endArray();
    W.member("phase", evalPhaseName(S->Phase));
    W.member("count", S->Count);
    W.member("max_depth", static_cast<uint64_t>(S->MaxDepth));
    if (S->QueryId)
      W.member("query", S->QueryId);
    W.endObject();
  }
  W.endArray();

  W.endObject();
}

//===----------------------------------------------------------------------===//
// Sampler
//===----------------------------------------------------------------------===//

Sampler::Sampler(Options O) : Opts(O) {
  if (Opts.Hz < 1)
    Opts.Hz = 1;
  if (Opts.Hz > 100000)
    Opts.Hz = 100000;
  if (!Opts.BoostHz)
    Opts.BoostHz = Opts.Hz * 8;
  if (Opts.BoostHz < Opts.Hz)
    Opts.BoostHz = Opts.Hz;
  if (Opts.BoostHz > 100000)
    Opts.BoostHz = 100000;
  EffHz.store(Opts.Hz, std::memory_order_relaxed);
}

Sampler::~Sampler() { stop(); }

void Sampler::addLane(std::string_view Label, const EvalCursor *Cursor) {
  LaneRefs.push_back({Cursor, Profile.addLane(Label)});
}

void Sampler::start() {
  if (Thread.joinable())
    return;
  StopRequested = false;
  Thread = std::thread([this] { run(); });
}

void Sampler::stop() {
  if (!Thread.joinable())
    return;
  {
    std::lock_guard<std::mutex> L(Mu);
    StopRequested = true;
  }
  Cv.notify_all();
  Thread.join();
}

void Sampler::run() {
  using Clock = std::chrono::steady_clock;
  auto Period = std::chrono::nanoseconds(1000000000ull / Opts.Hz);
  auto Next = Clock::now() + Period;
  std::unique_lock<std::mutex> L(Mu);
  while (!Cv.wait_until(L, Next, [this] { return StopRequested; })) {
    // The engine never touches Profile and lanes are frozen while running,
    // so sampling needs no synchronization beyond the cursor protocol.
    L.unlock();
    for (const LaneRef &LR : LaneRefs) {
      EvalCursor::Snapshot S;
      if (LR.Cursor->read(S))
        Profile.recordSample(LR.LaneIdx, S);
      else
        Profile.recordTorn(LR.LaneIdx);
    }
    // Adaptive rate: once the armed alarm counter advances past its
    // baseline (the flight recorder logged a deadline/taint event for the
    // in-flight query), the remaining sweeps of that query run boosted.
    uint32_t Hz = Opts.Hz;
    if (AlarmSource && BoostArmed.load(std::memory_order_relaxed) &&
        AlarmSource->load(std::memory_order_relaxed) >
            BoostBaseline.load(std::memory_order_relaxed)) {
      Hz = Opts.BoostHz;
      BoostedSweeps.fetch_add(1, std::memory_order_relaxed);
    }
    EffHz.store(Hz, std::memory_order_relaxed);
    Period = std::chrono::nanoseconds(1000000000ull / Hz);
    auto Now = Clock::now();
    Next += Period;
    if (Next < Now) // Fell behind (suspended/overloaded): resynchronize.
      Next = Now + Period;
    L.lock();
  }
}
