//===- Sampler.h - Wall-clock sampling profiler -----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead wall-clock sampling profiler for the SLG engine. The
/// event tracer (Trace.h) answers "what happened" but costs one sink call
/// per engine transition — too much to leave on. This profiler inverts the
/// cost: the engine *publishes* its position (the producer-call stack, the
/// evaluation phase, and cheap table gauges) into an EvalCursor — a
/// seqlock-style slot of a few relaxed atomic stores per update — and a
/// background Sampler thread *reads* the slot at a configurable rate
/// (default ~1 kHz), aggregating what it sees into collapsed call-path
/// stacks keyed by predicate. Evaluation never blocks and never allocates
/// on behalf of the profiler.
///
/// Cost model, mirroring the tracer's: the engine holds a *pointer* to the
/// cursor that is null by default, so the fully-disabled path is one null
/// test per hook (pinned by the BM_CursorPublish A/B micro). When attached,
/// a publish is a handful of relaxed atomic stores — no locks, no CAS.
///
/// Concurrency (the TSan story, DESIGN.md §12): every payload field of the
/// cursor is a std::atomic written with relaxed ordering, so the racing
/// sampler read is *not* a data race under the C++ memory model — there is
/// nothing for TSan to flag. The sequence counter only provides
/// *cross-field consistency*: the writer brackets payload stores with
/// seq+1 (odd) / seq+2 (even) around release fences, the reader rereads
/// until it observes one even value on both sides of its payload loads
/// (acquire fence in between), and gives up as "torn" after a bounded
/// number of retries rather than spinning against a busy writer.
///
/// Exports: folded-stack text ("lane;pred/2;inner/3;[phase] COUNT" — feed
/// straight to flamegraph.pl or speedscope) and a JSON profile block for
/// the bench trajectory files. Predicate names resolve through an optional
/// SymbolTable and fall back to "#sym/arity" (same convention as the
/// Chrome-trace stitcher) when the producing run's table is gone.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_SAMPLER_H
#define LPA_OBS_SAMPLER_H

#include "term/Symbol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lpa {

class JsonWriter;

/// What the engine is doing at the sampled instant. Coarse by design: the
/// three SLG activities the paper's cost model distinguishes, plus idle.
enum class EvalPhase : uint8_t {
  Idle = 0, ///< No producer active (between queries, or off-engine work).
  Resolve,  ///< Program-clause resolution inside a producer.
  Answer,   ///< Returning recorded answers to a consumer.
  Complete, ///< SCC completion: marking tables complete, freeing frontiers.
};

/// Short stable mnemonic ("idle", "resolve", "answer", "complete").
const char *evalPhaseName(EvalPhase P);

/// The seqlock-style slot one Solver publishes its position through.
/// Single writer (the engine thread that owns the solver), any number of
/// readers (in practice one Sampler). See the file comment for the memory
/// model; the short version is that payload fields are relaxed atomics (so
/// the race is benign and TSan-clean) and the Seq counter detects torn
/// cross-field snapshots.
class EvalCursor {
public:
  /// Producer frames kept verbatim; deeper stacks publish their depth but
  /// truncate the frame window (the folded export marks the elision).
  static constexpr size_t MaxFrames = 32;

  /// \name Writer side — engine thread only.
  /// @{

  /// Pushes one producer frame (a subgoal's predicate) and flips the phase
  /// to Resolve (frames only exist while producers run).
  void pushFrame(SymbolId Sym, uint32_t Arity) {
    beginWrite();
    if (WDepth < MaxFrames)
      Frames[WDepth].store((uint64_t(Sym) << 32) | Arity,
                           std::memory_order_relaxed);
    DepthSlot.store(++WDepth, std::memory_order_relaxed);
    PhaseSlot.store(uint8_t(EvalPhase::Resolve), std::memory_order_relaxed);
    endWrite();
  }

  void popFrame() {
    beginWrite();
    if (WDepth)
      --WDepth;
    DepthSlot.store(WDepth, std::memory_order_relaxed);
    endWrite();
  }

  void setPhase(EvalPhase P) {
    beginWrite();
    PhaseSlot.store(uint8_t(P), std::memory_order_relaxed);
    endWrite();
  }

  /// Publishes the query id the engine is currently serving (0 = none).
  /// Sampled stacks then fold per query, which is what lets a long-lived
  /// service attribute profile cost to individual client requests.
  void setQueryId(uint64_t Q) {
    beginWrite();
    QuerySlot.store(Q, std::memory_order_relaxed);
    endWrite();
  }

  /// Publishes the cheap table gauges (term-store bytes, answers recorded,
  /// subgoals created). The sampler keeps per-lane maxima of these, so the
  /// profile carries table-space watermarks as seen from outside.
  void setGauges(uint64_t TableBytes, uint64_t Answers, uint64_t Subgoals) {
    beginWrite();
    GTableBytes.store(TableBytes, std::memory_order_relaxed);
    GAnswers.store(Answers, std::memory_order_relaxed);
    GSubgoals.store(Subgoals, std::memory_order_relaxed);
    endWrite();
  }

  /// @}

  /// One consistent cursor observation.
  struct Snapshot {
    EvalPhase Phase = EvalPhase::Idle;
    uint32_t Depth = 0; ///< Logical producer depth (may exceed MaxFrames).
    uint64_t Frames[MaxFrames] = {}; ///< Packed sym<<32|arity, outermost first.
    uint64_t TableBytes = 0;
    uint64_t Answers = 0;
    uint64_t Subgoals = 0;
    uint64_t QueryId = 0; ///< Query being served at the instant (0 = none).

    size_t frameCount() const {
      return Depth < MaxFrames ? Depth : MaxFrames;
    }
  };

  /// Reader side: fills \p Out with a cross-field-consistent snapshot.
  /// \returns false ("torn") when \p MaxRetries attempts all raced a
  /// writer — the sampler then counts the miss instead of spinning.
  bool read(Snapshot &Out, int MaxRetries = 8) const;

private:
  void beginWrite() {
    Seq.store(WSeq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  void endWrite() {
    WSeq += 2;
    Seq.store(WSeq, std::memory_order_release);
  }

  std::atomic<uint32_t> Seq{0};
  std::atomic<uint8_t> PhaseSlot{uint8_t(EvalPhase::Idle)};
  std::atomic<uint32_t> DepthSlot{0};
  std::atomic<uint64_t> Frames[MaxFrames] = {};
  std::atomic<uint64_t> GTableBytes{0};
  std::atomic<uint64_t> GAnswers{0};
  std::atomic<uint64_t> GSubgoals{0};
  std::atomic<uint64_t> QuerySlot{0};
  /// Writer-private mirrors (single writer; saves the read-back).
  uint32_t WSeq = 0;
  uint32_t WDepth = 0;
};

/// Renders one packed sym<<32|arity frame as "name/arity", falling back to
/// "#sym/arity" when \p Symbols is null or the id is out of range.
std::string sampleFrameName(uint64_t Packed, const SymbolTable *Symbols);

/// Aggregated samples: one counter per distinct (lane, frame path, phase).
class SampleProfile {
public:
  struct Stack {
    uint32_t Lane = 0;
    std::vector<uint64_t> Frames; ///< Packed frames, outermost first.
    EvalPhase Phase = EvalPhase::Idle;
    uint64_t Count = 0;
    /// Deepest logical depth folded into this stack; > Frames.size() means
    /// the cursor's frame window truncated an even deeper stack.
    uint32_t MaxDepth = 0;
    /// Query the samples belonged to (EvalCursor::setQueryId); 0 = none.
    /// Part of the fold key, so a service's per-query stacks stay apart;
    /// batch runs never set it and see the historical single-key folding.
    uint64_t QueryId = 0;
  };

  /// Per-lane totals plus gauge maxima observed across the run — the
  /// sampled view of the table-space watermarks.
  struct Lane {
    std::string Label;
    uint64_t Samples = 0;
    uint64_t Torn = 0;
    uint64_t MaxTableBytes = 0;
    uint64_t MaxAnswers = 0;
    uint64_t MaxSubgoals = 0;
  };

  /// Registers (or finds) the lane named \p Label. Lane indices are dense.
  uint32_t addLane(std::string_view Label);

  /// Folds one snapshot into the aggregate. Depth 0 normalizes to the
  /// [idle] pseudo-stack regardless of the stale phase slot.
  void recordSample(uint32_t LaneIdx, const EvalCursor::Snapshot &S);
  /// Counts a read() that gave up against a busy writer.
  void recordTorn(uint32_t LaneIdx);

  uint64_t totalSamples() const { return TotalSamples; }
  uint64_t idleSamples() const { return IdleSamples; }
  uint64_t tornSamples() const { return TornSamples; }
  bool empty() const { return TotalSamples == 0 && TornSamples == 0; }

  const std::vector<Lane> &lanes() const { return Lanes; }

  /// Stacks sorted by count (desc), then lane, then path — deterministic
  /// for a given multiset of samples.
  std::vector<const Stack *> sortedStacks() const;

  /// Folds \p Other into this profile: lanes matched by label, stacks by
  /// (lane, path, phase); counts sum, gauge maxima widen.
  void mergeFrom(const SampleProfile &Other);

  void clear();

  /// Collapsed-stack text, one line per distinct path:
  ///   lane;outer/2;inner/3;[resolve] 42
  /// The bracketed leaf is the phase; "..." appears before the phase when
  /// the cursor's frame window truncated a deeper stack. Feed to
  /// flamegraph.pl / speedscope as-is. Lines are emitted in sortedStacks()
  /// order. \p Symbols may be null (see sampleFrameName).
  std::string formatFolded(const SymbolTable *Symbols) const;

  /// Emits one JSON object: totals, per-lane gauge maxima, and the top
  /// \p TopN stacks (0 = all) with resolved frame names.
  void writeJson(JsonWriter &W, const SymbolTable *Symbols,
                 size_t TopN = 0) const;

private:
  std::string stackKey(uint32_t LaneIdx, const EvalCursor::Snapshot &S) const;

  std::vector<Lane> Lanes;
  std::vector<Stack> Stacks;
  std::unordered_map<std::string, size_t> StackIndex;
  uint64_t TotalSamples = 0;
  uint64_t IdleSamples = 0;
  uint64_t TornSamples = 0;
};

/// The background sampling thread. Register lanes (label + cursor) while
/// stopped, start(), run the workload, stop(), then read profile().
/// One Sampler can watch many cursors — the parallel fleet registers one
/// lane per worker and gets per-tid-style lanes in the folded output.
class Sampler {
public:
  struct Options {
    /// Sweep rate in samples per second per lane. Clamped to [1, 100000].
    uint32_t Hz = 1000;
    /// Boosted sweep rate used while the watched alarm counter (see
    /// setAlarmSource) has advanced past the armed baseline — i.e. the
    /// flight recorder saw a deadline-at-risk or incomplete-taint event in
    /// the query being served. 0 = auto (8x Hz, clamped to 100000).
    uint32_t BoostHz = 0;
  };

  Sampler() : Sampler(Options{1000, 0}) {}
  explicit Sampler(Options O);
  ~Sampler(); ///< Stops the thread if still running.

  Sampler(const Sampler &) = delete;
  Sampler &operator=(const Sampler &) = delete;

  /// Registers \p Cursor under \p Label. Must be called while stopped; the
  /// cursor must outlive the sampler's running interval.
  void addLane(std::string_view Label, const EvalCursor *Cursor);

  void start();
  /// Joins the thread; idempotent. profile() is stable once stopped.
  void stop();
  bool running() const { return Thread.joinable(); }

  uint32_t hz() const { return Opts.Hz; }
  uint32_t boostHz() const { return Opts.BoostHz; }
  const SampleProfile &profile() const { return Profile; }
  SampleProfile takeProfile() { return std::move(Profile); }

  /// \name Recorder-driven adaptive sampling.
  /// The daemon points the sampler at the flight recorder's alarm counter
  /// (FlightRecorder::alarmCounter) and arms a baseline at query start;
  /// once the recorder logs a deadline-at-risk or incomplete-taint event
  /// the counter passes the baseline and every subsequent sweep of this
  /// query runs at BoostHz — denser stacks exactly where the post-mortem
  /// will want them. All state is atomic: the session thread arms/disarms
  /// while the sampler thread polls.
  /// @{

  /// Watches \p Counter (may be null to detach). Call while stopped.
  void setAlarmSource(const std::atomic<uint64_t> *Counter) {
    AlarmSource = Counter;
  }

  /// Arms the boost trigger: sweeps run at BoostHz while the watched
  /// counter exceeds \p Baseline.
  void armBoostBaseline(uint64_t Baseline) {
    BoostBaseline.store(Baseline, std::memory_order_relaxed);
    BoostArmed.store(true, std::memory_order_relaxed);
  }
  void disarmBoost() { BoostArmed.store(false, std::memory_order_relaxed); }

  /// Sweep rate of the most recent sweep (Hz or BoostHz).
  uint32_t effectiveHz() const {
    return EffHz.load(std::memory_order_relaxed);
  }
  /// Sweeps that ran boosted since construction.
  uint64_t boostedSweeps() const {
    return BoostedSweeps.load(std::memory_order_relaxed);
  }

  /// @}

private:
  void run();

  Options Opts;
  struct LaneRef {
    const EvalCursor *Cursor;
    uint32_t LaneIdx;
  };
  std::vector<LaneRef> LaneRefs;
  SampleProfile Profile;
  const std::atomic<uint64_t> *AlarmSource = nullptr;
  std::atomic<uint64_t> BoostBaseline{0};
  std::atomic<bool> BoostArmed{false};
  std::atomic<uint32_t> EffHz{0};
  std::atomic<uint64_t> BoostedSweeps{0};
  std::thread Thread;
  std::mutex Mu;
  std::condition_variable Cv;
  bool StopRequested = false;
};

} // namespace lpa

#endif // LPA_OBS_SAMPLER_H
