//===- Span.h - Phase-scoped timing spans -----------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII span covering one named phase of an analysis (transform, evaluate,
/// report). On destruction it adds the elapsed time to the metrics
/// registry's phase accounting and, when a tracer is attached, brackets the
/// phase with SpanBegin/SpanEnd events so the Chrome trace shows it as a
/// duration bar. Both pointers may be null; a span over (nullptr, nullptr)
/// only reads the clock.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_SPAN_H
#define LPA_OBS_SPAN_H

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Stopwatch.h"

namespace lpa {

/// Scoped phase span. \p Label must point to static storage (it is handed
/// to TraceEvents that may outlive the span).
class ScopedSpan {
public:
  ScopedSpan(Tracer *Trace, MetricsRegistry *Metrics, const char *Label)
      : Trace(Trace), Metrics(Metrics), Label(Label) {
    if (Trace)
      Trace->beginSpan(Label);
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  ~ScopedSpan() { finish(); }

  /// Ends the span early (idempotent).
  void finish() {
    if (Done)
      return;
    Done = true;
    if (Metrics)
      Metrics->addPhase(Label, Watch.elapsedSeconds());
    if (Trace)
      Trace->endSpan(Label);
  }

private:
  Tracer *Trace;
  MetricsRegistry *Metrics;
  const char *Label;
  Stopwatch Watch;
  bool Done = false;
};

} // namespace lpa

#endif // LPA_OBS_SPAN_H
