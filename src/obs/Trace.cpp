//===- Trace.cpp - SLG event tracing ------------------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>

using namespace lpa;

const char *lpa::traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::TabledCall: return "tabled-call";
  case TraceEventKind::SubgoalNew: return "subgoal-new";
  case TraceEventKind::AnswerNew: return "answer-new";
  case TraceEventKind::AnswerDup: return "answer-dup";
  case TraceEventKind::SubgoalComplete: return "subgoal-complete";
  case TraceEventKind::ClauseResolve: return "clause-resolve";
  case TraceEventKind::BuiltinEval: return "builtin-eval";
  case TraceEventKind::DepthLimit: return "depth-limit";
  case TraceEventKind::DeadlineExpired: return "deadline-expired";
  case TraceEventKind::SpanBegin: return "span-begin";
  case TraceEventKind::SpanEnd: return "span-end";
  }
  return "unknown";
}

void RecordingSink::event(const TraceEvent &E) {
#if LPA_TRACE_ASSERTS
  // Self-check: time must be monotone within one recording. The ring can
  // evict the previous event, so track the last arrival separately.
  assert((Dropped == 0 && Events.empty() ? true : LastTimeNs <= E.TimeNs) &&
         "trace events out of time order");
  LastTimeNs = E.TimeNs;
#endif
  if (Opts.MaxEvents == 0 || Events.size() < Opts.MaxEvents) {
    Events.push_back(E);
    return;
  }
  // Keep-last ring: overwrite the oldest slot and advance the head.
  Events[Head] = E;
  Head = (Head + 1) % Opts.MaxEvents;
  ++Dropped;
}

const std::vector<TraceEvent> &RecordingSink::events() const {
  if (Head != 0) {
    std::rotate(Events.begin(), Events.begin() + static_cast<ptrdiff_t>(Head),
                Events.end());
    Head = 0;
  }
  return Events;
}

size_t RecordingSink::count(TraceEventKind K) const {
  return static_cast<size_t>(
      std::count_if(Events.begin(), Events.end(),
                    [K](const TraceEvent &E) { return E.Kind == K; }));
}

void PrintSink::event(const TraceEvent &E) {
  switch (E.Kind) {
  case TraceEventKind::SpanBegin:
    std::fprintf(Out, "  [trace] >> %s\n", E.Label ? E.Label : "?");
    return;
  case TraceEventKind::SpanEnd:
    std::fprintf(Out, "  [trace] << %s\n", E.Label ? E.Label : "?");
    return;
  default:
    break;
  }
  std::fprintf(Out, "  [trace] %-16s %s/%u", traceEventKindName(E.Kind),
               Symbols.name(E.Sym).c_str(), E.Arity);
  if (E.Value)
    std::fprintf(Out, " (%llu)", static_cast<unsigned long long>(E.Value));
  std::fprintf(Out, "\n");
}

static void writeChromeEvents(JsonWriter &W,
                              const std::vector<TraceEvent> &Events,
                              const SymbolTable *Symbols, uint64_t Tid) {
  for (const TraceEvent &E : Events) {
    W.beginObject();
    std::string Name;
    if (E.Kind == TraceEventKind::SpanBegin ||
        E.Kind == TraceEventKind::SpanEnd) {
      Name = E.Label ? E.Label : "span";
    } else {
      Name = traceEventKindName(E.Kind);
      if (Symbols && E.Sym < Symbols->size()) {
        Name += ' ';
        Name += Symbols->name(E.Sym);
        Name += '/';
        Name += std::to_string(E.Arity);
      } else if (!Symbols) {
        // The producing run's SymbolTable is gone; keep the raw id so
        // lanes stay distinguishable in the viewer.
        Name += " #";
        Name += std::to_string(E.Sym);
        Name += '/';
        Name += std::to_string(E.Arity);
      }
    }
    W.member("name", std::string_view(Name));
    const char *Phase = "i";
    if (E.Kind == TraceEventKind::SpanBegin)
      Phase = "B";
    else if (E.Kind == TraceEventKind::SpanEnd)
      Phase = "E";
    W.member("ph", Phase);
    if (Phase[0] == 'i')
      W.member("s", "t"); // Instant scope: thread.
    W.member("ts", static_cast<double>(E.TimeNs) / 1e3);
    W.member("pid", uint64_t(1));
    W.member("tid", Tid);
    if (E.Value || E.QueryId) {
      W.key("args");
      W.beginObject();
      if (E.Value)
        W.member("value", E.Value);
      if (E.QueryId)
        W.member("query", E.QueryId);
      W.endObject();
    }
    W.endObject();
  }
}

/// Leads a lane with the ring's eviction count so a bounded recording is
/// visibly a window, not the whole run. Timestamped at the oldest kept
/// event: everything before that point is what was dropped.
static void writeDroppedEvent(JsonWriter &W,
                              const std::vector<TraceEvent> &Events,
                              uint64_t Dropped, uint64_t Tid) {
  if (!Dropped)
    return;
  W.beginObject();
  W.member("name", "trace-truncated");
  W.member("ph", "i");
  W.member("s", "t");
  uint64_t FirstNs = Events.empty() ? 0 : Events.front().TimeNs;
  W.member("ts", static_cast<double>(FirstNs) / 1e3);
  W.member("pid", uint64_t(1));
  W.member("tid", Tid);
  W.key("args");
  W.beginObject();
  W.member("dropped", Dropped);
  W.endObject();
  W.endObject();
}

std::string lpa::formatChromeTrace(const std::vector<TraceEvent> &Events,
                                   const SymbolTable &Symbols,
                                   uint64_t Dropped) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  writeDroppedEvent(W, Events, Dropped, /*Tid=*/1);
  writeChromeEvents(W, Events, &Symbols, /*Tid=*/1);
  W.endArray();
  W.member("displayTimeUnit", "ms");
  if (Dropped)
    W.member("droppedEvents", Dropped);
  W.endObject();
  return Out;
}

std::string
lpa::formatChromeTraceThreads(const std::vector<ThreadTrace> &Threads,
                              const SymbolTable *Symbols) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  uint64_t TotalDropped = 0;
  for (const ThreadTrace &T : Threads) {
    writeDroppedEvent(W, T.Events, T.Dropped, T.Tid);
    writeChromeEvents(W, T.Events, Symbols, T.Tid);
    TotalDropped += T.Dropped;
  }
  W.endArray();
  W.member("displayTimeUnit", "ms");
  if (TotalDropped)
    W.member("droppedEvents", TotalDropped);
  W.endObject();
  return Out;
}
