//===- Trace.h - SLG event tracing ------------------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured event tracing for the tabled engine, modeled on XSB's trace
/// facilities (Swift & Warren describe them as essential for understanding
/// tabling behavior). The engine emits one TraceEvent per interesting SLG
/// transition — tabled call, subgoal creation, answer insert/duplicate,
/// completion, clause resolution, builtin evaluation, depth-limit hit —
/// plus begin/end span pairs for analysis phases.
///
/// Cost model: a Tracer with no sink attached is a single predictable
/// branch per hook (`if (Sink)`), and the engine holds a *pointer* to the
/// tracer that is null by default, so the fully-disabled path is one null
/// check with no argument evaluation. Sinks only pay when attached.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_OBS_TRACE_H
#define LPA_OBS_TRACE_H

#include "term/Symbol.h"

#include <cassert>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <vector>

/// LPA_TRACE_ASSERTS (CMake option LPA_ENABLE_TRACE_ASSERTS) compiles in
/// instrumentation self-checks: span begin/end balance in the tracer and
/// per-event invariants in the recording sink. Off by default; the checks
/// cost a counter per span event when on.
#ifndef LPA_TRACE_ASSERTS
#define LPA_TRACE_ASSERTS 0
#endif

namespace lpa {

/// Whether this build carries the guarded instrumentation self-checks.
constexpr bool traceAssertsEnabled() { return LPA_TRACE_ASSERTS != 0; }

/// The SLG event taxonomy. Instant events describe one engine transition;
/// SpanBegin/SpanEnd bracket a named phase (transform/evaluate/collect).
enum class TraceEventKind : uint8_t {
  TabledCall,    ///< A call to a tabled predicate was issued.
  SubgoalNew,    ///< A new subgoal variant entered the call table.
  AnswerNew,     ///< A unique answer entered an answer table.
  AnswerDup,     ///< A derived answer was rejected by the variant check.
  SubgoalComplete, ///< A subgoal's SCC finished; its table is complete.
  ClauseResolve, ///< A program clause resolution was attempted.
  BuiltinEval,   ///< A builtin goal was evaluated.
  DepthLimit,    ///< A branch was pruned by the depth limit.
  DeadlineExpired, ///< A query's deadline passed; the search fails fast.
  SpanBegin,     ///< A named phase started (Label holds the name).
  SpanEnd,       ///< The innermost open phase ended.
};

/// Renders the kind as a short stable mnemonic ("tabled-call", ...).
const char *traceEventKindName(TraceEventKind K);

/// One traced engine transition. Events are POD and carry no owned memory:
/// Sym/Arity identify the predicate (Sym is meaningless for spans), Value
/// is a kind-specific payload (e.g. answer count at completion), and Label
/// is a static string naming spans and labeled events.
struct TraceEvent {
  TraceEventKind Kind;
  SymbolId Sym = 0;
  uint32_t Arity = 0;
  uint64_t TimeNs = 0; ///< Monotonic time since the tracer's epoch.
  uint64_t Value = 0;
  const char *Label = nullptr; ///< Static storage only; never freed.
  /// Query the event belongs to (Tracer::setQuery); 0 = no query scope.
  /// Long-lived services set this per protocol query so one shared trace
  /// buffer can be sliced per client request after the fact.
  uint64_t QueryId = 0;
};

/// Receives traced events. Implementations must tolerate being called at
/// engine hot-path frequency when attached.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent &E) = 0;
};

/// The emission front end the engine holds a pointer to. With no sink the
/// emit() calls reduce to a null test.
class Tracer {
public:
  Tracer() : Epoch(std::chrono::steady_clock::now()) {}

  /// Attaches (or, with nullptr, detaches) the sink. The caller keeps
  /// ownership; the sink must outlive its attachment.
  void setSink(TraceSink *S) { Sink = S; }
  TraceSink *sink() const { return Sink; }
  bool enabled() const { return Sink != nullptr; }

  /// Sets the query id stamped on every subsequent event (0 = unscoped).
  /// The engine calls this at each outermost solve() entry; it costs one
  /// store and nothing at all on the emit path beyond the existing copy.
  void setQuery(uint64_t Q) { CurQuery = Q; }
  uint64_t query() const { return CurQuery; }

  /// Nanoseconds since the tracer was constructed (monotonic clock).
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Emits an instant event; a no-op without a sink.
  void emit(TraceEventKind K, SymbolId Sym, uint32_t Arity,
            uint64_t Value = 0, const char *Label = nullptr) {
    if (!Sink)
      return;
    TraceEvent E{K, Sym, Arity, nowNs(), Value, Label, CurQuery};
    Sink->event(E);
  }

  /// Emits a span boundary. \p Label must point to static storage.
  void beginSpan(const char *Label) {
#if LPA_TRACE_ASSERTS
    ++OpenSpans;
#endif
    emit(TraceEventKind::SpanBegin, 0, 0, 0, Label);
  }
  void endSpan(const char *Label) {
#if LPA_TRACE_ASSERTS
    assert(OpenSpans > 0 && "span end without a matching begin");
    --OpenSpans;
#endif
    emit(TraceEventKind::SpanEnd, 0, 0, 0, Label);
  }

#if LPA_TRACE_ASSERTS
  /// Open-span depth (only tracked in trace-assert builds).
  uint64_t openSpans() const { return OpenSpans; }
#endif

private:
  TraceSink *Sink = nullptr;
  uint64_t CurQuery = 0;
  std::chrono::steady_clock::time_point Epoch;
#if LPA_TRACE_ASSERTS
  uint64_t OpenSpans = 0;
#endif
};

/// Recording-sink tunables.
struct TraceOptions {
  /// 0 = buffer without bound (the default, unchanged behavior). N > 0 =
  /// bounded ring: keep only the *last* N events, counting every evicted
  /// event in RecordingSink::droppedCount(). Long fleet runs set this so a
  /// trace can stay attached without growing the buffer without bound.
  size_t MaxEvents = 0;
};

/// Buffers events in memory, for tests, post-hoc analysis, and the Chrome
/// trace exporter. Optionally bounded (TraceOptions::MaxEvents) with
/// keep-last semantics: once full, the oldest event is evicted for each
/// new arrival and the eviction is counted, so
///   droppedCount() + events().size() == total events ever received.
class RecordingSink : public TraceSink {
public:
  RecordingSink() = default;
  explicit RecordingSink(TraceOptions O) : Opts(O) {}

  void event(const TraceEvent &E) override;

  /// Buffered events in arrival order (in bounded mode: the kept window,
  /// oldest first). Linearizes the ring in place when it has wrapped.
  const std::vector<TraceEvent> &events() const;
  void clear() {
    Events.clear();
    Head = 0;
    Dropped = 0;
  }

  /// Events evicted by the bounded ring; 0 in unbounded mode.
  uint64_t droppedCount() const { return Dropped; }
  const TraceOptions &options() const { return Opts; }

  /// Number of buffered events of \p K (kept window only).
  size_t count(TraceEventKind K) const;

private:
  TraceOptions Opts;
  /// Ring storage. Until the first wrap, arrival order equals storage
  /// order; after a wrap, Head marks the oldest kept event and events()
  /// rotates the buffer back into arrival order on demand.
  mutable std::vector<TraceEvent> Events;
  mutable size_t Head = 0;
  uint64_t Dropped = 0;
#if LPA_TRACE_ASSERTS
  uint64_t LastTimeNs = 0;
#endif
};

/// Prints one line per event to a stdio stream — the REPL's ":trace on"
/// sink. Resolves predicate names through the symbol table it was given.
class PrintSink : public TraceSink {
public:
  PrintSink(const SymbolTable &Symbols, std::FILE *Out)
      : Symbols(Symbols), Out(Out) {}

  void event(const TraceEvent &E) override;

private:
  const SymbolTable &Symbols;
  std::FILE *Out;
};

/// Serializes recorded events as a Chrome trace ("chrome://tracing" /
/// Perfetto "traceEvents" JSON): spans become B/E duration events and
/// instant events become "i" events, so a tabled evaluation can be read as
/// a timeline. Timestamps are microseconds from the tracer epoch.
/// \p Dropped is the recording ring's eviction count: when nonzero the
/// export leads with a "trace-truncated" instant event carrying it and
/// records the total in a top-level "droppedEvents" member, so a bounded
/// ring's window is never presented as the complete trace.
std::string formatChromeTrace(const std::vector<TraceEvent> &Events,
                              const SymbolTable &Symbols,
                              uint64_t Dropped = 0);

/// One worker's buffered events for the stitched multi-thread export.
struct ThreadTrace {
  uint64_t Tid = 1;
  std::vector<TraceEvent> Events;
  /// RecordingSink::droppedCount() of this worker's ring; surfaced as a
  /// per-lane "trace-truncated" event and summed into "droppedEvents".
  uint64_t Dropped = 0;
};

/// Stitches per-worker trace buffers into one Chrome trace, each buffer on
/// its own tid lane. \p Symbols may be null: parallel corpus runs give each
/// job a private SymbolTable that dies with the job, so predicate SymbolIds
/// are unresolvable after the fact and events fall back to "kind #sym/arity"
/// names (span labels, which are static strings, render normally).
std::string formatChromeTraceThreads(const std::vector<ThreadTrace> &Threads,
                                     const SymbolTable *Symbols);

} // namespace lpa

#endif // LPA_OBS_TRACE_H
