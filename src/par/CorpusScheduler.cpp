//===- CorpusScheduler.cpp - Parallel sharded corpus analysis ----------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "par/CorpusScheduler.h"

#include "par/ThreadPool.h"
#include "support/Stopwatch.h"
#include "wamlite/WamCompiler.h"

#include <algorithm>

using namespace lpa;

const char *lpa::corpusJobKindName(CorpusJobKind K) {
  switch (K) {
  case CorpusJobKind::Groundness: return "groundness";
  case CorpusJobKind::DepthK: return "depthk";
  case CorpusJobKind::WamLite: return "wamlite";
  case CorpusJobKind::Strictness: return "strictness";
  }
  return "unknown";
}

std::vector<std::string>
lpa::fingerprintGroundness(const GroundnessResult &R) {
  std::vector<std::string> Out;
  Out.reserve(R.Predicates.size());
  for (const PredGroundness &P : R.Predicates)
    Out.push_back(P.Name + "/" + std::to_string(P.Arity) +
                  " success=" + formatTruthTable(P.SuccessSet) +
                  " calls=" + formatTruthTable(P.CallPatterns));
  return Out;
}

std::vector<std::string>
lpa::fingerprintStrictness(const StrictnessResult &R) {
  std::vector<std::string> Out;
  Out.reserve(R.Functions.size());
  for (const FuncStrictness &F : R.Functions)
    Out.push_back(F.summary());
  return Out;
}

std::vector<std::string> lpa::fingerprintDepthK(const DepthKResult &R) {
  std::vector<std::string> Out;
  Out.reserve(R.Predicates.size());
  for (const DepthKPred &P : R.Predicates) {
    std::string Line = P.Name + "/" + std::to_string(P.Arity) + " answers=[";
    for (size_t I = 0; I < P.AnswerPatterns.size(); ++I) {
      if (I)
        Line += ',';
      Line += P.AnswerPatterns[I];
    }
    Line += "] calls=[";
    for (size_t I = 0; I < P.CallPatterns.size(); ++I) {
      if (I)
        Line += ',';
      Line += P.CallPatterns[I];
    }
    Line += "] ground=";
    for (uint8_t G : P.GroundOnSuccess)
      Line += G ? 'g' : '?';
    Out.push_back(std::move(Line));
  }
  return Out;
}

namespace {

/// Folds a job's justification-validation counts into its result and its
/// fingerprint list (the latter makes the parallel-vs-serial comparison
/// cover provenance too).
void noteProvenance(CorpusJobResult &R, uint64_t Justified, uint64_t Premises,
                    uint64_t Dangling) {
  R.JustifiedAnswers = Justified;
  R.JustificationPremises = Premises;
  R.DanglingPremises = Dangling;
  R.Fingerprints.push_back("$provenance justified=" +
                           std::to_string(Justified) +
                           " premises=" + std::to_string(Premises) +
                           " dangling=" + std::to_string(Dangling));
}

} // namespace

CorpusScheduler::CorpusScheduler(Options Opts) : Opts(Opts) {}

std::vector<CorpusJob> CorpusScheduler::kindJobs(CorpusJobKind Kind) {
  const std::vector<CorpusProgram> &Corpus =
      Kind == CorpusJobKind::Strictness ? flBenchmarks() : prologBenchmarks();
  std::vector<CorpusJob> Jobs;
  Jobs.reserve(Corpus.size());
  for (const CorpusProgram &P : Corpus)
    Jobs.push_back({&P, Kind});
  return Jobs;
}

std::vector<CorpusJob> CorpusScheduler::fullMatrix() {
  std::vector<CorpusJob> Jobs;
  for (CorpusJobKind K : {CorpusJobKind::Groundness, CorpusJobKind::DepthK,
                          CorpusJobKind::WamLite}) {
    std::vector<CorpusJob> KJ = kindJobs(K);
    Jobs.insert(Jobs.end(), KJ.begin(), KJ.end());
  }
  std::vector<CorpusJob> FL = kindJobs(CorpusJobKind::Strictness);
  Jobs.insert(Jobs.end(), FL.begin(), FL.end());
  return Jobs;
}

size_t CorpusScheduler::workerCount() const {
  return Opts.Jobs <= 1 ? 1 : Opts.Jobs;
}

CorpusJobResult CorpusScheduler::runJob(const CorpusJob &Job,
                                        WorkerObs *Obs,
                                        EvalCursor *Cursor) {
  CorpusJobResult R;
  R.Program = Job.Program->Name;
  R.Kind = Job.Kind;
  Tracer *T = Obs ? &Obs->Trace : nullptr;
  MetricsRegistry *M = Obs ? &Obs->Metrics : nullptr;
  // Corpus names are static storage, so they are valid span labels.
  if (T)
    T->beginSpan(Job.Program->Name);
  Stopwatch Watch;

  switch (Job.Kind) {
  case CorpusJobKind::Groundness: {
    SymbolTable Symbols;
    GroundnessAnalyzer::Options GO = Opts.Groundness;
    GO.Trace = T;
    GO.Metrics = M;
    GO.Cursor = Cursor;
    if (Opts.RecordProvenance)
      GO.Engine.RecordProvenance = true;
    GroundnessAnalyzer Analyzer(Symbols, GO);
    auto Res = Analyzer.analyze(Job.Program->Source);
    if (!Res) {
      R.Error = Res.getError().str();
      break;
    }
    R.Ok = true;
    R.Incomplete = Res->Incomplete;
    R.Fingerprints = fingerprintGroundness(*Res);
    if (Opts.RecordProvenance)
      noteProvenance(R, Res->JustifiedAnswers, Res->JustificationPremises,
                     Res->DanglingPremises);
    break;
  }
  case CorpusJobKind::DepthK: {
    SymbolTable Symbols;
    DepthKAnalyzer::Options DO = Opts.DepthK;
    DO.Trace = T;
    DO.Metrics = M;
    DO.Cursor = Cursor;
    if (Opts.RecordProvenance)
      DO.RecordProvenance = true;
    DepthKAnalyzer Analyzer(Symbols, DO);
    auto Res = Analyzer.analyze(Job.Program->Source);
    if (!Res) {
      R.Error = Res.getError().str();
      break;
    }
    R.Ok = true;
    R.Incomplete = Res->Incomplete;
    R.Fingerprints = fingerprintDepthK(*Res);
    if (Opts.RecordProvenance)
      noteProvenance(R, Res->JustifiedAnswers, Res->JustificationPremises,
                     Res->DanglingPremises);
    break;
  }
  case CorpusJobKind::WamLite: {
    SymbolTable Symbols;
    WamCompiler Compiler(Symbols);
    auto Res = Compiler.compileText(Job.Program->Source);
    if (!Res) {
      R.Error = Res.getError().str();
      break;
    }
    R.Ok = true;
    for (const CompiledClause &C : Res->Clauses)
      R.Fingerprints.push_back(
          Symbols.name(C.Pred.Sym) + "/" + std::to_string(C.Pred.Arity) +
          " instrs=" + std::to_string(C.Code.size()) +
          " perm=" + std::to_string(C.NumPermanent) +
          " temp=" + std::to_string(C.NumTemporaries));
    R.Fingerprints.push_back(
        "total instrs=" + std::to_string(Res->totalInstructions()) +
        " bytes=" + std::to_string(Res->codeBytes()));
    break;
  }
  case CorpusJobKind::Strictness: {
    StrictnessAnalyzer::Options SO = Opts.Strictness;
    if (Opts.RecordProvenance)
      SO.Engine.RecordProvenance = true;
    StrictnessAnalyzer Analyzer(SO);
    Analyzer.setObservability(T, M, Cursor);
    auto Res = Analyzer.analyze(Job.Program->Source);
    if (!Res) {
      R.Error = Res.getError().str();
      break;
    }
    R.Ok = true;
    R.Incomplete = Res->Incomplete;
    R.Fingerprints = fingerprintStrictness(*Res);
    if (Opts.RecordProvenance)
      noteProvenance(R, Res->JustifiedAnswers, Res->JustificationPremises,
                     Res->DanglingPremises);
    break;
  }
  }

  R.Seconds = Watch.elapsedSeconds();
  if (T)
    T->endSpan(Job.Program->Name);
  return R;
}

std::vector<CorpusJobResult>
CorpusScheduler::run(const std::vector<CorpusJob> &Jobs) {
  std::vector<CorpusJobResult> Results(Jobs.size());
  size_t NumWorkers = Opts.Jobs <= 1 ? 0 : Opts.Jobs;

  size_t NumShards = std::max<size_t>(1, NumWorkers);

  Shards.clear();
  Merged.clear();
  if (Opts.CollectObservability) {
    for (size_t I = 0; I < NumShards; ++I)
      Shards.push_back(
          std::make_unique<WorkerObs>(TraceOptions{Opts.TraceMaxEvents}));
  }

  // Sampling is wired independently of CollectObservability so the profile
  // can be on while the (costlier) tracing/metrics shards stay off.
  Cursors.clear();
  Profile = SampleProfile();
  Sampler Prof(Sampler::Options{Opts.SampleHz});
  if (Opts.SampleHz > 0) {
    for (size_t I = 0; I < NumShards; ++I) {
      Cursors.push_back(std::make_unique<EvalCursor>());
      Prof.addLane("worker-" + std::to_string(I + 1), Cursors.back().get());
    }
    Prof.start();
  }

  Stopwatch Wall;
  {
    ThreadPool Pool(NumWorkers);
    for (size_t I = 0; I < Jobs.size(); ++I)
      Pool.submit([this, &Jobs, &Results, I] {
        size_t W = ThreadPool::currentWorkerId();
        if (W == SIZE_MAX)
          W = 0; // Inline serial mode: everything lands in shard 0.
        WorkerObs *Obs = Shards.empty() ? nullptr : Shards[W].get();
        EvalCursor *Cur = Cursors.empty() ? nullptr : Cursors[W].get();
        Results[I] = runJob(Jobs[I], Obs, Cur);
      });
    Pool.wait();
    LastSteals = Pool.stealCount();
  }
  // The sampler keeps running until here, so the published wall-clock
  // includes any sampling overhead — that's what the A/B experiments
  // measure.
  WallSeconds = Wall.elapsedSeconds();
  if (Opts.SampleHz > 0) {
    Prof.stop();
    Profile = Prof.takeProfile();
  }

  // Post-run merge: shard order (not completion order), so the merged
  // registry is as deterministic as the per-shard job assignment.
  for (const auto &S : Shards)
    Merged.mergeFrom(S->Metrics);
  return Results;
}

std::string CorpusScheduler::chromeTrace() const {
  std::vector<ThreadTrace> Threads;
  Threads.reserve(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I)
    Threads.push_back(
        {I + 1, Shards[I]->Sink.events(), Shards[I]->Sink.droppedCount()});
  // Job SymbolTables are private and already destroyed; export by raw id.
  return formatChromeTraceThreads(Threads, /*Symbols=*/nullptr);
}
