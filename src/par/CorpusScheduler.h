//===- CorpusScheduler.h - Parallel sharded corpus analysis -----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans the benchmark corpus across a work-stealing thread pool. Each
/// analysis run is already an isolated unit — its own SymbolTable,
/// TermStore, Database and Solver — so the corpus is embarrassingly
/// parallel, mirroring XSB's later multi-threaded tabling with *private*
/// tables (Swift & Warren): no term state is shared between workers.
///
/// Observability is sharded the same way: every worker owns a private
/// MetricsRegistry and trace buffer; after the fleet drains, metrics merge
/// by predicate Name+Arity (SymbolIds are worker-private and meaningless
/// across shards) and trace buffers stitch into one Chrome trace with one
/// tid lane per worker.
///
/// Results come back indexed by submission order, so a parallel run is
/// bit-comparable against the serial run job by job — the invariant the
/// bench drivers' --jobs mode asserts.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_PAR_CORPUSSCHEDULER_H
#define LPA_PAR_CORPUSSCHEDULER_H

#include "corpus/Corpus.h"
#include "depthk/DepthK.h"
#include "obs/Metrics.h"
#include "obs/Sampler.h"
#include "obs/Trace.h"
#include "prop/Groundness.h"
#include "strictness/Strictness.h"

#include <memory>
#include <string>
#include <vector>

namespace lpa {

/// What to run on one corpus program.
enum class CorpusJobKind : uint8_t {
  Groundness, ///< Prop groundness (Table 1) on a logic benchmark.
  DepthK,     ///< Depth-k groundness (Table 4) on a logic benchmark.
  WamLite,    ///< WAM-lite compilation (the compile-arm ablation).
  Strictness, ///< Demand strictness (Table 3) on an FL benchmark.
};

const char *corpusJobKindName(CorpusJobKind K);

/// One unit of fleet work: a program and what to do with it.
struct CorpusJob {
  const CorpusProgram *Program = nullptr;
  CorpusJobKind Kind = CorpusJobKind::Groundness;
};

/// Outcome of one job. Fingerprints are canonical per-predicate result
/// lines, rendered deterministically from the analysis result alone, so two
/// runs of the same job agree bit-for-bit iff their results do.
struct CorpusJobResult {
  const char *Program = nullptr; ///< Static corpus name.
  CorpusJobKind Kind = CorpusJobKind::Groundness;
  bool Ok = false;
  std::string Error; ///< Diagnostic text when !Ok.
  std::vector<std::string> Fingerprints;
  double Seconds = 0;      ///< This job's own wall time.
  bool Incomplete = false; ///< Result carries an incompleteness warning.

  /// \name Justification statistics (Options::RecordProvenance; zero for
  /// WamLite jobs, which compile rather than analyze). A nonzero
  /// DanglingPremises means the job's provenance arena disagrees with its
  /// answer tables — always a bug.
  /// @{
  uint64_t JustifiedAnswers = 0;
  uint64_t JustificationPremises = 0;
  uint64_t DanglingPremises = 0;
  /// @}
};

/// \name Canonical result fingerprints (parallel-vs-serial bit-identity).
/// @{
std::vector<std::string> fingerprintGroundness(const GroundnessResult &R);
std::vector<std::string> fingerprintStrictness(const StrictnessResult &R);
std::vector<std::string> fingerprintDepthK(const DepthKResult &R);
/// @}

class CorpusScheduler {
public:
  struct Options {
    /// Worker threads; 0 or 1 = run jobs inline in submission order.
    size_t Jobs = 0;
    /// Shard per-worker metrics and trace buffers, merged after run().
    /// Off = no instrumentation cost per job.
    bool CollectObservability = false;
    /// Record answer justifications in every analysis job (each worker's
    /// Solver owns a private provenance arena, like every other table).
    /// Results carry validation counts and fingerprints gain a
    /// "$provenance ..." line, so the serial-vs-parallel bit-identity
    /// check also covers justification validity under --jobs N.
    bool RecordProvenance = false;
    /// Sampling-profiler frequency (Hz); 0 = no sampler. Independent of
    /// CollectObservability: each worker gets a private EvalCursor wired
    /// into its jobs' engines, and one background Sampler sweeps all
    /// cursors, aggregating into per-worker lanes ("worker-1"..).
    /// Sampling never perturbs results — the cursor writes are plain
    /// stores on the worker's own evaluation path.
    uint32_t SampleHz = 0;
    /// Bound on each worker's retained trace events (keep-last ring);
    /// 0 = unbounded. See TraceOptions::MaxEvents.
    size_t TraceMaxEvents = 0;
    /// Analyzer tunables forwarded to every job of the matching kind.
    /// Their Trace/Metrics pointers are overridden per worker when
    /// CollectObservability is set.
    GroundnessAnalyzer::Options Groundness;
    DepthKAnalyzer::Options DepthK;
    StrictnessAnalyzer::Options Strictness;
  };

  explicit CorpusScheduler(Options Opts);

  /// The full corpus matrix: the 12 logic benchmarks under
  /// {Groundness, DepthK, WamLite} plus the 10 FL benchmarks under
  /// Strictness — 46 jobs.
  static std::vector<CorpusJob> fullMatrix();

  /// Jobs of one kind over the matching corpus (12 logic programs, or the
  /// 10 FL programs for Strictness).
  static std::vector<CorpusJob> kindJobs(CorpusJobKind Kind);

  /// Runs the fleet. Results[I] corresponds to Jobs[I] regardless of which
  /// worker executed it or in what order.
  std::vector<CorpusJobResult> run(const std::vector<CorpusJob> &Jobs);

  /// Fleet wall-clock of the last run() (seconds).
  double lastWallSeconds() const { return WallSeconds; }
  /// Successful steals in the last run() (0 in serial mode).
  uint64_t lastStealCount() const { return LastSteals; }
  size_t workerCount() const;

  /// Merged per-worker metrics of the last run() (empty unless
  /// CollectObservability). Predicates merged by Name+Arity; counters and
  /// phases are fleet-wide sums.
  const MetricsRegistry &mergedMetrics() const { return Merged; }

  /// Per-worker trace buffers of the last run() stitched into one Chrome
  /// trace, tid = worker index + 1. Predicate names fall back to raw
  /// symbol ids (each job's SymbolTable is private and already gone); job
  /// and phase span labels render normally.
  std::string chromeTrace() const;

  /// Merged sample profile of the last run() (empty unless SampleHz was
  /// set): one lane per worker, stacks aggregated per lane.
  const SampleProfile &sampleProfile() const { return Profile; }

  /// Folded-stack (flamegraph) rendering of sampleProfile(). Frame names
  /// fall back to "#sym/arity" — job SymbolTables are worker-private and
  /// already destroyed, same as chromeTrace().
  std::string foldedStacks() const {
    return Profile.formatFolded(/*Symbols=*/nullptr);
  }

private:
  /// Per-worker observability shard; workers never share one.
  struct WorkerObs {
    explicit WorkerObs(TraceOptions TO) : Sink(TO) {
      Trace.setSink(&Sink);
    }
    MetricsRegistry Metrics;
    Tracer Trace;
    RecordingSink Sink;
  };

  CorpusJobResult runJob(const CorpusJob &Job, WorkerObs *Obs,
                         EvalCursor *Cursor);

  Options Opts;
  std::vector<std::unique_ptr<WorkerObs>> Shards;
  /// Per-worker sampling cursors (allocated iff SampleHz > 0). unique_ptr:
  /// EvalCursor holds atomics, so the vector must never relocate one.
  std::vector<std::unique_ptr<EvalCursor>> Cursors;
  SampleProfile Profile;
  MetricsRegistry Merged;
  double WallSeconds = 0;
  uint64_t LastSteals = 0;
};

} // namespace lpa

#endif // LPA_PAR_CORPUSSCHEDULER_H
