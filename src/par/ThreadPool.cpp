//===- ThreadPool.cpp - Work-stealing thread pool -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "par/ThreadPool.h"

#include <algorithm>

using namespace lpa;

namespace {
thread_local size_t CurrentWorker = SIZE_MAX;
} // namespace

size_t ThreadPool::hardwareWorkers() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

size_t ThreadPool::currentWorkerId() { return CurrentWorker; }

ThreadPool::ThreadPool(size_t NumWorkers) {
  Workers.reserve(NumWorkers);
  for (size_t I = 0; I < NumWorkers; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(NumWorkers);
  for (size_t I = 0; I < NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(SleepMu);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(Task T) {
  Submitted.fetch_add(1, std::memory_order_relaxed);
  if (Workers.empty()) {
    // Serial mode: run inline. No Pending accounting needed — the task is
    // done before submit returns.
    T();
    Executed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Pending.fetch_add(1, std::memory_order_relaxed);
  size_t W = NextSubmit.fetch_add(1, std::memory_order_relaxed) %
             Workers.size();
  {
    std::lock_guard<std::mutex> L(Workers[W]->Mu);
    Workers[W]->Deque.push_back(std::move(T));
  }
  // Lock/unlock pairs the push with sleepers' predicate evaluation so the
  // notify cannot be lost between their queue scan and the wait.
  { std::lock_guard<std::mutex> L(SleepMu); }
  WorkCv.notify_one();
}

void ThreadPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> L(SleepMu);
  IdleCv.wait(L, [this] {
    return Pending.load(std::memory_order_acquire) == 0;
  });
}

bool ThreadPool::popOwn(size_t Id, Task &Out) {
  Worker &W = *Workers[Id];
  std::lock_guard<std::mutex> L(W.Mu);
  if (W.Deque.empty())
    return false;
  Out = std::move(W.Deque.back());
  W.Deque.pop_back();
  return true;
}

bool ThreadPool::stealOther(size_t Id, Task &Out) {
  for (size_t Off = 1; Off < Workers.size(); ++Off) {
    Worker &W = *Workers[(Id + Off) % Workers.size()];
    std::lock_guard<std::mutex> L(W.Mu);
    if (W.Deque.empty())
      continue;
    Out = std::move(W.Deque.front());
    W.Deque.pop_front();
    Steals.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::anyQueued() {
  for (const auto &W : Workers) {
    std::lock_guard<std::mutex> L(W->Mu);
    if (!W->Deque.empty())
      return true;
  }
  return false;
}

void ThreadPool::workerLoop(size_t Id) {
  CurrentWorker = Id;
  for (;;) {
    Task T;
    if (popOwn(Id, T) || stealOther(Id, T)) {
      T();
      Executed.fetch_add(1, std::memory_order_relaxed);
      if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        { std::lock_guard<std::mutex> L(SleepMu); }
        IdleCv.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> L(SleepMu);
    if (Stop)
      return;
    IdleSleeps.fetch_add(1, std::memory_order_relaxed);
    WorkCv.wait(L, [this] { return Stop || anyQueued(); });
    if (Stop)
      return;
  }
}

void lpa::parallelFor(size_t Jobs, size_t N,
                      const std::function<void(size_t)> &Body) {
  if (Jobs <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  ThreadPool Pool(std::min(Jobs, N));
  for (size_t I = 0; I < N; ++I)
    Pool.submit([&Body, I] { Body(I); });
  Pool.wait();
}
