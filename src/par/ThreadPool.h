//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for fanning independent analysis runs
/// across cores. Each worker owns a deque: submissions are distributed
/// round-robin, a worker pops its own deque from the back (LIFO, cache
/// warm), and an idle worker steals from another's front (FIFO, oldest
/// work first — the classic Chase-Lev discipline, here with per-deque
/// locks since tasks are whole analysis runs, not microtasks).
///
/// With zero workers the pool degenerates to inline execution on the
/// submitting thread, which is the deterministic serial mode the bench
/// drivers compare against.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_PAR_THREADPOOL_H
#define LPA_PAR_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lpa {

class ThreadPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p NumWorkers threads; 0 means no threads and inline submit.
  explicit ThreadPool(size_t NumWorkers);

  /// Drains remaining work (wait()) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static size_t hardwareWorkers();

  /// Worker index of the calling thread: 0..workerCount()-1 on a pool
  /// thread, SIZE_MAX elsewhere. Lets callers address per-worker shards
  /// without a lock.
  static size_t currentWorkerId();

  /// Enqueues \p T. With zero workers, runs it inline before returning.
  void submit(Task T);

  /// Blocks until every submitted task has finished executing.
  void wait();

  size_t workerCount() const { return Workers.size(); }

  /// Tasks obtained by stealing from another worker's deque (diagnostic).
  uint64_t stealCount() const { return Steals.load(std::memory_order_relaxed); }

  /// Lifetime counters for the telemetry layer (MetricsRegistry, the
  /// REPL's ":stats"). Relaxed reads — exact once the pool is idle.
  struct PoolStats {
    uint64_t Submitted = 0;  ///< Tasks accepted (including inline serial).
    uint64_t Executed = 0;   ///< Tasks completed.
    uint64_t Steals = 0;     ///< Executed tasks obtained by stealing.
    uint64_t IdleSleeps = 0; ///< Times a worker went to sleep empty-handed.
  };
  PoolStats stats() const {
    return {Submitted.load(std::memory_order_relaxed),
            Executed.load(std::memory_order_relaxed),
            Steals.load(std::memory_order_relaxed),
            IdleSleeps.load(std::memory_order_relaxed)};
  }

private:
  struct Worker {
    std::deque<Task> Deque;
    std::mutex Mu;
  };

  void workerLoop(size_t Id);
  bool popOwn(size_t Id, Task &Out);
  bool stealOther(size_t Id, Task &Out);
  bool anyQueued();

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;
  std::atomic<size_t> NextSubmit{0};
  std::atomic<uint64_t> Pending{0}; ///< Submitted but not yet finished.
  std::atomic<uint64_t> Steals{0};
  std::atomic<uint64_t> Submitted{0};
  std::atomic<uint64_t> Executed{0};
  std::atomic<uint64_t> IdleSleeps{0};
  std::mutex SleepMu; ///< Guards the condvars' wait predicates.
  std::condition_variable WorkCv; ///< Signaled on submit and stop.
  std::condition_variable IdleCv; ///< Signaled when Pending reaches zero.
  bool Stop = false;              ///< Guarded by SleepMu.
};

/// Runs Body(0..N-1) across \p Jobs workers (inline when Jobs <= 1 or
/// N <= 1). Results keyed by index stay in deterministic serial order no
/// matter how workers interleave; Body must only touch index-private state.
void parallelFor(size_t Jobs, size_t N,
                 const std::function<void(size_t)> &Body);

} // namespace lpa

#endif // LPA_PAR_THREADPOOL_H
