//===- Groundness.cpp - Prop groundness analyzer -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "prop/Groundness.h"

#include "obs/Span.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"

#include <unordered_map>

using namespace lpa;

const PredGroundness *GroundnessResult::find(const std::string &Name,
                                             uint32_t Arity) const {
  for (const PredGroundness &P : Predicates)
    if (P.Name == Name && P.Arity == Arity)
      return &P;
  return nullptr;
}

void lpa::expandAnswerTuple(const TermStore &Store, const SymbolTable &Symbols,
                            const std::vector<TermRef> &Args,
                            TruthTable &Table) {
  // Classify each argument: fixed truth value or a variable index. Shared
  // variables receive the same index so they expand consistently.
  std::unordered_map<TermRef, size_t> VarIndex;
  struct Slot {
    bool IsVar;
    bool Value;   // When !IsVar.
    size_t Index; // When IsVar.
  };
  std::vector<Slot> Slots;
  for (TermRef A : Args) {
    TermRef D = Store.deref(A);
    if (Store.tag(D) == TermTag::Ref) {
      auto [It, _] = VarIndex.emplace(D, VarIndex.size());
      Slots.push_back({true, false, It->second});
      continue;
    }
    // Anything that is not the atom 'true' counts as false; the abstract
    // program only ever binds arguments to true/false.
    bool V = Store.tag(D) == TermTag::Atom &&
             Store.symbol(D) == Symbols.BoolTrue;
    Slots.push_back({false, V, 0});
  }

  size_t NumVars = VarIndex.size();
  assert(NumVars < 24 && "unreasonable number of free answer variables");
  for (uint64_t Mask = 0; Mask < (uint64_t(1) << NumVars); ++Mask) {
    BoolTuple Row;
    Row.reserve(Slots.size());
    for (const Slot &S : Slots)
      Row.push_back(S.IsVar ? ((Mask >> S.Index) & 1) != 0 : S.Value);
    Table.insert(std::move(Row));
  }
}

ErrorOr<GroundnessResult> GroundnessAnalyzer::analyze(std::string_view Source) {
  GroundnessResult Result;
  Stopwatch Phase;

  //--- Preprocessing: read, transform (Figure 1), load as dynamic code. ---
  ScopedSpan PreprocSpan(Opts.Trace, Opts.Metrics, "transform");
  TermStore AbsStore;
  PropTransformer Transformer(Symbols);
  auto Program = Transformer.transformText(Source, AbsStore);
  if (!Program)
    return Program.getError();

  Database AbsDB(Symbols);
  auto Loaded = AbsDB.loadProgram(AbsStore, Program->Clauses);
  if (!Loaded)
    return Loaded.getError();
  AbsDB.tableAllPredicates();
  Result.PreprocSeconds = Phase.elapsedSeconds();
  PreprocSpan.finish();

  //--- Analysis: evaluate the open call of every predicate. --------------
  Phase.restart();
  ScopedSpan EvalSpan(Opts.Trace, Opts.Metrics, "evaluate");
  Solver Engine(AbsDB, Opts.Engine);
  Engine.setObservability(Opts.Trace, Opts.Metrics);
  Engine.setSampleCursor(Opts.Cursor);
  if (Opts.AggregateModes) {
    // Section 6.2: one joined answer per subgoal. The join is the
    // pointwise least upper bound of boolean tuples: agreeing positions
    // keep their value, disagreeing ones widen to a fresh variable
    // ("either value").
    Solver::AnswerJoinFn Join = [](TermStore &TS, TermRef A,
                                   TermRef B) -> TermRef {
      TermRef DA = TS.deref(A), DB2 = TS.deref(B);
      if (TS.tag(DA) != TermTag::Struct)
        return DA; // 0-ary predicates: nothing to join.
      std::vector<TermRef> Args;
      bool Same = true;
      for (uint32_t I = 0, E = TS.arity(DA); I < E; ++I) {
        TermRef X = TS.deref(TS.arg(DA, I));
        TermRef Y = TS.deref(TS.arg(DB2, I));
        bool BothAtoms =
            TS.tag(X) == TermTag::Atom && TS.tag(Y) == TermTag::Atom;
        if (BothAtoms && TS.symbol(X) == TS.symbol(Y)) {
          Args.push_back(X);
        } else if (TS.tag(X) == TermTag::Ref) {
          Args.push_back(X); // Already "either value".
        } else {
          Args.push_back(TS.mkVar());
          Same = false;
        }
      }
      if (Same)
        return DA;
      return TS.mkStruct(TS.symbol(DA), Args);
    };
    for (PredKey P : Program->Predicates)
      Engine.setAnswerJoin(
          {Transformer.abstractSymbol(P.Sym), P.Arity}, Join);
  }
  std::vector<std::pair<PredKey, TermRef>> OpenCalls;
  for (PredKey P : Program->Predicates) {
    SymbolId AbsSym = Transformer.abstractSymbol(P.Sym);
    TermRef Call;
    if (P.Arity == 0) {
      Call = Engine.store().mkAtom(AbsSym);
    } else {
      std::vector<TermRef> Args;
      for (uint32_t I = 0; I < P.Arity; ++I)
        Args.push_back(Engine.store().mkVar());
      Call = Engine.store().mkStruct(AbsSym, Args);
    }
    OpenCalls.emplace_back(P, Call);
  }
  if (Opts.Engine.EvalWorkers > 1) {
    // Evaluate independent predicate cones in parallel first; the serial
    // loop below then runs against warm tables. The open calls are
    // variable-disjoint by construction (fresh vars per call), which is
    // exactly what primeTables needs.
    std::vector<TermRef> Seeds;
    Seeds.reserve(OpenCalls.size());
    for (auto &[Pred, Call] : OpenCalls)
      Seeds.push_back(Call);
    Engine.primeTables(Seeds);
  }
  for (auto &[Pred, Call] : OpenCalls)
    Engine.solve(Call, nullptr); // Run to completion; answers go to tables.
  Result.AnalysisSeconds = Phase.elapsedSeconds();
  EvalSpan.finish();

  // Soundness gate: depth-limit truncation poisons tables (see
  // Subgoal::Incomplete); a truncated table is not the minimal model and
  // must not be reported as one.
  if (Engine.stats().IncompleteTables) {
    if (!Opts.AllowIncomplete)
      return Diagnostic(
          "groundness analysis incomplete: depth limit truncated " +
          std::to_string(Engine.stats().IncompleteTables) +
          " table(s); raise Options::Engine.MaxDepth or set "
          "AllowIncomplete to accept a lower bound");
    Result.Incomplete = true;
  }

  //--- Collection: fold tables into groundness results. ------------------
  Phase.restart();
  ScopedSpan CollectSpan(Opts.Trace, Opts.Metrics, "collect");
  Result.TableSpaceBytes = Engine.tableSpaceBytes();
  Result.Stats = Engine.stats();
  if (Opts.Metrics)
    Engine.snapshotTableMetrics(*Opts.Metrics);
  if (Opts.Engine.RecordProvenance) {
    ProvenanceArena::CheckStats CS = Engine.checkProvenance();
    Result.JustifiedAnswers = CS.Justified;
    Result.JustificationPremises = CS.Premises;
    Result.DanglingPremises = CS.Dangling;
  }

  // Output groundness from the open call's answer table.
  std::unordered_map<SymbolId, size_t> ByAbsSym;
  for (auto &[Pred, Call] : OpenCalls) {
    PredGroundness PG;
    PG.Name = Symbols.name(Pred.Sym);
    PG.Arity = Pred.Arity;
    const Subgoal *SG = Engine.findSubgoal(Call);
    if (SG) {
      // Materialize each answer instance into a scratch store (factored
      // tables never hold whole instances; see Solver::answerInstance).
      TermStore Scratch;
      for (size_t AI = 0, AE = Engine.answerCount(*SG); AI < AE; ++AI) {
        Scratch.clear();
        TermRef Ans = Engine.answerInstance(*SG, AI, Scratch);
        std::vector<TermRef> Args;
        for (uint32_t I = 0; I < Pred.Arity; ++I)
          Args.push_back(Scratch.arg(Scratch.deref(Ans), I));
        expandAnswerTuple(Scratch, Symbols, Args, PG.SuccessSet);
      }
    }
    ByAbsSym.emplace(Transformer.abstractSymbol(Pred.Sym),
                     Result.Predicates.size());
    Result.Predicates.push_back(std::move(PG));
  }

  // Input groundness from the call table: every recorded subgoal is a call
  // pattern (left-to-right evaluation; Section 3.1 "Input and Output
  // Groundness").
  const TermStore &TS = Engine.tableStore();
  for (const Subgoal *SG : Engine.subgoals()) {
    auto It = ByAbsSym.find(SG->Pred.Sym);
    if (It == ByAbsSym.end())
      continue;
    PredGroundness &PG = Result.Predicates[It->second];
    if (SG->Pred.Arity != PG.Arity)
      continue;
    TermRef Call = TS.deref(SG->CallTerm);
    BoolTuple Pattern;
    for (uint32_t I = 0; I < PG.Arity; ++I) {
      TermRef A = TS.deref(TS.arg(Call, I));
      // An argument is a ground *input* only when the call binds it true.
      Pattern.push_back(TS.tag(A) == TermTag::Atom &&
                        TS.symbol(A) == Symbols.BoolTrue);
    }
    PG.CallPatterns.insert(std::move(Pattern));
  }

  for (PredGroundness &PG : Result.Predicates)
    PG.computeMeets();
  Result.CollectSeconds = Phase.elapsedSeconds();
  return Result;
}

ErrorOr<std::string> GroundnessAnalyzer::explain(std::string_view Source,
                                                 std::string_view Pred,
                                                 uint32_t Arity,
                                                 uint32_t Arg) {
  if (Arg >= Arity && Arity > 0)
    return Diagnostic("explain: argument index " + std::to_string(Arg) +
                      " out of range for arity " + std::to_string(Arity));

  // Re-run transform + evaluation with provenance on. The extra run keeps
  // analyze() itself zero-cost when nobody asks "why"; explain is a
  // debugging entry point, not a hot path.
  TermStore AbsStore;
  PropTransformer Transformer(Symbols);
  auto Program = Transformer.transformText(Source, AbsStore);
  if (!Program)
    return Program.getError();
  Database AbsDB(Symbols);
  auto Loaded = AbsDB.loadProgram(AbsStore, Program->Clauses);
  if (!Loaded)
    return Loaded.getError();
  AbsDB.tableAllPredicates();

  const PredKey *Target = nullptr;
  for (const PredKey &P : Program->Predicates)
    if (Symbols.name(P.Sym) == Pred && P.Arity == Arity)
      Target = &P;
  if (!Target)
    return Diagnostic("explain: unknown predicate " + std::string(Pred) + "/" +
                      std::to_string(Arity));

  Solver::Options EO = Opts.Engine;
  EO.RecordProvenance = true;
  Solver Engine(AbsDB, EO);
  SymbolId AbsSym = Transformer.abstractSymbol(Target->Sym);
  TermRef Call;
  if (Arity == 0) {
    Call = Engine.store().mkAtom(AbsSym);
  } else {
    std::vector<TermRef> Args;
    for (uint32_t I = 0; I < Arity; ++I)
      Args.push_back(Engine.store().mkVar());
    Call = Engine.store().mkStruct(AbsSym, Args);
  }
  Engine.solve(Call, nullptr);

  const Subgoal *SG = Engine.findSubgoal(Call);
  if (!SG || Engine.answerCount(*SG) == 0)
    return Diagnostic("explain: " + std::string(Pred) + "/" +
                      std::to_string(Arity) +
                      " has no abstract success (predicate never succeeds)");

  // Witness: the first answer whose Arg position is the atom `true`
  // (meaning: in this success pattern the argument is definitely ground).
  size_t Witness = SIZE_MAX;
  TermStore Scratch;
  for (size_t AI = 0, AE = Engine.answerCount(*SG); AI < AE; ++AI) {
    if (Arity == 0) {
      Witness = AI;
      break;
    }
    Scratch.clear();
    TermRef Ans = Engine.answerInstance(*SG, AI, Scratch);
    TermRef A = Scratch.deref(Scratch.arg(Scratch.deref(Ans), Arg));
    if (Scratch.tag(A) == TermTag::Atom &&
        Scratch.symbol(A) == Symbols.BoolTrue) {
      Witness = AI;
      break;
    }
  }
  if (Witness == SIZE_MAX)
    return Diagnostic("explain: no success pattern of " + std::string(Pred) +
                      "/" + std::to_string(Arity) + " grounds argument " +
                      std::to_string(Arg + 1));

  auto Tree = Engine.justifyAnswer(*SG, Witness);
  if (!Tree)
    return Diagnostic("explain: provenance recording unavailable");

  // Map abstract nodes back to the source program: strip the gp_ prefix
  // from labels, and annotate clauses as "clause i of p/n" — valid because
  // the Figure-1 transform is clause-by-clause and order-preserving.
  const std::string AbsPrefix = Transformer.abstractName("");
  auto StripPrefix = [&AbsPrefix](std::string S) {
    if (S.compare(0, AbsPrefix.size(), AbsPrefix) == 0)
      S.erase(0, AbsPrefix.size());
    return S;
  };
  auto Label = [&](const ProofNode &N) {
    const Subgoal &G = *Engine.subgoals()[N.SubgoalIdx];
    if (N.AnswerIdx >= Engine.answerCount(G))
      return StripPrefix(Engine.formatCall(G)) + " <missing answer>";
    return StripPrefix(Engine.formatAnswer(G, N.AnswerIdx));
  };
  auto ClauseLabel = [&](const ProofNode &N) {
    const Subgoal &G = *Engine.subgoals()[N.SubgoalIdx];
    std::string Name = StripPrefix(Symbols.name(G.Pred.Sym));
    return "clause " + std::to_string(N.ClauseIdx + 1) + " of " + Name + "/" +
           std::to_string(G.Pred.Arity);
  };

  std::string Out = "why " + std::string(Pred) + "/" + std::to_string(Arity);
  if (Arity > 0)
    Out += " can be ground in argument " + std::to_string(Arg + 1);
  Out += " on success (witness: answer " + std::to_string(Witness + 1) +
         " of " + std::to_string(Engine.answerCount(*SG)) + "):\n";
  Out += renderProofTree(*Tree, Label, ClauseLabel);
  return Out;
}

ErrorOr<double> GroundnessAnalyzer::measureCompileSeconds(
    std::string_view Source) {
  Stopwatch Watch;
  Database DB(Symbols);
  auto R = DB.consult(Source);
  if (!R)
    return R.getError();
  return Watch.elapsedSeconds();
}
