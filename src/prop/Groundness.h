//===- Groundness.h - Prop groundness analyzer ------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete groundness analysis pipeline of Section 4.1, with the three
/// phases of Section 4 timed separately:
///
///   preprocessing — read the program, apply the Figure-1 transformation,
///                   and load ("assert") the abstract clauses;
///   analysis      — tabled evaluation of the open call gp_p(X1..Xn) for
///                   every predicate p of the program;
///   collection    — fold the call/answer tables into input/output
///                   groundness (truth tables and per-argument modes).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_PROP_GROUNDNESS_H
#define LPA_PROP_GROUNDNESS_H

#include "engine/Solver.h"
#include "prop/PropResult.h"
#include "prop/PropTransform.h"

#include <memory>
#include <string>
#include <vector>

namespace lpa {

/// Full result of analyzing one program.
struct GroundnessResult {
  /// Per-predicate groundness, in definition order.
  std::vector<PredGroundness> Predicates;

  /// \name Phase timings (seconds), the paper's Table 1 columns.
  /// @{
  double PreprocSeconds = 0;
  double AnalysisSeconds = 0;
  double CollectSeconds = 0;
  double totalSeconds() const {
    return PreprocSeconds + AnalysisSeconds + CollectSeconds;
  }
  /// @}

  /// Table space used by the tabled evaluation (bytes).
  size_t TableSpaceBytes = 0;

  /// Engine counters for the analysis run.
  EvalStats Stats;

  /// True when the depth limit truncated tabled evaluation and the caller
  /// opted into Options::AllowIncomplete: SuccessSet/CallPatterns are then
  /// possibly-strict subsets of the minimal model, not exact results.
  bool Incomplete = false;

  /// \name Justification statistics (Options::Engine.RecordProvenance).
  /// Filled by validating every recorded justification against the answer
  /// tables after evaluation; all zero when recording was off.
  /// @{
  uint64_t JustifiedAnswers = 0;
  uint64_t JustificationPremises = 0;
  /// Premises that did not resolve to a live tabled answer (0 = valid).
  uint64_t DanglingPremises = 0;
  /// @}

  /// Convenience lookup by predicate name/arity; nullptr when absent.
  const PredGroundness *find(const std::string &Name, uint32_t Arity) const;
};

/// Runs Prop-domain groundness analysis using the tabled engine.
class GroundnessAnalyzer {
public:
  struct Options {
    /// Section 6.2 aggregation: keep one lattice-joined answer per
    /// subgoal (pointwise join of boolean tuples, unknowns widening to
    /// free variables) instead of the full truth table. Coarser — the
    /// result is the classical mode domain rather than Prop — but the
    /// tables shrink to constant size per call pattern. SuccessSet then
    /// holds the expansion of the single summary tuple.
    bool AggregateModes = false;

    /// Engine tunables forwarded to the tabled evaluation (depth limit,
    /// table representation, supplementary tabling).
    Solver::Options Engine;

    /// Accept depth-limit-truncated tables: instead of failing, analyze()
    /// succeeds with Result.Incomplete set (explicit warning mode). Off by
    /// default — silently reporting a truncated answer set as the minimal
    /// model is the soundness bug this flag guards.
    bool AllowIncomplete = false;

    /// Observability (both optional, caller-owned): the tracer receives
    /// SLG events plus transform/evaluate/collect phase spans; the
    /// registry receives per-predicate counters, phase timings, and a
    /// table snapshot after evaluation.
    Tracer *Trace = nullptr;
    MetricsRegistry *Metrics = nullptr;

    /// Sampling-profiler cursor forwarded to the internal Solver (optional,
    /// caller-owned; see Solver::setSampleCursor). A background Sampler
    /// reading it sees the abstract evaluation's producer stack.
    EvalCursor *Cursor = nullptr;
  };

  explicit GroundnessAnalyzer(SymbolTable &Symbols)
      : GroundnessAnalyzer(Symbols, Options()) {}
  GroundnessAnalyzer(SymbolTable &Symbols, Options Opts)
      : Symbols(Symbols), Opts(Opts) {}

  /// Analyzes Prolog source text end to end.
  ErrorOr<GroundnessResult> analyze(std::string_view Source);

  /// Explains WHY argument \p Arg (0-based) of \p Pred/\p Arity can be
  /// ground on success: re-runs the abstract evaluation with provenance
  /// recording, picks a witnessing answer of the open call whose Arg is
  /// `true`, and renders its justification as an indented proof tree over
  /// the *source* program — the Figure-1 transform is clause-by-clause, so
  /// abstract clause i of gp_p is source clause i of p, and node labels
  /// strip the gp_ prefix. Enumerative Prop domain only (AggregateModes is
  /// ignored; joined answers have no per-derivation justification worth
  /// printing). Fails when the predicate is unknown or no answer grounds
  /// the argument.
  ErrorOr<std::string> explain(std::string_view Source, std::string_view Pred,
                               uint32_t Arity, uint32_t Arg);

  /// Measures the "compilation" baseline for the program: time to read and
  /// load the *concrete* program with no analysis (the denominator of
  /// Table 1's "Compile time increase" column).
  ErrorOr<double> measureCompileSeconds(std::string_view Source);

private:
  SymbolTable &Symbols;
  Options Opts;
};

/// Expands one answer tuple (which may contain unbound variables, each
/// standing for both truth values) into explicit truth-table rows added to
/// \p Table. Shared variables expand consistently.
void expandAnswerTuple(const TermStore &Store, const SymbolTable &Symbols,
                       const std::vector<TermRef> &Args, TruthTable &Table);

} // namespace lpa

#endif // LPA_PROP_GROUNDNESS_H
