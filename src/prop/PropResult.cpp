//===- PropResult.cpp - Groundness analysis results --------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "prop/PropResult.h"

using namespace lpa;

void PredGroundness::computeMeets() {
  GroundOnSuccess.assign(Arity, 1);
  CanSucceed = !SuccessSet.empty();
  if (SuccessSet.empty())
    GroundOnSuccess.assign(Arity, 0);
  for (const BoolTuple &Row : SuccessSet)
    for (uint32_t I = 0; I < Arity; ++I)
      if (!Row[I])
        GroundOnSuccess[I] = 0;

  GroundOnCall.assign(Arity, CallPatterns.empty() ? 0 : 1);
  for (const BoolTuple &Row : CallPatterns)
    for (uint32_t I = 0; I < Arity; ++I)
      if (!Row[I])
        GroundOnCall[I] = 0;
}

std::string PredGroundness::modeString() const {
  auto Render = [&](const std::vector<uint8_t> &Flags) {
    std::string Out = Name + "(";
    for (uint32_t I = 0; I < Arity; ++I) {
      if (I)
        Out += ",";
      Out += (I < Flags.size() && Flags[I]) ? "g" : "?";
    }
    Out += ")";
    return Out;
  };
  return Render(GroundOnSuccess) + " <- " + Render(GroundOnCall);
}

std::string lpa::formatTruthTable(const TruthTable &T) {
  std::string Out = "{";
  bool FirstRow = true;
  for (const BoolTuple &Row : T) {
    if (!FirstRow)
      Out += ",";
    FirstRow = false;
    Out += "(";
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        Out += ",";
      Out += Row[I] ? "t" : "f";
    }
    Out += ")";
  }
  Out += "}";
  return Out;
}
