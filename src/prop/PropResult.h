//===- PropResult.h - Groundness analysis results ---------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result representation shared by the tabled-engine groundness analyzer
/// (src/prop) and the GAIA-like special-purpose baseline (src/baseline), so
/// Table 2's "the results obtained on the two systems are identical" claim
/// can be checked structurally.
///
/// The Prop domain represents boolean functions over argument positions by
/// their truth tables (sets of boolean tuples); see Section 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_PROP_PROPRESULT_H
#define LPA_PROP_PROPRESULT_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace lpa {

/// One row of a truth table: one boolean per argument position.
using BoolTuple = std::vector<uint8_t>;

/// Truth table = set of satisfying rows, ordered for canonical comparison.
using TruthTable = std::set<BoolTuple>;

/// Groundness information for one predicate of the analyzed program.
struct PredGroundness {
  std::string Name;
  uint32_t Arity = 0;

  /// Output groundness: the success set of the abstract predicate — the
  /// truth table of the Prop formula describing which argument groundness
  /// combinations are possible on success (Figure 2's example: for append
  /// this is the table of x /\ y <-> z).
  TruthTable SuccessSet;

  /// Input groundness: the distinct call patterns recorded in the call
  /// table. 1 = called ground, 0 = called possibly nonground. With the
  /// tabled engine these come free from the subgoal table (Section 3.1).
  TruthTable CallPatterns;

  /// Per-argument meet over SuccessSet: argument is ground in every
  /// solution.
  std::vector<uint8_t> GroundOnSuccess;

  /// Per-argument meet over CallPatterns: argument is ground at every call.
  std::vector<uint8_t> GroundOnCall;

  /// False when the abstract predicate has an empty success set (the
  /// concrete predicate can never succeed).
  bool CanSucceed = false;

  /// Renders e.g. "ap(g,g,g) <- ap(g,g,?)" mode summaries.
  std::string modeString() const;

  /// Recomputes the per-argument meets from the truth tables.
  void computeMeets();

  bool operator==(const PredGroundness &O) const {
    return Name == O.Name && Arity == O.Arity && SuccessSet == O.SuccessSet;
  }
};

/// Renders a truth table like {(t,f,t),(f,f,f)} for diagnostics and tests.
std::string formatTruthTable(const TruthTable &T);

} // namespace lpa

#endif // LPA_PROP_PROPRESULT_H
