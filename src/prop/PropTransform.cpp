//===- PropTransform.cpp - Figure 1: Prop abstraction ------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "prop/PropTransform.h"

#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <algorithm>

using namespace lpa;

SymbolId PropTransformer::abstractSymbol(SymbolId Sym) {
  return Symbols.intern(abstractName(Symbols.name(Sym)));
}

void PropTransformer::collectVars(const TermStore &Src, TermRef T,
                                  std::vector<TermRef> &Vars) {
  T = Src.deref(T);
  switch (Src.tag(T)) {
  case TermTag::Ref:
    if (std::find(Vars.begin(), Vars.end(), T) == Vars.end())
      Vars.push_back(T);
    return;
  case TermTag::Struct:
    for (uint32_t I = 0, E = Src.arity(T); I < E; ++I)
      collectVars(Src, Src.arg(T, I), Vars);
    return;
  case TermTag::Atom:
  case TermTag::Int:
    return;
  }
}

TermRef PropTransformer::translateArg(const TermStore &Src, TermRef T,
                                      TermStore &Dst, VarRenamingMap &VarMap,
                                      std::vector<TermRef> &Goals) {
  T = Src.deref(T);
  auto Tau = [&](TermRef V) {
    auto It = VarMap.find(V);
    if (It == VarMap.end())
      It = VarMap.emplace(V, Dst.mkVar()).first;
    return It->second;
  };

  // A bare variable needs no iff: its abstract value *is* tau(x).
  if (Src.tag(T) == TermTag::Ref)
    return Tau(T);

  // S[t]a = iff(a, a1..ak) over Vars(t). Ground terms yield iff(a),
  // forcing a = true (Figure 2: iff(X1) for the [] argument).
  std::vector<TermRef> Vars;
  collectVars(Src, T, Vars);
  TermRef A = Dst.mkVar();
  std::vector<TermRef> IffArgs{A};
  for (TermRef V : Vars)
    IffArgs.push_back(Tau(V));
  Goals.push_back(Dst.mkStruct(Symbols.Iff, IffArgs));
  return A;
}

void PropTransformer::emitGroundAll(const TermStore &Src, TermRef T,
                                    TermStore &Dst, VarRenamingMap &VarMap,
                                    std::vector<TermRef> &Goals) {
  std::vector<TermRef> Vars;
  collectVars(Src, T, Vars);
  for (TermRef V : Vars) {
    auto It = VarMap.find(V);
    if (It == VarMap.end())
      It = VarMap.emplace(V, Dst.mkVar()).first;
    // iff(Tv): Tv <-> empty conjunction = true.
    Goals.push_back(
        Dst.mkStruct(Symbols.Iff, std::span<const TermRef>(&It->second, 1)));
  }
}

ErrorOr<bool> PropTransformer::translateGoal(const TermStore &Src,
                                             TermRef Goal, TermStore &Dst,
                                             VarRenamingMap &VarMap,
                                             std::vector<TermRef> &Goals) {
  TermRef G = Src.deref(Goal);
  TermTag Tag = Src.tag(G);
  if (Tag == TermTag::Ref)
    return Diagnostic("cannot abstract a variable goal (call/N metacall)");
  if (Tag == TermTag::Int)
    return Diagnostic("integer used as a goal");

  SymbolId Sym = Src.symbol(G);
  uint32_t Arity = Src.arity(G);
  const std::string &Name = Symbols.name(Sym);

  // Control and builtins, abstracted per Section 3.1's treatment.
  if (Arity == 0) {
    if (Name == "true" || Name == "!" || Name == "nl")
      return true; // No groundness effect.
    if (Name == "fail" || Name == "false") {
      Goals.push_back(Dst.mkAtom(Symbols.Fail));
      return true;
    }
    // 0-ary user predicate.
    Goals.push_back(Dst.mkAtom(abstractSymbol(Sym)));
    return true;
  }

  if (Arity == 2 && (Name == "," )) {
    auto L = translateGoal(Src, Src.arg(G, 0), Dst, VarMap, Goals);
    if (!L)
      return L;
    return translateGoal(Src, Src.arg(G, 1), Dst, VarMap, Goals);
  }
  if (Arity == 2 && (Name == ";" || Name == "->"))
    return Diagnostic("disjunction/if-then-else not supported by the Prop "
                      "transformer; normalize the program into pure clauses");

  // L[x = t] = S[t]Tx. General t1 = t2 goals are decomposed structurally,
  // mirroring concrete unification: matching compound terms equate their
  // arguments pairwise, clashing functors abstract to fail.
  if (Arity == 2 && Name == "=") {
    std::vector<std::pair<TermRef, TermRef>> Work{
        {Src.arg(G, 0), Src.arg(G, 1)}};
    while (!Work.empty()) {
      auto [LT, RT] = Work.back();
      Work.pop_back();
      LT = Src.deref(LT);
      RT = Src.deref(RT);
      TermTag TL = Src.tag(LT), TR = Src.tag(RT);
      if (TL == TermTag::Ref || TR == TermTag::Ref) {
        if (TL != TermTag::Ref)
          std::swap(LT, RT);
        // S[t]Tx: Tx <-> /\ Vars(t).
        TermRef A = translateArg(Src, LT, Dst, VarMap, Goals);
        TermRef B = translateArg(Src, RT, Dst, VarMap, Goals);
        if (A != B)
          Goals.push_back(Dst.mkStruct2(Symbols.Iff, A, B));
        continue;
      }
      if (TL != TR ||
          (TL == TermTag::Atom && Src.symbol(LT) != Src.symbol(RT)) ||
          (TL == TermTag::Int && Src.intValue(LT) != Src.intValue(RT)) ||
          (TL == TermTag::Struct && (Src.symbol(LT) != Src.symbol(RT) ||
                                     Src.arity(LT) != Src.arity(RT)))) {
        Goals.push_back(Dst.mkAtom(Symbols.Fail));
        return true;
      }
      if (TL == TermTag::Struct)
        for (uint32_t I = 0, E = Src.arity(LT); I < E; ++I)
          Work.push_back({Src.arg(LT, I), Src.arg(RT, I)});
    }
    return true;
  }

  // is/2 and arithmetic comparisons ground every variable involved.
  if ((Arity == 2 &&
       (Name == "is" || Name == "<" || Name == ">" || Name == "=<" ||
        Name == ">=" || Name == "=:=" || Name == "=\\=")) ||
      (Arity == 3 && Name == "between")) {
    emitGroundAll(Src, G, Dst, VarMap, Goals);
    return true;
  }

  // Type tests that imply groundness of their argument.
  if (Arity == 1 && (Name == "atom" || Name == "integer" ||
                     Name == "atomic" || Name == "number" ||
                     Name == "ground")) {
    emitGroundAll(Src, G, Dst, VarMap, Goals);
    return true;
  }

  // Tests with no groundness consequence. (\+ G succeeds without binding
  // anything, so 'true' is its sound abstraction; likewise var/nonvar/
  // compound and term inspection.)
  if ((Arity == 1 && (Name == "var" || Name == "nonvar" ||
                      Name == "compound" || Name == "\\+" || Name == "not" ||
                      Name == "write" || Name == "print")) ||
      (Arity == 2 && (Name == "==" || Name == "\\==" || Name == "\\=" ||
                      Name == "@<" || Name == "@>" || Name == "@=<" ||
                      Name == "@>=")))
    return true;

  // functor(T, F, N): on success F and N are ground.
  if (Arity == 3 && Name == "functor") {
    emitGroundAll(Src, Src.arg(G, 1), Dst, VarMap, Goals);
    emitGroundAll(Src, Src.arg(G, 2), Dst, VarMap, Goals);
    return true;
  }
  // arg/3 and =../2: sound as 'true' (no variable is guaranteed ground).
  if ((Arity == 3 && Name == "arg") || (Arity == 2 && Name == "=.."))
    return true;

  // User-defined predicate: L[q(t1..tk)] = S[ti]ai..., gp_q(a1..ak).
  std::vector<TermRef> AbsArgs;
  for (uint32_t I = 0; I < Arity; ++I)
    AbsArgs.push_back(translateArg(Src, Src.arg(G, I), Dst, VarMap, Goals));
  Goals.push_back(Dst.mkStruct(abstractSymbol(Sym), AbsArgs));
  return true;
}

ErrorOr<bool> PropTransformer::transformClause(const TermStore &Src,
                                               TermRef Clause, TermStore &Dst,
                                               PropProgram &Out) {
  TermRef D = Src.deref(Clause);

  // Skip directives.
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Neck &&
      Src.arity(D) == 1)
    return true;

  TermRef Head = D;
  TermRef Body = InvalidTerm;
  if (Src.tag(D) == TermTag::Struct && Src.symbol(D) == Symbols.Neck &&
      Src.arity(D) == 2) {
    Head = Src.deref(Src.arg(D, 0));
    Body = Src.arg(D, 1);
  }
  TermTag HT = Src.tag(Head);
  if (HT != TermTag::Atom && HT != TermTag::Struct)
    return Diagnostic("clause head must be an atom or compound term");

  PredKey Concrete{Src.symbol(Head), Src.arity(Head)};
  if (std::find_if(Out.Predicates.begin(), Out.Predicates.end(),
                   [&](PredKey K) { return K == Concrete; }) ==
      Out.Predicates.end())
    Out.Predicates.push_back(Concrete);

  VarRenamingMap VarMap;
  std::vector<TermRef> Goals;

  // Abstract head.
  TermRef AbsHead;
  SymbolId AbsSym = abstractSymbol(Concrete.Sym);
  if (Concrete.Arity == 0) {
    AbsHead = Dst.mkAtom(AbsSym);
  } else {
    std::vector<TermRef> AbsArgs;
    for (uint32_t I = 0; I < Concrete.Arity; ++I)
      AbsArgs.push_back(
          translateArg(Src, Src.arg(Head, I), Dst, VarMap, Goals));
    AbsHead = Dst.mkStruct(AbsSym, AbsArgs);
  }

  // Abstract body literals.
  if (Body != InvalidTerm) {
    auto R = translateGoal(Src, Body, Dst, VarMap, Goals);
    if (!R)
      return R;
  }

  if (Goals.empty()) {
    Out.Clauses.push_back(AbsHead);
    return true;
  }
  TermRef Conj = Goals.back();
  for (size_t I = Goals.size() - 1; I-- > 0;)
    Conj = Dst.mkStruct2(Symbols.Comma, Goals[I], Conj);
  Out.Clauses.push_back(Dst.mkStruct2(Symbols.Neck, AbsHead, Conj));
  return true;
}

ErrorOr<PropProgram> PropTransformer::transform(
    const TermStore &Src, const std::vector<TermRef> &Clauses,
    TermStore &Dst) {
  PropProgram Out;
  for (TermRef C : Clauses) {
    auto R = transformClause(Src, C, Dst, Out);
    if (!R)
      return R.getError();
  }
  return Out;
}

ErrorOr<PropProgram> PropTransformer::transformText(std::string_view Source,
                                                    TermStore &Dst) {
  TermStore Scratch;
  auto Clauses = Parser::parseProgram(Symbols, Scratch, Source);
  if (!Clauses)
    return Clauses.getError();
  return transform(Scratch, *Clauses, Dst);
}
