//===- PropTransform.h - Figure 1: Prop abstraction -------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The source-to-source transformation of Figure 1: a concrete logic
/// program P becomes an abstract program P# over the Prop domain whose
/// minimal model encodes the groundness of P's predicates.
///
///   P[p(t1..tn) :- c1..cm]  =  gp_p(X1..Xn) :- S[t1]X1,..,S[tn]Xn,
///                                              L[c1],..,L[cm].
///   S[t]a                   =  iff(a, a1..ak),  {a1..ak} = Vars(t)
///   L[q(t1..tk)]            =  S[t1]a1,..,S[tk]ak, gp_q(a1..ak)
///   L[x = t]                =  S[t]Tx
///
/// Builtins are abstracted soundly: is/2 and arithmetic comparisons ground
/// every variable they touch; type tests atom/integer/atomic ground their
/// argument; negation, cut and var/nonvar contribute nothing.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_PROP_PROPTRANSFORM_H
#define LPA_PROP_PROPTRANSFORM_H

#include "engine/Database.h"
#include "support/Error.h"
#include "term/Symbol.h"
#include "term/TermStore.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lpa {

/// Output of transforming one program.
struct PropProgram {
  /// Abstract clause terms (in the store passed to the transformer).
  std::vector<TermRef> Clauses;
  /// Predicates of the *concrete* program, in definition order.
  std::vector<PredKey> Predicates;
};

/// Performs the Figure-1 transformation.
class PropTransformer {
public:
  /// Per-clause renaming from source variables to abstract variables (tau).
  using VarRenamingMap = std::unordered_map<TermRef, TermRef>;

  explicit PropTransformer(SymbolTable &Symbols) : Symbols(Symbols) {}

  /// Transforms all clauses (terms in \p Src) into abstract clauses built
  /// in \p Dst. Directives in the input are skipped.
  ErrorOr<PropProgram> transform(const TermStore &Src,
                                 const std::vector<TermRef> &Clauses,
                                 TermStore &Dst);

  /// Parses \p Source and transforms it.
  ErrorOr<PropProgram> transformText(std::string_view Source, TermStore &Dst);

  /// Name of the abstract counterpart of predicate \p Name ("gp_" prefix,
  /// following Figure 2's gp_ap).
  std::string abstractName(const std::string &Name) const {
    return "gp_" + Name;
  }

  /// Abstract predicate symbol for concrete symbol \p Sym.
  SymbolId abstractSymbol(SymbolId Sym);

private:
  ErrorOr<bool> transformClause(const TermStore &Src, TermRef Clause,
                                TermStore &Dst, PropProgram &Out);
  /// S[t]a: returns the abstract argument for source term \p T, emitting
  /// iff goals into \p Goals. \p VarMap is the per-clause tau renaming.
  TermRef translateArg(const TermStore &Src, TermRef T, TermStore &Dst,
                       VarRenamingMap &VarMap, std::vector<TermRef> &Goals);
  /// L[c]: translates one body literal.
  ErrorOr<bool> translateGoal(const TermStore &Src, TermRef Goal,
                              TermStore &Dst, VarRenamingMap &VarMap,
                              std::vector<TermRef> &Goals);
  /// Emits iff(Tv) ("v is ground") for every variable of \p T.
  void emitGroundAll(const TermStore &Src, TermRef T, TermStore &Dst,
                     VarRenamingMap &VarMap, std::vector<TermRef> &Goals);

  /// Collects the distinct variables of \p T in first-occurrence order.
  static void collectVars(const TermStore &Src, TermRef T,
                          std::vector<TermRef> &Vars);

  SymbolTable &Symbols;
};

} // namespace lpa

#endif // LPA_PROP_PROPTRANSFORM_H
