//===- Lexer.cpp - Prolog tokenizer ----------------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "reader/Lexer.h"

#include <cctype>

using namespace lpa;

bool lpa::isSymbolChar(char C) {
  switch (C) {
  case '+': case '-': case '*': case '/': case '\\': case '^':
  case '<': case '>': case '=': case '~': case ':': case '.':
  case '?': case '@': case '#': case '&': case '$':
    return true;
  default:
    return false;
  }
}

char Lexer::advance() {
  char C = peek();
  ++Offset;
  if (C == '\n') {
    ++Line;
    LineStart = Offset;
  }
  return C;
}

bool Lexer::skipLayout() {
  bool Skipped = false;
  while (true) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      Skipped = true;
      continue;
    }
    if (C == '%') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      Skipped = true;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0')
        advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
      Skipped = true;
      continue;
    }
    return Skipped;
  }
}

Token Lexer::make(TokenKind Kind, std::string TokText) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(TokText);
  T.Pos = pos();
  return T;
}

Token Lexer::lexQuoted(char Quote) {
  Token T = make(Quote == '\'' ? TokenKind::Atom : TokenKind::Str);
  advance(); // Opening quote.
  std::string Body;
  while (true) {
    char C = peek();
    if (C == '\0') {
      T.Kind = TokenKind::Error;
      T.Text = "unterminated quoted token";
      return T;
    }
    if (C == Quote) {
      advance();
      if (peek() == Quote) { // Doubled quote = literal quote.
        Body += Quote;
        advance();
        continue;
      }
      break;
    }
    if (C == '\\') {
      advance();
      char E = advance();
      switch (E) {
      case 'n': Body += '\n'; break;
      case 't': Body += '\t'; break;
      case 'r': Body += '\r'; break;
      case 'a': Body += '\a'; break;
      case 'b': Body += '\b'; break;
      case 'f': Body += '\f'; break;
      case 'v': Body += '\v'; break;
      case '0': Body += '\0'; break;
      default: Body += E; break;
      }
      continue;
    }
    Body += advance();
  }
  T.Text = std::move(Body);
  return T;
}

Token Lexer::next() {
  bool Layout = skipLayout();
  char C = peek();
  Token T;

  if (C == '\0') {
    T = make(TokenKind::EndOfFile);
  } else if (std::isdigit(static_cast<unsigned char>(C))) {
    T = make(TokenKind::Int);
    std::string Digits;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
    // 0'c character-code syntax.
    if (Digits == "0" && peek() == '\'' && peek(1) != '\0') {
      advance();
      char Code = advance();
      if (Code == '\\') {
        char E = advance();
        switch (E) {
        case 'n': Code = '\n'; break;
        case 't': Code = '\t'; break;
        default: Code = E; break;
        }
      }
      T.IntValue = static_cast<unsigned char>(Code);
      T.Text = std::to_string(T.IntValue);
    } else {
      T.IntValue = std::stoll(Digits);
      T.Text = std::move(Digits);
    }
  } else if (C == '_' || std::isupper(static_cast<unsigned char>(C))) {
    T = make(TokenKind::Var);
    std::string Name;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Name += advance();
    T.Text = std::move(Name);
  } else if (std::islower(static_cast<unsigned char>(C))) {
    T = make(TokenKind::Atom);
    std::string Name;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Name += advance();
    T.Text = std::move(Name);
  } else if (C == '\'') {
    T = lexQuoted('\'');
  } else if (C == '"') {
    T = lexQuoted('"');
  } else {
    switch (C) {
    case '(': advance(); T = make(TokenKind::LParen, "("); break;
    case ')': advance(); T = make(TokenKind::RParen, ")"); break;
    case '[': advance(); T = make(TokenKind::LBracket, "["); break;
    case ']': advance(); T = make(TokenKind::RBracket, "]"); break;
    case '{': advance(); T = make(TokenKind::Atom, "{}"); break; // Rare; "{}"
    case '}': advance(); T = make(TokenKind::Atom, "}"); break;
    case ',': advance(); T = make(TokenKind::Comma, ","); break;
    case '|': advance(); T = make(TokenKind::Bar, "|"); break;
    case '!': advance(); T = make(TokenKind::Atom, "!"); break;
    case ';': advance(); T = make(TokenKind::Atom, ";"); break;
    default:
      if (isSymbolChar(C)) {
        // A '.' followed by layout or EOF terminates a clause.
        if (C == '.') {
          char After = peek(1);
          if (After == '\0' ||
              std::isspace(static_cast<unsigned char>(After)) ||
              After == '%') {
            advance();
            T = make(TokenKind::End, ".");
            break;
          }
        }
        T = make(TokenKind::Atom);
        std::string Name;
        while (isSymbolChar(peek()))
          Name += advance();
        T.Text = std::move(Name);
      } else {
        T = make(TokenKind::Error,
                 std::string("unexpected character '") + C + "'");
        advance();
      }
      break;
    }
  }

  T.PrecededByLayout = Layout;
  return T;
}
