//===- Lexer.h - Prolog tokenizer -------------------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Prolog subset the analyzers read: named/anonymous
/// variables, integers, plain/quoted/symbolic atoms, punctuation, strings,
/// %-comments and /* */ comments, and the clause terminator "." (a full
/// stop followed by layout or end of input).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_READER_LEXER_H
#define LPA_READER_LEXER_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace lpa {

/// Kinds of Prolog tokens.
enum class TokenKind : uint8_t {
  Atom,      ///< foo, 'quoted atom', + - =.. etc.
  Var,       ///< X, _Foo, _
  Int,       ///< 42
  Str,       ///< "abc" (reads as a code list)
  LParen,    ///< (
  RParen,    ///< )
  LBracket,  ///< [
  RBracket,  ///< ]
  Comma,     ///< ,
  Bar,       ///< |
  End,       ///< . followed by layout (clause terminator)
  EndOfFile, ///< end of input
  Error,     ///< lexical error; Text holds the message
};

/// One token with its text and source position.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;          ///< Atom/Var name, digits, string body.
  int64_t IntValue = 0;      ///< For Int tokens.
  SourcePos Pos;             ///< Start position.
  bool PrecededByLayout = true; ///< Whitespace/comment before this token?
};

/// Produces Tokens from a source buffer, one at a time.
class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  /// Scans and returns the next token.
  Token next();

  /// Current position (for diagnostics).
  SourcePos pos() const { return {Line, column()}; }

private:
  char peek(size_t Ahead = 0) const {
    return Offset + Ahead < Text.size() ? Text[Offset + Ahead] : '\0';
  }
  char advance();
  bool skipLayout(); ///< \returns true if any layout was skipped.
  unsigned column() const {
    return static_cast<unsigned>(Offset - LineStart + 1);
  }
  Token make(TokenKind Kind, std::string TokText = "");
  Token lexQuoted(char Quote);

  std::string_view Text;
  size_t Offset = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
};

/// \returns true if \p C may appear in a symbolic atom like ":-" or "=..".
bool isSymbolChar(char C);

} // namespace lpa

#endif // LPA_READER_LEXER_H
