//===- OpTable.cpp - Prolog operator table ---------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "reader/OpTable.h"

using namespace lpa;

OpTable::OpTable() {
  add(":-", 1200, OpType::XFX);
  add("-->", 1200, OpType::XFX);
  add(":-", 1200, OpType::FX);
  add("?-", 1200, OpType::FX);
  // Declaration operators (XSB-style): ":- table p/2." etc.
  add("table", 1150, OpType::FX);
  add("dynamic", 1150, OpType::FX);
  add("discontiguous", 1150, OpType::FX);
  add("data", 1150, OpType::FX); // FL constructor declarations.
  add(";", 1100, OpType::XFY);
  add("->", 1050, OpType::XFY);
  add(",", 1000, OpType::XFY);
  add("\\+", 900, OpType::FY);
  add("not", 900, OpType::FY);

  for (const char *Cmp : {"=", "\\=", "==", "\\==", "is", "=..", "=:=", "=\\=",
                          "<", ">", "=<", ">=", "@<", "@>", "@=<", "@>="})
    add(Cmp, 700, OpType::XFX);

  add("+", 500, OpType::YFX);
  add("-", 500, OpType::YFX);
  add("/\\", 500, OpType::YFX);
  add("\\/", 500, OpType::YFX);
  add("xor", 500, OpType::YFX);

  add("*", 400, OpType::YFX);
  add("/", 400, OpType::YFX);
  add("//", 400, OpType::YFX);
  add("mod", 400, OpType::YFX);
  add("rem", 400, OpType::YFX);
  add("<<", 400, OpType::YFX);
  add(">>", 400, OpType::YFX);

  add("**", 200, OpType::XFX);
  add("^", 200, OpType::XFY);
  add("-", 200, OpType::FY);
  add("+", 200, OpType::FY);
  add("\\", 200, OpType::FY);
}

void OpTable::add(std::string_view Name, int Priority, OpType Type) {
  OpDef Def{Priority, Type};
  if (Type == OpType::FY || Type == OpType::FX)
    Prefix[std::string(Name)] = Def;
  else
    Infix[std::string(Name)] = Def;
}

std::optional<OpDef> OpTable::infix(std::string_view Name) const {
  auto It = Infix.find(std::string(Name));
  if (It == Infix.end())
    return std::nullopt;
  return It->second;
}

std::optional<OpDef> OpTable::prefix(std::string_view Name) const {
  auto It = Prefix.find(std::string(Name));
  if (It == Prefix.end())
    return std::nullopt;
  return It->second;
}
