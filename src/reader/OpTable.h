//===- OpTable.h - Prolog operator table ------------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard operator table (the subset the benchmark corpus needs).
/// Priorities and types follow ISO Prolog: xfx/xfy/yfx infix, fy/fx prefix.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_READER_OPTABLE_H
#define LPA_READER_OPTABLE_H

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lpa {

/// Operator fixity classes.
enum class OpType : uint8_t { XFX, XFY, YFX, FY, FX };

/// One operator definition.
struct OpDef {
  int Priority;
  OpType Type;
};

/// Maps operator names to their prefix and/or infix definitions.
class OpTable {
public:
  /// Builds the standard table.
  OpTable();

  /// \returns the infix definition of \p Name, if any.
  std::optional<OpDef> infix(std::string_view Name) const;

  /// \returns the prefix definition of \p Name, if any.
  std::optional<OpDef> prefix(std::string_view Name) const;

  /// Registers or replaces an operator (op/3-style extension point).
  void add(std::string_view Name, int Priority, OpType Type);

private:
  std::unordered_map<std::string, OpDef> Infix;
  std::unordered_map<std::string, OpDef> Prefix;
};

} // namespace lpa

#endif // LPA_READER_OPTABLE_H
