//===- Parser.cpp - Prolog reader ------------------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "reader/Parser.h"

using namespace lpa;

Parser::Parser(SymbolTable &Symbols, TermStore &Store, std::string_view Text)
    : Symbols(Symbols), Store(Store), Lex(Text) {
  Cur = Lex.next();
}

void Parser::bump() { Cur = Lex.next(); }

Diagnostic Parser::errorHere(const std::string &Message) const {
  return Diagnostic(Message, Cur.Pos);
}

bool Parser::tokenCanStartTerm(const Token &T) const {
  switch (T.Kind) {
  case TokenKind::Atom:
  case TokenKind::Var:
  case TokenKind::Int:
  case TokenKind::Str:
  case TokenKind::LParen:
  case TokenKind::LBracket:
    return true;
  default:
    return false;
  }
}

TermRef Parser::internVar(const std::string &Name) {
  if (Name == "_") {
    TermRef V = Store.mkVar();
    return V; // Every '_' is a fresh variable.
  }
  auto It = VarMap.find(Name);
  if (It != VarMap.end())
    return It->second;
  TermRef V = Store.mkVar();
  VarMap.emplace(Name, V);
  ClauseVars.emplace_back(Name, V);
  return V;
}

ErrorOr<TermRef> Parser::nextClause() {
  VarMap.clear();
  ClauseVars.clear();
  if (Cur.Kind == TokenKind::EndOfFile)
    return InvalidTerm;
  auto Term = parseExpr(1200);
  if (!Term)
    return Term.getError();
  if (Cur.Kind != TokenKind::End)
    return errorHere("expected '.' at end of clause");
  bump();
  return *Term;
}

ErrorOr<TermRef> Parser::parseExpr(int MaxPrec) {
  auto Left = parseLeft(MaxPrec);
  if (!Left)
    return Left.getError();
  return Left->Term;
}

ErrorOr<Parser::Parsed> Parser::parseLeft(int MaxPrec) {
  auto LeftOr = parsePrimary();
  if (!LeftOr)
    return LeftOr.getError();
  Parsed Left = *LeftOr;

  while (true) {
    // Identify a candidate infix operator at Cur.
    std::string OpName;
    if (Cur.Kind == TokenKind::Atom)
      OpName = Cur.Text;
    else if (Cur.Kind == TokenKind::Comma)
      OpName = ",";
    else
      break;

    auto Def = Ops.infix(OpName);
    if (!Def || Def->Priority > MaxPrec)
      break;
    // Left-argument priority constraint: strictly lower for x, equal
    // allowed for y.
    int LeftMax = Def->Type == OpType::YFX ? Def->Priority : Def->Priority - 1;
    if (Left.Priority > LeftMax)
      break;

    bump();
    int RightMax =
        Def->Type == OpType::XFY ? Def->Priority : Def->Priority - 1;
    auto Right = parseExpr(RightMax);
    if (!Right)
      return Right.getError();
    Left.Term =
        Store.mkStruct2(Symbols.intern(OpName), Left.Term, *Right);
    Left.Priority = Def->Priority;
  }
  return Left;
}

ErrorOr<Parser::Parsed> Parser::parsePrimary() {
  switch (Cur.Kind) {
  case TokenKind::Error:
    return errorHere(Cur.Text);
  case TokenKind::EndOfFile:
  case TokenKind::End:
    return errorHere("unexpected end of clause");
  case TokenKind::Int: {
    TermRef T = Store.mkInt(Cur.IntValue);
    bump();
    return Parsed{T, 0};
  }
  case TokenKind::Var: {
    TermRef T = internVar(Cur.Text);
    bump();
    return Parsed{T, 0};
  }
  case TokenKind::Str: {
    // "abc" reads as the list of character codes.
    std::vector<TermRef> Codes;
    for (char C : Cur.Text)
      Codes.push_back(Store.mkInt(static_cast<unsigned char>(C)));
    bump();
    return Parsed{Store.mkList(Symbols, Codes), 0};
  }
  case TokenKind::LParen: {
    bump();
    auto Inner = parseExpr(1200);
    if (!Inner)
      return Inner.getError();
    if (Cur.Kind != TokenKind::RParen)
      return errorHere("expected ')'");
    bump();
    return Parsed{*Inner, 0};
  }
  case TokenKind::LBracket: {
    auto List = parseList();
    if (!List)
      return List.getError();
    return Parsed{*List, 0};
  }
  case TokenKind::Atom:
    break; // Handled below.
  default:
    return errorHere("unexpected token '" + Cur.Text + "'");
  }

  // Atom: plain, functor application, or prefix operator.
  std::string Name = Cur.Text;
  Token AtomTok = Cur;
  bump();

  // foo(Args...) — '(' must be adjacent to the atom.
  if (Cur.Kind == TokenKind::LParen && !Cur.PrecededByLayout) {
    bump();
    auto Struct = parseArgList(Symbols.intern(Name));
    if (!Struct)
      return Struct.getError();
    return Parsed{*Struct, 0};
  }

  // Prefix operator application.
  if (auto Def = Ops.prefix(Name)) {
    // "- 3" folds to the integer -3.
    if (Name == "-" && Cur.Kind == TokenKind::Int) {
      TermRef T = Store.mkInt(-Cur.IntValue);
      bump();
      return Parsed{T, 0};
    }
    if (tokenCanStartTerm(Cur)) {
      // Do not treat "f = g" as prefix application of '=': an atom that is
      // an infix-only operator cannot begin the operand of this prefix op
      // unless it is itself applied. We approximate standard behaviour by
      // rejecting operands that are bare infix operators followed by a
      // term-starting token (i.e. the next operator will consume our atom
      // as its left argument instead).
      bool OperandIsBareInfix = false;
      if (Cur.Kind == TokenKind::Atom && Ops.infix(Cur.Text) &&
          !Ops.prefix(Cur.Text))
        OperandIsBareInfix = true;
      if (!OperandIsBareInfix) {
        int ArgMax =
            Def->Type == OpType::FY ? Def->Priority : Def->Priority - 1;
        auto Arg = parseExpr(ArgMax);
        if (!Arg)
          return Arg.getError();
        TermRef T = Store.mkStruct(Symbols.intern(Name),
                                   std::span<const TermRef>(&*Arg, 1));
        return Parsed{T, Def->Priority};
      }
    }
  }

  // Plain atom. If it names an operator, it carries that priority when
  // used bare (e.g. (:-) as an argument), which argument contexts at
  // priority 999 would reject; we keep 0 for pragmatism.
  (void)AtomTok;
  return Parsed{Store.mkAtom(Symbols.intern(Name)), 0};
}

ErrorOr<TermRef> Parser::parseArgList(SymbolId Functor) {
  std::vector<TermRef> Args;
  while (true) {
    auto Arg = parseExpr(999);
    if (!Arg)
      return Arg.getError();
    Args.push_back(*Arg);
    if (Cur.Kind == TokenKind::Comma) {
      bump();
      continue;
    }
    break;
  }
  if (Cur.Kind != TokenKind::RParen)
    return errorHere("expected ')' or ',' in argument list");
  bump();
  return Store.mkStruct(Functor, Args);
}

ErrorOr<TermRef> Parser::parseList() {
  bump(); // '['
  if (Cur.Kind == TokenKind::RBracket) {
    bump();
    return Store.mkAtom(Symbols.Nil);
  }
  std::vector<TermRef> Elems;
  TermRef Tail = InvalidTerm;
  while (true) {
    auto Elem = parseExpr(999);
    if (!Elem)
      return Elem.getError();
    Elems.push_back(*Elem);
    if (Cur.Kind == TokenKind::Comma) {
      bump();
      continue;
    }
    if (Cur.Kind == TokenKind::Bar) {
      bump();
      auto TailOr = parseExpr(999);
      if (!TailOr)
        return TailOr.getError();
      Tail = *TailOr;
    }
    break;
  }
  if (Cur.Kind != TokenKind::RBracket)
    return errorHere("expected ']' in list");
  bump();
  return Store.mkList(Symbols, Elems, Tail);
}

ErrorOr<std::vector<TermRef>> Parser::parseProgram(SymbolTable &Symbols,
                                                   TermStore &Store,
                                                   std::string_view Text) {
  Parser P(Symbols, Store, Text);
  std::vector<TermRef> Clauses;
  while (true) {
    auto Clause = P.nextClause();
    if (!Clause)
      return Clause.getError();
    if (*Clause == InvalidTerm)
      return Clauses;
    Clauses.push_back(*Clause);
  }
}

ErrorOr<TermRef> Parser::parseTerm(SymbolTable &Symbols, TermStore &Store,
                                   std::string_view Text) {
  std::string Buffer(Text);
  // Ensure a terminating full stop so nextClause() accepts the input.
  size_t End = Buffer.find_last_not_of(" \t\r\n");
  if (End == std::string::npos)
    return Diagnostic("empty term");
  if (Buffer[End] != '.')
    Buffer += " .";
  Parser P(Symbols, Store, Buffer);
  auto T = P.nextClause();
  if (!T)
    return T.getError();
  if (*T == InvalidTerm)
    return Diagnostic("empty term");
  return *T;
}
