//===- Parser.h - Prolog reader ---------------------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-precedence parser producing clause terms. This is the front of
/// the paper's preprocessing phase: programs are *read*, transformed, and
/// loaded as dynamic code.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_READER_PARSER_H
#define LPA_READER_PARSER_H

#include "reader/Lexer.h"
#include "reader/OpTable.h"
#include "support/Error.h"
#include "term/Symbol.h"
#include "term/TermStore.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lpa {

/// Parses a source buffer clause by clause.
///
/// Variables scope over a single clause; the name map is exposed after each
/// nextClause() so callers (the toplevel example, tests) can report
/// bindings by their source names.
class Parser {
public:
  Parser(SymbolTable &Symbols, TermStore &Store, std::string_view Text);

  /// Parses the next clause (a term followed by '.').
  ///
  /// \returns the clause term; InvalidTerm at end of input; a Diagnostic on
  /// malformed input.
  ErrorOr<TermRef> nextClause();

  /// Named variables of the most recently parsed clause, in order of first
  /// occurrence.
  const std::vector<std::pair<std::string, TermRef>> &clauseVars() const {
    return ClauseVars;
  }

  /// Parses a whole program: every clause until end of input.
  static ErrorOr<std::vector<TermRef>>
  parseProgram(SymbolTable &Symbols, TermStore &Store, std::string_view Text);

  /// Parses exactly one term (a trailing '.' is optional). Convenience for
  /// queries in tests and examples.
  static ErrorOr<TermRef> parseTerm(SymbolTable &Symbols, TermStore &Store,
                                    std::string_view Text);

private:
  /// A parsed subterm together with the priority it was produced at (0 for
  /// plain terms, the operator priority for operator applications); needed
  /// to enforce x (strictly lower) vs y (lower or equal) argument slots.
  struct Parsed {
    TermRef Term;
    int Priority;
  };

  void bump(); ///< Advances Cur.
  Diagnostic errorHere(const std::string &Message) const;
  bool tokenCanStartTerm(const Token &T) const;

  ErrorOr<TermRef> parseExpr(int MaxPrec);
  ErrorOr<Parsed> parseLeft(int MaxPrec);
  ErrorOr<Parsed> parsePrimary();
  ErrorOr<TermRef> parseArgList(SymbolId Functor);
  ErrorOr<TermRef> parseList();
  TermRef internVar(const std::string &Name);

  SymbolTable &Symbols;
  TermStore &Store;
  OpTable Ops;
  Lexer Lex;
  Token Cur;
  std::unordered_map<std::string, TermRef> VarMap;
  std::vector<std::pair<std::string, TermRef>> ClauseVars;
};

} // namespace lpa

#endif // LPA_READER_PARSER_H
