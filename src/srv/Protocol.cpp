//===- Protocol.cpp - JSON-lines service protocol -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "srv/Protocol.h"

#include "obs/Json.h"
#include "srv/Session.h"
#include "support/JsonValue.h"

using namespace lpa;

static std::string errorResponse(std::string_view Msg) {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("ok", false);
  W.member("error", Msg);
  W.endObject();
  return Out;
}

std::string lpa::handleRequestLine(AnalysisSession &Session,
                                   std::string_view Line, bool &Shutdown) {
  Shutdown = false;
  auto Doc = JsonValue::parse(Line);
  if (!Doc)
    return errorResponse(Doc.getError().str());
  if (!Doc->isObject())
    return errorResponse("request must be a JSON object");
  std::string Op = Doc->stringOr("op", "");
  if (Op.empty())
    return errorResponse("missing \"op\"");

  // Opportunistic telemetry sampling: the daemon has no timer thread, so
  // the history ring advances whenever a request arrives and the interval
  // has elapsed — any op, not just `metrics`.
  Session.tickMetricsHistory();

  if (Op == "consult") {
    const JsonValue *Prog = Doc->find("program");
    if (!Prog || !Prog->isString())
      return errorResponse("consult needs a string \"program\"");
    auto R = Session.consult(Prog->asString());
    if (!R)
      return errorResponse(R.getError().str());
    std::string Out;
    JsonWriter W(Out);
    W.beginObject();
    W.member("ok", true);
    W.member("clauses", static_cast<uint64_t>(R->Loaded));
    W.member("tables_invalidated", R->TablesInvalidated);
    W.member("tables_survived", R->TablesSurvived);
    W.endObject();
    return Out;
  }

  if (Op == "retract") {
    const JsonValue *ClauseText = Doc->find("clause");
    if (!ClauseText || !ClauseText->isString())
      return errorResponse("retract needs a string \"clause\"");
    auto R = Session.retract(ClauseText->asString());
    if (!R)
      return errorResponse(R.getError().str());
    std::string Out;
    JsonWriter W(Out);
    W.beginObject();
    W.member("ok", true);
    W.member("retracted", static_cast<uint64_t>(R->Loaded));
    W.member("tables_invalidated", R->TablesInvalidated);
    W.member("tables_survived", R->TablesSurvived);
    W.endObject();
    return Out;
  }

  if (Op == "query") {
    const JsonValue *Goal = Doc->find("goal");
    if (!Goal || !Goal->isString())
      return errorResponse("query needs a string \"goal\"");
    double MaxSol = Doc->numberOr("max_solutions", 10);
    double DeadlineMs = Doc->numberOr("deadline_ms", 0);
    if (MaxSol < 0 || DeadlineMs < 0)
      return errorResponse("max_solutions/deadline_ms must be nonnegative");
    auto R = Session.runQuery(Goal->asString(),
                              static_cast<size_t>(MaxSol),
                              static_cast<uint64_t>(DeadlineMs));
    if (!R)
      return errorResponse(R.getError().str());
    std::string Out;
    JsonWriter W(Out);
    W.beginObject();
    W.member("ok", true);
    W.member("id", R->Id);
    W.member("total", static_cast<uint64_t>(R->Total));
    W.key("solutions");
    W.beginArray();
    for (const std::string &S : R->Solutions)
      W.value(std::string_view(S));
    W.endArray();
    W.member("wall_ms", R->WallMs);
    W.member("warm_hits", R->WarmHits);
    W.member("cold_misses", R->ColdMisses);
    W.member("truncated", R->Truncated);
    // Outcome flags: "truncated" is kept for callers that predate them;
    // deadline_hit is the same signal under its real name, and incomplete
    // means a tainted table may have starved the answer set even when the
    // deadline never fired.
    W.member("deadline_hit", R->Truncated);
    W.member("incomplete", R->Incomplete);
    W.endObject();
    return Out;
  }

  if (Op == "stats") {
    // The snapshot is already one JSON object; splice it in verbatim
    // rather than round-tripping through a document model.
    return std::string("{\"ok\":true,\"stats\":") + Session.statsJson() + "}";
  }

  if (Op == "health")
    return std::string("{\"ok\":true,\"health\":") + Session.healthJson() +
           "}";

  if (Op == "slowlog")
    return std::string("{\"ok\":true,\"slowlog\":") + Session.slowlogJson() +
           "}";

  if (Op == "inspect") {
    double Top = Doc->numberOr("top", 10);
    if (Top < 0)
      return errorResponse("top must be nonnegative");
    std::string Sort = Doc->stringOr("sort", "bytes");
    if (Sort != "bytes" && Sort != "answers" && Sort != "contention")
      return errorResponse(
          "sort must be \"bytes\", \"answers\" or \"contention\"");
    return std::string("{\"ok\":true,\"inspect\":") +
           Session.inspectJson(static_cast<size_t>(Top), Sort) + "}";
  }

  if (Op == "explain") {
    const JsonValue *Goal = Doc->find("goal");
    if (!Goal || !Goal->isString())
      return errorResponse("explain needs a string \"goal\"");
    double Top = Doc->numberOr("top", 10);
    double MaxSol = Doc->numberOr("max_solutions", 10);
    double DeadlineMs = Doc->numberOr("deadline_ms", 0);
    if (Top < 0 || MaxSol < 0 || DeadlineMs < 0)
      return errorResponse(
          "top/max_solutions/deadline_ms must be nonnegative");
    auto R = Session.explainJson(Goal->asString(), static_cast<size_t>(Top),
                                 static_cast<size_t>(MaxSol),
                                 static_cast<uint64_t>(DeadlineMs));
    if (!R)
      return errorResponse(R.getError().str());
    return std::string("{\"ok\":true,\"explain\":") + *R + "}";
  }

  if (Op == "metrics") {
    double MaxSamples = Doc->numberOr("max_samples", 0);
    if (MaxSamples < 0)
      return errorResponse("max_samples must be nonnegative");
    return std::string("{\"ok\":true,\"metrics\":") +
           Session.metricsJson(static_cast<size_t>(MaxSamples)) + "}";
  }

  if (Op == "reset_stats") {
    Session.resetStats();
    return "{\"ok\":true}";
  }

  if (Op == "shutdown") {
    Shutdown = true;
    return "{\"ok\":true,\"bye\":true}";
  }

  return errorResponse("unknown op: " + Op);
}
