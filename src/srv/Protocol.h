//===- Protocol.h - JSON-lines service protocol -----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lpa_serve wire protocol: one JSON object per line in, one JSON
/// object per line out, over stdin/stdout or a Unix socket. Verbs:
///
///   {"op":"consult","program":"edge(a,b). ..."}
///       -> {"ok":true,"clauses":N,
///           "tables_invalidated":K,"tables_survived":M}
///   {"op":"retract","clause":"edge(a,b)."}
///       -> {"ok":true,"retracted":N,
///           "tables_invalidated":K,"tables_survived":M}
///   {"op":"query","goal":"path(a,X)","max_solutions":10,"deadline_ms":0}
///       -> {"ok":true,"id":Q,"total":N,"solutions":[...],"wall_ms":..,
///           "warm_hits":..,"cold_misses":..,"truncated":false,
///           "deadline_hit":false,"incomplete":false}
///   {"op":"stats"}   -> {"ok":true,"stats":{...}}   (schema lpa.stats.v1)
///   {"op":"health"}  -> {"ok":true,"health":{...}}  (schema lpa.health.v1)
///   {"op":"slowlog"} -> {"ok":true,"slowlog":{...}} (schema lpa.slowlog.v1)
///   {"op":"inspect","top":10,"sort":"bytes"|"answers"|"contention"}
///       -> {"ok":true,"inspect":{...}}              (schema lpa.inspect.v1)
///   {"op":"explain","goal":"path(a,X)","top":10,"max_solutions":10,
///    "deadline_ms":0}
///       -> {"ok":true,"explain":{...}}              (schema lpa.explain.v1)
///   {"op":"metrics","max_samples":0}
///       -> {"ok":true,"metrics":{...}}              (schema lpa.metrics.v1;
///          "exposition" holds Prometheus text, "history" the trend ring)
///   {"op":"reset_stats"} -> {"ok":true}
///   {"op":"shutdown"}    -> {"ok":true,"bye":true}
///
/// Every response carries "ok"; failures carry "error" with a message.
/// Malformed lines produce an error response, never a dropped connection
/// — a service protocol must stay in sync with a buggy client.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SRV_PROTOCOL_H
#define LPA_SRV_PROTOCOL_H

#include <string>
#include <string_view>

namespace lpa {

class AnalysisSession;

/// Handles one request line against \p Session and returns the response
/// line (no trailing newline). Sets \p Shutdown when the request asked
/// the daemon to exit after responding.
std::string handleRequestLine(AnalysisSession &Session, std::string_view Line,
                              bool &Shutdown);

} // namespace lpa

#endif // LPA_SRV_PROTOCOL_H
