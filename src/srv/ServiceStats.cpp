//===- ServiceStats.cpp - Service-level query telemetry -----------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "srv/ServiceStats.h"

#include "obs/Json.h"
#include "support/TableFormat.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace lpa;

static uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ServiceStats::ServiceStats(Options O) : Opts(O), EpochNs(steadyNs()) {
  if (Opts.WindowSize == 0)
    Opts.WindowSize = 1;
  if (Opts.RecentSize == 0)
    Opts.RecentSize = 1;
  if (Opts.GaugeRingSize == 0)
    Opts.GaugeRingSize = 1;
}

void ServiceStats::recordQuery(const QueryRecord &R) {
  ++Served;
  Warm += R.WarmHits;
  Cold += R.ColdMisses;
  Truncated += R.Truncated ? 1 : 0;
  uint64_t Us = static_cast<uint64_t>(R.WallMs * 1e3);
  LatencyUs.record(Us);
  if (Window.size() < Opts.WindowSize) {
    Window.push_back(Us);
  } else {
    Window[WindowHead] = Us;
    WindowHead = (WindowHead + 1) % Opts.WindowSize;
  }
  if (Recent.size() < Opts.RecentSize) {
    Recent.push_back(R);
  } else {
    Recent[RecentHead] = R;
    RecentHead = (RecentHead + 1) % Opts.RecentSize;
  }
}

void ServiceStats::recordGauges(const GaugePoint &G) {
  if (Gauges.size() < Opts.GaugeRingSize) {
    Gauges.push_back(G);
  } else {
    Gauges[GaugeHead] = G;
    GaugeHead = (GaugeHead + 1) % Opts.GaugeRingSize;
  }
}

double ServiceStats::warmHitRate() const {
  uint64_t Total = Warm + Cold;
  return Total ? static_cast<double>(Warm) / static_cast<double>(Total) : 0.0;
}

uint64_t ServiceStats::windowQuantileUs(double Q) const {
  if (Window.empty())
    return 0;
  std::vector<uint64_t> Sorted(Window);
  std::sort(Sorted.begin(), Sorted.end());
  if (Q <= 0)
    return Sorted.front();
  if (Q >= 1)
    return Sorted.back();
  // Nearest-rank: the ceil(Q*N)-th smallest sample.
  size_t Rank = static_cast<size_t>(std::ceil(Q * double(Sorted.size())));
  if (Rank == 0)
    Rank = 1;
  return Sorted[Rank - 1];
}

template <typename T>
static std::vector<T> ringInOrder(const std::vector<T> &Ring, size_t Head) {
  std::vector<T> Out;
  Out.reserve(Ring.size());
  for (size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(Ring[(Head + I) % Ring.size()]);
  return Out;
}

std::vector<QueryRecord> ServiceStats::recentQueries() const {
  // Before the first wrap Head is 0, so this is arrival order either way.
  return ringInOrder(Recent, Recent.size() < Opts.RecentSize ? 0 : RecentHead);
}

std::vector<GaugePoint> ServiceStats::gaugeSeries() const {
  return ringInOrder(Gauges, Gauges.size() < Opts.GaugeRingSize ? 0 : GaugeHead);
}

uint64_t ServiceStats::uptimeMs() const {
  return (steadyNs() - EpochNs) / 1000000u;
}

void ServiceStats::reset() {
  Options O = Opts;
  *this = ServiceStats(O);
}

void ServiceStats::writeJsonMembers(JsonWriter &W) const {
  W.member("uptime_ms", uptimeMs());
  W.member("queries_served", Served);
  W.member("truncated_queries", Truncated);
  W.member("warm_hits", Warm);
  W.member("cold_misses", Cold);
  W.member("warm_hit_rate", warmHitRate());
  W.member("invalidations", Invalidations);
  W.member("tables_invalidated", TablesInvalidated);
  W.member("tables_survived", TablesSurvived);

  W.key("latency");
  W.beginObject();
  W.member("count", LatencyUs.count());
  W.member("mean_us", LatencyUs.mean());
  W.member("min_us", LatencyUs.min());
  W.member("max_us", LatencyUs.max());
  W.member("p50_us", LatencyUs.quantile(0.50));
  W.member("p95_us", LatencyUs.quantile(0.95));
  W.member("p99_us", LatencyUs.quantile(0.99));
  W.endObject();

  W.key("window");
  W.beginObject();
  W.member("count", static_cast<uint64_t>(Window.size()));
  W.member("p50_us", windowQuantileUs(0.50));
  W.member("p95_us", windowQuantileUs(0.95));
  W.member("p99_us", windowQuantileUs(0.99));
  W.endObject();

  W.key("recent_queries");
  W.beginArray();
  for (const QueryRecord &R : recentQueries()) {
    W.beginObject();
    W.member("id", R.Id);
    W.member("goal", std::string_view(R.Goal));
    W.member("wall_ms", R.WallMs);
    W.member("solutions", R.Solutions);
    W.member("warm_hits", R.WarmHits);
    W.member("cold_misses", R.ColdMisses);
    W.member("truncated", R.Truncated);
    W.endObject();
  }
  W.endArray();

  W.key("gauges");
  W.beginArray();
  for (const GaugePoint &G : gaugeSeries()) {
    W.beginObject();
    W.member("query", G.QueryId);
    W.member("table_bytes", G.TableBytes);
    W.member("subgoals", G.Subgoals);
    W.member("answers", G.Answers);
    W.endObject();
  }
  W.endArray();
}

std::string ServiceStats::renderReport() const {
  std::string Out;
  if (Served == 0)
    return "  (no queries served yet)\n";
  Out += "  queries: " + std::to_string(Served);
  if (Truncated)
    Out += " (" + std::to_string(Truncated) + " truncated)";
  Out += "  warm/cold: " + std::to_string(Warm) + "/" + std::to_string(Cold);
  char Pct[32];
  std::snprintf(Pct, sizeof(Pct), " (%.1f%% warm)", warmHitRate() * 100.0);
  Out += Pct;
  Out += "\n";
  char L[160];
  std::snprintf(L, sizeof(L),
                "  latency: p50=%.3fms p95=%.3fms p99=%.3fms "
                "mean=%.3fms max=%.3fms (cumulative, %llu queries)\n",
                LatencyUs.quantile(0.50) / 1e3, LatencyUs.quantile(0.95) / 1e3,
                LatencyUs.quantile(0.99) / 1e3, LatencyUs.mean() / 1e3,
                LatencyUs.max() / 1e3,
                static_cast<unsigned long long>(LatencyUs.count()));
  Out += L;
  std::snprintf(L, sizeof(L),
                "  window:  p50=%.3fms p95=%.3fms p99=%.3fms (last %zu)\n",
                windowQuantileUs(0.50) / 1e3, windowQuantileUs(0.95) / 1e3,
                windowQuantileUs(0.99) / 1e3, Window.size());
  Out += L;

  TextTable T;
  T.addRow({"Id", "Goal", "ms", "Sols", "Warm", "Cold", "Trunc"});
  for (const QueryRecord &R : recentQueries())
    T.addRow({std::to_string(R.Id), R.Goal, TextTable::fmt(R.WallMs, 3),
              std::to_string(R.Solutions), std::to_string(R.WarmHits),
              std::to_string(R.ColdMisses), R.Truncated ? "yes" : "-"});
  Out += T.render();
  return Out;
}
