//===- ServiceStats.h - Service-level query telemetry -----------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query-granular telemetry for a long-lived analysis service: per-query
/// latency (a cumulative log2 histogram plus an exact rolling window for
/// p50/p95/p99), warm/cold table-reuse totals, a bounded ring of recent
/// query records, and a ring-buffered gauge time series (table bytes,
/// subgoals, answers at each query's completion). This is what the
/// `stats` protocol verb and the REPL's `:queries` command render; the
/// engine-side counters (EvalStats, MetricsRegistry) stay per-run, this
/// layer slices them per query.
///
/// Everything here is bounded: histograms are fixed-size, and the window,
/// record and gauge rings evict oldest-first — a daemon serving millions
/// of queries holds a constant telemetry footprint.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SRV_SERVICESTATS_H
#define LPA_SRV_SERVICESTATS_H

#include "obs/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lpa {

class JsonWriter;

/// What one served query cost, as recorded by the session after the
/// solve returns.
struct QueryRecord {
  uint64_t Id = 0;
  std::string Goal; ///< The goal text as received.
  double WallMs = 0;
  uint64_t Solutions = 0;
  uint64_t WarmHits = 0;   ///< EvalStats::WarmTableHits delta.
  uint64_t ColdMisses = 0; ///< EvalStats::ColdTableMisses delta.
  bool Truncated = false;  ///< Deadline expired (answers may be partial).
};

/// One gauge sample, taken at a query's completion.
struct GaugePoint {
  uint64_t QueryId = 0;
  uint64_t TableBytes = 0;
  uint64_t Subgoals = 0;
  uint64_t Answers = 0;
};

/// Aggregates QueryRecords; see the file comment. Not thread-safe — the
/// session serializes queries, and snapshots happen between them.
class ServiceStats {
public:
  struct Options {
    size_t WindowSize = 128;  ///< Latencies kept for exact quantiles.
    size_t RecentSize = 32;   ///< Recent query records kept.
    size_t GaugeRingSize = 256; ///< Gauge time-series points kept.
  };

  ServiceStats() : ServiceStats(Options{}) {}
  explicit ServiceStats(Options O);

  /// Folds one served query into the aggregate.
  void recordQuery(const QueryRecord &R);

  /// Appends one gauge point (oldest evicted when the ring is full).
  void recordGauges(const GaugePoint &G);

  /// Folds one incremental-invalidation sweep (a consult or retract into
  /// a warm session) into the aggregate: \p Invalidated tables were in
  /// the changed cone and dropped, \p Survived stayed warm.
  void recordInvalidation(uint64_t Invalidated, uint64_t Survived) {
    Invalidations += 1;
    TablesInvalidated += Invalidated;
    TablesSurvived += Survived;
  }

  uint64_t queriesServed() const { return Served; }
  uint64_t warmHits() const { return Warm; }
  uint64_t coldMisses() const { return Cold; }
  uint64_t invalidations() const { return Invalidations; }
  uint64_t tablesInvalidated() const { return TablesInvalidated; }
  uint64_t tablesSurvived() const { return TablesSurvived; }
  /// Warm hits over all warm-or-cold lookups; 0 before any tabled call.
  double warmHitRate() const;
  uint64_t truncatedQueries() const { return Truncated; }

  /// Cumulative latency distribution in microseconds (log2 buckets:
  /// quantiles are bucket-resolution approximations).
  const Histogram &latency() const { return LatencyUs; }

  /// Exact nearest-rank quantile over the rolling window, microseconds;
  /// 0 when the window is empty.
  uint64_t windowQuantileUs(double Q) const;
  size_t windowCount() const { return Window.size(); }

  /// Recent query records, oldest first.
  std::vector<QueryRecord> recentQueries() const;
  /// Gauge time series, oldest first.
  std::vector<GaugePoint> gaugeSeries() const;

  /// Milliseconds since construction (or the last reset), steady clock.
  uint64_t uptimeMs() const;

  /// Emits the telemetry as members of the *currently open* JSON object,
  /// so the caller can compose it with engine metrics and profile blocks:
  ///   uptime_ms, queries_served, truncated_queries, warm_hits,
  ///   cold_misses, warm_hit_rate, invalidations, tables_invalidated,
  ///   tables_survived, latency{count,mean_us,min_us,max_us,
  ///   p50_us,p95_us,p99_us}, window{count,p50_us,p95_us,p99_us},
  ///   recent_queries[], gauges[].
  /// The schema is stable: fields are only ever added, never renamed.
  void writeJsonMembers(JsonWriter &W) const;

  /// Human-readable latency/em-reuse report for the REPL's `:queries`.
  std::string renderReport() const;

  /// Drops all telemetry and restarts the uptime clock. Counters are
  /// per-window by contract — the invalidation totals reset with the
  /// rest; only engine *state* (tables, tombstones, dependency edges)
  /// survives a reset, and that lives in the Solver, not here.
  void reset();

private:
  Options Opts;
  uint64_t Served = 0;
  uint64_t Warm = 0;
  uint64_t Cold = 0;
  uint64_t Truncated = 0;
  uint64_t Invalidations = 0;     ///< Sweeps (consults/retracts that swept).
  uint64_t TablesInvalidated = 0; ///< Tables dropped across all sweeps.
  uint64_t TablesSurvived = 0;    ///< Tables kept warm across all sweeps.
  Histogram LatencyUs;
  /// Rolling latency window (ring; WindowHead = next slot to overwrite).
  std::vector<uint64_t> Window;
  size_t WindowHead = 0;
  /// Recent query records (ring, same discipline).
  std::vector<QueryRecord> Recent;
  size_t RecentHead = 0;
  /// Gauge ring.
  std::vector<GaugePoint> Gauges;
  size_t GaugeHead = 0;
  uint64_t EpochNs = 0; ///< steady_clock at construction/reset.
};

} // namespace lpa

#endif // LPA_SRV_SERVICESTATS_H
