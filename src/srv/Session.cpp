//===- Session.cpp - Shared REPL/daemon command layer -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "srv/Session.h"

#include "obs/Json.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"
#include "term/TermWriter.h"

using namespace lpa;

static Solver::Options engineOptions(const AnalysisSession::Options &O) {
  Solver::Options E;
  E.RecordProvenance = O.RecordProvenance;
  E.EvalWorkers = O.EvalWorkers;
  return E;
}

AnalysisSession::AnalysisSession(Options O)
    : Opts(std::move(O)), DB(Symbols), Engine(DB, engineOptions(Opts)),
      Stats(Opts.Stats), Log(Opts.Log) {
  Engine.setObservability(&Trace, &Metrics);
  Engine.setSampleCursor(&Cursor);
  Engine.setQueryContext(&Ctx);
  if (Opts.SampleHz) {
    Prof = std::make_unique<Sampler>(Sampler::Options{Opts.SampleHz});
    Prof->addLane(Opts.SampleLane, &Cursor);
    // One lane per eval worker: parallel-prime stacks fold under
    // "<lane>.wK" instead of vanishing (the workers never touch the
    // session cursor).
    const auto &WC = Engine.workerCursors();
    for (size_t I = 0; I < WC.size(); ++I)
      Prof->addLane(Opts.SampleLane + ".w" + std::to_string(I), WC[I].get());
    Prof->start();
  }
}

AnalysisSession::~AnalysisSession() {
  if (Prof)
    Prof->stop();
  // Detach the hooks before members destruct under the engine.
  Engine.setQueryContext(nullptr);
  Engine.setSampleCursor(nullptr);
  Engine.setObservability(nullptr, nullptr);
}

AnalysisSession::ConsultResult
AnalysisSession::sweepInvalidation(uint64_t FromRev, size_t Loaded) {
  ConsultResult Out;
  Out.Loaded = Loaded;
  std::vector<PredKey> Changed = DB.predsChangedSince(FromRev);
  if (!Changed.empty()) {
    Solver::InvalidationResult R = Engine.invalidateDependents(Changed);
    Out.TablesInvalidated = R.TablesInvalidated;
    Out.TablesSurvived = R.TablesSurvived;
    // A sweep over an engine with no completed tables (the common case:
    // the initial consult) is not an invalidation event.
    if (R.TablesInvalidated || R.TablesSurvived)
      Stats.recordInvalidation(R.TablesInvalidated, R.TablesSurvived);
  }
  return Out;
}

ErrorOr<AnalysisSession::ConsultResult>
AnalysisSession::consult(std::string_view ProgramText) {
  size_t Before = DB.numClauses();
  // Snapshot the revision clock first: everything the consult stamps
  // after this point is in the changed set the sweep walks.
  uint64_t Rev = DB.globalRevision();
  auto R = DB.consult(ProgramText);
  if (!R)
    return R.getError();
  ConsultResult Out = sweepInvalidation(Rev, DB.numClauses() - Before);
  if (Log)
    Log->info("consult", {{"clauses", uint64_t(Out.Loaded)},
                          {"tables_invalidated", Out.TablesInvalidated},
                          {"tables_survived", Out.TablesSurvived}});
  return Out;
}

ErrorOr<AnalysisSession::ConsultResult>
AnalysisSession::retract(std::string_view ClauseText) {
  uint64_t Rev = DB.globalRevision();
  auto R = DB.retract(ClauseText);
  if (!R)
    return R.getError();
  ConsultResult Out = sweepInvalidation(Rev, *R);
  if (Log)
    Log->info("retract", {{"clauses", uint64_t(Out.Loaded)},
                          {"tables_invalidated", Out.TablesInvalidated},
                          {"tables_survived", Out.TablesSurvived}});
  return Out;
}

ErrorOr<AnalysisSession::QueryResult>
AnalysisSession::runQuery(std::string_view GoalText, size_t MaxSolutions,
                          uint64_t DeadlineMs) {
  auto Goal = Parser::parseTerm(Symbols, Engine.store(), GoalText);
  if (!Goal)
    return Goal.getError();

  // Open the query scope: a fresh id, and the deadline as an absolute
  // point on the engine's steady clock. The context object is attached
  // for the session's whole life; only its fields change between solves.
  QueryResult R;
  R.Id = ++NextQueryId;
  Ctx.Id = R.Id;
  Ctx.DeadlineNs = DeadlineMs ? Solver::steadyNowNs() + DeadlineMs * 1000000u
                              : 0;

  EvalStats Before = Engine.stats();
  Stopwatch Watch;
  R.Total = Engine.solve(*Goal, [&]() {
    if (R.Solutions.size() < MaxSolutions)
      R.Solutions.push_back(
          TermWriter::toString(Symbols, Engine.storeConst(), *Goal));
    return false;
  });
  R.WallMs = Watch.elapsedSeconds() * 1e3;
  Ctx.DeadlineNs = 0;

  const EvalStats &After = Engine.stats();
  R.WarmHits = After.WarmTableHits - Before.WarmTableHits;
  R.ColdMisses = After.ColdTableMisses - Before.ColdTableMisses;
  R.Truncated = After.DeadlineHits != Before.DeadlineHits;

  // Trim the goal text for the record: the REPL hands over raw input
  // with surrounding whitespace/newlines that would mangle the report
  // table and the JSON snapshot.
  size_t B = GoalText.find_first_not_of(" \t\r\n");
  size_t E = GoalText.find_last_not_of(" \t\r\n");
  std::string_view Shown =
      B == std::string_view::npos ? GoalText : GoalText.substr(B, E - B + 1);

  QueryRecord Rec;
  Rec.Id = R.Id;
  Rec.Goal = std::string(Shown);
  Rec.WallMs = R.WallMs;
  Rec.Solutions = R.Total;
  Rec.WarmHits = R.WarmHits;
  Rec.ColdMisses = R.ColdMisses;
  Rec.Truncated = R.Truncated;
  Stats.recordQuery(Rec);
  Stats.recordGauges({R.Id, Engine.tableSpaceBytes(),
                      After.SubgoalsCreated, After.AnswersRecorded});

  if (Log)
    Log->info("query",
              {{"id", R.Id},
               {"goal", Shown},
               {"solutions", uint64_t(R.Total)},
               {"wall_ms", R.WallMs},
               {"warm_hits", R.WarmHits},
               {"cold_misses", R.ColdMisses},
               {"truncated", R.Truncated}});
  return R;
}

std::string AnalysisSession::statsJson() {
  Engine.snapshotTableMetrics(Metrics);

  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.stats.v1");
  Stats.writeJsonMembers(W);

  W.key("engine");
  Metrics.writeJson(W);

  if (Prof) {
    // profile() is only stable while the sampler thread is stopped.
    bool WasRunning = Prof->running();
    if (WasRunning)
      Prof->stop();
    W.key("sample_profile");
    Prof->profile().writeJson(W, &Symbols, /*TopN=*/25);
    if (WasRunning)
      Prof->start();
  }
  W.endObject();
  return Out;
}

std::string AnalysisSession::healthJson() const {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.health.v1");
  W.member("ok", true);
  W.member("uptime_ms", Stats.uptimeMs());
  W.member("queries_served", Stats.queriesServed());
  W.member("clauses", static_cast<uint64_t>(DB.numClauses()));
  W.member("subgoals", static_cast<uint64_t>(Engine.subgoals().size()));
  W.member("eval_workers", static_cast<uint64_t>(Opts.EvalWorkers));
  W.member("table_space_bytes",
           static_cast<uint64_t>(Engine.tableSpaceBytes()));
  W.member("sampler_running", Prof && Prof->running());
  W.endObject();
  return Out;
}

std::string AnalysisSession::warmColdLine() const {
  char L[160];
  std::snprintf(L, sizeof(L),
                "Warm/cold: %llu warm table hits, %llu cold misses "
                "(%.1f%% warm) across %llu queries\n",
                static_cast<unsigned long long>(Stats.warmHits()),
                static_cast<unsigned long long>(Stats.coldMisses()),
                Stats.warmHitRate() * 100.0,
                static_cast<unsigned long long>(Stats.queriesServed()));
  return L;
}

std::string AnalysisSession::foldedStacks() {
  if (!Prof)
    return {};
  bool WasRunning = Prof->running();
  if (WasRunning)
    Prof->stop();
  std::string Out;
  if (!Prof->profile().empty())
    Out = Prof->profile().formatFolded(&Symbols);
  if (WasRunning)
    Prof->start();
  return Out;
}

void AnalysisSession::resetStats() {
  Engine.resetStats();
  Stats.reset();
  if (Log)
    Log->info("reset_stats");
}
