//===- Session.cpp - Shared REPL/daemon command layer -------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "srv/Session.h"

#include "obs/Json.h"
#include "reader/Parser.h"
#include "support/Stopwatch.h"
#include "support/TableFormat.h"
#include "term/TermWriter.h"

#include <algorithm>

using namespace lpa;

static Solver::Options engineOptions(const AnalysisSession::Options &O) {
  Solver::Options E;
  E.RecordProvenance = O.RecordProvenance;
  E.RecordCosts = O.RecordCosts;
  E.EvalWorkers = O.EvalWorkers;
  return E;
}

AnalysisSession::AnalysisSession(Options O)
    : Opts(std::move(O)), DB(Symbols), Engine(DB, engineOptions(Opts)),
      Stats(Opts.Stats), Fr(Opts.Recorder), Slow(Opts.SlowLog),
      Hist(Opts.History), Log(Opts.Log) {
  Engine.setObservability(&Trace, &Metrics);
  Engine.setSampleCursor(&Cursor);
  Engine.setQueryContext(&Ctx);
  Engine.setFlightRecorder(&Fr);
  // History series, registered once; tickMetricsHistory() samples them in
  // exactly this order.
  Hist.addSeries("queries_served");
  Hist.addSeries("clause_resolutions");
  Hist.addSeries("answers_recorded");
  Hist.addSeries("warm_hits");
  Hist.addSeries("cold_misses");
  Hist.addSeries("deadline_hits");
  Hist.addSeries("incomplete_tables");
  Hist.addSeries("tables_invalidated");
  Hist.addSeries("slowlog_captured");
  Hist.addSeries("recorder_alarms");
  Hist.addSeries("table_space_bytes", /*Counter=*/false);
  Hist.addSeries("subgoals", /*Counter=*/false);
  Hist.addSeries("dep_index_edges", /*Counter=*/false);
  if (Opts.SampleHz) {
    Prof = std::make_unique<Sampler>(Sampler::Options{Opts.SampleHz});
    Prof->addLane(Opts.SampleLane, &Cursor);
    // One lane per eval worker: parallel-prime stacks fold under
    // "<lane>.wK" instead of vanishing (the workers never touch the
    // session cursor).
    const auto &WC = Engine.workerCursors();
    for (size_t I = 0; I < WC.size(); ++I)
      Prof->addLane(Opts.SampleLane + ".w" + std::to_string(I), WC[I].get());
    // Adaptive sampling: when the recorder journals a deadline or taint
    // alarm mid-query, the sampler boosts its rate for the remainder.
    Prof->setAlarmSource(Fr.alarmCounter());
    Prof->start();
  }
}

AnalysisSession::~AnalysisSession() {
  if (Prof)
    Prof->stop();
  // Detach the hooks before members destruct under the engine.
  Engine.setFlightRecorder(nullptr);
  Engine.setQueryContext(nullptr);
  Engine.setSampleCursor(nullptr);
  Engine.setObservability(nullptr, nullptr);
}

AnalysisSession::ConsultResult
AnalysisSession::sweepInvalidation(uint64_t FromRev, size_t Loaded) {
  ConsultResult Out;
  Out.Loaded = Loaded;
  std::vector<PredKey> Changed = DB.predsChangedSince(FromRev);
  if (!Changed.empty()) {
    Solver::InvalidationResult R = Engine.invalidateDependents(Changed);
    Out.TablesInvalidated = R.TablesInvalidated;
    Out.TablesSurvived = R.TablesSurvived;
    // A sweep over an engine with no completed tables (the common case:
    // the initial consult) is not an invalidation event.
    if (R.TablesInvalidated || R.TablesSurvived)
      Stats.recordInvalidation(R.TablesInvalidated, R.TablesSurvived);
  }
  return Out;
}

ErrorOr<AnalysisSession::ConsultResult>
AnalysisSession::consult(std::string_view ProgramText) {
  size_t Before = DB.numClauses();
  // Snapshot the revision clock first: everything the consult stamps
  // after this point is in the changed set the sweep walks.
  uint64_t Rev = DB.globalRevision();
  auto R = DB.consult(ProgramText);
  if (!R)
    return R.getError();
  ConsultResult Out = sweepInvalidation(Rev, DB.numClauses() - Before);
  Fr.record(FrEventKind::ConsultSweep, 0, Out.Loaded, Out.TablesInvalidated,
            Out.TablesSurvived);
  if (Log)
    Log->info("consult", {{"clauses", uint64_t(Out.Loaded)},
                          {"tables_invalidated", Out.TablesInvalidated},
                          {"tables_survived", Out.TablesSurvived}});
  return Out;
}

ErrorOr<AnalysisSession::ConsultResult>
AnalysisSession::retract(std::string_view ClauseText) {
  uint64_t Rev = DB.globalRevision();
  auto R = DB.retract(ClauseText);
  if (!R)
    return R.getError();
  ConsultResult Out = sweepInvalidation(Rev, *R);
  Fr.record(FrEventKind::RetractSweep, 0, Out.Loaded, Out.TablesInvalidated,
            Out.TablesSurvived);
  if (Log)
    Log->info("retract", {{"clauses", uint64_t(Out.Loaded)},
                          {"tables_invalidated", Out.TablesInvalidated},
                          {"tables_survived", Out.TablesSurvived}});
  return Out;
}

ErrorOr<AnalysisSession::QueryResult>
AnalysisSession::runQuery(std::string_view GoalText, size_t MaxSolutions,
                          uint64_t DeadlineMs) {
  auto Goal = Parser::parseTerm(Symbols, Engine.store(), GoalText);
  if (!Goal)
    return Goal.getError();

  // Trim the goal text for the record: the REPL hands over raw input
  // with surrounding whitespace/newlines that would mangle the report
  // table and the JSON snapshot.
  size_t B = GoalText.find_first_not_of(" \t\r\n");
  size_t E = GoalText.find_last_not_of(" \t\r\n");
  std::string_view Shown =
      B == std::string_view::npos ? GoalText : GoalText.substr(B, E - B + 1);

  // Open the query scope: a fresh id, and the deadline as an absolute
  // point on the engine's steady clock. The context object is attached
  // for the session's whole life; only its fields change between solves.
  QueryResult R;
  R.Id = ++NextQueryId;
  Ctx.Id = R.Id;
  Ctx.DeadlineNs = DeadlineMs ? Solver::steadyNowNs() + DeadlineMs * 1000000u
                              : 0;

  // The slow-query threshold is taken against the window *before* this
  // query lands in it, and the per-predicate baseline is only snapshotted
  // when capture is possible at all.
  double ThresholdMs = Slow.effectiveThresholdMs(Stats.windowQuantileUs(0.95));
  std::vector<std::pair<std::string, std::array<uint64_t, 3>>> PredsBefore;
  if (ThresholdMs >= 0)
    for (const PredMetrics *PM : Metrics.predicates())
      PredsBefore.emplace_back(
          PM->qualifiedName(),
          std::array<uint64_t, 3>{PM->Calls, PM->Resolutions, PM->NewAnswers});

  Fr.record(FrEventKind::QueryStart, R.Id, DeadlineMs, MaxSolutions, 0, 0,
            Shown);
  SharedTableSpace::Stats SharedBefore = Engine.sharedTableStats();

  EvalStats Before = Engine.stats();
  // Boost window: alarms recorded from here on (deadline hits, taint)
  // raise the sampler rate until the query ends.
  if (Prof)
    Prof->armBoostBaseline(Fr.alarmCount());
  Stopwatch Watch;
  R.Total = Engine.solve(*Goal, [&]() {
    if (R.Solutions.size() < MaxSolutions)
      R.Solutions.push_back(
          TermWriter::toString(Symbols, Engine.storeConst(), *Goal));
    return false;
  });
  R.WallMs = Watch.elapsedSeconds() * 1e3;
  Ctx.DeadlineNs = 0;
  if (Prof)
    Prof->disarmBoost();

  const EvalStats &After = Engine.stats();
  R.WarmHits = After.WarmTableHits - Before.WarmTableHits;
  R.ColdMisses = After.ColdTableMisses - Before.ColdTableMisses;
  R.Truncated = After.DeadlineHits != Before.DeadlineHits;
  R.Incomplete = After.IncompleteTables != Before.IncompleteTables;

  // Shard-lock contention this query induced (parallel prime phases
  // only; zero deltas stay out of the journal).
  const SharedTableSpace::Stats &SharedAfter = Engine.sharedTableStats();
  if (SharedAfter.LockContended != SharedBefore.LockContended)
    Fr.record(FrEventKind::ContentionSpike, R.Id,
              SharedAfter.LockContended - SharedBefore.LockContended,
              SharedAfter.LockWaitNs - SharedBefore.LockWaitNs);

  uint32_t Outcome = (R.Truncated ? FrOutcomeDeadline : 0u) |
                     (R.Incomplete ? FrOutcomeIncomplete : 0u);
  Fr.record(FrEventKind::QueryEnd, R.Id, R.Total, R.WarmHits, R.ColdMisses,
            Outcome);

  QueryRecord Rec;
  Rec.Id = R.Id;
  Rec.Goal = std::string(Shown);
  Rec.WallMs = R.WallMs;
  Rec.Solutions = R.Total;
  Rec.WarmHits = R.WarmHits;
  Rec.ColdMisses = R.ColdMisses;
  Rec.Truncated = R.Truncated;
  Stats.recordQuery(Rec);
  Stats.recordGauges({R.Id, Engine.tableSpaceBytes(),
                      After.SubgoalsCreated, After.AnswersRecorded});

  if (ThresholdMs >= 0 && R.WallMs >= ThresholdMs)
    captureSlowQuery(R, Shown, ThresholdMs, PredsBefore);

  // Anomalous outcome: the journal already holds the lifecycle, so dump
  // it (plus watermarks and the sampler's folded stacks) while the
  // context is hot. Rate-capped by FlightRecorder::Options::MaxDumps.
  if (R.Truncated || R.Incomplete)
    dumpAnomaly(R.Truncated ? "deadline" : "incomplete");

  if (Log)
    Log->info("query",
              {{"id", R.Id},
               {"goal", Shown},
               {"solutions", uint64_t(R.Total)},
               {"wall_ms", R.WallMs},
               {"warm_hits", R.WarmHits},
               {"cold_misses", R.ColdMisses},
               {"truncated", R.Truncated},
               {"incomplete", R.Incomplete}});
  return R;
}

std::string AnalysisSession::statsJson() {
  Engine.snapshotTableMetrics(Metrics);

  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.stats.v1");
  Stats.writeJsonMembers(W);

  W.key("engine");
  Metrics.writeJson(W);

  if (Prof) {
    // profile() is only stable while the sampler thread is stopped.
    bool WasRunning = Prof->running();
    if (WasRunning)
      Prof->stop();
    W.key("sample_profile");
    Prof->profile().writeJson(W, &Symbols, /*TopN=*/25);
    if (WasRunning)
      Prof->start();
  }
  W.endObject();
  return Out;
}

std::string AnalysisSession::healthJson() const {
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.health.v1");
  W.member("ok", true);
  W.member("uptime_ms", Stats.uptimeMs());
  W.member("queries_served", Stats.queriesServed());
  W.member("clauses", static_cast<uint64_t>(DB.numClauses()));
  W.member("subgoals", static_cast<uint64_t>(Engine.subgoals().size()));
  W.member("eval_workers", static_cast<uint64_t>(Opts.EvalWorkers));
  W.member("table_space_bytes",
           static_cast<uint64_t>(Engine.tableSpaceBytes()));
  W.member("sampler_running", Prof && Prof->running());
  // Long-uptime gauges (ROADMAP: dependency-index eviction and shared
  // retirement both need these visible before they can be tuned).
  W.member("dep_index_edges",
           static_cast<uint64_t>(Engine.dependencyIndex().edgeCount()));
  W.member("dep_index_bytes",
           static_cast<uint64_t>(Engine.dependencyIndex().memoryBytes()));
  W.member("shared_retired", Engine.sharedTableStats().Retired);
  W.member("recorder_events", Fr.totalRecorded());
  W.member("recorder_dropped", Fr.droppedCount());
  W.member("recorder_alarms", Fr.alarmCount());
  W.member("postmortem_dumps", Fr.dumpsWritten());
  W.member("slowlog_entries", static_cast<uint64_t>(Slow.size()));
  W.endObject();
  return Out;
}

void AnalysisSession::captureSlowQuery(
    const QueryResult &R, std::string_view Goal, double ThresholdMs,
    const std::vector<std::pair<std::string, std::array<uint64_t, 3>>>
        &PredsBefore) {
  SlowQueryExemplar Ex;
  Ex.Id = R.Id;
  Ex.Goal = std::string(Goal);
  Ex.WallMs = R.WallMs;
  Ex.ThresholdMs = ThresholdMs;
  Ex.Solutions = R.Total;
  Ex.WarmHits = R.WarmHits;
  Ex.ColdMisses = R.ColdMisses;
  Ex.DeadlineHit = R.Truncated;
  Ex.Incomplete = R.Incomplete;

  // Per-predicate deltas against the pre-query baseline (a predicate
  // first touched during this query has baseline zero).
  std::vector<SlowQueryExemplar::PredDelta> Deltas;
  for (const PredMetrics *PM : Metrics.predicates()) {
    std::array<uint64_t, 3> Base{};
    std::string QName = PM->qualifiedName();
    for (const auto &[Name, Counts] : PredsBefore)
      if (Name == QName) {
        Base = Counts;
        break;
      }
    SlowQueryExemplar::PredDelta D;
    D.Pred = std::move(QName);
    D.Calls = PM->Calls - Base[0];
    D.Resolutions = PM->Resolutions - Base[1];
    D.NewAnswers = PM->NewAnswers - Base[2];
    if (D.Calls || D.Resolutions || D.NewAnswers)
      Deltas.push_back(std::move(D));
  }
  std::sort(Deltas.begin(), Deltas.end(),
            [](const auto &A, const auto &B) {
              return A.Resolutions > B.Resolutions;
            });
  if (Deltas.size() > Slow.options().TopK)
    Deltas.resize(Slow.options().TopK);
  Ex.TopPreds = std::move(Deltas);

  // Top tables by apportioned bytes — the whole table space ranked, not
  // just this query's additions: what an operator triaging a slow query
  // needs is "what is big *now*".
  std::vector<const Subgoal *> Ranked(Engine.subgoals().begin(),
                                      Engine.subgoals().end());
  std::sort(Ranked.begin(), Ranked.end(),
            [this](const Subgoal *A, const Subgoal *B) {
              return Engine.subgoalMemoryBytes(*A) >
                     Engine.subgoalMemoryBytes(*B);
            });
  size_t N = std::min(Ranked.size(), Slow.options().TopK);
  for (size_t I = 0; I < N; ++I) {
    const Subgoal *SG = Ranked[I];
    SlowQueryExemplar::TableEntry T;
    T.Call = Engine.formatCall(*SG);
    T.Answers = Engine.answerCount(*SG);
    T.Bytes = Engine.subgoalMemoryBytes(*SG);
    T.Incomplete = SG->Incomplete;
    Ex.TopTables.push_back(std::move(T));
  }

  Ex.Trace = Fr.eventsForQuery(R.Id);

  // Embed the cost rollup when a profile covered this query (sessions
  // with RecordCosts on, or an explain evaluation that crossed the
  // threshold) — the exemplar then says *where* the time went, not just
  // that it went.
  if (const CostProfile *CP = Engine.costProfile();
      CP && CP->queryId() == R.Id) {
    CostSummary CS = Engine.exportCostSummary();
    Ex.CostAttributedNs = CS.AttributedNs;
    Ex.CostRootNs = CS.RootNs;
    size_t NC = std::min(CS.PerPred.size(), Slow.options().TopK);
    for (size_t I = 0; I < NC; ++I) {
      const CostRollup &CR = CS.PerPred[I];
      Ex.TopCosts.push_back(
          {CR.Key, CR.SelfNs, CR.Steps, static_cast<uint32_t>(CR.WarmHits)});
    }
  }
  Slow.insert(std::move(Ex));
}

void AnalysisSession::dumpAnomaly(std::string_view Reason) {
  const TableWatermarks &W = Engine.watermarks();
  std::string Path = Fr.dump(
      Reason,
      {{"table_space_bytes", Engine.tableSpaceBytes()},
       {"peak_table_space_bytes", W.PeakTableSpaceBytes},
       {"peak_term_store_bytes", W.PeakTermStoreBytes},
       {"peak_subgoal_answer_bytes", W.PeakSubgoalAnswerBytes},
       {"peak_scc_frontier_bytes", W.PeakSccFrontierBytes},
       {"subgoals", Engine.subgoals().size()},
       {"dep_index_edges", Engine.dependencyIndex().edgeCount()},
       {"queries_served", Stats.queriesServed()}},
      foldedStacks());
  if (!Path.empty() && Log)
    Log->info("postmortem", {{"reason", Reason}, {"path", Path}});
}

std::string AnalysisSession::slowlogJson() const {
  std::string Out;
  JsonWriter W(Out);
  Slow.writeJson(W, Slow.effectiveThresholdMs(Stats.windowQuantileUs(0.95)));
  return Out;
}

std::string AnalysisSession::slowlogReport() const {
  std::string Out;
  double T = Slow.effectiveThresholdMs(Stats.windowQuantileUs(0.95));
  char L[160];
  if (T < 0)
    Out += "Slow-query log: capture disabled\n";
  else {
    std::snprintf(L, sizeof(L),
                  "Slow-query log: %zu/%zu entries, threshold %.3f ms "
                  "(%llu captured, %llu evicted)\n",
                  Slow.size(), Slow.capacity(), T,
                  static_cast<unsigned long long>(Slow.captured()),
                  static_cast<unsigned long long>(Slow.evicted()));
    Out += L;
  }
  if (!Slow.size())
    return Out;
  TextTable Tab;
  Tab.addRow({"Id", "Goal", "ms", "Thresh", "Sols", "Warm", "Cold", "DL",
              "Inc", "TopPred"});
  for (const SlowQueryExemplar *E : Slow.entries())
    Tab.addRow({std::to_string(E->Id), E->Goal, TextTable::fmt(E->WallMs, 3),
                TextTable::fmt(E->ThresholdMs, 3),
                std::to_string(E->Solutions), std::to_string(E->WarmHits),
                std::to_string(E->ColdMisses), E->DeadlineHit ? "yes" : "-",
                E->Incomplete ? "yes" : "-",
                E->TopPreds.empty() ? "-" : E->TopPreds.front().Pred});
  Out += Tab.render();
  return Out;
}

std::string AnalysisSession::inspectJson(size_t TopN, std::string_view Sort) {
  // Refresh the per-predicate table gauges the warm-hit-rate view reads.
  Engine.snapshotTableMetrics(Metrics);

  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.inspect.v1");
  W.member("top", static_cast<uint64_t>(TopN));
  W.member("sort", Sort);

  const EvalStats &S = Engine.stats();
  W.key("totals");
  W.beginObject();
  W.member("subgoals", static_cast<uint64_t>(Engine.subgoals().size()));
  W.member("answers", S.AnswersRecorded);
  W.member("table_space_bytes",
           static_cast<uint64_t>(Engine.tableSpaceBytes()));
  W.member("warm_hits", S.WarmTableHits);
  W.member("cold_misses", S.ColdTableMisses);
  W.member("incomplete_tables", S.IncompleteTables);
  W.member("tables_invalidated", S.TablesInvalidated);
  W.endObject();

  // Top-N tables by bytes or answers.
  std::vector<const Subgoal *> Ranked(Engine.subgoals().begin(),
                                      Engine.subgoals().end());
  // "contention" ranks the shard list below; tables fall back to bytes.
  bool ByAnswers = Sort == "answers";
  std::sort(Ranked.begin(), Ranked.end(),
            [&](const Subgoal *A, const Subgoal *B) {
              if (ByAnswers)
                return Engine.answerCount(*A) > Engine.answerCount(*B);
              return Engine.subgoalMemoryBytes(*A) >
                     Engine.subgoalMemoryBytes(*B);
            });
  if (Ranked.size() > TopN)
    Ranked.resize(TopN);
  W.key("top_tables");
  W.beginArray();
  for (const Subgoal *SG : Ranked) {
    W.beginObject();
    W.member("call", Engine.formatCall(*SG));
    W.member("pred", Symbols.name(SG->Pred.Sym) + "/" +
                         std::to_string(SG->Pred.Arity));
    W.member("answers", static_cast<uint64_t>(Engine.answerCount(*SG)));
    W.member("bytes", static_cast<uint64_t>(Engine.subgoalMemoryBytes(*SG)));
    W.member("complete", SG->Complete);
    W.member("incomplete", SG->Incomplete);
    W.member("invalidated", SG->Invalidated);
    W.member("completed_in_query", SG->CompletedInQuery);
    W.endObject();
  }
  W.endArray();

  // Per-predicate reuse rates.
  W.key("predicates");
  W.beginArray();
  for (const PredMetrics *PM : Metrics.predicates()) {
    if (!PM->Calls && !PM->TableSubgoals)
      continue;
    W.beginObject();
    W.member("pred", PM->qualifiedName());
    W.member("calls", PM->Calls);
    W.member("warm_hits", PM->WarmHits);
    W.member("cold_misses", PM->ColdMisses);
    uint64_t Reuse = PM->WarmHits + PM->ColdMisses;
    W.member("warm_hit_rate",
             Reuse ? double(PM->WarmHits) / double(Reuse) : 0.0);
    W.member("table_subgoals", PM->TableSubgoals);
    W.member("table_answers", PM->TableAnswers);
    W.member("table_bytes", PM->TableBytes);
    W.endObject();
  }
  W.endArray();

  W.key("dep_index");
  W.beginObject();
  W.member("edges",
           static_cast<uint64_t>(Engine.dependencyIndex().edgeCount()));
  W.member("producers",
           static_cast<uint64_t>(Engine.dependencyIndex().producerCount()));
  W.member("bytes",
           static_cast<uint64_t>(Engine.dependencyIndex().memoryBytes()));
  W.endObject();

  const SharedTableSpace::Stats &SS = Engine.sharedTableStats();
  W.key("shared_space");
  W.beginObject();
  W.member("lookups", SS.Lookups);
  W.member("warm_hits", SS.WarmHits);
  W.member("inflight_misses", SS.InFlightMisses);
  W.member("claims", SS.Claims);
  W.member("publishes", SS.Publishes);
  W.member("retired", SS.Retired);
  W.member("lock_acquisitions", SS.LockAcquisitions);
  W.member("lock_contended", SS.LockContended);
  W.member("lock_wait_ns", SS.LockWaitNs);
  W.key("shards");
  W.beginArray();
  {
    // Keep the shard index stable under re-ranking: an operator chasing a
    // hot lock needs "shard 3 is contended", not its sorted position.
    std::vector<SharedTableSpace::ShardStats> Shards =
        Engine.sharedShardStats();
    std::vector<std::pair<uint32_t, const SharedTableSpace::ShardStats *>>
        Indexed;
    Indexed.reserve(Shards.size());
    for (size_t I = 0; I < Shards.size(); ++I)
      Indexed.emplace_back(static_cast<uint32_t>(I), &Shards[I]);
    auto Ratio = [](const SharedTableSpace::ShardStats &S) {
      return S.LockAcquisitions
                 ? double(S.LockContended) / double(S.LockAcquisitions)
                 : 0.0;
    };
    if (Sort == "contention")
      std::sort(Indexed.begin(), Indexed.end(),
                [&](const auto &A, const auto &B) {
                  return Ratio(*A.second) > Ratio(*B.second);
                });
    for (const auto &[Idx, Sh] : Indexed) {
      W.beginObject();
      W.member("shard", static_cast<uint64_t>(Idx));
      W.member("lookups", Sh->Lookups);
      W.member("warm_hits", Sh->WarmHits);
      W.member("claims", Sh->Claims);
      W.member("retired", Sh->Retired);
      W.member("entries", static_cast<uint64_t>(Sh->Entries));
      W.member("lock_acquisitions", Sh->LockAcquisitions);
      W.member("lock_contended", Sh->LockContended);
      W.member("lock_wait_ns", Sh->LockWaitNs);
      W.member("contention_ratio", Ratio(*Sh));
      W.endObject();
    }
  }
  W.endArray();
  W.endObject();

  W.key("recorder");
  Fr.writeJson(W, /*MaxEvents=*/32);
  W.endObject();
  return Out;
}

std::string AnalysisSession::warmColdLine() const {
  char L[160];
  std::snprintf(L, sizeof(L),
                "Warm/cold: %llu warm table hits, %llu cold misses "
                "(%.1f%% warm) across %llu queries\n",
                static_cast<unsigned long long>(Stats.warmHits()),
                static_cast<unsigned long long>(Stats.coldMisses()),
                Stats.warmHitRate() * 100.0,
                static_cast<unsigned long long>(Stats.queriesServed()));
  return L;
}

std::string AnalysisSession::foldedStacks() {
  if (!Prof)
    return {};
  bool WasRunning = Prof->running();
  if (WasRunning)
    Prof->stop();
  std::string Out;
  if (!Prof->profile().empty())
    Out = Prof->profile().formatFolded(&Symbols);
  if (WasRunning)
    Prof->start();
  return Out;
}

void AnalysisSession::resetStats() {
  Engine.resetStats();
  Stats.reset();
  if (Log)
    Log->info("reset_stats");
}

//===----------------------------------------------------------------------===//
// Cost profiles (explain)
//===----------------------------------------------------------------------===//

ErrorOr<std::string> AnalysisSession::explainJson(std::string_view GoalText,
                                                  size_t TopK,
                                                  size_t MaxSolutions,
                                                  uint64_t DeadlineMs) {
  // Attach a profile for just this query when the session does not record
  // costs everywhere; an already-attached profile (RecordCosts, or a test
  // harness) is reused so its owner keeps seeing its own data.
  bool Attached = Engine.costProfile() != nullptr;
  if (!Attached)
    Engine.setCostProfile(&ExplainCosts);
  auto R = runQuery(GoalText, MaxSolutions, DeadlineMs);
  if (!R) {
    if (!Attached)
      Engine.setCostProfile(nullptr);
    return R.getError();
  }
  CostSummary CS = Engine.exportCostSummary();
  if (!Attached)
    Engine.setCostProfile(nullptr);

  size_t B = GoalText.find_first_not_of(" \t\r\n");
  size_t E = GoalText.find_last_not_of(" \t\r\n");
  std::string_view Shown =
      B == std::string_view::npos ? GoalText : GoalText.substr(B, E - B + 1);

  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.explain.v1");
  W.member("goal", Shown);
  W.member("id", R->Id);
  W.member("solutions", static_cast<uint64_t>(R->Total));
  W.member("wall_ms", R->WallMs);
  W.member("truncated", R->Truncated);
  W.member("incomplete", R->Incomplete);
  W.key("cost");
  writeCostSummaryJson(CS, W, TopK);
  W.endObject();
  return Out;
}

std::string AnalysisSession::explainReport(std::string_view GoalText,
                                           size_t TopK) {
  bool Attached = Engine.costProfile() != nullptr;
  if (!Attached)
    Engine.setCostProfile(&ExplainCosts);
  auto R = runQuery(GoalText);
  if (!R) {
    if (!Attached)
      Engine.setCostProfile(nullptr);
    return "explain: " + R.getError().str() + "\n";
  }
  CostSummary CS = Engine.exportCostSummary();
  if (!Attached)
    Engine.setCostProfile(nullptr);

  std::string Out;
  char L[200];
  double WallMs = double(CS.QueryWallNs) / 1e6;
  double Pct = CS.QueryWallNs
                   ? 100.0 * double(CS.AttributedNs) / double(CS.QueryWallNs)
                   : 0.0;
  std::snprintf(L, sizeof(L),
                "Query %llu: %zu solutions in %.3f ms; %.1f%% attributed to "
                "%zu subgoals (root %.3f ms)\n",
                static_cast<unsigned long long>(CS.QueryId), R->Total, WallMs,
                Pct, CS.Nodes.size(), double(CS.RootNs) / 1e6);
  Out += L;
  if (CS.Nodes.empty())
    return Out;

  std::vector<const CostNode *> BySelf;
  BySelf.reserve(CS.Nodes.size());
  for (const CostNode &N : CS.Nodes)
    BySelf.push_back(&N);
  std::sort(BySelf.begin(), BySelf.end(),
            [](const CostNode *A, const CostNode *B) {
              return A->SelfNs > B->SelfNs;
            });
  if (TopK && BySelf.size() > TopK)
    BySelf.resize(TopK);

  TextTable Tab;
  Tab.addRow({"Self ms", "Cum ms", "Steps", "AnsIn", "AnsOut", "Resum",
              "Warm", "Call"});
  for (const CostNode *N : BySelf)
    Tab.addRow({TextTable::fmt(double(N->SelfNs) / 1e6, 3),
                TextTable::fmt(double(N->CumNs) / 1e6, 3),
                std::to_string(N->Steps), std::to_string(N->AnswersInserted),
                std::to_string(N->AnswersConsumed),
                std::to_string(N->Resumptions), N->Warm ? "yes" : "-",
                N->Label});
  Out += Tab.render();

  if (!CS.PerPred.empty()) {
    Out += "Per predicate:\n";
    TextTable PT;
    PT.addRow({"Self ms", "Steps", "Subgoals", "Warm", "Bytes", "Pred"});
    size_t NP = TopK ? std::min(CS.PerPred.size(), TopK) : CS.PerPred.size();
    for (size_t I = 0; I < NP; ++I) {
      const CostRollup &CR = CS.PerPred[I];
      PT.addRow({TextTable::fmt(double(CR.SelfNs) / 1e6, 3),
                 std::to_string(CR.Steps), std::to_string(CR.Subgoals),
                 std::to_string(CR.WarmHits), std::to_string(CR.TableBytes),
                 CR.Key});
    }
    Out += PT.render();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Metrics exposition + history ring
//===----------------------------------------------------------------------===//

void AnalysisSession::tickMetricsHistory() {
  uint64_t Now = Solver::steadyNowNs();
  if (!Hist.due(Now))
    return;
  const EvalStats &S = Engine.stats();
  // Aligned with the addSeries() order in the constructor.
  const uint64_t Values[] = {
      Stats.queriesServed(),
      S.ClauseResolutions,
      S.AnswersRecorded,
      S.WarmTableHits,
      S.ColdTableMisses,
      S.DeadlineHits,
      S.IncompleteTables,
      S.TablesInvalidated,
      Slow.captured(),
      Fr.alarmCount(),
      static_cast<uint64_t>(Engine.tableSpaceBytes()),
      static_cast<uint64_t>(Engine.subgoals().size()),
      static_cast<uint64_t>(Engine.dependencyIndex().edgeCount()),
  };
  Hist.sample(Now, Values);
}

std::string AnalysisSession::metricsText() {
  Engine.snapshotTableMetrics(Metrics);
  const EvalStats &S = Engine.stats();
  const TableWatermarks &WM = Engine.watermarks();

  std::string Out;
  PrometheusWriter P(Out);
  P.gauge("lpa_uptime_seconds", "Seconds since service start (or reset)",
          double(Stats.uptimeMs()) / 1000.0);
  P.counter("lpa_queries_total", "Queries served", Stats.queriesServed());
  P.counter("lpa_queries_truncated_total",
            "Queries whose deadline expired mid-search",
            Stats.truncatedQueries());
  P.counter("lpa_clause_resolutions_total",
            "Program-clause resolution attempts", S.ClauseResolutions);
  P.counter("lpa_answers_recorded_total",
            "Unique answers entered into tables", S.AnswersRecorded);
  P.counter("lpa_answers_duplicate_total",
            "Answers rejected by the variant check", S.AnswersDuplicate);
  P.counter("lpa_fixpoint_rounds_total", "SCC fixpoint iteration rounds",
            S.FixpointRounds);
  P.counter("lpa_warm_table_hits_total",
            "Tabled calls answered from an earlier query's table",
            S.WarmTableHits);
  P.counter("lpa_cold_table_misses_total",
            "Tabled calls that created a new subgoal variant",
            S.ColdTableMisses);
  P.counter("lpa_deadline_hits_total",
            "Query deadlines that expired during evaluation", S.DeadlineHits);
  P.counter("lpa_incomplete_tables_total",
            "Tables completed under depth or deadline pruning",
            S.IncompleteTables);
  P.counter("lpa_tables_invalidated_total",
            "Completed tables tombstoned by consult/retract sweeps",
            S.TablesInvalidated);
  P.counter("lpa_tables_revived_total",
            "Tombstoned tables re-derived on demand", S.TablesRevived);
  P.gauge("lpa_table_space_bytes", "Live answer-table footprint",
          double(Engine.tableSpaceBytes()));
  P.gauge("lpa_peak_table_space_bytes", "High-water table footprint",
          double(WM.PeakTableSpaceBytes));
  P.gauge("lpa_subgoals", "Tabled subgoal variants resident",
          double(Engine.subgoals().size()));
  P.gauge("lpa_dep_index_edges", "Dependency-index edges resident",
          double(Engine.dependencyIndex().edgeCount()));
  P.gauge("lpa_dep_index_bytes", "Dependency-index footprint",
          double(Engine.dependencyIndex().memoryBytes()));
  P.counter("lpa_recorder_events_total", "Flight-recorder events journaled",
            Fr.totalRecorded());
  P.counter("lpa_recorder_alarms_total",
            "Deadline/incomplete anomaly events journaled", Fr.alarmCount());
  P.gauge("lpa_slowlog_entries", "Slow-query exemplars resident",
          double(Slow.size()));
  P.counter("lpa_slowlog_captured_total", "Slow-query exemplars captured",
            Slow.captured());
  P.counter("lpa_slowlog_persisted_total",
            "Slow-query exemplar files written", Slow.persisted());
  P.counter("lpa_metrics_history_samples_total",
            "History-ring snapshots taken", Hist.totalSamples());
  P.counter("lpa_metrics_history_evicted_total",
            "History-ring snapshots evicted", Hist.evicted());
  if (Prof) {
    P.gauge("lpa_sampler_effective_hz",
            "Sampling rate last sweep (boosted when alarmed)",
            double(Prof->effectiveHz()));
    P.counter("lpa_sampler_boosted_sweeps_total",
              "Sampler sweeps taken at the boosted rate",
              Prof->boostedSweeps());
  }
  P.histogramLog2("lpa_query_latency_us",
                  "Per-query wall latency in microseconds", Stats.latency());
  for (const PredMetrics *PM : Metrics.predicates()) {
    if (!PM->Calls && !PM->TableSubgoals)
      continue;
    std::string Name = PM->qualifiedName();
    P.counterLabeled("lpa_pred_calls_total", "Calls per predicate", "pred",
                     Name, PM->Calls);
    P.counterLabeled("lpa_pred_resolutions_total",
                     "Clause resolutions per predicate", "pred", Name,
                     PM->Resolutions);
    P.counterLabeled("lpa_pred_warm_hits_total",
                     "Warm table hits per predicate", "pred", Name,
                     PM->WarmHits);
    P.gaugeLabeled("lpa_pred_table_bytes", "Table footprint per predicate",
                   "pred", Name, double(PM->TableBytes));
  }
  return Out;
}

std::string AnalysisSession::metricsJson(size_t MaxSamples) {
  tickMetricsHistory();
  std::string Out;
  JsonWriter W(Out);
  W.beginObject();
  W.member("schema", "lpa.metrics.v1");
  // The exposition rides as one escaped string member so the protocol's
  // one-JSON-object-per-line invariant holds; scrapers unwrap one field.
  W.member("exposition", metricsText());
  W.key("history");
  Hist.writeJson(W, MaxSamples);
  W.endObject();
  return Out;
}
