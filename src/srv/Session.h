//===- Session.h - Shared REPL/daemon command layer -------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One long-lived analysis session: the loaded program, a persistent
/// Solver whose tables survive across queries (the XSB-style warm-table
/// payoff the ROADMAP's service north-star banks on), the observability
/// stack wired to it (tracer, metrics registry, sampling cursor, optional
/// background sampler), and the service telemetry (ServiceStats).
///
/// Both front ends drive this one layer: the interactive REPL
/// (examples/repl.cpp) and the lpa_serve daemon (src/srv/Protocol.h +
/// tools/lpa_serve.cpp). Each query runs under a QueryContext carrying a
/// monotonic id — so every trace event, sampler stack and warm/cold
/// counter delta is attributable to the query that caused it — and an
/// optional deadline.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SRV_SESSION_H
#define LPA_SRV_SESSION_H

#include "engine/Solver.h"
#include "obs/FlightRecorder.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/MetricsHistory.h"
#include "obs/Sampler.h"
#include "obs/Trace.h"
#include "srv/ServiceStats.h"
#include "srv/SlowLog.h"

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace lpa {

/// The shared command layer. Not thread-safe: one session serves one
/// request stream (the daemon is a single-threaded event loop; parallel
/// service would shard sessions the way the corpus fleet shards solvers).
class AnalysisSession {
public:
  struct Options {
    /// Record justifications (the REPL's ":why" needs them; the daemon
    /// leaves them off unless asked — long-lived arenas grow).
    bool RecordProvenance = false;
    /// Record per-subgoal cost profiles on *every* query
    /// (Solver::Options::RecordCosts). Off by default: `explain` attaches
    /// a profile for just its own query, so ordinary sessions pay only
    /// the null-test disabled path.
    bool RecordCosts = false;
    /// Background sampling profiler rate; 0 = no sampler thread (the
    /// cursor is still attached, so a later profiler could be).
    uint32_t SampleHz = 0;
    /// Lane label for the sampler ("repl", "serve", ...).
    std::string SampleLane = "srv";
    /// Intra-query evaluation workers (Solver::Options::EvalWorkers).
    /// 0/1 = serial; N > 1 primes independent tabled seeds in parallel.
    /// When a sampler is attached, each eval worker gets its own lane
    /// ("<SampleLane>.wK") so worker stacks fold separately.
    size_t EvalWorkers = Solver::defaultEvalWorkers();
    /// Structured logger (borrowed, may be null).
    Logger *Log = nullptr;
    /// Telemetry ring sizes.
    ServiceStats::Options Stats;
    /// Flight-recorder ring capacity and post-mortem dump policy. The
    /// recorder itself is always on (it is request-granular and bounded);
    /// dumps only happen when Recorder.DumpDir is set.
    FlightRecorder::Options Recorder;
    /// Slow-query exemplar capture (SlowLog.ThresholdMs: > 0 fixed ms,
    /// 0 adaptive vs the rolling p95, < 0 off). SlowLog.Dir persists
    /// evicted/shutdown exemplars and reloads them on start.
    SlowQueryLog::Options SlowLog;
    /// Telemetry ring of periodic counter/gauge snapshots, sampled
    /// opportunistically per protocol request and served by the
    /// `metrics` op.
    MetricsHistory::Options History;
  };

  /// What one query returned. Solutions are rendered as text because the
  /// heap bindings they came from are unwound by the time solve returns.
  struct QueryResult {
    uint64_t Id = 0;
    size_t Total = 0; ///< All solutions found (not just those rendered).
    std::vector<std::string> Solutions; ///< First MaxSolutions, rendered.
    double WallMs = 0;
    uint64_t WarmHits = 0;
    uint64_t ColdMisses = 0;
    bool Truncated = false; ///< The deadline expired mid-search.
    /// A table completed tainted during this query (depth/deadline
    /// pruning starved a producer), so the answer set may be a strict
    /// subset of the minimal model even when Truncated is false.
    bool Incomplete = false;
  };

  AnalysisSession() : AnalysisSession(Options{}) {}
  explicit AnalysisSession(Options O);
  ~AnalysisSession(); ///< Stops the sampler if one is running.

  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  /// What one program mutation (consult/retract) did to the warm tables.
  struct ConsultResult {
    size_t Loaded = 0;  ///< Clauses added (consult) or removed (retract).
    uint64_t TablesInvalidated = 0; ///< Warm tables in the changed cone.
    uint64_t TablesSurvived = 0;    ///< Warm tables outside it, kept.
  };

  /// Loads clauses/directives into the database (the dynamic-code path
  /// both front ends use), then invalidates exactly the completed tables
  /// whose predicates transitively depend on what changed — a warm
  /// session never serves answers derived under the old program, and
  /// never re-derives tables the change cannot reach.
  ErrorOr<ConsultResult> consult(std::string_view ProgramText);

  /// Parses \p ClauseText as one clause and retracts the first stored
  /// variant of it (Database::retract), then invalidates the changed
  /// cone exactly like consult(). Loaded is the number of clauses
  /// removed (0 when nothing matched — no invalidation happens then).
  ErrorOr<ConsultResult> retract(std::string_view ClauseText);

  /// Parses and proves \p GoalText under a fresh QueryContext: bumps the
  /// query id, arms the deadline (0 = none), collects up to
  /// \p MaxSolutions rendered solutions, and folds latency and warm/cold
  /// deltas into the service telemetry.
  ErrorOr<QueryResult> runQuery(std::string_view GoalText,
                                size_t MaxSolutions = 10,
                                uint64_t DeadlineMs = 0);

  /// The full stats snapshot (schema "lpa.stats.v1"): service telemetry,
  /// engine metrics (per-predicate + counters + watermarks), and — when a
  /// sampler is attached — its folded profile. The sampler pauses around
  /// the profile read (profile() is only stable stopped) and resumes.
  std::string statsJson();

  /// The cheap liveness snapshot (schema "lpa.health.v1").
  std::string healthJson() const;

  /// The slow-query log (schema "lpa.slowlog.v1"), most-recent first.
  std::string slowlogJson() const;

  /// Evaluates \p GoalText with a cost profile attached (temporarily, when
  /// the session does not already record costs) and returns the top-\p
  /// TopK cost tree (schema "lpa.explain.v1"): query outcome plus the
  /// full CostSummary — per-subgoal self/cumulative ns, steps, answer
  /// traffic, and the per-predicate / per-SCC rollups.
  ErrorOr<std::string> explainJson(std::string_view GoalText,
                                   size_t TopK = 10,
                                   size_t MaxSolutions = 10,
                                   uint64_t DeadlineMs = 0);

  /// Human-readable cost profile for the REPL's ":explain" (parse errors
  /// render inline).
  std::string explainReport(std::string_view GoalText, size_t TopK = 10);

  /// Current values in Prometheus text exposition format (counters,
  /// gauges, the latency histogram, per-predicate labeled series).
  std::string metricsText();

  /// The `metrics` op payload (schema "lpa.metrics.v1"): the exposition
  /// text as an escaped string field plus the history ring
  /// (MetricsHistory::writeJson, bounded by \p MaxSamples).
  std::string metricsJson(size_t MaxSamples = 0);

  /// Samples the history ring if its interval has elapsed. The protocol
  /// layer calls this once per request — opportunistic sampling, no
  /// extra thread.
  void tickMetricsHistory();

  /// Live table-space introspection (schema "lpa.inspect.v1"): top-\p
  /// TopN tables by \p Sort ("bytes" or "answers"), per-predicate
  /// warm-hit rates, dependency-index size, shared-space retirement and
  /// per-shard contention, and the flight-recorder tail. This is the
  /// feed `tools/lpa_top` renders and the ROADMAP's eviction/shard-tuning
  /// work reads.
  std::string inspectJson(size_t TopN = 10, std::string_view Sort = "bytes");

  /// Human-readable slow-query table for the REPL's ":slowlog".
  std::string slowlogReport() const;

  /// One-line warm/cold summary for the REPL's ":stats".
  std::string warmColdLine() const;

  /// The REPL's ":queries" report (latency histogram + recent queries).
  std::string queriesReport() const { return Stats.renderReport(); }

  /// Folded sampler stacks (empty string when no sampler or no samples).
  /// Pauses and resumes the sampler like statsJson().
  std::string foldedStacks();

  /// Zeroes engine counters AND service telemetry — including the
  /// cumulative invalidation counters (tables_invalidated /
  /// tables_survived): counters are per-window, always. What survives a
  /// reset is *state*, never counts: completed tables stay warm,
  /// tombstoned tables stay tombstoned, and the dependency index keeps
  /// its edges, so post-reset queries report pure warm traffic and a
  /// post-reset consult still invalidates exactly the right cone.
  void resetStats();

  /// \name Component access for front-end-specific commands
  /// (":why", ":forest", ":trace on") — prefer the methods above.
  /// @{
  Solver &solver() { return Engine; }
  const Solver &solver() const { return Engine; }
  SymbolTable &symbols() { return Symbols; }
  Database &database() { return DB; }
  Tracer &tracer() { return Trace; }
  MetricsRegistry &metrics() { return Metrics; }
  ServiceStats &serviceStats() { return Stats; }
  Sampler *sampler() { return Prof.get(); }
  Logger *log() { return Log; }
  FlightRecorder &flightRecorder() { return Fr; }
  SlowQueryLog &slowlog() { return Slow; }
  MetricsHistory &metricsHistory() { return Hist; }
  /// @}

  uint64_t queriesServed() const { return Stats.queriesServed(); }

private:
  /// Shared tail of consult()/retract(): sweeps the tables whose
  /// predicates changed after revision \p FromRev and folds the counts
  /// into the service telemetry.
  ConsultResult sweepInvalidation(uint64_t FromRev, size_t Loaded);

  /// Captures a slow-query exemplar for the query that just finished:
  /// per-predicate deltas against \p PredsBefore, top tables by bytes,
  /// and the recorder slice for \p R.Id.
  void captureSlowQuery(const QueryResult &R, std::string_view Goal,
                        double ThresholdMs,
                        const std::vector<std::pair<
                            std::string, std::array<uint64_t, 3>>> &PredsBefore);

  /// Writes a post-mortem (recorder + watermarks + folded stacks) for an
  /// anomalous query; no-op unless the recorder has a dump directory.
  void dumpAnomaly(std::string_view Reason);

  Options Opts;
  SymbolTable Symbols;
  Database DB;
  Solver Engine;
  Tracer Trace;
  MetricsRegistry Metrics;
  EvalCursor Cursor;
  std::unique_ptr<Sampler> Prof; ///< Null when Options::SampleHz == 0.
  ServiceStats Stats;
  FlightRecorder Fr; ///< Always-on bounded journal (engine-attached).
  SlowQueryLog Slow; ///< Slow-query exemplars (LRU).
  MetricsHistory Hist; ///< Periodic counter/gauge snapshot ring.
  /// The profile `explain` attaches for its one query when the session
  /// does not record costs everywhere (Options::RecordCosts).
  CostProfile ExplainCosts;
  Logger *Log = nullptr;
  QueryContext Ctx;        ///< Attached to the engine for the session's life.
  uint64_t NextQueryId = 0;
};

} // namespace lpa

#endif // LPA_SRV_SESSION_H
