//===- SlowLog.cpp - Slow-query exemplar store --------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "srv/SlowLog.h"

#include "obs/Json.h"

using namespace lpa;

void SlowQueryLog::insert(SlowQueryExemplar E) {
  auto It = ById.find(E.Id);
  if (It != ById.end()) {
    // Same query id re-captured: replace the payload and refresh.
    *It->second = std::move(E);
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  if (Opts.Capacity && Order.size() >= Opts.Capacity) {
    ById.erase(Order.back().Id);
    Order.pop_back();
    ++Evicted;
  }
  Order.push_front(std::move(E));
  ById[Order.front().Id] = Order.begin();
  ++Captured;
}

const SlowQueryExemplar *SlowQueryLog::get(uint64_t Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return nullptr;
  Order.splice(Order.begin(), Order, It->second);
  return &*It->second;
}

std::vector<const SlowQueryExemplar *> SlowQueryLog::entries() const {
  std::vector<const SlowQueryExemplar *> Out;
  Out.reserve(Order.size());
  for (const SlowQueryExemplar &E : Order)
    Out.push_back(&E);
  return Out;
}

void SlowQueryLog::clear() {
  Order.clear();
  ById.clear();
}

void SlowQueryLog::writeJson(JsonWriter &W, double ThresholdNowMs) const {
  W.beginObject();
  W.member("schema", "lpa.slowlog.v1");
  W.member("capacity", static_cast<uint64_t>(Opts.Capacity));
  W.member("count", static_cast<uint64_t>(Order.size()));
  W.member("captured", Captured);
  W.member("evicted", Evicted);
  W.member("threshold_ms", ThresholdNowMs);
  W.key("entries");
  W.beginArray();
  for (const SlowQueryExemplar &E : Order) {
    W.beginObject();
    W.member("id", E.Id);
    W.member("goal", std::string_view(E.Goal));
    W.member("wall_ms", E.WallMs);
    W.member("threshold_ms", E.ThresholdMs);
    W.member("solutions", E.Solutions);
    W.member("warm_hits", E.WarmHits);
    W.member("cold_misses", E.ColdMisses);
    W.member("deadline_hit", E.DeadlineHit);
    W.member("incomplete", E.Incomplete);
    W.key("top_preds");
    W.beginArray();
    for (const SlowQueryExemplar::PredDelta &P : E.TopPreds) {
      W.beginObject();
      W.member("pred", std::string_view(P.Pred));
      W.member("calls", P.Calls);
      W.member("resolutions", P.Resolutions);
      W.member("new_answers", P.NewAnswers);
      W.endObject();
    }
    W.endArray();
    W.key("top_tables");
    W.beginArray();
    for (const SlowQueryExemplar::TableEntry &T : E.TopTables) {
      W.beginObject();
      W.member("call", std::string_view(T.Call));
      W.member("answers", T.Answers);
      W.member("bytes", T.Bytes);
      W.member("incomplete", T.Incomplete);
      W.endObject();
    }
    W.endArray();
    W.key("trace");
    W.beginArray();
    for (const FrEvent &Ev : E.Trace) {
      W.beginObject();
      W.member("kind", frEventKindName(Ev.Kind));
      W.member("time_ns", Ev.TimeNs);
      if (Ev.Flags)
        W.member("flags", static_cast<uint64_t>(Ev.Flags));
      if (Ev.A)
        W.member("a", Ev.A);
      if (Ev.Detail[0])
        W.member("detail", std::string_view(Ev.Detail));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
}
