//===- SlowLog.cpp - Slow-query exemplar store --------------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "srv/SlowLog.h"

#include "obs/Json.h"
#include "support/JsonValue.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace lpa;

void lpa::writeExemplarJson(const SlowQueryExemplar &E, JsonWriter &W,
                            bool Schema) {
  W.beginObject();
  if (Schema)
    W.member("schema", "lpa.slowlog.exemplar.v1");
  W.member("id", E.Id);
  W.member("goal", std::string_view(E.Goal));
  W.member("wall_ms", E.WallMs);
  W.member("threshold_ms", E.ThresholdMs);
  W.member("solutions", E.Solutions);
  W.member("warm_hits", E.WarmHits);
  W.member("cold_misses", E.ColdMisses);
  W.member("deadline_hit", E.DeadlineHit);
  W.member("incomplete", E.Incomplete);
  W.key("top_preds");
  W.beginArray();
  for (const SlowQueryExemplar::PredDelta &P : E.TopPreds) {
    W.beginObject();
    W.member("pred", std::string_view(P.Pred));
    W.member("calls", P.Calls);
    W.member("resolutions", P.Resolutions);
    W.member("new_answers", P.NewAnswers);
    W.endObject();
  }
  W.endArray();
  W.key("top_tables");
  W.beginArray();
  for (const SlowQueryExemplar::TableEntry &T : E.TopTables) {
    W.beginObject();
    W.member("call", std::string_view(T.Call));
    W.member("answers", T.Answers);
    W.member("bytes", T.Bytes);
    W.member("incomplete", T.Incomplete);
    W.endObject();
  }
  W.endArray();
  W.key("trace");
  W.beginArray();
  for (const FrEvent &Ev : E.Trace) {
    W.beginObject();
    W.member("kind", frEventKindName(Ev.Kind));
    W.member("time_ns", Ev.TimeNs);
    if (Ev.Flags)
      W.member("flags", static_cast<uint64_t>(Ev.Flags));
    if (Ev.A)
      W.member("a", Ev.A);
    if (Ev.Detail[0])
      W.member("detail", std::string_view(Ev.Detail));
    W.endObject();
  }
  W.endArray();
  // Cost rollup: only meaningful (and only emitted) when the capturing
  // session ran with a cost profile attached.
  if (!E.TopCosts.empty() || E.CostAttributedNs || E.CostRootNs) {
    W.key("cost");
    W.beginObject();
    W.member("attributed_ns", E.CostAttributedNs);
    W.member("root_ns", E.CostRootNs);
    W.key("per_pred");
    W.beginArray();
    for (const SlowQueryExemplar::CostLine &C : E.TopCosts) {
      W.beginObject();
      W.member("pred", std::string_view(C.Pred));
      W.member("self_ns", C.SelfNs);
      W.member("steps", C.Steps);
      W.member("warm_hits", static_cast<uint64_t>(C.WarmHits));
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();
}

void SlowQueryLog::insert(SlowQueryExemplar E) {
  auto It = ById.find(E.Id);
  if (It != ById.end()) {
    // Same query id re-captured: replace the payload and refresh.
    *It->second = std::move(E);
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  if (Opts.Capacity && Order.size() >= Opts.Capacity) {
    // The LRU's memory of the evictee ends here; the file is its afterlife.
    persist(Order.back());
    ById.erase(Order.back().Id);
    Order.pop_back();
    ++Evicted;
  }
  Order.push_front(std::move(E));
  ById[Order.front().Id] = Order.begin();
  ++Captured;
}

const SlowQueryExemplar *SlowQueryLog::get(uint64_t Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return nullptr;
  Order.splice(Order.begin(), Order, It->second);
  return &*It->second;
}

std::vector<const SlowQueryExemplar *> SlowQueryLog::entries() const {
  std::vector<const SlowQueryExemplar *> Out;
  Out.reserve(Order.size());
  for (const SlowQueryExemplar &E : Order)
    Out.push_back(&E);
  return Out;
}

void SlowQueryLog::clear() {
  Order.clear();
  ById.clear();
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

void SlowQueryLog::persist(const SlowQueryExemplar &E) {
  if (Opts.Dir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Opts.Dir, EC);
  // Zero-padded id: lexical directory order is insertion order, so the
  // reload below needs no numeric sort key beyond the name.
  char Name[48];
  std::snprintf(Name, sizeof(Name), "slow-q%016llu.json",
                static_cast<unsigned long long>(E.Id));
  std::string Path = Opts.Dir + "/" + Name;
  std::string Text;
  JsonWriter W(Text);
  writeExemplarJson(E, W, /*Schema=*/true);
  Text += '\n';
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return;
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  ++Persisted;
}

void SlowQueryLog::persistAll() {
  if (Opts.Dir.empty())
    return;
  for (const SlowQueryExemplar &E : Order)
    persist(E);
}

namespace {

bool parseFrEventKind(const std::string &Name, FrEventKind &Out) {
  for (uint8_t K = 0; K <= uint8_t(FrEventKind::FingerprintDivergence); ++K)
    if (Name == frEventKindName(static_cast<FrEventKind>(K))) {
      Out = static_cast<FrEventKind>(K);
      return true;
    }
  return false;
}

SlowQueryExemplar exemplarFromJson(const JsonValue &V) {
  SlowQueryExemplar E;
  E.Id = static_cast<uint64_t>(V.numberOr("id", 0));
  E.Goal = V.stringOr("goal", "");
  E.WallMs = V.numberOr("wall_ms", 0);
  E.ThresholdMs = V.numberOr("threshold_ms", 0);
  E.Solutions = static_cast<uint64_t>(V.numberOr("solutions", 0));
  E.WarmHits = static_cast<uint64_t>(V.numberOr("warm_hits", 0));
  E.ColdMisses = static_cast<uint64_t>(V.numberOr("cold_misses", 0));
  if (const JsonValue *B = V.find("deadline_hit"))
    E.DeadlineHit = B->asBool();
  if (const JsonValue *B = V.find("incomplete"))
    E.Incomplete = B->asBool();
  if (const JsonValue *A = V.find("top_preds"); A && A->isArray())
    for (const JsonValue &P : A->items()) {
      SlowQueryExemplar::PredDelta D;
      D.Pred = P.stringOr("pred", "");
      D.Calls = static_cast<uint64_t>(P.numberOr("calls", 0));
      D.Resolutions = static_cast<uint64_t>(P.numberOr("resolutions", 0));
      D.NewAnswers = static_cast<uint64_t>(P.numberOr("new_answers", 0));
      E.TopPreds.push_back(std::move(D));
    }
  if (const JsonValue *A = V.find("top_tables"); A && A->isArray())
    for (const JsonValue &T : A->items()) {
      SlowQueryExemplar::TableEntry TE;
      TE.Call = T.stringOr("call", "");
      TE.Answers = static_cast<uint64_t>(T.numberOr("answers", 0));
      TE.Bytes = static_cast<uint64_t>(T.numberOr("bytes", 0));
      if (const JsonValue *B = T.find("incomplete"))
        TE.Incomplete = B->asBool();
      E.TopTables.push_back(std::move(TE));
    }
  if (const JsonValue *A = V.find("trace"); A && A->isArray())
    for (const JsonValue &T : A->items()) {
      FrEvent Ev;
      if (!parseFrEventKind(T.stringOr("kind", ""), Ev.Kind))
        continue;
      Ev.TimeNs = static_cast<uint64_t>(T.numberOr("time_ns", 0));
      Ev.Flags = static_cast<uint32_t>(T.numberOr("flags", 0));
      Ev.A = static_cast<uint64_t>(T.numberOr("a", 0));
      Ev.QueryId = E.Id;
      std::string Detail = T.stringOr("detail", "");
      size_t N = std::min(Detail.size(), sizeof(Ev.Detail) - 1);
      std::copy_n(Detail.data(), N, Ev.Detail);
      Ev.Detail[N] = '\0';
      E.Trace.push_back(Ev);
    }
  if (const JsonValue *C = V.find("cost"); C && C->isObject()) {
    E.CostAttributedNs =
        static_cast<uint64_t>(C->numberOr("attributed_ns", 0));
    E.CostRootNs = static_cast<uint64_t>(C->numberOr("root_ns", 0));
    if (const JsonValue *A = C->find("per_pred"); A && A->isArray())
      for (const JsonValue &P : A->items()) {
        SlowQueryExemplar::CostLine L;
        L.Pred = P.stringOr("pred", "");
        L.SelfNs = static_cast<uint64_t>(P.numberOr("self_ns", 0));
        L.Steps = static_cast<uint64_t>(P.numberOr("steps", 0));
        L.WarmHits = static_cast<uint32_t>(P.numberOr("warm_hits", 0));
        E.TopCosts.push_back(std::move(L));
      }
  }
  return E;
}

} // namespace

void SlowQueryLog::loadFromDir() {
  std::error_code EC;
  std::filesystem::directory_iterator It(Opts.Dir, EC);
  if (EC)
    return;
  std::vector<std::string> Paths;
  for (const auto &Entry : It) {
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("slow-q", 0) == 0 &&
        Name.size() > 5 && Name.substr(Name.size() - 5) == ".json")
      Paths.push_back(Entry.path().string());
  }
  // Zero-padded names: lexical order == query-id order; replaying them in
  // ascending order leaves the highest ids most recent, matching the
  // recency the previous daemon shut down with (ids grow monotonically).
  std::sort(Paths.begin(), Paths.end());
  for (const std::string &P : Paths) {
    ErrorOr<std::string> Text = readFileText(P);
    if (!Text)
      continue;
    ErrorOr<JsonValue> Doc = JsonValue::parse(*Text);
    if (!Doc || !Doc->isObject())
      continue;
    SlowQueryExemplar E = exemplarFromJson(*Doc);
    if (!E.Id)
      continue;
    insert(std::move(E));
    ++Loaded;
  }
  // Reloads are not fresh captures; keep the lifetime counters honest.
  Captured -= std::min<uint64_t>(Captured, Loaded);
}

void SlowQueryLog::writeJson(JsonWriter &W, double ThresholdNowMs) const {
  W.beginObject();
  W.member("schema", "lpa.slowlog.v1");
  W.member("capacity", static_cast<uint64_t>(Opts.Capacity));
  W.member("count", static_cast<uint64_t>(Order.size()));
  W.member("captured", Captured);
  W.member("evicted", Evicted);
  W.member("persisted", Persisted);
  W.member("loaded", Loaded);
  W.member("threshold_ms", ThresholdNowMs);
  W.key("entries");
  W.beginArray();
  for (const SlowQueryExemplar &E : Order)
    writeExemplarJson(E, W);
  W.endArray();
  W.endObject();
}
