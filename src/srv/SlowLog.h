//===- SlowLog.h - Slow-query exemplar store --------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's slow-query log: when a query's wall time crosses a
/// threshold — fixed, or adaptive against the service's rolling p95 — the
/// session captures a full *exemplar* (per-predicate metrics deltas,
/// top-K tables by bytes, the flight-recorder slice for that query,
/// warm/cold counts and outcome flags) into this bounded LRU store.
/// Surfaced by the `slowlog` protocol op and the REPL's `:slowlog`.
///
/// Exemplars are capture-time snapshots: everything is copied out of the
/// live engine at the moment the query finishes, so an entry stays
/// meaningful after the tables it describes are invalidated or the stats
/// are reset. The store is an LRU over query ids — lookups refresh
/// recency, inserts evict the least-recently-touched entry when full —
/// so the entries that survive a burst of slowness are the ones an
/// operator actually looked at plus the newest arrivals.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SRV_SLOWLOG_H
#define LPA_SRV_SLOWLOG_H

#include "obs/FlightRecorder.h"

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lpa {

class JsonWriter;

/// One captured slow query.
struct SlowQueryExemplar {
  uint64_t Id = 0;
  std::string Goal;
  double WallMs = 0;
  double ThresholdMs = 0; ///< The effective threshold it crossed.
  uint64_t Solutions = 0;
  uint64_t WarmHits = 0;
  uint64_t ColdMisses = 0;
  bool DeadlineHit = false;
  bool Incomplete = false;

  /// What one predicate contributed to this query (live-counter deltas
  /// across the solve).
  struct PredDelta {
    std::string Pred; ///< Qualified "name/arity".
    uint64_t Calls = 0;
    uint64_t Resolutions = 0;
    uint64_t NewAnswers = 0;
  };
  /// Top-K predicates by resolution delta, descending.
  std::vector<PredDelta> TopPreds;

  /// One table this query left behind (or grew), ranked by bytes.
  struct TableEntry {
    std::string Call; ///< Rendered subgoal call.
    uint64_t Answers = 0;
    uint64_t Bytes = 0;
    bool Incomplete = false;
  };
  /// Top-K tables by apportioned bytes, descending.
  std::vector<TableEntry> TopTables;

  /// The flight-recorder slice for this query id, captured at insert.
  std::vector<FrEvent> Trace;

  /// Per-predicate self-cost rollup of the query (sessions running with
  /// RecordCosts only; empty otherwise). Mirrors CostSummary::PerPred,
  /// top-K rows by self time.
  struct CostLine {
    std::string Pred; ///< Qualified "name/arity".
    uint64_t SelfNs = 0;
    uint64_t Steps = 0;
    uint32_t WarmHits = 0;
  };
  std::vector<CostLine> TopCosts;
  uint64_t CostAttributedNs = 0; ///< sum of subgoal self times.
  uint64_t CostRootNs = 0;       ///< wall outside every producer.
};

/// Streams one exemplar as a JSON object into \p W. With \p Schema the
/// object leads with "schema":"lpa.slowlog.exemplar.v1" — the standalone
/// form persisted to Options::Dir files; the slowlog op's entries omit it.
void writeExemplarJson(const SlowQueryExemplar &E, JsonWriter &W,
                       bool Schema = false);

/// Bounded LRU store of SlowQueryExemplars. Not thread-safe (session
/// discipline: one request stream).
class SlowQueryLog {
public:
  struct Options {
    /// Exemplars kept; the least-recently-touched is evicted when full.
    size_t Capacity = 16;
    /// Wall threshold in milliseconds. > 0 = fixed; 0 = adaptive (see
    /// effectiveThresholdMs); < 0 disables capture entirely.
    double ThresholdMs = 0;
    /// Adaptive floor: below this a query is never slow, however tight
    /// the p95 is (keeps a freshly started, all-fast daemon from logging
    /// everything).
    double MinWallMs = 10.0;
    /// Adaptive multiplier over the rolling p95.
    double AdaptiveFactor = 3.0;
    /// Per-predicate / per-table rows kept per exemplar.
    size_t TopK = 5;
    /// Persistence directory ("" = in-memory only). Evicted and
    /// shutdown-surviving exemplars are written there as one JSON file
    /// each ("slow-q<id>.json", schema lpa.slowlog.exemplar.v1), and the
    /// LRU reloads from it on construction — a daemon restart keeps its
    /// slow-query history.
    std::string Dir;
  };

  SlowQueryLog() : SlowQueryLog(Options{}) {}
  explicit SlowQueryLog(Options O) : Opts(std::move(O)) {
    if (!Opts.Dir.empty())
      loadFromDir();
  }
  /// Persists every surviving exemplar (Options::Dir mode).
  ~SlowQueryLog() { persistAll(); }

  SlowQueryLog(const SlowQueryLog &) = delete;
  SlowQueryLog &operator=(const SlowQueryLog &) = delete;

  /// The threshold a query must exceed right now, given the service's
  /// rolling-window p95 (microseconds; 0 while the window is empty).
  /// Fixed mode returns Options::ThresholdMs; adaptive mode returns
  /// max(MinWallMs, AdaptiveFactor * p95); disabled mode returns a
  /// negative value.
  double effectiveThresholdMs(uint64_t WindowP95Us) const {
    if (Opts.ThresholdMs < 0)
      return -1;
    if (Opts.ThresholdMs > 0)
      return Opts.ThresholdMs;
    double Adaptive = Opts.AdaptiveFactor * (double(WindowP95Us) / 1000.0);
    return Adaptive > Opts.MinWallMs ? Adaptive : Opts.MinWallMs;
  }

  /// Whether a query that took \p WallMs should be captured.
  bool shouldCapture(double WallMs, uint64_t WindowP95Us) const {
    double T = effectiveThresholdMs(WindowP95Us);
    return T >= 0 && WallMs >= T;
  }

  /// Inserts \p E as the most-recent entry, evicting the
  /// least-recently-touched one when full. An entry with the same id is
  /// replaced in place (and refreshed).
  void insert(SlowQueryExemplar E);

  /// The exemplar for query \p Id, refreshing its recency; null if absent.
  const SlowQueryExemplar *get(uint64_t Id);

  /// Entries most-recently-touched first (no recency side effect).
  std::vector<const SlowQueryExemplar *> entries() const;

  size_t size() const { return Order.size(); }
  size_t capacity() const { return Opts.Capacity; }
  uint64_t captured() const { return Captured; } ///< Inserts, lifetime.
  uint64_t evicted() const { return Evicted; }   ///< LRU evictions, lifetime.
  uint64_t persisted() const { return Persisted; } ///< Files written.
  uint64_t loaded() const { return Loaded; } ///< Exemplars reloaded at start.
  const Options &options() const { return Opts; }

  /// Writes every current entry to Options::Dir; no-op without a Dir.
  void persistAll();

  void clear();

  /// Emits the whole store as a JSON object (schema "lpa.slowlog.v1"):
  /// {schema, capacity, count, captured, evicted, threshold_ms,
  /// entries:[...]} with entries most-recent first. \p ThresholdNowMs is
  /// the currently effective threshold (adaptive mode moves).
  void writeJson(JsonWriter &W, double ThresholdNowMs) const;

private:
  void persist(const SlowQueryExemplar &E);
  void loadFromDir();

  Options Opts;
  /// Recency list, most-recent first; the map indexes it by query id.
  std::list<SlowQueryExemplar> Order;
  std::unordered_map<uint64_t, std::list<SlowQueryExemplar>::iterator> ById;
  uint64_t Captured = 0;
  uint64_t Evicted = 0;
  uint64_t Persisted = 0;
  uint64_t Loaded = 0;
};

} // namespace lpa

#endif // LPA_SRV_SLOWLOG_H
