//===- StrictTransform.cpp - Figure 3: demand propagation --------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "strictness/StrictTransform.h"

using namespace lpa;

TermRef StrictTransformer::mkClause(TermStore &Dst, TermRef Head,
                                    const std::vector<TermRef> &Goals) {
  if (Goals.empty())
    return Head;
  TermRef Conj = Goals.back();
  for (size_t I = Goals.size() - 1; I-- > 0;)
    Conj = Dst.mkStruct2(Symbols.Comma, Goals[I], Conj);
  return Dst.mkStruct2(Symbols.Neck, Head, Conj);
}

void StrictTransformer::translateExpr(
    const FLExpr &E, TermRef Demand, TermStore &Dst,
    std::unordered_map<std::string, TermRef> &Tau,
    std::vector<TermRef> &Goals) {
  switch (E.K) {
  case FLExpr::Kind::Var: {
    // E[x]a: Tx = a. The first occurrence simply names the demand.
    auto It = Tau.find(E.Name);
    if (It == Tau.end()) {
      Tau.emplace(E.Name, Demand);
      return;
    }
    Goals.push_back(
        Dst.mkStruct2(Symbols.Unify, It->second, Demand));
    return;
  }
  case FLExpr::Kind::IntLit:
    // A literal satisfies any demand; nothing propagates.
    return;
  case FLExpr::Kind::Ctor:
  case FLExpr::Kind::Call:
  case FLExpr::Kind::Prim: {
    if (E.Args.empty())
      return; // 0-ary constructor/function value: no components to demand.
    // E[g(e1..ek)]a: sp_g(a, b1..bk), E[e1]b1, ..., E[ek]bk.
    std::vector<TermRef> SpArgs{Demand};
    std::vector<TermRef> Sub;
    for (size_t I = 0; I < E.Args.size(); ++I) {
      TermRef B = Dst.mkVar();
      SpArgs.push_back(B);
      Sub.push_back(B);
    }
    Goals.push_back(Dst.mkStruct(Symbols.intern(spName(E.Name)), SpArgs));
    for (size_t I = 0; I < E.Args.size(); ++I)
      translateExpr(E.Args[I], Sub[I], Dst, Tau, Goals);
    return;
  }
  }
}

TermRef StrictTransformer::translatePattern(
    const FLPattern &P, TermStore &Dst,
    std::unordered_map<std::string, TermRef> &Tau,
    std::vector<TermRef> &Goals) {
  switch (P.K) {
  case FLPattern::Kind::Var: {
    // The slot *is* tau(x); the rhs translation may already have bound the
    // name to a demand variable.
    auto It = Tau.find(P.Name);
    if (It == Tau.end())
      It = Tau.emplace(P.Name, Dst.mkVar()).first;
    return It->second;
  }
  case FLPattern::Kind::IntLit: {
    TermRef X = Dst.mkVar();
    Goals.push_back(Dst.mkStruct(Symbols.intern("pm_lit"),
                                 std::span<const TermRef>(&X, 1)));
    return X;
  }
  case FLPattern::Kind::Ctor: {
    // Extents flow bottom-up: sub-patterns first, then pm_c.
    std::vector<TermRef> SubSlots;
    for (const FLPattern &Sub : P.Args)
      SubSlots.push_back(translatePattern(Sub, Dst, Tau, Goals));
    TermRef X = Dst.mkVar();
    std::vector<TermRef> PmArgs{X};
    PmArgs.insert(PmArgs.end(), SubSlots.begin(), SubSlots.end());
    Goals.push_back(Dst.mkStruct(Symbols.intern(pmName(P.Name)), PmArgs));
    return X;
  }
  }
  return InvalidTerm;
}

ErrorOr<bool> StrictTransformer::transformEquation(const FLEquation &Eq,
                                                   TermStore &Dst,
                                                   StrictProgram &Out) {
  std::unordered_map<std::string, TermRef> Tau;
  std::vector<TermRef> Goals;

  // Demand flows top-down through the rhs first (Figure 4's goal order,
  // which the paper notes is what makes the clauses efficient).
  TermRef D = Dst.mkVar();
  translateExpr(Eq.Rhs, D, Dst, Tau, Goals);

  // Then extents flow bottom-up through the lhs patterns.
  std::vector<TermRef> Slots;
  for (const FLPattern &P : Eq.Params)
    Slots.push_back(translatePattern(P, Dst, Tau, Goals));

  std::vector<TermRef> HeadArgs{D};
  HeadArgs.insert(HeadArgs.end(), Slots.begin(), Slots.end());
  TermRef Head = Dst.mkStruct(Symbols.intern(spName(Eq.Func)), HeadArgs);
  Out.Clauses.push_back(mkClause(Dst, Head, Goals));
  return true;
}

void StrictTransformer::emitSupportClauses(const FLProgram &Program,
                                           TermStore &Dst,
                                           StrictProgram &Out) {
  TermRef E = Dst.mkAtom(Symbols.intern("e"));
  TermRef Dd = Dst.mkAtom(Symbols.intern("d"));
  TermRef N = Dst.mkAtom(Symbols.intern("n"));
  SymbolId DemSym = Symbols.intern("dem");
  SymbolId LowSym = Symbols.intern("low");

  auto Fact1 = [&](SymbolId P, TermRef A) {
    Out.Clauses.push_back(Dst.mkStruct(P, std::span<const TermRef>(&A, 1)));
  };

  // dem/1 and low/1: full and sub-e demand enumerations.
  Fact1(DemSym, E);
  Fact1(DemSym, Dd);
  Fact1(DemSym, N);
  Fact1(LowSym, Dd);
  Fact1(LowSym, N);

  // pm_lit/1: matching a literal evaluates the value completely, so the
  // extent is exactly e (the bottom-up rule with zero components).
  SymbolId PmLit = Symbols.intern("pm_lit");
  Fact1(PmLit, E);

  // Constructors.
  for (const auto &[Name, Arity] : Program.Constructors) {
    SymbolId Sp = Symbols.intern(spName(Name));
    SymbolId Pm = Symbols.intern(pmName(Name));
    if (Arity == 0) {
      // A matched 0-ary constructor is completely evaluated: extent e
      // only ("pm_c(e, e..e)" with zero components). Rhs occurrences need
      // no sp clause (translateExpr emits no goal).
      Fact1(Pm, E);
      continue;
    }
    // sp_c(e, e..e).
    {
      std::vector<TermRef> Args(Arity + 1, E);
      Out.Clauses.push_back(Dst.mkStruct(Sp, Args));
    }
    // sp_c(d, _.._). and sp_c(n, _.._).
    for (TermRef Dem : {Dd, N}) {
      std::vector<TermRef> Args{Dem};
      for (uint32_t I = 0; I < Arity; ++I)
        Args.push_back(Dst.mkVar());
      Out.Clauses.push_back(Dst.mkStruct(Sp, Args));
    }
    // pm_c(e, e..e).
    {
      std::vector<TermRef> Args(Arity + 1, E);
      Out.Clauses.push_back(Dst.mkStruct(Pm, Args));
    }
    // pm_c(d, X1..Xm) :- dem(X1), .., low(Xi), .., dem(Xm).  (for each i)
    for (uint32_t Low = 0; Low < Arity; ++Low) {
      std::vector<TermRef> Args{Dd};
      std::vector<TermRef> Goals;
      for (uint32_t I = 0; I < Arity; ++I) {
        TermRef V = Dst.mkVar();
        Args.push_back(V);
        Goals.push_back(Dst.mkStruct(I == Low ? LowSym : DemSym,
                                     std::span<const TermRef>(&V, 1)));
      }
      Out.Clauses.push_back(mkClause(Dst, Dst.mkStruct(Pm, Args), Goals));
    }
  }

  // Primitives: strict in every argument under any real demand.
  for (const auto &[Name, Arity] : Program.Primitives) {
    SymbolId Sp = Symbols.intern(spName(Name));
    for (TermRef Dem : {E, Dd}) {
      std::vector<TermRef> Args{Dem};
      for (uint32_t I = 0; I < Arity; ++I)
        Args.push_back(E);
      Out.Clauses.push_back(Dst.mkStruct(Sp, Args));
    }
    std::vector<TermRef> Args{N};
    for (uint32_t I = 0; I < Arity; ++I)
      Args.push_back(Dst.mkVar());
    Out.Clauses.push_back(Dst.mkStruct(Sp, Args));
  }
}

ErrorOr<StrictProgram> StrictTransformer::transform(const FLProgram &Program,
                                                    TermStore &Dst) {
  StrictProgram Out;
  Out.Functions = Program.Functions;

  for (const FLEquation &Eq : Program.Equations) {
    auto R = transformEquation(Eq, Dst, Out);
    if (!R)
      return R.getError();
  }

  // The non-strictness clause sp_f(n, _..._) for every function.
  TermRef N = Dst.mkAtom(Symbols.intern("n"));
  for (const auto &[Name, Arity] : Program.Functions) {
    std::vector<TermRef> Args{N};
    for (uint32_t I = 0; I < Arity; ++I)
      Args.push_back(Dst.mkVar());
    SymbolId Sp = Symbols.intern(spName(Name));
    Out.Clauses.push_back(Dst.mkStruct(Sp, Args));
  }

  emitSupportClauses(Program, Dst, Out);
  return Out;
}
