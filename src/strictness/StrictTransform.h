//===- StrictTransform.h - Figure 3: demand propagation ---------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation of Figure 3: an FL program becomes a logic program
/// over the demand domain {e, d, n} (normal form, head normal form, null)
/// whose minimal model encodes demand propagation (Sekar & Ramakrishnan's
/// strictness analysis, generalizing Mycroft to non-flat domains).
///
/// For each equation f(p1..pn) = rhs we derive (see Figure 4):
///
///   sp_f(D, X1..Xn) :- <rhs goals at demand D>, <pattern goals>.
///
/// where expressions propagate demand top-down (an application g(e) with
/// demand a yields sp_g(a, b), then e at demand b) and patterns propagate
/// evaluation extents bottom-up via pm_c predicates. Each function also
/// gets the non-strictness clause sp_f(n, _, ..., _).
///
/// Constructor demand transfer (sp_c) and pattern matching (pm_c) tables:
///
///   sp_c(e, e, ..., e).         e-demand forces all components to e
///   sp_c(d, _, ..., _).         hnf demand leaves components undemanded
///   sp_c(n, _, ..., _).
///   pm_c(e, e, ..., e).         extent e iff every component extent is e
///   pm_c(d, ...) :- some component extent below e
///
//===----------------------------------------------------------------------===//

#ifndef LPA_STRICTNESS_STRICTTRANSFORM_H
#define LPA_STRICTNESS_STRICTTRANSFORM_H

#include "fl/FLAst.h"
#include "support/Error.h"
#include "term/Symbol.h"
#include "term/TermStore.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lpa {

/// Result of transforming one FL program.
struct StrictProgram {
  /// Logic clauses (terms in the store given to the transformer).
  std::vector<TermRef> Clauses;
  /// Functions of the FL program (name, arity), definition order.
  std::vector<std::pair<std::string, uint32_t>> Functions;
};

/// Performs the Figure-3 transformation.
class StrictTransformer {
public:
  explicit StrictTransformer(SymbolTable &Symbols) : Symbols(Symbols) {}

  /// Transforms \p Program into logic clauses built in \p Dst.
  ErrorOr<StrictProgram> transform(const FLProgram &Program, TermStore &Dst);

  /// Name of the demand-propagation predicate of function \p F ("sp_" + F).
  std::string spName(const std::string &F) const { return "sp_" + F; }
  /// Name of the pattern-match predicate of constructor \p C ("pm_" + C).
  std::string pmName(const std::string &C) const { return "pm_" + C; }

private:
  ErrorOr<bool> transformEquation(const FLEquation &Eq, TermStore &Dst,
                                  StrictProgram &Out);
  /// E[expr]a: emits demand-propagation goals for \p E under demand
  /// \p Demand.
  void translateExpr(const FLExpr &E, TermRef Demand, TermStore &Dst,
                     std::unordered_map<std::string, TermRef> &Tau,
                     std::vector<TermRef> &Goals);
  /// P[pat]: emits extent goals; \returns the head-argument slot.
  TermRef translatePattern(const FLPattern &P, TermStore &Dst,
                           std::unordered_map<std::string, TermRef> &Tau,
                           std::vector<TermRef> &Goals);
  /// Emits the sp_c / pm_c / sp_prim support clauses.
  void emitSupportClauses(const FLProgram &Program, TermStore &Dst,
                          StrictProgram &Out);
  TermRef mkClause(TermStore &Dst, TermRef Head,
                   const std::vector<TermRef> &Goals);

  SymbolTable &Symbols;
};

} // namespace lpa

#endif // LPA_STRICTNESS_STRICTTRANSFORM_H
