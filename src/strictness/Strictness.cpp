//===- Strictness.cpp - Demand-propagation strictness analyzer ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "strictness/Strictness.h"

#include "fl/FLParser.h"
#include "obs/Span.h"
#include "support/Stopwatch.h"

using namespace lpa;

char lpa::demandLetter(Demand D) {
  switch (D) {
  case Demand::None: return 'n';
  case Demand::Head: return 'd';
  case Demand::Full: return 'e';
  }
  return '?';
}

std::string FuncStrictness::summary() const {
  auto Render = [&](const std::vector<Demand> &Ds, bool Diverges) {
    if (Diverges)
      return std::string("diverges");
    std::string Out = "(";
    for (size_t I = 0; I < Ds.size(); ++I) {
      if (I)
        Out += ",";
      Out += demandLetter(Ds[I]);
    }
    Out += ")";
    return Out;
  };
  return Name + ": e->" + Render(UnderE, DivergesUnderE) + " d->" +
         Render(UnderD, DivergesUnderD);
}

const FuncStrictness *StrictnessResult::find(const std::string &Name) const {
  for (const FuncStrictness &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

namespace {

/// Decodes a demand atom / unbound variable from an answer term argument.
/// Unbound means unconstrained, whose meet contribution is n.
Demand decodeDemand(const TermStore &Store, const SymbolTable &Symbols,
                    TermRef T) {
  TermRef D = Store.deref(T);
  if (Store.tag(D) != TermTag::Atom)
    return Demand::None;
  const std::string &Name = Symbols.name(Store.symbol(D));
  if (Name == "e")
    return Demand::Full;
  if (Name == "d")
    return Demand::Head;
  return Demand::None;
}

/// Runs one demand query sp_f(DemandAtom, V1..Vk) and folds the answers.
void collectDemand(Solver &Engine, SymbolTable &Symbols, TermRef Call,
                   uint32_t Arity, std::vector<Demand> &Out, bool &Diverges) {
  const Subgoal *SG = Engine.findSubgoal(Call);
  Out.assign(Arity, Demand::Full);
  if (!SG || Engine.answerCount(*SG) == 0) {
    // No solution: evaluation under this demand always diverges, so the
    // strictness claim holds vacuously.
    Diverges = true;
    return;
  }
  Diverges = false;
  // Materialize each answer into a scratch store (factored tables never
  // hold whole instances; see Solver::answerInstance).
  TermStore Scratch;
  for (size_t AI = 0, AE = Engine.answerCount(*SG); AI < AE; ++AI) {
    Scratch.clear();
    TermRef A = Scratch.deref(Engine.answerInstance(*SG, AI, Scratch));
    for (uint32_t I = 0; I < Arity; ++I) {
      Demand D = decodeDemand(Scratch, Symbols, Scratch.arg(A, I + 1));
      if (D < Out[I])
        Out[I] = D; // Meet = minimum over solutions.
    }
  }
}

} // namespace

ErrorOr<StrictnessResult> StrictnessAnalyzer::analyze(std::string_view Source) {
  StrictnessResult Result;
  Stopwatch Phase;

  //--- Preprocessing: parse FL, transform (Figure 3), load. --------------
  ScopedSpan PreprocSpan(Trace, Metrics, "transform");
  auto Program = FLParser::parse(Source);
  if (!Program)
    return Program.getError();

  SymbolTable Symbols;
  StrictTransformer Transformer(Symbols);
  TermStore AbsStore;
  auto Abstract = Transformer.transform(*Program, AbsStore);
  if (!Abstract)
    return Abstract.getError();

  Database DB(Symbols);
  auto Loaded = DB.loadProgram(AbsStore, Abstract->Clauses);
  if (!Loaded)
    return Loaded.getError();
  // Table the sp_f predicates of user functions (demand propagation is
  // where the recursion lives); support predicates stay nontabled.
  for (const auto &[Name, Arity] : Abstract->Functions)
    DB.setTabled(Symbols.intern(Transformer.spName(Name)), Arity + 1);
  Result.PreprocSeconds = Phase.elapsedSeconds();
  PreprocSpan.finish();

  //--- Analysis: sp_f(e, ...) and sp_f(d, ...) per function. -------------
  Phase.restart();
  ScopedSpan EvalSpan(Trace, Metrics, "evaluate");
  Solver Engine(DB, Opts.Engine);
  Engine.setObservability(Trace, Metrics);
  TermRef EAtom = Engine.store().mkAtom(Symbols.intern("e"));
  TermRef DAtom = Engine.store().mkAtom(Symbols.intern("d"));
  struct Query {
    TermRef ECall, DCall;
  };
  std::vector<Query> Queries;
  for (const auto &[Name, Arity] : Abstract->Functions) {
    SymbolId Sp = Symbols.intern(Transformer.spName(Name));
    auto MakeCall = [&](TermRef DemandAtom) {
      std::vector<TermRef> Args{DemandAtom};
      for (uint32_t I = 0; I < Arity; ++I)
        Args.push_back(Engine.store().mkVar());
      return Engine.store().mkStruct(Sp, Args);
    };
    Query Q{MakeCall(EAtom), MakeCall(DAtom)};
    Engine.solve(Q.ECall, nullptr);
    Engine.solve(Q.DCall, nullptr);
    Queries.push_back(Q);
  }
  Result.AnalysisSeconds = Phase.elapsedSeconds();
  EvalSpan.finish();

  // Soundness gate: a depth-limit-truncated answer table would make the
  // meet below an unsound over-claim of strictness (missing solutions can
  // only weaken demands). See Subgoal::Incomplete.
  if (Engine.stats().IncompleteTables) {
    if (!Opts.AllowIncomplete)
      return Diagnostic(
          "strictness analysis incomplete: depth limit truncated " +
          std::to_string(Engine.stats().IncompleteTables) +
          " table(s); raise Options::Engine.MaxDepth or set "
          "AllowIncomplete to accept the truncated result");
    Result.Incomplete = true;
  }

  //--- Collection. --------------------------------------------------------
  Phase.restart();
  ScopedSpan CollectSpan(Trace, Metrics, "collect");
  Result.TableSpaceBytes = Engine.tableSpaceBytes();
  Result.Stats = Engine.stats();
  if (Metrics)
    Engine.snapshotTableMetrics(*Metrics);
  for (size_t I = 0; I < Abstract->Functions.size(); ++I) {
    const auto &[Name, Arity] = Abstract->Functions[I];
    FuncStrictness FS;
    FS.Name = Name;
    FS.Arity = Arity;
    collectDemand(Engine, Symbols, Queries[I].ECall, Arity, FS.UnderE,
                  FS.DivergesUnderE);
    collectDemand(Engine, Symbols, Queries[I].DCall, Arity, FS.UnderD,
                  FS.DivergesUnderD);
    Result.Functions.push_back(std::move(FS));
  }
  Result.CollectSeconds = Phase.elapsedSeconds();
  return Result;
}

ErrorOr<double> StrictnessAnalyzer::measureCompileSeconds(
    std::string_view Source) {
  Stopwatch Watch;
  auto Program = FLParser::parse(Source);
  if (!Program)
    return Program.getError();
  return Watch.elapsedSeconds();
}
