//===- Strictness.cpp - Demand-propagation strictness analyzer ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "strictness/Strictness.h"

#include "fl/FLParser.h"
#include "obs/Span.h"
#include "support/Stopwatch.h"

using namespace lpa;

char lpa::demandLetter(Demand D) {
  switch (D) {
  case Demand::None: return 'n';
  case Demand::Head: return 'd';
  case Demand::Full: return 'e';
  }
  return '?';
}

std::string FuncStrictness::summary() const {
  auto Render = [&](const std::vector<Demand> &Ds, bool Diverges) {
    if (Diverges)
      return std::string("diverges");
    std::string Out = "(";
    for (size_t I = 0; I < Ds.size(); ++I) {
      if (I)
        Out += ",";
      Out += demandLetter(Ds[I]);
    }
    Out += ")";
    return Out;
  };
  return Name + ": e->" + Render(UnderE, DivergesUnderE) + " d->" +
         Render(UnderD, DivergesUnderD);
}

const FuncStrictness *StrictnessResult::find(const std::string &Name) const {
  for (const FuncStrictness &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

namespace {

/// Decodes a demand atom / unbound variable from an answer term argument.
/// Unbound means unconstrained, whose meet contribution is n.
Demand decodeDemand(const TermStore &Store, const SymbolTable &Symbols,
                    TermRef T) {
  TermRef D = Store.deref(T);
  if (Store.tag(D) != TermTag::Atom)
    return Demand::None;
  const std::string &Name = Symbols.name(Store.symbol(D));
  if (Name == "e")
    return Demand::Full;
  if (Name == "d")
    return Demand::Head;
  return Demand::None;
}

/// Runs one demand query sp_f(DemandAtom, V1..Vk) and folds the answers.
void collectDemand(Solver &Engine, SymbolTable &Symbols, TermRef Call,
                   uint32_t Arity, std::vector<Demand> &Out, bool &Diverges) {
  const Subgoal *SG = Engine.findSubgoal(Call);
  Out.assign(Arity, Demand::Full);
  if (!SG || Engine.answerCount(*SG) == 0) {
    // No solution: evaluation under this demand always diverges, so the
    // strictness claim holds vacuously.
    Diverges = true;
    return;
  }
  Diverges = false;
  // Materialize each answer into a scratch store (factored tables never
  // hold whole instances; see Solver::answerInstance).
  TermStore Scratch;
  for (size_t AI = 0, AE = Engine.answerCount(*SG); AI < AE; ++AI) {
    Scratch.clear();
    TermRef A = Scratch.deref(Engine.answerInstance(*SG, AI, Scratch));
    for (uint32_t I = 0; I < Arity; ++I) {
      Demand D = decodeDemand(Scratch, Symbols, Scratch.arg(A, I + 1));
      if (D < Out[I])
        Out[I] = D; // Meet = minimum over solutions.
    }
  }
}

} // namespace

ErrorOr<StrictnessResult> StrictnessAnalyzer::analyze(std::string_view Source) {
  StrictnessResult Result;
  Stopwatch Phase;

  //--- Preprocessing: parse FL, transform (Figure 3), load. --------------
  ScopedSpan PreprocSpan(Trace, Metrics, "transform");
  auto Program = FLParser::parse(Source);
  if (!Program)
    return Program.getError();

  SymbolTable Symbols;
  StrictTransformer Transformer(Symbols);
  TermStore AbsStore;
  auto Abstract = Transformer.transform(*Program, AbsStore);
  if (!Abstract)
    return Abstract.getError();

  Database DB(Symbols);
  auto Loaded = DB.loadProgram(AbsStore, Abstract->Clauses);
  if (!Loaded)
    return Loaded.getError();
  // Table the sp_f predicates of user functions (demand propagation is
  // where the recursion lives); support predicates stay nontabled.
  for (const auto &[Name, Arity] : Abstract->Functions)
    DB.setTabled(Symbols.intern(Transformer.spName(Name)), Arity + 1);
  Result.PreprocSeconds = Phase.elapsedSeconds();
  PreprocSpan.finish();

  //--- Analysis: sp_f(e, ...) and sp_f(d, ...) per function. -------------
  Phase.restart();
  ScopedSpan EvalSpan(Trace, Metrics, "evaluate");
  Solver Engine(DB, Opts.Engine);
  Engine.setObservability(Trace, Metrics);
  Engine.setSampleCursor(Cursor);
  TermRef EAtom = Engine.store().mkAtom(Symbols.intern("e"));
  TermRef DAtom = Engine.store().mkAtom(Symbols.intern("d"));
  struct Query {
    TermRef ECall, DCall;
  };
  std::vector<Query> Queries;
  for (const auto &[Name, Arity] : Abstract->Functions) {
    SymbolId Sp = Symbols.intern(Transformer.spName(Name));
    auto MakeCall = [&](TermRef DemandAtom) {
      std::vector<TermRef> Args{DemandAtom};
      for (uint32_t I = 0; I < Arity; ++I)
        Args.push_back(Engine.store().mkVar());
      return Engine.store().mkStruct(Sp, Args);
    };
    Query Q{MakeCall(EAtom), MakeCall(DAtom)};
    Engine.solve(Q.ECall, nullptr);
    Engine.solve(Q.DCall, nullptr);
    Queries.push_back(Q);
  }
  Result.AnalysisSeconds = Phase.elapsedSeconds();
  EvalSpan.finish();

  // Soundness gate: a depth-limit-truncated answer table would make the
  // meet below an unsound over-claim of strictness (missing solutions can
  // only weaken demands). See Subgoal::Incomplete.
  if (Engine.stats().IncompleteTables) {
    if (!Opts.AllowIncomplete)
      return Diagnostic(
          "strictness analysis incomplete: depth limit truncated " +
          std::to_string(Engine.stats().IncompleteTables) +
          " table(s); raise Options::Engine.MaxDepth or set "
          "AllowIncomplete to accept the truncated result");
    Result.Incomplete = true;
  }

  //--- Collection. --------------------------------------------------------
  Phase.restart();
  ScopedSpan CollectSpan(Trace, Metrics, "collect");
  Result.TableSpaceBytes = Engine.tableSpaceBytes();
  Result.Stats = Engine.stats();
  if (Opts.Engine.RecordProvenance) {
    ProvenanceArena::CheckStats PS = Engine.checkProvenance();
    Result.JustifiedAnswers = PS.Justified;
    Result.JustificationPremises = PS.Premises;
    Result.DanglingPremises = PS.Dangling;
  }
  if (Metrics)
    Engine.snapshotTableMetrics(*Metrics);
  for (size_t I = 0; I < Abstract->Functions.size(); ++I) {
    const auto &[Name, Arity] = Abstract->Functions[I];
    FuncStrictness FS;
    FS.Name = Name;
    FS.Arity = Arity;
    collectDemand(Engine, Symbols, Queries[I].ECall, Arity, FS.UnderE,
                  FS.DivergesUnderE);
    collectDemand(Engine, Symbols, Queries[I].DCall, Arity, FS.UnderD,
                  FS.DivergesUnderD);
    Result.Functions.push_back(std::move(FS));
  }
  Result.CollectSeconds = Phase.elapsedSeconds();
  return Result;
}

ErrorOr<std::string> StrictnessAnalyzer::explain(std::string_view Source,
                                                 std::string_view Func,
                                                 uint32_t Arg) {
  // Re-run the Figure-3 evaluation with provenance recording forced on; the
  // transform is deterministic, so clause indices line up with the run that
  // produced the reported strictness.
  auto Program = FLParser::parse(Source);
  if (!Program)
    return Program.getError();

  SymbolTable Symbols;
  StrictTransformer Transformer(Symbols);
  TermStore AbsStore;
  auto Abstract = Transformer.transform(*Program, AbsStore);
  if (!Abstract)
    return Abstract.getError();

  const std::pair<std::string, uint32_t> *Target = nullptr;
  for (const auto &F : Abstract->Functions)
    if (F.first == Func) {
      Target = &F;
      break;
    }
  if (!Target)
    return Diagnostic("explain: unknown function '" + std::string(Func) + "'");
  if (Arg >= Target->second)
    return Diagnostic("explain: argument " + std::to_string(Arg + 1) +
                      " out of range for " + Target->first + "/" +
                      std::to_string(Target->second));

  Database DB(Symbols);
  auto Loaded = DB.loadProgram(AbsStore, Abstract->Clauses);
  if (!Loaded)
    return Loaded.getError();
  for (const auto &[Name, Arity] : Abstract->Functions)
    DB.setTabled(Symbols.intern(Transformer.spName(Name)), Arity + 1);

  Solver::Options EO = Opts.Engine;
  EO.RecordProvenance = true;
  Solver Engine(DB, EO);
  TermRef EAtom = Engine.store().mkAtom(Symbols.intern("e"));
  SymbolId Sp = Symbols.intern(Transformer.spName(Target->first));
  std::vector<TermRef> Args{EAtom};
  for (uint32_t I = 0; I < Target->second; ++I)
    Args.push_back(Engine.store().mkVar());
  TermRef Call = Engine.store().mkStruct(Sp, Args);
  Engine.solve(Call, nullptr);
  if (Engine.stats().IncompleteTables && !Opts.AllowIncomplete)
    return Diagnostic("explain: depth limit truncated evaluation; raise "
                      "Options::Engine.MaxDepth or set AllowIncomplete");

  const Subgoal *SG = Engine.findSubgoal(Call);
  const std::string Name =
      Target->first + "/" + std::to_string(Target->second);
  if (!SG || Engine.answerCount(*SG) == 0)
    return "why " + Name + " is strict in argument " +
           std::to_string(Arg + 1) +
           ": sp_" + Target->first +
           "(e, ...) has no solution — every evaluation under full demand "
           "diverges, so the strictness claim holds vacuously.\n";

  // The reported demand is the meet over all answers; show the first
  // answer's derivation as the witness and say so in the header.
  size_t Total = Engine.answerCount(*SG);
  auto Proof = Engine.justifyAnswer(*SG, 0);
  if (!Proof)
    return Diagnostic("explain: no justification recorded for answer 0 of " +
                      Name);

  // Node labels print the materialized answer/call with the sp_ prefix
  // stripped, so the tree reads over the source functions.
  const std::string AbsPrefix = Transformer.spName("");
  auto StripPrefix = [&](std::string S) {
    size_t Pos = 0;
    std::string Out;
    while (Pos < S.size()) {
      size_t Hit = S.find(AbsPrefix, Pos);
      if (Hit == std::string::npos) {
        Out.append(S, Pos, std::string::npos);
        break;
      }
      Out.append(S, Pos, Hit - Pos);
      Pos = Hit + AbsPrefix.size();
    }
    return Out;
  };
  auto Label = [&](const ProofNode &N) {
    const auto &Order = Engine.subgoals();
    if (N.SubgoalIdx >= Order.size())
      return std::string("<unknown subgoal>");
    const Subgoal &S = *Order[N.SubgoalIdx];
    if (N.AnswerIdx >= Engine.answerCount(S))
      return StripPrefix(Engine.formatCall(S)) + " (answer pending)";
    return StripPrefix(Engine.formatAnswer(S, N.AnswerIdx));
  };
  auto ClauseLabel = [&](const ProofNode &N) {
    return "rule " + std::to_string(N.ClauseIdx + 1) +
           " of the demand program";
  };

  std::string Out = "why " + Name + " demands argument " +
                    std::to_string(Arg + 1) +
                    " under full (e) demand — the claim is the meet over " +
                    std::to_string(Total) + " solution(s); witness: answer "
                    "1 of " + std::to_string(Total) + ":\n";
  Out += renderProofTree(*Proof, Label, ClauseLabel);
  return Out;
}

ErrorOr<double> StrictnessAnalyzer::measureCompileSeconds(
    std::string_view Source) {
  Stopwatch Watch;
  auto Program = FLParser::parse(Source);
  if (!Program)
    return Program.getError();
  return Watch.elapsedSeconds();
}
