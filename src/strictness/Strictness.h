//===- Strictness.h - Demand-propagation strictness analyzer ----*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strictness analysis pipeline of Section 4.2: parse the FL program,
/// apply the Figure-3 transformation, load the demand-propagation clauses
/// as dynamic code, evaluate sp_f(e, ...) and sp_f(d, ...) for every
/// function with the tabled engine, and fold the answer tables into
/// per-argument strictness (the guaranteed demand is the meet over all
/// solutions; Figure 4: sp_ap(e,X,Y) = {e,e} means ap is ee-strict).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_STRICTNESS_STRICTNESS_H
#define LPA_STRICTNESS_STRICTNESS_H

#include "engine/Solver.h"
#include "strictness/StrictTransform.h"

#include <string>
#include <vector>

namespace lpa {

/// Demand extents, ordered n < d < e.
enum class Demand : uint8_t {
  None = 0, ///< n: no demand.
  Head = 1, ///< d: head-normal-form demand.
  Full = 2, ///< e: normal-form demand.
};

/// Renders a demand as its domain letter.
char demandLetter(Demand D);

/// Per-function strictness.
struct FuncStrictness {
  std::string Name;
  uint32_t Arity = 0;

  /// Guaranteed argument demand when the result is demanded to normal form
  /// (e) and head normal form (d): the meet over all sp_f solutions.
  std::vector<Demand> UnderE;
  std::vector<Demand> UnderD;

  /// True when sp_f(e/d, ...) has no solution: every evaluation of f under
  /// that demand diverges.
  bool DivergesUnderE = false;
  bool DivergesUnderD = false;

  /// \returns true if the function is strict (>= d) in argument \p I under
  /// e-demand — the classical "safe to evaluate eagerly" bit.
  bool strictIn(uint32_t I) const {
    return DivergesUnderE || (I < UnderE.size() && UnderE[I] >= Demand::Head);
  }

  /// Renders e.g. "ap: e->(e,e) d->(d,n)".
  std::string summary() const;
};

/// Full analysis result with the paper's phase timings.
struct StrictnessResult {
  std::vector<FuncStrictness> Functions;

  double PreprocSeconds = 0;
  double AnalysisSeconds = 0;
  double CollectSeconds = 0;
  double totalSeconds() const {
    return PreprocSeconds + AnalysisSeconds + CollectSeconds;
  }

  size_t TableSpaceBytes = 0;
  EvalStats Stats;

  /// True when the depth limit truncated tabled evaluation and the caller
  /// opted into Options::AllowIncomplete: the reported demands are then a
  /// lower bound, not the exact meet over all solutions.
  bool Incomplete = false;

  /// \name Justification statistics (Options::Engine.RecordProvenance);
  /// all zero when recording was off. DanglingPremises must be 0.
  /// @{
  uint64_t JustifiedAnswers = 0;
  uint64_t JustificationPremises = 0;
  uint64_t DanglingPremises = 0;
  /// @}

  const FuncStrictness *find(const std::string &Name) const;
};

/// Runs the demand-propagation strictness analysis end to end.
class StrictnessAnalyzer {
public:
  struct Options {
    /// Engine tunables forwarded to the tabled evaluation (depth limit,
    /// table representation, supplementary tabling).
    Solver::Options Engine;

    /// Accept depth-limit-truncated tables: analyze() succeeds with
    /// Result.Incomplete set instead of failing. Off by default — a
    /// truncated answer table can under-report strictness.
    bool AllowIncomplete = false;
  };

  StrictnessAnalyzer() = default;
  explicit StrictnessAnalyzer(Options Opts) : Opts(Opts) {}

  /// Attaches optional caller-owned observability sinks: the tracer sees
  /// SLG events plus transform/evaluate/collect phase spans; the registry
  /// receives per-predicate counters and a table snapshot. Predicate names
  /// are captured into the registry eagerly, so the registry stays valid
  /// after analyze() returns even though the analyzer's symbol table does
  /// not outlive the call.
  /// \p C (optional) is a sampling-profiler cursor forwarded to the
  /// internal Solver (see Solver::setSampleCursor).
  void setObservability(Tracer *T, MetricsRegistry *M,
                        EvalCursor *C = nullptr) {
    Trace = T;
    Metrics = M;
    Cursor = C;
  }

  /// Analyzes FL source text.
  ErrorOr<StrictnessResult> analyze(std::string_view Source);

  /// Explains the demand on argument \p Arg (0-based) of function \p Func
  /// under full (e) demand: re-runs the Figure-3 evaluation with provenance
  /// recording and renders the justification of one sp_Func(e, ...) answer
  /// as a proof tree, clause annotations mapped to the demand-propagation
  /// rules of the function ("rule i of Func"). The reported strictness is
  /// the *meet over all* answers; the header states which witness is shown.
  /// Fails when the function is unknown (a function with no answer diverges
  /// — strict vacuously — and that is explained without a tree).
  ErrorOr<std::string> explain(std::string_view Source, std::string_view Func,
                               uint32_t Arg);

  /// Time to parse the FL program with no analysis (the "compilation"
  /// baseline discussed with Table 3).
  ErrorOr<double> measureCompileSeconds(std::string_view Source);

private:
  Options Opts;
  Tracer *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
  EvalCursor *Cursor = nullptr;
};

} // namespace lpa

#endif // LPA_STRICTNESS_STRICTNESS_H
