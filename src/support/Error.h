//===- Error.h - Lightweight recoverable-error handling ---------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Expected-style error type. Library code never throws; fallible
/// operations (parsing, loading) return ErrorOr<T> carrying either a value
/// or a diagnostic message with a source position.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SUPPORT_ERROR_H
#define LPA_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lpa {

/// A position in an input text, 1-based. Line 0 means "unknown".
struct SourcePos {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
};

/// A diagnostic produced by a fallible operation.
struct Diagnostic {
  std::string Message;
  SourcePos Pos;

  Diagnostic() = default;
  Diagnostic(std::string Message, SourcePos Pos = SourcePos())
      : Message(std::move(Message)), Pos(Pos) {}

  /// Renders "line L, column C: message" (or just the message when the
  /// position is unknown).
  std::string str() const {
    if (!Pos.isValid())
      return Message;
    return "line " + std::to_string(Pos.Line) + ", column " +
           std::to_string(Pos.Column) + ": " + Message;
  }
};

/// Either a value of type T or a Diagnostic explaining why none could be
/// produced. Mirrors the shape of llvm::Expected without the unchecked-
/// error machinery (we have no destructor-time enforcement).
template <typename T> class ErrorOr {
public:
  /// Constructs a success value.
  ErrorOr(T Value) : Storage(std::move(Value)) {}

  /// Constructs a failure value.
  ErrorOr(Diagnostic Diag) : Storage(std::move(Diag)) {}

  /// True when a value is present.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  bool hasValue() const { return std::holds_alternative<T>(Storage); }

  T &get() {
    assert(hasValue() && "accessing value of failed ErrorOr");
    return std::get<T>(Storage);
  }
  const T &get() const {
    assert(hasValue() && "accessing value of failed ErrorOr");
    return std::get<T>(Storage);
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  const Diagnostic &getError() const {
    assert(!hasValue() && "accessing error of successful ErrorOr");
    return std::get<Diagnostic>(Storage);
  }

private:
  std::variant<T, Diagnostic> Storage;
};

} // namespace lpa

#endif // LPA_SUPPORT_ERROR_H
