//===- JsonValue.cpp - Minimal JSON document reader --------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/JsonValue.h"

#include <cstdio>
#include <cstdlib>

using namespace lpa;

namespace {

/// Recursive-descent JSON parser over a string_view. Depth-bounded so a
/// hostile/corrupt trajectory file cannot blow the stack.
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ErrorOr<JsonValue> run() {
    skipWs();
    auto V = parseValue(0);
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing content after document");
    return V;
  }

private:
  static constexpr int MaxDepth = 64;

  Diagnostic fail(const std::string &Why) const {
    return Diagnostic("json parse error at offset " + std::to_string(Pos) +
                      ": " + Why);
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!atEnd()) {
      char C = peek();
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        return;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (atEnd() || peek() != C)
      return false;
    ++Pos;
    return true;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) != W)
      return false;
    Pos += W.size();
    return true;
  }

  ErrorOr<JsonValue> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (atEnd())
      return fail("unexpected end of input");
    char C = peek();
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return S.getError();
      return JsonValue::makeString(std::move(*S));
    }
    if (consumeWord("true"))
      return JsonValue::makeBool(true);
    if (consumeWord("false"))
      return JsonValue::makeBool(false);
    if (consumeWord("null"))
      return JsonValue::makeNull();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return fail(std::string("unexpected character '") + C + "'");
  }

  ErrorOr<JsonValue> parseObject(int Depth) {
    ++Pos; // '{'
    JsonValue Out = JsonValue::makeObject();
    skipWs();
    if (consume('}'))
      return Out;
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"')
        return fail("expected member key string");
      auto Key = parseString();
      if (!Key)
        return Key.getError();
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after member key");
      skipWs();
      auto Val = parseValue(Depth + 1);
      if (!Val)
        return Val;
      Out.set(std::move(*Key), std::move(*Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return Out;
      return fail("expected ',' or '}' in object");
    }
  }

  ErrorOr<JsonValue> parseArray(int Depth) {
    ++Pos; // '['
    JsonValue Out = JsonValue::makeArray();
    skipWs();
    if (consume(']'))
      return Out;
    while (true) {
      skipWs();
      auto Val = parseValue(Depth + 1);
      if (!Val)
        return Val;
      Out.push(std::move(*Val));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return Out;
      return fail("expected ',' or ']' in array");
    }
  }

  ErrorOr<std::string> parseString() {
    ++Pos; // opening '"'
    std::string Out;
    while (true) {
      if (atEnd())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (atEnd())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs in bench
        // trajectory files would be exotic; encoded halves round-trip).
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xC0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3F));
        } else {
          Out += char(0xE0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3F));
          Out += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  ErrorOr<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (!atEnd() && peek() >= '0' && peek() <= '9')
      ++Pos;
    if (consume('.'))
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      while (!atEnd() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    std::string Lexeme(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Lexeme.c_str(), &End);
    if (!End || *End != '\0' || End == Lexeme.c_str())
      return fail("malformed number '" + Lexeme + "'");
    return JsonValue::makeNumber(D);
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

ErrorOr<JsonValue> JsonValue::parse(std::string_view Text) {
  return Parser(Text).run();
}

ErrorOr<std::string> lpa::readFileText(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Diagnostic("cannot open " + Path);
  std::string Out;
  char Buf[64 << 10];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return Diagnostic("read error on " + Path);
  return Out;
}
