//===- JsonValue.h - Minimal JSON document reader ---------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON document model plus recursive-descent parser. Originally
/// a bench_compare-only concern, it moved into support once the analysis
/// service (src/srv) needed to *read* protocol requests as well as emit
/// responses (obs/Json.h remains the streaming writer).
///
/// Scope: exactly what the bench trajectory and service protocol schemas
/// need. Numbers are
/// doubles (bench values are timings, byte counts, and sample counts —
/// all comfortably inside the 2^53 exact-integer range), member order is
/// preserved, and duplicate keys keep the first occurrence on lookup.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SUPPORT_JSONVALUE_H
#define LPA_SUPPORT_JSONVALUE_H

#include "support/Error.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lpa {

/// One parsed JSON value; a tree of these is a document.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  double asNumber() const { return Num; }
  bool asBool() const { return Num != 0; }
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &items() const { return Items; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Member lookup (objects only); nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const auto &[MK, MV] : Members)
      if (MK == Key)
        return &MV;
    return nullptr;
  }

  /// find() that also requires the member to be a number; \p Fallback
  /// otherwise.
  double numberOr(std::string_view Key, double Fallback) const {
    const JsonValue *V = find(Key);
    return V && V->isNumber() ? V->asNumber() : Fallback;
  }

  /// find() that also requires a string member; \p Fallback otherwise.
  std::string stringOr(std::string_view Key, std::string Fallback) const {
    const JsonValue *V = find(Key);
    return V && V->isString() ? V->asString() : std::move(Fallback);
  }

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  /// Errors carry a byte offset: "json parse error at offset N: ...".
  static ErrorOr<JsonValue> parse(std::string_view Text);

  /// \name Construction (used by the parser and by tests).
  /// @{
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool B) {
    JsonValue V;
    V.K = Kind::Bool;
    V.Num = B ? 1 : 0;
    return V;
  }
  static JsonValue makeNumber(double D) {
    JsonValue V;
    V.K = Kind::Number;
    V.Num = D;
    return V;
  }
  static JsonValue makeString(std::string S) {
    JsonValue V;
    V.K = Kind::String;
    V.Str = std::move(S);
    return V;
  }
  static JsonValue makeArray() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue makeObject() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }
  void push(JsonValue V) { Items.push_back(std::move(V)); }
  void set(std::string Key, JsonValue V) {
    Members.emplace_back(std::move(Key), std::move(V));
  }
  /// @}

private:
  Kind K = Kind::Null;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Reads a whole file into a string; fails with a diagnostic on I/O error.
ErrorOr<std::string> readFileText(const std::string &Path);

} // namespace lpa

#endif // LPA_SUPPORT_JSONVALUE_H
