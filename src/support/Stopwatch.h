//===- Stopwatch.h - Wall-clock timing utilities ----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timers used by the benchmark harnesses to measure
/// the paper's three analysis phases (preprocessing, analysis, collection).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SUPPORT_STOPWATCH_H
#define LPA_SUPPORT_STOPWATCH_H

#include <chrono>

namespace lpa {

/// A simple monotonic stopwatch.
///
/// The watch starts running on construction; \c elapsedSeconds() may be
/// queried repeatedly and \c restart() resets the origin.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Resets the origin to the current instant.
  void restart() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last restart().
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns milliseconds elapsed since construction or the last restart().
  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulates time across several disjoint intervals.
///
/// Used to attribute time to a phase that is entered and left repeatedly,
/// e.g. collection interleaved with per-predicate analysis.
class PhaseTimer {
public:
  /// Starts (or re-starts) an interval.
  void begin() { Watch.restart(); Running = true; }

  /// Ends the current interval, adding it to the total.
  void end() {
    if (!Running)
      return;
    Total += Watch.elapsedSeconds();
    Running = false;
  }

  /// Total accumulated seconds over all closed intervals.
  double seconds() const { return Total; }

  /// Clears the accumulated total.
  void reset() { Total = 0.0; Running = false; }

private:
  Stopwatch Watch;
  double Total = 0.0;
  bool Running = false;
};

} // namespace lpa

#endif // LPA_SUPPORT_STOPWATCH_H
