//===- TableFormat.cpp - Plain-text table rendering -----------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "support/TableFormat.h"

#include <cstdio>

using namespace lpa;

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TextTable::render() const {
  if (Rows.empty())
    return "";

  // Compute per-column widths.
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  }

  std::string Out;
  auto emitRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        Out += "  ";
      Out += Row[I];
      if (I + 1 < Row.size())
        Out.append(Widths[I] - Row[I].size(), ' ');
    }
    Out += '\n';
  };

  emitRow(Rows.front());
  size_t RuleWidth = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    RuleWidth += Widths[I] + (I ? 2 : 0);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (size_t I = 1; I < Rows.size(); ++I)
    emitRow(Rows[I]);
  return Out;
}

std::string TextTable::fmt(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TextTable::fmt(unsigned long long Value) {
  return std::to_string(Value);
}
