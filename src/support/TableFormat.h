//===- TableFormat.h - Plain-text table rendering ---------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny column-aligned table writer used by the benchmark harnesses to
/// print the same rows the paper's Tables 1-4 report.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_SUPPORT_TABLEFORMAT_H
#define LPA_SUPPORT_TABLEFORMAT_H

#include <string>
#include <vector>

namespace lpa {

/// Collects rows of cells and renders them with columns padded to the
/// widest entry. The first row added is treated as the header.
class TextTable {
public:
  /// Adds one row; all rows should have the same number of cells.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table; the header row is separated by a dashed rule.
  std::string render() const;

  /// Formats a double with \p Decimals fraction digits.
  static std::string fmt(double Value, int Decimals = 2);

  /// Formats an integer with no grouping.
  static std::string fmt(unsigned long long Value);

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace lpa

#endif // LPA_SUPPORT_TABLEFORMAT_H
