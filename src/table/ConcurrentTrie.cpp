//===- ConcurrentTrie.cpp - Shared term tries for parallel tabling ---------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "table/ConcurrentTrie.h"

#include <algorithm>

using namespace lpa;

namespace {

inline uint64_t structPayload(SymbolId Sym, uint32_t Arity) {
  return (uint64_t(Sym) << 32) | Arity;
}

// Per-thread walk scratch: encodeKey runs on every worker concurrently, and
// find() must stay lock-free, so the reusable buffers are thread-local
// rather than members.
thread_local std::vector<TermRef> WorkTls;
thread_local std::vector<TermRef> VarTls;
thread_local std::vector<uint64_t> PayloadTls;
thread_local std::vector<uint8_t> KindTls;

} // namespace

void ConcurrentTermTrie::encodeKey(const TermStore &Store,
                                   std::span<const TermRef> Key,
                                   std::vector<uint64_t> &Payloads,
                                   std::vector<uint8_t> &Kinds) {
  std::vector<TermRef> &Work = WorkTls;
  std::vector<TermRef> &Vars = VarTls;
  Work.clear();
  Vars.clear();
  Payloads.clear();
  Kinds.clear();
  for (size_t I = Key.size(); I-- > 0;)
    Work.push_back(Key[I]);

  while (!Work.empty()) {
    TermRef T = Store.deref(Work.back());
    Work.pop_back();
    switch (Store.tag(T)) {
    case TermTag::Ref: {
      // First-occurrence numbering, exactly as TermTrie/canonicalKey.
      auto It = std::find(Vars.begin(), Vars.end(), T);
      uint32_t N;
      if (It == Vars.end()) {
        N = static_cast<uint32_t>(Vars.size());
        Vars.push_back(T);
      } else {
        N = static_cast<uint32_t>(It - Vars.begin());
      }
      Kinds.push_back(KVar);
      Payloads.push_back(N);
      break;
    }
    case TermTag::Atom:
      Kinds.push_back(KAtom);
      Payloads.push_back(Store.symbol(T));
      break;
    case TermTag::Int:
      Kinds.push_back(KInt);
      Payloads.push_back(static_cast<uint64_t>(Store.intValue(T)));
      break;
    case TermTag::Struct:
      Kinds.push_back(KStruct);
      Payloads.push_back(structPayload(Store.symbol(T), Store.arity(T)));
      for (uint32_t I = Store.arity(T); I-- > 0;)
        Work.push_back(Store.arg(T, I));
      break;
    }
  }
}

ConcurrentTermTrie::Node *ConcurrentTermTrie::findChild(const Node *Parent,
                                                        uint8_t K,
                                                        uint64_t P) {
  // The acquire load of Child synchronizes with the inserter's release
  // store, making the new node's Payload/K/Sibling writes visible. Sibling
  // pointers of published nodes never change (prepend-only chains), so
  // plain loads past the head are safe.
  for (Node *C = Parent->Child.load(std::memory_order_acquire); C;
       C = C->Sibling)
    if (C->K == K && C->Payload == P)
      return C;
  return nullptr;
}

ConcurrentTermTrie::Node *ConcurrentTermTrie::allocNode(uint8_t K,
                                                        uint64_t P) {
  if (NextInChunk == ChunkSize) {
    Chunks.push_back(std::make_unique<Node[]>(ChunkSize));
    NextInChunk = 0;
  }
  Node *N = &Chunks.back()[NextInChunk++];
  N->Payload = P;
  N->K = K;
  NumNodes.fetch_add(1, std::memory_order_relaxed);
  return N;
}

ConcurrentTermTrie::InsertResult
ConcurrentTermTrie::insert(const TermStore &Store,
                           std::span<const TermRef> Key, uint32_t NewValue) {
  std::vector<uint64_t> &Payloads = PayloadTls;
  std::vector<uint8_t> &Kinds = KindTls;
  encodeKey(Store, Key, Payloads, Kinds);

  // Optimistic lock-free descent as far as the trie already reaches.
  Node *Cur = &Root;
  size_t I = 0;
  while (I < Kinds.size()) {
    Node *C = findChild(Cur, Kinds[I], Payloads[I]);
    if (!C)
      break;
    Cur = C;
    ++I;
  }
  if (I == Kinds.size()) {
    uint32_t V = Cur->Value.load(std::memory_order_acquire);
    if (V != NoValue)
      return {V, false, 0}; // Warm hit: no lock taken.
  }

  // Slow path: extend (or claim the leaf) under the mutex. Re-scan each
  // level — another thread may have extended past our optimistic frontier —
  // but never restart: Cur is a stable node and chains only grow.
  std::lock_guard<std::mutex> L(Mu);
  uint32_t Created = 0;
  while (I < Kinds.size()) {
    Node *C = findChild(Cur, Kinds[I], Payloads[I]);
    if (!C) {
      C = allocNode(Kinds[I], Payloads[I]);
      // Prepend: the new node's Sibling is written before the release
      // store of Child publishes it to lock-free readers.
      C->Sibling = Cur->Child.load(std::memory_order_relaxed);
      Cur->Child.store(C, std::memory_order_release);
      ++Created;
    }
    Cur = C;
    ++I;
  }
  uint32_t V = Cur->Value.load(std::memory_order_relaxed);
  if (V != NoValue)
    return {V, false, Created};
  Cur->Value.store(NewValue, std::memory_order_release);
  NumValues.fetch_add(1, std::memory_order_relaxed);
  return {NewValue, true, Created};
}

uint32_t ConcurrentTermTrie::find(const TermStore &Store,
                                  std::span<const TermRef> Key) const {
  std::vector<uint64_t> &Payloads = PayloadTls;
  std::vector<uint8_t> &Kinds = KindTls;
  encodeKey(Store, Key, Payloads, Kinds);

  const Node *Cur = &Root;
  for (size_t I = 0; I < Kinds.size(); ++I) {
    Node *C = findChild(Cur, Kinds[I], Payloads[I]);
    if (!C)
      return NoValue;
    Cur = C;
  }
  return Cur->Value.load(std::memory_order_acquire);
}

size_t ConcurrentTermTrie::memoryBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return Chunks.size() * ChunkSize * sizeof(Node) +
         Chunks.capacity() * sizeof(void *) + sizeof(*this);
}
