//===- ConcurrentTrie.h - Shared term tries for parallel tabling -*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A term trie that several evaluation workers may read and insert into
/// concurrently. Same canonical preorder token encoding as TermTrie (path
/// equality coincides with variance), different storage discipline:
///
///  - Nodes live in fixed-size chunks that are never reallocated, so a
///    `Node *` observed by one thread stays valid forever. (TermTrie's
///    `std::vector<Node>` arena reallocates on growth — fine single-
///    threaded, fatal under concurrent readers.)
///  - find() is lock-free: it walks acquire-loaded child pointers. A node
///    becomes reachable only via a release store of the parent's Child
///    pointer, after its Payload/Kind/Sibling fields are fully written, so
///    readers never observe a half-built node. Sibling links and token
///    fields are immutable after publication (children are prepended).
///  - insert() is optimistic check-then-lock: first the same lock-free
///    walk; only on a miss (or an unset leaf value) does it take the
///    per-trie mutex, re-walk the missed suffix (chains only grow), and
///    extend. The uncontended warm path — the common case once tables
///    fill — never touches the lock.
///  - A key's value is claimed exactly once: the leaf Value transitions
///    NoValue -> value under the mutex, so exactly one insert() per
///    distinct key reports Inserted (the unique-answer invariant the
///    shared-table property test hammers).
///
/// No hash escalation: child chains stay linked lists. The shared uses
/// (subgoal-index shards, per-subgoal answer tuples) have small fanout per
/// node, and shard striping keeps any one trie's chains short.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TABLE_CONCURRENTTRIE_H
#define LPA_TABLE_CONCURRENTTRIE_H

#include "term/TermStore.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace lpa {

class ConcurrentTermTrie {
public:
  /// Sentinel for "no value stored". Same convention as TermTrie.
  static constexpr uint32_t NoValue = ~uint32_t(0);

  struct InsertResult {
    uint32_t Value;        ///< Stored value (the existing one on a hit).
    bool Inserted;         ///< True if this call claimed the key.
    uint32_t NodesCreated; ///< Trie nodes allocated by this walk.
  };

  ConcurrentTermTrie() = default;
  ConcurrentTermTrie(const ConcurrentTermTrie &) = delete;
  ConcurrentTermTrie &operator=(const ConcurrentTermTrie &) = delete;

  /// Fused check/insert of the tuple key \p Key (one shared first-
  /// occurrence variable numbering across the terms). Safe to call from
  /// any number of threads; exactly one caller per distinct key observes
  /// Inserted == true. \p Store must not be mutated by other threads for
  /// the duration of the walk (the engine walks quiescent or thread-
  /// private stores).
  InsertResult insert(const TermStore &Store, std::span<const TermRef> Key,
                      uint32_t NewValue);
  InsertResult insert(const TermStore &Store, TermRef T, uint32_t NewValue) {
    TermRef K[1] = {T};
    return insert(Store, std::span<const TermRef>(K, 1), NewValue);
  }

  /// Lock-free lookup; \returns the stored value or NoValue. Runs
  /// concurrently with insert() on other threads.
  uint32_t find(const TermStore &Store, std::span<const TermRef> Key) const;
  uint32_t find(const TermStore &Store, TermRef T) const {
    TermRef K[1] = {T};
    return find(Store, std::span<const TermRef>(K, 1));
  }

  /// Number of keys stored (relaxed; exact once writers are quiescent).
  size_t valueCount() const {
    return NumValues.load(std::memory_order_relaxed);
  }

  /// Number of trie nodes excluding the root (relaxed snapshot).
  size_t nodeCount() const {
    return NumNodes.load(std::memory_order_relaxed);
  }

  /// Bytes held by node chunks (table-space accounting). Callers snapshot
  /// this between evaluations, not mid-insert.
  size_t memoryBytes() const;

private:
  /// Token kinds, identical to TermTrie's encoding so the two
  /// representations index the same key space.
  enum Kind : uint8_t { KVar, KAtom, KInt, KStruct, KRoot };

  struct Node {
    uint64_t Payload = 0; ///< Immutable after publication.
    std::atomic<Node *> Child{nullptr};  ///< Head of prepend-only chain.
    Node *Sibling = nullptr;             ///< Written before publication only.
    std::atomic<uint32_t> Value{NoValue};
    uint8_t K = KRoot;
  };

  static constexpr size_t ChunkSize = 256;

  /// Flattens \p Key into canonical tokens (thread-local scratch).
  static void encodeKey(const TermStore &Store, std::span<const TermRef> Key,
                        std::vector<uint64_t> &Payloads,
                        std::vector<uint8_t> &Kinds);

  /// Lock-free child scan; acquire loads throughout.
  static Node *findChild(const Node *Parent, uint8_t K, uint64_t P);

  /// Allocates a node from the chunked arena. Caller holds Mu.
  Node *allocNode(uint8_t K, uint64_t P);

  Node Root;
  mutable std::mutex Mu; ///< Serializes inserts and chunk allocation.
  std::vector<std::unique_ptr<Node[]>> Chunks; ///< Guarded by Mu.
  size_t NextInChunk = ChunkSize;              ///< Guarded by Mu.
  std::atomic<size_t> NumNodes{0};
  std::atomic<size_t> NumValues{0};
};

} // namespace lpa

#endif // LPA_TABLE_CONCURRENTTRIE_H
