//===- DependencyIndex.h - Predicate dependency graph -----------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live dependency index behind incremental tabling (XSB's
/// assert/retract invalidation, Swift & Warren). The SLG forest's
/// producer/consumer edges, projected to *predicate* granularity, are fed
/// into this persistent graph as evaluation records them; when a clause of
/// predicate p is asserted or retracted, a reverse-reachability sweep from
/// p yields exactly the predicates whose completed tables may no longer be
/// the minimal model — everything else stays warm.
///
/// Predicate keys are packed as (SymbolId << 32) | Arity, the same packing
/// the solver uses for its per-predicate maps. Edges run consumer ->
/// producer ("the consumer's table was derived using the producer's
/// answers"); the index stores the *reverse* adjacency (producer -> its
/// consumers), which is the direction the invalidation sweep walks. Three
/// kinds of call contribute edges, all recorded while a tabled producer is
/// on the solver's producer stack:
///
///   * tabled calls — the forest edges exportForest() walks;
///   * nontabled calls — a nontabled body goal folds the callee's clauses
///     into the producer's derivation, so the producer depends on them;
///   * calls to *undefined* predicates — the call failed, but asserting
///     the predicate later would change the producer's answer set, so the
///     dependency must exist before the predicate does.
///
/// The graph is deliberately not thread-shared: each solver owns one, and
/// parallel eval workers record into their private engines (the lead's
/// index sees its own import-phase calls; invalidation happens between
/// queries, when workers are quiescent).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TABLE_DEPENDENCYINDEX_H
#define LPA_TABLE_DEPENDENCYINDEX_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lpa {

class DependencyIndex {
public:
  /// Packs a predicate identity the way the solver's per-predicate maps do.
  static uint64_t packPred(uint32_t Sym, uint32_t Arity) {
    return (uint64_t(Sym) << 32) | Arity;
  }

  /// Records "\p Consumer's table consumed \p Producer" (deduplicated).
  /// Self-edges are dropped: a predicate is always in its own cone, which
  /// dependentsOf() encodes directly.
  void addEdge(uint64_t Consumer, uint64_t Producer) {
    if (Consumer == Producer)
      return;
    auto [It, _] = Reverse.try_emplace(Producer);
    if (It->second.insert(Consumer).second)
      ++NumEdges;
  }

  /// Reverse-reachability sweep: every predicate whose table transitively
  /// consumed any of \p Changed, plus the changed predicates themselves
  /// (a table for p trivially depends on p's own clauses).
  std::unordered_set<uint64_t>
  dependentsOf(std::span<const uint64_t> Changed) const {
    std::unordered_set<uint64_t> Seen(Changed.begin(), Changed.end());
    std::vector<uint64_t> Work(Changed.begin(), Changed.end());
    while (!Work.empty()) {
      uint64_t P = Work.back();
      Work.pop_back();
      auto It = Reverse.find(P);
      if (It == Reverse.end())
        continue;
      for (uint64_t C : It->second)
        if (Seen.insert(C).second)
          Work.push_back(C);
    }
    return Seen;
  }

  /// Forgets the out-edges of every predicate in \p Invalidated: their
  /// tables are being re-derived, and the re-derivation re-records exactly
  /// the dependencies the *new* program induces. Keeping the old edges
  /// would be sound (over-invalidation only) but would make a redefinition
  /// that drops a dependency keep paying for it forever.
  void dropConsumers(const std::unordered_set<uint64_t> &Invalidated) {
    for (auto &[Producer, Consumers] : Reverse)
      for (auto It = Consumers.begin(); It != Consumers.end();)
        if (Invalidated.count(*It)) {
          It = Consumers.erase(It);
          --NumEdges;
        } else {
          ++It;
        }
  }

  /// Unions \p O's edges into this index (parallel eval workers record
  /// into private indexes; the lead folds them in after the phase).
  void merge(const DependencyIndex &O) {
    for (const auto &[Producer, Consumers] : O.Reverse)
      for (uint64_t C : Consumers)
        addEdge(C, Producer);
  }

  size_t edgeCount() const { return NumEdges; }
  size_t producerCount() const { return Reverse.size(); }

  size_t memoryBytes() const {
    size_t Bytes = sizeof(*this);
    for (const auto &[P, Consumers] : Reverse) {
      (void)P;
      Bytes += sizeof(uint64_t) * 4; // Map node estimate.
      Bytes += Consumers.size() * sizeof(uint64_t) * 2;
    }
    return Bytes;
  }

  void clear() {
    Reverse.clear();
    NumEdges = 0;
  }

private:
  /// producer -> set of consumers (the sweep direction).
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> Reverse;
  size_t NumEdges = 0;
};

} // namespace lpa

#endif // LPA_TABLE_DEPENDENCYINDEX_H
