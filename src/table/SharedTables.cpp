//===- SharedTables.cpp - Cross-worker shared subgoal tables ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "table/SharedTables.h"

#include <chrono>

using namespace lpa;

namespace {

constexpr size_t DefaultShards = 16;

inline uint64_t mix(uint64_t X) {
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

inline size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

SharedTableSpace::SharedTableSpace(size_t ShardCount) {
  size_t N = roundUpPow2(ShardCount ? ShardCount : DefaultShards);
  Shards.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    auto S = std::make_unique<Shard>();
    S->ChunkTable = std::make_unique<std::atomic<Entry *>[]>(MaxChunks);
    for (size_t C = 0; C < MaxChunks; ++C)
      S->ChunkTable[C].store(nullptr, std::memory_order_relaxed);
    Shards.push_back(std::move(S));
  }
}

SharedTableSpace::~SharedTableSpace() {
  for (auto &S : Shards)
    for (size_t C = 0; C < MaxChunks; ++C)
      delete[] S->ChunkTable[C].load(std::memory_order_relaxed);
}

SharedTableSpace::Shard &SharedTableSpace::shardFor(const TermStore &Store,
                                                    TermRef Call,
                                                    SymbolId Sym,
                                                    uint32_t Arity) {
  // Stripe by predicate plus the first argument's top token so call
  // variants of one hot predicate spread across shards (first-argument
  // indexing's hash, reused as a stripe key).
  uint64_t H = (uint64_t(Sym) << 32) | Arity;
  TermRef T = Store.deref(Call);
  if (Store.tag(T) == TermTag::Struct && Store.arity(T) > 0) {
    TermRef A0 = Store.deref(Store.arg(T, 0));
    switch (Store.tag(A0)) {
    case TermTag::Atom:
      H ^= mix(0x1000000000000000ULL | Store.symbol(A0));
      break;
    case TermTag::Int:
      H ^= mix(0x2000000000000000ULL ^
               static_cast<uint64_t>(Store.intValue(A0)));
      break;
    case TermTag::Struct:
      H ^= mix(0x3000000000000000ULL | (uint64_t(Store.symbol(A0)) << 8) |
               Store.arity(A0));
      break;
    case TermTag::Ref:
      H ^= 0x4000000000000000ULL;
      break;
    }
  }
  return *Shards[mix(H) & (Shards.size() - 1)];
}

SharedTableSpace::Entry *SharedTableSpace::entryAt(const Shard &S,
                                                   uint32_t Idx) {
  Entry *Chunk =
      S.ChunkTable[Idx / EntriesPerChunk].load(std::memory_order_acquire);
  return &Chunk[Idx % EntriesPerChunk];
}

std::unique_lock<std::mutex> SharedTableSpace::lockShard(Shard &S) {
  // try_lock first so contention is counted and timed only when it
  // actually happens.
  std::unique_lock<std::mutex> L(S.Mu, std::try_to_lock);
  if (!L.owns_lock()) {
    uint64_t T0 = nowNs();
    L.lock();
    S.LockContended.fetch_add(1, std::memory_order_relaxed);
    S.LockWaitNs.fetch_add(nowNs() - T0, std::memory_order_relaxed);
  }
  S.LockAcquisitions.fetch_add(1, std::memory_order_relaxed);
  return L;
}

SharedTableSpace::Outcome SharedTableSpace::claim(const TermStore &Store,
                                                  TermRef Call, SymbolId Sym,
                                                  uint32_t Arity,
                                                  uint32_t Worker) {
  Shard &S = shardFor(Store, Call, Sym, Arity);
  S.Lookups.fetch_add(1, std::memory_order_relaxed);

  uint32_t Idx = S.Index.find(Store, Call);
  if (Idx == ConcurrentTermTrie::NoValue) {
    // New variant (as far as the lock-free check saw). Register it under
    // the shard lock.
    std::unique_lock<std::mutex> L = lockShard(S);

    uint32_t NewIdx = S.NumEntries.load(std::memory_order_relaxed);
    if (NewIdx >= EntriesPerChunk * MaxChunks)
      return {nullptr, Hit::InFlight}; // Shard full; duplicate privately.
    size_t C = NewIdx / EntriesPerChunk;
    if (!S.ChunkTable[C].load(std::memory_order_relaxed))
      S.ChunkTable[C].store(new Entry[EntriesPerChunk],
                            std::memory_order_release);
    Entry *NE = entryAt(S, NewIdx);
    NE->Owner = Worker;
    NE->Sym = Sym;
    NE->Arity = Arity;
    auto R = S.Index.insert(Store, Call, NewIdx);
    if (R.Inserted) {
      S.NumEntries.store(NewIdx + 1, std::memory_order_release);
      S.Claims.fetch_add(1, std::memory_order_relaxed);
      return {NE, Hit::Claimed};
    }
    // Lost the registration race before we took the lock; fall through to
    // the existing entry. (The speculative slot is reused by the next
    // claim — NumEntries was not advanced.)
    Idx = R.Value;
  }

  Entry *E = entryAt(S, Idx);
  uint32_t St = E->State.load(std::memory_order_acquire);
  if (St == 2) {
    // Retired by invalidation: re-claim under the shard lock and
    // re-derive under the new program. The old table stays alive in
    // OwnedTables — a racing reader may still be walking it.
    std::unique_lock<std::mutex> L = lockShard(S);
    if (E->State.load(std::memory_order_relaxed) == 2) {
      E->Owner = Worker;
      E->State.store(0, std::memory_order_release);
      S.Claims.fetch_add(1, std::memory_order_relaxed);
      return {E, Hit::Claimed};
    }
    // Lost the re-claim race; re-read whatever state won.
    St = E->State.load(std::memory_order_acquire);
  }
  if (St == 1) {
    S.WarmHits.fetch_add(1, std::memory_order_relaxed);
    return {E, Hit::Published};
  }
  S.InFlightMisses.fetch_add(1, std::memory_order_relaxed);
  return {E, Hit::InFlight};
}

void SharedTableSpace::publish(Entry &E, std::unique_ptr<PublishedTable> T) {
  PublishedTable *Raw = T.get();
  {
    // Ownership parks in the deferred-reclamation list; publishes are
    // once-per-table, so this lock is cold.
    std::lock_guard<std::mutex> L(TablesMu);
    OwnedTables.push_back(std::move(T));
  }
  E.Table.store(Raw, std::memory_order_relaxed);
  E.State.store(1, std::memory_order_release);
  TotalPublishes.fetch_add(1, std::memory_order_relaxed);
}

const SharedTableSpace::PublishedTable *
SharedTableSpace::published(const Entry &E) const {
  // The release store in publish() orders the Table store before State;
  // an acquire load observing Published therefore observes the pointer.
  // A stale Published observation (entry since retired) still yields a
  // valid pointer: retirement never frees.
  return E.State.load(std::memory_order_acquire) == 1
             ? E.Table.load(std::memory_order_relaxed)
             : nullptr;
}

size_t SharedTableSpace::invalidatePred(SymbolId Sym, uint32_t Arity) {
  size_t Retired = 0;
  for (auto &S : Shards) {
    std::unique_lock<std::mutex> L = lockShard(*S);
    uint32_t N = S->NumEntries.load(std::memory_order_relaxed);
    size_t ShardRetired = 0;
    for (uint32_t I = 0; I < N; ++I) {
      Entry *E = entryAt(*S, I);
      // Sym/Arity are stamped under this same shard lock at claim time.
      if (E->Sym == Sym && E->Arity == Arity &&
          E->State.load(std::memory_order_relaxed) == 1) {
        E->State.store(2, std::memory_order_release);
        ++ShardRetired;
      }
    }
    if (ShardRetired) {
      S->Retired.fetch_add(ShardRetired, std::memory_order_relaxed);
      Retired += ShardRetired;
    }
  }
  if (Retired)
    InvalidationEpoch.fetch_add(1, std::memory_order_release);
  return Retired;
}

std::vector<const SharedTableSpace::PublishedTable *>
SharedTableSpace::publishedTables() const {
  std::vector<const PublishedTable *> Out;
  for (const auto &S : Shards) {
    uint32_t N = S->NumEntries.load(std::memory_order_acquire);
    for (uint32_t I = 0; I < N; ++I)
      if (const PublishedTable *T = published(*entryAt(*S, I)))
        Out.push_back(T);
  }
  return Out;
}

SharedTableSpace::Stats SharedTableSpace::stats() const {
  Stats Out;
  Out.Shards = Shards.size();
  Out.Publishes = TotalPublishes.load(std::memory_order_relaxed);
  for (const auto &S : Shards) {
    Out.Lookups += S->Lookups.load(std::memory_order_relaxed);
    Out.WarmHits += S->WarmHits.load(std::memory_order_relaxed);
    Out.InFlightMisses += S->InFlightMisses.load(std::memory_order_relaxed);
    Out.Claims += S->Claims.load(std::memory_order_relaxed);
    Out.Retired += S->Retired.load(std::memory_order_relaxed);
    Out.LockAcquisitions += S->LockAcquisitions.load(std::memory_order_relaxed);
    Out.LockContended += S->LockContended.load(std::memory_order_relaxed);
    Out.LockWaitNs += S->LockWaitNs.load(std::memory_order_relaxed);
  }
  return Out;
}

std::vector<SharedTableSpace::ShardStats>
SharedTableSpace::perShardStats() const {
  std::vector<ShardStats> Out;
  Out.reserve(Shards.size());
  for (const auto &S : Shards) {
    ShardStats SS;
    SS.Lookups = S->Lookups.load(std::memory_order_relaxed);
    SS.WarmHits = S->WarmHits.load(std::memory_order_relaxed);
    SS.InFlightMisses = S->InFlightMisses.load(std::memory_order_relaxed);
    SS.Claims = S->Claims.load(std::memory_order_relaxed);
    SS.Retired = S->Retired.load(std::memory_order_relaxed);
    SS.LockAcquisitions = S->LockAcquisitions.load(std::memory_order_relaxed);
    SS.LockContended = S->LockContended.load(std::memory_order_relaxed);
    SS.LockWaitNs = S->LockWaitNs.load(std::memory_order_relaxed);
    SS.Entries = S->NumEntries.load(std::memory_order_acquire);
    Out.push_back(SS);
  }
  return Out;
}

size_t SharedTableSpace::memoryBytes() const {
  size_t Bytes = sizeof(*this);
  for (const auto &S : Shards) {
    Bytes += S->Index.memoryBytes() + MaxChunks * sizeof(std::atomic<Entry *>);
    uint32_t N = S->NumEntries.load(std::memory_order_acquire);
    Bytes += ((N + EntriesPerChunk - 1) / EntriesPerChunk) * EntriesPerChunk *
             sizeof(Entry);
  }
  // Deferred-reclamation list: retired tables keep costing memory until
  // the space dies, so the watermark must see them.
  std::lock_guard<std::mutex> L(TablesMu);
  for (const auto &T : OwnedTables)
    Bytes += T->Terms.memoryBytes() + T->Answers.capacity() * sizeof(TermRef) +
             sizeof(*T);
  return Bytes;
}
