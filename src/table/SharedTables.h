//===- SharedTables.h - Cross-worker shared subgoal tables ------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The table space intra-query evaluation workers share. The unit of
/// sharing is a whole subgoal table: a worker that first encounters a
/// tabled call variant *claims* it, evaluates the subgoal's cone with its
/// private engine, and *publishes* the completed table (call copy + answer
/// tuples in its own TermStore); every other worker — and finally the lead
/// solver, which imports the whole space — consumes the published copy
/// without ever re-deriving it.
///
/// Layout: a power-of-two array of shards, striped by a hash of the
/// predicate and first-argument shape so variants of hot predicates spread
/// out. Each shard holds a ConcurrentTermTrie index (variant call ->
/// entry), a deque of entries (stable addresses), and a mutex that
/// serializes claim registration only. The fast paths never lock:
///
///  - Warm read: lock-free trie find + acquire load of the entry state.
///    A completed table is published with a release store, so a reader
///    that observes State == Published also observes every byte of the
///    table copy.
///  - In-flight miss: the claiming worker is still evaluating. The caller
///    does NOT wait (blocking on another worker's completion could
///    deadlock on cross-worker SCCs); it duplicates the evaluation
///    privately and simply doesn't publish. Claim arbitration guarantees
///    exactly one publisher per variant, so duplicated work costs time,
///    never correctness.
///
/// Poisoning crosses worker boundaries as data: a table truncated by the
/// depth limit or a deadline publishes with Incomplete set, and importers
/// propagate the taint exactly as a local incomplete table would.
///
/// Incremental invalidation retires published tables in place: the sweep
/// takes each shard lock, flips matching entries Published -> Retired, and
/// bumps the space epoch with a release store. Readers are lock-free, so a
/// reader may still observe the pre-retirement state and dereference the
/// old table — therefore table memory is never freed on retirement.
/// Ownership of every published table lives in a space-level list that is
/// reclaimed only at destruction; Entry holds a plain atomic pointer. A
/// retired entry is re-claimable: the next claim() that sees Retired takes
/// the shard lock and becomes the new owner, re-deriving under the new
/// program. Retirement only touches Published entries — the service layer
/// guarantees quiescence (no in-flight claims) when it invalidates, so an
/// in-flight entry at retirement time cannot exist in product use.
///
/// Per-shard counters (lock acquisitions, contended acquisitions, lock
/// wait nanoseconds, claims, published tables, warm hits, in-flight
/// misses) feed the MetricsRegistry gauges the bench scaling curves read.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TABLE_SHAREDTABLES_H
#define LPA_TABLE_SHAREDTABLES_H

#include "table/ConcurrentTrie.h"
#include "term/TermStore.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace lpa {

class SharedTableSpace {
public:
  /// One completed subgoal table, self-contained: the call and every
  /// answer are copies into the table's own TermStore, so the publisher's
  /// private (growing, reallocating) heap is never shared.
  struct PublishedTable {
    TermStore Terms;
    TermRef Call = InvalidTerm;
    SymbolId Sym = 0;
    uint32_t Arity = 0;
    uint32_t NumCallVars = 0;
    /// Answer count, carried explicitly: a factored table of a ground call
    /// (NumCallVars == 0) stores one empty tuple per answer, so the count
    /// cannot be recovered from Answers.size().
    uint32_t NumAnswers = 0;
    bool Factored = false;
    bool Incomplete = false; ///< Depth/deadline taint; importers propagate.
    /// Factored: NumCallVars-wide tuples, answer-major. Otherwise whole
    /// answer instances.
    std::vector<TermRef> Answers;
  };

  class Entry {
    friend class SharedTableSpace;
    /// 0 = in flight, 1 = published, 2 = retired by invalidation.
    std::atomic<uint32_t> State{0};
    uint32_t Owner = 0;
    /// Predicate identity, stamped under the shard lock at first claim;
    /// invalidatePred() scans for it under the same lock.
    SymbolId Sym = 0;
    uint32_t Arity = 0;
    /// Non-owning: the space's OwnedTables list keeps every table alive
    /// until destruction (lock-free readers may hold stale pointers).
    std::atomic<PublishedTable *> Table{nullptr};
  };

  enum class Hit : uint8_t {
    Claimed,  ///< Caller owns the variant: evaluate, then publish.
    InFlight, ///< Another worker owns it: duplicate-evaluate privately.
    Published ///< Completed table available via published().
  };

  struct Outcome {
    Entry *E = nullptr;
    Hit H = Hit::Claimed;
  };

  /// \p ShardCount is rounded up to a power of two; 0 picks the default.
  explicit SharedTableSpace(size_t ShardCount = 0);
  ~SharedTableSpace(); ///< Frees entry chunks and every table ever
                       ///< published (including retired ones).

  SharedTableSpace(const SharedTableSpace &) = delete;
  SharedTableSpace &operator=(const SharedTableSpace &) = delete;

  /// Looks up the call variant \p Call (pred \p Sym / \p Arity) and claims
  /// it for \p Worker if unclaimed. Lock-free when the variant is already
  /// known; takes the shard lock only to register a new claim.
  Outcome claim(const TermStore &Store, TermRef Call, SymbolId Sym,
                uint32_t Arity, uint32_t Worker);

  /// Publishes \p T as the completed table of the entry claimed earlier.
  /// Release store: after this, any claim() returning Published for the
  /// variant observes the full table.
  void publish(Entry &E, std::unique_ptr<PublishedTable> T);

  /// The published table of \p E, or null while still in flight.
  const PublishedTable *published(const Entry &E) const;

  /// Every published table, shard by shard in claim order. Only meaningful
  /// once all workers have drained (the lead's import pass, after
  /// ThreadPool::wait()). Retired tables are skipped.
  std::vector<const PublishedTable *> publishedTables() const;

  /// Retires every published table of \p Sym / \p Arity: takes each shard
  /// lock in turn, flips matching Published entries to Retired, and (if
  /// anything changed) bumps the epoch with a release store, so a reader
  /// that observes the new epoch also observes every retirement. Table
  /// memory is NOT freed (see the file comment). \returns tables retired.
  size_t invalidatePred(SymbolId Sym, uint32_t Arity);

  /// Invalidation epoch; bumped once per invalidatePred() that retires
  /// anything. Acquire load — pairs with the sweep's release bump.
  uint64_t epoch() const {
    return InvalidationEpoch.load(std::memory_order_acquire);
  }

  struct Stats {
    uint64_t Lookups = 0;        ///< claim() calls.
    uint64_t WarmHits = 0;       ///< Published-table hits (no lock).
    uint64_t InFlightMisses = 0; ///< Variant owned elsewhere (no wait).
    uint64_t Claims = 0;         ///< New variants claimed (incl. re-claims).
    uint64_t Publishes = 0;      ///< Tables published.
    uint64_t Retired = 0;        ///< Tables retired by invalidation.
    uint64_t LockAcquisitions = 0;
    uint64_t LockContended = 0; ///< try_lock failed first.
    uint64_t LockWaitNs = 0;    ///< Time blocked on contended shard locks.
    size_t Shards = 0;
  };
  /// Aggregated across shards (relaxed reads; exact when quiescent).
  Stats stats() const;

  /// One shard's counters — the per-stripe view behind stats(). The skew
  /// across shards (one hot stripe vs. an even spread) is what the
  /// ROADMAP's contention-guided shard tuning reads; the aggregate alone
  /// cannot distinguish the two.
  struct ShardStats {
    uint64_t Lookups = 0;
    uint64_t WarmHits = 0;
    uint64_t InFlightMisses = 0;
    uint64_t Claims = 0;
    uint64_t Retired = 0;
    uint64_t LockAcquisitions = 0;
    uint64_t LockContended = 0;
    uint64_t LockWaitNs = 0;
    uint32_t Entries = 0; ///< Variants registered in the shard.
  };
  /// Per-shard counters in shard order (relaxed reads; exact when
  /// quiescent).
  std::vector<ShardStats> perShardStats() const;

  size_t shardCount() const { return Shards.size(); }

  /// Bytes held by shard indexes and published table stores.
  size_t memoryBytes() const;

private:
  /// Entries live in fixed chunks behind a preallocated table of atomic
  /// chunk pointers, so resolving an index from the trie never locks and
  /// never races chunk growth (a deque/vector would).
  static constexpr size_t EntriesPerChunk = 128;
  static constexpr size_t MaxChunks = 2048;

  struct Shard {
    ConcurrentTermTrie Index; ///< Variant call -> entry index.
    std::mutex Mu;            ///< Serializes entry creation only.
    std::unique_ptr<std::atomic<Entry *>[]> ChunkTable;
    std::atomic<uint32_t> NumEntries{0};
    std::atomic<uint64_t> Lookups{0};
    std::atomic<uint64_t> WarmHits{0};
    std::atomic<uint64_t> InFlightMisses{0};
    std::atomic<uint64_t> Claims{0};
    std::atomic<uint64_t> Retired{0};
    std::atomic<uint64_t> LockAcquisitions{0};
    std::atomic<uint64_t> LockContended{0};
    std::atomic<uint64_t> LockWaitNs{0};
  };

  Shard &shardFor(const TermStore &Store, TermRef Call, SymbolId Sym,
                  uint32_t Arity);
  static Entry *entryAt(const Shard &S, uint32_t Idx);

  /// Takes the shard lock, counting contention the same way claim() does.
  static std::unique_lock<std::mutex> lockShard(Shard &S);

  std::vector<std::unique_ptr<Shard>> Shards;
  std::atomic<uint64_t> TotalPublishes{0};
  std::atomic<uint64_t> InvalidationEpoch{0};
  /// Deferred reclamation: every table ever published, freed only at
  /// destruction. Readers are lock-free and may hold a retired table's
  /// pointer arbitrarily long, so retirement can never free.
  mutable std::mutex TablesMu; ///< memoryBytes() is const and must lock.
  std::vector<std::unique_ptr<PublishedTable>> OwnedTables;
};

} // namespace lpa

#endif // LPA_TABLE_SHAREDTABLES_H
