//===- TermTrie.cpp - Arena-allocated term tries for tabling ---------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "table/TermTrie.h"

#include <algorithm>

using namespace lpa;

namespace {

/// Encodes the token of one dereferenced cell. Struct cells also require
/// descending into the arguments, which the walk loops handle.
inline uint64_t structPayload(SymbolId Sym, uint32_t Arity) {
  return (uint64_t(Sym) << 32) | Arity;
}

} // namespace

uint32_t TermTrie::stepInsert(uint32_t Parent, uint8_t K, uint64_t P,
                              bool &Created) {
  {
    const Node &PN = Nodes[Parent];
    if (PN.HashIdx != NoValue) {
      const ChildMap &M = HashChildren[PN.HashIdx];
      auto It = M.find(Token{P, K});
      if (It != M.end())
        return It->second;
    } else {
      for (uint32_t C = PN.Child; C != NoValue; C = Nodes[C].Sibling)
        if (Nodes[C].K == K && Nodes[C].Payload == P)
          return C;
    }
  }

  // Miss: allocate the child. (Indexed access throughout -- push_back may
  // reallocate the node arena.) Cold tables are reallocation-bound under
  // the default doubling growth, so grow 4x until the arena is sizeable.
  if (Nodes.size() == Nodes.capacity())
    Nodes.reserve(Nodes.capacity() >= 4096
                      ? Nodes.capacity() * 2
                      : std::max<size_t>(64, Nodes.capacity() * 4));
  uint32_t NewIdx = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(Node{P, NoValue, Nodes[Parent].Child, NoValue, NoValue, 0, K});
  Nodes[Parent].Child = NewIdx;
  uint32_t Fanout = ++Nodes[Parent].ChildCount;
  if (Nodes[Parent].HashIdx != NoValue) {
    HashChildren[Nodes[Parent].HashIdx].emplace(Token{P, K}, NewIdx);
  } else if (Fanout > EscalateFanout) {
    // Escalate: index the whole chain. The chain stays linked so
    // memoryBytes/clear need no special cases.
    uint32_t HI = static_cast<uint32_t>(HashChildren.size());
    HashChildren.emplace_back();
    ChildMap &M = HashChildren.back();
    M.reserve(Fanout * 2);
    for (uint32_t C = Nodes[Parent].Child; C != NoValue; C = Nodes[C].Sibling)
      M.emplace(Token{Nodes[C].Payload, Nodes[C].K}, C);
    Nodes[Parent].HashIdx = HI;
  }
  Created = true;
  return NewIdx;
}

uint32_t TermTrie::stepFind(uint32_t Parent, uint8_t K, uint64_t P) const {
  const Node &PN = Nodes[Parent];
  if (PN.HashIdx != NoValue) {
    const ChildMap &M = HashChildren[PN.HashIdx];
    auto It = M.find(Token{P, K});
    return It == M.end() ? NoValue : It->second;
  }
  for (uint32_t C = PN.Child; C != NoValue; C = Nodes[C].Sibling)
    if (Nodes[C].K == K && Nodes[C].Payload == P)
      return C;
  return NoValue;
}

TermTrie::InsertResult TermTrie::insert(const TermStore &Store,
                                        std::span<const TermRef> Key,
                                        uint32_t NewValue,
                                        std::vector<TermRef> *VarsOut) {
  if (VarsOut)
    VarsOut->clear();
  VarScratch.clear();
  WorkScratch.clear();
  for (size_t I = Key.size(); I-- > 0;)
    WorkScratch.push_back(Key[I]);

  uint32_t Cur = 0;
  uint32_t Created = 0;
  while (!WorkScratch.empty()) {
    TermRef T = Store.deref(WorkScratch.back());
    WorkScratch.pop_back();
    uint8_t K = KVar;
    uint64_t P = 0;
    switch (Store.tag(T)) {
    case TermTag::Ref: {
      // First-occurrence numbering: path equality must coincide with
      // variance, exactly like canonicalKey. Linear scan -- keys in the
      // analyses carry a handful of variables.
      auto It = std::find(VarScratch.begin(), VarScratch.end(), T);
      uint32_t N;
      if (It == VarScratch.end()) {
        N = static_cast<uint32_t>(VarScratch.size());
        VarScratch.push_back(T);
        if (VarsOut)
          VarsOut->push_back(T);
      } else {
        N = static_cast<uint32_t>(It - VarScratch.begin());
      }
      K = KVar;
      P = N;
      break;
    }
    case TermTag::Atom:
      K = KAtom;
      P = Store.symbol(T);
      break;
    case TermTag::Int:
      K = KInt;
      P = static_cast<uint64_t>(Store.intValue(T));
      break;
    case TermTag::Struct:
      K = KStruct;
      P = structPayload(Store.symbol(T), Store.arity(T));
      for (uint32_t I = Store.arity(T); I-- > 0;)
        WorkScratch.push_back(Store.arg(T, I));
      break;
    }
    bool C = false;
    Cur = stepInsert(Cur, K, P, C);
    Created += C;
  }

  Node &Leaf = Nodes[Cur];
  if (Leaf.Value == NoValue) {
    Leaf.Value = NewValue;
    ++NumValues;
    return {NewValue, true, Created};
  }
  return {Leaf.Value, false, Created};
}

uint32_t TermTrie::find(const TermStore &Store,
                        std::span<const TermRef> Key) const {
  // Local scratch: find() is const and cold next to insert().
  std::vector<TermRef> Work;
  std::vector<TermRef> Vars;
  for (size_t I = Key.size(); I-- > 0;)
    Work.push_back(Key[I]);

  uint32_t Cur = 0;
  while (!Work.empty()) {
    TermRef T = Store.deref(Work.back());
    Work.pop_back();
    uint8_t K = KVar;
    uint64_t P = 0;
    switch (Store.tag(T)) {
    case TermTag::Ref: {
      auto It = std::find(Vars.begin(), Vars.end(), T);
      uint32_t N;
      if (It == Vars.end()) {
        N = static_cast<uint32_t>(Vars.size());
        Vars.push_back(T);
      } else {
        N = static_cast<uint32_t>(It - Vars.begin());
      }
      K = KVar;
      P = N;
      break;
    }
    case TermTag::Atom:
      K = KAtom;
      P = Store.symbol(T);
      break;
    case TermTag::Int:
      K = KInt;
      P = static_cast<uint64_t>(Store.intValue(T));
      break;
    case TermTag::Struct:
      K = KStruct;
      P = structPayload(Store.symbol(T), Store.arity(T));
      for (uint32_t I = Store.arity(T); I-- > 0;)
        Work.push_back(Store.arg(T, I));
      break;
    }
    Cur = stepFind(Cur, K, P);
    if (Cur == NoValue)
      return NoValue;
  }
  return Nodes[Cur].Value;
}

size_t TermTrie::memoryBytes() const {
  size_t Bytes = Nodes.capacity() * sizeof(Node);
  Bytes += HashChildren.capacity() * sizeof(ChildMap);
  for (const ChildMap &M : HashChildren)
    Bytes += M.bucket_count() * sizeof(void *) +
             M.size() * (sizeof(Token) + sizeof(uint32_t) + sizeof(void *));
  Bytes += WorkScratch.capacity() * sizeof(TermRef);
  Bytes += VarScratch.capacity() * sizeof(TermRef);
  return Bytes;
}

void TermTrie::clear() {
  Nodes.clear();
  HashChildren.clear();
  NumValues = 0;
  initRoot();
}
