//===- TermTrie.h - Arena-allocated term tries for tabling ------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Term tries: the table representation XSB adopted for subgoal and answer
/// tables (Swift & Warren). A trie node is labelled with one token of the
/// canonical preorder encoding of a term -- Var(n), Atom(sym), Int(v) or
/// Struct(sym, arity) -- with variables numbered in first-occurrence order,
/// so a root-to-leaf path spells exactly the canonicalKey() byte string of
/// a term and path equality coincides with variance. Unlike the string
/// keys they replace, tries never materialize an intermediate encoding:
/// ONE left-to-right walk of the term both checks membership and performs
/// the insert (check/insert fusion), sharing common prefixes between all
/// keys in the table.
///
/// Keys may span several terms (a "tuple"): the walk continues across the
/// terms with a single shared variable numbering. This is how substitution
/// factoring stores answers -- as the tuple of bindings of the call's free
/// variables rather than a copy of the whole call instance.
///
/// Node children start as a first-child/next-sibling chain (most interior
/// nodes have one child) and escalate to a hash map past a small fanout,
/// mirroring XSB's trie hashing.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TABLE_TERMTRIE_H
#define LPA_TABLE_TERMTRIE_H

#include "term/TermStore.h"

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace lpa {

/// One term trie: a set of term (tuple) keys, each mapped to a uint32_t
/// value assigned at insertion. Lookup and insertion are fused into a
/// single walk of the key.
class TermTrie {
public:
  /// Sentinel for "no value stored".
  static constexpr uint32_t NoValue = ~uint32_t(0);

  /// Fanout at which a node's child chain escalates to a hash map.
  static constexpr uint32_t EscalateFanout = 8;

  struct InsertResult {
    uint32_t Value;       ///< Stored value (existing one on a hit).
    bool Inserted;        ///< True if the key was new.
    uint32_t NodesCreated; ///< Trie nodes allocated by this walk.
  };

  TermTrie() { initRoot(); }

  /// Fused check/insert of the key formed by walking \p Key left to right
  /// (one shared variable numbering across all terms). If the key is
  /// present, returns its value; otherwise stores \p NewValue. \p VarsOut,
  /// when non-null, receives the distinct unbound variables of the key in
  /// numbering (first-occurrence) order -- the call's free variables, in
  /// the order substitution-factored answers bind them.
  InsertResult insert(const TermStore &Store, std::span<const TermRef> Key,
                      uint32_t NewValue,
                      std::vector<TermRef> *VarsOut = nullptr);

  /// Single-term key convenience.
  InsertResult insert(const TermStore &Store, TermRef T, uint32_t NewValue,
                      std::vector<TermRef> *VarsOut = nullptr) {
    TermRef K[1] = {T};
    return insert(Store, std::span<const TermRef>(K, 1), NewValue, VarsOut);
  }

  /// Pure lookup; \returns the stored value or NoValue.
  uint32_t find(const TermStore &Store, std::span<const TermRef> Key) const;
  uint32_t find(const TermStore &Store, TermRef T) const {
    TermRef K[1] = {T};
    return find(Store, std::span<const TermRef>(K, 1));
  }

  /// Number of trie nodes (excluding the root).
  size_t nodeCount() const { return Nodes.size() - 1; }

  /// Number of keys stored.
  size_t valueCount() const { return NumValues; }

  /// Bytes held by nodes, hash children and walk scratch (table-space
  /// accounting; the paper's "Table space" column).
  size_t memoryBytes() const;

  /// Drops all keys.
  void clear();

private:
  /// Token kinds; kept distinct from TermTag so Atom(sym) can never alias
  /// Struct(sym, arity) or a root marker.
  enum Kind : uint8_t { KVar, KAtom, KInt, KStruct, KRoot };

  struct Node {
    uint64_t Payload;          ///< Var number / symbol / int bits / sym+arity.
    uint32_t Child = NoValue;  ///< First child.
    uint32_t Sibling = NoValue;
    uint32_t Value = NoValue;  ///< Key value when a key ends here.
    uint32_t HashIdx = NoValue; ///< Index into HashChildren once escalated.
    uint32_t ChildCount = 0;
    uint8_t K;
  };

  struct Token {
    uint64_t Payload;
    uint8_t K;
    bool operator==(const Token &O) const {
      return Payload == O.Payload && K == O.K;
    }
  };
  struct TokenHash {
    size_t operator()(const Token &T) const {
      // Splitmix-style scramble over payload and kind.
      uint64_t X = T.Payload + 0x9e3779b97f4a7c15ULL * (T.K + 1);
      X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
      X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(X ^ (X >> 31));
    }
  };
  using ChildMap = std::unordered_map<Token, uint32_t, TokenHash>;

  void initRoot() {
    Nodes.push_back(Node{0, NoValue, NoValue, NoValue, NoValue, 0, KRoot});
  }

  /// Descends from \p Parent along the \p K / \p P token, creating the
  /// child if absent. \p Created reports an allocation.
  uint32_t stepInsert(uint32_t Parent, uint8_t K, uint64_t P, bool &Created);

  /// \returns the child of \p Parent labelled \p K / \p P, or NoValue.
  uint32_t stepFind(uint32_t Parent, uint8_t K, uint64_t P) const;

  std::vector<Node> Nodes;          ///< Nodes[0] is the root.
  std::vector<ChildMap> HashChildren;
  size_t NumValues = 0;

  /// Walk scratch, reused across inserts (insert is not reentrant; the
  /// solver never nests trie walks).
  std::vector<TermRef> WorkScratch;
  std::vector<TermRef> VarScratch; ///< Vars in first-occurrence order.
};

} // namespace lpa

#endif // LPA_TABLE_TERMTRIE_H
