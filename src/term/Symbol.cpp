//===- Symbol.cpp - Interned atom/functor names ---------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/Symbol.h"

#include <cassert>

using namespace lpa;

SymbolTable::SymbolTable() {
  Nil = intern("[]");
  Cons = intern(".");
  Comma = intern(",");
  True = intern("true");
  Fail = intern("fail");
  Neck = intern(":-");
  Unify = intern("=");
  BoolTrue = True;
  BoolFalse = intern("false");
  Iff = intern("iff");
}

SymbolId SymbolTable::intern(std::string_view Name) {
  auto It = Index.find(std::string(Name));
  if (It != Index.end())
    return It->second;
  SymbolId Id = static_cast<SymbolId>(Names.size());
  Names.emplace_back(Name);
  Index.emplace(Names.back(), Id);
  return Id;
}

SymbolId SymbolTable::lookup(std::string_view Name) const {
  auto It = Index.find(std::string(Name));
  return It == Index.end() ? NotFound : It->second;
}

const std::string &SymbolTable::name(SymbolId Id) const {
  assert(Id < Names.size() && "symbol id out of range");
  return Names[Id];
}
