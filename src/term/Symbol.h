//===- Symbol.h - Interned atom/functor names -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interning of atom and functor names. A SymbolId is a dense index; atoms
/// are symbols used at arity 0 and compound terms pair a symbol with an
/// explicit arity, so "foo" the atom and "foo/2" the functor share one id.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TERM_SYMBOL_H
#define LPA_TERM_SYMBOL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lpa {

/// Dense identifier for an interned name.
using SymbolId = uint32_t;

/// Interns strings to dense SymbolIds and maps them back.
///
/// A SymbolTable is shared by every term store, database and analyzer that
/// participates in one analysis session.
class SymbolTable {
public:
  SymbolTable();

  /// Returns the id for \p Name, interning it on first use.
  SymbolId intern(std::string_view Name);

  /// Returns the id for \p Name if already interned, or NotFound.
  SymbolId lookup(std::string_view Name) const;

  /// Returns the text of symbol \p Id.
  const std::string &name(SymbolId Id) const;

  /// Number of interned symbols.
  size_t size() const { return Names.size(); }

  /// Sentinel returned by lookup() for unknown names.
  static constexpr SymbolId NotFound = ~SymbolId(0);

  /// \name Well-known symbols, interned eagerly by the constructor.
  /// @{
  SymbolId Nil;        ///< "[]"
  SymbolId Cons;       ///< "." (list constructor)
  SymbolId Comma;      ///< ","
  SymbolId True;       ///< "true"
  SymbolId Fail;       ///< "fail"
  SymbolId Neck;       ///< ":-"
  SymbolId Unify;      ///< "="
  SymbolId BoolTrue;   ///< "true" (Prop domain); alias of True
  SymbolId BoolFalse;  ///< "false" (Prop domain)
  SymbolId Iff;        ///< "iff" (Prop truth-table literal)
  /// @}

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, SymbolId> Index;
};

} // namespace lpa

#endif // LPA_TERM_SYMBOL_H
