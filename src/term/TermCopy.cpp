//===- TermCopy.cpp - Copying terms across stores --------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/TermCopy.h"

#include <memory>

#include <vector>

using namespace lpa;

namespace {

/// Memo for shared subterms. Most copied terms are tiny, so a linear
/// vector handles the common case; past a threshold it upgrades to a hash
/// map (long lists, big answers).
class CopyMemo {
public:
  TermRef find(TermRef Key) const {
    if (Big)
      return lookupBig(Key);
    for (const auto &[K, V] : Small)
      if (K == Key)
        return V;
    return InvalidTerm;
  }

  void insert(TermRef Key, TermRef Value) {
    if (!Big) {
      if (Small.size() < 32) {
        Small.emplace_back(Key, Value);
        return;
      }
      Big = std::make_unique<std::unordered_map<TermRef, TermRef>>(
          Small.begin(), Small.end());
    }
    Big->emplace(Key, Value);
  }

private:
  TermRef lookupBig(TermRef Key) const {
    auto It = Big->find(Key);
    return It == Big->end() ? InvalidTerm : It->second;
  }

  std::vector<std::pair<TermRef, TermRef>> Small;
  std::unique_ptr<std::unordered_map<TermRef, TermRef>> Big;
};

} // namespace

TermRef lpa::copyTerm(const TermStore &Src, TermRef T, TermStore &Dst,
                      VarRenaming &Renaming) {
  // Iterative post-order construction; recursion would overflow on the long
  // right-nested lists and conjunctions the corpus programs build.
  struct Frame {
    TermRef Node;               // Dereferenced Struct in Src.
    std::vector<TermRef> Args;  // Copies produced so far.
  };
  // Preserves sharing of compound subterms within this copy.
  CopyMemo Memo;

  std::vector<Frame> Stack;
  TermRef Pending = T;
  TermRef Done = InvalidTerm;

  while (true) {
    // Phase 1: resolve Pending into Done, or open a frame for a struct.
    while (Pending != InvalidTerm) {
      TermRef D = Src.deref(Pending);
      Pending = InvalidTerm;
      switch (Src.tag(D)) {
      case TermTag::Ref: {
        auto It = Renaming.find(D);
        if (It == Renaming.end())
          It = Renaming.emplace(D, Dst.mkVar()).first;
        Done = It->second;
        break;
      }
      case TermTag::Atom:
        Done = Dst.mkAtom(Src.symbol(D));
        break;
      case TermTag::Int:
        Done = Dst.mkInt(Src.intValue(D));
        break;
      case TermTag::Struct: {
        TermRef Hit = Memo.find(D);
        if (Hit != InvalidTerm) {
          Done = Hit;
          break;
        }
        Stack.push_back({D, {}});
        Stack.back().Args.reserve(Src.arity(D));
        Pending = Src.arg(D, 0);
        break;
      }
      }
    }
    if (Done == InvalidTerm)
      continue; // A frame was opened; its first argument is now Pending.

    // Phase 2: deliver Done upward.
    if (Stack.empty())
      return Done;
    Frame &F = Stack.back();
    F.Args.push_back(Done);
    Done = InvalidTerm;
    uint32_t Arity = Src.arity(F.Node);
    if (F.Args.size() < Arity) {
      Pending = Src.arg(F.Node, static_cast<uint32_t>(F.Args.size()));
      continue;
    }
    TermRef Copy = Dst.mkStruct(Src.symbol(F.Node), F.Args);
    Memo.insert(F.Node, Copy);
    Stack.pop_back();
    Done = Copy;
  }
}

TermRef lpa::copyTerm(const TermStore &Src, TermRef T, TermStore &Dst) {
  VarRenaming Renaming;
  return copyTerm(Src, T, Dst, Renaming);
}

size_t lpa::termSizeCells(const TermStore &Store, TermRef T) {
  size_t Count = 0;
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Store.deref(Work.back());
    Work.pop_back();
    ++Count;
    if (Store.tag(Cur) == TermTag::Struct) {
      Count += Store.arity(Cur); // Argument slots.
      for (uint32_t I = 0, E = Store.arity(Cur); I < E; ++I)
        Work.push_back(Store.arg(Cur, I));
    }
  }
  return Count;
}
