//===- TermCopy.h - Copying terms across stores -----------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Copies terms between stores (or within one), resolving bindings as it
/// goes and renaming unbound variables apart. This is the engine's clause
/// renaming (program clause -> solver heap) and answer freezing (solver
/// heap -> table store).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TERM_TERMCOPY_H
#define LPA_TERM_TERMCOPY_H

#include "term/TermStore.h"

#include <unordered_map>

namespace lpa {

/// Maps source-store variables to their fresh copies in the destination.
/// Reusing one map across several copyTerm calls preserves variable sharing
/// between the copied terms (e.g. head and body of one clause).
using VarRenaming = std::unordered_map<TermRef, TermRef>;

/// Copies \p T from \p Src into \p Dst.
///
/// Bound variables are chased, so the copy is the *resolved* term. Unbound
/// variables become fresh Dst variables, consistently via \p Renaming.
/// \p Src and \p Dst may alias (used by the solver to snapshot answers).
TermRef copyTerm(const TermStore &Src, TermRef T, TermStore &Dst,
                 VarRenaming &Renaming);

/// Convenience overload with a throwaway renaming.
TermRef copyTerm(const TermStore &Src, TermRef T, TermStore &Dst);

/// \returns the number of cells (nodes) of the resolved term \p T, counting
/// shared subterms once per occurrence. Used for table-space accounting.
size_t termSizeCells(const TermStore &Store, TermRef T);

} // namespace lpa

#endif // LPA_TERM_TERMCOPY_H
