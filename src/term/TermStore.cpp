//===- TermStore.cpp - Cell-based term representation ---------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/TermStore.h"

using namespace lpa;

TermRef TermStore::mkVar() {
  TermRef T = static_cast<TermRef>(Cells.size());
  Cells.push_back({TermTag::Ref, 0, 0, static_cast<int64_t>(T)});
  return T;
}

TermRef TermStore::mkAtom(SymbolId S) {
  TermRef T = static_cast<TermRef>(Cells.size());
  Cells.push_back({TermTag::Atom, S, 0, 0});
  return T;
}

TermRef TermStore::mkInt(int64_t Value) {
  TermRef T = static_cast<TermRef>(Cells.size());
  Cells.push_back({TermTag::Int, 0, 0, Value});
  return T;
}

TermRef TermStore::mkStruct(SymbolId S, std::span<const TermRef> Args) {
  assert(!Args.empty() && "use mkAtom for arity 0");
  // Argument slots are Ref cells pre-bound to the given terms; they are
  // never unbound, so they need no trailing.
  TermRef ArgBase = static_cast<TermRef>(Cells.size() + 1);
  TermRef T = static_cast<TermRef>(Cells.size());
  Cells.push_back({TermTag::Struct, S, static_cast<uint32_t>(Args.size()),
                   static_cast<int64_t>(ArgBase)});
  for (TermRef A : Args)
    Cells.push_back({TermTag::Ref, 0, 0, static_cast<int64_t>(A)});
  return T;
}

TermRef TermStore::mkList(const SymbolTable &Symbols,
                          std::span<const TermRef> Elems, TermRef Tail) {
  // Lists are built back to front so each cons can reference the next.
  TermRef List = Tail;
  if (List == InvalidTerm)
    List = mkAtom(Symbols.Nil);
  for (size_t I = Elems.size(); I-- > 0;)
    List = mkStruct2(Symbols.Cons, Elems[I], List);
  return List;
}

size_t TermStore::termBytes(TermRef T) const {
  // Iterative walk; one visit per cell encountered. Argument slots are Ref
  // cells of their own, so count every slot plus what it points at.
  size_t Cnt = 0;
  std::vector<TermRef> Stack{T};
  while (!Stack.empty()) {
    TermRef Cur = Stack.back();
    Stack.pop_back();
    ++Cnt; // The cell itself (a slot or a value cell).
    TermRef D = deref(Cur);
    if (D != Cur)
      ++Cnt; // The representative at the end of the Ref chain.
    if (tag(D) == TermTag::Struct)
      for (uint32_t I = arity(D); I-- > 0;)
        Stack.push_back(arg(D, I));
  }
  return Cnt * sizeof(Cell);
}

void TermStore::undoTo(Mark M) {
  assert(M.TrailSize <= Trail.size() && M.HeapSize <= Cells.size() &&
         "mark is newer than current state");
  while (Trail.size() > M.TrailSize) {
    TermRef Var = Trail.back();
    Trail.pop_back();
    Cells[Var].Val = static_cast<int64_t>(Var);
  }
  Cells.resize(M.HeapSize);
}
