//===- TermStore.h - Cell-based term representation -------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term heap. Terms are built from tagged cells in a growable arena,
/// WAM-style: variables are Ref cells (self-reference when unbound),
/// compound terms carry a functor symbol plus a block of argument slots.
/// Destructive variable binding goes through bind() and is recorded on a
/// trail so the solver can backtrack with undoTo().
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TERM_TERMSTORE_H
#define LPA_TERM_TERMSTORE_H

#include "term/Symbol.h"

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace lpa {

/// Index of a cell within a TermStore.
using TermRef = uint32_t;

/// Sentinel for "no term".
constexpr TermRef InvalidTerm = ~TermRef(0);

/// Discriminator for term cells.
enum class TermTag : uint8_t {
  Ref,    ///< Variable; unbound when it points to itself.
  Atom,   ///< 0-ary symbol.
  Int,    ///< 64-bit integer constant.
  Struct, ///< Compound term: symbol, arity, argument block.
};

/// A growable arena of term cells with a binding trail.
///
/// Each analysis component owns the stores it needs: the clause database
/// keeps program clauses in one store, the solver evaluates goals in a
/// scratch store, and every tabled subgoal keeps its answers in the table
/// store. Terms move between stores via copyTerm().
class TermStore {
public:
  /// An undo point capturing both trail and heap extent. After undoTo(M)
  /// every binding made since mark() is removed and every cell allocated
  /// since is freed (nothing below the mark can reference above it once
  /// the trail is unwound).
  struct Mark {
    size_t TrailSize;
    size_t HeapSize;
  };

  /// Allocates a fresh unbound variable.
  TermRef mkVar();

  /// Allocates an atom cell for symbol \p S.
  TermRef mkAtom(SymbolId S);

  /// Allocates an integer cell.
  TermRef mkInt(int64_t Value);

  /// Allocates a compound term f(Args...). \p Args must be non-empty;
  /// use mkAtom for arity 0.
  TermRef mkStruct(SymbolId S, std::span<const TermRef> Args);

  /// Convenience for binary structs (list cells, (A,B) conjunctions, ...).
  TermRef mkStruct2(SymbolId S, TermRef A, TermRef B) {
    TermRef Args[2] = {A, B};
    return mkStruct(S, Args);
  }

  /// Builds the list [Elems... | Tail] using the given nil/cons symbols
  /// (SymbolTable::Nil and SymbolTable::Cons). Pass InvalidTerm as \p Tail
  /// for a proper list ending in [].
  TermRef mkList(const SymbolTable &Symbols, std::span<const TermRef> Elems,
                 TermRef Tail = InvalidTerm);

  /// Follows Ref chains to the representative cell.
  TermRef deref(TermRef T) const {
    while (true) {
      const Cell &C = cell(T);
      if (C.Kind != TermTag::Ref || C.Val == static_cast<int64_t>(T))
        return T;
      T = static_cast<TermRef>(C.Val);
    }
  }

  /// Tag of the (already dereferenced) cell \p T.
  TermTag tag(TermRef T) const { return cell(T).Kind; }

  /// True if \p T dereferences to an unbound variable.
  bool isUnboundVar(TermRef T) const {
    T = deref(T);
    const Cell &C = cell(T);
    return C.Kind == TermTag::Ref && C.Val == static_cast<int64_t>(T);
  }

  /// Symbol of an Atom or Struct cell.
  SymbolId symbol(TermRef T) const {
    assert(tag(T) == TermTag::Atom || tag(T) == TermTag::Struct);
    return cell(T).Sym;
  }

  /// Arity of a Struct cell (0 for atoms).
  uint32_t arity(TermRef T) const {
    return tag(T) == TermTag::Struct ? cell(T).Arity : 0;
  }

  /// \returns the \p I-th argument slot of Struct \p T (not dereferenced).
  TermRef arg(TermRef T, uint32_t I) const {
    assert(tag(T) == TermTag::Struct && I < cell(T).Arity &&
           "argument index out of range");
    return static_cast<TermRef>(cell(T).Val) + I;
  }

  /// Value of an Int cell.
  int64_t intValue(TermRef T) const {
    assert(tag(T) == TermTag::Int && "not an integer cell");
    return cell(T).Val;
  }

  /// Binds unbound variable \p Var to \p Target, recording it on the trail.
  void bind(TermRef Var, TermRef Target) {
    assert(isUnboundVar(Var) && "binding a non-variable");
    Cells[Var].Val = static_cast<int64_t>(Target);
    Trail.push_back(Var);
  }

  /// Captures the current trail/heap extent.
  Mark mark() const { return {Trail.size(), Cells.size()}; }

  /// Undoes all bindings and allocations made since \p M.
  void undoTo(Mark M);

  /// Number of live cells.
  size_t size() const { return Cells.size(); }

  /// Approximate bytes held by the heap and trail (for the paper's
  /// "table space" accounting when a store backs a table).
  size_t memoryBytes() const {
    return Cells.capacity() * sizeof(Cell) + Trail.capacity() * sizeof(TermRef);
  }

  /// Bytes occupied by the cells reachable from \p T (following Ref chains
  /// and argument slots). Used to apportion a shared table store's space to
  /// individual subgoals/answers; the per-term figures sum to at most
  /// memoryBytes() of the cells actually allocated (shared subterms are
  /// counted once per term that reaches them).
  size_t termBytes(TermRef T) const;

  /// Drops all cells and trail entries.
  void clear() {
    Cells.clear();
    Trail.clear();
  }

private:
  struct Cell {
    TermTag Kind;
    SymbolId Sym;   // Atom/Struct: symbol id.
    uint32_t Arity; // Struct: argument count.
    int64_t Val;    // Ref: target index; Int: value; Struct: first arg index.
  };

  const Cell &cell(TermRef T) const {
    assert(T < Cells.size() && "term ref out of range");
    return Cells[T];
  }

  std::vector<Cell> Cells;
  std::vector<TermRef> Trail;
};

} // namespace lpa

#endif // LPA_TERM_TERMSTORE_H
