//===- TermWriter.cpp - Rendering terms as text ----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/TermWriter.h"

#include <cctype>

using namespace lpa;

namespace {

/// True if \p Name prints as a bare (unquoted) atom.
bool isPlainAtom(const std::string &Name) {
  if (Name.empty())
    return false;
  if (Name == "[]" || Name == "!" || Name == ";")
    return true;
  if (std::islower(static_cast<unsigned char>(Name[0]))) {
    for (char C : Name)
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
        return false;
    return true;
  }
  // Symbolic atoms made purely of operator characters print bare too.
  static const std::string SymChars = "+-*/\\^<>=~:.?@#&";
  for (char C : Name)
    if (SymChars.find(C) == std::string::npos)
      return false;
  return true;
}

/// Output budget for one write: recursion depth and tail-loop iterations
/// both count against it, so cyclic terms built without the occur check
/// terminate with an explicit "..." marker instead of hanging or
/// overflowing the stack. Output is always bracket-balanced: every
/// truncation path closes what it opened.
constexpr int MaxWriteDepth = 10000;

} // namespace

std::string TermWriter::varName(TermRef Var) {
  auto It = VarNames.find(Var);
  if (It != VarNames.end())
    return It->second;
  // _A, _B, ..., _Z, _A1, _B1, ...
  size_t N = VarNames.size();
  std::string Name = "_";
  Name += static_cast<char>('A' + N % 26);
  if (N >= 26)
    Name += std::to_string(N / 26);
  VarNames.emplace(Var, Name);
  return Name;
}

void TermWriter::writeAtomText(const std::string &Name, std::string &Out) {
  if (isPlainAtom(Name)) {
    Out += Name;
    return;
  }
  Out += '\'';
  for (char C : Name) {
    if (C == '\'' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '\'';
}

void TermWriter::write(TermRef T, std::string &Out) { writeRec(T, Out, 0); }

void TermWriter::writeRec(TermRef T, std::string &Out, int Depth) {
  // Guard against pathological cyclic terms built without occur-check.
  if (Depth > MaxWriteDepth) {
    Out += "...";
    return;
  }
  T = Store.deref(T);
  switch (Store.tag(T)) {
  case TermTag::Ref:
    Out += varName(T);
    return;
  case TermTag::Int:
    Out += std::to_string(Store.intValue(T));
    return;
  case TermTag::Atom:
    writeAtomText(Symbols.name(Store.symbol(T)), Out);
    return;
  case TermTag::Struct:
    break;
  }

  SymbolId Sym = Store.symbol(T);
  uint32_t Arity = Store.arity(T);

  // List notation. The tail loop keeps long lists from recursing deeply;
  // each iteration still charges the depth budget so a cyclic tail
  // (X = [a|X]) truncates with "|..." instead of looping forever.
  if (Sym == Symbols.Cons && Arity == 2) {
    Out += '[';
    writeRec(Store.arg(T, 0), Out, Depth + 1);
    TermRef Tail = Store.deref(Store.arg(T, 1));
    int TailDepth = Depth;
    while (Store.tag(Tail) == TermTag::Struct &&
           Store.symbol(Tail) == Symbols.Cons && Store.arity(Tail) == 2) {
      if (++TailDepth > MaxWriteDepth) {
        Out += "|...";
        Out += ']';
        return;
      }
      Out += ',';
      writeRec(Store.arg(Tail, 0), Out, TailDepth + 1);
      Tail = Store.deref(Store.arg(Tail, 1));
    }
    if (!(Store.tag(Tail) == TermTag::Atom &&
          Store.symbol(Tail) == Symbols.Nil)) {
      Out += '|';
      writeRec(Tail, Out, TailDepth + 1);
    }
    Out += ']';
    return;
  }

  // Conjunctions print as (A,B); clauses as Head :- Body. Same budgeted
  // tail loop as lists: a cyclic conjunction truncates balanced.
  if (Sym == Symbols.Comma && Arity == 2) {
    Out += '(';
    writeRec(Store.arg(T, 0), Out, Depth + 1);
    TermRef Rest = Store.deref(Store.arg(T, 1));
    int RestDepth = Depth;
    while (Store.tag(Rest) == TermTag::Struct &&
           Store.symbol(Rest) == Symbols.Comma && Store.arity(Rest) == 2) {
      if (++RestDepth > MaxWriteDepth) {
        Out += ", ...)";
        return;
      }
      Out += ", ";
      writeRec(Store.arg(Rest, 0), Out, RestDepth + 1);
      Rest = Store.deref(Store.arg(Rest, 1));
    }
    Out += ", ";
    writeRec(Rest, Out, RestDepth + 1);
    Out += ')';
    return;
  }
  if (Sym == Symbols.Neck && Arity == 2) {
    writeRec(Store.arg(T, 0), Out, Depth + 1);
    Out += " :- ";
    writeRec(Store.arg(T, 1), Out, Depth + 1);
    return;
  }

  writeAtomText(Symbols.name(Sym), Out);
  Out += '(';
  for (uint32_t I = 0; I < Arity; ++I) {
    if (I)
      Out += ',';
    writeRec(Store.arg(T, I), Out, Depth + 1);
  }
  Out += ')';
}
