//===- TermWriter.h - Rendering terms as text -------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms in Prolog syntax: lists as [a,b|T], conjunctions as
/// comma-separated goals, quoted atoms where needed, variables named in
/// order of appearance (_A, _B, ...).
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TERM_TERMWRITER_H
#define LPA_TERM_TERMWRITER_H

#include "term/Symbol.h"
#include "term/TermStore.h"

#include <string>
#include <unordered_map>

namespace lpa {

/// Stateful writer; variable names are stable across writes made through
/// one TermWriter instance, so the bindings of one answer print
/// consistently.
class TermWriter {
public:
  TermWriter(const SymbolTable &Symbols, const TermStore &Store)
      : Symbols(Symbols), Store(Store) {}

  /// Renders \p T; appends to \p Out.
  void write(TermRef T, std::string &Out);

  /// Renders \p T into a fresh string.
  std::string str(TermRef T) {
    std::string Out;
    write(T, Out);
    return Out;
  }

  /// One-shot convenience with a throwaway writer.
  static std::string toString(const SymbolTable &Symbols,
                              const TermStore &Store, TermRef T) {
    TermWriter W(Symbols, Store);
    return W.str(T);
  }

private:
  void writeRec(TermRef T, std::string &Out, int Depth);
  void writeAtomText(const std::string &Name, std::string &Out);
  std::string varName(TermRef Var);

  const SymbolTable &Symbols;
  const TermStore &Store;
  std::unordered_map<TermRef, std::string> VarNames;
};

} // namespace lpa

#endif // LPA_TERM_TERMWRITER_H
