//===- Unify.cpp - Unification over TermStore -----------------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/Unify.h"

#include <utility>
#include <vector>

using namespace lpa;

bool lpa::occursIn(const TermStore &Store, TermRef Var, TermRef T) {
  Var = Store.deref(Var);
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Store.deref(Work.back());
    Work.pop_back();
    if (Cur == Var)
      return true;
    if (Store.tag(Cur) == TermTag::Struct)
      for (uint32_t I = 0, E = Store.arity(Cur); I < E; ++I)
        Work.push_back(Store.arg(Cur, I));
  }
  return false;
}

bool lpa::isGround(const TermStore &Store, TermRef T) {
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Store.deref(Work.back());
    Work.pop_back();
    switch (Store.tag(Cur)) {
    case TermTag::Ref:
      return false;
    case TermTag::Struct:
      for (uint32_t I = 0, E = Store.arity(Cur); I < E; ++I)
        Work.push_back(Store.arg(Cur, I));
      break;
    case TermTag::Atom:
    case TermTag::Int:
      break;
    }
  }
  return true;
}

bool lpa::unify(TermStore &Store, TermRef A, TermRef B, bool OccursCheck) {
  std::vector<std::pair<TermRef, TermRef>> Work{{A, B}};
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    X = Store.deref(X);
    Y = Store.deref(Y);
    if (X == Y)
      continue;

    TermTag TX = Store.tag(X), TY = Store.tag(Y);
    if (TX == TermTag::Ref) {
      if (OccursCheck && TY == TermTag::Struct && occursIn(Store, X, Y))
        return false;
      Store.bind(X, Y);
      continue;
    }
    if (TY == TermTag::Ref) {
      if (OccursCheck && TX == TermTag::Struct && occursIn(Store, Y, X))
        return false;
      Store.bind(Y, X);
      continue;
    }
    if (TX != TY)
      return false;

    switch (TX) {
    case TermTag::Atom:
      if (Store.symbol(X) != Store.symbol(Y))
        return false;
      break;
    case TermTag::Int:
      if (Store.intValue(X) != Store.intValue(Y))
        return false;
      break;
    case TermTag::Struct: {
      if (Store.symbol(X) != Store.symbol(Y) ||
          Store.arity(X) != Store.arity(Y))
        return false;
      for (uint32_t I = 0, E = Store.arity(X); I < E; ++I)
        Work.push_back({Store.arg(X, I), Store.arg(Y, I)});
      break;
    }
    case TermTag::Ref:
      // Handled above.
      break;
    }
  }
  return true;
}

bool lpa::termsEqual(const TermStore &Store, TermRef A, TermRef B) {
  std::vector<std::pair<TermRef, TermRef>> Work{{A, B}};
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    X = Store.deref(X);
    Y = Store.deref(Y);
    if (X == Y)
      continue;

    TermTag TX = Store.tag(X), TY = Store.tag(Y);
    if (TX != TY)
      return false;
    switch (TX) {
    case TermTag::Ref:
      // Distinct unbound variables.
      return false;
    case TermTag::Atom:
      if (Store.symbol(X) != Store.symbol(Y))
        return false;
      break;
    case TermTag::Int:
      if (Store.intValue(X) != Store.intValue(Y))
        return false;
      break;
    case TermTag::Struct:
      if (Store.symbol(X) != Store.symbol(Y) ||
          Store.arity(X) != Store.arity(Y))
        return false;
      for (uint32_t I = 0, E = Store.arity(X); I < E; ++I)
        Work.push_back({Store.arg(X, I), Store.arg(Y, I)});
      break;
    }
  }
  return true;
}
