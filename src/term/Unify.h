//===- Unify.h - Unification over TermStore ---------------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-order unification. Standard Prolog unification omits the occur
/// check; the analyses of the paper's Section 6 (Hindley-Milner types,
/// depth-k abstract unification) need it, so it is available as an option.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TERM_UNIFY_H
#define LPA_TERM_UNIFY_H

#include "term/TermStore.h"

namespace lpa {

/// Unifies \p A and \p B in \p Store.
///
/// On failure some bindings may already have been made; callers must take a
/// Mark beforehand and undoTo() it when false is returned (the solver's
/// backtracking does this anyway).
///
/// \param OccursCheck when true, binding a variable to a term containing it
///        fails instead of building a cyclic term.
/// \returns true iff the terms are unifiable.
bool unify(TermStore &Store, TermRef A, TermRef B, bool OccursCheck = false);

/// \returns true iff variable \p Var occurs in term \p T (after deref).
bool occursIn(const TermStore &Store, TermRef Var, TermRef T);

/// \returns true iff \p T dereferences to a term with no unbound variables.
bool isGround(const TermStore &Store, TermRef T);

/// Structural equality of two terms in the same store (Prolog ==/2):
/// identical up to sharing, with unbound variables equal only to themselves.
bool termsEqual(const TermStore &Store, TermRef A, TermRef B);

} // namespace lpa

#endif // LPA_TERM_UNIFY_H
