//===- Variant.cpp - Variant checks and canonical keys --------------------===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//

#include "term/Variant.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

using namespace lpa;

bool lpa::isVariant(const TermStore &Store, TermRef A, TermRef B) {
  // Two-way variable correspondence maps.
  std::unordered_map<TermRef, TermRef> AToB, BToA;
  std::vector<std::pair<TermRef, TermRef>> Work{{A, B}};
  while (!Work.empty()) {
    auto [X, Y] = Work.back();
    Work.pop_back();
    X = Store.deref(X);
    Y = Store.deref(Y);

    TermTag TX = Store.tag(X), TY = Store.tag(Y);
    if (TX != TY)
      return false;
    switch (TX) {
    case TermTag::Ref: {
      auto ItA = AToB.find(X);
      auto ItB = BToA.find(Y);
      if (ItA == AToB.end() && ItB == BToA.end()) {
        AToB.emplace(X, Y);
        BToA.emplace(Y, X);
        break;
      }
      if (ItA == AToB.end() || ItB == BToA.end() || ItA->second != Y ||
          ItB->second != X)
        return false;
      break;
    }
    case TermTag::Atom:
      if (Store.symbol(X) != Store.symbol(Y))
        return false;
      break;
    case TermTag::Int:
      if (Store.intValue(X) != Store.intValue(Y))
        return false;
      break;
    case TermTag::Struct:
      if (Store.symbol(X) != Store.symbol(Y) ||
          Store.arity(X) != Store.arity(Y))
        return false;
      // Push in reverse so arguments are visited left to right; the order
      // matters because variable numbering must be consistent.
      for (uint32_t I = Store.arity(X); I-- > 0;)
        Work.push_back({Store.arg(X, I), Store.arg(Y, I)});
      break;
    }
  }
  return true;
}

namespace {

/// Appends raw bytes of \p V to \p Out.
template <typename T> void appendBytes(std::string &Out, T V) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &V, sizeof(T));
  Out.append(Buf, sizeof(T));
}

} // namespace

void lpa::appendCanonicalKey(const TermStore &Store, TermRef T,
                             std::string &Out) {
  std::unordered_map<TermRef, uint32_t> VarNum;
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Store.deref(Work.back());
    Work.pop_back();
    switch (Store.tag(Cur)) {
    case TermTag::Ref: {
      auto [It, Inserted] =
          VarNum.emplace(Cur, static_cast<uint32_t>(VarNum.size()));
      Out.push_back('V');
      appendBytes(Out, It->second);
      (void)Inserted;
      break;
    }
    case TermTag::Atom:
      Out.push_back('A');
      appendBytes(Out, Store.symbol(Cur));
      break;
    case TermTag::Int:
      Out.push_back('I');
      appendBytes(Out, Store.intValue(Cur));
      break;
    case TermTag::Struct:
      Out.push_back('S');
      appendBytes(Out, Store.symbol(Cur));
      appendBytes(Out, Store.arity(Cur));
      // Reverse push for left-to-right traversal (variable numbering).
      for (uint32_t I = Store.arity(Cur); I-- > 0;)
        Work.push_back(Store.arg(Cur, I));
      break;
    }
  }
}

std::string lpa::canonicalKey(const TermStore &Store, TermRef T) {
  std::string Out;
  appendCanonicalKey(Store, T, Out);
  return Out;
}

void lpa::collectFreeVars(const TermStore &Store, TermRef T,
                          std::vector<TermRef> &Vars) {
  std::vector<TermRef> Work{T};
  while (!Work.empty()) {
    TermRef Cur = Store.deref(Work.back());
    Work.pop_back();
    switch (Store.tag(Cur)) {
    case TermTag::Ref:
      if (std::find(Vars.begin(), Vars.end(), Cur) == Vars.end())
        Vars.push_back(Cur);
      break;
    case TermTag::Struct:
      // Reverse push for left-to-right traversal (numbering order).
      for (uint32_t I = Store.arity(Cur); I-- > 0;)
        Work.push_back(Store.arg(Cur, I));
      break;
    case TermTag::Atom:
    case TermTag::Int:
      break;
    }
  }
}
