//===- Variant.h - Variant checks and canonical keys ------------*- C++ -*-===//
//
// Part of the lpa project: a reproduction of "Practical Program Analysis
// Using General Purpose Logic Programming Systems" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variant checking is the heart of XSB-style tabling: a tabled subgoal hits
/// the table when a *variant* of it (identical up to variable renaming) was
/// called before, and only non-variant answers are entered. We implement
/// both a direct two-term check and a canonical byte-string encoding whose
/// equality coincides with variance, used as the hash key of subgoal and
/// answer tables.
///
//===----------------------------------------------------------------------===//

#ifndef LPA_TERM_VARIANT_H
#define LPA_TERM_VARIANT_H

#include "term/TermStore.h"

#include <string>

namespace lpa {

/// \returns true iff \p A and \p B are identical up to consistent renaming
/// of unbound variables.
bool isVariant(const TermStore &Store, TermRef A, TermRef B);

/// Encodes \p T as a byte string such that two terms have equal encodings
/// iff they are variants. Variables are numbered in order of first
/// occurrence (left-to-right, depth-first).
std::string canonicalKey(const TermStore &Store, TermRef T);

/// As canonicalKey, but appends to \p Out (avoids reallocation in loops).
void appendCanonicalKey(const TermStore &Store, TermRef T, std::string &Out);

/// Collects the distinct unbound variables of \p T into \p Vars in
/// first-occurrence order (left-to-right, depth-first) -- the same order
/// canonicalKey numbers them and the same order copyTerm renames them.
/// Appends to \p Vars without clearing it.
void collectFreeVars(const TermStore &Store, TermRef T,
                     std::vector<TermRef> &Vars);

} // namespace lpa

#endif // LPA_TERM_VARIANT_H
